package pmsort

import (
	"encoding/binary"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"pmsort/internal/expt"
)

// The TCP conformance test needs real separate processes. The test
// binary doubles as the rank program: TestMain diverts to the child
// role when the environment marks this process as one.
const (
	envChild = "PMSORT_TEST_TCP_CHILD" // the conformance case name
	envRank  = "PMSORT_TEST_TCP_RANK"
	envPeers = "PMSORT_TEST_TCP_PEERS"
	envOut   = "PMSORT_TEST_TCP_OUT"
	envPerPE = "PMSORT_TEST_TCP_PERPE"
)

func TestMain(m *testing.M) {
	if name := os.Getenv(envChild); name != "" {
		os.Exit(runTCPConformanceChild(name))
	}
	os.Exit(m.Run())
}

// runTCPConformanceChild is one rank process: it joins the cluster
// through the public API, runs the named conformance case on its slice
// of the shared seeded input, and dumps the sorted output as
// little-endian bytes for the parent to compare.
func runTCPConformanceChild(name string) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "tcp child: %v\n", err)
		return 1
	}
	rank, err := strconv.Atoi(os.Getenv(envRank))
	if err != nil {
		return fail(fmt.Errorf("bad rank: %w", err))
	}
	peers := strings.Split(os.Getenv(envPeers), ",")
	perPE, err := strconv.Atoi(os.Getenv(envPerPE))
	if err != nil {
		return fail(fmt.Errorf("bad perPE: %w", err))
	}
	var run func(c Communicator, data []uint64) []uint64
	for _, tc := range conformanceCases() {
		if tc.name == name {
			run = tc.run
		}
	}
	if run == nil {
		return fail(fmt.Errorf("unknown conformance case %q", name))
	}

	cl, err := NewTCP(rank, peers)
	if err != nil {
		return fail(err)
	}
	defer cl.Close()
	if cl.P() != len(peers) || cl.Rank() != rank {
		return fail(fmt.Errorf("cluster reports P=%d Rank=%d", cl.P(), cl.Rank()))
	}

	locals := conformanceInput(len(peers), perPE)
	var out []uint64
	if _, err := cl.Run(func(c Communicator) {
		out = run(c, locals[rank])
	}); err != nil {
		return fail(err)
	}

	buf := make([]byte, 8*len(out))
	for i, v := range out {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	if err := os.WriteFile(os.Getenv(envOut), buf, 0o644); err != nil {
		return fail(err)
	}
	return 0
}

// reserveLoopbackAddrs picks p free loopback addresses; the transport's
// bind retry absorbs the release-rebind window.
func reserveLoopbackAddrs(t *testing.T, p int) []string {
	t.Helper()
	addrs, err := expt.ReserveLoopbackAddrs(p)
	if err != nil {
		t.Fatalf("reserve ports: %v", err)
	}
	return addrs
}

// TestTCPConformanceMultiProcess is the acceptance test of backend 3: a
// real 4-process TCP cluster on loopback must sort the same seeded
// input into output byte-identical to the simulated AND the native
// backend, rank by rank, for AMS-sort, RLM-sort, and GV-sample-sort.
func TestTCPConformanceMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	const p, perPE = 4, 300
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("cannot locate the test binary: %v", err)
	}

	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			locals := conformanceInput(p, perPE)

			// Reference 1: the simulated backend.
			simOuts := make([][]uint64, p)
			cl := New(p)
			cl.Run(func(pe *PE) {
				simOuts[pe.Rank()] = tc.run(World(pe), append([]uint64(nil), locals[pe.Rank()]...))
			})

			// Reference 2: the native backend.
			natOuts := make([][]uint64, p)
			ncl := NewNative(p)
			ncl.Run(func(c Communicator) {
				natOuts[c.Rank()] = tc.run(c, append([]uint64(nil), locals[c.Rank()]...))
			})

			// The contender: p separate OS processes over TCP.
			addrs := reserveLoopbackAddrs(t, p)
			dir := t.TempDir()
			cmds := make([]*exec.Cmd, p)
			for rank := 0; rank < p; rank++ {
				cmd := exec.Command(exe, "-test.run=^$")
				cmd.Env = append(os.Environ(),
					envChild+"="+tc.name,
					envRank+"="+strconv.Itoa(rank),
					envPeers+"="+strings.Join(addrs, ","),
					envOut+"="+filepath.Join(dir, fmt.Sprintf("rank%d.bin", rank)),
					envPerPE+"="+strconv.Itoa(perPE),
				)
				cmd.Stderr = os.Stderr
				if err := cmd.Start(); err != nil {
					t.Fatalf("starting rank %d: %v", rank, err)
				}
				cmds[rank] = cmd
			}
			deadline := time.AfterFunc(2*time.Minute, func() {
				for _, cmd := range cmds {
					_ = cmd.Process.Kill()
				}
			})
			defer deadline.Stop()
			for rank, cmd := range cmds {
				if err := cmd.Wait(); err != nil {
					t.Fatalf("rank %d process: %v", rank, err)
				}
			}

			// Byte-identical across all three backends.
			total := 0
			for rank := 0; rank < p; rank++ {
				raw, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("rank%d.bin", rank)))
				if err != nil {
					t.Fatalf("rank %d output: %v", rank, err)
				}
				if len(raw)%8 != 0 {
					t.Fatalf("rank %d output has %d bytes (not a uint64 multiple)", rank, len(raw))
				}
				tcpOut := make([]uint64, len(raw)/8)
				for i := range tcpOut {
					tcpOut[i] = binary.LittleEndian.Uint64(raw[8*i:])
				}
				if len(tcpOut) != len(simOuts[rank]) || len(tcpOut) != len(natOuts[rank]) {
					t.Fatalf("rank %d: TCP has %d elements, sim %d, native %d",
						rank, len(tcpOut), len(simOuts[rank]), len(natOuts[rank]))
				}
				for i := range tcpOut {
					if tcpOut[i] != simOuts[rank][i] || tcpOut[i] != natOuts[rank][i] {
						t.Fatalf("rank %d element %d: tcp %d, sim %d, native %d",
							rank, i, tcpOut[i], simOuts[rank][i], natOuts[rank][i])
					}
				}
				total += len(tcpOut)
			}
			if total != p*perPE {
				t.Fatalf("lost elements: %d of %d", total, p*perPE)
			}
		})
	}
}

// TestTCPPublicAPISingleProcess exercises NewTCP's error paths and the
// single-rank degenerate cluster without child processes.
func TestTCPPublicAPISingleProcess(t *testing.T) {
	if _, err := NewTCP(2, []string{"127.0.0.1:1"}); err == nil {
		t.Error("out-of-range rank must fail")
	}
	cl, err := NewTCP(0, []string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var out []uint64
	if _, err := cl.Run(func(c Communicator) {
		out, _ = AMSSort(c, []uint64{3, 1, 2}, u64Less, Config{Levels: 1, Seed: 1})
	}); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 1 || out[2] != 3 {
		t.Fatalf("single-rank TCP sort: %v", out)
	}
}
