module pmsort

go 1.22
