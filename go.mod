module pmsort

go 1.23
