// Quickstart: sort uniformly random 64-bit keys distributed over 64
// simulated PEs with 2-level AMS-sort and verify the result — the
// minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"pmsort"
)

func main() {
	const (
		p      = 64
		perPE  = 10_000
		levels = 2
	)
	cl := pmsort.New(p)
	outs := make([][]uint64, p)
	var stats *pmsort.Stats

	cl.Run(func(pe *pmsort.PE) {
		// Each PE generates its own local input.
		rng := rand.New(rand.NewSource(int64(pe.Rank()) + 1))
		data := make([]uint64, perPE)
		for i := range data {
			data[i] = rng.Uint64()
		}
		sorted, st := pmsort.AMSSort(pmsort.World(pe), data,
			func(a, b uint64) bool { return a < b },
			pmsort.Config{Levels: levels, Seed: 42})
		outs[pe.Rank()] = sorted
		if pe.Rank() == 0 {
			stats = st
		}
	})

	// Verify: locally sorted everywhere, globally ordered across PEs.
	total := 0
	var prev uint64
	for rank, out := range outs {
		for i, v := range out {
			if v < prev {
				fmt.Fprintf(os.Stderr, "NOT SORTED at PE %d index %d\n", rank, i)
				os.Exit(1)
			}
			prev = v
		}
		total += len(out)
	}
	fmt.Printf("sorted %d elements on %d PEs in %.3f ms simulated time\n",
		total, p, float64(stats.TotalNS)/1e6)
	for ph := pmsort.Phase(0); ph < pmsort.NumPhases; ph++ {
		fmt.Printf("  %-20v %8.3f ms\n", ph, float64(stats.PhaseNS[ph])/1e6)
	}
	fmt.Printf("  output imbalance ≤ %.3f (level bound)\n", stats.MaxImbalance)
}
