// Space-filling-curve load balancing — the motivating application from
// the paper's introduction: "load balancing in supercomputers often uses
// space-filling curves. This boils down to sorting data by their
// position on the curve ... the inputs are relatively small", so the
// sorter must scale even when n/p is tiny.
//
// Each PE owns simulation particles clustered somewhere in the unit
// square. Sorting the particles by Morton (Z-order) code with 3-level
// AMS-sort assigns every PE a compact, equally sized region of the
// curve. The example reports the spatial locality before and after.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"pmsort"
)

// particle is a 2-D point with its Morton code as the sort key.
type particle struct {
	x, y   float64
	morton uint64
}

// mortonCode interleaves the bits of the quantized coordinates.
func mortonCode(x, y float64) uint64 {
	const bits = 31
	xi := uint64(x * float64(uint64(1)<<bits))
	yi := uint64(y * float64(uint64(1)<<bits))
	var code uint64
	for b := 0; b < bits; b++ {
		code |= (xi>>b&1)<<(2*b) | (yi>>b&1)<<(2*b+1)
	}
	return code
}

// spread measures the average pairwise distance of a PE's particles — a
// proxy for the communication volume a PDE solver would pay.
func spread(ps []particle) float64 {
	if len(ps) < 2 {
		return 0
	}
	var sum float64
	step := len(ps)/128 + 1 // sample pairs
	n := 0
	for i := 0; i < len(ps); i += step {
		for j := i + step; j < len(ps); j += step {
			dx, dy := ps[i].x-ps[j].x, ps[i].y-ps[j].y
			sum += math.Sqrt(dx*dx + dy*dy)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func main() {
	const (
		p     = 512 // many PEs, few particles each: the hard regime
		perPE = 2_000
	)
	cl := pmsort.New(p)
	before := make([]float64, p)
	after := make([]float64, p)
	outs := make([][]particle, p)
	var stats *pmsort.Stats

	cl.Run(func(pe *pmsort.PE) {
		// Particles scattered around a random cluster center per PE —
		// spatially disordered across the machine.
		rng := rand.New(rand.NewSource(int64(pe.Rank())*7 + 3))
		cx, cy := rng.Float64(), rng.Float64()
		parts := make([]particle, perPE)
		for i := range parts {
			x := math.Mod(cx+rng.NormFloat64()*0.3+1, 1)
			y := math.Mod(cy+rng.NormFloat64()*0.3+1, 1)
			parts[i] = particle{x: x, y: y, morton: mortonCode(x, y)}
		}
		before[pe.Rank()] = spread(parts)

		sorted, st := pmsort.AMSSort(pmsort.World(pe), parts,
			func(a, b particle) bool { return a.morton < b.morton },
			pmsort.Config{Levels: 3, Seed: 7})
		outs[pe.Rank()] = sorted
		after[pe.Rank()] = spread(sorted)
		if pe.Rank() == 0 {
			stats = st
		}
	})

	var avgBefore, avgAfter float64
	minL, maxL := len(outs[0]), len(outs[0])
	for i := 0; i < p; i++ {
		avgBefore += before[i] / float64(p)
		avgAfter += after[i] / float64(p)
		if len(outs[i]) < minL {
			minL = len(outs[i])
		}
		if len(outs[i]) > maxL {
			maxL = len(outs[i])
		}
	}
	fmt.Printf("sorted %d particles on %d PEs by Morton code in %.3f ms simulated time\n",
		p*perPE, p, float64(stats.TotalNS)/1e6)
	fmt.Printf("  avg spatial spread per PE: %.4f before -> %.4f after (%.1fx tighter)\n",
		avgBefore, avgAfter, avgBefore/avgAfter)
	fmt.Printf("  particles per PE after balancing: %d..%d (avg %d)\n", minL, maxL, perPE)
}
