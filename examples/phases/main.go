// Phase introspection: run AMS-sort and RLM-sort with one to three
// levels on 512 PEs at small n/p and print the §7.1 phase breakdown —
// a miniature of Figure 8 that shows *why* multi-level sorting wins:
// startup-bound data delivery shrinks as levels are added.
package main

import (
	"fmt"
	"math/rand"

	"pmsort"
)

func run(levels int, rlm bool) *pmsort.Stats {
	const (
		p     = 512
		perPE = 1_000
	)
	cl := pmsort.New(p)
	var stats *pmsort.Stats
	cl.Run(func(pe *pmsort.PE) {
		rng := rand.New(rand.NewSource(int64(pe.Rank()) + 5))
		data := make([]uint64, perPE)
		for i := range data {
			data[i] = rng.Uint64()
		}
		cfg := pmsort.Config{Levels: levels, Seed: 11}
		var st *pmsort.Stats
		if rlm {
			_, st = pmsort.RLMSort(pmsort.World(pe), data, func(a, b uint64) bool { return a < b }, cfg)
		} else {
			_, st = pmsort.AMSSort(pmsort.World(pe), data, func(a, b uint64) bool { return a < b }, cfg)
		}
		if pe.Rank() == 0 {
			stats = st
		}
	})
	return stats
}

func main() {
	fmt.Printf("p=512, n/p=1000, uniform u64 keys [ms, simulated]\n")
	fmt.Printf("%-10s %-2s %9s %10s %10s %10s %10s\n",
		"algorithm", "k", "total", "delivery", "buckets", "splitters", "localsort")
	for _, algo := range []string{"AMS-sort", "RLM-sort"} {
		for k := 1; k <= 3; k++ {
			st := run(k, algo == "RLM-sort")
			ms := func(v int64) float64 { return float64(v) / 1e6 }
			fmt.Printf("%-10s %-2d %9.3f %10.3f %10.3f %10.3f %10.3f\n",
				algo, k, ms(st.TotalNS),
				ms(st.PhaseNS[pmsort.PhaseDataDelivery]),
				ms(st.PhaseNS[pmsort.PhaseBucketProcessing]),
				ms(st.PhaseNS[pmsort.PhaseSplitterSelection]),
				ms(st.PhaseNS[pmsort.PhaseLocalSort]))
		}
	}
	fmt.Printf("\nNote how 1-level runs pay p-1 message startups in data delivery,\n")
	fmt.Printf("while k levels pay only O(k·ᵏ√p) (paper §5, §6).\n")
}
