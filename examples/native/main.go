// Command native sorts real data at real speed on the native
// shared-memory backend: the same AMSSort call that runs on the
// simulated cluster runs here on p goroutines exchanging through
// channels, and the reported times are wall-clock. Compare against the
// one-core sort.Slice reference it prints alongside.
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"pmsort"
)

func main() {
	const n = 1 << 20 // 1M elements, 8 MB
	fmt.Printf("sorting %d uint64 on the native backend (GOMAXPROCS=%d)\n\n", n, runtime.GOMAXPROCS(0))

	// One-core reference.
	ref := makeData(n, 1)
	t0 := time.Now()
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	seq := time.Since(t0)
	fmt.Printf("%-22s %10.1f ms\n", "sort.Slice (1 core)", float64(seq.Nanoseconds())/1e6)

	// Both local-phase kernels (DESIGN.md §9): the generic comparator
	// path, and the ordered-key radix fast path enabled by Config.Key.
	kernels := []struct {
		name string
		key  any
	}{
		{"cmp", nil},
		{"keyed", func(x uint64) uint64 { return x }},
	}
	for _, kernel := range kernels {
		for _, p := range []int{1, 2, 4, 8} {
			perPE := n / p
			locals := make([][]uint64, p)
			for rank := range locals {
				locals[rank] = makeData(perPE, int64(rank)*7+1)
			}
			cl := pmsort.NewNative(p)
			elapsed := cl.Run(func(c pmsort.Communicator) {
				_, _ = pmsort.AMSSort(c, locals[c.Rank()],
					func(a, b uint64) bool { return a < b },
					pmsort.Config{Levels: 1, Seed: 99, Key: kernel.key})
			})
			label := fmt.Sprintf("AMS %s p=%d", kernel.name, p)
			fmt.Printf("%-22s %10.1f ms   speedup %.2f\n",
				label, float64(elapsed.Nanoseconds())/1e6,
				float64(seq.Nanoseconds())/float64(elapsed.Nanoseconds()))
		}
	}
}

func makeData(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}
