// What-if analysis: because the machine is simulated, the same sort can
// be replayed under different interconnects — the calibrated SuperMUC-
// like hierarchy, a flat network, a 10× slower inter-island tree, and a
// 10× higher-latency fabric — showing how the best level count k shifts
// with the network, which is exactly the paper's point that r (and thus
// k) should be adapted to the machine hierarchy (§5).
package main

import (
	"fmt"
	"math/rand"

	"pmsort"
)

func run(name string, topo pmsort.Topology, cost pmsort.CostModel) {
	const (
		p     = 1024 // two islands under the default topology
		perPE = 2_000
	)
	fmt.Printf("%-28s", name)
	best, bestK := int64(0), 0
	for k := 1; k <= 3; k++ {
		cl := pmsort.NewCustom(p, topo, cost)
		var total int64
		cl.Run(func(pe *pmsort.PE) {
			rng := rand.New(rand.NewSource(int64(pe.Rank()) + 17))
			data := make([]uint64, perPE)
			for i := range data {
				data[i] = rng.Uint64()
			}
			_, st := pmsort.AMSSort(pmsort.World(pe), data,
				func(a, b uint64) bool { return a < b },
				pmsort.Config{Levels: k, Seed: 23})
			if pe.Rank() == 0 {
				total = st.TotalNS
			}
		})
		fmt.Printf(" %8.2f", float64(total)/1e6)
		if best == 0 || total < best {
			best, bestK = total, k
		}
	}
	fmt.Printf("   best: k=%d\n", bestK)
}

func main() {
	fmt.Printf("AMS-sort, p=1024, n/p=2000, by interconnect [ms simulated]\n")
	fmt.Printf("%-28s %8s %8s %8s\n", "network", "k=1", "k=2", "k=3")

	run("SuperMUC-like (default)", pmsort.DefaultTopology(), pmsort.DefaultCost())

	run("flat (no hierarchy)", pmsort.FlatTopology(), pmsort.DefaultCost())

	slowTree := pmsort.DefaultCost()
	slowTree.Beta[3] *= 10 // LinkCross
	run("10x slower island links", pmsort.DefaultTopology(), slowTree)

	highLat := pmsort.DefaultCost()
	for i := range highLat.Alpha {
		highLat.Alpha[i] *= 10
	}
	run("10x message latency", pmsort.DefaultTopology(), highLat)
}
