// MinuteSort-style record sorting — the Sort Benchmark workload the
// paper compares against in §7.3 (TritonSort / Baidu-Sort): 100-byte
// records with 10-byte random keys. Records are sorted by key with
// 2-level AMS-sort using Appendix D tie-breaking (random 10-byte keys
// collide rarely, but a production sorter cannot assume they never do).
package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"

	"pmsort"
)

// record is a Sort Benchmark row: 10-byte key, 90-byte payload.
type record struct {
	Key     [10]byte
	Payload [90]byte
}

func recordLess(a, b record) bool {
	return bytes.Compare(a.Key[:], b.Key[:]) < 0
}

func main() {
	const (
		p     = 64
		perPE = 20_000
	)
	cl := pmsort.New(p)
	outs := make([][]record, p)
	var stats *pmsort.Stats

	cl.Run(func(pe *pmsort.PE) {
		rng := rand.New(rand.NewSource(int64(pe.Rank()) + 99))
		data := make([]record, perPE)
		for i := range data {
			rng.Read(data[i].Key[:])
			rng.Read(data[i].Payload[:8]) // a little entropy is enough
		}
		sorted, st := pmsort.AMSSort(pmsort.World(pe), data, recordLess,
			pmsort.Config{Levels: 2, Seed: 1, TieBreak: true})
		outs[pe.Rank()] = sorted
		if pe.Rank() == 0 {
			stats = st
		}
	})

	// Validate the Sort Benchmark way: keys non-decreasing end to end.
	var prev []byte
	total := 0
	for rank, out := range outs {
		for i := range out {
			if prev != nil && bytes.Compare(out[i].Key[:], prev) < 0 {
				fmt.Fprintf(os.Stderr, "order violation at PE %d record %d\n", rank, i)
				os.Exit(1)
			}
			prev = out[i].Key[:]
		}
		total += len(out)
	}
	bytesSorted := total * 100
	fmt.Printf("sorted %d records (%.1f MB) on %d PEs in %.3f ms simulated time\n",
		total, float64(bytesSorted)/1e6, p, float64(stats.TotalNS)/1e6)
	fmt.Printf("  (the simulator counts one machine word per record; the paper's\n")
	fmt.Printf("   §7.3 comparison normalizes element sizes the same way)\n")
}
