package pmsort

import (
	"math/rand"
	"sort"
	"testing"
)

func u64Less(a, b uint64) bool { return a < b }

// TestPublicAPIEndToEnd drives the library exactly like the README
// quickstart and verifies the output contract.
func TestPublicAPIEndToEnd(t *testing.T) {
	const p, perPE = 32, 500
	cl := New(p)
	if cl.P() != p {
		t.Fatalf("P() = %d", cl.P())
	}
	outs := make([][]uint64, p)
	cl.Run(func(pe *PE) {
		rng := rand.New(rand.NewSource(int64(pe.Rank())))
		data := make([]uint64, perPE)
		for i := range data {
			data[i] = rng.Uint64()
		}
		sorted, st := AMSSort(World(pe), data, u64Less, Config{Levels: 2, Seed: 3})
		if st.TotalNS <= 0 {
			t.Errorf("no simulated time elapsed")
		}
		outs[pe.Rank()] = sorted
	})
	var prev uint64
	total := 0
	for rank, out := range outs {
		for i, v := range out {
			if v < prev {
				t.Fatalf("order violation at PE %d index %d", rank, i)
			}
			prev = v
		}
		total += len(out)
	}
	if total != p*perPE {
		t.Fatalf("lost elements: %d of %d", total, p*perPE)
	}
}

func TestPublicSortersAgree(t *testing.T) {
	const p, perPE = 16, 200
	type sorterCase struct {
		name string
		run  func(c *Comm, data []uint64) []uint64
	}
	cases := []sorterCase{
		{"AMS", func(c *Comm, d []uint64) []uint64 {
			out, _ := AMSSort(c, d, u64Less, Config{Levels: 2, Seed: 4})
			return out
		}},
		{"RLM", func(c *Comm, d []uint64) []uint64 {
			out, _ := RLMSort(c, d, u64Less, Config{Levels: 2, Seed: 4})
			return out
		}},
		{"GV", func(c *Comm, d []uint64) []uint64 { out, _ := GVSampleSort(c, d, u64Less, 4); return out }},
		{"MP", func(c *Comm, d []uint64) []uint64 { out, _ := MPSort(c, d, u64Less, 4); return out }},
		{"Bitonic", func(c *Comm, d []uint64) []uint64 { out, _ := BitonicSort(c, d, u64Less, 4); return out }},
	}
	for _, tc := range cases {
		cl := New(p)
		var all []uint64
		outs := make([][]uint64, p)
		locals := make([][]uint64, p)
		rng := rand.New(rand.NewSource(9))
		for i := range locals {
			loc := make([]uint64, perPE)
			for j := range loc {
				loc[j] = rng.Uint64() % 10000
			}
			locals[i] = loc
			all = append(all, loc...)
		}
		cl.Run(func(pe *PE) {
			outs[pe.Rank()] = tc.run(World(pe), append([]uint64(nil), locals[pe.Rank()]...))
		})
		var got []uint64
		for _, o := range outs {
			got = append(got, o...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		if len(got) != len(all) {
			t.Fatalf("%s: length %d want %d", tc.name, len(got), len(all))
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("%s: not globally sorted at %d", tc.name, i)
			}
		}
	}
}

func TestCustomTopologyAndCost(t *testing.T) {
	topo := Topology{CoresPerNode: 4, NodesPerIsland: 2}
	cost := DefaultCost()
	cost.Alpha[3] *= 10 // make inter-island traffic painful
	cl := NewCustom(16, topo, cost)
	var slow int64
	cl.Run(func(pe *PE) {
		_, st := AMSSort(World(pe), []uint64{uint64(pe.Rank())}, u64Less, Config{Levels: 1, Seed: 5})
		if pe.Rank() == 0 {
			slow = st.TotalNS
		}
	})
	cl2 := NewCustom(16, FlatTopology(), DefaultCost())
	var fast int64
	cl2.Run(func(pe *PE) {
		_, st := AMSSort(World(pe), []uint64{uint64(pe.Rank())}, u64Less, Config{Levels: 1, Seed: 5})
		if pe.Rank() == 0 {
			fast = st.TotalNS
		}
	})
	if slow <= fast {
		t.Errorf("10x inter-island alpha did not slow the sort: %d vs %d", slow, fast)
	}
}

func TestClusterReset(t *testing.T) {
	cl := New(4)
	cl.Run(func(pe *PE) { pe.Charge(100) })
	cl.Reset()
	res := cl.Run(func(pe *PE) {})
	if res.MaxTime != 0 {
		t.Errorf("Reset did not zero the clocks")
	}
	if cl.PEInfo(0).MsgsSent != 0 {
		t.Errorf("Reset did not zero the counters")
	}
}

func TestPublicBuildingBlocks(t *testing.T) {
	const p = 6
	cl := New(p)
	cl.Run(func(pe *PE) {
		c := World(pe)
		// Multiselect: every PE holds [0..9] scaled; ask for the median.
		local := make([]uint64, 10)
		for i := range local {
			local[i] = uint64(pe.Rank()*10 + i)
		}
		pos := Multiselect(c, local, []int64{30}, u64Less, 5)
		if len(pos) != 1 {
			t.Errorf("Multiselect returned %d positions", len(pos))
		}
		// The 30 smallest elements are exactly PEs 0..2's slices.
		want := 0
		if pe.Rank() < 3 {
			want = 10
		}
		if pos[0] != want {
			t.Errorf("PE %d: split %d want %d", pe.Rank(), pos[0], want)
		}
		// Deliver: two groups of 3 PEs; every PE sends 1 element to group
		// 0 and 3 elements to group 1 — so group 0 members receive
		// 6/3 = 2 elements each and group 1 members 18/3 = 6.
		pieces := [][]uint64{{1}, {2, 3, 4}}
		chunks := Deliver(c, pieces, DeliveryOptions{Strategy: DeliveryDeterministic, Seed: 5})
		total := 0
		for _, ch := range chunks {
			total += len(ch)
		}
		want = 2
		if pe.Rank() >= p/2 {
			want = 6
		}
		if total != want {
			t.Errorf("PE %d received %d elements, want %d", pe.Rank(), total, want)
		}
	})
}

func TestClusterTracing(t *testing.T) {
	cl := New(4)
	cl.EnableTracing()
	cl.Run(func(pe *PE) {
		pe.Mark("begin")
		_, _ = AMSSort(World(pe), []uint64{uint64(pe.Rank())}, u64Less, Config{Levels: 1, Seed: 6})
	})
	evs := cl.Trace()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	marks, sends, recvs := 0, 0, 0
	for _, ev := range evs {
		switch ev.Kind {
		case EvMark:
			marks++
		case EvSend:
			sends++
		case EvRecv:
			recvs++
		}
	}
	if marks != 4 {
		t.Errorf("marks = %d, want 4", marks)
	}
	if sends == 0 || sends != recvs {
		t.Errorf("sends=%d recvs=%d — every send must be received", sends, recvs)
	}
	cl.ClearTrace()
	if len(cl.Trace()) != 0 {
		t.Error("ClearTrace failed")
	}
}

func TestPlanLevelsExported(t *testing.T) {
	plan := PlanLevels(512, 3)
	if len(plan) != 3 || plan[0] != 8 || plan[1] != 4 || plan[2] != 16 {
		t.Errorf("PlanLevels(512,3) = %v", plan)
	}
}
