package pmsort_test

import (
	"fmt"

	"pmsort"
)

// ExampleAMSSort sorts a tiny deterministic input with 2-level AMS-sort.
func ExampleAMSSort() {
	const p = 8
	cl := pmsort.New(p)
	outs := make([][]uint64, p)
	cl.Run(func(pe *pmsort.PE) {
		// PE r holds 4 keys: r, r+8, r+16, r+24 — globally 0..31.
		data := make([]uint64, 4)
		for i := range data {
			data[i] = uint64(pe.Rank() + 8*i)
		}
		sorted, _ := pmsort.AMSSort(pmsort.World(pe), data,
			func(a, b uint64) bool { return a < b },
			pmsort.Config{Levels: 2, Seed: 1})
		outs[pe.Rank()] = sorted
	})
	var flat []uint64
	for _, o := range outs {
		flat = append(flat, o...)
	}
	fmt.Println(flat[0], flat[15], flat[31])
	// Output: 0 15 31
}

// ExampleRLMSort shows the perfectly balanced output of RLM-sort.
func ExampleRLMSort() {
	const p = 4
	cl := pmsort.New(p)
	sizes := make([]int, p)
	cl.Run(func(pe *pmsort.PE) {
		// Deliberately unbalanced input: PE 0 holds everything.
		var data []uint64
		if pe.Rank() == 0 {
			for i := 99; i >= 0; i-- {
				data = append(data, uint64(i))
			}
		}
		sorted, _ := pmsort.RLMSort(pmsort.World(pe), data,
			func(a, b uint64) bool { return a < b },
			pmsort.Config{Levels: 1, Seed: 2})
		sizes[pe.Rank()] = len(sorted)
	})
	fmt.Println(sizes)
	// Output: [25 25 25 25]
}

// ExamplePlanLevels prints the Table 1 configuration for 8192 PEs.
func ExamplePlanLevels() {
	fmt.Println(pmsort.PlanLevels(8192, 1))
	fmt.Println(pmsort.PlanLevels(8192, 2))
	fmt.Println(pmsort.PlanLevels(8192, 3))
	// Output:
	// [8192]
	// [512 16]
	// [32 16 16]
}

// ExampleCluster_Run shows direct use of the simulated machine: a ring
// exchange with explicit virtual-time inspection.
func ExampleCluster_Run() {
	cl := pmsort.New(4)
	res := cl.Run(func(pe *pmsort.PE) {
		next := (pe.Rank() + 1) % pe.P()
		prev := (pe.Rank() + pe.P() - 1) % pe.P()
		pe.Send(next, 1, pe.Rank(), 1)
		pe.Recv(prev, 1)
	})
	fmt.Println(res.MaxTime > 0, len(res.Times))
	// Output: true 4
}
