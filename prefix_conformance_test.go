package pmsort

import (
	"math/rand"
	"reflect"
	"testing"

	"pmsort/internal/workload"
)

// prefixSweepSorters are the two sorters that consume the prefix cache,
// each with tie-breaking profiles that stress the cached classifiers.
func prefixSweepSorters() []struct {
	name string
	run  func(c Communicator, d []uint64, cfg Config) []uint64
} {
	return []struct {
		name string
		run  func(c Communicator, d []uint64, cfg Config) []uint64
	}{
		{"AMS", func(c Communicator, d []uint64, cfg Config) []uint64 {
			out, _ := AMSSort(c, d, u64Less, cfg)
			return out
		}},
		{"RLM", func(c Communicator, d []uint64, cfg Config) []uint64 {
			out, _ := RLMSort(c, d, u64Less, cfg)
			return out
		}},
	}
}

// TestPrefixConformanceAllKinds sweeps every workload distribution
// through AMS and RLM on both in-process backends and asserts that the
// prefix-cached comparator path produces output byte-identical to the
// plain comparator path (Config.NoPrefix). DupHeavy (16 distinct keys)
// and Sorted/Reverse are the interesting rows: equal-prefix runs and
// degenerate splitter trees exercise every tie fallback of the cached
// kernels.
func TestPrefixConformanceAllKinds(t *testing.T) {
	const p, perPE = 6, 200
	backends := []struct {
		name string
		run  func(fn func(c Communicator))
	}{
		{"sim", func(fn func(c Communicator)) {
			New(p).Run(func(pe *PE) { fn(World(pe)) })
		}},
		{"native", func(fn func(c Communicator)) {
			NewNative(p).Run(fn)
		}},
	}
	for _, kind := range conformanceKinds() {
		for _, s := range prefixSweepSorters() {
			for _, b := range backends {
				t.Run(kind.String()+"/"+s.name+"/"+b.name, func(t *testing.T) {
					locals := make([][]uint64, p)
					for rank := range locals {
						locals[rank] = workload.Local(kind, 77, p, perPE, rank)
					}
					base := Config{Levels: 2, Seed: 13, TieBreak: true}

					run := func(cfg Config) [][]uint64 {
						outs := make([][]uint64, p)
						b.run(func(c Communicator) {
							outs[c.Rank()] = s.run(c, append([]uint64(nil), locals[c.Rank()]...), cfg)
						})
						return outs
					}
					off := base
					off.NoPrefix = true
					plain := run(off)
					prefixed := run(base)

					total := 0
					var prev uint64
					for rank := 0; rank < p; rank++ {
						if !reflect.DeepEqual(plain[rank], prefixed[rank]) {
							t.Fatalf("PE %d: prefix path diverges from plain comparator path", rank)
						}
						for i, v := range prefixed[rank] {
							if v < prev {
								t.Fatalf("PE %d element %d: global order violated", rank, i)
							}
							prev = v
						}
						total += len(prefixed[rank])
					}
					if want := p * perPE; total != want {
						t.Fatalf("lost elements: %d of %d", total, want)
					}
				})
			}
		}
	}
}

// TestPrefixConformanceStructTies drives a struct element with an
// explicit coarse (non-injective) Config.Prefix hook through both
// in-process backends: equal-prefix groups spanning several distinct
// keys plus payload-carrying ties must still reproduce the plain path
// byte for byte.
func TestPrefixConformanceStructTies(t *testing.T) {
	type rec struct {
		K uint64
		V int
	}
	recLess := func(a, b rec) bool { return a.K < b.K }
	hook := func(e rec) uint64 { return e.K >> 3 }

	const p, perPE = 5, 300
	rng := rand.New(rand.NewSource(21))
	locals := make([][]rec, p)
	v := 0
	for rank := range locals {
		loc := make([]rec, perPE)
		for i := range loc {
			loc[i] = rec{K: uint64(rng.Intn(40)), V: v}
			v++
		}
		locals[rank] = loc
	}

	backends := []struct {
		name string
		run  func(fn func(c Communicator))
	}{
		{"sim", func(fn func(c Communicator)) {
			New(p).Run(func(pe *PE) { fn(World(pe)) })
		}},
		{"native", func(fn func(c Communicator)) {
			NewNative(p).Run(fn)
		}},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			run := func(cfg Config) [][]rec {
				outs := make([][]rec, p)
				b.run(func(c Communicator) {
					outs[c.Rank()], _ = AMSSort(c, append([]rec(nil), locals[c.Rank()]...), recLess, cfg)
				})
				return outs
			}
			plain := run(Config{Levels: 2, Seed: 17, TieBreak: true, NoPrefix: true})
			prefixed := run(Config{Levels: 2, Seed: 17, TieBreak: true, Prefix: hook})
			if !reflect.DeepEqual(plain, prefixed) {
				t.Fatalf("coarse struct prefix path diverges from plain comparator path")
			}
		})
	}
}

// TestTCPPrefixStructSingleProcess pins the Config.Prefix hook on the
// TCP backend's public API (the multi-process prefix coverage rides in
// TestTCPConformanceMultiProcess, whose AMS/RLM cases run prefix-on and
// whose AMS-noprefix case runs prefix-off).
func TestTCPPrefixStructSingleProcess(t *testing.T) {
	type tcpRec struct {
		K uint64
		V int
	}
	recLess := func(a, b tcpRec) bool { return a.K < b.K }
	cl, err := NewTCP(0, []string{"127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	in := []tcpRec{{9, 0}, {1, 1}, {9, 2}, {4, 3}, {1, 4}}
	var out []tcpRec
	if _, err := cl.Run(func(c Communicator) {
		out, _ = AMSSort(c, append([]tcpRec(nil), in...), recLess,
			Config{Levels: 1, Seed: 3, Prefix: func(e tcpRec) uint64 { return e.K >> 2 }})
	}); err != nil {
		t.Fatal(err)
	}
	want := []tcpRec{{1, 1}, {1, 4}, {4, 3}, {9, 0}, {9, 2}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("single-rank TCP prefix sort: %v, want %v", out, want)
	}
}
