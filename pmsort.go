// Package pmsort is a Go reproduction of Axtmann, Bingmann, Sanders,
// Schulz: "Practical Massively Parallel Sorting" (SPAA 2015): multi-level
// AMS-sort (adaptive multi-level sample sort) and RLM-sort (recurse-last
// multiway mergesort), together with every building block the paper
// describes — multisequence selection, fast work-inefficient sorting,
// scalable data delivery, optimal bucket grouping.
//
// The algorithms are written against a pluggable Communicator interface
// and run on three backends:
//
//   - the simulated cluster (New/NewCustom): a deterministic
//     distributed-memory machine with the paper's single-ported α-β cost
//     model (§2.1) and a SuperMUC-like topology. Algorithms execute for
//     real on real data; only time is virtual, charged per message
//     (α + ℓ·β by link class) and per local operation — model
//     experiments at 10k+ PEs finish in host seconds.
//   - the native cluster (NewNative): p goroutines of this process
//     exchanging data through channels with zero virtual-time
//     bookkeeping, so the identical algorithms sort real data at real
//     multicore speed, and phase statistics report wall-clock time.
//   - the TCP cluster (NewTCP): p single-PE processes — typically on
//     different machines — meshed with one persistent duplex TCP
//     connection per pair, exchanging payloads through the typed wire
//     codec of internal/wire. cmd/sortnode launches ranks.
//
// Quick start, simulated (virtual time, any p):
//
//	cl := pmsort.New(64) // 64 simulated PEs
//	outs := make([][]uint64, cl.P())
//	cl.Run(func(pe *pmsort.PE) {
//		data := makeMyLocalData(pe.Rank())
//		sorted, st := pmsort.AMSSort(pmsort.World(pe), data,
//			func(a, b uint64) bool { return a < b },
//			pmsort.Config{Levels: 2})
//		outs[pe.Rank()] = sorted
//		_ = st.TotalNS // virtual nanoseconds under the α-β model
//	})
//
// Quick start, native (wall-clock time, p ≈ GOMAXPROCS):
//
//	ncl := pmsort.NewNative(8) // 8 goroutine-PEs
//	outs := make([][]uint64, ncl.P())
//	elapsed := ncl.Run(func(c pmsort.Communicator) {
//		data := makeMyLocalData(c.Rank())
//		sorted, _ := pmsort.AMSSort(c, data,
//			func(a, b uint64) bool { return a < b },
//			pmsort.Config{Levels: 1})
//		outs[c.Rank()] = sorted
//	})
//	_ = elapsed // real time for the whole distributed sort
//
// Quick start, TCP (one process per rank; see cmd/sortnode for a
// ready-made launcher):
//
//	peers := []string{"10.0.0.1:9000", "10.0.0.2:9000"}
//	cl, err := pmsort.NewTCP(rank, peers) // blocks until the mesh is up
//	if err != nil { ... }
//	defer cl.Close()
//	elapsed, err := cl.Run(func(c pmsort.Communicator) {
//		sorted, _ := pmsort.AMSSort(c, myLocalData, less, pmsort.Config{Levels: 2})
//		...
//	})
//
// All backends produce bit-identical output for identical inputs and
// seeds (every collective is deterministic), which the conformance
// tests assert — including a real multi-process TCP cluster on
// loopback. See DESIGN.md for the cost model, the Communicator/backend
// architecture, and the wire protocol, and EXPERIMENTS.md for the
// reproduced results.
package pmsort

import (
	"context"
	"io"
	"time"

	"pmsort/internal/baseline"
	"pmsort/internal/chaos"
	"pmsort/internal/comm"
	"pmsort/internal/core"
	"pmsort/internal/delivery"
	"pmsort/internal/msel"
	"pmsort/internal/native"
	"pmsort/internal/netcomm"
	"pmsort/internal/obs"
	"pmsort/internal/sim"
	"pmsort/internal/svc"
	"pmsort/internal/wire"
)

// Re-exported communication and simulator types. A Communicator is an
// ordered group of PEs with this PE's position in it — the backend-
// neutral interface every algorithm accepts; a PE is one processing
// element of the simulated machine.
type (
	// Communicator is the pluggable communication interface (see
	// DESIGN.md §6): Size/Rank/GlobalRank, point-to-point Send/Recv,
	// local group splitting, and a cost-annotation hook the simulator
	// charges and other backends ignore.
	Communicator = comm.Communicator
	// PE is a processing element bound to the goroutine running it
	// (simulated backend).
	PE = sim.PE
	// Comm is the simulated backend's communicator.
	Comm = sim.Comm
	// Topology places PEs into nodes and islands.
	Topology = sim.Topology
	// CostModel holds the α-β and local-operation cost constants.
	CostModel = sim.CostModel
	// RunResult reports the virtual clocks after a Run.
	RunResult = sim.RunResult
	// Config tunes the sorting algorithms (levels, sampling factors,
	// delivery strategy, tie-breaking, and the local-kernel fast paths:
	// set Key to a func(E) uint64 embedding the element order to switch
	// the local sort phases to radix kernels, or — for comparator sorts
	// — set Prefix to an order-preserving, not necessarily injective
	// func(E) uint64 to route classification, local sorting, and merging
	// through cached uint64 compares with the comparator deciding only
	// equal-prefix ties; output stays byte-identical to the plain
	// comparator path. Ordered scalar/string element types derive a
	// Prefix automatically; NoPrefix opts out. See DESIGN.md §11.)
	Config = core.Config
	// Stats reports per-phase times and balance of a run (virtual ns on
	// the simulated backend, wall-clock ns on the native one).
	Stats = core.Stats
	// Phase identifies one of the four measured phases (§7.1).
	Phase = core.Phase
	// DeliveryOptions selects the data redistribution algorithm (§4.3).
	DeliveryOptions = delivery.Options
	// DeliveryStrategy is one of the §4.3 redistribution algorithms.
	DeliveryStrategy = delivery.Strategy
	// DeliveryExchange selects the bulk all-to-all algorithm (§7.1).
	DeliveryExchange = delivery.Exchange
)

// Bulk exchange algorithms (§7.1).
const (
	DeliveryOneFactor = delivery.OneFactor
	DeliveryDirect    = delivery.Direct
)

// Phases, in the order the paper's figures stack them.
const (
	PhaseSplitterSelection = core.PhaseSplitterSelection
	PhaseBucketProcessing  = core.PhaseBucketProcessing
	PhaseDataDelivery      = core.PhaseDataDelivery
	PhaseLocalSort         = core.PhaseLocalSort
	NumPhases              = core.NumPhases
)

// Delivery strategies (§4.3, §4.3.1, Appendix A).
const (
	DeliverySimple             = delivery.Simple
	DeliveryRandomized         = delivery.Randomized
	DeliveryRandomizedAdvanced = delivery.RandomizedAdvanced
	DeliveryDeterministic      = delivery.Deterministic
)

// DefaultTopology returns the SuperMUC-like hierarchy (16 PEs per node,
// 32 nodes per island).
func DefaultTopology() Topology { return sim.DefaultTopology() }

// FlatTopology returns a hierarchy-free placement (one island).
func FlatTopology() Topology { return sim.FlatTopology() }

// DefaultCost returns the calibrated cost constants.
func DefaultCost() CostModel { return sim.DefaultCost() }

// Cluster is a simulated distributed-memory machine.
type Cluster struct {
	m *sim.Machine
}

// New creates a cluster of p PEs with the default topology and costs.
func New(p int) *Cluster {
	return &Cluster{m: sim.NewDefault(p)}
}

// NewCustom creates a cluster with explicit topology and cost model.
func NewCustom(p int, topo Topology, cost CostModel) *Cluster {
	return &Cluster{m: sim.New(p, topo, cost)}
}

// P returns the number of PEs.
func (cl *Cluster) P() int { return cl.m.P() }

// Run executes fn once per PE (each on its own goroutine) and returns
// the final virtual clocks.
func (cl *Cluster) Run(fn func(pe *PE)) RunResult { return cl.m.Run(fn) }

// Reset zeroes all virtual clocks and counters between runs.
func (cl *Cluster) Reset() { cl.m.Reset() }

// PEInfo returns the PE with the given rank for counter inspection
// between runs.
func (cl *Cluster) PEInfo(rank int) *PE { return cl.m.PE(rank) }

// NativeCluster is a real shared-memory machine: p goroutines of this
// process exchanging data through channels, with no virtual-time
// bookkeeping. The same generic algorithms sort real data at real
// multicore speed on it; Stats report wall-clock nanoseconds.
type NativeCluster struct {
	m *native.Machine
}

// NewNative creates a native cluster of p goroutine-PEs. Throughput
// saturates around p = GOMAXPROCS; larger p still works (goroutines
// time-share cores).
func NewNative(p int) *NativeCluster {
	return &NativeCluster{m: native.New(p)}
}

// P returns the number of PEs.
func (cl *NativeCluster) P() int { return cl.m.P() }

// Run executes fn once per PE (each on its own goroutine), handing
// every PE its world communicator, and returns the wall-clock makespan.
func (cl *NativeCluster) Run(fn func(c Communicator)) time.Duration {
	return cl.m.Run(fn)
}

// WireEncoder is the custom element codec hook of the TCP backend:
// set Config.Encoder to one to sort element types the structural wire
// codec cannot serialize on its own (see internal/wire).
type WireEncoder = wire.Encoder

// TCPCluster is this process's endpoint of a multi-process TCP cluster
// (backend 3): each rank runs in its own process — typically on its own
// machine — and the ranks are meshed with one persistent duplex TCP
// connection per pair. Payloads cross process boundaries through a
// typed, self-describing wire codec; element types made of scalars and
// plain structs serialize automatically, anything else plugs in via
// Config.Encoder. Stats report wall-clock nanoseconds, like the native
// backend.
type TCPCluster struct {
	m *netcomm.Machine
}

// NewTCP joins (and, collectively, forms) a TCP cluster: peers is the
// same ordered list of host:port addresses on every process, and rank
// is this process's index in it. NewTCP binds peers[rank], connects the
// full mesh (blocking until all peers are up, retrying for the default
// 30s rendezvous window — NewTCPOpts with TCPOptions.RendezvousTimeout
// changes it), and returns the ready endpoint. A peer that never
// answers fails the rendezvous with an error naming its rank and
// address. Use cmd/sortnode to launch ranks, or call this from your own
// per-rank processes.
func NewTCP(rank int, peers []string) (*TCPCluster, error) {
	m, err := netcomm.New(rank, peers, netcomm.Options{})
	if err != nil {
		return nil, err
	}
	return &TCPCluster{m: m}, nil
}

// P returns the number of ranks in the cluster.
func (cl *TCPCluster) P() int { return cl.m.P() }

// Rank returns this process's rank.
func (cl *TCPCluster) Rank() int { return cl.m.Rank() }

// Run executes fn as this rank's PE program, handing it the world
// communicator. All ranks must call Run collectively with the same
// program. It returns this rank's wall-clock time; transport failures
// and algorithm panics come back as errors.
func (cl *TCPCluster) Run(fn func(c Communicator)) (time.Duration, error) {
	return cl.m.Run(fn)
}

// Close flushes outstanding sends, waits for the peers to hang up too,
// and tears the mesh down. Call it once, after the last Run.
func (cl *TCPCluster) Close() error { return cl.m.Close() }

// MeshHealth is the liveness view of a TCP cluster endpoint: the
// sticky fatal transport error (if any) and, when heartbeats are on
// (TCPOptions.HeartbeatInterval), each peer's last round-trip, pong
// age, and stall flag.
type MeshHealth = netcomm.MeshHealth

// Health reports this endpoint's view of the mesh's liveness.
func (cl *TCPCluster) Health() MeshHealth { return cl.m.Health() }

// ServeOptions tunes the sort service (see internal/svc): rank 0's HTTP
// listen address, the admission limits, and the gathered-result cutoff.
type ServeOptions = svc.Options

// Serve turns the cluster into a long-lived sort service until ctx is
// cancelled or a POST /shutdown arrives. Collective: every rank must
// call Serve. Rank 0 serves HTTP on opt.Addr — POST /jobs submits a
// sort (a workload spec or raw keys), GET /jobs/{id} polls it,
// GET /metrics reports job counts, phase latencies, bytes moved, and
// the transport counters — and dispatches admitted jobs to all ranks
// over reserved control tags; any number of jobs run concurrently on
// the one mesh, kept apart by per-job tag namespaces. A dead peer fails
// the jobs riding on the mesh, not the server: rank 0 keeps answering
// status and metrics in a degraded state. See cmd/sortnode -serve for
// the ready-made server and cmd/sortload for a load generator.
func (cl *TCPCluster) Serve(ctx context.Context, opt ServeOptions) error {
	var serveErr error
	_, runErr := cl.m.Run(func(c Communicator) {
		serveErr = svc.Serve(ctx, c, opt)
	})
	if runErr != nil {
		return runErr
	}
	return serveErr
}

// Chaos middleware (internal/chaos): a deterministic, seeded
// fault-and-contract-checking wrapper that composes over any backend.
// WrapChaos(c, cfg) returns a communicator that perturbs goroutine
// schedules, force-serializes every in-process payload through the wire
// codec (catching missing registrations, aliasing bugs, and forbidden
// post-Send mutation on the sim/native backends, not just on TCP), and
// audits declared message sizes. See DESIGN.md §8 for the torture
// harness built on it.
type (
	// ChaosConfig tunes the middleware; the zero value injects and
	// checks nothing.
	ChaosConfig = chaos.Config
	// ChaosAudit accumulates violations and counters across the PEs of
	// a run; share one via ChaosConfig.Audit.
	ChaosAudit = chaos.Audit
	// ChaosViolation is one detected contract violation.
	ChaosViolation = chaos.Violation
)

// WrapChaos wraps a communicator in the chaos middleware. Call it once
// per PE on the communicator the PE program starts from; communicators
// split from the wrapper stay wrapped. Equal seeds inject identical
// schedules, so a failing run replays from its seed.
func WrapChaos(c Communicator, cfg ChaosConfig) Communicator {
	return chaos.Wrap(c, cfg)
}

// Event is one entry of a message/annotation trace.
type Event = sim.Event

// EventKind classifies a trace event.
type EventKind = sim.EventKind

// Trace event kinds.
const (
	EvSend = sim.EvSend
	EvRecv = sim.EvRecv
	EvMark = sim.EvMark
)

// EnableTracing starts recording every send, receive, and PE.Mark with
// its virtual timestamp (host-time cost only, no virtual cost).
func (cl *Cluster) EnableTracing() { cl.m.EnableTracing() }

// DisableTracing stops recording (existing events are kept).
func (cl *Cluster) DisableTracing() { cl.m.DisableTracing() }

// ClearTrace drops all recorded events.
func (cl *Cluster) ClearTrace() { cl.m.ClearTrace() }

// Trace returns the recorded events sorted by (time, rank).
func (cl *Cluster) Trace() []Event { return cl.m.Trace() }

// WriteTrace dumps the trace in a one-line-per-event text format.
func (cl *Cluster) WriteTrace(w io.Writer) error { return cl.m.WriteTrace(w) }

// Observability (internal/obs): a backend-neutral tracer per rank —
// nestable spans with the backend's native clock (virtual nanoseconds on
// the simulator, wall-clock on native/TCP), named counters, and per-peer
// traffic tables. Tracing is off by default and costs nothing while off
// (every recording call is a nil-receiver no-op; benchmark-pinned).
// Enable it on the cluster, run a sort, then GatherTrace and export:
//
//	cl := pmsort.NewNative(4)
//	cl.EnableObs()
//	var trace *pmsort.ObsTrace
//	cl.Run(func(c pmsort.Communicator) {
//		sorted, _ := pmsort.AMSSort(c, data[c.Rank()], less, cfg)
//		if t := pmsort.GatherTrace(c); t != nil { trace = t } // rank 0
//	})
//	trace.WriteChrome(f)    // chrome://tracing / Perfetto JSON
//	trace.WriteReport(os.Stdout)
type (
	// ObsRecorder is one rank's tracer; recording methods on a nil
	// recorder are no-ops, which is the disabled path.
	ObsRecorder = obs.Recorder
	// ObsSnapshot is one rank's frozen trace (spans, counters, peers).
	ObsSnapshot = obs.Snapshot
	// ObsTrace is the merged multi-rank trace GatherTrace returns; it
	// exports WriteChrome, WriteReport, and Validate.
	ObsTrace = obs.Trace
	// ObsSpan is one recorded span interval.
	ObsSpan = obs.SpanRec
)

// EnableObs attaches an observability recorder to every PE; subsequent
// sorts emit spans and counters with virtual timestamps. Call before
// Run.
func (cl *Cluster) EnableObs() { cl.m.EnableObs() }

// ObsRecorder returns rank's recorder (nil before EnableObs).
func (cl *Cluster) ObsRecorder(rank int) *ObsRecorder { return cl.m.ObsRecorder(rank) }

// EnableObs attaches an observability recorder to every PE; subsequent
// sorts emit spans and counters with wall-clock timestamps, and PE
// goroutines get pprof labels (pmsort_rank). Call before Run.
func (cl *NativeCluster) EnableObs() { cl.m.EnableObs() }

// ObsRecorder returns rank's recorder (nil before EnableObs).
func (cl *NativeCluster) ObsRecorder(rank int) *ObsRecorder { return cl.m.ObsRecorder(rank) }

// TCPOptions configures a TCP cluster endpoint beyond the defaults.
type TCPOptions struct {
	// Obs attaches an observability recorder to this rank: sorts emit
	// spans and counters, the transport counts frames and vectored
	// writes, the mailbox tracks queue depth and blocked-receive wait,
	// and the IO goroutines get pprof labels.
	Obs bool
	// RendezvousTimeout bounds the whole mesh construction — bind, dial
	// retries, handshakes. 0 means 30s. Raise it when ranks start far
	// apart in time (slow schedulers); lower it to fail fast in tests.
	RendezvousTimeout time.Duration
	// HeartbeatInterval enables peer liveness: each rank pings every
	// peer at this cadence on a reserved transport tag and tracks the
	// round-trip. 0 disables heartbeats (set StallWindow alone and the
	// interval defaults to a quarter of it).
	HeartbeatInterval time.Duration
	// StallWindow is how long a peer may go without answering
	// heartbeats — or without draining its socket during a bulk write —
	// before this rank declares it stalled: receives from it fail with
	// *TransportError{Kind: KindStalled} until its heartbeats resume.
	// 0 disables stall detection and write deadlines.
	StallWindow time.Duration
}

// NewTCPOpts is NewTCP with explicit options.
func NewTCPOpts(rank int, peers []string, opt TCPOptions) (*TCPCluster, error) {
	m, err := netcomm.New(rank, peers, netcomm.Options{
		Obs:               opt.Obs,
		RendezvousTimeout: opt.RendezvousTimeout,
		HeartbeatInterval: opt.HeartbeatInterval,
		StallWindow:       opt.StallWindow,
	})
	if err != nil {
		return nil, err
	}
	return &TCPCluster{m: m}, nil
}

// ObsRecorder returns this rank's recorder (nil unless the cluster was
// created with TCPOptions.Obs).
func (cl *TCPCluster) ObsRecorder() *ObsRecorder { return cl.m.Recorder() }

// RecorderOf returns the observability recorder attached to a
// communicator, or nil when tracing is off — the hook PE programs use
// to add their own spans and counters next to the built-in ones.
func RecorderOf(c Communicator) *ObsRecorder { return obs.From(c) }

// GatherTrace collects every rank's trace snapshot at rank 0 and
// returns the merged trace there (nil on all other ranks). Collective
// call, made inside the PE program after the instrumented work. On the
// TCP backend the per-rank clocks are aligned with an NTP-style
// midpoint exchange before merging; on sim/native the offsets are ≈0.
// Ranks that never enabled tracing contribute empty snapshots, so the
// merged trace always covers all ranks.
func GatherTrace(c Communicator) *ObsTrace { return obs.Gather(c, obs.From(c)) }

// World returns the communicator containing all PEs of pe's cluster.
func World(pe *PE) *Comm { return sim.World(pe) }

// PlanLevels returns the per-level group counts used by the weak-scaling
// experiments (Table 1).
func PlanLevels(p, k int) []int { return core.PlanLevels(p, k) }

// AMSSort sorts the distributed data with adaptive multi-level sample
// sort (§6). Collective: all PEs of c must call it with identical cfg.
// The input slice is consumed (reordered in place and recycled as
// scratch); copy it first if you still need the original.
func AMSSort[E any](c Communicator, data []E, less func(a, b E) bool, cfg Config) ([]E, *Stats) {
	return core.AMSSort(c, data, less, cfg)
}

// RLMSort sorts the distributed data with recurse-last multiway
// mergesort (§5); the output is perfectly balanced. The input slice is
// consumed (sorted in place and recycled as scratch); copy it first if
// you still need the original.
func RLMSort[E any](c Communicator, data []E, less func(a, b E) bool, cfg Config) ([]E, *Stats) {
	return core.RLMSort(c, data, less, cfg)
}

// GVSampleSort is the single-level, centralized-splitter baseline (§3).
func GVSampleSort[E any](c Communicator, data []E, less func(a, b E) bool, seed uint64) ([]E, *Stats) {
	return baseline.GVSampleSort(c, data, less, seed)
}

// MPSort is the MP-sort style single-level baseline (§7.3).
func MPSort[E any](c Communicator, data []E, less func(a, b E) bool, seed uint64) ([]E, *Stats) {
	return baseline.MPSort(c, data, less, seed)
}

// BitonicSort is Batcher's bitonic sort over the PEs (p must be a power
// of two) — the log²p-communication extreme the paper's §1 motivates
// against.
func BitonicSort[E any](c Communicator, data []E, less func(a, b E) bool, seed uint64) ([]E, *Stats) {
	return baseline.BitonicSort(c, data, less, seed)
}

// HistogramSort is the Solomonik-Kale style single-level hybrid (§3);
// tol is the splitter rank tolerance as a fraction of n/p (≤0: 5%).
func HistogramSort[E any](c Communicator, data []E, less func(a, b E) bool, tol float64, seed uint64) ([]E, *Stats) {
	return baseline.HistogramSort(c, data, less, tol, seed)
}

// HCQuicksort is hypercube parallel quicksort (p must be a power of
// two) — fast but without balance or duplicate-key guarantees.
func HCQuicksort[E any](c Communicator, data []E, less func(a, b E) bool, seed uint64) ([]E, *Stats) {
	return baseline.HCQuicksort(c, data, less, seed)
}

// Multiselect finds, for each target global rank, a split position of
// this PE's locally sorted slice such that the positions sum to the
// target across PEs (multisequence selection, §4.1 — one of the paper's
// building blocks of independent interest). Collective call.
func Multiselect[E any](c Communicator, local []E, targets []int64, less func(a, b E) bool, seed uint64) []int {
	return msel.Select(c, local, targets, less, seed)
}

// Deliver redistributes pieces[j] to the j-th of len(pieces) balanced
// contiguous PE groups so that every group member receives an equal
// share (§4.3); the strategy in opt trades robustness against worst-case
// piece-size distributions. Collective call. Returns the received
// chunks.
func Deliver[E any](c Communicator, pieces [][]E, opt DeliveryOptions) [][]E {
	return delivery.Deliver(c, pieces, opt)
}
