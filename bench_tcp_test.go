// TCP-backend benchmarks: the distributed data path as a first-class,
// recorded artifact (BENCH_tcp.{txt,json}, scripts/bench.sh -tcp).
// Everything runs on an in-process loopback cluster — real sockets,
// real serialization, ranks time-sharing this process's cores — so
// ns/op measures transport + codec CPU cost, not network latency or
// multi-machine scaling. The headline benchmark is BenchmarkTCPAMS
// (p=4, 8 MB of uint64, keyed): the end-to-end number the streaming
// exchange PR moved and future transport work is measured against.
package pmsort

import (
	"fmt"
	"sync"
	"testing"

	"pmsort/internal/delivery"
	"pmsort/internal/expt"
	"pmsort/internal/workload"
)

// tcpBenchN is the fixed total input of the TCP sorting benchmarks:
// 1M uint64 = 8 MB end to end.
const tcpBenchN = 1 << 20

// benchLoopback builds a p-rank in-process loopback cluster, runs
// fn(clusters) for b.N iterations, and tears the cluster down. fn is
// responsible for running one collective program per rank.
func benchLoopback(b *testing.B, p int, fn func(b *testing.B, clusters []*TCPCluster)) {
	b.Helper()
	addrs, err := expt.ReserveLoopbackAddrs(p)
	if err != nil {
		b.Fatal(err)
	}
	clusters := make([]*TCPCluster, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cl, err := NewTCP(rank, addrs)
			if err != nil {
				b.Errorf("rank %d: %v", rank, err)
				return
			}
			clusters[rank] = cl
		}(rank)
	}
	wg.Wait()
	if b.Failed() {
		return
	}
	defer func() {
		b.StopTimer()
		var cwg sync.WaitGroup
		for _, cl := range clusters {
			cwg.Add(1)
			go func(cl *TCPCluster) {
				defer cwg.Done()
				cl.Close()
			}(cl)
		}
		cwg.Wait()
	}()
	fn(b, clusters)
}

// runRanks runs fn collectively on every rank of the cluster and waits.
func runRanks(b *testing.B, clusters []*TCPCluster, fn func(c Communicator, rank int)) {
	b.Helper()
	var run sync.WaitGroup
	for rank := range clusters {
		run.Add(1)
		go func(rank int) {
			defer run.Done()
			if _, err := clusters[rank].Run(func(c Communicator) { fn(c, rank) }); err != nil {
				b.Errorf("rank %d: %v", rank, err)
			}
		}(rank)
	}
	run.Wait()
}

// benchTCPSort runs one sorter over the fixed 8 MB input per iteration.
func benchTCPSort(b *testing.B, p int, sort func(c Communicator, data []uint64)) {
	perPE := tcpBenchN / p
	locals := make([][]uint64, p)
	for rank := range locals {
		locals[rank] = workload.Local(workload.Uniform, 42, p, perPE, rank)
	}
	benchLoopback(b, p, func(b *testing.B, clusters []*TCPCluster) {
		b.SetBytes(int64(8 * tcpBenchN))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runRanks(b, clusters, func(c Communicator, rank int) {
				// The sorters consume their input: hand each iteration a copy.
				sort(c, append([]uint64(nil), locals[rank]...))
			})
			if b.Failed() {
				return
			}
		}
	})
}

// BenchmarkTCPAMS is the headline distributed number: AMS-sort of 8 MB
// of uint64 on a p=4 loopback cluster, across the three local-kernel
// variants — keyed (Config.Key radix), cmp (plain comparator,
// NoPrefix), and cmpprefix (comparator with the derived prefix cache,
// the default for comparator sorts). The issue's acceptance gap is
// cmpprefix vs keyed.
func BenchmarkTCPAMS(b *testing.B) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"keyed", Config{Levels: 1, Seed: 42, Key: u64Key}},
		{"cmp", Config{Levels: 1, Seed: 42, NoPrefix: true}},
		{"cmpprefix", Config{Levels: 1, Seed: 42}},
	}
	for _, v := range variants {
		b.Run(fmt.Sprintf("%s-p4-n%d", v.name, tcpBenchN), func(b *testing.B) {
			cfg := v.cfg
			benchTCPSort(b, 4, func(c Communicator, data []uint64) {
				_, _ = AMSSort(c, data, u64Less, cfg)
			})
		})
	}
}

// BenchmarkTCPAMSStruct is BenchmarkTCPAMS on the padding-free struct
// element of BenchmarkNativeAMSStruct: 8 MB of 16-byte records crossing
// real sockets, sorted by the comparator path with and without the
// prefix cache. Struct payloads have no Config.Key radix option, so the
// cmp→prefix gap here is the whole win available to them.
func BenchmarkTCPAMSStruct(b *testing.B) {
	const p = 4
	variants := []struct {
		name string
		cfg  Config
	}{
		{"cmp", Config{Levels: 1, Seed: 42, NoPrefix: true}},
		{"prefix", Config{Levels: 1, Seed: 42, Prefix: func(e benchRec) uint64 { return e.K }}},
	}
	for _, v := range variants {
		b.Run(fmt.Sprintf("%s-p4-n%d", v.name, benchStructN), func(b *testing.B) {
			locals := structLocals(p, 42)
			benchLoopback(b, p, func(b *testing.B, clusters []*TCPCluster) {
				b.SetBytes(int64(16 * benchStructN))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runRanks(b, clusters, func(c Communicator, rank int) {
						_, _ = AMSSort(c, append([]benchRec(nil), locals[rank]...), benchRecLess, v.cfg)
					})
					if b.Failed() {
						return
					}
				}
			})
		})
	}
}

// BenchmarkTCPRLM is the RLM-sort counterpart (merge-based bucket
// processing, perfectly balanced output).
func BenchmarkTCPRLM(b *testing.B) {
	b.Run(fmt.Sprintf("keyed-p4-n%d", tcpBenchN), func(b *testing.B) {
		benchTCPSort(b, 4, func(c Communicator, data []uint64) {
			_, _ = RLMSort(c, data, u64Less, Config{Levels: 1, Seed: 42, Key: u64Key})
		})
	})
}

// BenchmarkTCPAlltoallv isolates the bulk exchange: every rank delivers
// p equal pieces of its 2 MB local slice to p single-PE groups through
// delivery.Deliver — the exact redistribution path of the sorters' data
// delivery phase, without sorting around it.
func BenchmarkTCPAlltoallv(b *testing.B) {
	const p = 4
	perPE := tcpBenchN / p
	for _, exch := range []delivery.Exchange{delivery.OneFactor, delivery.Direct} {
		name := "1factor"
		if exch == delivery.Direct {
			name = "direct"
		}
		b.Run(fmt.Sprintf("%s-p4-n%d", name, tcpBenchN), func(b *testing.B) {
			locals := make([][]uint64, p)
			for rank := range locals {
				locals[rank] = workload.Local(workload.Uniform, 7, p, perPE, rank)
			}
			benchLoopback(b, p, func(b *testing.B, clusters []*TCPCluster) {
				b.SetBytes(int64(8 * tcpBenchN))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runRanks(b, clusters, func(c Communicator, rank int) {
						data := locals[rank]
						pieces := make([][]uint64, p)
						for j := 0; j < p; j++ {
							pieces[j] = data[j*perPE/p : (j+1)*perPE/p]
						}
						_ = Deliver(c, pieces, DeliveryOptions{Exchange: exch})
					})
					if b.Failed() {
						return
					}
				}
			})
		})
	}
}
