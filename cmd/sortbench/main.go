// Command sortbench regenerates every table and figure of the paper's
// evaluation section (§7, Appendix E) on the simulated machine, and
// compares the simulated backend against the native shared-memory
// backend (virtual time next to wall-clock time). See DESIGN.md §3 for
// the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
//
// Usage:
//
//	sortbench -experiment all                 # everything, default grids
//	sortbench -experiment table2 -reps 5
//	sortbench -experiment fig8 -ps 512,2048 -perpe 1000,10000
//	sortbench -experiment fig10 -p 256 -n 10000
//	sortbench -experiment backends -ntotal 100000  # sim vs native vs TCP cluster
//	sortbench -experiment torture -seed 1027       # replay one torture case
//	sortbench -experiment torture -seed 1000 -count 100  # seeded sweep
//	sortbench -quick                          # small grids for a smoke run
//	sortbench -trace trace.json -report -     # one traced AMS run (native p=4):
//	                                          # Chrome trace JSON + text report
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pmsort/internal/expt"
)

func parseInts(s string) []int {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: bad integer list %q: %v\n", s, err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	// A sortbench process doubles as one rank of the TCP cluster the
	// backends experiment launches (one re-execution per rank).
	expt.MaybeRunTCPChild()
	var (
		experiment = flag.String("experiment", "all", "table1|table2|fig7|fig8|fig10|fig11|fig12|compare|delivery|alltoall|backends|torture|all")
		psFlag     = flag.String("ps", "", "comma-separated PE counts (default 512,2048,8192)")
		perpeFlag  = flag.String("perpe", "", "comma-separated n/p values (default 1000,10000,100000)")
		reps       = flag.Int("reps", 3, "repetitions per configuration (paper: 5)")
		seed       = flag.Uint64("seed", 42, "base random seed")
		sweepP     = flag.Int("p", 256, "PE count for the fig10/fig11 sweeps")
		sweepN     = flag.Int("n", 10000, "n/p for the fig10/fig11 sweeps")
		nativeN    = flag.Int("ntotal", 200_000, "TOTAL element count for the backends experiment (split over p)")
		count      = flag.Int("count", 1, "number of consecutive-seed cases for the torture experiment")
		quick      = flag.Bool("quick", false, "small grids for a fast smoke run")
		noTCP      = flag.Bool("notcp", false, "skip the multi-process TCP row of the backends experiment")
		kernels    = flag.String("kernels", "keyed,cmp,cmp+prefix", "backends experiment: comma-separated local-kernel rows (keyed|cmp|cmp+prefix)")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		traceOut   = flag.String("trace", "", "run one traced AMS sort and write the merged Chrome trace JSON here (chrome://tracing / Perfetto); skips the experiments")
		reportOut  = flag.String("report", "", "with/instead of -trace: write the traced run's plain-text span+counter report here ('-' = stdout)")
		traceBack  = flag.String("tracebackend", "native", "backend for the traced run: sim|native|tcp")
		traceP     = flag.Int("tracep", 4, "PE count for the traced run")
	)
	flag.Parse()

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}

	// Traced run: one instrumented AMS sort on the chosen backend, merged
	// multi-rank trace out, no experiment tables.
	if *traceOut != "" || *reportOut != "" {
		p := *traceP
		perPE := *nativeN / p
		k := 1
		if p >= 4 {
			k = 2 // multi-level traces show the per-level span hierarchy
		}
		spec := expt.Spec{Algo: expt.AMS, P: p, PerPE: perPE, Levels: k, Seed: *seed, Keyed: true}
		if err := expt.TraceRun(spec, *traceBack, *traceOut, *reportOut, progress); err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	opt := expt.SuiteOptions{
		Ps:     parseInts(*psFlag),
		PerPEs: parseInts(*perpeFlag),
		Reps:   *reps,
		Seed:   *seed,
	}
	opt.Progress = progress
	if *quick {
		if opt.Ps == nil {
			opt.Ps = []int{64, 256, 1024}
		}
		if opt.PerPEs == nil {
			opt.PerPEs = []int{256, 2048, 16384}
		}
		if *sweepP == 256 {
			*sweepP = 64
		}
		if *sweepN == 10000 {
			*sweepN = 1024
		}
	}
	opt = opt.Defaults()
	w := os.Stdout

	needWeak := map[string]bool{"table2": true, "fig7": true, "fig8": true, "fig12": true, "all": true}
	var weak *expt.WeakData
	if needWeak[*experiment] {
		algos := []expt.Algo{expt.AMS}
		if *experiment == "fig7" || *experiment == "all" {
			algos = append(algos, expt.RLM)
		}
		weak = expt.RunWeakScaling(opt, algos)
	}

	// Torture is a repro/soak tool, not a paper experiment: it never runs
	// under -experiment all, and a failed invariant exits non-zero.
	if *experiment == "torture" {
		if err := expt.Torture(w, *seed, *count, progress); err != nil {
			os.Exit(1)
		}
		return
	}

	section := func(name string, fn func()) {
		if *experiment == name || *experiment == "all" {
			fn()
			fmt.Fprintln(w)
		}
	}
	section("table1", func() { expt.Table1(w, nil) })
	section("table2", func() { weak.Table2(w) })
	section("fig7", func() { weak.Fig7(w) })
	section("fig8", func() { weak.Fig8(w) })
	section("fig10", func() { expt.Fig10(w, *sweepP, *sweepN, *reps, *seed, progress) })
	section("fig11", func() { expt.Fig11(w, *sweepP, *sweepN, *reps, *seed, progress) })
	section("fig12", func() { weak.Fig12(w) })
	section("compare", func() { expt.Compare(w, opt) })
	section("delivery", func() { expt.DeliveryAblation(w, min(opt.Ps[len(opt.Ps)-1], 512), 1000, *reps, *seed, progress) })
	section("alltoall", func() { expt.AlltoallAblation(w, nil, 1000, *reps, *seed, progress) })
	// The sim-vs-native backend comparison runs real goroutines, so its
	// PE counts follow the host, not the simulated grids.
	section("backends", func() {
		ps := []int{1, 2, 4, 8, 16}
		n := *nativeN
		if *quick {
			ps = []int{1, 2, 4}
			if n == 200_000 {
				n = 20_000
			}
		}
		ks := strings.Split(*kernels, ",")
		for i := range ks {
			ks[i] = strings.TrimSpace(ks[i])
		}
		if err := expt.Backends(w, ps, n, *reps, *seed, !*noTCP, ks, progress); err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: %v\n", err)
			os.Exit(2)
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
