// Command sortload hammers a sort service (sortnode -serve) with many
// small concurrent jobs and validates every result — the traffic
// generator for the service layer.
//
// Against a running service:
//
//	sortload -url http://127.0.0.1:8080 -jobs 1000 -concurrency 8 -n 4096
//
// Self-contained (brings up a p-rank loopback cluster inside this
// process — real TCP sockets and a real HTTP server — runs the load,
// and shuts it down):
//
//	sortload -local -p 4 -jobs 1000 -concurrency 16 -n 4096
//
// Each job is either a workload-spec sort (the service generates the
// input from a seed; sortload independently recomputes the expected
// multiset hash) or — for -rawpct of jobs — a raw-key sort (sortload
// generates random keys, submits them, and compares the returned keys
// against its own sorted copy). Jobs cycle through -kinds and use
// distinct seeds. Any wrong answer, failed job, or non-2xx response
// counts as a failure and makes sortload exit 1. The run ends with a
// GET /metrics scrape and a one-line summary.
//
// Fault drill (-local only): -faults wraps every rank's connections in
// a seeded netfault injector (latency, jitter, torn writes, short read
// stalls) with heartbeats on, and hard-aborts the last rank once ~60%
// of the jobs have been submitted:
//
//	sortload -local -p 4 -jobs 200 -faults
//
// Under the drill the pass criterion changes: every job must either
// validate exactly as above or fail *typed* — a failed status carrying
// a transport error_kind, or a 503 from the degraded/draining service.
// An untyped failure, a wrong answer, or a hang (the -deadline
// watchdog) still exits nonzero, as does a drill where no job
// validated, none failed typed, or the injector never fired.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pmsort/internal/comm"
	"pmsort/internal/netcomm"
	"pmsort/internal/netfault"
	"pmsort/internal/prng"
	"pmsort/internal/svc"
	"pmsort/internal/workload"
)

var kindVals = map[string]workload.Kind{
	"uniform":       workload.Uniform,
	"skewed":        workload.Skewed,
	"dup-heavy":     workload.DupHeavy,
	"sorted":        workload.Sorted,
	"reverse":       workload.Reverse,
	"almost-sorted": workload.AlmostSorted,
}

func main() {
	var (
		url         = flag.String("url", "", "base URL of a running sort service")
		local       = flag.Bool("local", false, "bring up an in-process loopback service instead of -url")
		p           = flag.Int("p", 4, "cluster size for -local")
		jobs        = flag.Int("jobs", 1000, "total jobs to submit")
		concurrency = flag.Int("concurrency", 8, "concurrent submitters")
		n           = flag.Int64("n", 4096, "total elements per job")
		algoStr     = flag.String("algo", "ams", "algorithm for every job")
		kindsStr    = flag.String("kinds", "uniform,dup-heavy,sorted", "comma-separated workload kinds, cycled across jobs")
		levels      = flag.Int("levels", 1, "recursion levels per job")
		rawPct      = flag.Int("rawpct", 20, "percent of jobs submitted as raw keys (0-100)")
		seed        = flag.Uint64("seed", 1, "base seed; job i uses seed+i")
		verbose     = flag.Bool("v", false, "log every failure as it happens")
		faults      = flag.Bool("faults", false, "fault drill: inject network faults and abort one rank mid-run (-local only)")
		faultSeed   = flag.Uint64("faultseed", 0, "fault schedule seed for -faults (0: derive from -seed)")
		deadline    = flag.Duration("deadline", 3*time.Minute, "watchdog for -faults: the drill must finish within this or exit nonzero (0: off)")
	)
	flag.Parse()

	kinds := strings.Split(*kindsStr, ",")
	for _, k := range kinds {
		if _, ok := kindVals[strings.TrimSpace(k)]; !ok {
			fatalf("unknown kind %q (one-pe is not load-generator material)", k)
		}
	}
	if *rawPct < 0 || *rawPct > 100 {
		fatalf("-rawpct must be 0-100")
	}

	ld := &loader{
		jobs:        *jobs,
		concurrency: *concurrency,
		n:           *n,
		algo:        *algoStr,
		kinds:       kinds,
		levels:      *levels,
		rawPct:      *rawPct,
		seed:        *seed,
		verbose:     *verbose,
		faults:      *faults,
		faultSeed:   *faultSeed,
		client:      &http.Client{Timeout: 5 * time.Minute},
	}
	if ld.faults {
		if !*local {
			fatalf("-faults needs -local (the injector wraps in-process connections)")
		}
		if *p < 2 {
			fatalf("-faults needs -p >= 2 (the drill aborts a worker rank)")
		}
		if ld.faultSeed == 0 {
			ld.faultSeed = *seed ^ 0xfa_17_5eed
		}
		if *deadline > 0 {
			// The drill's core promise is "never hangs": convert any wedge
			// into a loud nonzero exit instead of a stuck process.
			time.AfterFunc(*deadline, func() {
				fmt.Fprintf(os.Stderr, "sortload: watchdog: fault drill still running after %v\n", *deadline)
				os.Exit(1)
			})
		}
	}

	switch {
	case *local:
		os.Exit(runLocal(ld, *p))
	case *url != "":
		ld.base = strings.TrimRight(*url, "/")
		os.Exit(ld.run())
	default:
		fatalf("need -url or -local")
	}
}

// runLocal hosts the service in-process: a p-rank loopback TCP cluster,
// every rank serving, rank 0's HTTP address handed to the loader. The
// loader shuts the service down over HTTP when it is done.
//
// Under -faults every rank's connections go through a seeded netfault
// injector and heartbeats run; the loader hard-aborts rank p-1 once
// ~60% of the jobs are submitted, after which the mesh is fatally
// poisoned and the surviving coordinator must fail the rest typed.
func runLocal(ld *loader, p int) int {
	optFor := func(rank int) netcomm.Options { return netcomm.Options{} }
	if ld.faults {
		prof := netfault.Profile{
			Latency:         50 * time.Microsecond,
			Jitter:          200 * time.Microsecond,
			MaxWriteChunk:   1024,
			StallEveryBytes: 64 << 10,
			StallDuration:   2 * time.Millisecond,
		}
		ld.injs = make([]*netfault.Injector, p)
		for rank := range ld.injs {
			ld.injs[rank] = netfault.New(ld.faultSeed^(uint64(rank+1)<<40), prof)
		}
		ld.abortAt = ld.jobs * 6 / 10
		fmt.Printf("sortload: fault drill: repro %s per rank (faultseed %#x), abort of rank %d after %d submissions\n",
			ld.injs[0], ld.faultSeed, p-1, ld.abortAt)
		optFor = func(rank int) netcomm.Options {
			return netcomm.Options{
				HeartbeatInterval: 50 * time.Millisecond,
				StallWindow:       2 * time.Second, // injected stalls are 2ms; only real trouble trips it
				WrapConn:          ld.injs[rank].Wrap,
			}
		}
	}

	urlCh := make(chan string, 1)
	clusterErr := make(chan error, 1)
	status := make(chan int, 1)
	go func() {
		clusterErr <- netcomm.LocalClusterOpts(p, 0, optFor, func(m *netcomm.Machine, rank int) error {
			if ld.faults && rank == p-1 {
				ld.victim.Store(m)
			}
			var serveErr error
			_, runErr := m.Run(func(c comm.Communicator) {
				serveErr = svc.Serve(context.Background(), c, svc.Options{
					Ready: func(u string) { urlCh <- u },
				})
			})
			if runErr != nil {
				return runErr
			}
			return serveErr
		})
	}()
	go func() {
		ld.base = <-urlCh
		s := ld.run()
		resp, err := ld.client.Post(ld.base+"/shutdown", "application/json", nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sortload: shutdown: %v\n", err)
			s = 1
		} else {
			resp.Body.Close()
		}
		status <- s
	}()
	if err := <-clusterErr; err != nil {
		if ld.aborted.Load() {
			// The drill killed a rank on purpose; its peers' meshes tear
			// down with transport errors. That is the scenario, not a bug.
			fmt.Printf("sortload: cluster tore down after the injected abort (expected): %v\n", err)
			return <-status
		}
		fmt.Fprintf(os.Stderr, "sortload: cluster: %v\n", err)
		return 1
	}
	return <-status
}

type loader struct {
	base        string
	jobs        int
	concurrency int
	n           int64
	algo        string
	kinds       []string
	levels      int
	rawPct      int
	seed        uint64
	client      *http.Client

	p int // cluster size, learned from /metrics before the load starts

	// Fault-drill state (-faults).
	faultSeed uint64
	abortAt   int // submission index that triggers the rank abort
	injs      []*netfault.Injector
	victim    atomic.Pointer[netcomm.Machine]
	abortOnce sync.Once
	aborted   atomic.Bool

	completed atomic.Int64
	failed    atomic.Int64
	typed     atomic.Int64 // drill-acceptable failures: typed kinds and 503s

	verbose bool
	faults  bool
}

// typedFailure is a job outcome that is acceptable under -faults: the
// service refused or failed the job with an explicit, classified cause
// rather than a wrong answer, an untyped error, or a hang.
type typedFailure struct{ msg string }

func (e typedFailure) Error() string { return e.msg }

// abortVictim fires the drill's mid-run fault for real: a hard abort
// of rank p-1's machine (sockets reset, mailbox poisoned "aborted").
func (ld *loader) abortVictim() {
	ld.abortOnce.Do(func() {
		if m := ld.victim.Load(); m != nil {
			fmt.Printf("sortload: aborting rank %d mid-run\n", ld.p-1)
			ld.aborted.Store(true)
			m.Abort()
		}
	})
}

func (ld *loader) run() int {
	met, err := ld.scrapeMetrics()
	if err != nil || met.P <= 0 {
		fmt.Fprintf(os.Stderr, "sortload: service not answering /metrics at %s: %v\n", ld.base, err)
		return 1
	}
	ld.p = met.P

	start := time.Now()
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < ld.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				err := ld.oneJob(i)
				var tf typedFailure
				switch {
				case err == nil:
					ld.completed.Add(1)
				case ld.faults && errors.As(err, &tf):
					ld.typed.Add(1)
					if ld.verbose {
						fmt.Fprintf(os.Stderr, "sortload: job %d failed typed: %v\n", i, err)
					}
				default:
					ld.failed.Add(1)
					if ld.verbose {
						fmt.Fprintf(os.Stderr, "sortload: job %d: %v\n", i, err)
					}
				}
			}
		}()
	}
	for i := 0; i < ld.jobs; i++ {
		if ld.faults && i == ld.abortAt {
			ld.abortVictim()
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(start)

	met, err = ld.scrapeMetrics()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sortload: scraping /metrics: %v\n", err)
		ld.failed.Add(1)
	}

	ok, bad, typed := ld.completed.Load(), ld.failed.Load(), ld.typed.Load()
	fmt.Printf("sortload: %d jobs in %v (%.1f jobs/s), %d ok, %d failed",
		ld.jobs, elapsed.Round(time.Millisecond),
		float64(ld.jobs)/elapsed.Seconds(), ok, bad)
	if ld.faults {
		fmt.Printf(", %d failed typed", typed)
	}
	if met != nil {
		fmt.Printf("; service: %d completed, %d failed, %d elements, %d bytes moved",
			met.Jobs.Completed, met.Jobs.Failed, met.ElementsSorted, met.BytesMoved)
		if met.Jobs.Failed > 0 && !ld.faults {
			bad += met.Jobs.Failed
		}
	}
	fmt.Println()
	if ld.faults {
		// The drill must demonstrably have happened: jobs validated
		// before the abort, jobs failed typed after it, and the injector
		// actually fired faults.
		var fired int64
		for _, in := range ld.injs {
			s := in.Stats()
			fired += s.Delays + s.ShortWrites + s.Stalls
		}
		switch {
		case ok == 0:
			fmt.Fprintln(os.Stderr, "sortload: fault drill: no job validated before the abort")
			bad++
		case typed == 0:
			fmt.Fprintln(os.Stderr, "sortload: fault drill: no job failed typed after the abort")
			bad++
		case fired == 0:
			fmt.Fprintln(os.Stderr, "sortload: fault drill: injector never fired")
			bad++
		default:
			fmt.Printf("sortload: fault drill ok: %d validated, %d typed failures, %d injected faults\n",
				ok, typed, fired)
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// oneJob submits and validates the i-th job.
func (ld *loader) oneJob(i int) error {
	seed := ld.seed + uint64(i)
	if ld.rawPct > 0 && i%100 < ld.rawPct {
		return ld.rawJob(i, seed)
	}
	return ld.workloadJob(i, seed)
}

// rawJob submits locally generated keys and checks the echoed output is
// exactly the sorted input.
func (ld *loader) rawJob(i int, seed uint64) error {
	rng := prng.New(seed)
	keys := make([]uint64, ld.n)
	for j := range keys {
		keys[j] = rng.Next()
	}
	st, err := ld.post(svc.JobRequest{Algo: ld.algo, Keys: keys, Seed: seed, Levels: ld.levels, Wait: true})
	if err != nil {
		return err
	}
	if st.Status != svc.StatusDone {
		return jobFailure(st)
	}
	want := slices.Clone(keys)
	slices.Sort(want)
	if !slices.Equal(st.Keys, want) {
		return fmt.Errorf("raw job output is not the sorted input (%d keys back, %d submitted)", len(st.Keys), len(want))
	}
	return nil
}

// workloadJob submits a spec job and validates the count and the
// independently recomputed multiset hash (plus order, when gathered).
func (ld *loader) workloadJob(i int, seed uint64) error {
	kindName := strings.TrimSpace(ld.kinds[i%len(ld.kinds)])
	st, err := ld.post(svc.JobRequest{
		Algo: ld.algo, Kind: kindName, N: ld.n, Seed: seed, Levels: ld.levels, Wait: true,
	})
	if err != nil {
		return err
	}
	if st.Status != svc.StatusDone {
		return jobFailure(st)
	}
	if st.Count != st.N {
		return fmt.Errorf("count %d, want %d", st.Count, st.N)
	}
	// Recompute the expected multiset hash the way the service's ranks
	// generated their slices — same kind, seed, and geometry (the service
	// rounds n up to perPE·p; st.N reports the rounded total).
	perPE := int(st.N) / ld.p
	var want uint64
	for rank := 0; rank < ld.p; rank++ {
		for _, k := range workload.Local(kindVals[kindName], seed, ld.p, perPE, rank) {
			want += prng.Mix64(k)
		}
	}
	if st.Sum != want {
		return fmt.Errorf("multiset hash %#x, want %#x", st.Sum, want)
	}
	if len(st.Keys) > 0 && !slices.IsSorted(st.Keys) {
		return fmt.Errorf("gathered output not sorted")
	}
	return nil
}

// jobFailure renders a non-done final status as an error — typed when
// the service classified the cause (transport kind or deadline), so
// the fault drill can tell expected casualties from real bugs.
func jobFailure(st *svc.JobStatus) error {
	msg := fmt.Sprintf("status %q: %s", st.Status, st.Error)
	if st.ErrorKind != "" {
		return typedFailure{msg: fmt.Sprintf("%s (kind %s, rank %d, %d attempts)", msg, st.ErrorKind, st.ErrorRank, st.Attempts)}
	}
	return fmt.Errorf("%s", msg)
}

func (ld *loader) post(req svc.JobRequest) (*svc.JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := ld.client.Post(ld.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Degraded or draining: an explicit, classified refusal.
			return nil, typedFailure{msg: fmt.Sprintf("HTTP 503: %s", strings.TrimSpace(string(raw)))}
		}
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var st svc.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("decoding job status: %w", err)
	}
	return &st, nil
}

func (ld *loader) scrapeMetrics() (*svc.Metrics, error) {
	resp, err := ld.client.Get(ld.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var met svc.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		return nil, err
	}
	return &met, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sortload: "+format+"\n", args...)
	os.Exit(1)
}
