// Command sortload hammers a sort service (sortnode -serve) with many
// small concurrent jobs and validates every result — the traffic
// generator for the service layer.
//
// Against a running service:
//
//	sortload -url http://127.0.0.1:8080 -jobs 1000 -concurrency 8 -n 4096
//
// Self-contained (brings up a p-rank loopback cluster inside this
// process — real TCP sockets and a real HTTP server — runs the load,
// and shuts it down):
//
//	sortload -local -p 4 -jobs 1000 -concurrency 16 -n 4096
//
// Each job is either a workload-spec sort (the service generates the
// input from a seed; sortload independently recomputes the expected
// multiset hash) or — for -rawpct of jobs — a raw-key sort (sortload
// generates random keys, submits them, and compares the returned keys
// against its own sorted copy). Jobs cycle through -kinds and use
// distinct seeds. Any wrong answer, failed job, or non-2xx response
// counts as a failure and makes sortload exit 1. The run ends with a
// GET /metrics scrape and a one-line summary.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pmsort/internal/comm"
	"pmsort/internal/netcomm"
	"pmsort/internal/prng"
	"pmsort/internal/svc"
	"pmsort/internal/workload"
)

var kindVals = map[string]workload.Kind{
	"uniform":       workload.Uniform,
	"skewed":        workload.Skewed,
	"dup-heavy":     workload.DupHeavy,
	"sorted":        workload.Sorted,
	"reverse":       workload.Reverse,
	"almost-sorted": workload.AlmostSorted,
}

func main() {
	var (
		url         = flag.String("url", "", "base URL of a running sort service")
		local       = flag.Bool("local", false, "bring up an in-process loopback service instead of -url")
		p           = flag.Int("p", 4, "cluster size for -local")
		jobs        = flag.Int("jobs", 1000, "total jobs to submit")
		concurrency = flag.Int("concurrency", 8, "concurrent submitters")
		n           = flag.Int64("n", 4096, "total elements per job")
		algoStr     = flag.String("algo", "ams", "algorithm for every job")
		kindsStr    = flag.String("kinds", "uniform,dup-heavy,sorted", "comma-separated workload kinds, cycled across jobs")
		levels      = flag.Int("levels", 1, "recursion levels per job")
		rawPct      = flag.Int("rawpct", 20, "percent of jobs submitted as raw keys (0-100)")
		seed        = flag.Uint64("seed", 1, "base seed; job i uses seed+i")
		verbose     = flag.Bool("v", false, "log every failure as it happens")
	)
	flag.Parse()

	kinds := strings.Split(*kindsStr, ",")
	for _, k := range kinds {
		if _, ok := kindVals[strings.TrimSpace(k)]; !ok {
			fatalf("unknown kind %q (one-pe is not load-generator material)", k)
		}
	}
	if *rawPct < 0 || *rawPct > 100 {
		fatalf("-rawpct must be 0-100")
	}

	ld := &loader{
		jobs:        *jobs,
		concurrency: *concurrency,
		n:           *n,
		algo:        *algoStr,
		kinds:       kinds,
		levels:      *levels,
		rawPct:      *rawPct,
		seed:        *seed,
		verbose:     *verbose,
		client:      &http.Client{Timeout: 5 * time.Minute},
	}

	switch {
	case *local:
		os.Exit(runLocal(ld, *p))
	case *url != "":
		ld.base = strings.TrimRight(*url, "/")
		os.Exit(ld.run())
	default:
		fatalf("need -url or -local")
	}
}

// runLocal hosts the service in-process: a p-rank loopback TCP cluster,
// every rank serving, rank 0's HTTP address handed to the loader. The
// loader shuts the service down over HTTP when it is done.
func runLocal(ld *loader, p int) int {
	urlCh := make(chan string, 1)
	clusterErr := make(chan error, 1)
	status := make(chan int, 1)
	go func() {
		clusterErr <- netcomm.LocalCluster(p, 0, func(m *netcomm.Machine, rank int) error {
			var serveErr error
			_, runErr := m.Run(func(c comm.Communicator) {
				serveErr = svc.Serve(context.Background(), c, svc.Options{
					Ready: func(u string) { urlCh <- u },
				})
			})
			if runErr != nil {
				return runErr
			}
			return serveErr
		})
	}()
	go func() {
		ld.base = <-urlCh
		s := ld.run()
		resp, err := ld.client.Post(ld.base+"/shutdown", "application/json", nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sortload: shutdown: %v\n", err)
			s = 1
		} else {
			resp.Body.Close()
		}
		status <- s
	}()
	if err := <-clusterErr; err != nil {
		fmt.Fprintf(os.Stderr, "sortload: cluster: %v\n", err)
		return 1
	}
	return <-status
}

type loader struct {
	base        string
	jobs        int
	concurrency int
	n           int64
	algo        string
	kinds       []string
	levels      int
	rawPct      int
	seed        uint64
	verbose     bool
	client      *http.Client

	p int // cluster size, learned from /metrics before the load starts

	completed atomic.Int64
	failed    atomic.Int64
}

func (ld *loader) run() int {
	met, err := ld.scrapeMetrics()
	if err != nil || met.P <= 0 {
		fmt.Fprintf(os.Stderr, "sortload: service not answering /metrics at %s: %v\n", ld.base, err)
		return 1
	}
	ld.p = met.P

	start := time.Now()
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < ld.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ld.oneJob(i); err != nil {
					ld.failed.Add(1)
					if ld.verbose {
						fmt.Fprintf(os.Stderr, "sortload: job %d: %v\n", i, err)
					}
				} else {
					ld.completed.Add(1)
				}
			}
		}()
	}
	for i := 0; i < ld.jobs; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(start)

	met, err = ld.scrapeMetrics()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sortload: scraping /metrics: %v\n", err)
		ld.failed.Add(1)
	}

	ok, bad := ld.completed.Load(), ld.failed.Load()
	fmt.Printf("sortload: %d jobs in %v (%.1f jobs/s), %d ok, %d failed",
		ld.jobs, elapsed.Round(time.Millisecond),
		float64(ld.jobs)/elapsed.Seconds(), ok, bad)
	if met != nil {
		fmt.Printf("; service: %d completed, %d failed, %d elements, %d bytes moved",
			met.Jobs.Completed, met.Jobs.Failed, met.ElementsSorted, met.BytesMoved)
		if met.Jobs.Failed > 0 {
			bad += met.Jobs.Failed
		}
	}
	fmt.Println()
	if bad > 0 {
		return 1
	}
	return 0
}

// oneJob submits and validates the i-th job.
func (ld *loader) oneJob(i int) error {
	seed := ld.seed + uint64(i)
	if ld.rawPct > 0 && i%100 < ld.rawPct {
		return ld.rawJob(i, seed)
	}
	return ld.workloadJob(i, seed)
}

// rawJob submits locally generated keys and checks the echoed output is
// exactly the sorted input.
func (ld *loader) rawJob(i int, seed uint64) error {
	rng := prng.New(seed)
	keys := make([]uint64, ld.n)
	for j := range keys {
		keys[j] = rng.Next()
	}
	st, err := ld.post(svc.JobRequest{Algo: ld.algo, Keys: keys, Seed: seed, Levels: ld.levels, Wait: true})
	if err != nil {
		return err
	}
	if st.Status != svc.StatusDone {
		return fmt.Errorf("status %q: %s", st.Status, st.Error)
	}
	want := slices.Clone(keys)
	slices.Sort(want)
	if !slices.Equal(st.Keys, want) {
		return fmt.Errorf("raw job output is not the sorted input (%d keys back, %d submitted)", len(st.Keys), len(want))
	}
	return nil
}

// workloadJob submits a spec job and validates the count and the
// independently recomputed multiset hash (plus order, when gathered).
func (ld *loader) workloadJob(i int, seed uint64) error {
	kindName := strings.TrimSpace(ld.kinds[i%len(ld.kinds)])
	st, err := ld.post(svc.JobRequest{
		Algo: ld.algo, Kind: kindName, N: ld.n, Seed: seed, Levels: ld.levels, Wait: true,
	})
	if err != nil {
		return err
	}
	if st.Status != svc.StatusDone {
		return fmt.Errorf("status %q: %s", st.Status, st.Error)
	}
	if st.Count != st.N {
		return fmt.Errorf("count %d, want %d", st.Count, st.N)
	}
	// Recompute the expected multiset hash the way the service's ranks
	// generated their slices — same kind, seed, and geometry (the service
	// rounds n up to perPE·p; st.N reports the rounded total).
	perPE := int(st.N) / ld.p
	var want uint64
	for rank := 0; rank < ld.p; rank++ {
		for _, k := range workload.Local(kindVals[kindName], seed, ld.p, perPE, rank) {
			want += prng.Mix64(k)
		}
	}
	if st.Sum != want {
		return fmt.Errorf("multiset hash %#x, want %#x", st.Sum, want)
	}
	if len(st.Keys) > 0 && !slices.IsSorted(st.Keys) {
		return fmt.Errorf("gathered output not sorted")
	}
	return nil
}

func (ld *loader) post(req svc.JobRequest) (*svc.JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := ld.client.Post(ld.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var st svc.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("decoding job status: %w", err)
	}
	return &st, nil
}

func (ld *loader) scrapeMetrics() (*svc.Metrics, error) {
	resp, err := ld.client.Get(ld.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var met svc.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		return nil, err
	}
	return &met, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sortload: "+format+"\n", args...)
	os.Exit(1)
}
