// Command benchjson converts standard `go test -bench` text output —
// the format benchstat consumes — into a JSON array, one record per
// benchmark line, so perf trajectories can accumulate in a file
// (BENCH_native.json) that dashboards and scripts parse without
// re-implementing the bench grammar. scripts/bench.sh drives it.
//
// Usage:
//
//	go test -run '^$' -bench Native -benchmem -count 6 . | benchjson -out BENCH_native.json
//	benchjson -in BENCH_native.txt -out BENCH_native.json
//
// The input text should be kept alongside the JSON: benchstat still
// wants the raw format for A/B comparisons.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark measurement line.
type Record struct {
	// Name is the full benchmark name including the -cpu suffix
	// (e.g. "BenchmarkNativeAMS/p=8-16").
	Name string `json:"name"`
	// Iterations is the b.N the reported averages are over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds any other unit pairs (MB/s, custom b.ReportMetric).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Output is the file layout: context lines then the measurements.
type Output struct {
	// Goos/Goarch/Pkg/CPU echo the bench header lines.
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Records []Record `json:"records"`
}

// parseBench parses go-test bench text. Unrecognized lines (test
// output, PASS/ok trailers) are skipped: the converter must accept a
// raw `go test` transcript unmodified.
func parseBench(r io.Reader) (Output, error) {
	var out Output
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			out.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		rec := Record{Name: fields[0], Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				rec.NsPerOp = v
				ok = true
			case "B/op":
				rec.BytesPerOp = &v
			case "allocs/op":
				rec.AllocsPerOp = &v
			default:
				if rec.Extra == nil {
					rec.Extra = make(map[string]float64)
				}
				rec.Extra[unit] = v
			}
		}
		if ok {
			out.Records = append(out.Records, rec)
		}
	}
	return out, sc.Err()
}

func main() {
	in := flag.String("in", "", "bench text input (default stdin)")
	outPath := flag.String("out", "", "JSON output path (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	out, err := parseBench(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(out.Records) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
