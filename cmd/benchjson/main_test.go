package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pmsort
cpu: AMD EPYC 7B13
BenchmarkNativeAMS/p=8/n=1000000-16         	      12	  94211292 ns/op	  84.93 Melem/s
BenchmarkNativeSortSlice-16                 	       8	 131958163 ns/op	 1024 B/op	       2 allocs/op
some test chatter that must be ignored
--- PASS: TestSomething (0.01s)
BenchmarkWireEncode/u64s-16 	 50660	 23716 ns/op	 2764.70 MB/s
PASS
ok  	pmsort	30.405s
`

func TestParseBench(t *testing.T) {
	out, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if out.Goos != "linux" || out.Goarch != "amd64" || out.Pkg != "pmsort" || out.CPU != "AMD EPYC 7B13" {
		t.Errorf("header: %+v", out)
	}
	if len(out.Records) != 3 {
		t.Fatalf("parsed %d records, want 3: %+v", len(out.Records), out.Records)
	}
	r := out.Records[0]
	if r.Name != "BenchmarkNativeAMS/p=8/n=1000000-16" || r.Iterations != 12 || r.NsPerOp != 94211292 {
		t.Errorf("record 0: %+v", r)
	}
	if r.Extra["Melem/s"] != 84.93 {
		t.Errorf("record 0 extra: %+v", r.Extra)
	}
	r = out.Records[1]
	if r.BytesPerOp == nil || *r.BytesPerOp != 1024 || r.AllocsPerOp == nil || *r.AllocsPerOp != 2 {
		t.Errorf("record 1 benchmem: %+v", r)
	}
	r = out.Records[2]
	if r.Extra["MB/s"] != 2764.70 {
		t.Errorf("record 2: %+v", r)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	out, err := parseBench(strings.NewReader("PASS\nok  pmsort  0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != 0 {
		t.Errorf("parsed records from non-bench input: %+v", out.Records)
	}
}
