// Command pmsortvet is the repo's invariant checker: a go vet-style
// multichecker enforcing the contracts the compiler cannot see —
// payload ownership after Send (sendfreeze), wire registration
// coverage (wirereg), message-tag namespaces (tagrange), zero-cost
// tracing call sites (obscost) — plus field-alignment and lock-copy
// discipline. See DESIGN.md §14.
//
// Usage:
//
//	go run ./cmd/pmsortvet ./...
//	go run ./cmd/pmsortvet -only tagrange ./internal/coll
//
// The identical driver also builds from the nested tools module
// (tools/pmsortvet), which is where the golang.org/x/tools dependency
// will live if the stand-in framework is ever swapped for upstream —
// keeping the root module dependency-free either way.
package main

import (
	"os"

	"pmsort/internal/analysis/vetsuite"
)

func main() {
	os.Exit(vetsuite.Main(os.Args[1:], os.Stdout, os.Stderr))
}
