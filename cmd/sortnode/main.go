// Command sortnode runs one rank of a multi-process pmsort TCP cluster
// (backend 3), or — with -launch — brings up a whole loopback cluster
// of itself for a quick multi-process run on one machine.
//
// One rank per machine (run the same command on every host, with the
// same -peers list and that host's -rank):
//
//	sortnode -rank 0 -peers host0:9000,host1:9000,host2:9000,host3:9000 -algo ams -n 1000000
//	sortnode -rank 1 -peers host0:9000,host1:9000,host2:9000,host3:9000 -algo ams -n 1000000
//	...
//
// Whole cluster on loopback (4 processes, auto-assigned ports):
//
//	sortnode -launch -p 4 -algo ams -kind uniform -n 100000 -levels 2
//
// Every rank generates its slice of the workload deterministically,
// sorts it collectively with the chosen algorithm, validates the global
// order and permutation across the cluster, and prints its wall-clock
// phase breakdown. With -out, the rank's sorted output is written as
// little-endian uint64s for external byte-comparison against the
// simulated and native backends.
//
// With -serve the cluster becomes a long-lived sort service instead of
// running one sort: rank 0 serves the job API over HTTP on -http (POST
// /jobs, GET /jobs/{id}, GET /metrics, POST /shutdown) and dispatches
// submitted jobs to all ranks; many jobs run concurrently on the one
// mesh. cmd/sortload is the matching load generator:
//
//	sortnode -launch -p 4 -serve -http 127.0.0.1:8080
//	sortload -url http://127.0.0.1:8080 -jobs 1000 -concurrency 8 -n 4096
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pmsort"
	"pmsort/internal/core"
	"pmsort/internal/expt"
	"pmsort/internal/workload"
)

var algos = map[string]expt.Algo{
	"ams":     expt.AMS,
	"rlm":     expt.RLM,
	"gv":      expt.GV,
	"mp":      expt.MP,
	"bitonic": expt.Bitonic,
	"hist":    expt.Hist,
	"hcq":     expt.HCQ,
}

var kinds = map[string]workload.Kind{
	"uniform":       workload.Uniform,
	"skewed":        workload.Skewed,
	"dup-heavy":     workload.DupHeavy,
	"sorted":        workload.Sorted,
	"reverse":       workload.Reverse,
	"almost-sorted": workload.AlmostSorted,
	"one-pe":        workload.OnePE,
}

func main() {
	var (
		rank     = flag.Int("rank", -1, "this process's rank (index into -peers)")
		peersStr = flag.String("peers", "", "comma-separated host:port list, one per rank, identical on every rank")
		launch   = flag.Bool("launch", false, "launch a whole loopback cluster of -p sortnode processes instead of being one rank")
		p        = flag.Int("p", 4, "cluster size for -launch")
		algoStr  = flag.String("algo", "ams", "ams|rlm|gv|mp|bitonic|hist|hcq")
		kindStr  = flag.String("kind", "uniform", "uniform|skewed|dup-heavy|sorted|reverse|almost-sorted|one-pe")
		n        = flag.Int("n", 100_000, "elements per rank (one-pe: per rank of the total, all placed on rank 0)")
		levels   = flag.Int("levels", 2, "recursion levels k for ams/rlm")
		seed     = flag.Uint64("seed", 42, "workload and algorithm seed")
		tieBreak = flag.Bool("tiebreak", true, "enable implicit (PE, position) tie-breaking (ams)")
		outPath  = flag.String("out", "", "write this rank's sorted output as little-endian uint64s to this file")
		quiet    = flag.Bool("quiet", false, "suppress the per-rank summary line")

		serve      = flag.Bool("serve", false, "run as a long-lived sort service instead of one sort")
		httpAddr   = flag.String("http", "127.0.0.1:8080", "rank 0's HTTP listen address in -serve mode")
		rendezvous = flag.Duration("rendezvous", 0, "mesh rendezvous timeout (0: 30s)")
		heartbeat  = flag.Duration("heartbeat", 0, "peer heartbeat interval (0: stall/4)")
		stall      = flag.Duration("stall", 0, "declare a peer stalled after this long without a pong (0: off)")
	)
	flag.Parse()

	algo, ok := algos[*algoStr]
	if !ok {
		fatalf("unknown -algo %q", *algoStr)
	}
	kind, ok := kinds[*kindStr]
	if !ok {
		fatalf("unknown -kind %q", *kindStr)
	}

	if *launch {
		os.Exit(launchCluster(*p, *outPath, flag.CommandLine))
	}

	peers := splitList(*peersStr)
	if len(peers) == 0 {
		fatalf("-peers is required (or use -launch)")
	}
	if *rank < 0 || *rank >= len(peers) {
		fatalf("-rank %d outside the %d-entry peer list", *rank, len(peers))
	}

	// Test hook: make this rank die before the rendezvous so the launcher
	// failure path can be exercised without a real crash.
	if fr := os.Getenv("SORTNODE_TEST_FAIL_RANK"); fr != "" && fr == strconv.Itoa(*rank) {
		fmt.Fprintf(os.Stderr, "sortnode: rank %d failing on request (SORTNODE_TEST_FAIL_RANK)\n", *rank)
		os.Exit(3)
	}

	if *serve {
		os.Exit(serveRank(*rank, peers, *httpAddr, *rendezvous, *heartbeat, *stall, *quiet))
	}

	spec := expt.Spec{
		Algo:     algo,
		P:        len(peers),
		PerPE:    *n,
		Levels:   *levels,
		Kind:     kind,
		Seed:     *seed,
		TieBreak: *tieBreak,
	}

	cl, err := pmsort.NewTCPOpts(*rank, peers, pmsort.TCPOptions{RendezvousTimeout: *rendezvous})
	if err != nil {
		fatalf("%v", err)
	}
	defer cl.Close()

	var out []uint64
	var st *core.Stats
	elapsed, err := cl.Run(func(c pmsort.Communicator) {
		out, st = expt.RunOn(c, spec)
	})
	if err != nil {
		fatalf("%v", err)
	}

	if !*quiet {
		fmt.Printf("rank %d/%d: %v %s n/p=%d sorted+validated in %v (sort %.3fms: select %.3f, buckets %.3f, delivery %.3f, local %.3f), %d elements out\n",
			*rank, len(peers), algo, kind, *n, elapsed.Round(1000),
			float64(st.TotalNS)/1e6,
			float64(st.PhaseNS[core.PhaseSplitterSelection])/1e6,
			float64(st.PhaseNS[core.PhaseBucketProcessing])/1e6,
			float64(st.PhaseNS[core.PhaseDataDelivery])/1e6,
			float64(st.PhaseNS[core.PhaseLocalSort])/1e6,
			len(out))
	}
	if *outPath != "" {
		if err := writeU64s(*outPath, out); err != nil {
			fatalf("writing -out: %v", err)
		}
	}
}

// serveRank runs this rank's side of the sort service until a signal or
// a POST /shutdown stops it.
func serveRank(rank int, peers []string, httpAddr string, rendezvous, heartbeat, stall time.Duration, quiet bool) int {
	cl, err := pmsort.NewTCPOpts(rank, peers, pmsort.TCPOptions{
		Obs:               true, // feeds the transport section of /metrics
		RendezvousTimeout: rendezvous,
		HeartbeatInterval: heartbeat,
		StallWindow:       stall,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sortnode: %v\n", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opt := pmsort.ServeOptions{Addr: httpAddr}
	if !quiet {
		opt.Ready = func(url string) { fmt.Printf("sortnode: rank 0 serving jobs on %s\n", url) }
	}
	serveErr := cl.Serve(ctx, opt)
	closeErr := cl.Close()
	if serveErr != nil {
		fmt.Fprintf(os.Stderr, "sortnode: rank %d: %v\n", rank, serveErr)
		return 1
	}
	if closeErr != nil {
		fmt.Fprintf(os.Stderr, "sortnode: rank %d: close: %v\n", rank, closeErr)
		return 1
	}
	return 0
}

// launchCluster re-executes this binary once per rank on auto-assigned
// loopback ports, forwarding every explicitly set flag except the
// cluster-topology ones. A -out path fans out to one file per rank
// (path.rank0, path.rank1, ...).
//
// The first rank to exit nonzero takes the cluster down: the remaining
// ranks are killed and the launcher exits 1 naming the failing rank.
// (Leaving them running would park the launcher on ranks that can never
// finish — their mesh is missing a peer.) Interrupt/terminate signals
// are forwarded as kills too, so ctrl-C leaves no orphan ranks behind.
func launchCluster(p int, outPath string, fs *flag.FlagSet) int {
	if p < 1 {
		fatalf("-launch needs -p >= 1")
	}
	addrs, err := expt.ReserveLoopbackAddrs(p)
	if err != nil {
		fatalf("reserving ports: %v", err)
	}
	exe, err := os.Executable()
	if err != nil {
		fatalf("locating own executable: %v", err)
	}
	var common []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "launch", "p", "rank", "peers", "out":
			return
		}
		common = append(common, "-"+f.Name+"="+f.Value.String())
	})
	peerList := strings.Join(addrs, ",")

	cmds := make([]*exec.Cmd, p)
	for rank := 0; rank < p; rank++ {
		args := append([]string{
			"-rank", strconv.Itoa(rank),
			"-peers", peerList,
		}, common...)
		if outPath != "" {
			args = append(args, "-out", fmt.Sprintf("%s.rank%d", outPath, rank))
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds {
				if c != nil {
					_ = c.Process.Kill()
				}
			}
			fatalf("starting rank %d: %v", rank, err)
		}
		cmds[rank] = cmd
	}

	killOthers := func(except int) {
		for r, c := range cmds {
			if r != except {
				_ = c.Process.Kill()
			}
		}
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; ok {
			killOthers(-1)
		}
	}()

	type exit struct {
		rank int
		err  error
	}
	exits := make(chan exit, p)
	for rank, cmd := range cmds {
		go func(rank int, cmd *exec.Cmd) {
			exits <- exit{rank, cmd.Wait()}
		}(rank, cmd)
	}

	status := 0
	for done := 0; done < p; done++ {
		e := <-exits
		if e.err == nil || status != 0 {
			continue // healthy exit, or the reap after a kill
		}
		status = 1
		fmt.Fprintf(os.Stderr, "sortnode: rank %d failed: %v; killing the remaining ranks\n", e.rank, e.err)
		killOthers(e.rank)
	}
	return status
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func writeU64s(path string, vals []uint64) error {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	return os.WriteFile(path, buf, 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sortnode: "+format+"\n", args...)
	os.Exit(1)
}
