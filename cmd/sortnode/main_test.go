package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildSortnode compiles the command once into a temp dir.
func buildSortnode(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "sortnode")
	cmd := exec.Command("go", "build", "-o", exe, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building sortnode: %v\n%s", err, out)
	}
	return exe
}

// TestLaunchKillsClusterOnRankFailure pins the launcher failure path: a
// rank dying must take the whole loopback cluster down promptly with
// exit 1 naming the rank — not leave the launcher parked on survivors
// that wait out their full rendezvous window for the dead peer.
func TestLaunchKillsClusterOnRankFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches real processes")
	}
	exe := buildSortnode(t)

	cmd := exec.Command(exe, "-launch", "-p", "3", "-n", "1000", "-quiet",
		"-rendezvous", "2m") // far longer than the test allows: the kill must end it, not this window
	cmd.Env = append(os.Environ(), "SORTNODE_TEST_FAIL_RANK=2")
	start := time.Now()
	out, err := cmd.CombinedOutput()
	elapsed := time.Since(start)

	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("launcher: err=%v (want exit code 1)\n%s", err, out)
	}
	if ee.ExitCode() != 1 {
		t.Fatalf("launcher exit code %d, want 1\n%s", ee.ExitCode(), out)
	}
	if !strings.Contains(string(out), "rank 2 failed") {
		t.Fatalf("launcher output does not name the failing rank:\n%s", out)
	}
	// The survivors were killed, not waited out: well under the 2m
	// rendezvous window (generous bound for slow CI).
	if elapsed > 30*time.Second {
		t.Fatalf("launcher took %v — survivors were not killed", elapsed)
	}
}

// TestLaunchHealthyCluster pins the happy path end-to-end: a full
// loopback sort run through the launcher exits 0.
func TestLaunchHealthyCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches real processes")
	}
	exe := buildSortnode(t)
	out, err := exec.Command(exe, "-launch", "-p", "3", "-n", "2000", "-levels", "1", "-quiet").CombinedOutput()
	if err != nil {
		t.Fatalf("healthy launch failed: %v\n%s", err, out)
	}
}
