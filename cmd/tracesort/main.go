// Command tracesort runs a small AMS-sort with event tracing enabled and
// dumps the full virtual-time message trace — every send, receive and
// phase mark with its timestamp — for debugging the communication
// structure or feeding a visualizer.
//
//	tracesort -p 16 -n 100 -levels 2            # trace to stdout
//	tracesort -p 64 -n 1000 -o trace.txt -summary
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pmsort"
)

func main() {
	var (
		p       = flag.Int("p", 16, "number of PEs")
		n       = flag.Int("n", 100, "elements per PE")
		levels  = flag.Int("levels", 2, "recursion levels")
		out     = flag.String("o", "", "write trace to file (default stdout)")
		summary = flag.Bool("summary", false, "print per-kind event counts only")
	)
	flag.Parse()

	cl := pmsort.NewCustom(*p, pmsort.DefaultTopology(), pmsort.DefaultCost())
	cl.EnableTracing()
	cl.Run(func(pe *pmsort.PE) {
		rng := rand.New(rand.NewSource(int64(pe.Rank()) + 1))
		data := make([]uint64, *n)
		for i := range data {
			data[i] = rng.Uint64()
		}
		pe.Mark("sort start")
		_, _ = pmsort.AMSSort(pmsort.World(pe), data,
			func(a, b uint64) bool { return a < b },
			pmsort.Config{Levels: *levels, Seed: 7})
		pe.Mark("sort done")
	})

	if *summary {
		counts := map[string]int{}
		var words int64
		for _, ev := range cl.Trace() {
			counts[ev.Kind.String()]++
			if ev.Kind == pmsort.EvSend {
				words += ev.Words
			}
		}
		fmt.Printf("p=%d n/p=%d levels=%d: %d sends (%d words), %d recvs, %d marks\n",
			*p, *n, *levels, counts["send"], words, counts["recv"], counts["mark"])
		return
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracesort:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()
	if err := cl.WriteTrace(w); err != nil {
		fmt.Fprintln(os.Stderr, "tracesort:", err)
		os.Exit(1)
	}
}
