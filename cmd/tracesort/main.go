// Command tracesort runs one fully traced AMS-sort and exports the
// merged multi-rank observability trace — nested per-level phase spans,
// communication counters, and per-peer traffic — as Chrome trace-event
// JSON (load in chrome://tracing or Perfetto) plus a plain-text report.
// It works on every backend: the simulator (virtual timestamps), the
// native goroutine cluster (wall clock), and a real multi-process TCP
// cluster on loopback (wall clock, ranks clock-aligned at gather).
//
//	tracesort -p 4 -n 10000 -levels 2                  # native, trace.json + report on stdout
//	tracesort -backend sim -p 64 -o sim.json           # virtual-time trace of 64 simulated PEs
//	tracesort -backend tcp -p 4 -o tcp.json            # one process per rank, merged at rank 0
//	tracesort -events -p 16 -n 100 -summary            # legacy: raw simulator message trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pmsort"
	"pmsort/internal/expt"
)

func main() {
	// A tracesort process doubles as one rank of the TCP cluster the tcp
	// backend launches (one re-execution per rank).
	expt.MaybeRunTCPChild()
	var (
		p       = flag.Int("p", 4, "number of PEs / ranks")
		n       = flag.Int("n", 10000, "elements per PE")
		levels  = flag.Int("levels", 2, "recursion levels")
		backend = flag.String("backend", "native", "sim|native|tcp")
		out     = flag.String("o", "trace.json", "Chrome trace JSON output path ('' = none)")
		report  = flag.String("report", "-", "plain-text report path ('-' = stdout, '' = none)")
		events  = flag.Bool("events", false, "dump the simulator's raw message/event trace instead (sim only)")
		summary = flag.Bool("summary", false, "with -events: print per-kind event counts only")
	)
	flag.Parse()

	if *events {
		eventTrace(*p, *n, *levels, *out, *summary)
		return
	}

	spec := expt.Spec{Algo: expt.AMS, P: *p, PerPE: *n, Levels: *levels, Seed: 7, Keyed: true}
	if err := expt.TraceRun(spec, *backend, *out, *report, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracesort:", err)
		os.Exit(1)
	}
}

// eventTrace is the original sim-only mode: record every send, receive,
// and PE.Mark with its virtual timestamp and dump the raw event list.
func eventTrace(p, n, levels int, out string, summary bool) {
	cl := pmsort.NewCustom(p, pmsort.DefaultTopology(), pmsort.DefaultCost())
	cl.EnableTracing()
	cl.Run(func(pe *pmsort.PE) {
		rng := rand.New(rand.NewSource(int64(pe.Rank()) + 1))
		data := make([]uint64, n)
		for i := range data {
			data[i] = rng.Uint64()
		}
		pe.Mark("sort start")
		_, _ = pmsort.AMSSort(pmsort.World(pe), data,
			func(a, b uint64) bool { return a < b },
			pmsort.Config{Levels: levels, Seed: 7})
		pe.Mark("sort done")
	})

	if summary {
		counts := map[string]int{}
		var words int64
		for _, ev := range cl.Trace() {
			counts[ev.Kind.String()]++
			if ev.Kind == pmsort.EvSend {
				words += ev.Words
			}
		}
		fmt.Printf("p=%d n/p=%d levels=%d: %d sends (%d words), %d recvs, %d marks\n",
			p, n, levels, counts["send"], words, counts["recv"], counts["mark"])
		return
	}

	w := bufio.NewWriter(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracesort:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()
	if err := cl.WriteTrace(w); err != nil {
		fmt.Fprintln(os.Stderr, "tracesort:", err)
		os.Exit(1)
	}
}
