package seq

import (
	"math/rand"
	"reflect"
	"testing"
)

// pv is the tie-revealing test element: ordered by K only, with a
// payload that exposes how equal-K elements were permuted.
type pv struct {
	K   uint64
	Tag int
}

func pvLess(a, b pv) bool { return a.K < b.K }

// coarse collapses 4 adjacent keys onto one prefix — a valid
// order-preserving non-injective hook for pvLess.
func coarse(e pv) uint64 { return e.K >> 2 }

func randPV(rng *rand.Rand, n, keyRange int) []pv {
	out := make([]pv, n)
	for i := range out {
		out[i] = pv{K: uint64(rng.Intn(keyRange)), Tag: i}
	}
	return out
}

// TestSortPrefixedMatchesStable: SortPrefixed must produce exactly the
// stable-by-less order, for injective, coarse, and constant prefixes,
// across sizes spanning the insertion cutoff, the radix path, and the
// all-trivial-pass fallback.
func TestSortPrefixedMatchesStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hooks := map[string]func(pv) uint64{
		"identity": func(e pv) uint64 { return e.K },
		"coarse":   coarse,
		"constant": func(pv) uint64 { return 42 },
	}
	var sc PrefixScratch[pv]
	for name, hook := range hooks {
		for _, n := range []int{0, 1, 2, 3, prefixInsertionCutoff, prefixInsertionCutoff + 1, 200, 3000} {
			for _, keyRange := range []int{1, 2, 7, 256, 1 << 20} {
				data := randPV(rng, n, keyRange)
				want := append([]pv{}, data...)
				SortStable(want, pvLess)
				pfx := ExtractPrefixes(nil, data, hook)
				SortPrefixed(data, pfx, pvLess, &sc)
				if !reflect.DeepEqual(data, want) {
					t.Fatalf("%s hook, n=%d range=%d: SortPrefixed diverges from SortStable", name, n, keyRange)
				}
			}
		}
	}
}

// kv8 is the word-sized tie-revealing element: 8 bytes, so SortPrefixed
// takes the lockstep strategy instead of the (prefix, id) pair path,
// while the Tag half still exposes how equal-K elements were permuted.
type kv8 struct {
	K   uint32
	Tag uint32
}

func kv8Less(a, b kv8) bool { return a.K < b.K }

// TestSortPrefixedLockstepMatchesStable is TestSortPrefixedMatchesStable
// for the lockstep strategy: identity, coarse, and constant hooks over
// sizes spanning the insertion cutoff and key ranges spanning odd and
// even active-pass counts (including the all-trivial fallback).
func TestSortPrefixedLockstepMatchesStable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	hooks := map[string]func(kv8) uint64{
		"identity": func(e kv8) uint64 { return uint64(e.K) },
		"coarse":   func(e kv8) uint64 { return uint64(e.K >> 2) },
		"constant": func(kv8) uint64 { return 42 },
	}
	var sc PrefixScratch[kv8]
	for name, hook := range hooks {
		for _, n := range []int{0, 1, 2, 3, prefixInsertionCutoff, prefixInsertionCutoff + 1, 200, 3000} {
			for _, keyRange := range []int{1, 2, 7, 256, 1 << 9, 1 << 20} {
				data := make([]kv8, n)
				for i := range data {
					data[i] = kv8{K: uint32(rng.Intn(keyRange)), Tag: uint32(i)}
				}
				want := append([]kv8{}, data...)
				SortStable(want, kv8Less)
				pfx := ExtractPrefixes(nil, data, hook)
				SortPrefixed(data, pfx, kv8Less, &sc)
				if !reflect.DeepEqual(data, want) {
					t.Fatalf("%s hook, n=%d range=%d: SortPrefixed (lockstep) diverges from SortStable", name, n, keyRange)
				}
			}
		}
	}
}

// TestSortPrefixedStability pins the stability contract directly: equal
// prefixes with equal keys must keep their original relative order.
func TestSortPrefixedStability(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var sc PrefixScratch[pv]
	for _, n := range []int{10, prefixInsertionCutoff + 10, 1000} {
		data := randPV(rng, n, 4) // heavy ties
		pfx := ExtractPrefixes(nil, data, coarse)
		SortPrefixed(data, pfx, pvLess, &sc)
		for i := 1; i < len(data); i++ {
			a, b := data[i-1], data[i]
			if a.K > b.K {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
			if a.K == b.K && a.Tag > b.Tag {
				t.Fatalf("n=%d: equal keys reordered at %d (%d before %d)", n, i, a.Tag, b.Tag)
			}
		}
	}
}

// TestMultiwayPrefixedEquivalence: on tied sorted runs, the prefix-aware
// loser tree must reproduce MultiwayInto byte for byte.
func TestMultiwayPrefixedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, k := range []int{0, 1, 2, 3, 5, 8, 17} {
		for trial := 0; trial < 30; trial++ {
			runs := make([][]pv, k)
			pfx := make([][]uint64, k)
			tag := 0
			for r := range runs {
				n := rng.Intn(40)
				run := make([]pv, n)
				for j := range run {
					run[j] = pv{K: uint64(rng.Intn(8)), Tag: tag}
					tag++
				}
				SortStable(run, pvLess)
				runs[r] = run
				pfx[r] = ExtractPrefixes(nil, run, coarse)
			}
			cp := make([][]pv, k)
			for r := range runs {
				cp[r] = append([]pv(nil), runs[r]...)
			}
			want := MultiwayInto(nil, cp, pvLess)
			got := MultiwayPrefixedInto(nil, runs, pfx, pvLess)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d trial=%d: MultiwayPrefixedInto diverges from MultiwayInto", k, trial)
			}
		}
	}
}

// TestClassifyPrefixedAgreesWithClassifier: on random splitter trees —
// including duplicate splitters and collision-heavy coarse prefixes —
// the prefix descent plus fallback must bucket every element exactly
// like the generic comparator classifier.
func TestClassifyPrefixedAgreesWithClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.Intn(40)
		splitters := make([]pv, m)
		for i := range splitters {
			splitters[i] = pv{K: uint64(rng.Intn(24))}
		}
		SortStable(splitters, pvLess)
		data := randPV(rng, 500, 24)

		cls := NewClassifier(splitters, pvLess)
		want := make([]int, len(data))
		for i, x := range data {
			want[i] = cls.Bucket(x)
		}

		spfx := ExtractPrefixes(nil, splitters, coarse)
		pc := NewPrefixClassifier(spfx)
		if pc.NumBuckets() != cls.NumBuckets() {
			t.Fatalf("bucket count mismatch: %d vs %d", pc.NumBuckets(), cls.NumBuckets())
		}
		ids := make([]uint16, len(data))
		fallbacks := 0
		ClassifyPrefixed(data, coarse, pc, ids, func(i, lo, hi int) int {
			fallbacks++
			if lo < 0 || hi > m || lo >= hi {
				t.Fatalf("bad fallback run [%d, %d)", lo, hi)
			}
			x := data[i]
			for j := lo; j < hi; j++ {
				if coarse(splitters[j]) != coarse(x) {
					t.Fatalf("fallback run [%d, %d) includes splitter %d with prefix %d != %d",
						lo, hi, j, coarse(splitters[j]), coarse(x))
				}
			}
			return lo + UpperBound(splitters[lo:hi], x, pvLess)
		})
		for i := range data {
			if int(ids[i]) != want[i] {
				t.Fatalf("trial=%d: element %d bucketed %d, generic classifier says %d", trial, i, ids[i], want[i])
			}
		}
		if fallbacks == 0 {
			t.Fatalf("trial=%d: coarse prefixes produced no collisions — test not exercising the fallback", trial)
		}
	}
}

// TestPrefixPairScratchReuse: the scratch survives reuse across calls
// of different sizes.
func TestPrefixScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sc PrefixScratch[pv]
	for _, n := range []int{500, 100, 2000, 1} {
		data := randPV(rng, n, 64)
		want := append([]pv(nil), data...)
		SortStable(want, pvLess)
		pfx := ExtractPrefixes(nil, data, coarse)
		SortPrefixed(data, pfx, pvLess, &sc)
		if !reflect.DeepEqual(data, want) {
			t.Fatalf("n=%d: scratch reuse corrupted the sort", n)
		}
	}
}
