package seq

import (
	"math/rand"
	"sort"
	"testing"

	"pmsort/internal/workload"
)

func u64Less(a, b uint64) bool { return a < b }
func ident(x uint64) uint64    { return x }

// allKinds is every input distribution the kernels must agree on.
var allKinds = []workload.Kind{
	workload.Uniform, workload.Skewed, workload.DupHeavy, workload.Sorted,
	workload.Reverse, workload.AlmostSorted, workload.OnePE,
}

// TestSortKernelsByteIdentity: on uint64 data of every workload kind
// and a range of sizes, the comparator kernel (pdqsort), the stable LSD
// radix, and the in-place MSD radix must produce byte-identical output
// (on bare uint64 the sorted sequence is unique, so this is the exact
// cross-check the torture harness's keyed dimension relies on).
func TestSortKernelsByteIdentity(t *testing.T) {
	for _, kind := range allKinds {
		for _, n := range []int{0, 1, 2, 63, 64, 65, 1000, 1 << 14} {
			data := workload.Local(kind, uint64(n)+1, 1, n, 0)
			cmp := append([]uint64(nil), data...)
			lsd := append([]uint64(nil), data...)
			msd := append([]uint64(nil), data...)
			Sort(cmp, u64Less)
			SortKeyed(lsd, ident, nil)
			SortKeyedInPlace(msd, ident)
			want := append([]uint64(nil), data...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if cmp[i] != want[i] {
					t.Fatalf("%v n=%d: Sort diverges at %d: %d want %d", kind, n, i, cmp[i], want[i])
				}
				if lsd[i] != want[i] {
					t.Fatalf("%v n=%d: SortKeyed diverges at %d: %d want %d", kind, n, i, lsd[i], want[i])
				}
				if msd[i] != want[i] {
					t.Fatalf("%v n=%d: SortKeyedInPlace diverges at %d: %d want %d", kind, n, i, msd[i], want[i])
				}
			}
		}
	}
}

// TestSortKeyedStability: SortKeyed is documented stable — elements
// with equal keys keep their input order (SortKeyedInPlace makes no
// such promise and is excluded).
func TestSortKeyedStability(t *testing.T) {
	type kv struct {
		k   uint64
		pos int
	}
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{10, 63, 64, 500, 5000} {
		data := make([]kv, n)
		for i := range data {
			data[i] = kv{k: uint64(rng.Intn(8)), pos: i} // heavy ties
		}
		SortKeyed(data, func(e kv) uint64 { return e.k }, nil)
		for i := 1; i < n; i++ {
			a, b := data[i-1], data[i]
			if a.k > b.k {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
			if a.k == b.k && a.pos > b.pos {
				t.Fatalf("n=%d: stability violated at %d: pos %d before %d", n, i, a.pos, b.pos)
			}
		}
	}
}

// TestSortKeyedMonotoneKeys: the kernels only require the key to embed
// the order (less(a,b) == key(a) < key(b)); a compressing key with
// byte-sparse structure (high bytes constant — the pass-skip path) must
// still sort correctly and deterministically.
func TestSortKeyedMonotoneKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	key := func(x uint64) uint64 { return x >> 3 } // ties every 8 values
	for _, n := range []int{100, 4096} {
		data := make([]uint64, n)
		for i := range data {
			data[i] = uint64(rng.Intn(1 << 12)) // only low bytes vary
		}
		a := append([]uint64(nil), data...)
		b := append([]uint64(nil), data...)
		SortKeyed(a, key, nil)
		SortKeyedInPlace(b, key)
		for i := 1; i < n; i++ {
			if key(a[i-1]) > key(a[i]) {
				t.Fatalf("SortKeyed: key order violated at %d", i)
			}
			if key(b[i-1]) > key(b[i]) {
				t.Fatalf("SortKeyedInPlace: key order violated at %d", i)
			}
		}
		// Determinism: same input sorts identically every time.
		a2 := append([]uint64(nil), data...)
		b2 := append([]uint64(nil), data...)
		SortKeyed(a2, key, nil)
		SortKeyedInPlace(b2, key)
		for i := range a {
			if a[i] != a2[i] {
				t.Fatalf("SortKeyed not deterministic at %d", i)
			}
			if b[i] != b2[i] {
				t.Fatalf("SortKeyedInPlace not deterministic at %d", i)
			}
		}
	}
}

// TestSortKeyedScratchReuse: the returned scratch is reusable across
// calls of different sizes and never aliases the result.
func TestSortKeyedScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var scratch []uint64
	for _, n := range []int{1000, 100, 5000, 64} {
		data := make([]uint64, n)
		for i := range data {
			data[i] = rng.Uint64()
		}
		scratch = SortKeyed(data, ident, scratch)
		for i := 1; i < n; i++ {
			if data[i-1] > data[i] {
				t.Fatalf("n=%d: not sorted after scratch reuse", n)
			}
		}
	}
}

// TestPartitionInPlaceAgainstPartition: same bounds as the stable
// Partition, per-bucket content equal as multisets, and the input
// reordered in place (no second array).
func TestPartitionInPlaceAgainstPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var ids []uint16
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(300)
		nb := 1 + rng.Intn(12)
		data := make([]int, n)
		for i := range data {
			data[i] = rng.Intn(1000)
		}
		bucketOf := func(x int) int { return x % nb }
		want, wantBounds := Partition(append([]int(nil), data...), nb, bucketOf)
		inPlace := append([]int(nil), data...)
		var bounds []int
		bounds, ids = PartitionInPlace(inPlace, nb, bucketOf, ids)
		if len(bounds) != len(wantBounds) {
			t.Fatalf("bounds length %d want %d", len(bounds), len(wantBounds))
		}
		for b := range bounds {
			if bounds[b] != wantBounds[b] {
				t.Fatalf("bounds[%d] = %d want %d", b, bounds[b], wantBounds[b])
			}
		}
		for b := 0; b < nb; b++ {
			got := append([]int(nil), inPlace[bounds[b]:bounds[b+1]]...)
			exp := append([]int(nil), want[wantBounds[b]:wantBounds[b+1]]...)
			sort.Ints(got)
			sort.Ints(exp)
			for i := range exp {
				if got[i] != exp[i] {
					t.Fatalf("bucket %d differs as a multiset", b)
				}
			}
		}
	}
}

// TestPartitionInPlaceStatefulClassifier: the classifying pass must see
// elements in original input order exactly once (AMS's tie-breaking
// bucketOf closure counts positions).
func TestPartitionInPlaceStatefulClassifier(t *testing.T) {
	data := []int{5, 3, 5, 3, 5, 3, 5, 3}
	calls := 0
	_, _ = PartitionInPlace(data, 2, func(x int) int {
		calls++
		if x == 5 {
			return 0
		}
		return 1
	}, nil)
	if calls != len(data) {
		t.Fatalf("bucketOf called %d times, want %d", calls, len(data))
	}
	for i, x := range data {
		if (i < 4) != (x == 5) {
			t.Fatalf("partition wrong at %d: %v", i, data)
		}
	}
}

// TestMultiwayIntoReuse: merging into a recycled buffer equals Multiway.
func TestMultiwayIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	buf := make([]int, 0, 8)
	for trial := 0; trial < 30; trial++ {
		runs := randRuns(rng, 1+rng.Intn(6), 40, 50)
		want := Multiway(runs, intLess)
		got := MultiwayInto(buf[:0], runs, intLess)
		if len(got) != len(want) {
			t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MultiwayInto differs at %d", i)
			}
		}
		buf = got
	}
}
