// Package seq provides the sequential kernels the parallel sorters are
// built from (paper §2.2): loser-tree (tournament-tree) multiway merging
// [20, 27, 33], super scalar sample sort partitioning with equality
// buckets [32, App. D], and binary searches over sorted runs.
package seq

// Multiway merges k sorted runs into one sorted slice using a loser tree
// (tournament tree), performing O(N log k) comparisons for N total
// elements. The merge is stable across runs: on equal keys, elements from
// runs with smaller indices come first, so merging locally sorted
// subarrays preserves a global stable order.
func Multiway[E any](runs [][]E, less func(a, b E) bool) []E {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	return MultiwayInto(make([]E, 0, total), runs, less)
}

// MultiwayInto is Multiway appending into out (pass a recycled buffer
// truncated to length 0; it is grown if its capacity is short). out
// must not alias any run.
func MultiwayInto[E any](out []E, runs [][]E, less func(a, b E) bool) []E {
	switch len(runs) {
	case 0:
		return out
	case 1:
		return append(out, runs[0]...)
	case 2:
		return mergeTwo(out, runs[0], runs[1], less)
	}

	k := len(runs)
	K := 1
	for K < k {
		K <<= 1
	}
	pos := make([]int, k)
	// tree[v] for internal nodes v in 1..K-1 stores the run index of the
	// loser of the match at v (-1 = empty/exhausted).
	tree := make([]int, K)

	exhausted := func(r int) bool { return r < 0 || pos[r] >= len(runs[r]) }
	// beats reports whether run a's head wins against run b's head:
	// strictly smaller, or equal with a < b (stability).
	beats := func(a, b int) bool {
		if exhausted(a) {
			return false
		}
		if exhausted(b) {
			return true
		}
		x, y := runs[a][pos[a]], runs[b][pos[b]]
		if less(x, y) {
			return true
		}
		if less(y, x) {
			return false
		}
		return a < b
	}

	// Build the tree bottom-up: initNode returns the winner of subtree v
	// and records losers on the way.
	var initNode func(v int) int
	initNode = func(v int) int {
		if v >= K {
			if r := v - K; r < k && len(runs[r]) > 0 {
				return r
			}
			return -1
		}
		wl, wr := initNode(2*v), initNode(2*v+1)
		if beats(wl, wr) {
			tree[v] = wr
			return wl
		}
		tree[v] = wl
		return wr
	}
	winner := initNode(1)

	// The tree is drained when the replayed winner is exhausted (all
	// remaining candidates lost against exhausted runs).
	for winner >= 0 && pos[winner] < len(runs[winner]) {
		out = append(out, runs[winner][pos[winner]])
		pos[winner]++
		// Replay the path from the winner's leaf to the root.
		w := winner
		for v := (K + winner) / 2; v >= 1; v /= 2 {
			if beats(tree[v], w) {
				tree[v], w = w, tree[v]
			}
		}
		winner = w
	}
	return out
}

// Merge2 merges two sorted runs into a fresh slice (stable: ties prefer a).
func Merge2[E any](a, b []E, less func(x, y E) bool) []E {
	return mergeTwo(make([]E, 0, len(a)+len(b)), a, b, less)
}

// mergeTwo merges two sorted runs into out (stable: ties prefer a).
func mergeTwo[E any](out []E, a, b []E, less func(x, y E) bool) []E {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// MultiwayOps returns the modeled compare-and-move operation count of
// merging n elements from k runs: n·⌈log₂ k⌉ (at least n for the copy).
func MultiwayOps(n int64, k int) int64 {
	if n <= 0 {
		return 0
	}
	l := int64(0)
	for v := 1; v < k; v <<= 1 {
		l++
	}
	if l == 0 {
		l = 1
	}
	return n * l
}

// IsSorted reports whether data is non-decreasing under less.
func IsSorted[E any](data []E, less func(a, b E) bool) bool {
	for i := 1; i < len(data); i++ {
		if less(data[i], data[i-1]) {
			return false
		}
	}
	return true
}

// LowerBound returns the first index i in the sorted slice with
// data[i] >= x (i.e. !less(data[i], x)).
func LowerBound[E any](data []E, x E, less func(a, b E) bool) int {
	lo, hi := 0, len(data)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(data[mid], x) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBound returns the first index i in the sorted slice with
// data[i] > x (i.e. less(x, data[i])).
func UpperBound[E any](data []E, x E, less func(a, b E) bool) int {
	lo, hi := 0, len(data)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(x, data[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
