package seq

import (
	"math/rand"
	"reflect"
	"testing"
)

func u64less(a, b uint64) bool { return a < b }

// TestKeyedClassifierMatchesGeneric pins the keyed classifier against
// the generic one on random splitter sets (with duplicates): under the
// Config.Key contract the two must classify every key identically —
// both the plain buckets and the Appendix-D equality buckets.
func TestKeyedClassifierMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(70)
		splitters := make([]uint64, m)
		for i := range splitters {
			splitters[i] = uint64(rng.Intn(40)) // small domain: plenty of duplicates
		}
		sortSplitters(splitters)
		gen := NewClassifier(splitters, u64less)
		key := NewKeyedClassifier(splitters)
		if gen.NumBuckets() != key.NumBuckets() || gen.Levels() != key.Levels() {
			t.Fatalf("shape mismatch: %d/%d buckets, %d/%d levels",
				gen.NumBuckets(), key.NumBuckets(), gen.Levels(), key.Levels())
		}
		for k := uint64(0); k < 45; k++ {
			if g, kk := gen.Bucket(k), key.Bucket(k); g != kk {
				t.Fatalf("trial %d: Bucket(%d) = %d generic, %d keyed (splitters %v)", trial, k, g, kk, splitters)
			}
			if g, kk := gen.BucketEq(k), key.BucketEq(k); g != kk {
				t.Fatalf("trial %d: BucketEq(%d) = %d generic, %d keyed", trial, k, g, kk)
			}
		}
	}
}

// TestClassifyKeyedMatchesPartitionInPlace pins the unrolled keyed
// classification + PartitionInPlaceIDs against the closure-driven
// PartitionInPlace: same bounds, same bucket contents (as multisets —
// the flag walk is unstable), for awkward lengths around the 4-way
// unroll.
func TestClassifyKeyedMatchesPartitionInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	splitters := []uint64{10, 20, 20, 30, 55}
	kc := NewKeyedClassifier(splitters)
	cls := NewClassifier(splitters, u64less)
	nb := kc.NumBuckets()
	for _, n := range []int{0, 1, 3, 4, 5, 64, 257} {
		data := make([]uint64, n)
		for i := range data {
			data[i] = uint64(rng.Intn(70))
		}
		ref := append([]uint64(nil), data...)
		refBounds, _ := PartitionInPlace(ref, nb, func(x uint64) int { return cls.Bucket(x) }, nil)

		got := append([]uint64(nil), data...)
		ids := make([]uint16, n)
		ClassifyKeyed(got, func(x uint64) uint64 { return x }, kc, ids)
		gotBounds := PartitionInPlaceIDs(got, nb, ids)

		if !reflect.DeepEqual(refBounds, gotBounds) {
			t.Fatalf("n=%d: bounds %v != %v", n, gotBounds, refBounds)
		}
		for b := 0; b < nb; b++ {
			rb := append([]uint64(nil), ref[refBounds[b]:refBounds[b+1]]...)
			gb := append([]uint64(nil), got[gotBounds[b]:gotBounds[b+1]]...)
			sortSplitters(rb)
			sortSplitters(gb)
			if !reflect.DeepEqual(rb, gb) {
				t.Fatalf("n=%d bucket %d: %v != %v", n, b, gb, rb)
			}
		}
	}
}

// TestClassifyKeyedEqFix pins the equality-bucket callback: keys equal
// to a splitter go through fix, everything else maps directly.
func TestClassifyKeyedEqFix(t *testing.T) {
	splitters := []uint64{10, 20, 20, 30}
	kc := NewKeyedClassifier(splitters)
	data := []uint64{5, 10, 15, 20, 25, 30, 35}
	ids := make([]uint16, len(data))
	var fixed []uint64
	ClassifyKeyedEq(data, func(x uint64) uint64 { return x }, kc, ids, func(i int, x uint64, eq int) int {
		fixed = append(fixed, x)
		return eq / 2 // resolve "equal" to the bucket left of the splitter run end
	})
	if want := []uint64{10, 20, 30}; !reflect.DeepEqual(fixed, want) {
		t.Fatalf("fix saw %v, want the splitter-equal keys %v", fixed, want)
	}
	for i, x := range data {
		eq := kc.BucketEq(x)
		want := eq / 2
		if int(ids[i]) != want {
			t.Fatalf("ids[%d] = %d for key %d, want %d", i, ids[i], x, want)
		}
	}
}

// TestSortKeyedHistMatchesSortKeyed pins the split histogram/scatter
// API against the one-shot SortKeyed: same stable order, histograms
// accumulated over arbitrary chunkings.
func TestSortKeyedHistMatchesSortKeyed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	type pair struct{ k, v uint64 }
	key := func(p pair) uint64 { return p.k }
	for _, n := range []int{0, 1, 63, 64, 100, 1000} {
		data := make([]pair, n)
		for i := range data {
			data[i] = pair{k: uint64(rng.Intn(50)), v: uint64(i)}
		}
		ref := append([]pair(nil), data...)
		SortKeyed(ref, key, nil)

		got := append([]pair(nil), data...)
		var h KeyedHist
		// Accumulate histograms chunk-wise, like the streaming concat.
		for lo := 0; lo < n; lo += 37 {
			hi := min(lo+37, n)
			HistKeyed(got[lo:hi], key, &h)
		}
		sorted, _ := SortKeyedHist(got, key, nil, &h)
		if n >= 64 {
			// SortKeyed's small-n insertion path and the radix path are
			// both stable; above the cutoff they share the radix code.
			if !reflect.DeepEqual(sorted, ref) {
				t.Fatalf("n=%d: SortKeyedHist differs from SortKeyed", n)
			}
		} else {
			for i := range sorted {
				if sorted[i].k != ref[i].k {
					t.Fatalf("n=%d: key order differs at %d", n, i)
				}
			}
		}
	}
	// Mismatched histogram must fail loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("SortKeyedHist with a short histogram must panic")
		}
	}()
	var h KeyedHist
	HistKeyed([]pair{{1, 1}}, key, &h)
	SortKeyedHist(make([]pair, 64), key, nil, &h)
}

func sortSplitters(s []uint64) {
	Sort(s, u64less)
}
