package seq

// Classifier implements super scalar sample sort partitioning [32]: the
// sorted splitters are arranged into an implicit perfect binary search
// tree (in array layout, root at index 1) so that classifying an element
// is a branch-free descent of ⌈log₂(m+1)⌉ levels. Padding duplicates the
// largest splitter, and resulting over-counted buckets are clamped.
//
// Bucket semantics: Bucket(x) = |{i : splitters[i] ≤ x}|, so bucket i
// holds exactly the x with splitters[i-1] ≤ x < splitters[i] (bucket 0:
// x < splitters[0]; bucket m: x ≥ splitters[m-1]).
type Classifier[E any] struct {
	tree      []E // 1-indexed; tree[0] unused
	splitters []E
	levels    int
	less      func(a, b E) bool
}

// NewClassifier builds a classifier from sorted splitters. At least one
// splitter is required.
func NewClassifier[E any](splitters []E, less func(a, b E) bool) *Classifier[E] {
	m := len(splitters)
	if m == 0 {
		panic("seq: NewClassifier with no splitters")
	}
	size, levels := 1, 0
	for size-1 < m {
		size <<= 1
		levels++
	}
	c := &Classifier[E]{
		tree:      make([]E, size),
		splitters: splitters,
		levels:    levels,
		less:      less,
	}
	// Assign the padded sorted splitter sequence to the tree in-order, so
	// that the descent "go right iff x ≥ tree[node]" computes the rank.
	idx := 0
	maxSplitter := splitters[m-1]
	var assign func(node int)
	assign = func(node int) {
		if node >= size {
			return
		}
		assign(2 * node)
		if idx < m {
			c.tree[node] = splitters[idx]
		} else {
			c.tree[node] = maxSplitter // padding
		}
		idx++
		assign(2*node + 1)
	}
	assign(1)
	return c
}

// NumBuckets returns the number of range buckets (m+1).
func (c *Classifier[E]) NumBuckets() int { return len(c.splitters) + 1 }

// Levels returns the number of tree levels descended per element.
func (c *Classifier[E]) Levels() int { return c.levels }

// Bucket classifies x into 0..m.
func (c *Classifier[E]) Bucket(x E) int {
	node := 1
	size := len(c.tree)
	for node < size {
		if c.less(x, c.tree[node]) {
			node = 2 * node
		} else {
			node = 2*node + 1
		}
	}
	b := node - size
	if m := len(c.splitters); b > m {
		// x ≥ max splitter walked past padding duplicates.
		b = m
	}
	return b
}

// BucketEq classifies x into 2m+1 buckets with dedicated equality
// buckets (App. D): bucket 2i is the open range (splitters[i-1],
// splitters[i]), bucket 2i+1 holds elements equal to splitters[i]. Costs
// one comparison more than Bucket.
func (c *Classifier[E]) BucketEq(x E) int {
	b := c.Bucket(x)
	if b > 0 && !c.less(c.splitters[b-1], x) {
		// x ≥ splitters[b-1] by construction; not greater -> equal.
		return 2*(b-1) + 1
	}
	return 2 * b
}

// NumBucketsEq returns the number of buckets BucketEq classifies into.
func (c *Classifier[E]) NumBucketsEq() int { return 2*len(c.splitters) + 1 }

// Partition stably reorders data into bucket-contiguous layout according
// to bucketOf (values in 0..nb-1) and returns the reordered slice
// together with bucket boundaries: bucket b occupies out[bounds[b]:bounds[b+1]].
func Partition[E any](data []E, nb int, bucketOf func(E) int) (out []E, bounds []int) {
	counts := make([]int, nb+1)
	ids := make([]int, len(data))
	for i, x := range data {
		b := bucketOf(x)
		ids[i] = b
		counts[b+1]++
	}
	for b := 1; b <= nb; b++ {
		counts[b] += counts[b-1]
	}
	bounds = append([]int(nil), counts...)
	out = make([]E, len(data))
	next := counts[:nb]
	for i, x := range data {
		b := ids[i]
		out[next[b]] = x
		next[b]++
	}
	return out, bounds
}

// MaxInPlaceBuckets is the largest bucket count PartitionInPlace
// accepts (its id scratch is uint16); callers with more buckets fall
// back to the out-of-place Partition.
const MaxInPlaceBuckets = 1 << 16

// PartitionInPlace reorders data in place into bucket-contiguous layout
// according to bucketOf (values in 0..nb-1, nb ≤ MaxInPlaceBuckets) and
// returns the
// bucket boundaries: bucket b occupies data[bounds[b]:bounds[b+1]].
// Unlike Partition it allocates no second element array: the first pass
// classifies every element once (in input order, so stateful bucketOf
// closures see the original positions) into the ids scratch, and an
// American-flag cycle walk then swaps elements into their buckets —
// O(n) swaps, not stable. ids is grown as needed and returned for
// reuse across calls (pass nil the first time).
func PartitionInPlace[E any](data []E, nb int, bucketOf func(E) int, ids []uint16) (bounds []int, idsOut []uint16) {
	if nb > MaxInPlaceBuckets {
		panic("seq: PartitionInPlace bucket count exceeds MaxInPlaceBuckets")
	}
	n := len(data)
	if len(ids) < n {
		ids = make([]uint16, n)
	}
	for i, x := range data {
		ids[i] = uint16(bucketOf(x))
	}
	return PartitionInPlaceIDs(data, nb, ids[:n]), ids
}

// PartitionInPlaceIDs is the reorder half of PartitionInPlace for
// callers that fill the id scratch themselves (the keyed classification
// loops, which inline the splitter-tree descent): ids[i] must hold the
// bucket of data[i]. ids is consumed (permuted alongside data).
func PartitionInPlaceIDs[E any](data []E, nb int, ids []uint16) (bounds []int) {
	counts := make([]int, nb+1)
	for _, b := range ids {
		counts[b+1]++
	}
	for b := 1; b <= nb; b++ {
		counts[b] += counts[b-1]
	}
	bounds = counts
	// next[b] = first unplaced position of bucket b.
	next := make([]int, nb)
	copy(next, bounds[:nb])
	for b := 0; b < nb; b++ {
		for i := next[b]; i < bounds[b+1]; i = next[b] {
			id := int(ids[i])
			if id == b {
				next[b] = i + 1
				continue
			}
			j := next[id]
			next[id] = j + 1
			data[i], data[j] = data[j], data[i]
			ids[i], ids[j] = ids[j], ids[i]
		}
	}
	return bounds
}

// ClassifyOps returns the modeled branchless-partition operation count
// for classifying n elements with the given classifier tree depth:
// n·levels element-steps.
func ClassifyOps(n int64, levels int) int64 {
	return n * int64(levels)
}
