package seq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func randRuns(rng *rand.Rand, k, maxLen, keyRange int) [][]int {
	runs := make([][]int, k)
	for i := range runs {
		n := rng.Intn(maxLen + 1)
		r := make([]int, n)
		for j := range r {
			r[j] = rng.Intn(keyRange)
		}
		sort.Ints(r)
		runs[i] = r
	}
	return runs
}

func TestMultiwayAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{0, 1, 2, 3, 4, 5, 8, 17, 64} {
		for trial := 0; trial < 20; trial++ {
			runs := randRuns(rng, k, 50, 100)
			var all []int
			for _, r := range runs {
				all = append(all, r...)
			}
			got := Multiway(runs, intLess)
			want := append([]int(nil), all...)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("k=%d: merged %d elements, want %d", k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("k=%d trial=%d: mismatch at %d: got %d want %d", k, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMultiwayStability merges runs of (key, runID) pairs with many
// duplicate keys and checks that ties are resolved by run index.
func TestMultiwayStability(t *testing.T) {
	type kv struct{ key, run, pos int }
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(9)
		runs := make([][]kv, k)
		for r := range runs {
			n := rng.Intn(40)
			run := make([]kv, n)
			for j := range run {
				run[j] = kv{key: rng.Intn(5), run: r, pos: j}
			}
			sort.SliceStable(run, func(a, b int) bool { return run[a].key < run[b].key })
			// re-stamp positions after sort so they reflect run order
			for j := range run {
				run[j].pos = j
			}
			runs[r] = run
		}
		out := Multiway(runs, func(a, b kv) bool { return a.key < b.key })
		for i := 1; i < len(out); i++ {
			a, b := out[i-1], out[i]
			if a.key > b.key {
				t.Fatalf("not sorted at %d", i)
			}
			if a.key == b.key {
				if a.run > b.run || (a.run == b.run && a.pos > b.pos) {
					t.Fatalf("stability violated at %d: (%d,%d,%d) before (%d,%d,%d)",
						i, a.key, a.run, a.pos, b.key, b.run, b.pos)
				}
			}
		}
	}
}

func TestMultiwayEmptyRuns(t *testing.T) {
	runs := [][]int{{}, {1, 3}, {}, {2}, {}}
	got := Multiway(runs, intLess)
	want := []int{1, 2, 3}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v want %v", got, want)
	}
	if out := Multiway(nil, intLess); len(out) != 0 {
		t.Fatalf("merging no runs gave %v", out)
	}
}

func TestMultiwayOps(t *testing.T) {
	if MultiwayOps(0, 4) != 0 {
		t.Error("zero elements should cost nothing")
	}
	if MultiwayOps(10, 1) != 10 {
		t.Errorf("k=1 should cost n: %d", MultiwayOps(10, 1))
	}
	if MultiwayOps(10, 8) != 30 {
		t.Errorf("k=8 should cost 3n: %d", MultiwayOps(10, 8))
	}
	if MultiwayOps(10, 9) != 40 {
		t.Errorf("k=9 should cost 4n: %d", MultiwayOps(10, 9))
	}
}

func TestBounds(t *testing.T) {
	if err := quick.Check(func(raw []uint8, x uint8) bool {
		data := make([]int, len(raw))
		for i, v := range raw {
			data[i] = int(v % 16)
		}
		sort.Ints(data)
		lb := LowerBound(data, int(x%16), intLess)
		ub := UpperBound(data, int(x%16), intLess)
		// Reference by linear scan.
		wantLB, wantUB := 0, 0
		for _, v := range data {
			if v < int(x%16) {
				wantLB++
			}
			if v <= int(x%16) {
				wantUB++
			}
		}
		return lb == wantLB && ub == wantUB
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]int{}, intLess) || !IsSorted([]int{1}, intLess) || !IsSorted([]int{1, 1, 2}, intLess) {
		t.Error("sorted slices reported unsorted")
	}
	if IsSorted([]int{2, 1}, intLess) {
		t.Error("unsorted slice reported sorted")
	}
}

// referenceBucket computes |{i : splitters[i] <= x}| by scan.
func referenceBucket(splitters []int, x int) int {
	b := 0
	for _, s := range splitters {
		if s <= x {
			b++
		}
	}
	return b
}

func TestClassifierAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range []int{1, 2, 3, 4, 7, 8, 15, 16, 33, 100} {
		splitters := make([]int, m)
		for i := range splitters {
			splitters[i] = rng.Intn(50)
		}
		sort.Ints(splitters)
		c := NewClassifier(splitters, intLess)
		if c.NumBuckets() != m+1 {
			t.Fatalf("m=%d: NumBuckets=%d", m, c.NumBuckets())
		}
		for x := -1; x <= 51; x++ {
			got := c.Bucket(x)
			want := referenceBucket(splitters, x)
			if got != want {
				t.Fatalf("m=%d x=%d: Bucket=%d want %d (splitters=%v)", m, x, got, want, splitters)
			}
		}
	}
}

func TestClassifierBucketEq(t *testing.T) {
	splitters := []int{10, 20, 20, 30}
	c := NewClassifier(splitters, intLess)
	if c.NumBucketsEq() != 9 {
		t.Fatalf("NumBucketsEq=%d want 9", c.NumBucketsEq())
	}
	cases := map[int]int{
		5:  0,       // < 10
		10: 1,       // == splitter 0
		15: 2,       // (10,20)
		20: 2*2 + 1, // == splitter 2 (ranks past both 20s; equality on the last one)
		25: 6,       // (20,30)
		30: 7,       // == splitter 3
		35: 8,       // > 30
	}
	for x, want := range cases {
		if got := c.BucketEq(x); got != want {
			t.Errorf("BucketEq(%d) = %d, want %d", x, got, want)
		}
	}
}

// TestClassifierEqProperty: elements in an even bucket 2i lie strictly
// between neighboring splitters; elements in odd bucket 2i+1 equal splitter i.
func TestClassifierEqProperty(t *testing.T) {
	if err := quick.Check(func(raw []uint8, xs []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		splitters := make([]int, len(raw))
		for i, v := range raw {
			splitters[i] = int(v % 32)
		}
		sort.Ints(splitters)
		c := NewClassifier(splitters, intLess)
		for _, xr := range xs {
			x := int(xr % 40)
			b := c.BucketEq(x)
			if b%2 == 1 {
				if splitters[(b-1)/2] != x {
					return false
				}
			} else {
				i := b / 2
				if i > 0 && !(splitters[i-1] < x) {
					return false
				}
				if i < len(splitters) && !(x < splitters[i]) {
					return false
				}
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		nb := 1 + rng.Intn(10)
		data := make([]int, n)
		for i := range data {
			data[i] = rng.Intn(1000)
		}
		bucketOf := func(x int) int { return x % nb }
		out, bounds := Partition(data, nb, bucketOf)
		if len(bounds) != nb+1 || bounds[0] != 0 || bounds[nb] != n {
			t.Fatalf("bad bounds %v for n=%d nb=%d", bounds, n, nb)
		}
		// Every bucket segment contains only its own elements, stably.
		for b := 0; b < nb; b++ {
			seg := out[bounds[b]:bounds[b+1]]
			var wantSeg []int
			for _, x := range data {
				if bucketOf(x) == b {
					wantSeg = append(wantSeg, x)
				}
			}
			if len(seg) != len(wantSeg) {
				t.Fatalf("bucket %d has %d elements, want %d", b, len(seg), len(wantSeg))
			}
			for i := range seg {
				if seg[i] != wantSeg[i] {
					t.Fatalf("bucket %d not stable at %d: got %d want %d", b, i, seg[i], wantSeg[i])
				}
			}
		}
	}
}

func TestClassifyOps(t *testing.T) {
	if ClassifyOps(100, 5) != 500 {
		t.Errorf("ClassifyOps wrong: %d", ClassifyOps(100, 5))
	}
}

func TestClassifierLevels(t *testing.T) {
	for _, tc := range []struct{ m, levels int }{{1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {15, 4}, {16, 5}} {
		splitters := make([]int, tc.m)
		for i := range splitters {
			splitters[i] = i
		}
		c := NewClassifier(splitters, intLess)
		if c.Levels() != tc.levels {
			t.Errorf("m=%d: levels=%d want %d", tc.m, c.Levels(), tc.levels)
		}
	}
}
