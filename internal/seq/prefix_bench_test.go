package seq

import (
	"math/rand"
	"testing"
)

// benchPV builds n tie-light 16-byte elements for the kernel gap
// benchmarks below.
func benchPV(n int) []pv {
	rng := rand.New(rand.NewSource(42))
	out := make([]pv, n)
	for i := range out {
		out[i] = pv{K: rng.Uint64(), Tag: i}
	}
	return out
}

// BenchmarkSortStableCmp is the plain comparator baseline the prefix
// kernel is measured against (the same stable contract).
func BenchmarkSortStableCmp(b *testing.B) {
	const n = 1 << 18
	src := benchPV(n)
	data := make([]pv, n)
	b.SetBytes(int64(16 * n))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(data, src)
		b.StartTimer()
		SortStable(data, pvLess)
	}
}

// BenchmarkSortPrefixed measures the prefix-cached local sort: LSD
// radix over the uint64 sidecar, one payload permutation, comparator
// only inside equal-prefix runs. Extraction is included — it is part of
// what the sorters pay per level.
func BenchmarkSortPrefixed(b *testing.B) {
	const n = 1 << 18
	src := benchPV(n)
	data := make([]pv, n)
	var pfx []uint64
	var sc PrefixScratch[pv]
	b.SetBytes(int64(16 * n))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(data, src)
		b.StartTimer()
		pfx = ExtractPrefixes(pfx[:0], data, func(e pv) uint64 { return e.K })
		SortPrefixed(data, pfx, pvLess, &sc)
	}
}

// BenchmarkSortPrefixedU64 is BenchmarkSortPrefixed on word-sized
// payloads — the lockstep radix strategy — with the keyed LSD radix on
// the same input as the ceiling it chases.
func BenchmarkSortPrefixedU64(b *testing.B) {
	const n = 1 << 20
	rng := rand.New(rand.NewSource(42))
	src := make([]uint64, n)
	for i := range src {
		src[i] = rng.Uint64()
	}
	data := make([]uint64, n)
	u64Less := func(a, c uint64) bool { return a < c }
	identity := func(e uint64) uint64 { return e }

	b.Run("prefix", func(b *testing.B) {
		var pfx []uint64
		var sc PrefixScratch[uint64]
		b.SetBytes(int64(8 * n))
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(data, src)
			b.StartTimer()
			pfx = ExtractPrefixes(pfx[:0], data, identity)
			SortPrefixed(data, pfx, u64Less, &sc)
		}
	})
	b.Run("keyed", func(b *testing.B) {
		scratch := make([]uint64, n)
		b.SetBytes(int64(8 * n))
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(data, src)
			b.StartTimer()
			SortKeyed(data, identity, scratch)
		}
	})
}

// BenchmarkClassifyPrefixed measures the branchless prefix descent on a
// full 256-bucket splitter tree against the comparator-tree classifier.
func BenchmarkClassifyPrefixed(b *testing.B) {
	const n, m = 1 << 18, 255
	data := benchPV(n)
	splitters := benchPV(m)
	SortStable(splitters, pvLess)
	identity := func(e pv) uint64 { return e.K }

	b.Run("cmp", func(b *testing.B) {
		cls := NewClassifier(splitters, pvLess)
		b.SetBytes(int64(16 * n))
		for i := 0; i < b.N; i++ {
			for _, x := range data {
				_ = cls.Bucket(x)
			}
		}
	})
	b.Run("prefix", func(b *testing.B) {
		spfx := ExtractPrefixes(nil, splitters, identity)
		pc := NewPrefixClassifier(spfx)
		ids := make([]uint16, n)
		fallback := func(i, lo, hi int) int {
			return lo + UpperBound(splitters[lo:hi], data[i], pvLess)
		}
		b.SetBytes(int64(16 * n))
		for i := 0; i < b.N; i++ {
			ClassifyPrefixed(data, identity, pc, ids, fallback)
		}
	})
}
