package seq

// KeyedClassifier is the uint64-key specialization of Classifier: the
// same implicit-tree branchless descent, but on raw word compares
// instead of per-level calls through a generic less closure — worth
// ~4-5x on the partition phase, which the profile shows is the hot
// loop of keyed AMS-sort. Classifications agree exactly with a
// Classifier built from the same splitters under the Config.Key
// contract (less(a,b) == key(a) < key(b)), which the keyed-vs-
// comparator conformance sweeps assert continuously.
type KeyedClassifier struct {
	tree      []uint64 // 1-indexed; tree[0] unused
	splitters []uint64
	levels    int
}

// NewKeyedClassifier builds a classifier from sorted splitter keys. At
// least one splitter is required.
func NewKeyedClassifier(splitters []uint64) *KeyedClassifier {
	m := len(splitters)
	if m == 0 {
		panic("seq: NewKeyedClassifier with no splitters")
	}
	size, levels := 1, 0
	for size-1 < m {
		size <<= 1
		levels++
	}
	c := &KeyedClassifier{
		tree:      make([]uint64, size),
		splitters: splitters,
		levels:    levels,
	}
	// In-order assignment of the padded sorted splitter sequence, so the
	// descent "go right iff k ≥ tree[node]" computes the rank — the same
	// construction as the generic Classifier.
	idx := 0
	maxSplitter := splitters[m-1]
	var assign func(node int)
	assign = func(node int) {
		if node >= size {
			return
		}
		assign(2 * node)
		if idx < m {
			c.tree[node] = splitters[idx]
		} else {
			c.tree[node] = maxSplitter // padding
		}
		idx++
		assign(2*node + 1)
	}
	assign(1)
	return c
}

// NumBuckets returns the number of range buckets (m+1).
func (c *KeyedClassifier) NumBuckets() int { return len(c.splitters) + 1 }

// Levels returns the number of tree levels descended per key.
func (c *KeyedClassifier) Levels() int { return c.levels }

// Bucket classifies k into 0..m: |{i : splitters[i] ≤ k}|.
func (c *KeyedClassifier) Bucket(k uint64) int {
	node := 1
	for l := 0; l < c.levels; l++ {
		node = step(c.tree, node, k)
	}
	b := node - len(c.tree)
	if m := len(c.splitters); b > m {
		// k ≥ max splitter walked past padding duplicates.
		b = m
	}
	return b
}

// BucketEq classifies k into 2m+1 buckets with dedicated equality
// buckets (App. D), like Classifier.BucketEq.
func (c *KeyedClassifier) BucketEq(k uint64) int {
	b := c.Bucket(k)
	if b > 0 && c.splitters[b-1] == k {
		return 2*(b-1) + 1
	}
	return 2 * b
}

// step is one branchless tree-descent level: go right iff k ≥ the
// node's splitter (compiles to a flag-set, not a branch, so random
// keys cost no mispredictions).
func step(tree []uint64, n int, k uint64) int {
	ge := 0
	if k >= tree[n] {
		ge = 1
	}
	return 2*n + ge
}

// ClassifyKeyed fills ids[i] with the bucket of key(data[i]) — the
// classification pass of the keyed partition fast path, feeding
// PartitionInPlaceIDs. ids must have len(data) capacity.
//
// The tree is perfect (padded to a power of two), so every descent
// takes exactly Levels steps; four elements descend in lockstep so the
// four independent compare chains overlap in flight — the super scalar
// sample sort argument (paper §2.2), here applied for real rather than
// only in the cost model.
func ClassifyKeyed[E any](data []E, key func(E) uint64, kc *KeyedClassifier, ids []uint16) {
	tree, levels := kc.tree, kc.levels
	size, m := len(tree), len(kc.splitters)
	n := len(data)
	i := 0
	for ; i+4 <= n; i += 4 {
		k0, k1, k2, k3 := key(data[i]), key(data[i+1]), key(data[i+2]), key(data[i+3])
		n0, n1, n2, n3 := 1, 1, 1, 1
		for l := 0; l < levels; l++ {
			n0 = step(tree, n0, k0)
			n1 = step(tree, n1, k1)
			n2 = step(tree, n2, k2)
			n3 = step(tree, n3, k3)
		}
		ids[i] = uint16(min(n0-size, m))
		ids[i+1] = uint16(min(n1-size, m))
		ids[i+2] = uint16(min(n2-size, m))
		ids[i+3] = uint16(min(n3-size, m))
	}
	for ; i < n; i++ {
		ids[i] = uint16(kc.Bucket(key(data[i])))
	}
}

// ClassifyKeyedEq is the Appendix-D tie-breaking variant: keys landing
// in an equality bucket (eq odd, meaning key(x) equals a splitter key)
// are resolved by fix(i, x, eq), which typically binary-searches the
// element's (PE, position) tag over the run of splitters sharing the
// key; everything else maps to eq/2 directly.
func ClassifyKeyedEq[E any](data []E, key func(E) uint64, kc *KeyedClassifier, ids []uint16, fix func(i int, x E, eq int) int) {
	for i, x := range data {
		eq := kc.BucketEq(key(x))
		b := eq / 2
		if eq&1 == 1 {
			b = fix(i, x, eq)
		}
		ids[i] = uint16(b)
	}
}
