package seq

import (
	"math"
	"unsafe"
)

// This file holds the comparator path's prefix-cached kernels. A prefix
// hook maps each element to a uint64 that embeds a coarsening of the
// element order (DESIGN.md §11):
//
//	less(a, b)            ⇒  prefix(a) ≤ prefix(b), and
//	prefix(a) < prefix(b) ⇒  less(a, b)
//
// Equivalently: comparing prefixes first and falling back to less only
// on equal prefixes decides every pair exactly like less does. Unlike
// the Config.Key contract the hook need not be injective — ties are
// allowed, and the kernels fall back to the comparator only inside
// equal-prefix runs. The two-sided form also pins the tie structure:
// elements the comparator cannot tell apart always share a prefix, so a
// prefix kernel and a stable comparator kernel produce byte-identical
// output (the conformance and torture suites assert this continuously).

// ExtractPrefixes appends data's prefixes to dst and returns it — the
// sidecar-building pass. Callers recycle dst across levels like the
// other scratch arenas (pass a zero-length slice of retained capacity).
func ExtractPrefixes[E any](dst []uint64, data []E, prefix func(E) uint64) []uint64 {
	for _, e := range data {
		dst = append(dst, prefix(e))
	}
	return dst
}

// prefixPair carries one element's cached prefix and its original
// position through the radix passes of SortPrefixed, so the payload
// elements are permuted once at the end instead of once per pass.
type prefixPair struct {
	p  uint64
	id uint32
}

// pfxElem carries one element's cached prefix and its payload together
// through the radix passes of the word-sized strategy: one 16-byte
// record means each scatter touches a single random cache line — the
// same line count per pass as the keyed radix — and the payload is
// already in place when the passes end (no gather).
type pfxElem[E any] struct {
	p uint64
	e E
}

// PrefixScratch is the reusable scratch of SortPrefixed: the radix
// ping-pong buffers of whichever strategy runs ((prefix, id) pairs or
// word-sized (prefix, payload) records) and the pair path's gather
// buffer. The zero value is ready; buffers grow as needed and are
// retained across calls.
type PrefixScratch[E any] struct {
	pairs, spare []prefixPair
	kv, kvSpare  []pfxElem[E]
	elems        []E
}

// Donate offers buf as the payload scratch, kept when it beats the
// current one — callers hand over a retired arena buffer so the next
// SortPrefixed skips an allocation (and its zeroing) of that size.
func (sc *PrefixScratch[E]) Donate(buf []E) {
	if cap(buf) > cap(sc.elems) {
		sc.elems = buf[:cap(buf)]
	}
}

// prefixInsertionCutoff is the size below which SortPrefixed switches
// to a stable insertion sort on the combined (prefix, less) order.
const prefixInsertionCutoff = 48

// SortPrefixed sorts data by less using the cached prefixes pfx (where
// pfx[i] must be the prefix of data[i], under the contract above): a
// stable LSD radix sort on (prefix, id) pairs — trivial digit passes
// skipped — permutes the payloads once, and the comparator is invoked
// only to sort within equal-prefix runs. The result is exactly the
// stable-by-less order (what SortStable produces), because the radix is
// stable and less-ties never straddle a prefix boundary. pfx is
// consumed (the small-input path permutes it alongside data; the radix
// path leaves it stale).
func SortPrefixed[E any](data []E, pfx []uint64, less func(a, b E) bool, sc *PrefixScratch[E]) {
	n := len(data)
	if n != len(pfx) {
		panic("seq: SortPrefixed sidecar length does not match the data")
	}
	if n < 2 {
		return
	}
	if n <= prefixInsertionCutoff {
		insertionPrefixed(data, pfx, less)
		return
	}
	if n > math.MaxUint32 {
		panic("seq: SortPrefixed supports at most 2^32 elements per PE")
	}

	var h KeyedHist
	h.n = n
	for _, k := range pfx {
		h.hist[0][k&0xff]++
		h.hist[1][(k>>8)&0xff]++
		h.hist[2][(k>>16)&0xff]++
		h.hist[3][(k>>24)&0xff]++
		h.hist[4][(k>>32)&0xff]++
		h.hist[5][(k>>40)&0xff]++
		h.hist[6][(k>>48)&0xff]++
		h.hist[7][(k>>56)&0xff]++
	}

	if unsafe.Sizeof(*new(E)) <= 8 {
		// Word-sized payloads: ping-pong (prefix, payload) in lockstep.
		// Each pass moves the same 16 bytes per element as a pair pass,
		// but the pair build, the final random-access gather, and the
		// copy-back all disappear — exactly the costs that kept the
		// uint64 prefix path behind the keyed radix.
		sortPrefixedLockstep(data, pfx, less, sc, &h)
		return
	}

	if len(sc.pairs) < n {
		sc.pairs = make([]prefixPair, n)
	}
	if len(sc.spare) < n {
		sc.spare = make([]prefixPair, n)
	}
	src, dst := sc.pairs[:n], sc.spare[:n]
	for i, k := range pfx {
		src[i] = prefixPair{p: k, id: uint32(i)}
	}
	active := 0
	for pass := 0; pass < 8; pass++ {
		hp := &h.hist[pass]
		trivial := false
		for b := 0; b < 256; b++ {
			if hp[b] == n {
				trivial = true
				break
			}
			if hp[b] != 0 {
				break
			}
		}
		if trivial {
			continue
		}
		active++
		var starts [256]int
		sum := 0
		for b := 0; b < 256; b++ {
			starts[b] = sum
			sum += hp[b]
		}
		shift := uint(8 * pass)
		for _, pr := range src {
			b := (pr.p >> shift) & 0xff
			dst[starts[b]] = pr
			starts[b]++
		}
		src, dst = dst, src
	}
	sc.pairs, sc.spare = src, dst
	if active == 0 {
		// All prefixes equal: the whole slice is one tie run.
		SortStable(data, less)
		return
	}

	// Permute the payloads once along the sorted pair order, then hand
	// each equal-prefix run to the comparator (stable, so ties keep
	// their radix-preserved original order).
	if len(sc.elems) < n {
		sc.elems = make([]E, n)
	}
	elems := sc.elems[:n]
	for k, pr := range src {
		elems[k] = data[pr.id]
	}
	copy(data, elems)
	for i := 0; i < n; {
		j := i + 1
		for j < n && src[j].p == src[i].p {
			j++
		}
		if j-i > 1 {
			SortStable(data[i:j], less)
		}
		i = j
	}
}

// sortPrefixedLockstep is SortPrefixed's strategy for word-sized
// payloads: the stable LSD radix distributes (prefix, payload) records
// (trivial passes skipped, like the pair path), so the sorted payloads
// materialize with the passes and the unpack at the end is sequential —
// no id indirection and no random-access gather. The comparator still
// sorts only within equal-prefix runs; stability per pass makes the
// whole exactly the stable-by-less order. pfx is consumed.
func sortPrefixedLockstep[E any](data []E, pfx []uint64, less func(a, b E) bool, sc *PrefixScratch[E], h *KeyedHist) {
	n := len(data)
	if len(sc.kv) < n {
		sc.kv = make([]pfxElem[E], n)
	}
	if len(sc.kvSpare) < n {
		sc.kvSpare = make([]pfxElem[E], n)
	}
	src, dst := sc.kv[:n], sc.kvSpare[:n]
	for i, k := range pfx {
		src[i] = pfxElem[E]{p: k, e: data[i]}
	}
	active := 0
	for pass := 0; pass < 8; pass++ {
		hp := &h.hist[pass]
		trivial := false
		for b := 0; b < 256; b++ {
			if hp[b] == n {
				trivial = true
				break
			}
			if hp[b] != 0 {
				break
			}
		}
		if trivial {
			continue
		}
		active++
		var starts [256]int
		sum := 0
		for b := 0; b < 256; b++ {
			starts[b] = sum
			sum += hp[b]
		}
		shift := uint(8 * pass)
		for _, pr := range src {
			b := (pr.p >> shift) & 0xff
			dst[starts[b]] = pr
			starts[b]++
		}
		src, dst = dst, src
	}
	sc.kv, sc.kvSpare = src, dst
	if active == 0 {
		// All prefixes equal: the whole slice is one tie run.
		SortStable(data, less)
		return
	}
	// Sequential unpack, then hand each equal-prefix run to the
	// comparator (stable, so ties keep their radix-preserved original
	// order).
	for i, pr := range src {
		data[i] = pr.e
	}
	for i := 0; i < n; {
		j := i + 1
		for j < n && src[j].p == src[i].p {
			j++
		}
		if j-i > 1 {
			SortStable(data[i:j], less)
		}
		i = j
	}
}

// insertionPrefixed is the stable small-input sort of SortPrefixed: an
// insertion sort on the combined (prefix, less) order, moving the
// sidecar alongside the payloads.
func insertionPrefixed[E any](data []E, pfx []uint64, less func(a, b E) bool) {
	for i := 1; i < len(data); i++ {
		e, k := data[i], pfx[i]
		j := i
		for j > 0 && (pfx[j-1] > k || (pfx[j-1] == k && less(e, data[j-1]))) {
			data[j] = data[j-1]
			pfx[j] = pfx[j-1]
			j--
		}
		data[j], pfx[j] = e, k
	}
}

// SortPrefixedOps returns the modeled operation count of a prefix-
// cached sort of n elements: ~11n element-steps (extraction + histogram
// + up to 8 pair scatters + one payload gather, counted flat like
// SortKeyedOps; the rare within-run comparator work is absorbed in the
// constant).
func SortPrefixedOps(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return 11 * n
}

// PrefixClassifier is the prefix sibling of KeyedClassifier: the same
// implicit-tree branchless uint64 descent, built over the splitters'
// prefixes. Because prefixes need not be injective, an element whose
// prefix equals some splitter prefix cannot be placed by the descent
// alone — the caller resolves it over the run of equal-prefix splitters
// (ClassifyPrefixed's fallback). Everything else never touches the
// comparator: under the prefix contract, a strict prefix inequality
// decides the element order.
type PrefixClassifier struct {
	tree     []uint64 // 1-indexed; tree[0] unused
	spfx     []uint64 // sorted splitter prefixes
	runStart []int32  // runStart[i] = first index of spfx's equal-prefix run containing i
	levels   int
}

// NewPrefixClassifier builds a classifier from the prefixes of sorted
// splitters (non-decreasing, since the splitters are sorted and the
// hook is order-preserving). At least one splitter is required.
func NewPrefixClassifier(spfx []uint64) *PrefixClassifier {
	m := len(spfx)
	if m == 0 {
		panic("seq: NewPrefixClassifier with no splitters")
	}
	size, levels := 1, 0
	for size-1 < m {
		size <<= 1
		levels++
	}
	c := &PrefixClassifier{
		tree:     make([]uint64, size),
		spfx:     spfx,
		runStart: make([]int32, m),
		levels:   levels,
	}
	for i := 1; i < m; i++ {
		if spfx[i] == spfx[i-1] {
			c.runStart[i] = c.runStart[i-1]
		} else {
			c.runStart[i] = int32(i)
		}
	}
	idx := 0
	maxSplitter := spfx[m-1]
	var assign func(node int)
	assign = func(node int) {
		if node >= size {
			return
		}
		assign(2 * node)
		if idx < m {
			c.tree[node] = spfx[idx]
		} else {
			c.tree[node] = maxSplitter // padding
		}
		idx++
		assign(2*node + 1)
	}
	assign(1)
	return c
}

// NumBuckets returns the number of range buckets (m+1).
func (c *PrefixClassifier) NumBuckets() int { return len(c.spfx) + 1 }

// Levels returns the number of tree levels descended per element.
func (c *PrefixClassifier) Levels() int { return c.levels }

// bucket is the raw descent: |{i : spfx[i] ≤ k}|.
func (c *PrefixClassifier) bucket(k uint64) int {
	node := 1
	for l := 0; l < c.levels; l++ {
		node = step(c.tree, node, k)
	}
	b := node - len(c.tree)
	if m := len(c.spfx); b > m {
		b = m
	}
	return b
}

// ClassifyPrefixed fills ids[i] with the bucket of data[i], descending
// on cached prefixes with the same 4-way unrolled lockstep loop as
// ClassifyKeyed. Elements whose prefix collides with a splitter prefix
// — the only ones whose bucket the descent cannot decide — are resolved
// by fallback(i, lo, hi), which receives the index range [lo, hi) of
// the splitters sharing the element's prefix and returns the element's
// bucket in 0..m (typically a comparator binary search over that run,
// plus tie-breaking). ids must have len(data) capacity.
func ClassifyPrefixed[E any](data []E, prefix func(E) uint64, pc *PrefixClassifier, ids []uint16, fallback func(i, lo, hi int) int) {
	tree, levels := pc.tree, pc.levels
	size, m := len(tree), len(pc.spfx)
	spfx, runStart := pc.spfx, pc.runStart
	n := len(data)
	resolve := func(i int, k uint64, b int) uint16 {
		if b > 0 && spfx[b-1] == k {
			// spfx is sorted, so every splitter with this prefix sits in
			// one run ending at b (the descent counted all of them ≤ k).
			return uint16(fallback(i, int(runStart[b-1]), b))
		}
		return uint16(b)
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		k0, k1, k2, k3 := prefix(data[i]), prefix(data[i+1]), prefix(data[i+2]), prefix(data[i+3])
		n0, n1, n2, n3 := 1, 1, 1, 1
		for l := 0; l < levels; l++ {
			n0 = step(tree, n0, k0)
			n1 = step(tree, n1, k1)
			n2 = step(tree, n2, k2)
			n3 = step(tree, n3, k3)
		}
		ids[i] = resolve(i, k0, min(n0-size, m))
		ids[i+1] = resolve(i+1, k1, min(n1-size, m))
		ids[i+2] = resolve(i+2, k2, min(n2-size, m))
		ids[i+3] = resolve(i+3, k3, min(n3-size, m))
	}
	for ; i < n; i++ {
		k := prefix(data[i])
		ids[i] = resolve(i, k, pc.bucket(k))
	}
}

// MultiwayPrefixedInto is MultiwayInto with cached prefixes: pfx[r][i]
// must be the prefix of runs[r][i]. The loser tree compares uint64
// prefixes and calls less only on prefix ties, deciding every match
// exactly like MultiwayInto under the prefix contract — the output is
// byte-identical. out must not alias any run.
func MultiwayPrefixedInto[E any](out []E, runs [][]E, pfx [][]uint64, less func(a, b E) bool) []E {
	if len(pfx) != len(runs) {
		panic("seq: MultiwayPrefixedInto sidecar count does not match the runs")
	}
	for r := range runs {
		if len(pfx[r]) != len(runs[r]) {
			panic("seq: MultiwayPrefixedInto sidecar length does not match its run")
		}
	}
	switch len(runs) {
	case 0:
		return out
	case 1:
		return append(out, runs[0]...)
	case 2:
		return mergeTwoPrefixed(out, runs[0], runs[1], pfx[0], pfx[1], less)
	}

	k := len(runs)
	K := 1
	for K < k {
		K <<= 1
	}
	pos := make([]int, k)
	tree := make([]int, K)

	exhausted := func(r int) bool { return r < 0 || pos[r] >= len(runs[r]) }
	beats := func(a, b int) bool {
		if exhausted(a) {
			return false
		}
		if exhausted(b) {
			return true
		}
		pa, pb := pfx[a][pos[a]], pfx[b][pos[b]]
		if pa != pb {
			return pa < pb
		}
		x, y := runs[a][pos[a]], runs[b][pos[b]]
		if less(x, y) {
			return true
		}
		if less(y, x) {
			return false
		}
		return a < b
	}

	var initNode func(v int) int
	initNode = func(v int) int {
		if v >= K {
			if r := v - K; r < k && len(runs[r]) > 0 {
				return r
			}
			return -1
		}
		wl, wr := initNode(2*v), initNode(2*v+1)
		if beats(wl, wr) {
			tree[v] = wr
			return wl
		}
		tree[v] = wl
		return wr
	}
	winner := initNode(1)

	for winner >= 0 && pos[winner] < len(runs[winner]) {
		out = append(out, runs[winner][pos[winner]])
		pos[winner]++
		w := winner
		for v := (K + winner) / 2; v >= 1; v /= 2 {
			if beats(tree[v], w) {
				tree[v], w = w, tree[v]
			}
		}
		winner = w
	}
	return out
}

// mergeTwoPrefixed merges two sorted runs with cached prefixes into out
// (stable: ties prefer a), deciding like mergeTwo under the contract.
func mergeTwoPrefixed[E any](out []E, a, b []E, pa, pb []uint64, less func(x, y E) bool) []E {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if pb[j] < pa[i] || (pb[j] == pa[i] && less(b[j], a[i])) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
