package seq

import "slices"

// Sort sorts data by less with the standard library's generic pdqsort
// (slices.SortFunc): pattern-defeating quicksort with heapsort fallback
// and adaptive runs. Compared to the interface-based sort.Slice it
// avoids the reflect-built swapper and the closure-per-call-site
// indirection, which is worth ~2x on scalar elements. Not stable.
func Sort[E any](data []E, less func(a, b E) bool) {
	slices.SortFunc(data, func(a, b E) int {
		if less(a, b) {
			return -1
		}
		if less(b, a) {
			return 1
		}
		return 0
	})
}

// SortStable sorts data by less with the standard library's stable sort
// (slices.SortStableFunc: insertion-sorted blocks + in-place symmerge).
// The comparator sorters feed their merge levels with it: a stable
// local order is what makes the prefix-cached kernels (SortPrefixed,
// MultiwayPrefixedInto) byte-identical to the plain comparator path
// even on elements the comparator cannot tell apart.
func SortStable[E any](data []E, less func(a, b E) bool) {
	slices.SortStableFunc(data, func(a, b E) int {
		if less(a, b) {
			return -1
		}
		if less(b, a) {
			return 1
		}
		return 0
	})
}

// SortKeyed sorts data ascending by the uint64 key with least-
// significant-digit radix sort (8-bit digits, up to 8 counting passes;
// passes whose digit is constant across the input are skipped). The
// sort is stable on equal keys. It is only a correct replacement for a
// comparator sort when the key embeds the full order:
//
//	less(a, b) == (key(a) < key(b))  for all a, b
//
// which is what Config.Key promises. scratch is the ping-pong buffer;
// it is grown as needed and returned so callers can reuse it across
// calls (pass nil the first time).
func SortKeyed[E any](data []E, key func(E) uint64, scratch []E) []E {
	n := len(data)
	if n < 2 {
		return scratch
	}
	if n < 64 {
		// Counting passes cost ~8·256 slots of setup; insertion-by-key
		// wins on tiny inputs (stable, like the radix path).
		insertionByKey(data, key)
		return scratch
	}
	var h KeyedHist
	HistKeyed(data, key, &h)
	sorted, spare := SortKeyedHist(data, key, scratch, &h)
	if len(sorted) > 0 && len(data) > 0 && &sorted[0] != &data[0] {
		copy(data, sorted)
		return sorted // data holds the result; the radix buffer is the reusable scratch
	}
	return spare
}

// KeyedHist accumulates the per-digit histograms of the LSD radix sort.
// The byte distribution is permutation-invariant, so histograms built
// incrementally — e.g. per received chunk, while the bulk exchange is
// still streaming in — stay valid for every pass regardless of the
// order the data was appended in.
type KeyedHist struct {
	hist [8][256]int
	n    int
}

// HistKeyed folds data's keys into the histograms.
func HistKeyed[E any](data []E, key func(E) uint64, h *KeyedHist) {
	h.n += len(data)
	for _, e := range data {
		k := key(e)
		h.hist[0][k&0xff]++
		h.hist[1][(k>>8)&0xff]++
		h.hist[2][(k>>16)&0xff]++
		h.hist[3][(k>>24)&0xff]++
		h.hist[4][(k>>32)&0xff]++
		h.hist[5][(k>>40)&0xff]++
		h.hist[6][(k>>48)&0xff]++
		h.hist[7][(k>>56)&0xff]++
	}
}

// SortKeyedHist runs the scatter passes of the stable LSD radix sort
// with histograms accumulated up front (HistKeyed over exactly data's
// elements, in any order). It returns the buffer holding the sorted
// result — data or scratch, whichever the last active pass landed in —
// together with the other (spare) buffer, so callers that own both
// avoid the copy-back of SortKeyed. scratch is grown as needed; h is
// consumed.
func SortKeyedHist[E any](data []E, key func(E) uint64, scratch []E, h *KeyedHist) (sorted, spare []E) {
	n := len(data)
	if h.n != n {
		panic("seq: SortKeyedHist histogram count does not match the data")
	}
	if n < 2 {
		return data, scratch
	}
	if len(scratch) < n {
		scratch = make([]E, n)
	}
	src, dst := data, scratch[:n]
	for pass := 0; pass < 8; pass++ {
		hp := &h.hist[pass]
		// Skip passes whose digit is constant (common for small key
		// ranges: sorted/dup-heavy workloads need 1-2 passes).
		trivial := false
		for b := 0; b < 256; b++ {
			if hp[b] == n {
				trivial = true
				break
			}
			if hp[b] != 0 {
				break
			}
		}
		if trivial {
			continue
		}
		var starts [256]int
		sum := 0
		for b := 0; b < 256; b++ {
			starts[b] = sum
			sum += hp[b]
		}
		shift := uint(8 * pass)
		for _, e := range src {
			b := (key(e) >> shift) & 0xff
			dst[starts[b]] = e
			starts[b]++
		}
		src, dst = dst, src
	}
	return src, dst
}

// SortKeyedOps returns the modeled operation count of a radix sort of n
// elements: 9n element-steps (one histogram pass + up to 8 scatter
// passes, counted as a constant ~8 effective).
func SortKeyedOps(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return 9 * n
}

// insertionByKey is the stable small-input sort shared by the radix
// kernels.
func insertionByKey[E any](data []E, key func(E) uint64) {
	for i := 1; i < len(data); i++ {
		e, k := data[i], key(data[i])
		j := i
		for j > 0 && key(data[j-1]) > k {
			data[j] = data[j-1]
			j--
		}
		data[j] = e
	}
}

// msdCutoff is the segment size below which the in-place radix descent
// switches to insertion sort.
const msdCutoff = 64

// SortKeyedInPlace sorts data ascending by the uint64 key with an
// in-place MSD radix sort: an American-flag cycle walk per 8-bit digit
// (like PartitionInPlace, but with the digit as the bucket) recursing
// into the 256 sub-segments, with insertion sort below 64 elements. It
// allocates nothing — the kernel the sorters' hot paths use, where the
// LSD variant's full-size ping-pong scratch would be the largest
// allocation of a level. Deterministic but NOT stable on equal keys
// (irrelevant under the Config.Key contract, which makes equal-key
// elements order-indistinguishable; use SortKeyed where stability
// matters). Same key contract as SortKeyed:
//
//	less(a, b) == (key(a) < key(b))  for all a, b
func SortKeyedInPlace[E any](data []E, key func(E) uint64) {
	msdRadix(data, key, 56)
}

func msdRadix[E any](data []E, key func(E) uint64, shift uint) {
	n := len(data)
	if n <= msdCutoff {
		if n > 1 {
			insertionByKey(data, key)
		}
		return
	}
	var counts [256]int
	for _, e := range data {
		counts[(key(e)>>shift)&0xff]++
	}
	var bounds [257]int
	single := -1
	for b := 0; b < 256; b++ {
		bounds[b+1] = bounds[b] + counts[b]
		if counts[b] == n {
			single = b
		}
	}
	if single < 0 {
		// American-flag walk: swap every element into its digit's
		// segment; each swap finalizes one element, so the walk is O(n).
		next := bounds
		for b := 0; b < 256; b++ {
			for i := next[b]; i < bounds[b+1]; i = next[b] {
				v := int((key(data[i]) >> shift) & 0xff)
				if v == b {
					next[b] = i + 1
					continue
				}
				j := next[v]
				next[v] = j + 1
				data[i], data[j] = data[j], data[i]
			}
		}
	}
	if shift == 0 {
		return
	}
	if single >= 0 {
		// Constant digit: descend without the walk.
		msdRadix(data, key, shift-8)
		return
	}
	for b := 0; b < 256; b++ {
		if seg := data[bounds[b]:bounds[b+1]]; len(seg) > 1 {
			msdRadix(seg, key, shift-8)
		}
	}
}
