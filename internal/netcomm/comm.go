package netcomm

import (
	"fmt"

	"pmsort/internal/comm"
	"pmsort/internal/obs"
)

// Comm is the TCP backend's communicator: an ordered group of process
// ranks with this process's position in it. Splitting is purely local,
// exactly like the other backends' — the split geometry comes from the
// shared helpers in internal/comm, so group shapes (and therefore
// output bytes) match the simulator and the native backend exactly.
type Comm struct {
	m     *Machine
	ranks []int // global ranks of the members, ascending by construction
	me    int   // index of this process in ranks
}

var _ comm.Communicator = (*Comm)(nil)

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.ranks) }

// Rank returns this PE's group-relative rank.
func (c *Comm) Rank() int { return c.me }

// GlobalRank translates a group-relative rank to a cluster rank.
func (c *Comm) GlobalRank(r int) int { return c.ranks[r] }

// Send transmits the payload to the member with group-relative rank
// `to`. Self-sends move by reference through the mailbox (native
// semantics); remote sends hand the payload to the peer's writer
// goroutine, which serializes it — the sender must treat it as
// transferred either way (the Communicator ownership contract).
func (c *Comm) Send(to, tag int, payload any, words int64) {
	target := c.ranks[to]
	if target == c.m.rank {
		c.m.mbox.put(target, tag, envelope{payload: payload, words: words})
		return
	}
	c.m.enqueue(target, tag, payload, words)
}

// Recv blocks until the message with the given tag from the member with
// group-relative rank `from` arrives.
func (c *Comm) Recv(from, tag int) (any, int64) {
	e := c.m.mbox.take(c.ranks[from], tag)
	return e.payload, e.words
}

// SplitEqual partitions the members into `groups` balanced contiguous
// groups and returns this PE's group communicator and group index.
func (c *Comm) SplitEqual(groups int) (comm.Communicator, int) {
	starts, ok := comm.EqualStarts(len(c.ranks), groups)
	if !ok {
		panic(fmt.Sprintf("netcomm: SplitEqual(%d) on communicator of size %d", groups, len(c.ranks)))
	}
	return c.SplitStarts(starts)
}

// SplitStarts partitions the members into contiguous groups given by
// starts (see comm.Communicator). Returns this PE's group communicator
// and group index.
func (c *Comm) SplitStarts(starts []int) (comm.Communicator, int) {
	lo, hi, g, ok := comm.SplitBounds(starts, len(c.ranks), c.me)
	if !ok {
		panic(fmt.Sprintf("netcomm: SplitStarts with invalid bounds %v for size %d rank %d", starts, len(c.ranks), c.me))
	}
	return &Comm{m: c.m, ranks: c.ranks[lo:hi], me: c.me - lo}, g
}

// SplitModulo partitions the members into m groups by rank modulo m and
// returns this PE's group communicator and group index.
func (c *Comm) SplitModulo(m int) (comm.Communicator, int) {
	ranks, me, g, ok := comm.ModuloRanks(c.ranks, c.me, m)
	if !ok {
		panic(fmt.Sprintf("netcomm: SplitModulo(%d) on communicator of size %d", m, len(c.ranks)))
	}
	return &Comm{m: c.m, ranks: ranks, me: me}, g
}

// Subset returns the communicator of members [lo, hi). This PE must be
// a member of the subset.
func (c *Comm) Subset(lo, hi int) comm.Communicator {
	if c.me < lo || c.me >= hi {
		panic(fmt.Sprintf("netcomm: Subset(%d,%d) does not contain rank %d", lo, hi, c.me))
	}
	return &Comm{m: c.m, ranks: c.ranks[lo:hi], me: c.me - lo}
}

// Cost returns the wall-clock hook: annotations are free, Now reads
// real elapsed time since this rank's Run started.
func (c *Comm) Cost() comm.Cost { return comm.WallClock{Epoch: c.m.epoch} }

// ObsRecorder returns this rank's obs recorder (nil unless Options.Obs
// was set) — the obs.Source hook; split communicators share the machine
// and so stay traced.
func (c *Comm) ObsRecorder() *obs.Recorder { return c.m.rec }

// Health snapshots the machine's liveness state (see Machine.Health).
// The service layer reaches it through an interface upcast — the
// backend-neutral comm.Communicator deliberately does not know about
// mesh health.
func (c *Comm) Health() MeshHealth { return c.m.Health() }

// RetireTagRange retires the tag namespaces covering [lo, hi) on this
// endpoint (see Machine.RetireTags): the teardown half of the service
// layer's mesh-wide job abort.
func (c *Comm) RetireTagRange(lo, hi int) { c.m.RetireTags(lo, hi) }
