package netcomm

import (
	"errors"
	"testing"
	"time"
)

// hangGate is a minimal in-test read gate (the netfault package has the
// full-featured injector; netcomm's own tests stay dependency-light to
// avoid an import cycle): Read blocks while the gate is down.
type hangGate struct {
	gate chan struct{} // closed = open
}

type gatedConn struct {
	Conn
	g *hangGate
}

func newHangGate() *hangGate {
	open := make(chan struct{})
	close(open)
	return &hangGate{gate: open}
}

var gateMu = make(chan struct{}, 1)

func (g *hangGate) Hang() {
	gateMu <- struct{}{}
	g.gate = make(chan struct{})
	<-gateMu
}

func (g *hangGate) Release() {
	gateMu <- struct{}{}
	close(g.gate)
	<-gateMu
}

func (g *hangGate) wait() {
	gateMu <- struct{}{}
	ch := g.gate
	<-gateMu
	<-ch
}

func (c gatedConn) Read(p []byte) (int, error) {
	c.g.wait()
	return c.Conn.Read(p)
}

// TestHeartbeatRTT pins the heartbeat plumbing: with heartbeats on,
// pongs flow and Health reports a live round-trip and a fresh pong age
// for every peer.
func TestHeartbeatRTT(t *testing.T) {
	err := LocalClusterOpts(2, 30*time.Second,
		func(rank int) Options {
			return Options{HeartbeatInterval: 10 * time.Millisecond}
		},
		func(m *Machine, rank int) error {
			deadline := time.Now().Add(5 * time.Second)
			for {
				h := m.Health()
				if len(h.Peers) != 1 {
					return errors.New("expected exactly one peer in Health")
				}
				ph := h.Peers[0]
				if ph.RTTNS > 0 && ph.SincePongNS >= 0 && ph.SincePongNS < int64(time.Second) {
					if !h.Healthy() {
						return errors.New("mesh with live pongs reported unhealthy")
					}
					return nil
				}
				if time.Now().After(deadline) {
					return errors.New("no heartbeat round-trip recorded within 5s")
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStallDetectionAndRecovery is the transport half of the issue's
// acceptance scenario: a peer that stops reading (connection open) is
// declared stalled within the window and receives from it fail with
// *TransportError{Kind: KindStalled}; when it resumes reading, the
// mesh heals and traffic flows again.
func TestStallDetectionAndRecovery(t *testing.T) {
	gate := newHangGate()
	hung := make(chan struct{})
	released := make(chan struct{})
	healed := make(chan struct{})
	const (
		interval = 10 * time.Millisecond
		window   = 150 * time.Millisecond
	)
	err := LocalClusterOpts(2, 30*time.Second,
		func(rank int) Options {
			opt := Options{HeartbeatInterval: interval, StallWindow: window}
			if rank == 1 {
				opt.WrapConn = func(peer int, c Conn) Conn { return gatedConn{Conn: c, g: gate} }
			}
			return opt
		},
		func(m *Machine, rank int) error {
			c := &Comm{m: m, ranks: m.world, me: m.rank}
			if rank == 1 {
				// The faulty rank: stop reading, wait for rank 0 to see
				// the stall, then resume and send the recovery probe.
				gate.Hang()
				close(hung)
				<-released
				gate.Release()
				c.Send(0, 0x51, uint64(0xbeef), 1)
				// Recover from our own symmetric stall before exiting.
				deadline := time.Now().Add(30 * time.Second)
				for !m.Health().Healthy() {
					if time.Now().After(deadline) {
						return errors.New("rank 1 never healed after release")
					}
					time.Sleep(10 * time.Millisecond)
				}
				// Do not tear down until rank 0 has observed the heal:
				// exiting closes this machine, and a vanished peer makes
				// rank 0 unhealthy again — correctly, but that would race
				// away the healthy window rank 0 is polling for.
				<-healed
				return nil
			}

			<-hung
			// In-flight receive fails typed within the window (plus
			// scheduling slack), not forever.
			start := time.Now()
			var te *TransportError
			func() {
				defer func() {
					r := recover()
					if r == nil {
						return
					}
					var ok bool
					if te, ok = r.(*TransportError); !ok {
						panic(r)
					}
				}()
				c.Recv(1, 0x50)
			}()
			if te == nil {
				return errors.New("recv from a stalled peer returned instead of failing")
			}
			if te.Kind != KindStalled || te.Peer != 1 {
				return errors.New("stall surfaced as " + te.Kind.String() + " — want stalled at peer 1")
			}
			if waited := time.Since(start); waited > window+5*time.Second {
				return errors.New("stall detection took " + waited.String())
			}
			if h := m.Health(); h.Healthy() {
				return errors.New("Health still healthy while peer stalled")
			}
			close(released)

			// Recovery: the peer resumed reading, pongs flow again, and
			// the probe it sent is deliverable.
			deadline := time.Now().Add(30 * time.Second)
			for !m.Health().Healthy() {
				if time.Now().After(deadline) {
					return errors.New("mesh never healed after the peer resumed")
				}
				time.Sleep(10 * time.Millisecond)
			}
			pl, _ := c.Recv(1, 0x51)
			if pl.(uint64) != 0xbeef {
				return errors.New("recovery probe corrupted")
			}
			close(healed)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWriteDeadlineStall pins the write half of liveness: a peer that
// stops draining its socket while bulk data is in flight fails the
// writer within the stall window — kind stalled, fatally (bytes were
// torn mid-frame, the stream cannot resume).
func TestWriteDeadlineStall(t *testing.T) {
	gate := newHangGate()
	hung := make(chan struct{})
	done := make(chan struct{})
	err := LocalClusterOpts(2, 30*time.Second,
		func(rank int) Options {
			opt := Options{StallWindow: 300 * time.Millisecond}
			if rank == 1 {
				opt.WrapConn = func(peer int, c Conn) Conn { return gatedConn{Conn: c, g: gate} }
			}
			return opt
		},
		func(m *Machine, rank int) error {
			c := &Comm{m: m, ranks: m.world, me: m.rank}
			if rank == 1 {
				gate.Hang()
				close(hung)
				<-done // wait for rank 0 to finish, then let Close drain
				gate.Release()
				return nil
			}
			defer close(done)
			<-hung
			// Flood the stalled peer far past any socket buffer; the
			// writer must hit its deadline, not block forever.
			payload := make([]uint64, 1<<17) // 1 MiB frames, vectored path
			for i := 0; i < 64; i++ {
				c.Send(1, 0x60, payload, int64(len(payload)))
			}
			var te *TransportError
			func() {
				defer func() {
					if r := recover(); r != nil {
						te, _ = r.(*TransportError)
					}
				}()
				c.Recv(1, 0x61) // poisoned by the writer's failure
			}()
			if te == nil {
				return errors.New("mesh never failed despite an undrained bulk write")
			}
			if te.Kind != KindStalled {
				return errors.New("write stall surfaced as " + te.Kind.String() + " — want stalled")
			}
			// The recv may have been woken by the recoverable
			// heartbeat-detected stall first; the blocked writer's
			// deadline must still escalate to a fatal poison.
			deadline := time.Now().Add(10 * time.Second)
			for m.Health().Failed == nil {
				if time.Now().After(deadline) {
					return errors.New("write stall never poisoned the mesh fatally")
				}
				time.Sleep(10 * time.Millisecond)
			}
			var fte *TransportError
			if !errors.As(m.Health().Failed, &fte) || fte.Kind != KindStalled {
				return errors.New("fatal poison is not a stalled TransportError")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}
