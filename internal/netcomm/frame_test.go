package netcomm

import (
	"reflect"
	"strings"
	"testing"

	"pmsort/internal/comm"
	"pmsort/internal/wire"
)

// frameTotal computes the frame length (the value of the u32 prefix)
// the writer will produce for a payload, by encoding it the way
// writeLoop does.
func frameTotal(t *testing.T, tag int, words int64, payload any) int {
	t.Helper()
	aligned := wire.HostLittleEndian()
	frame := []byte{0, 0, 0, 0, 0}
	frame = appendUvarintTest(frame, uint64(tag))
	frame = appendUvarintTest(frame, uint64(words))
	segs, err := wire.NewWriter().AppendPayloadVec(frame, payload, wire.VecOptions{Aligned: aligned, AlignBase: 4, MinSpan: vecMinSpan})
	if err != nil {
		t.Fatal(err)
	}
	total := -4
	for _, s := range segs {
		total += len(s)
	}
	return total
}

func appendUvarintTest(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// TestFrameAtAndOverLimit pins the maxFrame boundary without 1 GiB
// allocations: with the limit lowered to exactly one message's frame
// length, the message passes (the check is `total > maxFrame`); one
// byte lower, the writer fails the machine with the frame-limit
// diagnosis and Run surfaces it on every rank.
func TestFrameAtAndOverLimit(t *testing.T) {
	payload := make([]uint64, 4096)
	for i := range payload {
		payload[i] = uint64(i)
	}
	const tag = 0x9000
	limit := frameTotal(t, tag, int64(len(payload)), payload)

	saved := maxFrame
	defer func() { maxFrame = saved }()

	run := func(lim int) []error {
		maxFrame = lim
		errs := make([]error, 2)
		cluster(t, 2, func(m *Machine, rank int) {
			_, errs[rank] = m.Run(func(c comm.Communicator) {
				if rank == 0 {
					c.Send(1, tag, payload, int64(len(payload)))
					// Wait for the ack so the frame is known delivered
					// (or the failure known surfaced) before Close.
					c.Recv(1, tag+1)
				} else {
					pl, _ := c.Recv(0, tag)
					if got := pl.([]uint64); !reflect.DeepEqual(got, payload) {
						t.Errorf("payload mangled at the frame limit")
					}
					c.Send(0, tag+1, nil, 1)
				}
			})
		})
		return errs
	}

	if errs := run(limit); errs[0] != nil || errs[1] != nil {
		t.Fatalf("frame exactly at maxFrame must pass: %v / %v", errs[0], errs[1])
	}
	errs := run(limit - 1)
	if errs[0] == nil {
		t.Fatal("frame over maxFrame must fail the sending machine")
	}
	if !strings.Contains(errs[0].Error(), "frame limit") {
		t.Fatalf("sender error does not name the frame limit: %v", errs[0])
	}
}

// TestDecodedChunksOutliveReaderScratch is the regression pin for the
// receive-side buffer handoff (DESIGN.md §10): payloads decoded from
// one frame — which alias that frame's buffer on the zero-copy path —
// must stay intact while later frames stream through the same reader.
// A readLoop that reused its scratch buffer after an aliasing decode
// would overwrite earlier payloads with later bytes.
func TestDecodedChunksOutliveReaderScratch(t *testing.T) {
	const tag = 0x9100
	const n = 64 << 10 // two bulk frames, both well past any batching threshold
	mk := func(seed uint64) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = seed ^ uint64(i)*0x9e3779b97f4a7c15
		}
		return s
	}
	a, b := mk(0xaaaa), mk(0xbbbb)
	cluster(t, 2, func(m *Machine, rank int) {
		_, err := m.Run(func(c comm.Communicator) {
			if rank == 0 {
				c.Send(1, tag, a, n)
				c.Send(1, tag, b, n)
				c.Recv(1, tag+1)
				return
			}
			// Hold the first payload across the arrival and decode of
			// the second, then check every word.
			pa, _ := c.Recv(0, tag)
			pb, _ := c.Recv(0, tag)
			got := pa.([]uint64)
			for i := range got {
				if got[i] != a[i] {
					t.Errorf("first payload corrupted at %d after the second frame decoded", i)
					break
				}
			}
			if gb := pb.([]uint64); !reflect.DeepEqual(gb, b) {
				t.Error("second payload mangled")
			}
			c.Send(0, tag+1, nil, 1)
		})
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	})
}

// TestSmallControlFramesStillBatch sends a burst of small messages and
// one nil-payload ("empty") frame between two ranks: the bufio batching
// path and the vectored bulk path interleave on one connection, and
// every message must arrive intact and in (sender, tag) FIFO order.
func TestSmallControlFramesStillBatch(t *testing.T) {
	const tag = 0x9200
	big := make([]uint64, 32<<10)
	for i := range big {
		big[i] = uint64(i) * 3
	}
	cluster(t, 2, func(m *Machine, rank int) {
		_, err := m.Run(func(c comm.Communicator) {
			if rank == 0 {
				for i := 0; i < 100; i++ {
					c.Send(1, tag, int64(i), 1)
				}
				c.Send(1, tag, nil, 1)               // empty frame amid the batch
				c.Send(1, tag, big, int64(len(big))) // vectored bulk on the same stream
				c.Send(1, tag, int64(100), 1)
				c.Recv(1, tag+1)
				return
			}
			for i := 0; i < 100; i++ {
				pl, _ := c.Recv(0, tag)
				if pl.(int64) != int64(i) {
					t.Fatalf("message %d out of order: %v", i, pl)
				}
			}
			if pl, _ := c.Recv(0, tag); pl != nil {
				t.Fatalf("nil payload decoded to %v", pl)
			}
			pl, _ := c.Recv(0, tag)
			if !reflect.DeepEqual(pl.([]uint64), big) {
				t.Fatal("bulk payload mangled between batched control frames")
			}
			if pl, _ := c.Recv(0, tag); pl.(int64) != 100 {
				t.Fatalf("trailing message lost: %v", pl)
			}
			c.Send(0, tag+1, nil, 1)
		})
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	})
}
