package netcomm

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// ReserveLoopbackAddrs picks p currently free loopback addresses by
// binding ephemeral listeners and releasing them. The small window
// before a cluster rebinds them is absorbed by the transport's bind
// retry. It is the canonical port bring-up for every in-process or
// launched loopback cluster (expt.RunTCP, sortnode -launch, the
// degenerate-input and torture TCP test legs).
func ReserveLoopbackAddrs(p int) ([]string, error) {
	addrs := make([]string, p)
	lns := make([]net.Listener, 0, p)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

// LocalCluster brings up a p-rank TCP cluster inside this process —
// one Machine per rank on freshly reserved loopback ports, real
// sockets in between — runs fn once per rank on its own goroutine, and
// tears everything down. fn may call Machine.Run several times
// (collectively). The first per-rank error wins.
func LocalCluster(p int, timeout time.Duration, fn func(m *Machine, rank int) error) error {
	return LocalClusterOpts(p, timeout, nil, fn)
}

// LocalClusterOpts is LocalCluster with per-rank transport options —
// the bring-up used by fault-injection tests and drills, where each
// rank gets its own netfault wrapper, heartbeat cadence, and stall
// window. optFor may be nil (plain options) and must not set
// RendezvousTimeout (the cluster timeout wins).
func LocalClusterOpts(p int, timeout time.Duration, optFor func(rank int) Options, fn func(m *Machine, rank int) error) error {
	addrs, err := ReserveLoopbackAddrs(p)
	if err != nil {
		return err
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var opt Options
			if optFor != nil {
				opt = optFor(rank)
			}
			opt.RendezvousTimeout = timeout
			m, err := New(rank, addrs, opt)
			if err != nil {
				errs[rank] = err
				return
			}
			defer m.Close()
			errs[rank] = fn(m, rank)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", rank, err)
		}
	}
	return nil
}
