package netcomm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestMailboxConcurrentReceivers pins the contract the service layer
// leans on: many goroutines blocked in take on distinct (from, tag)
// keys, each woken by exactly its own put, no lost wakeups.
func TestMailboxConcurrentReceivers(t *testing.T) {
	mb := newMailbox()
	const n = 64
	var wg sync.WaitGroup
	got := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = mb.take(i%4, 100+i).payload
		}(i)
	}
	// Let the receivers park, then deliver in reverse order.
	time.Sleep(10 * time.Millisecond)
	for i := n - 1; i >= 0; i-- {
		mb.put(i%4, 100+i, envelope{payload: i, words: 1})
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if got[i] != i {
			t.Fatalf("receiver %d got %v", i, got[i])
		}
	}
	if mb.pending() != 0 {
		t.Fatalf("%d messages left over", mb.pending())
	}
}

// TestMailboxFailWakesAllReceivers pins the poison path: a transport
// failure unblocks every parked receiver with a *TransportError instead
// of leaving them parked forever.
func TestMailboxFailWakesAllReceivers(t *testing.T) {
	mb := newMailbox()
	const n = 8
	panics := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() {
				r := recover()
				te, ok := r.(*TransportError)
				if !ok {
					panics <- fmt.Errorf("receiver %d: recovered %v, want *TransportError", i, r)
					return
				}
				if te.Peer != 2 {
					panics <- fmt.Errorf("receiver %d: peer %d, want 2", i, te.Peer)
					return
				}
				panics <- nil
			}()
			mb.take(1, 7000+i)
			panics <- errors.New("take returned without a message")
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	mb.fail(2, KindReset, errors.New("connection reset by peer"))
	for i := 0; i < n; i++ {
		select {
		case err := <-panics:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("receiver still parked after fail")
		}
	}
	// The error is sticky: a fresh take fails immediately.
	func() {
		defer func() {
			if _, ok := recover().(*TransportError); !ok {
				t.Fatalf("take after fail did not panic with *TransportError")
			}
		}()
		mb.take(0, 1)
	}()
}

// TestMailboxHangupFailsWaiters pins graceful-EOF handling: buffered
// messages from a hung-up peer stay takeable, waiting for a new one
// panics.
func TestMailboxHangupFailsWaiters(t *testing.T) {
	mb := newMailbox()
	mb.put(3, 9, envelope{payload: "buffered", words: 1})
	mb.hangup(3)
	if got := mb.take(3, 9).payload; got != "buffered" {
		t.Fatalf("buffered message lost: %v", got)
	}
	defer func() {
		te, ok := recover().(*TransportError)
		if !ok || te.Peer != 3 {
			t.Fatalf("take after hangup: recovered %v", te)
		}
	}()
	mb.take(3, 9)
}
