package netcomm

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// recoverTransportError runs fn and returns the *TransportError it
// panicked with (nil if it returned normally); any other panic value is
// re-raised.
func recoverTransportError(fn func()) (te *TransportError) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		var ok bool
		if te, ok = r.(*TransportError); !ok {
			panic(r)
		}
	}()
	fn()
	return nil
}

// TestTransportErrorUnwrapChain pins the error taxonomy the service
// layer dispatches on: errors.As finds the *TransportError (with Kind
// and Peer intact) through arbitrary wrapping, and errors.Is still
// reaches the root cause below it.
func TestTransportErrorUnwrapChain(t *testing.T) {
	root := errors.New("connection reset by peer")
	te := &TransportError{
		Err:  fmt.Errorf("reading from rank 2: %w", root),
		Peer: 2,
		Kind: KindReset,
	}
	wrapped := fmt.Errorf("netcomm: rank 0: job 17: %w", te)

	var got *TransportError
	if !errors.As(wrapped, &got) {
		t.Fatal("errors.As failed to find *TransportError through wrapping")
	}
	if got.Kind != KindReset || got.Peer != 2 {
		t.Fatalf("unwrapped kind=%v peer=%d, want reset/2", got.Kind, got.Peer)
	}
	if !errors.Is(wrapped, root) {
		t.Fatal("errors.Is failed to reach the root cause below TransportError")
	}

	// The mailbox's take-path rewrap must preserve Kind, Peer, and the
	// unwrap chain, not just the message.
	mb := newMailbox()
	mb.fail(2, KindReset, root)
	rte := recoverTransportError(func() { mb.take(0, 1) })
	if rte == nil {
		t.Fatal("take after fail returned normally")
	}
	if rte.Kind != KindReset || rte.Peer != 2 {
		t.Fatalf("take rewrap kind=%v peer=%d, want reset/2", rte.Kind, rte.Peer)
	}
	if !errors.Is(rte, root) {
		t.Fatal("take rewrap lost the unwrap chain to the root cause")
	}
}

// TestRecvAfterAbort pins both sides of an abort: the aborting rank's
// own receives fail with KindAborted at its own rank, and the surviving
// peer observes a hard transport failure (reset or hangup, attributed
// to the aborted rank) — never a silent hang.
func TestRecvAfterAbort(t *testing.T) {
	aborted := make(chan struct{})
	err := LocalClusterOpts(2, 30*time.Second, nil,
		func(m *Machine, rank int) error {
			c := &Comm{m: m, ranks: m.world, me: m.rank}
			if rank == 0 {
				m.Abort()
				close(aborted)
				te := recoverTransportError(func() { c.Recv(1, 0x70) })
				if te == nil {
					return errors.New("recv after own abort returned normally")
				}
				if te.Kind != KindAborted || te.Peer != 0 {
					return fmt.Errorf("own recv after abort: kind=%v peer=%d, want aborted/0", te.Kind, te.Peer)
				}
				return nil
			}
			<-aborted
			te := recoverTransportError(func() { c.Recv(0, 0x70) })
			if te == nil {
				return errors.New("recv from an aborted peer returned normally")
			}
			if te.Kind != KindReset && te.Kind != KindHangup {
				return fmt.Errorf("surviving rank saw kind=%v, want reset or hangup", te.Kind)
			}
			if te.Peer != 0 {
				return fmt.Errorf("surviving rank attributed the failure to rank %d, want 0", te.Peer)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAbortDuringVectoredWrite pins abort under load: rank 1 aborts
// while rank 0 has megabytes of vectored frames in flight toward it.
// Rank 0's writer must fail typed (not wedge), and rank 0's blocked
// receive must surface that failure attributed to rank 1.
func TestAbortDuringVectoredWrite(t *testing.T) {
	aborted := make(chan struct{})
	err := LocalClusterOpts(2, 30*time.Second, nil,
		func(m *Machine, rank int) error {
			c := &Comm{m: m, ranks: m.world, me: m.rank}
			if rank == 1 {
				// Take one frame so rank 0's writer is demonstrably
				// mid-stream, then die abruptly.
				c.Recv(0, 0x80)
				m.Abort()
				close(aborted)
				return nil
			}
			payload := make([]uint64, 1<<17) // 1 MiB frames: vectored write path
			for i := 0; i < 64; i++ {
				c.Send(1, 0x80, payload, int64(len(payload)))
			}
			<-aborted
			te := recoverTransportError(func() { c.Recv(1, 0x81) })
			if te == nil {
				return errors.New("mesh never failed despite the peer aborting mid-stream")
			}
			if te.Kind != KindReset && te.Kind != KindHangup {
				return fmt.Errorf("abort mid-write surfaced as kind=%v, want reset or hangup", te.Kind)
			}
			if te.Peer != 1 {
				return fmt.Errorf("failure attributed to rank %d, want 1", te.Peer)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDoubleAbortIdempotent pins that Abort is safe to call twice (and
// before Close): the second call and the Close are no-ops, the typed
// poison from the first abort wins, and nothing panics or deadlocks.
func TestDoubleAbortIdempotent(t *testing.T) {
	aborted := make(chan struct{})
	err := LocalClusterOpts(2, 30*time.Second, nil,
		func(m *Machine, rank int) error {
			c := &Comm{m: m, ranks: m.world, me: m.rank}
			if rank == 0 {
				m.Abort()
				m.Abort() // idempotent
				close(aborted)
				if cerr := m.Close(); cerr == nil {
					return errors.New("Close after Abort reported success for an aborted endpoint")
				}
				te := recoverTransportError(func() { c.Recv(1, 0x90) })
				if te == nil || te.Kind != KindAborted {
					return fmt.Errorf("recv after double abort: %v, want KindAborted", te)
				}
				return nil
			}
			<-aborted
			te := recoverTransportError(func() { c.Recv(0, 0x90) })
			if te == nil {
				return errors.New("recv from a double-aborted peer returned normally")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}
