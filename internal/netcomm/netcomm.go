// Package netcomm is the TCP backend of comm.Communicator: a cluster of
// p single-PE processes (one rank per process, typically on different
// machines) connected by one persistent duplex TCP connection per peer
// pair, exchanging the algorithms' payloads through the typed wire codec
// of internal/wire.
//
// Topology and rendezvous: every rank is given the same ordered address
// list; rank i listens on addrs[i] and dials every lower rank, retrying
// until the whole mesh is up (peers may start in any order). The
// connection per pair is established once and reused for the lifetime
// of the machine.
//
// Data path: Send is eager and never blocks — the payload is handed to
// the destination peer's writer goroutine, which serializes it
// (internal/wire), frames it with a length prefix, and streams it out
// through a buffered writer that flushes when the queue momentarily
// drains. A reader goroutine per peer decodes incoming frames into the
// process's mailbox, where Recv matches them by (sender, tag) with FIFO
// order per pair — the exact discipline of the native backend.
// Self-sends short-circuit through the mailbox without serialization.
//
// Concurrency: unlike the in-process backends, this backend's data path
// is safe for concurrent use from several goroutines of the rank
// process — Send enqueues under a per-peer mutex and any number of
// goroutines may block in Recv as long as no two of them await the same
// (sender, tag) pair at once. That is the substrate the service layer
// (internal/svc) schedules concurrent sort jobs on: each job runs its
// collectives through a comm.WithTagOffset view, so jobs occupy
// disjoint tag namespaces and the single-receiver-per-pair rule holds
// by construction. A peer dying mid-collective surfaces as a
// *TransportError from Machine.Run (or from whatever goroutine was
// receiving), not as a process crash.
//
// Cost annotations are no-ops and Now reads the wall clock
// (comm.WallClock), so the backend-neutral phase statistics report real
// elapsed time, like the native backend.
//
// Serialization boundary: payloads must be of wire-registered types.
// The algorithm entry points register everything they send for their
// element type; user element types beyond plain structs of scalars plug
// in via Config.Encoder. Because the receiver gets a decoded copy, the
// shared-memory read-only conventions of internal/coll are trivially
// satisfied across processes.
package netcomm

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"pmsort/internal/comm"
	"pmsort/internal/obs"
	"pmsort/internal/wire"
)

// Wire protocol constants.
const (
	// handshakeMagic opens every connection, followed by the protocol
	// version byte and the dialer's uvarint rank and world size.
	handshakeMagic = "PMSC"
	protoVersion   = 2

	// frameFlagAligned marks a frame whose bulk blocks carry alignment
	// pads (wire.VecOptions.Aligned): the receiver can decode them as
	// zero-copy views of the frame buffer.
	frameFlagAligned = 1 << 0

	// vecMinSpan is the smallest bulk block the writer sends as a
	// vectored view of the payload instead of copying it into the frame
	// buffer (the zero-copy send path).
	vecMinSpan = 16 << 10

	// directFrameMin is the smallest single-segment frame that bypasses
	// the buffered writer: anything this large is written straight to
	// the socket (one syscall, no staging copy through bufio), while
	// small control messages keep batching through bufio with
	// flush-on-drain.
	directFrameMin = 32 << 10
)

// maxFrame bounds a single message frame (header + encoded payload).
// A frame larger than this indicates corruption. A variable only so the
// frame-edge tests can exercise the limit without 1 GiB allocations.
var maxFrame = 1 << 30

// Options tunes the rendezvous.
type Options struct {
	// RendezvousTimeout bounds the whole mesh construction (bind, dial
	// retries, handshakes). 0 means 30s.
	RendezvousTimeout time.Duration
	// Obs attaches an obs recorder to this rank: the PE program's spans
	// plus the transport counters (frames, vectored-write sizes, mailbox
	// depth and blocked-receive wait). Off by default — the data path
	// then carries no instrumentation beyond nil checks.
	Obs bool
}

// netMetrics caches the transport's obs counter cells, looked up once
// at machine construction. All pointers are nil when observability is
// off, and every Counter method is nil-safe — the disabled data path
// pays one nil check per site.
type netMetrics struct {
	framesOut   *obs.Counter
	framesIn    *obs.Counter
	writevCalls *obs.Counter
	writevBytes *obs.Counter
	bufWrites   *obs.Counter
}

// Machine is this process's endpoint of a TCP cluster: rank `rank` of
// `p` single-PE processes.
type Machine struct {
	rank  int
	p     int
	mbox  *mailbox
	peers []*peer // indexed by rank; nil at m.rank
	epoch time.Time

	rec *obs.Recorder // nil unless Options.Obs
	met netMetrics

	closing  sync.Once
	closeErr error
	world    []int
}

// peer is one established pairwise connection.
type peer struct {
	rank int
	conn *net.TCPConn

	// outbound queue: unbounded so Send never blocks (eager buffered
	// sends — the Communicator contract).
	mu     sync.Mutex
	queue  []outMsg
	closed bool // no further enqueues; writer drains and half-closes
	wake   chan struct{}
	done   chan struct{} // writer goroutine exited
	rdone  chan struct{} // reader goroutine exited
}

// outMsg is one queued outbound message.
type outMsg struct {
	tag     int
	payload any
	words   int64
}

// New establishes this process's endpoint of the cluster: it binds
// addrs[rank], dials every lower rank (retrying until the peer is up),
// accepts every higher rank, and starts the per-peer reader and writer
// goroutines. All processes must call New with the same address list.
func New(rank int, addrs []string, opt Options) (*Machine, error) {
	p := len(addrs)
	if p <= 0 {
		return nil, fmt.Errorf("netcomm: empty address list")
	}
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("netcomm: rank %d outside address list of length %d", rank, p)
	}
	timeout := opt.RendezvousTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)

	m := &Machine{rank: rank, p: p, mbox: newMailbox(), peers: make([]*peer, p)}
	m.world = make([]int, p)
	for i := range m.world {
		m.world[i] = i
	}
	if opt.Obs {
		// The recorder's clock shares its zero with the Stats clock: wall
		// time since the run epoch (set by Run's alignment barrier).
		m.rec = obs.NewRecorder(rank, p, func() int64 { return time.Since(m.epoch).Nanoseconds() })
		m.met = netMetrics{
			framesOut:   m.rec.Counter(obs.CtrNetFramesOut),
			framesIn:    m.rec.Counter(obs.CtrNetFramesIn),
			writevCalls: m.rec.Counter(obs.CtrNetWritevCalls),
			writevBytes: m.rec.Counter(obs.CtrNetWritevBytes),
			bufWrites:   m.rec.Counter(obs.CtrNetBufWrites),
		}
		m.mbox.depthMax = m.rec.Counter(obs.CtrMboxDepthMax)
		m.mbox.waitNS = m.rec.Counter(obs.CtrMboxWaitNS)
	}
	if p == 1 {
		return m, nil
	}

	ln, err := bindRetry(addrs[rank], deadline)
	if err != nil {
		return nil, fmt.Errorf("netcomm: rank %d cannot listen on %s: %w", rank, addrs[rank], err)
	}
	defer ln.Close()
	meshed := make(chan struct{}) // closed once all pairs are connected
	defer close(meshed)

	type result struct {
		peerRank int
		conn     *net.TCPConn
		err      error
	}
	results := make(chan result, p)

	// Accept the higher ranks. The listener is on a real host:port for
	// up to the whole rendezvous window, so stray connections (port
	// scanners, health checks) are possible: a failed handshake drops
	// that connection and keeps accepting — only listener errors (i.e.
	// the deadline) abort, reporting the last rejection for diagnosis.
	if rank < p-1 {
		var rejectMu sync.Mutex
		var lastReject error
		go func() {
			for {
				_ = ln.(*net.TCPListener).SetDeadline(deadline)
				conn, err := ln.Accept()
				if err != nil {
					select {
					case <-meshed: // rendezvous over; the listener closed
					default:
						rejectMu.Lock()
						if lastReject != nil {
							err = fmt.Errorf("%w (last rejected handshake: %v)", err, lastReject)
						}
						rejectMu.Unlock()
						results <- result{err: fmt.Errorf("accept: %w", err)}
					}
					return
				}
				go func(conn net.Conn) {
					peerRank, err := acceptHandshake(conn, rank, p, deadline)
					if err != nil {
						conn.Close()
						rejectMu.Lock()
						lastReject = err
						rejectMu.Unlock()
						return
					}
					results <- result{peerRank: peerRank, conn: conn.(*net.TCPConn)}
				}(conn)
			}
		}()
	}

	// Dial the lower ranks.
	for j := 0; j < rank; j++ {
		go func(j int) {
			conn, err := dialRetry(addrs[j], j, rank, p, deadline)
			results <- result{peerRank: j, conn: conn, err: err}
		}(j)
	}

	conns := make([]*net.TCPConn, p)
	for got := 0; got < p-1; {
		r := <-results
		if r.err == nil && conns[r.peerRank] != nil {
			// A duplicate dial from an already-connected rank means the
			// address lists disagree; that is fatal, not a stray.
			r.err = fmt.Errorf("duplicate connection from rank %d", r.peerRank)
		}
		if r.err != nil {
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
			if r.conn != nil {
				r.conn.Close()
			}
			return nil, fmt.Errorf("netcomm: rank %d rendezvous failed: %w", rank, r.err)
		}
		conns[r.peerRank] = r.conn
		got++
	}

	for j, conn := range conns {
		if conn == nil {
			continue
		}
		pr := &peer{
			rank:  j,
			conn:  conn,
			wake:  make(chan struct{}, 1),
			done:  make(chan struct{}),
			rdone: make(chan struct{}),
		}
		m.peers[j] = pr
		go m.writeLoop(pr)
		go m.readLoop(pr)
	}
	return m, nil
}

// bindRetry listens on addr, retrying briefly: in test and launcher
// setups the port was pre-reserved and released moments ago, and the
// kernel may not have recycled it yet.
func bindRetry(addr string, deadline time.Time) (net.Listener, error) {
	var lastErr error
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, lastErr
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// dialRetry dials addr until the peer is listening, then handshakes.
func dialRetry(addr string, peerRank, myRank, p int, deadline time.Time) (*net.TCPConn, error) {
	backoff := 10 * time.Millisecond
	var lastErr error
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			// Name the unreachable peer and the last dial failure: a
			// restarting service rank needs to know which address never
			// answered, not just that the window elapsed.
			if lastErr != nil {
				return nil, fmt.Errorf("rank %d at %s unreachable: rendezvous window elapsed (last dial error: %v)", peerRank, addr, lastErr)
			}
			return nil, fmt.Errorf("rank %d at %s unreachable: rendezvous window elapsed", peerRank, addr)
		}
		conn, err := net.DialTimeout("tcp", addr, remaining)
		if err == nil {
			tc := conn.(*net.TCPConn)
			if err := dialHandshake(tc, peerRank, myRank, p, deadline); err != nil {
				tc.Close()
				return nil, err
			}
			return tc, nil
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// dialHandshake introduces the dialer: magic, version, rank, world size;
// the acceptor echoes magic, version, and its rank.
func dialHandshake(conn net.Conn, peerRank, myRank, p int, deadline time.Time) error {
	_ = conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	buf := append([]byte(handshakeMagic), protoVersion)
	buf = binary.AppendUvarint(buf, uint64(myRank))
	buf = binary.AppendUvarint(buf, uint64(p))
	if _, err := conn.Write(buf); err != nil {
		return fmt.Errorf("handshake write: %w", err)
	}
	// Read the reply with exact-size reads: a buffered reader could
	// slurp the acceptor's first data frames and lose them.
	br := oneByteReader{conn}
	if err := expectMagic(br); err != nil {
		return err
	}
	got, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("handshake read: %w", err)
	}
	if int(got) != peerRank {
		return fmt.Errorf("handshake: dialed rank %d but %d answered — inconsistent address lists", peerRank, got)
	}
	return nil
}

// acceptHandshake validates the dialer's introduction and echoes ours.
// Returns the dialer's rank.
func acceptHandshake(conn net.Conn, myRank, p int, deadline time.Time) (int, error) {
	_ = conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	// Exact-size reads only: the dialer's data frames may already be in
	// flight right behind its introduction.
	br := oneByteReader{conn}
	if err := expectMagic(br); err != nil {
		return 0, err
	}
	peerRank, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("handshake read: %w", err)
	}
	peerP, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("handshake read: %w", err)
	}
	if int(peerP) != p {
		return 0, fmt.Errorf("handshake: peer believes the cluster has %d ranks, this process %d", peerP, p)
	}
	if int(peerRank) <= myRank || int(peerRank) >= p {
		return 0, fmt.Errorf("handshake: unexpected dialer rank %d (acceptor rank %d, p=%d)", peerRank, myRank, p)
	}
	buf := append([]byte(handshakeMagic), protoVersion)
	buf = binary.AppendUvarint(buf, uint64(myRank))
	if _, err := conn.Write(buf); err != nil {
		return 0, fmt.Errorf("handshake reply: %w", err)
	}
	return int(peerRank), nil
}

// oneByteReader reads from a connection without buffering ahead, so a
// handshake consumes exactly its own bytes and nothing of the frames
// that may follow.
type oneByteReader struct {
	r io.Reader
}

func (o oneByteReader) Read(p []byte) (int, error) { return o.r.Read(p) }

func (o oneByteReader) ReadByte() (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(o.r, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

func expectMagic(br oneByteReader) error {
	var hdr [len(handshakeMagic) + 1]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("handshake read: %w", err)
	}
	if string(hdr[:len(handshakeMagic)]) != handshakeMagic {
		return fmt.Errorf("handshake: bad magic %q — not a pmsort peer", hdr[:len(handshakeMagic)])
	}
	if hdr[len(handshakeMagic)] != protoVersion {
		return fmt.Errorf("handshake: protocol version %d, want %d", hdr[len(handshakeMagic)], protoVersion)
	}
	return nil
}

// Rank returns this process's global rank.
func (m *Machine) Rank() int { return m.rank }

// P returns the number of ranks in the cluster.
func (m *Machine) P() int { return m.p }

// Run executes fn as this rank's PE program, handing it the world
// communicator, and returns the wall-clock time fn took on this rank.
// All ranks must call Run collectively with the same program. A
// transport failure or algorithm panic is returned as an error.
// Run executes fn as this rank's PE program, handing it the world
// communicator. The returned duration and the Stats clock share one
// zero: the cluster-synchronized start, taken after an entry barrier —
// the time this process spent waiting for its peers to enter Run is
// excluded (it measures launch skew, not the program).
func (m *Machine) Run(fn func(c comm.Communicator)) (d time.Duration, err error) {
	start := time.Now()
	defer func() {
		d = time.Since(start)
		if r := recover(); r != nil {
			// A *TransportError (a peer died or hung up mid-collective)
			// surfaces as a typed, unwrappable error — the caller can
			// errors.As it and keep the process alive; everything else is
			// an algorithm panic and is reported verbatim.
			if te, ok := r.(*TransportError); ok {
				err = fmt.Errorf("netcomm: rank %d: %w", m.rank, te)
				return
			}
			err = fmt.Errorf("netcomm: rank %d: %v", m.rank, r)
		}
	}()
	world := &Comm{m: m, ranks: m.world, me: m.rank}
	// Align the wall-clock epochs across ranks before setting this
	// rank's: each process entered Run at its own time, and without a
	// common zero the maxima that TimedBarrier takes over per-rank
	// clocks would fold the inter-rank startup skew into the first
	// phase's statistics (the native backend shares one epoch across
	// its goroutine-PEs; this barrier is the distributed equivalent).
	epochBarrier(world)
	start = time.Now()
	m.epoch = start
	if m.rec != nil {
		// Label the PE goroutine for CPU profiles (obs-enabled runs only).
		pprof.Do(context.Background(), pprof.Labels("pmsort_rank", strconv.Itoa(m.rank)), func(context.Context) {
			fn(world)
		})
		return d, nil
	}
	fn(world)
	return d, nil
}

// Recorder returns this rank's obs recorder (nil unless Options.Obs).
func (m *Machine) Recorder() *obs.Recorder { return m.rec }

// tagEpoch is reserved for Run's epoch-alignment barrier. Tag reuse by
// the algorithms is harmless — (sender, tag) FIFO keeps streams apart —
// but the value sits outside every tag block the packages use.
const tagEpoch = 0x6b0001

// epochBarrier is a dissemination barrier over the world communicator.
func epochBarrier(c *Comm) {
	p, r := c.Size(), c.Rank()
	for d := 1; d < p; d <<= 1 {
		c.Send((r+d)%p, tagEpoch, nil, 1)
		c.Recv((r-d+p)%p, tagEpoch)
	}
}

// enqueue hands an outbound message to the destination peer's writer.
func (m *Machine) enqueue(to, tag int, payload any, words int64) {
	pr := m.peers[to]
	if pr == nil {
		panic(fmt.Sprintf("netcomm: send from rank %d to invalid rank %d (p=%d)", m.rank, to, m.p))
	}
	pr.mu.Lock()
	if pr.closed {
		pr.mu.Unlock()
		panic(fmt.Sprintf("netcomm: send to rank %d after Close", to))
	}
	pr.queue = append(pr.queue, outMsg{tag: tag, payload: payload, words: words})
	pr.mu.Unlock()
	select {
	case pr.wake <- struct{}{}:
	default:
	}
}

// writeLoop serializes and streams the peer's outbound queue. One frame
// per message: u32 LE frame length, a flags byte, then uvarint tag,
// uvarint words, then the wire-encoded payload. Bulk element blocks are
// NOT copied into the frame: the wire codec returns them as views of
// the payload (wire.AppendPayloadVec) and the writer sends header
// segments and payload views together with one vectored write
// (net.Buffers → writev), bypassing the buffered writer. Small control
// frames keep batching through bufio, which is flushed whenever the
// queue momentarily drains, so they coalesce under load but never
// linger. Deferred reads of the payload are sound for the same reason
// deferred encoding always was: the sorters only recycle sent buffers
// after a barrier, and a barrier cannot complete before every receiver
// has consumed the bulk data (DESIGN.md §10).
func (m *Machine) writeLoop(pr *peer) {
	defer close(pr.done)
	if m.rec != nil {
		// Label the IO goroutine for CPU profiles (obs-enabled runs only).
		pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
			pprof.Labels("pmsort_io", "write", "pmsort_peer", strconv.Itoa(pr.rank))))
	}
	bw := bufio.NewWriterSize(pr.conn, 1<<16)
	w := wire.NewWriter()
	aligned := wire.HostLittleEndian()
	var flags byte
	if aligned {
		flags = frameFlagAligned
	}
	vopt := wire.VecOptions{Aligned: aligned, AlignBase: 4, MinSpan: vecMinSpan}
	var frame []byte
	for {
		pr.mu.Lock()
		batch := pr.queue
		pr.queue = nil
		closed := pr.closed
		pr.mu.Unlock()

		for i := range batch {
			msg := &batch[i]
			frame = frame[:0]
			frame = append(frame, 0, 0, 0, 0, flags) // length prefix placeholder + flags
			frame = binary.AppendUvarint(frame, uint64(msg.tag))
			frame = binary.AppendUvarint(frame, uint64(msg.words))
			segs, err := w.AppendPayloadVec(frame, msg.payload, vopt)
			if err != nil {
				m.fail(pr.rank, fmt.Errorf("encoding message for rank %d (tag %#x): %w", pr.rank, msg.tag, err))
				return
			}
			total := -4
			for _, s := range segs {
				total += len(s)
			}
			if total > maxFrame {
				m.fail(pr.rank, fmt.Errorf("message for rank %d exceeds the %d-byte frame limit", pr.rank, maxFrame))
				return
			}
			binary.LittleEndian.PutUint32(segs[0], uint32(total))
			// The first segment is our reusable frame arena — hold on to
			// it before the write: net.Buffers.WriteTo consumes the
			// segment list in place (entries are nilled as they drain).
			first := segs[0]
			if len(segs) == 1 && total+4 < directFrameMin {
				if _, err := bw.Write(first); err != nil {
					m.fail(pr.rank, fmt.Errorf("writing to rank %d: %w", pr.rank, err))
					return
				}
				m.met.bufWrites.Add(1)
			} else {
				// Large or multi-segment frame: flush the batched small
				// messages, then hand all segments — frame headers and
				// payload views alike — to one vectored write.
				if err := bw.Flush(); err != nil {
					m.fail(pr.rank, fmt.Errorf("writing to rank %d: %w", pr.rank, err))
					return
				}
				bufs := net.Buffers(segs)
				if _, err := bufs.WriteTo(pr.conn); err != nil {
					m.fail(pr.rank, fmt.Errorf("writing to rank %d: %w", pr.rank, err))
					return
				}
				m.met.writevCalls.Add(1)
				m.met.writevBytes.Add(int64(total) + 4)
			}
			m.met.framesOut.Add(1)
			// The kernel copied the frame arena during the write; reuse
			// it. Payload view segments belong to the (immutable,
			// post-Send) payload and are dropped.
			frame = first[:0]
			batch[i] = outMsg{} // release the payload before the next batch
		}

		if len(batch) == 0 {
			if err := bw.Flush(); err != nil {
				m.fail(pr.rank, fmt.Errorf("writing to rank %d: %w", pr.rank, err))
				return
			}
			if closed {
				// Graceful half-close: the peer's reader sees EOF after
				// the last byte; our reader keeps draining until theirs.
				_ = pr.conn.CloseWrite()
				return
			}
			<-pr.wake
		}
	}
}

// readLoop decodes the peer's inbound frames into the mailbox.
//
// Buffer discipline (the receive half of the zero-copy path): each
// frame's body is read into a scratch buffer, and aligned bulk blocks
// are decoded as sub-slices of that buffer — one allocation per bulk
// frame, every chunk aliasing it, no per-chunk copy. Receivers own
// decoded data indefinitely, so whenever a decode aliased the buffer,
// ownership moves to the mailbox with the payload and the loop switches
// to a fresh buffer for the next frame (the double-buffer handoff that
// makes aliasing sound). Frames that decode without aliasing (control
// messages, non-bulk payloads, big-endian peers) keep reusing the
// scratch buffer, with copies carved from the reader's bump arena.
func (m *Machine) readLoop(pr *peer) {
	defer close(pr.rdone)
	if m.rec != nil {
		pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
			pprof.Labels("pmsort_io", "read", "pmsort_peer", strconv.Itoa(pr.rank))))
	}
	br := bufio.NewReaderSize(pr.conn, 1<<16)
	r := wire.NewReader()
	var body []byte
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			if err == io.EOF {
				m.mbox.hangup(pr.rank)
				return
			}
			m.fail(pr.rank, fmt.Errorf("reading from rank %d: %w", pr.rank, err))
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if int64(n) > int64(maxFrame) {
			m.fail(pr.rank, fmt.Errorf("frame from rank %d exceeds the %d-byte limit", pr.rank, maxFrame))
			return
		}
		if n < 1 {
			m.fail(pr.rank, fmt.Errorf("corrupt frame from rank %d: empty frame", pr.rank))
			return
		}
		if uint32(cap(body)) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			m.fail(pr.rank, fmt.Errorf("reading from rank %d: %w", pr.rank, err))
			return
		}
		aligned := body[0]&frameFlagAligned != 0
		rest := body[1:]
		tag, k := binary.Uvarint(rest)
		if k <= 0 {
			m.fail(pr.rank, fmt.Errorf("corrupt frame from rank %d: tag", pr.rank))
			return
		}
		rest = rest[k:]
		words, k := binary.Uvarint(rest)
		if k <= 0 {
			m.fail(pr.rank, fmt.Errorf("corrupt frame from rank %d: words", pr.rank))
			return
		}
		rest = rest[k:]
		if !aligned {
			// Copy-mode frame (big-endian peer): pre-size the bump arena
			// from the frame length so all its bulk decodes carve from
			// one allocation.
			r.Grow(len(rest))
		}
		payload, rest, aliased, err := r.DecodePayloadOpt(rest, wire.DecodeOptions{Aligned: aligned, Alias: aligned})
		if err != nil {
			m.fail(pr.rank, fmt.Errorf("decoding message from rank %d (tag %#x): %w", pr.rank, tag, err))
			return
		}
		if len(rest) != 0 {
			m.fail(pr.rank, fmt.Errorf("frame from rank %d has %d trailing bytes (tag %#x)", pr.rank, len(rest), tag))
			return
		}
		m.met.framesIn.Add(1)
		m.mbox.put(pr.rank, int(tag), envelope{payload: payload, words: int64(words)})
		if aliased {
			body = nil // handed off with the payload; next frame gets a fresh buffer
		}
	}
}

// fail records a fatal transport error attributed to the given peer and
// wakes every blocked receiver.
func (m *Machine) fail(peer int, err error) {
	m.mbox.fail(peer, err)
}

// Abort tears this rank's endpoint down abruptly: every connection is
// closed with linger 0 (RST where the stack supports it), nothing is
// flushed, and no hangup handshake happens — the closest in-process
// stand-in for this rank's process dying. Peers observe a transport
// failure (*TransportError) on their next receive, not a graceful
// hangup, and this rank's own blocked receives fail the same way. A
// failure-injection hook for tests of the layers above; a subsequent
// Close is a no-op.
func (m *Machine) Abort() {
	m.closing.Do(func() {
		err := fmt.Errorf("netcomm: rank %d aborted", m.rank)
		for _, pr := range m.peers {
			if pr == nil {
				continue
			}
			pr.mu.Lock()
			pr.closed = true
			pr.mu.Unlock()
			_ = pr.conn.SetLinger(0)
			_ = pr.conn.Close()
		}
		m.mbox.fail(m.rank, err)
		m.closeErr = err
	})
}

// Close flushes and half-closes every outbound stream, waits for the
// peers to do the same (draining whatever is still in flight), and
// tears the connections down. Call it once, after the last Run.
func (m *Machine) Close() error {
	m.closing.Do(func() {
		for _, pr := range m.peers {
			if pr == nil {
				continue
			}
			pr.mu.Lock()
			pr.closed = true
			pr.mu.Unlock()
			select {
			case pr.wake <- struct{}{}:
			default:
			}
		}
		// Bound the drain: a peer that never closes (crashed mid-run)
		// must not wedge shutdown.
		deadline := time.Now().Add(10 * time.Second)
		for _, pr := range m.peers {
			if pr == nil {
				continue
			}
			if !waitUntil(pr.done, deadline) && m.closeErr == nil {
				m.closeErr = fmt.Errorf("netcomm: close timed out flushing to rank %d", pr.rank)
			}
			if !waitUntil(pr.rdone, deadline) && m.closeErr == nil {
				m.closeErr = fmt.Errorf("netcomm: close timed out draining from rank %d", pr.rank)
			}
			pr.conn.Close()
		}
	})
	return m.closeErr
}

// waitUntil waits for ch to close, no later than deadline.
func waitUntil(ch chan struct{}, deadline time.Time) bool {
	d := time.Until(deadline)
	if d <= 0 {
		select {
		case <-ch:
			return true
		default:
			return false
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return false
	}
}
