// Package netcomm is the TCP backend of comm.Communicator: a cluster of
// p single-PE processes (one rank per process, typically on different
// machines) connected by one persistent duplex TCP connection per peer
// pair, exchanging the algorithms' payloads through the typed wire codec
// of internal/wire.
//
// Topology and rendezvous: every rank is given the same ordered address
// list; rank i listens on addrs[i] and dials every lower rank, retrying
// until the whole mesh is up (peers may start in any order). The
// connection per pair is established once and reused for the lifetime
// of the machine.
//
// Data path: Send is eager and never blocks — the payload is handed to
// the destination peer's writer goroutine, which serializes it
// (internal/wire), frames it with a length prefix, and streams it out
// through a buffered writer that flushes when the queue momentarily
// drains. A reader goroutine per peer decodes incoming frames into the
// process's mailbox, where Recv matches them by (sender, tag) with FIFO
// order per pair — the exact discipline of the native backend.
// Self-sends short-circuit through the mailbox without serialization.
//
// Concurrency: unlike the in-process backends, this backend's data path
// is safe for concurrent use from several goroutines of the rank
// process — Send enqueues under a per-peer mutex and any number of
// goroutines may block in Recv as long as no two of them await the same
// (sender, tag) pair at once. That is the substrate the service layer
// (internal/svc) schedules concurrent sort jobs on: each job runs its
// collectives through a comm.WithTagOffset view, so jobs occupy
// disjoint tag namespaces and the single-receiver-per-pair rule holds
// by construction. A peer dying mid-collective surfaces as a
// *TransportError from Machine.Run (or from whatever goroutine was
// receiving), not as a process crash.
//
// Cost annotations are no-ops and Now reads the wall clock
// (comm.WallClock), so the backend-neutral phase statistics report real
// elapsed time, like the native backend.
//
// Serialization boundary: payloads must be of wire-registered types.
// The algorithm entry points register everything they send for their
// element type; user element types beyond plain structs of scalars plug
// in via Config.Encoder. Because the receiver gets a decoded copy, the
// shared-memory read-only conventions of internal/coll are trivially
// satisfied across processes.
package netcomm

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pmsort/internal/comm"
	"pmsort/internal/obs"
	"pmsort/internal/wire"
)

// Wire protocol constants.
const (
	// handshakeMagic opens every connection, followed by the protocol
	// version byte and the dialer's uvarint rank and world size.
	handshakeMagic = "PMSC"
	protoVersion   = 2

	// frameFlagAligned marks a frame whose bulk blocks carry alignment
	// pads (wire.VecOptions.Aligned): the receiver can decode them as
	// zero-copy views of the frame buffer.
	frameFlagAligned = 1 << 0

	// vecMinSpan is the smallest bulk block the writer sends as a
	// vectored view of the payload instead of copying it into the frame
	// buffer (the zero-copy send path).
	vecMinSpan = 16 << 10

	// directFrameMin is the smallest single-segment frame that bypasses
	// the buffered writer: anything this large is written straight to
	// the socket (one syscall, no staging copy through bufio), while
	// small control messages keep batching through bufio with
	// flush-on-drain.
	directFrameMin = 32 << 10
)

// maxFrame bounds a single message frame (header + encoded payload).
// A frame larger than this indicates corruption. A variable only so the
// frame-edge tests can exercise the limit without 1 GiB allocations.
var maxFrame = 1 << 30

// Conn is the connection surface the transport drives. *net.TCPConn
// implements it; Options.WrapConn may interpose anything else that does
// (the netfault package wraps real connections to inject latency, torn
// writes, stalls, and resets deterministically).
type Conn interface {
	io.Reader
	io.Writer
	// Close tears the connection down.
	Close() error
	// CloseWrite half-closes the outbound stream (graceful shutdown).
	CloseWrite() error
	// SetLinger(0) makes Close discard unsent data and reset the
	// connection (the abrupt teardown of Machine.Abort).
	SetLinger(sec int) error
	// SetDeadline and SetWriteDeadline bound blocking I/O calls.
	SetDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// Options tunes the rendezvous and the liveness machinery.
type Options struct {
	// RendezvousTimeout bounds the whole mesh construction (bind, dial
	// retries, handshakes). 0 means 30s.
	RendezvousTimeout time.Duration
	// HeartbeatInterval, when positive, makes this rank ping every peer
	// on a reserved transport tag at that cadence; pongs carry the
	// round-trip time into Health(). Off by default.
	HeartbeatInterval time.Duration
	// StallWindow, when positive (heartbeats must be on), bounds peer
	// unresponsiveness: a peer whose pongs stop for longer than the
	// window — its connection may well still be open — is declared
	// stalled, and receives from it fail with a *TransportError{Kind:
	// KindStalled} until its heartbeats resume. The window also bounds
	// each data-path write: a write that cannot complete within it
	// fails the mesh with the same kind (that one is not recoverable —
	// bytes were torn mid-frame). Off by default: only a closed
	// connection fails receives, exactly the pre-liveness behavior.
	StallWindow time.Duration
	// WrapConn, when set, interposes on every established peer
	// connection after the handshake, before the read/write loops start
	// — the fault-injection seam. peerRank is the remote rank.
	WrapConn func(peerRank int, conn Conn) Conn
	// Obs attaches an obs recorder to this rank: the PE program's spans
	// plus the transport counters (frames, vectored-write sizes, mailbox
	// depth and blocked-receive wait). Off by default — the data path
	// then carries no instrumentation beyond nil checks.
	Obs bool
}

// netMetrics caches the transport's obs counter cells, looked up once
// at machine construction. All pointers are nil when observability is
// off, and every Counter method is nil-safe — the disabled data path
// pays one nil check per site.
type netMetrics struct {
	framesOut   *obs.Counter
	framesIn    *obs.Counter
	writevCalls *obs.Counter
	writevBytes *obs.Counter
	bufWrites   *obs.Counter
}

// Machine is this process's endpoint of a TCP cluster: rank `rank` of
// `p` single-PE processes.
type Machine struct {
	rank  int
	p     int
	mbox  *mailbox
	peers []*peer // indexed by rank; nil at m.rank
	epoch time.Time

	rec *obs.Recorder // nil unless Options.Obs
	met netMetrics

	// Liveness machinery (Options.HeartbeatInterval / StallWindow).
	// monoStart anchors the monotonic clock heartbeat timestamps and
	// pong ages are measured on.
	hbInterval  time.Duration
	stallWindow time.Duration
	monoStart   time.Time
	hbStop      chan struct{}
	hbDone      chan struct{}

	closeErr error
	world    []int
	closing  sync.Once
	hbOnce   sync.Once
}

// peer is one established pairwise connection.
type peer struct {
	rank int
	conn Conn

	// outbound queue: unbounded so Send never blocks (eager buffered
	// sends — the Communicator contract).
	mu    sync.Mutex
	queue []outMsg
	wake  chan struct{}
	done  chan struct{} // writer goroutine exited
	rdone chan struct{} // reader goroutine exited

	// Liveness state: the reader loop stores pong arrivals and
	// round-trips, the heartbeat monitor reads them; stalledMark is the
	// monitor's private edge detector for stall/recover transitions.
	lastPongNS  atomic.Int64
	rttNS       atomic.Int64
	closed      bool // no further enqueues; writer drains and half-closes (guarded by mu)
	stalledMark bool
}

// outMsg is one queued outbound message.
type outMsg struct {
	tag     int
	payload any
	words   int64
}

// New establishes this process's endpoint of the cluster: it binds
// addrs[rank], dials every lower rank (retrying until the peer is up),
// accepts every higher rank, and starts the per-peer reader and writer
// goroutines. All processes must call New with the same address list.
func New(rank int, addrs []string, opt Options) (*Machine, error) {
	p := len(addrs)
	if p <= 0 {
		return nil, fmt.Errorf("netcomm: empty address list")
	}
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("netcomm: rank %d outside address list of length %d", rank, p)
	}
	timeout := opt.RendezvousTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	if opt.StallWindow > 0 && opt.HeartbeatInterval <= 0 {
		// A stall window without heartbeats could never clear: default
		// the cadence to a quarter of the window.
		opt.HeartbeatInterval = opt.StallWindow / 4
	}
	deadline := time.Now().Add(timeout)
	wire.Register[heartbeat]()

	m := &Machine{
		rank:        rank,
		p:           p,
		mbox:        newMailbox(),
		peers:       make([]*peer, p),
		hbInterval:  opt.HeartbeatInterval,
		stallWindow: opt.StallWindow,
		monoStart:   time.Now(),
		hbStop:      make(chan struct{}),
		hbDone:      make(chan struct{}),
	}
	m.world = make([]int, p)
	for i := range m.world {
		m.world[i] = i
	}
	if opt.Obs {
		// The recorder's clock shares its zero with the Stats clock: wall
		// time since the run epoch (set by Run's alignment barrier).
		m.rec = obs.NewRecorder(rank, p, func() int64 { return time.Since(m.epoch).Nanoseconds() })
		m.met = netMetrics{
			framesOut:   m.rec.Counter(obs.CtrNetFramesOut),
			framesIn:    m.rec.Counter(obs.CtrNetFramesIn),
			writevCalls: m.rec.Counter(obs.CtrNetWritevCalls),
			writevBytes: m.rec.Counter(obs.CtrNetWritevBytes),
			bufWrites:   m.rec.Counter(obs.CtrNetBufWrites),
		}
		m.mbox.depthMax = m.rec.Counter(obs.CtrMboxDepthMax)
		m.mbox.waitNS = m.rec.Counter(obs.CtrMboxWaitNS)
	}
	if p == 1 {
		close(m.hbDone) // no peers, no heartbeat loop
		return m, nil
	}

	ln, err := bindRetry(addrs[rank], deadline)
	if err != nil {
		return nil, fmt.Errorf("netcomm: rank %d cannot listen on %s: %w", rank, addrs[rank], err)
	}
	defer ln.Close()
	meshed := make(chan struct{}) // closed once all pairs are connected
	defer close(meshed)

	type result struct {
		peerRank int
		conn     *net.TCPConn
		err      error
	}
	results := make(chan result, p)

	// Accept the higher ranks. The listener is on a real host:port for
	// up to the whole rendezvous window, so stray connections (port
	// scanners, health checks) are possible: a failed handshake drops
	// that connection and keeps accepting — only listener errors (i.e.
	// the deadline) abort, reporting the last rejection for diagnosis.
	if rank < p-1 {
		var rejectMu sync.Mutex
		var lastReject error
		go func() {
			for {
				_ = ln.(*net.TCPListener).SetDeadline(deadline)
				conn, err := ln.Accept()
				if err != nil {
					select {
					case <-meshed: // rendezvous over; the listener closed
					default:
						rejectMu.Lock()
						if lastReject != nil {
							err = fmt.Errorf("%w (last rejected handshake: %v)", err, lastReject)
						}
						rejectMu.Unlock()
						results <- result{err: fmt.Errorf("accept: %w", err)}
					}
					return
				}
				go func(conn net.Conn) {
					peerRank, err := acceptHandshake(conn, rank, p, deadline)
					if err != nil {
						conn.Close()
						rejectMu.Lock()
						lastReject = err
						rejectMu.Unlock()
						return
					}
					results <- result{peerRank: peerRank, conn: conn.(*net.TCPConn)}
				}(conn)
			}
		}()
	}

	// Dial the lower ranks.
	for j := 0; j < rank; j++ {
		go func(j int) {
			conn, err := dialRetry(addrs[j], j, rank, p, deadline)
			results <- result{peerRank: j, conn: conn, err: err}
		}(j)
	}

	conns := make([]*net.TCPConn, p)
	for got := 0; got < p-1; {
		r := <-results
		if r.err == nil && conns[r.peerRank] != nil {
			// A duplicate dial from an already-connected rank means the
			// address lists disagree; that is fatal, not a stray.
			r.err = fmt.Errorf("duplicate connection from rank %d", r.peerRank)
		}
		if r.err != nil {
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
			if r.conn != nil {
				r.conn.Close()
			}
			return nil, fmt.Errorf("netcomm: rank %d rendezvous failed: %w", rank, r.err)
		}
		conns[r.peerRank] = r.conn
		got++
	}

	for j, conn := range conns {
		if conn == nil {
			continue
		}
		// The fault-injection seam: handshakes ran on the raw socket,
		// everything after this point — frames, heartbeats, the close
		// sequence — goes through the wrapped connection.
		var c Conn = conn
		if opt.WrapConn != nil {
			c = opt.WrapConn(j, c)
		}
		pr := &peer{
			rank:  j,
			conn:  c,
			wake:  make(chan struct{}, 1),
			done:  make(chan struct{}),
			rdone: make(chan struct{}),
		}
		pr.lastPongNS.Store(m.mono())
		m.peers[j] = pr
		go m.writeLoop(pr)
		go m.readLoop(pr)
	}
	if m.hbInterval > 0 {
		go m.heartbeatLoop()
	} else {
		close(m.hbDone)
	}
	return m, nil
}

// mono is the machine's monotonic clock (ns since construction): the
// time base of heartbeat timestamps and pong ages.
func (m *Machine) mono() int64 { return int64(time.Since(m.monoStart)) }

// bindRetry listens on addr, retrying briefly: in test and launcher
// setups the port was pre-reserved and released moments ago, and the
// kernel may not have recycled it yet.
func bindRetry(addr string, deadline time.Time) (net.Listener, error) {
	var lastErr error
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, lastErr
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// dialRetry dials addr until the peer is listening, then handshakes.
func dialRetry(addr string, peerRank, myRank, p int, deadline time.Time) (*net.TCPConn, error) {
	backoff := 10 * time.Millisecond
	var lastErr error
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			// Name the unreachable peer and the last dial failure: a
			// restarting service rank needs to know which address never
			// answered, not just that the window elapsed.
			if lastErr != nil {
				return nil, fmt.Errorf("rank %d at %s unreachable: rendezvous window elapsed (last dial error: %v)", peerRank, addr, lastErr)
			}
			return nil, fmt.Errorf("rank %d at %s unreachable: rendezvous window elapsed", peerRank, addr)
		}
		conn, err := net.DialTimeout("tcp", addr, remaining)
		if err == nil {
			tc := conn.(*net.TCPConn)
			if err := dialHandshake(tc, peerRank, myRank, p, deadline); err != nil {
				tc.Close()
				return nil, err
			}
			return tc, nil
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// dialHandshake introduces the dialer: magic, version, rank, world size;
// the acceptor echoes magic, version, and its rank.
func dialHandshake(conn net.Conn, peerRank, myRank, p int, deadline time.Time) error {
	_ = conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	buf := append([]byte(handshakeMagic), protoVersion)
	buf = binary.AppendUvarint(buf, uint64(myRank))
	buf = binary.AppendUvarint(buf, uint64(p))
	if _, err := conn.Write(buf); err != nil {
		return fmt.Errorf("handshake write: %w", err)
	}
	// Read the reply with exact-size reads: a buffered reader could
	// slurp the acceptor's first data frames and lose them.
	br := oneByteReader{conn}
	if err := expectMagic(br); err != nil {
		return err
	}
	got, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("handshake read: %w", err)
	}
	if int(got) != peerRank {
		return fmt.Errorf("handshake: dialed rank %d but %d answered — inconsistent address lists", peerRank, got)
	}
	return nil
}

// acceptHandshake validates the dialer's introduction and echoes ours.
// Returns the dialer's rank.
func acceptHandshake(conn net.Conn, myRank, p int, deadline time.Time) (int, error) {
	_ = conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	// Exact-size reads only: the dialer's data frames may already be in
	// flight right behind its introduction.
	br := oneByteReader{conn}
	if err := expectMagic(br); err != nil {
		return 0, err
	}
	peerRank, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("handshake read: %w", err)
	}
	peerP, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("handshake read: %w", err)
	}
	if int(peerP) != p {
		return 0, fmt.Errorf("handshake: peer believes the cluster has %d ranks, this process %d", peerP, p)
	}
	if int(peerRank) <= myRank || int(peerRank) >= p {
		return 0, fmt.Errorf("handshake: unexpected dialer rank %d (acceptor rank %d, p=%d)", peerRank, myRank, p)
	}
	buf := append([]byte(handshakeMagic), protoVersion)
	buf = binary.AppendUvarint(buf, uint64(myRank))
	if _, err := conn.Write(buf); err != nil {
		return 0, fmt.Errorf("handshake reply: %w", err)
	}
	return int(peerRank), nil
}

// oneByteReader reads from a connection without buffering ahead, so a
// handshake consumes exactly its own bytes and nothing of the frames
// that may follow.
type oneByteReader struct {
	r io.Reader
}

func (o oneByteReader) Read(p []byte) (int, error) { return o.r.Read(p) }

func (o oneByteReader) ReadByte() (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(o.r, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

func expectMagic(br oneByteReader) error {
	var hdr [len(handshakeMagic) + 1]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("handshake read: %w", err)
	}
	if string(hdr[:len(handshakeMagic)]) != handshakeMagic {
		return fmt.Errorf("handshake: bad magic %q — not a pmsort peer", hdr[:len(handshakeMagic)])
	}
	if hdr[len(handshakeMagic)] != protoVersion {
		return fmt.Errorf("handshake: protocol version %d, want %d", hdr[len(handshakeMagic)], protoVersion)
	}
	return nil
}

// Rank returns this process's global rank.
func (m *Machine) Rank() int { return m.rank }

// P returns the number of ranks in the cluster.
func (m *Machine) P() int { return m.p }

// Run executes fn as this rank's PE program, handing it the world
// communicator, and returns the wall-clock time fn took on this rank.
// All ranks must call Run collectively with the same program. A
// transport failure or algorithm panic is returned as an error.
// Run executes fn as this rank's PE program, handing it the world
// communicator. The returned duration and the Stats clock share one
// zero: the cluster-synchronized start, taken after an entry barrier —
// the time this process spent waiting for its peers to enter Run is
// excluded (it measures launch skew, not the program).
func (m *Machine) Run(fn func(c comm.Communicator)) (d time.Duration, err error) {
	start := time.Now()
	defer func() {
		d = time.Since(start)
		if r := recover(); r != nil {
			// A *TransportError (a peer died or hung up mid-collective)
			// surfaces as a typed, unwrappable error — the caller can
			// errors.As it and keep the process alive; everything else is
			// an algorithm panic and is reported verbatim.
			if te, ok := r.(*TransportError); ok {
				err = fmt.Errorf("netcomm: rank %d: %w", m.rank, te)
				return
			}
			err = fmt.Errorf("netcomm: rank %d: %v", m.rank, r)
		}
	}()
	world := &Comm{m: m, ranks: m.world, me: m.rank}
	// Align the wall-clock epochs across ranks before setting this
	// rank's: each process entered Run at its own time, and without a
	// common zero the maxima that TimedBarrier takes over per-rank
	// clocks would fold the inter-rank startup skew into the first
	// phase's statistics (the native backend shares one epoch across
	// its goroutine-PEs; this barrier is the distributed equivalent).
	epochBarrier(world)
	start = time.Now()
	m.epoch = start
	if m.rec != nil {
		// Label the PE goroutine for CPU profiles (obs-enabled runs only).
		pprof.Do(context.Background(), pprof.Labels("pmsort_rank", strconv.Itoa(m.rank)), func(context.Context) {
			fn(world)
		})
		return d, nil
	}
	fn(world)
	return d, nil
}

// Recorder returns this rank's obs recorder (nil unless Options.Obs).
func (m *Machine) Recorder() *obs.Recorder { return m.rec }

// tagEpoch is reserved for Run's epoch-alignment barrier. Tag reuse by
// the algorithms is harmless — (sender, tag) FIFO keeps streams apart —
// but the value sits outside every tag block the packages use.
const tagEpoch = 0x6b0001

// epochBarrier is a dissemination barrier over the world communicator.
func epochBarrier(c *Comm) {
	p, r := c.Size(), c.Rank()
	for d := 1; d < p; d <<= 1 {
		c.Send((r+d)%p, tagEpoch, nil, 1)
		c.Recv((r-d+p)%p, tagEpoch)
	}
}

// tagHeartbeat is reserved for the transport's own liveness pings.
// Heartbeat frames are intercepted in the read loop and never reach the
// mailbox, so the tag can never collide with a receive; like tagEpoch
// it lives in this package's 0x6b block.
const tagHeartbeat = 0x6b0002

// heartbeat is the liveness ping/pong payload. SendNS is the pinger's
// monotonic send time, echoed verbatim in the pong so the pinger can
// compute the round-trip on its own clock. Wire-registered.
type heartbeat struct {
	SendNS int64
	Pong   bool
}

// heartbeatLoop pings every peer at the configured cadence and, when a
// stall window is set, compares each peer's last pong age against it:
// a peer past the window is declared stalled (receives from it fail
// typed but recoverably), and a peer whose pongs resume is healed.
func (m *Machine) heartbeatLoop() {
	defer close(m.hbDone)
	t := time.NewTicker(m.hbInterval)
	defer t.Stop()
	window := m.stallWindow.Nanoseconds()
	for {
		select {
		case <-m.hbStop:
			return
		case <-t.C:
		}
		now := m.mono()
		for _, pr := range m.peers {
			if pr == nil {
				continue
			}
			m.tryEnqueue(pr, tagHeartbeat, heartbeat{SendNS: now}, 1)
			if window <= 0 {
				continue
			}
			if now-pr.lastPongNS.Load() > window {
				if !pr.stalledMark {
					pr.stalledMark = true
					m.mbox.stall(pr.rank, fmt.Errorf("netcomm: rank %d unresponsive: no heartbeat pong for over %v (connection still open)", pr.rank, m.stallWindow))
				}
			} else if pr.stalledMark {
				pr.stalledMark = false
				m.mbox.unstall(pr.rank)
			}
		}
	}
}

// stopHeartbeat ends the liveness loop (idempotent).
func (m *Machine) stopHeartbeat() {
	m.hbOnce.Do(func() { close(m.hbStop) })
}

// PeerHealth is one peer's liveness snapshot.
type PeerHealth struct {
	RTTNS       int64 // latest heartbeat round-trip (0 until the first pong)
	SincePongNS int64 // age of the last pong (-1 when heartbeats are off)
	Rank        int
	Stalled     bool // currently past the stall window
}

// MeshHealth is this endpoint's view of the cluster: the sticky fatal
// transport error, if any, plus per-peer heartbeat state. The service
// layer polls it to drive its degraded-state machine and /metrics.
type MeshHealth struct {
	Failed error // non-nil once the mailbox is fatally poisoned
	Peers  []PeerHealth
}

// Healthy reports whether the mesh is fully usable from this endpoint:
// no fatal failure and no peer currently stalled.
func (h MeshHealth) Healthy() bool {
	if h.Failed != nil {
		return false
	}
	for _, ph := range h.Peers {
		if ph.Stalled {
			return false
		}
	}
	return true
}

// Health snapshots this endpoint's liveness state.
func (m *Machine) Health() MeshHealth {
	var h MeshHealth
	if te := m.mbox.fatal(); te != nil {
		h.Failed = te
	}
	stalled := make(map[int]bool)
	for _, r := range m.mbox.stalledPeers() {
		stalled[r] = true
	}
	now := m.mono()
	h.Peers = make([]PeerHealth, 0, m.p-1)
	for _, pr := range m.peers {
		if pr == nil {
			continue
		}
		ph := PeerHealth{Rank: pr.rank, RTTNS: pr.rttNS.Load(), SincePongNS: -1, Stalled: stalled[pr.rank]}
		if m.hbInterval > 0 {
			ph.SincePongNS = now - pr.lastPongNS.Load()
		}
		h.Peers = append(h.Peers, ph)
	}
	return h
}

// RetireTags retires the tag namespaces covering [lo, hi): queued and
// future messages there are dropped and receives fail typed (see
// mailbox.retire). The service layer calls it with an aborted job's tag
// block so the job's goroutines unwind and its late traffic is
// reclaimed instead of leaking in the mailbox forever.
func (m *Machine) RetireTags(lo, hi int) { m.mbox.retire(lo, hi) }

// enqueue hands an outbound message to the destination peer's writer.
func (m *Machine) enqueue(to, tag int, payload any, words int64) {
	pr := m.peers[to]
	if pr == nil {
		panic(fmt.Sprintf("netcomm: send from rank %d to invalid rank %d (p=%d)", m.rank, to, m.p))
	}
	pr.mu.Lock()
	if pr.closed {
		pr.mu.Unlock()
		panic(fmt.Sprintf("netcomm: send to rank %d after Close", to))
	}
	pr.queue = append(pr.queue, outMsg{tag: tag, payload: payload, words: words})
	pr.mu.Unlock()
	select {
	case pr.wake <- struct{}{}:
	default:
	}
}

// tryEnqueue is enqueue for transport-internal traffic (heartbeats): it
// silently drops the message when the peer is already closed instead of
// panicking — a ping racing Close is not an application bug.
func (m *Machine) tryEnqueue(pr *peer, tag int, payload any, words int64) {
	pr.mu.Lock()
	if pr.closed {
		pr.mu.Unlock()
		return
	}
	pr.queue = append(pr.queue, outMsg{tag: tag, payload: payload, words: words})
	pr.mu.Unlock()
	select {
	case pr.wake <- struct{}{}:
	default:
	}
}

// writeLoop serializes and streams the peer's outbound queue. One frame
// per message: u32 LE frame length, a flags byte, then uvarint tag,
// uvarint words, then the wire-encoded payload. Bulk element blocks are
// NOT copied into the frame: the wire codec returns them as views of
// the payload (wire.AppendPayloadVec) and the writer sends header
// segments and payload views together with one vectored write
// (net.Buffers → writev), bypassing the buffered writer. Small control
// frames keep batching through bufio, which is flushed whenever the
// queue momentarily drains, so they coalesce under load but never
// linger. Deferred reads of the payload are sound for the same reason
// deferred encoding always was: the sorters only recycle sent buffers
// after a barrier, and a barrier cannot complete before every receiver
// has consumed the bulk data (DESIGN.md §10).
func (m *Machine) writeLoop(pr *peer) {
	defer close(pr.done)
	if m.rec != nil {
		// Label the IO goroutine for CPU profiles (obs-enabled runs only).
		pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
			pprof.Labels("pmsort_io", "write", "pmsort_peer", strconv.Itoa(pr.rank))))
	}
	bw := bufio.NewWriterSize(pr.conn, 1<<16)
	w := wire.NewWriter()
	aligned := wire.HostLittleEndian()
	var flags byte
	if aligned {
		flags = frameFlagAligned
	}
	vopt := wire.VecOptions{Aligned: aligned, AlignBase: 4, MinSpan: vecMinSpan}
	var frame []byte
	for {
		pr.mu.Lock()
		batch := pr.queue
		pr.queue = nil
		closed := pr.closed
		pr.mu.Unlock()

		for i := range batch {
			msg := &batch[i]
			frame = frame[:0]
			frame = append(frame, 0, 0, 0, 0, flags) // length prefix placeholder + flags
			frame = binary.AppendUvarint(frame, uint64(msg.tag))
			frame = binary.AppendUvarint(frame, uint64(msg.words))
			segs, err := w.AppendPayloadVec(frame, msg.payload, vopt)
			if err != nil {
				m.fail(pr.rank, KindUnknown, fmt.Errorf("encoding message for rank %d (tag %#x): %w", pr.rank, msg.tag, err))
				return
			}
			total := -4
			for _, s := range segs {
				total += len(s)
			}
			if total > maxFrame {
				m.fail(pr.rank, KindUnknown, fmt.Errorf("message for rank %d exceeds the %d-byte frame limit", pr.rank, maxFrame))
				return
			}
			binary.LittleEndian.PutUint32(segs[0], uint32(total))
			// The first segment is our reusable frame arena — hold on to
			// it before the write: net.Buffers.WriteTo consumes the
			// segment list in place (entries are nilled as they drain).
			first := segs[0]
			if len(segs) == 1 && total+4 < directFrameMin {
				m.armWriteDeadline(pr)
				if _, err := bw.Write(first); err != nil {
					m.failWrite(pr, err)
					return
				}
				m.met.bufWrites.Add(1)
			} else {
				// Large or multi-segment frame: flush the batched small
				// messages, then hand all segments — frame headers and
				// payload views alike — to one vectored write.
				m.armWriteDeadline(pr)
				if err := bw.Flush(); err != nil {
					m.failWrite(pr, err)
					return
				}
				bufs := net.Buffers(segs)
				if _, err := bufs.WriteTo(pr.conn); err != nil {
					m.failWrite(pr, err)
					return
				}
				m.met.writevCalls.Add(1)
				m.met.writevBytes.Add(int64(total) + 4)
			}
			m.met.framesOut.Add(1)
			// The kernel copied the frame arena during the write; reuse
			// it. Payload view segments belong to the (immutable,
			// post-Send) payload and are dropped.
			frame = first[:0]
			batch[i] = outMsg{} // release the payload before the next batch
		}

		if len(batch) == 0 {
			m.armWriteDeadline(pr)
			if err := bw.Flush(); err != nil {
				m.failWrite(pr, err)
				return
			}
			if closed {
				// Graceful half-close: the peer's reader sees EOF after
				// the last byte; our reader keeps draining until theirs.
				_ = pr.conn.CloseWrite()
				return
			}
			<-pr.wake
		}
	}
}

// readLoop decodes the peer's inbound frames into the mailbox.
//
// Buffer discipline (the receive half of the zero-copy path): each
// frame's body is read into a scratch buffer, and aligned bulk blocks
// are decoded as sub-slices of that buffer — one allocation per bulk
// frame, every chunk aliasing it, no per-chunk copy. Receivers own
// decoded data indefinitely, so whenever a decode aliased the buffer,
// ownership moves to the mailbox with the payload and the loop switches
// to a fresh buffer for the next frame (the double-buffer handoff that
// makes aliasing sound). Frames that decode without aliasing (control
// messages, non-bulk payloads, big-endian peers) keep reusing the
// scratch buffer, with copies carved from the reader's bump arena.
func (m *Machine) readLoop(pr *peer) {
	defer close(pr.rdone)
	if m.rec != nil {
		pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
			pprof.Labels("pmsort_io", "read", "pmsort_peer", strconv.Itoa(pr.rank))))
	}
	br := bufio.NewReaderSize(pr.conn, 1<<16)
	r := wire.NewReader()
	var body []byte
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			if err == io.EOF {
				m.mbox.hangup(pr.rank)
				return
			}
			m.fail(pr.rank, KindReset, fmt.Errorf("reading from rank %d: %w", pr.rank, err))
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if int64(n) > int64(maxFrame) {
			m.fail(pr.rank, KindUnknown, fmt.Errorf("frame from rank %d exceeds the %d-byte limit", pr.rank, maxFrame))
			return
		}
		if n < 1 {
			m.fail(pr.rank, KindUnknown, fmt.Errorf("corrupt frame from rank %d: empty frame", pr.rank))
			return
		}
		if uint32(cap(body)) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			m.fail(pr.rank, KindReset, fmt.Errorf("reading from rank %d: %w", pr.rank, err))
			return
		}
		aligned := body[0]&frameFlagAligned != 0
		rest := body[1:]
		tag, k := binary.Uvarint(rest)
		if k <= 0 {
			m.fail(pr.rank, KindUnknown, fmt.Errorf("corrupt frame from rank %d: tag", pr.rank))
			return
		}
		rest = rest[k:]
		words, k := binary.Uvarint(rest)
		if k <= 0 {
			m.fail(pr.rank, KindUnknown, fmt.Errorf("corrupt frame from rank %d: words", pr.rank))
			return
		}
		rest = rest[k:]
		if !aligned {
			// Copy-mode frame (big-endian peer): pre-size the bump arena
			// from the frame length so all its bulk decodes carve from
			// one allocation.
			r.Grow(len(rest))
		}
		payload, rest, aliased, err := r.DecodePayloadOpt(rest, wire.DecodeOptions{Aligned: aligned, Alias: aligned})
		if err != nil {
			m.fail(pr.rank, KindUnknown, fmt.Errorf("decoding message from rank %d (tag %#x): %w", pr.rank, tag, err))
			return
		}
		if len(rest) != 0 {
			m.fail(pr.rank, KindUnknown, fmt.Errorf("frame from rank %d has %d trailing bytes (tag %#x)", pr.rank, len(rest), tag))
			return
		}
		m.met.framesIn.Add(1)
		if int(tag) == tagHeartbeat {
			// Liveness traffic never reaches the mailbox: answer pings
			// from the reader (so a busy PE program cannot delay them)
			// and fold pongs into the peer's health state.
			if hb, ok := payload.(heartbeat); ok {
				if hb.Pong {
					now := m.mono()
					pr.rttNS.Store(now - hb.SendNS)
					pr.lastPongNS.Store(now)
				} else {
					m.tryEnqueue(pr, tagHeartbeat, heartbeat{SendNS: hb.SendNS, Pong: true}, 1)
				}
			}
			if aliased {
				body = nil
			}
			continue
		}
		m.mbox.put(pr.rank, int(tag), envelope{payload: payload, words: int64(words)})
		if aliased {
			body = nil // handed off with the payload; next frame gets a fresh buffer
		}
	}
}

// fail records a fatal transport error attributed to the given peer and
// wakes every blocked receiver.
func (m *Machine) fail(peer int, kind ErrKind, err error) {
	m.mbox.fail(peer, kind, err)
}

// armWriteDeadline bounds the next write call on the peer's connection
// by the stall window (no-op when liveness is off).
func (m *Machine) armWriteDeadline(pr *peer) {
	if m.stallWindow > 0 {
		_ = pr.conn.SetWriteDeadline(time.Now().Add(m.stallWindow))
	}
}

// failWrite classifies a data-path write failure: a deadline expiry is
// a stall (the peer stopped draining its socket), anything else a
// reset. Either way the mesh is fatally poisoned — unlike a
// heartbeat-detected stall, a torn write cannot be resumed.
func (m *Machine) failWrite(pr *peer, err error) {
	kind := KindReset
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		kind = KindStalled
		err = fmt.Errorf("write made no progress for %v (peer not draining): %w", m.stallWindow, err)
	}
	m.fail(pr.rank, kind, fmt.Errorf("writing to rank %d: %w", pr.rank, err))
}

// Abort tears this rank's endpoint down abruptly: every connection is
// closed with linger 0 (RST where the stack supports it), nothing is
// flushed, and no hangup handshake happens — the closest in-process
// stand-in for this rank's process dying. Peers observe a transport
// failure (*TransportError) on their next receive, not a graceful
// hangup, and this rank's own blocked receives fail the same way. A
// failure-injection hook for tests of the layers above; a subsequent
// Close is a no-op.
func (m *Machine) Abort() {
	m.stopHeartbeat()
	m.closing.Do(func() {
		err := fmt.Errorf("netcomm: rank %d aborted", m.rank)
		// Poison the mailbox before touching the sockets: fail is
		// first-error-wins, and closing the connections makes our own
		// read/write loops race in with KindReset — the rank that
		// aborted itself must deterministically see KindAborted.
		m.mbox.fail(m.rank, KindAborted, err)
		for _, pr := range m.peers {
			if pr == nil {
				continue
			}
			pr.mu.Lock()
			pr.closed = true
			pr.mu.Unlock()
			select {
			case pr.wake <- struct{}{}:
			default:
			}
			_ = pr.conn.SetLinger(0)
			_ = pr.conn.Close()
		}
		// Join the IO loops: the closed connections error them out
		// promptly, and waiting here means an aborted endpoint leaves no
		// goroutines behind (and no unsynchronized reads racing whatever
		// the caller does next). Bounded like Close's drain.
		deadline := time.Now().Add(10 * time.Second)
		for _, pr := range m.peers {
			if pr == nil {
				continue
			}
			waitUntil(pr.done, deadline)
			waitUntil(pr.rdone, deadline)
		}
		m.closeErr = err
	})
}

// Close flushes and half-closes every outbound stream, waits for the
// peers to do the same (draining whatever is still in flight), and
// tears the connections down. Call it once, after the last Run.
func (m *Machine) Close() error {
	m.stopHeartbeat()
	<-m.hbDone
	m.closing.Do(func() {
		for _, pr := range m.peers {
			if pr == nil {
				continue
			}
			pr.mu.Lock()
			pr.closed = true
			pr.mu.Unlock()
			select {
			case pr.wake <- struct{}{}:
			default:
			}
		}
		// Bound the drain: a peer that never closes (crashed mid-run)
		// must not wedge shutdown.
		deadline := time.Now().Add(10 * time.Second)
		for _, pr := range m.peers {
			if pr == nil {
				continue
			}
			if !waitUntil(pr.done, deadline) && m.closeErr == nil {
				m.closeErr = fmt.Errorf("netcomm: close timed out flushing to rank %d", pr.rank)
			}
			if !waitUntil(pr.rdone, deadline) && m.closeErr == nil {
				m.closeErr = fmt.Errorf("netcomm: close timed out draining from rank %d", pr.rank)
			}
			pr.conn.Close()
		}
	})
	return m.closeErr
}

// waitUntil waits for ch to close, no later than deadline.
func waitUntil(ch chan struct{}, deadline time.Time) bool {
	d := time.Until(deadline)
	if d <= 0 {
		select {
		case <-ch:
			return true
		default:
			return false
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return false
	}
}
