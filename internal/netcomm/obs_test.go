package netcomm

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"pmsort/internal/comm"
	"pmsort/internal/core"
	"pmsort/internal/obs"
	"pmsort/internal/workload"
)

// TestTCPObsLoopbackMerge is the acceptance test of the trace gather: a
// 4-rank loopback cluster with tracing on sorts, gathers the per-rank
// snapshots at rank 0 with clock alignment, and the merged trace must
// validate — every rank present exactly once, every rank carrying its
// own sort spans and transport counters — and export parseable Chrome
// trace JSON.
func TestTCPObsLoopbackMerge(t *testing.T) {
	const p, perPE = 4, 2000
	addrs := reserveAddrs(t, p)
	var trace *obs.Trace
	var wg sync.WaitGroup
	errs := make([]error, p)
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m, err := New(rank, addrs, Options{Obs: true, RendezvousTimeout: 20 * time.Second})
			if err != nil {
				errs[rank] = err
				return
			}
			defer m.Close()
			_, errs[rank] = m.Run(func(c comm.Communicator) {
				data := workload.Local(workload.Uniform, 7, p, perPE, rank)
				core.AMSSort(c, data, func(a, b uint64) bool { return a < b },
					core.Config{Levels: 1, Seed: 7, Key: func(x uint64) uint64 { return x }})
				if tr := obs.Gather(c, m.Recorder()); tr != nil {
					trace = tr
				}
			})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if trace == nil {
		t.Fatal("rank 0 did not receive the merged trace")
	}
	if err := trace.Validate(); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}

	seen := map[int32]int{}
	for _, snap := range trace.Snaps {
		seen[snap.Rank]++
		sorts := 0
		framesOut := int64(-1)
		for _, sp := range snap.Spans {
			if sp.Name == obs.SpanAMS {
				sorts++
			}
		}
		for _, c := range snap.Counters {
			if c.Name == obs.CtrNetFramesOut {
				framesOut = c.Value
			}
		}
		if sorts != 1 {
			t.Errorf("rank %d: %d %q spans, want exactly 1", snap.Rank, sorts, obs.SpanAMS)
		}
		if framesOut <= 0 {
			t.Errorf("rank %d: missing transport frame counter (%d)", snap.Rank, framesOut)
		}
	}
	if len(seen) != p {
		t.Fatalf("merged trace covers %d ranks, want %d", len(seen), p)
	}
	for rank := int32(0); rank < p; rank++ {
		if seen[rank] != 1 {
			t.Errorf("rank %d appears %d times in the merged trace", rank, seen[rank])
		}
	}

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("Chrome trace JSON has no events")
	}
}
