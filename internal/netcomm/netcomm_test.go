package netcomm

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"pmsort/internal/coll"
	"pmsort/internal/comm"
	"pmsort/internal/core"
	"pmsort/internal/native"
	"pmsort/internal/workload"
)

// reserveAddrs picks p free loopback addresses by binding ephemeral
// listeners and releasing them; bindRetry absorbs the small race.
func reserveAddrs(t testing.TB, p int) []string {
	t.Helper()
	addrs := make([]string, p)
	lns := make([]net.Listener, p)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// cluster brings up a p-rank loopback cluster inside this process (one
// Machine per rank, real TCP in between) and runs fn on each rank.
func cluster(t *testing.T, p int, fn func(m *Machine, rank int)) {
	t.Helper()
	addrs := reserveAddrs(t, p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m, err := New(rank, addrs, Options{RendezvousTimeout: 20 * time.Second})
			if err != nil {
				errs[rank] = err
				return
			}
			defer m.Close()
			fn(m, rank)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestTCPPointToPoint(t *testing.T) {
	const p = 4
	cluster(t, p, func(m *Machine, rank int) {
		_, err := m.Run(func(c comm.Communicator) {
			if c.Size() != p || c.Rank() != rank {
				t.Errorf("rank %d: world is Size=%d Rank=%d", rank, c.Size(), c.Rank())
			}
			// Everyone sends a vector and a scalar to everyone,
			// including themselves; FIFO per (sender, tag) must hold.
			for to := 0; to < p; to++ {
				c.Send(to, 1, []uint64{uint64(rank), uint64(to)}, 2)
				c.Send(to, 1, []int64{int64(rank * to)}, 1)
				c.Send(to, 2, nil, 1)
			}
			for from := 0; from < p; from++ {
				pl, w := c.Recv(from, 1)
				if got := pl.([]uint64); got[0] != uint64(from) || got[1] != uint64(rank) || w != 2 {
					t.Errorf("rank %d: first msg from %d = %v (w=%d)", rank, from, got, w)
				}
				pl, _ = c.Recv(from, 1)
				if got := pl.([]int64); got[0] != int64(from*rank) {
					t.Errorf("rank %d: second msg from %d = %v", rank, from, got)
				}
				if pl, _ = c.Recv(from, 2); pl != nil {
					t.Errorf("rank %d: nil payload arrived as %v", rank, pl)
				}
			}
		})
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
		if n := m.mbox.pending(); n != 0 {
			t.Errorf("rank %d: %d messages left in the mailbox", rank, n)
		}
	})
}

func TestTCPCollectives(t *testing.T) {
	const p = 5 // odd: exercises the non-power-of-two paths
	cluster(t, p, func(m *Machine, rank int) {
		_, err := m.Run(func(c comm.Communicator) {
			sum := coll.Allreduce(c, int64(rank+1), 1, func(a, b int64) int64 { return a + b })
			if want := int64(p * (p + 1) / 2); sum != want {
				t.Errorf("rank %d: allreduce = %d, want %d", rank, sum, want)
			}
			all := coll.Allgatherv(c, []uint64{uint64(rank)})
			for i, s := range all {
				if len(s) != 1 || s[0] != uint64(i) {
					t.Errorf("rank %d: allgatherv[%d] = %v", rank, i, s)
				}
			}
			got := coll.AlltoallI64(c, func() []int64 {
				v := make([]int64, p)
				for i := range v {
					v[i] = int64(rank*100 + i)
				}
				return v
			}())
			for i, x := range got {
				if x != int64(i*100+rank) {
					t.Errorf("rank %d: alltoall[%d] = %d", rank, i, x)
				}
			}
		})
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	})
}

// TestTCPSortMatchesNative is the in-process conformance core: the same
// seeded input sorted on a real TCP loopback cluster and on the native
// backend must be byte-identical. (The multi-process version lives in
// the root package's TCP conformance test.)
func TestTCPSortMatchesNative(t *testing.T) {
	const p, perPE = 4, 400
	cfg := core.Config{Levels: 2, Seed: 11, TieBreak: true}
	less := func(a, b uint64) bool { return a < b }

	locals := make([][]uint64, p)
	for rank := range locals {
		locals[rank] = workload.Local(workload.DupHeavy, 7, p, perPE, rank)
	}

	natOuts := make([][]uint64, p)
	native.New(p).Run(func(c comm.Communicator) {
		out, _ := core.AMSSort(c, append([]uint64(nil), locals[c.Rank()]...), less, cfg)
		natOuts[c.Rank()] = out
	})

	tcpOuts := make([][]uint64, p)
	cluster(t, p, func(m *Machine, rank int) {
		_, err := m.Run(func(c comm.Communicator) {
			out, st := core.AMSSort(c, append([]uint64(nil), locals[rank]...), less, cfg)
			tcpOuts[rank] = out
			if st.TotalNS < 0 {
				t.Errorf("rank %d: negative wall-clock total %d", rank, st.TotalNS)
			}
		})
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	})

	for rank := 0; rank < p; rank++ {
		if !reflect.DeepEqual(tcpOuts[rank], natOuts[rank]) {
			t.Fatalf("rank %d: TCP output differs from native (%d vs %d elements)",
				rank, len(tcpOuts[rank]), len(natOuts[rank]))
		}
	}
}

func TestTCPSingleRank(t *testing.T) {
	m, err := New(0, []string{"127.0.0.1:0"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, err = m.Run(func(c comm.Communicator) {
		c.Send(0, 1, []uint64{42}, 1)
		pl, _ := c.Recv(0, 1)
		if got := pl.([]uint64); got[0] != 42 {
			t.Errorf("self-send: %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPRunRecoversFailure(t *testing.T) {
	const p = 2
	cluster(t, p, func(m *Machine, rank int) {
		_, err := m.Run(func(c comm.Communicator) {
			if rank == 0 {
				// Waiting for a message rank 1 never sends must end in
				// a diagnosable error once rank 1 hangs up, not a hang.
				c.Recv(1, 99)
			}
		})
		if rank == 0 && err == nil {
			t.Error("rank 0: expected an error when the peer hangs up mid-recv")
		}
		if rank == 1 && err != nil {
			t.Errorf("rank 1: %v", err)
		}
	})
}

func TestTCPRendezvousValidation(t *testing.T) {
	if _, err := New(3, []string{"a", "b"}, Options{}); err == nil {
		t.Error("out-of-range rank must fail")
	}
	if _, err := New(0, nil, Options{}); err == nil {
		t.Error("empty address list must fail")
	}
}

func TestTCPHandshakeRejectsStrangers(t *testing.T) {
	// A stranger connecting to a rank's listener during rendezvous (port
	// scanner, health check) must be rejected WITHOUT aborting the mesh:
	// the garbage connection is dropped, the real peer still joins, and
	// the cluster works.
	addrs := reserveAddrs(t, 2)
	rank0 := make(chan error, 1)
	go func() {
		m, err := New(0, addrs, Options{RendezvousTimeout: 20 * time.Second})
		if err != nil {
			rank0 <- err
			return
		}
		defer m.Close()
		_, err = m.Run(func(c comm.Communicator) {
			pl, _ := c.Recv(1, 7)
			if pl.(uint64) != 42 {
				err = fmt.Errorf("got %v", pl)
			}
		})
		rank0 <- err
	}()

	// The stranger speaks HTTP at rank 0 before rank 1 dials.
	var conn net.Conn
	var err error
	for i := 0; i < 200; i++ {
		conn, err = net.Dial("tcp", addrs[0])
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\n\r\n")
	conn.Close()

	m1, err := New(1, addrs, Options{RendezvousTimeout: 20 * time.Second})
	if err != nil {
		t.Fatalf("rank 1 rendezvous failed despite the stranger being dropped: %v", err)
	}
	defer m1.Close()
	if _, err := m1.Run(func(c comm.Communicator) {
		c.Send(0, 7, uint64(42), 1)
	}); err != nil {
		t.Fatalf("rank 1: %v", err)
	}
	if err := <-rank0; err != nil {
		t.Fatalf("rank 0: %v", err)
	}
}

// pairElem is a custom element type whose wire format comes from a
// Config.Encoder hook rather than the structural codec.
type pairElem struct {
	k   uint64
	tie int32
}

type pairEncoder struct{}

func (pairEncoder) Append(dst []byte, elem any) []byte {
	p := elem.(pairElem)
	dst = append(dst, byte(p.k>>56), byte(p.k>>48), byte(p.k>>40), byte(p.k>>32),
		byte(p.k>>24), byte(p.k>>16), byte(p.k>>8), byte(p.k))
	return append(dst, byte(p.tie>>24), byte(p.tie>>16), byte(p.tie>>8), byte(p.tie))
}

func (pairEncoder) Decode(src []byte) (any, []byte, error) {
	if len(src) < 12 {
		return nil, nil, fmt.Errorf("pairEncoder: short input")
	}
	var p pairElem
	for i := 0; i < 8; i++ {
		p.k = p.k<<8 | uint64(src[i])
	}
	for i := 8; i < 12; i++ {
		p.tie = p.tie<<8 | int32(src[i])
	}
	return p, src[12:], nil
}

// TestTCPCustomElementEncoder sorts a custom element type end-to-end
// over real TCP with the Config.Encoder hook supplying the element
// codec, and checks the result against the native backend.
func TestTCPCustomElementEncoder(t *testing.T) {
	const p, perPE = 3, 150
	cfg := core.Config{Levels: 1, Seed: 3, Encoder: pairEncoder{}}
	less := func(a, b pairElem) bool {
		if a.k != b.k {
			return a.k < b.k
		}
		return a.tie < b.tie
	}
	locals := make([][]pairElem, p)
	for rank := range locals {
		keys := workload.Local(workload.DupHeavy, 5, p, perPE, rank)
		locals[rank] = make([]pairElem, perPE)
		for i, k := range keys {
			locals[rank][i] = pairElem{k: k, tie: int32(rank*perPE + i)}
		}
	}

	natOuts := make([][]pairElem, p)
	native.New(p).Run(func(c comm.Communicator) {
		out, _ := core.AMSSort(c, append([]pairElem(nil), locals[c.Rank()]...), less, cfg)
		natOuts[c.Rank()] = out
	})

	tcpOuts := make([][]pairElem, p)
	cluster(t, p, func(m *Machine, rank int) {
		_, err := m.Run(func(c comm.Communicator) {
			out, _ := core.AMSSort(c, append([]pairElem(nil), locals[rank]...), less, cfg)
			tcpOuts[rank] = out
		})
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	})

	for rank := 0; rank < p; rank++ {
		if !reflect.DeepEqual(tcpOuts[rank], natOuts[rank]) {
			t.Fatalf("rank %d: custom-element TCP output differs from native (%d vs %d elements)",
				rank, len(tcpOuts[rank]), len(natOuts[rank]))
		}
	}
}
