package netcomm

import (
	"fmt"
	"sync"
	"time"

	"pmsort/internal/obs"
)

// ErrKind classifies a TransportError so the layers above can react
// differently to recoverable and fatal failures: the service layer
// retries jobs that died on a stalled-but-alive mesh, while a reset or
// an abort degrades it for good.
type ErrKind int

const (
	// KindUnknown covers failures that are not network conditions:
	// encoding bugs, corrupt frames, protocol violations.
	KindUnknown ErrKind = iota
	// KindReset is a broken connection: an I/O error on the stream
	// (ECONNRESET, EPIPE, unexpected close mid-frame).
	KindReset
	// KindHangup is the clean failure: the peer half-closed its stream
	// (EOF) while a message from it was still awaited.
	KindHangup
	// KindStalled is the liveness failure: the connection is open but
	// the peer stopped making progress — no heartbeat pong within the
	// stall window, or a write that could not complete within it. A
	// pong-detected stall is recoverable: if the peer resumes, receives
	// work again.
	KindStalled
	// KindAborted marks this rank's own Machine.Abort tearing the
	// endpoint down.
	KindAborted
	// KindRetired means the receive hit a tag namespace that was
	// retired (the job owning it was aborted mesh-wide); the message
	// will never be delivered.
	KindRetired
)

// String names the kind for logs, metrics, and HTTP error reports.
func (k ErrKind) String() string {
	switch k {
	case KindReset:
		return "reset"
	case KindHangup:
		return "hangup"
	case KindStalled:
		return "stalled"
	case KindAborted:
		return "aborted"
	case KindRetired:
		return "retired"
	default:
		return "unknown"
	}
}

// TransportError is the failure a receive surfaces when the TCP mesh
// breaks underneath it: a peer process died (connection reset, decode
// failure), hung up with a message still awaited, stalled past the
// liveness window, or the awaited tag namespace was retired by a
// mesh-wide job abort. The mailbox panics with a *TransportError,
// Machine.Run recovers it into the returned error, and long-lived
// callers that run collectives on their own goroutines (the job runner
// of internal/svc) recover it the same way — a dead peer fails the
// in-flight job, not the process.
type TransportError struct {
	// Err is the underlying failure.
	Err error
	// Peer is the global rank the failure was observed on, or -1 when it
	// cannot be attributed to one peer.
	Peer int
	// Kind classifies the failure (reset, hangup, stalled, …).
	Kind ErrKind
}

func (e *TransportError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// envelope is an in-flight point-to-point message.
type envelope struct {
	payload any
	words   int64
}

// mbKey identifies a (source global rank, tag) message queue.
type mbKey struct {
	from, tag int
}

// nsOf returns the tag namespace index of a tag: the service layer
// gives each job the 1<<24-wide block (epoch+1)<<24, so the index is
// simply the high bits. Namespace 0 holds every un-offset tag (the
// algorithms' own tags, the control and transport tags) and is never
// retired.
func nsOf(tag int) int { return tag >> 24 }

// mailbox is the process's incoming message store, shared by all peer
// reader goroutines. Messages are matched by (source, tag) and are FIFO
// within each such pair — the same matching discipline as the native
// backend's mailbox. Readers never block (eager, unbounded buffering).
//
// Receivers: any number of goroutines may block in take concurrently as
// long as no two of them wait on the same (source, tag) pair at once —
// the service layer's concurrent jobs satisfy this by construction
// (disjoint per-job tag namespaces; within a job, one goroutine per
// rank). Each blocked take parks on its own per-key wake channel, so a
// put wakes exactly the receivers of its key and a thousand concurrent
// jobs do not stampede each other.
//
// Unlike the in-process mailboxes, a take can also end because the
// transport failed, the awaited peer hung up or stalled, or the tag
// namespace was retired: all of these wake the affected receivers and
// make take panic with a *TransportError diagnosis instead of blocking
// forever. A fatal error poisons the whole mailbox and is sticky; a
// stall poisons only receives from the stalled peer and is lifted again
// when its heartbeats resume.
type mailbox struct {
	mu      sync.Mutex
	queues  map[mbKey][]envelope
	err     *TransportError         // fatal transport error, sticky
	stalled map[int]*TransportError // peers past the liveness window, recoverable
	closed  map[int]bool            // peers that reached EOF (graceful hangup)
	retired map[int]bool            // retired tag namespaces (tag >> 24)
	waiters map[mbKey][]chan struct{}

	// Observability hooks (nil when off — the disabled path pays one nil
	// check per put/park): depthMax tracks the high-watermark of
	// undelivered messages, waitNS accumulates blocked-receive wait time.
	depth    int // current undelivered count, guarded by mu
	depthMax *obs.Counter
	waitNS   *obs.Counter
}

func newMailbox() *mailbox {
	return &mailbox{
		queues:  make(map[mbKey][]envelope),
		stalled: make(map[int]*TransportError),
		closed:  make(map[int]bool),
		retired: make(map[int]bool),
		waiters: make(map[mbKey][]chan struct{}),
	}
}

// wakeKeyLocked closes (and drops) the wake channels of one key.
// Callers must hold mb.mu; the close itself is safe under the lock.
func (mb *mailbox) wakeKeyLocked(k mbKey) {
	for _, ch := range mb.waiters[k] {
		close(ch)
	}
	delete(mb.waiters, k)
}

// wakeAllLocked closes every parked receiver's wake channel (transport
// failure, hangups, and stalls must unblock everyone so they can
// re-check).
func (mb *mailbox) wakeAllLocked() {
	for k, ws := range mb.waiters {
		for _, ch := range ws {
			close(ch)
		}
		delete(mb.waiters, k)
	}
}

// put enqueues a message from the given source rank under the given
// tag. Messages addressed to a retired tag namespace are dropped: the
// job that owned the namespace was aborted and nothing will ever
// receive them.
func (mb *mailbox) put(from, tag int, e envelope) {
	k := mbKey{from, tag}
	mb.mu.Lock()
	if mb.retired[nsOf(tag)] {
		mb.mu.Unlock()
		return
	}
	mb.queues[k] = append(mb.queues[k], e)
	var depth int
	if mb.depthMax != nil {
		mb.depth++
		depth = mb.depth
	}
	mb.wakeKeyLocked(k)
	mb.mu.Unlock()
	mb.depthMax.Max(int64(depth))
}

// fail records a fatal transport error attributed to the given peer
// (-1: none); every blocked and future take panics with it. The first
// error wins.
func (mb *mailbox) fail(peer int, kind ErrKind, err error) {
	mb.mu.Lock()
	if mb.err == nil {
		mb.err = &TransportError{Peer: peer, Kind: kind, Err: err}
	}
	mb.wakeAllLocked()
	mb.mu.Unlock()
}

// stall declares the peer unresponsive: takes from it panic with a
// recoverable *TransportError{Kind: KindStalled} until unstall. Takes
// from healthy peers are unaffected.
func (mb *mailbox) stall(peer int, err error) {
	mb.mu.Lock()
	if _, ok := mb.stalled[peer]; !ok {
		mb.stalled[peer] = &TransportError{Peer: peer, Kind: KindStalled, Err: err}
	}
	mb.wakeAllLocked()
	mb.mu.Unlock()
}

// unstall lifts a stall declaration: the peer's heartbeats resumed, so
// receives from it block normally again.
func (mb *mailbox) unstall(peer int) {
	mb.mu.Lock()
	delete(mb.stalled, peer)
	mb.mu.Unlock()
}

// stalledPeers returns the ranks currently declared stalled.
func (mb *mailbox) stalledPeers() []int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if len(mb.stalled) == 0 {
		return nil
	}
	out := make([]int, 0, len(mb.stalled))
	for r := range mb.stalled {
		out = append(out, r)
	}
	return out
}

// fatal returns the sticky fatal transport error, or nil.
func (mb *mailbox) fatal() *TransportError {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.err
}

// retire marks the tag namespace of every tag in [lo, hi) as dead:
// queued messages in it are dropped, future puts into it are dropped,
// and blocked or future takes in it panic with a recoverable
// *TransportError{Kind: KindRetired}. Namespace 0 (the un-offset
// control and algorithm tags) is never retired.
func (mb *mailbox) retire(lo, hi int) {
	if hi <= lo {
		return
	}
	mb.mu.Lock()
	for ns := nsOf(lo); ns <= nsOf(hi-1); ns++ {
		if ns == 0 {
			continue
		}
		mb.retired[ns] = true
	}
	for k, q := range mb.queues {
		if !mb.retired[nsOf(k.tag)] {
			continue
		}
		if mb.depthMax != nil {
			mb.depth -= len(q)
		}
		delete(mb.queues, k)
	}
	for k := range mb.waiters {
		if mb.retired[nsOf(k.tag)] {
			mb.wakeKeyLocked(k)
		}
	}
	mb.mu.Unlock()
}

// take blocks until a message from the given source with the given tag
// is available and dequeues it. Panics with a *TransportError when the
// transport has failed, the awaited peer hung up or stalled with no
// matching message buffered, or the tag's namespace was retired.
func (mb *mailbox) take(from, tag int) envelope {
	k := mbKey{from, tag}
	for {
		mb.mu.Lock()
		if mb.retired[nsOf(tag)] {
			mb.mu.Unlock()
			panic(&TransportError{Peer: -1, Kind: KindRetired,
				Err: fmt.Errorf("recv(from=%d, tag=%#x): tag namespace retired (job aborted)", from, tag)})
		}
		if q := mb.queues[k]; len(q) > 0 {
			e := q[0]
			if len(q) == 1 {
				delete(mb.queues, k)
			} else {
				// Shift instead of re-slicing so the backing array does
				// not pin already-consumed payloads.
				copy(q, q[1:])
				q[len(q)-1] = envelope{}
				mb.queues[k] = q[:len(q)-1]
			}
			if mb.depthMax != nil {
				mb.depth--
			}
			mb.mu.Unlock()
			return e
		}
		err, st, closed := mb.err, mb.stalled[from], mb.closed[from]
		if err != nil || st != nil || closed {
			mb.mu.Unlock()
			if err != nil {
				panic(&TransportError{Peer: err.Peer, Kind: err.Kind,
					Err: fmt.Errorf("recv(from=%d, tag=%#x) after transport failure: %w", from, tag, err.Err)})
			}
			if st != nil {
				panic(&TransportError{Peer: st.Peer, Kind: KindStalled,
					Err: fmt.Errorf("recv(from=%d, tag=%#x): %w", from, tag, st.Err)})
			}
			panic(&TransportError{Peer: from, Kind: KindHangup,
				Err: fmt.Errorf("recv(from=%d, tag=%#x): peer closed the connection with no matching message", from, tag)})
		}
		ch := make(chan struct{})
		mb.waiters[k] = append(mb.waiters[k], ch)
		mb.mu.Unlock()
		if mb.waitNS != nil {
			t0 := time.Now()
			<-ch
			mb.waitNS.Add(time.Since(t0).Nanoseconds())
		} else {
			<-ch
		}
	}
}

// hangup records that the peer's stream ended. Its already-delivered
// messages stay takeable; waiting for a new one panics.
func (mb *mailbox) hangup(from int) {
	mb.mu.Lock()
	mb.closed[from] = true
	mb.wakeAllLocked()
	mb.mu.Unlock()
}

// pending reports the number of undelivered messages (for leak tests).
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := 0
	for _, q := range mb.queues {
		n += len(q)
	}
	return n
}
