package netcomm

import (
	"fmt"
	"sync"
	"time"

	"pmsort/internal/obs"
)

// envelope is an in-flight point-to-point message.
type envelope struct {
	payload any
	words   int64
}

// mbKey identifies a (source global rank, tag) message queue.
type mbKey struct {
	from, tag int
}

// mailbox is the process's incoming message store, shared by all peer
// reader goroutines. Messages are matched by (source, tag) and are FIFO
// within each such pair — the same matching discipline as the native
// backend's mailbox. Readers never block (eager, unbounded buffering);
// the single receiver — the goroutine running this process's PE — parks
// on a capacity-1 wake channel between queue scans.
//
// Unlike the in-process mailboxes, a take can also end because the
// transport failed or because the awaited peer hung up: both conditions
// wake the receiver and make take panic with a diagnosis instead of
// blocking forever.
type mailbox struct {
	mu     sync.Mutex
	queues map[mbKey][]envelope
	err    error        // fatal transport error, sticky
	closed map[int]bool // peers that reached EOF (graceful hangup)
	wake   chan struct{}

	// Observability hooks (nil when off — the disabled path pays one nil
	// check per put/park): depthMax tracks the high-watermark of
	// undelivered messages, waitNS accumulates blocked-receive wait time.
	depth    int // current undelivered count, guarded by mu
	depthMax *obs.Counter
	waitNS   *obs.Counter
}

func newMailbox() *mailbox {
	return &mailbox{
		queues: make(map[mbKey][]envelope),
		closed: make(map[int]bool),
		wake:   make(chan struct{}, 1),
	}
}

func (mb *mailbox) signal() {
	select {
	case mb.wake <- struct{}{}:
	default: // token already pending; the receiver will rescan anyway
	}
}

// put enqueues a message from the given source rank under the given tag.
func (mb *mailbox) put(from, tag int, e envelope) {
	k := mbKey{from, tag}
	mb.mu.Lock()
	mb.queues[k] = append(mb.queues[k], e)
	var depth int
	if mb.depthMax != nil {
		mb.depth++
		depth = mb.depth
	}
	mb.mu.Unlock()
	mb.depthMax.Max(int64(depth))
	mb.signal()
}

// fail records a fatal transport error; every blocked and future take
// panics with it. The first error wins.
func (mb *mailbox) fail(err error) {
	mb.mu.Lock()
	if mb.err == nil {
		mb.err = err
	}
	mb.mu.Unlock()
	mb.signal()
}

// hangup records that the peer's stream ended. Its already-delivered
// messages stay takeable; waiting for a new one panics.
func (mb *mailbox) hangup(from int) {
	mb.mu.Lock()
	mb.closed[from] = true
	mb.mu.Unlock()
	mb.signal()
}

// take blocks until a message from the given source with the given tag
// is available and dequeues it. Must only be called by the goroutine
// running this process's PE. Panics when the transport has failed or
// the awaited peer hung up with no matching message buffered.
func (mb *mailbox) take(from, tag int) envelope {
	k := mbKey{from, tag}
	for {
		mb.mu.Lock()
		if q := mb.queues[k]; len(q) > 0 {
			e := q[0]
			if len(q) == 1 {
				delete(mb.queues, k)
			} else {
				// Shift instead of re-slicing so the backing array does
				// not pin already-consumed payloads.
				copy(q, q[1:])
				q[len(q)-1] = envelope{}
				mb.queues[k] = q[:len(q)-1]
			}
			if mb.depthMax != nil {
				mb.depth--
			}
			mb.mu.Unlock()
			return e
		}
		err, closed := mb.err, mb.closed[from]
		mb.mu.Unlock()
		if err != nil {
			panic(fmt.Sprintf("netcomm: recv(from=%d, tag=%#x) after transport failure: %v", from, tag, err))
		}
		if closed {
			panic(fmt.Sprintf("netcomm: recv(from=%d, tag=%#x): peer closed the connection with no matching message", from, tag))
		}
		if mb.waitNS != nil {
			t0 := time.Now()
			<-mb.wake
			mb.waitNS.Add(time.Since(t0).Nanoseconds())
		} else {
			<-mb.wake
		}
	}
}

// pending reports the number of undelivered messages (for leak tests).
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := 0
	for _, q := range mb.queues {
		n += len(q)
	}
	return n
}
