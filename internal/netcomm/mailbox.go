package netcomm

import (
	"fmt"
	"sync"
	"time"

	"pmsort/internal/obs"
)

// TransportError is the failure a receive surfaces when the TCP mesh
// breaks underneath it: a peer process died (connection reset, decode
// failure) or hung up with a message still awaited. The mailbox panics
// with a *TransportError, Machine.Run recovers it into the returned
// error, and long-lived callers that run collectives on their own
// goroutines (the job runner of internal/svc) recover it the same way —
// a dead peer fails the in-flight job, not the process.
type TransportError struct {
	// Peer is the global rank the failure was observed on, or -1 when it
	// cannot be attributed to one peer.
	Peer int
	// Err is the underlying failure.
	Err error
}

func (e *TransportError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// envelope is an in-flight point-to-point message.
type envelope struct {
	payload any
	words   int64
}

// mbKey identifies a (source global rank, tag) message queue.
type mbKey struct {
	from, tag int
}

// mailbox is the process's incoming message store, shared by all peer
// reader goroutines. Messages are matched by (source, tag) and are FIFO
// within each such pair — the same matching discipline as the native
// backend's mailbox. Readers never block (eager, unbounded buffering).
//
// Receivers: any number of goroutines may block in take concurrently as
// long as no two of them wait on the same (source, tag) pair at once —
// the service layer's concurrent jobs satisfy this by construction
// (disjoint per-job tag namespaces; within a job, one goroutine per
// rank). Each blocked take parks on its own per-key wake channel, so a
// put wakes exactly the receivers of its key and a thousand concurrent
// jobs do not stampede each other.
//
// Unlike the in-process mailboxes, a take can also end because the
// transport failed or because the awaited peer hung up: both conditions
// wake every receiver and make take panic with a *TransportError
// diagnosis instead of blocking forever.
type mailbox struct {
	mu      sync.Mutex
	queues  map[mbKey][]envelope
	err     *TransportError // fatal transport error, sticky
	closed  map[int]bool    // peers that reached EOF (graceful hangup)
	waiters map[mbKey][]chan struct{}

	// Observability hooks (nil when off — the disabled path pays one nil
	// check per put/park): depthMax tracks the high-watermark of
	// undelivered messages, waitNS accumulates blocked-receive wait time.
	depth    int // current undelivered count, guarded by mu
	depthMax *obs.Counter
	waitNS   *obs.Counter
}

func newMailbox() *mailbox {
	return &mailbox{
		queues:  make(map[mbKey][]envelope),
		closed:  make(map[int]bool),
		waiters: make(map[mbKey][]chan struct{}),
	}
}

// wakeKeyLocked closes (and drops) the wake channels of one key.
// Callers must hold mb.mu; the close itself is safe under the lock.
func (mb *mailbox) wakeKeyLocked(k mbKey) {
	for _, ch := range mb.waiters[k] {
		close(ch)
	}
	delete(mb.waiters, k)
}

// wakeAllLocked closes every parked receiver's wake channel (transport
// failure and hangups must unblock everyone so they can re-check).
func (mb *mailbox) wakeAllLocked() {
	for k, ws := range mb.waiters {
		for _, ch := range ws {
			close(ch)
		}
		delete(mb.waiters, k)
	}
}

// put enqueues a message from the given source rank under the given tag.
func (mb *mailbox) put(from, tag int, e envelope) {
	k := mbKey{from, tag}
	mb.mu.Lock()
	mb.queues[k] = append(mb.queues[k], e)
	var depth int
	if mb.depthMax != nil {
		mb.depth++
		depth = mb.depth
	}
	mb.wakeKeyLocked(k)
	mb.mu.Unlock()
	mb.depthMax.Max(int64(depth))
}

// fail records a fatal transport error attributed to the given peer
// (-1: none); every blocked and future take panics with it. The first
// error wins.
func (mb *mailbox) fail(peer int, err error) {
	mb.mu.Lock()
	if mb.err == nil {
		mb.err = &TransportError{Peer: peer, Err: err}
	}
	mb.wakeAllLocked()
	mb.mu.Unlock()
}

// hangup records that the peer's stream ended. Its already-delivered
// messages stay takeable; waiting for a new one panics.
func (mb *mailbox) hangup(from int) {
	mb.mu.Lock()
	mb.closed[from] = true
	mb.wakeAllLocked()
	mb.mu.Unlock()
}

// take blocks until a message from the given source with the given tag
// is available and dequeues it. Panics with a *TransportError when the
// transport has failed or the awaited peer hung up with no matching
// message buffered.
func (mb *mailbox) take(from, tag int) envelope {
	k := mbKey{from, tag}
	for {
		mb.mu.Lock()
		if q := mb.queues[k]; len(q) > 0 {
			e := q[0]
			if len(q) == 1 {
				delete(mb.queues, k)
			} else {
				// Shift instead of re-slicing so the backing array does
				// not pin already-consumed payloads.
				copy(q, q[1:])
				q[len(q)-1] = envelope{}
				mb.queues[k] = q[:len(q)-1]
			}
			if mb.depthMax != nil {
				mb.depth--
			}
			mb.mu.Unlock()
			return e
		}
		err, closed := mb.err, mb.closed[from]
		if err != nil || closed {
			mb.mu.Unlock()
			if err != nil {
				panic(&TransportError{Peer: err.Peer, Err: fmt.Errorf("recv(from=%d, tag=%#x) after transport failure: %w", from, tag, err.Err)})
			}
			panic(&TransportError{Peer: from, Err: fmt.Errorf("recv(from=%d, tag=%#x): peer closed the connection with no matching message", from, tag)})
		}
		ch := make(chan struct{})
		mb.waiters[k] = append(mb.waiters[k], ch)
		mb.mu.Unlock()
		if mb.waitNS != nil {
			t0 := time.Now()
			<-ch
			mb.waitNS.Add(time.Since(t0).Nanoseconds())
		} else {
			<-ch
		}
	}
}

// pending reports the number of undelivered messages (for leak tests).
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := 0
	for _, q := range mb.queues {
		n += len(q)
	}
	return n
}
