package coll

import "pmsort/internal/comm"

const (
	tagRabScatter = 0x6c1001
	tagRabGather  = 0x6c1002
	tagPipeBcast  = 0x6c1003
)

// seg is one offset-stamped segment of the recursive-doubling allgather
// of AllreduceSumI64 (package-scoped so the wire codec can name it).
type seg struct {
	lo   int
	data []int64
}

// AllreduceSumI64 computes the element-wise vector sum on every member.
// For power-of-two groups and vectors of at least one element per member
// it uses Rabenseifner's algorithm (reduce-scatter by recursive halving,
// then allgather by recursive doubling), moving only ≈2·ℓ words per PE
// instead of the ≈ℓ·log p of the tree algorithm — the full-bandwidth
// reduction the paper's [30] citation calls for, relevant for the long
// bucket-size vectors of overpartitioned AMS-sort. Other shapes fall
// back to the binomial-tree Allreduce. The result is freshly allocated.
func AllreduceSumI64(c comm.Communicator, vec []int64) []int64 {
	p := c.Size()
	addVec := func(a, b []int64) []int64 {
		out := make([]int64, len(a))
		for i := range a {
			out[i] = a[i] + b[i]
		}
		return out
	}
	if p == 1 {
		return append([]int64(nil), vec...)
	}
	if p&(p-1) != 0 || len(vec) < p {
		return Allreduce(c, vec, int64(len(vec)), addVec)
	}
	cost := c.Cost()
	rank := c.Rank()
	cur := append([]int64(nil), vec...)
	lo, hi := 0, len(cur)

	// Reduce-scatter by recursive halving: each round sends the half of
	// the active segment the partner is responsible for and accumulates
	// the received half.
	for d := p >> 1; d >= 1; d >>= 1 {
		partner := rank ^ d
		mid := lo + (hi-lo)/2
		var sendLo, sendHi int
		if rank&d == 0 {
			sendLo, sendHi = mid, hi // partner owns the upper half
		} else {
			sendLo, sendHi = lo, mid
		}
		// Send a copy: cur keeps being accumulated into.
		out := append([]int64(nil), cur[sendLo:sendHi]...)
		c.Send(partner, tagRabScatter, out, int64(len(out)))
		pl, _ := c.Recv(partner, tagRabScatter)
		in := pl.([]int64)
		if rank&d == 0 {
			hi = mid
		} else {
			lo = mid
		}
		for i, v := range in {
			cur[lo+i] += v
		}
		cost.Scan(int64(len(in)))
	}

	// Allgather by recursive doubling: exchange ever-growing segments.
	for d := 1; d < p; d <<= 1 {
		partner := rank ^ d
		out := seg{lo: lo, data: append([]int64(nil), cur[lo:hi]...)}
		c.Send(partner, tagRabGather, out, int64(hi-lo)+1)
		pl, _ := c.Recv(partner, tagRabGather)
		in := pl.(seg)
		copy(cur[in.lo:], in.data)
		cost.Scan(int64(len(in.data)))
		if in.lo < lo {
			lo = in.lo
		}
		if end := in.lo + len(in.data); end > hi {
			hi = end
		}
	}
	return cur
}

// BcastPipelined broadcasts root's value along a binary tree in `chunks`
// back-to-back messages of ⌈words/chunks⌉ words. With chunks ≈
// √(ℓ·β/α·depth) this approaches the α·log p + O(ℓ·β) time of the
// pipelined two-tree broadcast of [30] within a small factor (the value
// itself rides on the first chunk; the rest are cost carriers of the
// remaining words, exactly like the fragments of a real implementation).
// chunks < 2 degenerates to the binomial Bcast.
func BcastPipelined[T any](c comm.Communicator, root int, val T, words int64, chunks int) T {
	p := c.Size()
	if p == 1 {
		return val
	}
	if chunks < 2 {
		return Bcast(c, root, val, words)
	}
	if int64(chunks) > words {
		chunks = int(words)
		if chunks < 2 {
			return Bcast(c, root, val, words)
		}
	}
	chunkWords := (words + int64(chunks) - 1) / int64(chunks)
	vr := (c.Rank() - root + p) % p
	toReal := func(v int) int { return (v + root) % p }
	left, right := 2*vr+1, 2*vr+2

	forward := func(payload any, w int64) {
		if left < p {
			c.Send(toReal(left), tagPipeBcast, payload, w)
		}
		if right < p {
			c.Send(toReal(right), tagPipeBcast, payload, w)
		}
	}
	if vr == 0 {
		forward(val, chunkWords)
		for i := 1; i < chunks; i++ {
			forward(nil, chunkWords)
		}
		return val
	}
	parent := toReal((vr - 1) / 2)
	pl, _ := c.Recv(parent, tagPipeBcast)
	val = pl.(T)
	forward(val, chunkWords)
	for i := 1; i < chunks; i++ {
		c.Recv(parent, tagPipeBcast)
		forward(nil, chunkWords)
	}
	return val
}
