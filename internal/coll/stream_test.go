package coll

import (
	"reflect"
	"testing"

	"pmsort/internal/comm"
	"pmsort/internal/prng"
	"pmsort/internal/sim"
)

// TestAlltoallvStreamConformance pins the streamed all-to-all contract
// against the batch variants on the simulated backend: emit fires
// exactly once per source, own data first, and collecting the emitted
// messages by source reproduces the batch result byte for byte — for
// both exchange algorithms, across group sizes, with empty messages
// mixed in.
func TestAlltoallvStreamConformance(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8} {
		for _, direct := range []bool{true, false} {
			outs := make([][][]uint64, p)
			rng := prng.New(uint64(p)*77 + 13)
			for r := range outs {
				outs[r] = make([][]uint64, p)
				for to := range outs[r] {
					n := int(rng.Next() % 7)
					if rng.Next()%4 == 0 {
						n = 0 // empty messages: the 1-factor omits them
					}
					msg := make([]uint64, n)
					for i := range msg {
						msg[i] = rng.Next()
					}
					outs[r][to] = msg
				}
			}

			batch := make([][][]uint64, p)
			streamed := make([][][]uint64, p)
			firstSrc := make([]int, p)
			sim.NewDefault(p).Run(func(pe *sim.PE) {
				c := sim.World(pe)
				r := pe.Rank()
				if direct {
					batch[r] = AlltoallvDirect(c, cloneOut(outs[r]))
				} else {
					batch[r] = Alltoallv1Factor(c, cloneOut(outs[r]))
				}
				got := make([][]uint64, p)
				seen := make([]int, p)
				order := 0
				emit := func(src int, msg []uint64) {
					if order == 0 {
						firstSrc[r] = src
					}
					order++
					seen[src]++
					got[src] = msg
				}
				if direct {
					AlltoallvDirectStream(c, cloneOut(outs[r]), emit)
				} else {
					Alltoallv1FactorStream(c, cloneOut(outs[r]), emit)
				}
				for src, n := range seen {
					if n != 1 {
						t.Errorf("p=%d direct=%v rank %d: source %d emitted %d times", p, direct, r, src, n)
					}
				}
				streamed[r] = got
			})

			for r := 0; r < p; r++ {
				if firstSrc[r] != r {
					t.Errorf("p=%d direct=%v rank %d: first emit was source %d, want own data first", p, direct, r, firstSrc[r])
				}
				for src := 0; src < p; src++ {
					b, s := batch[r][src], streamed[r][src]
					// The 1-factor batch leaves omitted messages nil; the
					// stream emits nil for them — compare contents.
					if len(b) == 0 && len(s) == 0 {
						continue
					}
					if !reflect.DeepEqual(b, s) {
						t.Errorf("p=%d direct=%v rank %d src %d: batch %v != streamed %v", p, direct, r, src, b, s)
					}
				}
			}
		}
	}
}

func cloneOut(out [][]uint64) [][]uint64 {
	cp := make([][]uint64, len(out))
	for i, s := range out {
		cp[i] = append([]uint64(nil), s...)
	}
	return cp
}

var _ comm.Communicator = (*sim.Comm)(nil)
