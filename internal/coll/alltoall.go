package coll

import (
	"pmsort/internal/comm"
	"pmsort/internal/obs"
)

// obsEmit wraps a stream-emit callback so the consumer work overlapped
// into the exchange is accumulated into the CtrEmitNS counter — the
// observable half of the streaming-delivery overlap (DESIGN.md §10).
// With tracing off (rec == nil) the callback is returned untouched: the
// disabled path allocates nothing.
func obsEmit[T any](rec *obs.Recorder, emit func(src int, msg []T)) func(src int, msg []T) {
	if rec == nil {
		return emit
	}
	ctr := rec.Counter(obs.CtrEmitNS)
	return func(src int, msg []T) {
		t0 := rec.Now()
		emit(src, msg)
		ctr.Add(rec.Now() - t0)
	}
}

// AlltoallI64 exchanges one int64 with every member (v[i] goes to member
// i) using the Bruck algorithm: ⌈log₂ p⌉ rounds of aggregated messages of
// ≤ ⌈p/2⌉ words instead of p startups. Returns the received vector
// indexed by source rank. This is how all-to-allv implementations
// exchange their counts up front.
func AlltoallI64(c comm.Communicator, v []int64) []int64 {
	p, r := c.Size(), c.Rank()
	if len(v) != p {
		panic("coll: AlltoallI64 vector length != group size")
	}
	if p == 1 {
		return []int64{v[0]}
	}
	// Phase 1: local rotation. blk[j] = value destined to (r+j) mod p.
	blk := make([]int64, p)
	for j := 0; j < p; j++ {
		blk[j] = v[(r+j)%p]
	}
	// Phase 2: for each bit, ship all blocks whose index has the bit set
	// to (r + bit) mod p; both sides enumerate the same block indices.
	for bit := 1; bit < p; bit <<= 1 {
		var out []int64
		for j := bit; j < p; j++ {
			if j&bit != 0 {
				out = append(out, blk[j])
			}
		}
		to := (r + bit) % p
		from := (r - bit + p) % p
		c.Send(to, tagBruck, out, int64(len(out)))
		pl, _ := c.Recv(from, tagBruck)
		in := pl.([]int64)
		idx := 0
		for j := bit; j < p; j++ {
			if j&bit != 0 {
				blk[j] = in[idx]
				idx++
			}
		}
	}
	// Phase 3: after the rounds, blk[j] holds the value destined to me
	// originating from (r-j) mod p; undo the rotation.
	res := make([]int64, p)
	for j := 0; j < p; j++ {
		res[(r-j+p)%p] = blk[j]
	}
	return res
}

// wordsOf sums the word sizes of a message's items: one word per item by
// default, or Σ itemWords(item) when an item carries nested data.
func wordsOf[T any](items []T, itemWords func(T) int64) int64 {
	if itemWords == nil {
		return int64(len(items))
	}
	var w int64
	for _, it := range items {
		w += itemWords(it)
	}
	return w
}

// AlltoallvDirect performs an irregular all-to-all exchange the way a
// plain MPI_Alltoallv does: every member sends one message to every other
// member, including empty ones — p-1 startups per PE regardless of the
// payload distribution (the behaviour of the IBM mpich2 implementation
// the paper compares against in §7.1). out[i] is moved to member i;
// the result is indexed by source rank, with out[me] passed through.
func AlltoallvDirect[T any](c comm.Communicator, out [][]T) [][]T {
	return AlltoallvDirectFunc(c, out, nil)
}

// AlltoallvDirectFunc is AlltoallvDirect with an explicit per-item word
// size (nil means one word per item).
func AlltoallvDirectFunc[T any](c comm.Communicator, out [][]T, itemWords func(T) int64) [][]T {
	in := make([][]T, c.Size())
	AlltoallvDirectStreamFunc(c, out, itemWords, func(src int, msg []T) { in[src] = msg })
	return in
}

// AlltoallvDirectStream is the receive-driven variant of AlltoallvDirect:
// instead of materializing the [][]T result after all messages arrived,
// it invokes emit once per member — own data first, then each peer's
// message in the deterministic receive order (increasing rank distance)
// as it arrives — so the consumer's per-message work overlaps the
// remaining exchange. emit is called exactly once per source rank, on
// the calling goroutine; collecting the emitted messages by source
// reproduces AlltoallvDirect's result exactly.
func AlltoallvDirectStream[T any](c comm.Communicator, out [][]T, emit func(src int, msg []T)) {
	AlltoallvDirectStreamFunc(c, out, nil, emit)
}

// AlltoallvDirectStreamFunc is AlltoallvDirectStream with an explicit
// per-item word size (nil means one word per item).
func AlltoallvDirectStreamFunc[T any](c comm.Communicator, out [][]T, itemWords func(T) int64, emit func(src int, msg []T)) {
	p, r := c.Size(), c.Rank()
	if len(out) != p {
		panic("coll: AlltoallvDirect buffer count != group size")
	}
	rec := obs.From(c)
	emit = obsEmit(rec, emit)
	for i := 1; i < p; i++ {
		to := (r + i) % p
		w := wordsOf(out[to], itemWords)
		c.Send(to, tagAlltoallv, out[to], w)
		rec.PeerSend(c.GlobalRank(to), 1, w)
	}
	c.Cost().Scan(wordsOf(out[r], itemWords))
	emit(r, out[r])
	for i := 1; i < p; i++ {
		from := (r - i + p) % p
		pl, w := c.Recv(from, tagAlltoallv)
		rec.PeerRecv(c.GlobalRank(from), 1, w)
		emit(from, pl.([]T))
	}
}

// Alltoallv1Factor performs the irregular all-to-all exchange with the
// 1-factor algorithm of Sanders and Träff [31], as in the paper's own
// implementation (§7.1): communication proceeds in p (p odd) or p-1
// (p even) rounds of disjoint pairwise exchanges, and — unlike the plain
// direct algorithm — empty messages are omitted entirely. Message counts
// are exchanged up front with a Bruck all-to-all (log p aggregated
// messages). The result is indexed by source rank.
func Alltoallv1Factor[T any](c comm.Communicator, out [][]T) [][]T {
	return Alltoallv1FactorFunc(c, out, nil)
}

// Alltoallv1FactorFunc is Alltoallv1Factor with an explicit per-item word
// size (nil means one word per item).
func Alltoallv1FactorFunc[T any](c comm.Communicator, out [][]T, itemWords func(T) int64) [][]T {
	in := make([][]T, c.Size())
	Alltoallv1FactorStreamFunc(c, out, itemWords, func(src int, msg []T) { in[src] = msg })
	return in
}

// Alltoallv1FactorStream is the receive-driven variant of
// Alltoallv1Factor: emit is invoked once per member — own data first,
// then each round's partner as its message arrives (nil for partners
// that declared nothing) — so the consumer's per-message work overlaps
// the remaining rounds. emit runs on the calling goroutine; collecting
// the emitted messages by source reproduces Alltoallv1Factor's result
// exactly.
func Alltoallv1FactorStream[T any](c comm.Communicator, out [][]T, emit func(src int, msg []T)) {
	Alltoallv1FactorStreamFunc(c, out, nil, emit)
}

// Alltoallv1FactorStreamFunc is Alltoallv1FactorStream with an explicit
// per-item word size (nil means one word per item).
func Alltoallv1FactorStreamFunc[T any](c comm.Communicator, out [][]T, itemWords func(T) int64, emit func(src int, msg []T)) {
	p, r := c.Size(), c.Rank()
	if len(out) != p {
		panic("coll: Alltoallv1Factor buffer count != group size")
	}
	counts := make([]int64, p)
	for i, s := range out {
		counts[i] = wordsOf(s, itemWords) // declared message sizes
		if counts[i] == 0 && len(s) > 0 {
			counts[i] = 1 // zero-word items still need a message
		}
	}
	incoming := AlltoallI64(c, counts)

	rec := obs.From(c)
	emit = obsEmit(rec, emit)
	c.Cost().Scan(wordsOf(out[r], itemWords))
	emit(r, out[r])

	exchange := func(partner int) {
		if len(out[partner]) > 0 {
			c.Send(partner, tagAlltoallv, out[partner], counts[partner])
			rec.PeerSend(c.GlobalRank(partner), 1, counts[partner])
		}
		if incoming[partner] > 0 {
			pl, w := c.Recv(partner, tagAlltoallv)
			rec.PeerRecv(c.GlobalRank(partner), 1, w)
			emit(partner, pl.([]T))
		} else {
			emit(partner, nil)
		}
	}

	if p%2 == 0 {
		// Even p: p-1 rounds; in round rd, PE p-1 pairs with the PE i
		// that satisfies 2i ≡ rd (mod p-1); other PEs i pair with
		// j = (rd - i) mod (p-1).
		for rd := 0; rd < p-1; rd++ {
			var partner int
			if r == p-1 {
				partner = idleOf(rd, p-1)
			} else if idleOf(rd, p-1) == r {
				partner = p - 1
			} else {
				partner = (rd - r%(p-1) + p - 1) % (p - 1)
			}
			exchange(partner)
		}
	} else {
		// Odd p: p rounds; PE i pairs with (rd - i) mod p and idles when
		// that is itself.
		for rd := 0; rd < p; rd++ {
			partner := (rd - r + 2*p) % p
			if partner == r {
				continue
			}
			exchange(partner)
		}
	}
}

// idleOf returns the PE i with 2i ≡ rd (mod m), m odd — the PE that would
// be self-paired in round rd of the 1-factorization on m vertices.
func idleOf(rd, m int) int {
	// 2⁻¹ mod m for odd m is (m+1)/2.
	return rd * (m + 1) / 2 % m
}
