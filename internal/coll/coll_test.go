package coll

import (
	"math/rand"
	"sort"
	"testing"

	"pmsort/internal/comm"
	"pmsort/internal/sim"
)

var testSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 33}

func addI64(a, b int64) int64 { return a + b }

func runAll(t *testing.T, sizes []int, fn func(t *testing.T, c *sim.Comm)) {
	t.Helper()
	for _, p := range sizes {
		m := sim.NewDefault(p)
		m.Run(func(pe *sim.PE) {
			fn(t, sim.World(pe))
		})
	}
}

func TestBcast(t *testing.T) {
	runAll(t, testSizes, func(t *testing.T, c *sim.Comm) {
		for root := 0; root < c.Size(); root += 1 + c.Size()/3 {
			got := Bcast(c, root, 1000+root, 1)
			if got != 1000+root {
				t.Errorf("p=%d root=%d rank=%d: Bcast got %d", c.Size(), root, c.Rank(), got)
			}
		}
	})
}

func TestReduce(t *testing.T) {
	runAll(t, testSizes, func(t *testing.T, c *sim.Comm) {
		p := c.Size()
		for root := 0; root < p; root += 1 + p/3 {
			val, ok := Reduce(c, root, int64(c.Rank()+1), 1, addI64)
			if ok != (c.Rank() == root) {
				t.Errorf("p=%d: ok=%v at rank %d root %d", p, ok, c.Rank(), root)
			}
			want := int64(p) * int64(p+1) / 2
			if ok && val != want {
				t.Errorf("p=%d root=%d: Reduce got %d want %d", p, root, val, want)
			}
		}
	})
}

func TestAllreduce(t *testing.T) {
	runAll(t, testSizes, func(t *testing.T, c *sim.Comm) {
		p := c.Size()
		got := Allreduce(c, int64(c.Rank()+1), 1, addI64)
		if want := int64(p) * int64(p+1) / 2; got != want {
			t.Errorf("p=%d rank=%d: Allreduce got %d want %d", p, c.Rank(), got, want)
		}
	})
}

func TestAllreduceVector(t *testing.T) {
	addVec := func(a, b []int64) []int64 {
		out := make([]int64, len(a))
		for i := range a {
			out[i] = a[i] + b[i]
		}
		return out
	}
	runAll(t, testSizes, func(t *testing.T, c *sim.Comm) {
		p := c.Size()
		vec := []int64{int64(c.Rank()), 1, int64(2 * c.Rank())}
		got := Allreduce(c, vec, 3, addVec)
		wantSum := int64(p*(p-1)) / 2
		if got[0] != wantSum || got[1] != int64(p) || got[2] != 2*wantSum {
			t.Errorf("p=%d: vector allreduce got %v", p, got)
		}
	})
}

func TestExScan(t *testing.T) {
	runAll(t, testSizes, func(t *testing.T, c *sim.Comm) {
		r := int64(c.Rank())
		prefix, ok := ExScan(c, r+1, 1, addI64)
		if c.Rank() == 0 {
			if ok {
				t.Errorf("rank 0 has a prefix: %d", prefix)
			}
			return
		}
		want := r * (r + 1) / 2 // sum of 1..r
		if !ok || prefix != want {
			t.Errorf("p=%d rank=%d: ExScan got %d,%v want %d", c.Size(), c.Rank(), prefix, ok, want)
		}
	})
}

func TestScanTotal(t *testing.T) {
	runAll(t, testSizes, func(t *testing.T, c *sim.Comm) {
		p := int64(c.Size())
		prefix, total, ok := ScanTotal(c, int64(c.Rank()+1), 1, addI64)
		if total != p*(p+1)/2 {
			t.Errorf("p=%d rank=%d: total=%d", p, c.Rank(), total)
		}
		r := int64(c.Rank())
		if c.Rank() > 0 && (!ok || prefix != r*(r+1)/2) {
			t.Errorf("p=%d rank=%d: prefix=%d ok=%v", p, c.Rank(), prefix, ok)
		}
	})
}

func TestGathervAllgatherv(t *testing.T) {
	runAll(t, testSizes, func(t *testing.T, c *sim.Comm) {
		local := make([]int, c.Rank()%3+1)
		for i := range local {
			local[i] = 100*c.Rank() + i
		}
		check := func(all [][]int) {
			if len(all) != c.Size() {
				t.Fatalf("got %d chunks want %d", len(all), c.Size())
			}
			for r, chunk := range all {
				if len(chunk) != r%3+1 {
					t.Fatalf("chunk %d has len %d", r, len(chunk))
				}
				for i, v := range chunk {
					if v != 100*r+i {
						t.Fatalf("chunk %d[%d] = %d", r, i, v)
					}
				}
			}
		}
		if all := Gatherv(c, 0, local); c.Rank() == 0 {
			check(all)
		} else if all != nil {
			t.Errorf("non-root got non-nil gather result")
		}
		check(Allgatherv(c, local))
	})
}

func TestAllgatherMerge(t *testing.T) {
	runAll(t, testSizes, func(t *testing.T, c *sim.Comm) {
		rng := rand.New(rand.NewSource(int64(c.Rank()) + 7))
		local := make([]int, 5+c.Rank()%4)
		for i := range local {
			local[i] = rng.Intn(100)
		}
		sort.Ints(local)
		got := AllgatherMerge(c, local, func(a, b int) bool { return a < b })
		// Reference: gather everything and sort.
		wantLen := 0
		for r := 0; r < c.Size(); r++ {
			wantLen += 5 + r%4
		}
		if len(got) != wantLen {
			t.Fatalf("p=%d rank=%d: merged len %d want %d", c.Size(), c.Rank(), len(got), wantLen)
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("p=%d rank=%d: gossip result not sorted", c.Size(), c.Rank())
		}
	})
}

func TestAlltoallI64(t *testing.T) {
	runAll(t, testSizes, func(t *testing.T, c *sim.Comm) {
		p := c.Size()
		v := make([]int64, p)
		for i := range v {
			// Unique value per (src,dst) pair.
			v[i] = int64(c.Rank()*1000 + i)
		}
		got := AlltoallI64(c, v)
		for src := 0; src < p; src++ {
			if got[src] != int64(src*1000+c.Rank()) {
				t.Fatalf("p=%d rank=%d: from %d got %d want %d", p, c.Rank(), src, got[src], src*1000+c.Rank())
			}
		}
	})
}

func alltoallvCheck(t *testing.T, c *sim.Comm, impl func(comm.Communicator, [][]int) [][]int) {
	t.Helper()
	p := c.Size()
	out := make([][]int, p)
	rng := rand.New(rand.NewSource(int64(c.Rank()*977 + p)))
	for i := range out {
		n := rng.Intn(4)
		if (c.Rank()+i)%3 == 0 {
			n = 0 // force plenty of empty messages
		}
		out[i] = make([]int, n)
		for j := range out[i] {
			out[i][j] = c.Rank()*100000 + i*100 + j
		}
	}
	in := impl(c, out)
	for src := 0; src < p; src++ {
		// Regenerate what src must have sent to me.
		srcRng := rand.New(rand.NewSource(int64(src*977 + p)))
		var want []int
		for i := 0; i < p; i++ {
			n := srcRng.Intn(4)
			if (src+i)%3 == 0 {
				n = 0
			}
			if i == c.Rank() {
				want = make([]int, n)
				for j := range want {
					want[j] = src*100000 + i*100 + j
				}
			}
		}
		if len(in[src]) != len(want) {
			t.Fatalf("p=%d rank=%d src=%d: got %d elems want %d", p, c.Rank(), src, len(in[src]), len(want))
		}
		for j := range want {
			if in[src][j] != want[j] {
				t.Fatalf("p=%d rank=%d src=%d elem %d: got %d want %d", p, c.Rank(), src, j, in[src][j], want[j])
			}
		}
	}
}

func TestAlltoallvDirect(t *testing.T) {
	runAll(t, testSizes, func(t *testing.T, c *sim.Comm) {
		alltoallvCheck(t, c, AlltoallvDirect[int])
	})
}

func TestAlltoallv1Factor(t *testing.T) {
	runAll(t, testSizes, func(t *testing.T, c *sim.Comm) {
		alltoallvCheck(t, c, Alltoallv1Factor[int])
	})
}

// TestOneFactorSkipsEmpties verifies the headline property of the
// 1-factor all-to-allv: PEs with nothing to exchange do not pay message
// startups for data messages (only the logarithmic Bruck counts rounds),
// while the direct algorithm always pays p-1 startups.
func TestOneFactorSkipsEmpties(t *testing.T) {
	const p = 16
	run := func(impl func(comm.Communicator, [][]int) [][]int) (maxMsgs int64) {
		m := sim.NewDefault(p)
		m.Run(func(pe *sim.PE) {
			c := sim.World(pe)
			out := make([][]int, p)
			// Only PE 0 sends anything, and only to PE 1.
			if pe.Rank() == 0 {
				out[1] = []int{42}
			}
			pe.ResetCounters()
			impl(c, out)
		})
		for i := 0; i < p; i++ {
			if n := m.PE(i).MsgsSent; n > maxMsgs {
				maxMsgs = n
			}
		}
		return maxMsgs
	}
	direct := run(AlltoallvDirect[int])
	onefac := run(Alltoallv1Factor[int])
	if direct != p-1 {
		t.Errorf("direct all-to-allv sent %d messages, want %d", direct, p-1)
	}
	// 1-factor: only the Bruck counts rounds (log2 16 = 4) plus at most
	// one data message.
	if onefac > 5 {
		t.Errorf("1-factor all-to-allv sent %d messages, want ≤ 5", onefac)
	}
}

func TestBarrier(t *testing.T) {
	runAll(t, testSizes, func(t *testing.T, c *sim.Comm) {
		// Stagger the clocks, then barrier; everyone must leave at a time
		// ≥ the max entry time.
		entry := int64(1000 * (c.Rank() + 1))
		c.PE().AdvanceTo(entry)
		Barrier(c)
		if c.PE().Now() < int64(1000*c.Size()) {
			t.Errorf("p=%d rank=%d: left barrier at %d before max entry %d",
				c.Size(), c.Rank(), c.PE().Now(), 1000*c.Size())
		}
	})
}

func TestTimedBarrierClockAgreement(t *testing.T) {
	for _, p := range testSizes {
		m := sim.NewDefault(p)
		exits := make([]int64, p)
		m.Run(func(pe *sim.PE) {
			c := sim.World(pe)
			pe.AdvanceTo(int64(500 * (pe.Rank() + 3)))
			exits[pe.Rank()] = TimedBarrier(c)
		})
		for i := 1; i < p; i++ {
			if exits[i] != exits[0] {
				t.Fatalf("p=%d: PE %d exited at %d, PE 0 at %d", p, i, exits[i], exits[0])
			}
		}
		if exits[0] < int64(500*(p+2)) {
			t.Fatalf("p=%d: exit %d before max entry %d", p, exits[0], 500*(p+2))
		}
		res := m.Run(func(pe *sim.PE) {})
		for i := 1; i < p; i++ {
			if res.Times[i] != res.Times[0] {
				t.Fatalf("p=%d: clocks disagree after TimedBarrier", p)
			}
		}
	}
}

// TestCollectivesInSubgroups runs collectives concurrently in disjoint
// subgroups to check isolation.
func TestCollectivesInSubgroups(t *testing.T) {
	m := sim.NewDefault(12)
	m.Run(func(pe *sim.PE) {
		world := sim.World(pe)
		sub, g := world.SplitEqual(3)
		sum := Allreduce(sub, int64(1), 1, addI64)
		if sum != int64(sub.Size()) {
			t.Errorf("group %d rank %d: allreduce got %d want %d", g, sub.Rank(), sum, sub.Size())
		}
		got := Bcast(sub, 0, g*10, 1)
		if got != g*10 {
			t.Errorf("group %d: bcast leaked across groups: %d", g, got)
		}
	})
}

// TestBcastLogDepth checks the binomial broadcast takes O(log p) rounds,
// not O(p): the virtual finish time for p=64 single-word messages must be
// well below 64 α.
func TestBcastLogDepth(t *testing.T) {
	p := 64
	m := sim.New(p, sim.FlatTopology(), sim.DefaultCost())
	res := m.Run(func(pe *sim.PE) {
		Bcast(sim.World(pe), 0, 7, 1)
	})
	alpha := sim.DefaultCost().Alpha[sim.LinkIsland]
	// Binomial tree: ≤ 2·log2(p) α on the critical path (sends serialize
	// at the root), with slack for the β term.
	if res.MaxTime > 2*6*alpha+1000 {
		t.Errorf("Bcast finished at %d ns, expected ≈ O(log p · α) = %d", res.MaxTime, 6*alpha)
	}
}
