// Package coll implements the collective communication operations the
// sorting algorithms are built from — broadcast, (all)reduce, prefix
// sums, gather, allgather (plain and merging/"gossip"), barriers, and
// all-to-all exchange (direct and 1-factor [31]) — on top of the
// point-to-point primitives of internal/sim. All collectives use
// tree/hypercube/dissemination schedules, so their O(α·log p + ℓ·β)
// costs emerge from the α-β model instead of being asserted.
//
// Conventions:
//
//   - Combine functions passed to Reduce/Allreduce/ExScan must be pure:
//     they must not mutate their arguments and must return a fresh value
//     (or one of the arguments unmodified).
//   - Payloads delivered to multiple PEs (Bcast, Allgatherv, Allreduce
//     results) are shared between PEs and must be treated as read-only.
//   - Point-to-point payload ownership transfers to the receiver.
package coll

import (
	"pmsort/internal/comm"
	"pmsort/internal/seq"
	"pmsort/internal/wire"
)

// RegisterWire registers every payload shape the collectives can put on
// a serializing backend for value type T: T itself (Bcast/Reduce/Scan),
// slices of T (gathers, gossip), the rank-stamped Gatherv chunks, and
// the slice-of-slices Allgatherv broadcasts. Idempotent and cheap;
// algorithm entry points call it per invocation.
func RegisterWire[T any]() {
	wire.Register[T]()
	wire.Register[[]T]()
	wire.Register[[][]T]()
	wire.Register[gchunk[T]]()
	wire.Register[[]gchunk[T]]()
}

func init() {
	// The element types the repo's own tools and tests sort, plus the
	// count/prefix vectors every collective exchanges.
	RegisterWire[uint64]()
	RegisterWire[int64]()
	RegisterWire[int]()
	wire.Register[seg]()
}

// Tag space for collectives. Each operation uses its own tag; repeated
// invocations are kept apart by per-(source,tag) FIFO ordering.
const (
	tagBcast = 0x6c0000 + iota
	tagReduce
	tagScan
	tagGather
	tagGossip
	tagAlltoallv
	tagAlltoallCnt
	tagBarrier
	tagBruck
)

// hBit returns the smallest power of two ≥ p.
func hBit(p int) int {
	h := 1
	for h < p {
		h <<= 1
	}
	return h
}

// Bcast broadcasts root's value to all members along a binomial tree and
// returns it. The returned value is shared across PEs: read-only.
func Bcast[T any](c comm.Communicator, root int, val T, words int64) T {
	p := c.Size()
	if p == 1 {
		return val
	}
	vr := (c.Rank() - root + p) % p // virtual rank: root becomes 0
	// lowbit(vr) for vr != 0; the root uses the tree height H.
	low := vr & (-vr)
	if vr == 0 {
		low = hBit(p)
	}
	if vr != 0 {
		parent := (vr - low + root) % p
		pl, _ := c.Recv(parent, tagBcast)
		val = pl.(T)
	}
	for m := low >> 1; m >= 1; m >>= 1 {
		if vr+m < p {
			c.Send((vr+m+root)%p, tagBcast, val, words)
		}
	}
	return val
}

// Reduce combines all members' values with op along a binomial tree.
// The result is returned at root (ok=true); other PEs get ok=false.
func Reduce[T any](c comm.Communicator, root int, val T, words int64, op func(a, b T) T) (T, bool) {
	p := c.Size()
	if p == 1 {
		return val, true
	}
	vr := (c.Rank() - root + p) % p
	low := vr & (-vr)
	if vr == 0 {
		low = hBit(p)
	}
	// Children send up in increasing subtree size; parent receives in the
	// same order (deterministic combine order).
	for m := 1; m < low; m <<= 1 {
		if vr+m < p {
			pl, _ := c.Recv((vr+m+root)%p, tagReduce)
			val = op(val, pl.(T))
		}
	}
	if vr != 0 {
		c.Send((vr-low+root)%p, tagReduce, val, words)
		var zero T
		return zero, false
	}
	return val, true
}

// Allreduce combines all members' values with op and returns the result
// on every PE (reduce to rank 0, then broadcast). The result is shared:
// read-only.
func Allreduce[T any](c comm.Communicator, val T, words int64, op func(a, b T) T) T {
	red, ok := Reduce(c, 0, val, words, op)
	if !ok {
		// Non-root PEs receive the result in the broadcast below.
		var zero T
		red = zero
	}
	return Bcast(c, 0, red, words)
}

// ExScan computes the exclusive prefix "sum" of the members' values under
// op using a dissemination schedule (⌈log₂ p⌉ rounds). Rank 0 has no
// prefix (ok=false). Results are fresh values (safe to mutate) as long as
// op is pure.
func ExScan[T any](c comm.Communicator, val T, words int64, op func(a, b T) T) (T, bool) {
	p, r := c.Size(), c.Rank()
	incl := val // inclusive prefix over the ranks covered so far
	var ex T
	has := false
	for d := 1; d < p; d <<= 1 {
		if r+d < p {
			c.Send(r+d, tagScan, incl, words)
		}
		if r-d >= 0 {
			pl, _ := c.Recv(r-d, tagScan)
			t := pl.(T)
			// t is the inclusive prefix of ranks (r-2d, r-d] — exactly
			// the block preceding everything we have accumulated.
			if has {
				ex = op(t, ex)
			} else {
				ex = t
				has = true
			}
			incl = op(t, incl)
		}
	}
	return ex, has
}

// ScanTotal returns the exclusive prefix (ok=false at rank 0) and the
// total over all members (broadcast from the last rank).
func ScanTotal[T any](c comm.Communicator, val T, words int64, op func(a, b T) T) (prefix T, total T, ok bool) {
	prefix, ok = ExScan(c, val, words, op)
	incl := val
	if ok {
		incl = op(prefix, val)
	}
	total = Bcast(c, c.Size()-1, incl, words)
	return prefix, total, ok
}

// gchunk is a rank-stamped slice riding up the Gatherv tree.
type gchunk[T any] struct {
	rank int
	data []T
}

// Gatherv gathers the members' slices at root along a binomial tree.
// At root it returns a slice indexed by member rank; other PEs get nil.
func Gatherv[T any](c comm.Communicator, root int, local []T) [][]T {
	type chunk = gchunk[T]
	p := c.Size()
	if p == 1 {
		return [][]T{local}
	}
	vr := (c.Rank() - root + p) % p
	low := vr & (-vr)
	if vr == 0 {
		low = hBit(p)
	}
	chunks := []chunk{{c.Rank(), local}}
	words := int64(len(local)) + 1
	for m := 1; m < low; m <<= 1 {
		if vr+m < p {
			pl, w := c.Recv((vr+m+root)%p, tagGather)
			chunks = append(chunks, pl.([]chunk)...)
			words += w
		}
	}
	if vr != 0 {
		c.Send((vr-low+root)%p, tagGather, chunks, words)
		return nil
	}
	out := make([][]T, p)
	for _, ch := range chunks {
		out[ch.rank] = ch.data
	}
	return out
}

// Allgatherv gathers every member's slice on every member (gather at
// rank 0 + broadcast). The result is indexed by rank and shared:
// read-only.
func Allgatherv[T any](c comm.Communicator, local []T) [][]T {
	all := Gatherv(c, 0, local)
	var total int64
	if c.Rank() == 0 {
		for _, s := range all {
			total += int64(len(s)) + 1
		}
	}
	return Bcast(c, 0, all, total)
}

// AllgatherMerge gossips the members' locally sorted slices so that every
// member ends up with the sorted union ("allGather where received sorted
// sequences are merged", §4.2). For power-of-two groups it runs the
// hypercube algorithm with pairwise merging; otherwise it gathers at rank
// 0, multiway-merges, and broadcasts. The result is freshly allocated on
// each PE for the hypercube path and shared on the fallback path:
// read-only either way.
func AllgatherMerge[T any](c comm.Communicator, local []T, less func(a, b T) bool) []T {
	p := c.Size()
	if p == 1 {
		return local
	}
	if p&(p-1) == 0 {
		cur := local
		for bit := 1; bit < p; bit <<= 1 {
			partner := c.Rank() ^ bit
			c.Send(partner, tagGossip, cur, int64(len(cur)))
			pl, _ := c.Recv(partner, tagGossip)
			other := pl.([]T)
			merged := seq.Merge2(cur, other, less)
			c.Cost().Ops(int64(len(merged)))
			cur = merged
		}
		return cur
	}
	runs := Gatherv(c, 0, local)
	var merged []T
	if runs != nil {
		merged = seq.Multiway(runs, less)
		c.Cost().Ops(seq.MultiwayOps(int64(len(merged)), len(runs)))
	}
	return Bcast(c, 0, merged, int64(lenTotal(runs)))
}

func lenTotal[T any](runs [][]T) int {
	n := 0
	for _, r := range runs {
		n += len(r)
	}
	return n
}

// Barrier synchronizes all members with a dissemination barrier
// (⌈log₂ p⌉ rounds of single-word messages).
func Barrier(c comm.Communicator) {
	p, r := c.Size(), c.Rank()
	for d := 1; d < p; d <<= 1 {
		c.Send((r+d)%p, tagBarrier, nil, 1)
		c.Recv((r-d+p)%p, tagBarrier)
	}
}

// TimedBarrier synchronizes all members and their clocks and returns
// the common exit time. On the simulated backend every member leaves at
// the identical virtual time max(clocks) + the modeled cost of a
// dissemination barrier over the group's widest link — phases are
// delimited exactly like the MPI_Barrier calls in the paper's
// measurements (§7.1). On real backends the allreduce synchronizes for
// real and the entry time is returned unchanged.
func TimedBarrier(c comm.Communicator) int64 {
	h := c.Cost()
	if c.Size() == 1 {
		return h.BarrierSync(h.Now())
	}
	maxOp := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	entry := Allreduce(c, h.Now(), 1, maxOp)
	// Replace the allreduce's internal cost with the backend's modeled
	// barrier exit time so all clocks agree exactly.
	return h.BarrierSync(entry)
}
