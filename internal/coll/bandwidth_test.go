package coll

import (
	"testing"

	"pmsort/internal/sim"
)

func TestAllreduceSumI64Correct(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 16, 32} {
		for _, l := range []int{1, 3, 8, 33, 257} {
			m := sim.NewDefault(p)
			m.Run(func(pe *sim.PE) {
				c := sim.World(pe)
				vec := make([]int64, l)
				for i := range vec {
					vec[i] = int64((pe.Rank() + 1) * (i + 1))
				}
				got := AllreduceSumI64(c, vec)
				sumRanks := int64(p) * int64(p+1) / 2
				for i := range got {
					want := sumRanks * int64(i+1)
					if got[i] != want {
						t.Fatalf("p=%d l=%d rank=%d: got[%d]=%d want %d", p, l, pe.Rank(), i, got[i], want)
					}
				}
			})
		}
	}
}

func TestAllreduceSumI64DoesNotAliasInput(t *testing.T) {
	m := sim.NewDefault(4)
	m.Run(func(pe *sim.PE) {
		c := sim.World(pe)
		vec := []int64{1, 2, 3, 4}
		got := AllreduceSumI64(c, vec)
		got[0] = -999 // mutating the result must not corrupt siblings
		if vec[0] != 1 {
			t.Errorf("input mutated: %v", vec)
		}
	})
}

// TestRabenseifnerCheaperThanTree: for long vectors on many PEs the
// recursive-halving algorithm must beat the binomial tree in simulated
// time (2ℓβ vs ℓβ·log p).
func TestRabenseifnerCheaperThanTree(t *testing.T) {
	const p, l = 64, 1 << 14
	run := func(useRab bool) int64 {
		m := sim.New(p, sim.FlatTopology(), sim.DefaultCost())
		res := m.Run(func(pe *sim.PE) {
			c := sim.World(pe)
			vec := make([]int64, l)
			if useRab {
				AllreduceSumI64(c, vec)
			} else {
				Allreduce(c, vec, int64(l), func(a, b []int64) []int64 {
					out := make([]int64, len(a))
					for i := range a {
						out[i] = a[i] + b[i]
					}
					return out
				})
			}
		})
		return res.MaxTime
	}
	rab, tree := run(true), run(false)
	if rab >= tree {
		t.Errorf("Rabenseifner (%d ns) not faster than tree (%d ns) for l=%d p=%d", rab, tree, l, p)
	}
}

func TestBcastPipelinedCorrect(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 16, 33} {
		for root := 0; root < p; root += 1 + p/2 {
			m := sim.NewDefault(p)
			m.Run(func(pe *sim.PE) {
				c := sim.World(pe)
				got := BcastPipelined(c, root, 4000+root, 1<<12, 16)
				if got != 4000+root {
					t.Errorf("p=%d root=%d rank=%d: got %d", p, root, pe.Rank(), got)
				}
			})
		}
	}
}

func TestBcastPipelinedDegenerate(t *testing.T) {
	m := sim.NewDefault(4)
	m.Run(func(pe *sim.PE) {
		c := sim.World(pe)
		if got := BcastPipelined(c, 0, "x", 1, 8); got != "x" {
			t.Errorf("tiny payload: %v", got)
		}
		if got := BcastPipelined(c, 0, "y", 100, 1); got != "y" {
			t.Errorf("chunks=1: %v", got)
		}
	})
}

// TestBcastPipelinedFasterForLongMessages: the binomial tree's critical
// path carries ℓβ per level (the root alone sends log p full copies), so
// for deep trees and long messages the chunked binary tree — whose nodes
// pay ≈3ℓβ once, overlapped across levels — must win.
func TestBcastPipelinedFasterForLongMessages(t *testing.T) {
	const p = 1024
	const words = 1 << 16
	run := func(chunks int) int64 {
		m := sim.New(p, sim.FlatTopology(), sim.DefaultCost())
		res := m.Run(func(pe *sim.PE) {
			c := sim.World(pe)
			if chunks <= 1 {
				Bcast(c, 0, 1, words)
			} else {
				BcastPipelined(c, 0, 1, words, chunks)
			}
		})
		return res.MaxTime
	}
	binomial, pipelined := run(1), run(16)
	if pipelined >= binomial {
		t.Errorf("pipelined bcast (%d ns) not faster than binomial (%d ns)", pipelined, binomial)
	}
}
