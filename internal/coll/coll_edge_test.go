package coll

import (
	"testing"

	"pmsort/internal/sim"
)

// TestSingletonCollectives: every collective degenerates correctly on a
// one-member communicator.
func TestSingletonCollectives(t *testing.T) {
	m := sim.NewDefault(1)
	m.Run(func(pe *sim.PE) {
		c := sim.World(pe)
		if got := Bcast(c, 0, 42, 1); got != 42 {
			t.Errorf("Bcast: %v", got)
		}
		if got, ok := Reduce(c, 0, int64(7), 1, addI64); !ok || got != 7 {
			t.Errorf("Reduce: %v %v", got, ok)
		}
		if got := Allreduce(c, int64(7), 1, addI64); got != 7 {
			t.Errorf("Allreduce: %v", got)
		}
		if _, ok := ExScan(c, int64(7), 1, addI64); ok {
			t.Errorf("ExScan on rank 0 must have no prefix")
		}
		if all := Allgatherv(c, []int{1, 2}); len(all) != 1 || len(all[0]) != 2 {
			t.Errorf("Allgatherv: %v", all)
		}
		if got := AllgatherMerge(c, []int{3, 4}, func(a, b int) bool { return a < b }); len(got) != 2 {
			t.Errorf("AllgatherMerge: %v", got)
		}
		if got := AlltoallI64(c, []int64{9}); got[0] != 9 {
			t.Errorf("AlltoallI64: %v", got)
		}
		in := Alltoallv1Factor(c, [][]int{{5}})
		if len(in[0]) != 1 || in[0][0] != 5 {
			t.Errorf("Alltoallv1Factor: %v", in)
		}
		Barrier(c)
		TimedBarrier(c)
	})
}

// TestZeroWordMessages: collectives must survive empty payloads.
func TestZeroWordMessages(t *testing.T) {
	m := sim.NewDefault(4)
	m.Run(func(pe *sim.PE) {
		c := sim.World(pe)
		out := make([][]int, 4) // everything empty
		in := Alltoallv1Factor(c, out)
		for src, chunk := range in {
			if len(chunk) != 0 {
				t.Errorf("got phantom data from %d: %v", src, chunk)
			}
		}
		in = AlltoallvDirect(c, out)
		for src, chunk := range in {
			if len(chunk) != 0 {
				t.Errorf("direct: phantom data from %d: %v", src, chunk)
			}
		}
	})
}

// TestAlltoallvFuncWordAccounting: the itemWords callback drives cost
// accounting — heavier items must take longer.
func TestAlltoallvFuncWordAccounting(t *testing.T) {
	run := func(itemWords func([]int) int64) int64 {
		m := sim.NewDefault(2)
		res := m.Run(func(pe *sim.PE) {
			c := sim.World(pe)
			out := make([][][]int, 2)
			out[1-c.Rank()] = [][]int{{1, 2, 3}}
			AlltoallvDirectFunc(c, out, itemWords)
		})
		return res.MaxTime
	}
	light := run(func([]int) int64 { return 1 })
	heavy := run(func(ch []int) int64 { return 1000 })
	if heavy <= light {
		t.Errorf("word accounting ignored: light=%d heavy=%d", light, heavy)
	}
}

// TestReduceNonCommutativeOrder: the combine order is deterministic, so
// a non-commutative op gives reproducible (if unusual) results.
func TestReduceNonCommutativeOrder(t *testing.T) {
	const p = 7
	run := func() []int {
		m := sim.NewDefault(p)
		var got []int
		m.Run(func(pe *sim.PE) {
			c := sim.World(pe)
			concat := func(a, b []int) []int { return append(append([]int(nil), a...), b...) }
			res, ok := Reduce(c, 0, []int{c.Rank()}, 1, concat)
			if ok {
				got = res
			}
		})
		return got
	}
	a, b := run(), run()
	if len(a) != p || len(b) != p {
		t.Fatalf("lost contributions: %v %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("combine order not deterministic: %v vs %v", a, b)
		}
	}
}

// TestBarrierReallySynchronizes: no PE may pass the barrier before the
// slowest PE arrives.
func TestBarrierReallySynchronizes(t *testing.T) {
	const p = 9
	m := sim.NewDefault(p)
	const slowest = 1_000_000
	m.Run(func(pe *sim.PE) {
		c := sim.World(pe)
		if pe.Rank() == p/2 {
			pe.Charge(slowest)
		}
		Barrier(c)
		if pe.Now() < slowest {
			t.Errorf("PE %d escaped the barrier at %d < %d", pe.Rank(), pe.Now(), slowest)
		}
	})
}

// TestGathervRoots: gather works for every root.
func TestGathervRoots(t *testing.T) {
	const p = 5
	for root := 0; root < p; root++ {
		m := sim.NewDefault(p)
		m.Run(func(pe *sim.PE) {
			c := sim.World(pe)
			all := Gatherv(c, root, []int{pe.Rank() * 10})
			if c.Rank() == root {
				for r := 0; r < p; r++ {
					if len(all[r]) != 1 || all[r][0] != r*10 {
						t.Errorf("root %d: chunk %d = %v", root, r, all[r])
					}
				}
			} else if all != nil {
				t.Errorf("non-root %d got data", c.Rank())
			}
		})
	}
}

// TestBcastBigPayloadCost: broadcasting ℓ words costs Θ(ℓ·β) per hop,
// not per byte of Go object overhead — clock growth must scale with the
// declared word count.
func TestBcastBigPayloadCost(t *testing.T) {
	run := func(words int64) int64 {
		m := sim.New(4, sim.FlatTopology(), sim.DefaultCost())
		res := m.Run(func(pe *sim.PE) {
			Bcast(sim.World(pe), 0, "payload", words)
		})
		return res.MaxTime
	}
	small, big := run(10), run(100_000)
	if big < 10*small {
		t.Errorf("β term not scaling: %d vs %d", small, big)
	}
}
