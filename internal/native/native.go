// Package native is the shared-memory backend of comm.Communicator:
// a machine of p PEs realized as p goroutines of the current process,
// exchanging data through channel-signalled mailboxes, with zero
// virtual-time bookkeeping. The identical generic algorithms that run
// on the simulator (internal/sim) sort real data at real multicore
// speed here — cost annotations are no-ops and the phase statistics
// read the wall clock instead of a virtual one.
//
// Messages hand over payload ownership by pointer (slices are not
// copied), which is exactly the shared-memory advantage the backend
// exists to exploit; the collectives' read-only conventions (see
// internal/coll) make that safe.
package native

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"pmsort/internal/comm"
	"pmsort/internal/obs"
)

// Machine is a shared-memory machine of p PEs (goroutines).
type Machine struct {
	p     int
	pes   []*pe
	epoch time.Time

	worldOnce sync.Once
	world     []int

	// rec holds the per-PE obs recorders when EnableObs was called
	// (nil otherwise — the disabled fast path).
	rec []*obs.Recorder
}

// pe is one processing element. Its mailbox is drained only by the
// goroutine running the PE.
type pe struct {
	rank int
	m    *Machine
	mbox *mailbox
}

// New creates a machine with p PEs.
func New(p int) *Machine {
	if p <= 0 {
		panic(fmt.Sprintf("native: invalid machine size p=%d", p))
	}
	m := &Machine{p: p}
	m.pes = make([]*pe, p)
	for i := range m.pes {
		m.pes[i] = &pe{rank: i, m: m, mbox: newMailbox()}
	}
	return m
}

// P returns the number of PEs.
func (m *Machine) P() int { return m.p }

// worldRanks returns the shared 0..p-1 rank slice, built lazily once.
func (m *Machine) worldRanks() []int {
	m.worldOnce.Do(func() {
		m.world = make([]int, m.p)
		for i := range m.world {
			m.world[i] = i
		}
	})
	return m.world
}

// EnableObs attaches one obs recorder per PE, timestamped by the wall
// clock relative to the run epoch — the same clock the phase statistics
// read — and labels the PE goroutines for CPU profiles.
func (m *Machine) EnableObs() {
	if m.rec != nil {
		return
	}
	m.rec = make([]*obs.Recorder, m.p)
	for i := range m.rec {
		m.rec[i] = obs.NewRecorder(i, m.p, func() int64 { return time.Since(m.epoch).Nanoseconds() })
	}
}

// ObsRecorder returns the given PE's obs recorder (nil when EnableObs
// was not called).
func (m *Machine) ObsRecorder(rank int) *obs.Recorder {
	if m.rec == nil {
		return nil
	}
	return m.rec[rank]
}

// Run executes fn once per PE, each on its own goroutine, handing every
// PE its world communicator. It returns the wall-clock makespan of the
// whole program. If any PE panics, Run re-panics on the calling
// goroutine with the first panic observed.
func (m *Machine) Run(fn func(c comm.Communicator)) time.Duration {
	m.epoch = time.Now()
	var wg sync.WaitGroup
	wg.Add(m.p)
	panics := make([]any, m.p)
	for i := 0; i < m.p; i++ {
		go func(p *pe) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[p.rank] = fmt.Sprintf("PE %d: %v", p.rank, r)
				}
			}()
			if m.rec != nil {
				// Label the PE goroutine so CPU profiles attribute samples
				// per rank; only when observability is on — labels cost an
				// allocation per goroutine.
				pprof.Do(context.Background(), pprof.Labels("pmsort_rank", strconv.Itoa(p.rank)), func(context.Context) {
					fn(&Comm{pe: p, ranks: m.worldRanks(), me: p.rank})
				})
				return
			}
			fn(&Comm{pe: p, ranks: m.worldRanks(), me: p.rank})
		}(m.pes[i])
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	return time.Since(m.epoch)
}
