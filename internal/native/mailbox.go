package native

import "sync"

// envelope is an in-flight point-to-point message.
type envelope struct {
	payload any
	words   int64
}

// mbKey identifies a (source rank, tag) message queue.
type mbKey struct {
	from, tag int
}

// mailbox is a PE's incoming message store. Messages are matched by
// (source, tag) and are FIFO within each such pair — the same matching
// contract as the simulator's mailbox. Senders never block (eager,
// unbounded buffering); the single receiver — the goroutine running the
// owning PE — parks on a capacity-1 wake channel between queue scans.
type mailbox struct {
	mu     sync.Mutex
	queues map[mbKey][]envelope
	// wake carries "something arrived" tokens to the single receiver.
	// put sets it after enqueuing, so a receiver that found its queue
	// empty and then blocks is always woken; spurious tokens only cause
	// one extra scan.
	wake chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{
		queues: make(map[mbKey][]envelope),
		wake:   make(chan struct{}, 1),
	}
}

// put enqueues a message from the given source rank under the given tag.
func (mb *mailbox) put(from, tag int, e envelope) {
	k := mbKey{from, tag}
	mb.mu.Lock()
	mb.queues[k] = append(mb.queues[k], e)
	mb.mu.Unlock()
	select {
	case mb.wake <- struct{}{}:
	default: // token already pending; the receiver will rescan anyway
	}
}

// take blocks until a message from the given source with the given tag
// is available and dequeues it. Must only be called by the owning PE's
// goroutine.
func (mb *mailbox) take(from, tag int) envelope {
	k := mbKey{from, tag}
	for {
		mb.mu.Lock()
		if q := mb.queues[k]; len(q) > 0 {
			e := q[0]
			if len(q) == 1 {
				delete(mb.queues, k)
			} else {
				// Shift instead of re-slicing so the backing array does
				// not pin already-consumed payloads.
				copy(q, q[1:])
				q[len(q)-1] = envelope{}
				mb.queues[k] = q[:len(q)-1]
			}
			mb.mu.Unlock()
			return e
		}
		mb.mu.Unlock()
		<-mb.wake
	}
}

// pending reports the number of undelivered messages (for leak tests).
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := 0
	for _, q := range mb.queues {
		n += len(q)
	}
	return n
}
