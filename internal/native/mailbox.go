package native

import "sync"

// envelope is an in-flight point-to-point message.
type envelope struct {
	payload any
	words   int64
}

// mbKey identifies a (source rank, tag) message queue.
type mbKey struct {
	from, tag int
}

// queue is one (source, tag) FIFO plus the wait channel of a receiver
// parked on exactly this key. Queue structs persist for the mailbox's
// lifetime once created (the key space is bounded by #peers × #tags),
// so steady-state puts and takes allocate nothing but the slice append.
type queue struct {
	items []envelope
	// wait is non-nil iff the receiver is parked on this key; capacity
	// 1, so the signalling put never blocks inside the critical path.
	wait chan struct{}
}

// mailbox is a PE's incoming message store. Messages are matched by
// (source, tag) and are FIFO within each such pair — the same matching
// contract as the simulator's mailbox. Senders never block (eager,
// unbounded buffering). The single receiver — the goroutine running
// the owning PE — parks on a per-(source, tag) wait channel, so a put
// wakes the receiver only when it delivers to the exact queue being
// waited on: unrelated arrivals (the fan-in of a collective, say)
// neither wake it nor force a rescan. The previous design used one
// machine-wide wake token, which turned every p-sender fan-in into
// O(p) spurious wakeups with a full lock round-trip each.
type mailbox struct {
	mu     sync.Mutex
	queues map[mbKey]*queue
	// park is the single receiver's reusable wait channel. Safe to
	// share across parks: a put takes ownership of a posted q.wait
	// under the lock and sends exactly once, and the receiver only
	// returns from a park after that send — so the channel is always
	// drained and unreferenced before it is posted again.
	park chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{queues: make(map[mbKey]*queue), park: make(chan struct{}, 1)}
}

func (mb *mailbox) queueOf(k mbKey) *queue {
	q := mb.queues[k]
	if q == nil {
		q = &queue{}
		mb.queues[k] = q
	}
	return q
}

// put enqueues a message from the given source rank under the given tag
// and wakes the receiver iff it is parked on exactly this (from, tag).
func (mb *mailbox) put(from, tag int, e envelope) {
	mb.mu.Lock()
	q := mb.queueOf(mbKey{from, tag})
	q.items = append(q.items, e)
	wait := q.wait
	q.wait = nil
	mb.mu.Unlock()
	if wait != nil {
		wait <- struct{}{} // capacity 1 and ownership was taken under the lock: never blocks
	}
}

// take blocks until a message from the given source with the given tag
// is available and dequeues it. Must only be called by the owning PE's
// goroutine.
func (mb *mailbox) take(from, tag int) envelope {
	k := mbKey{from, tag}
	for {
		mb.mu.Lock()
		q := mb.queueOf(k)
		if items := q.items; len(items) > 0 {
			e := items[0]
			// Shift instead of re-slicing so the backing array does not
			// pin already-consumed payloads and stays reusable.
			copy(items, items[1:])
			items[len(items)-1] = envelope{}
			q.items = items[:len(items)-1]
			mb.mu.Unlock()
			return e
		}
		q.wait = mb.park
		mb.mu.Unlock()
		<-mb.park
	}
}

// pending reports the number of undelivered messages (for leak tests).
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := 0
	for _, q := range mb.queues {
		n += len(q.items)
	}
	return n
}
