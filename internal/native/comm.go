package native

import (
	"fmt"

	"pmsort/internal/comm"
	"pmsort/internal/obs"
)

// Comm is the native backend's communicator: an ordered group of
// goroutine-PEs with this PE's position in it. Splitting is purely
// local, exactly like the simulator's.
type Comm struct {
	pe    *pe
	ranks []int // global ranks of the members, ascending by construction
	me    int   // index of pe in ranks
}

var _ comm.Communicator = (*Comm)(nil)

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.ranks) }

// Rank returns this PE's group-relative rank.
func (c *Comm) Rank() int { return c.me }

// GlobalRank translates a group-relative rank to a machine rank.
func (c *Comm) GlobalRank(r int) int { return c.ranks[r] }

// Send hands the payload to the member with group-relative rank `to`.
// The payload moves by reference — no copy — and ownership transfers to
// the receiver. words is ignored (no cost model).
func (c *Comm) Send(to, tag int, payload any, words int64) {
	if to < 0 || to >= len(c.ranks) {
		panic(fmt.Sprintf("native: send from PE %d to invalid group rank %d (group size %d)", c.pe.rank, to, len(c.ranks)))
	}
	c.pe.m.pes[c.ranks[to]].mbox.put(c.pe.rank, tag, envelope{payload: payload, words: words})
}

// Recv blocks until the message with the given tag from the member with
// group-relative rank `from` arrives.
func (c *Comm) Recv(from, tag int) (any, int64) {
	e := c.pe.mbox.take(c.ranks[from], tag)
	return e.payload, e.words
}

// SplitEqual partitions the members into `groups` balanced contiguous
// groups and returns this PE's group communicator and group index.
func (c *Comm) SplitEqual(groups int) (comm.Communicator, int) {
	starts, ok := comm.EqualStarts(len(c.ranks), groups)
	if !ok {
		panic(fmt.Sprintf("native: SplitEqual(%d) on communicator of size %d", groups, len(c.ranks)))
	}
	return c.SplitStarts(starts)
}

// SplitStarts partitions the members into contiguous groups given by
// starts (see comm.Communicator). Returns this PE's group communicator
// and group index.
func (c *Comm) SplitStarts(starts []int) (comm.Communicator, int) {
	lo, hi, g, ok := comm.SplitBounds(starts, len(c.ranks), c.me)
	if !ok {
		panic(fmt.Sprintf("native: SplitStarts with invalid bounds %v for size %d rank %d", starts, len(c.ranks), c.me))
	}
	return &Comm{pe: c.pe, ranks: c.ranks[lo:hi], me: c.me - lo}, g
}

// SplitModulo partitions the members into m groups by rank modulo m and
// returns this PE's group communicator and group index.
func (c *Comm) SplitModulo(m int) (comm.Communicator, int) {
	ranks, me, g, ok := comm.ModuloRanks(c.ranks, c.me, m)
	if !ok {
		panic(fmt.Sprintf("native: SplitModulo(%d) on communicator of size %d", m, len(c.ranks)))
	}
	return &Comm{pe: c.pe, ranks: ranks, me: me}, g
}

// Subset returns the communicator of members [lo, hi). This PE must be
// a member of the subset.
func (c *Comm) Subset(lo, hi int) comm.Communicator {
	if c.me < lo || c.me >= hi {
		panic(fmt.Sprintf("native: Subset(%d,%d) does not contain rank %d", lo, hi, c.me))
	}
	return &Comm{pe: c.pe, ranks: c.ranks[lo:hi], me: c.me - lo}
}

// Cost returns the wall-clock hook: annotations are free, Now reads
// real elapsed time since the Run started.
func (c *Comm) Cost() comm.Cost { return comm.WallClock{Epoch: c.pe.m.epoch} }

// ObsRecorder returns this PE's obs recorder (nil unless the machine's
// EnableObs was called) — the obs.Source hook; split communicators
// share the PE and so stay traced.
func (c *Comm) ObsRecorder() *obs.Recorder { return c.pe.m.ObsRecorder(c.pe.rank) }
