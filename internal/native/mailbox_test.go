package native

import (
	"sync"
	"testing"
)

// TestMailboxTargetedWake pins the per-(source, tag) wake contract: a
// receiver parked on one key is woken by a put on that key even when a
// storm of unrelated puts lands first, and FIFO order per key survives
// concurrent senders.
func TestMailboxTargetedWake(t *testing.T) {
	mb := newMailbox()
	const storm = 1000
	done := make(chan envelope)
	go func() {
		done <- mb.take(7, 42)
	}()
	var wg sync.WaitGroup
	// Unrelated arrivals: other sources, other tags.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < storm; i++ {
				mb.put(s, 1, envelope{payload: i})
			}
		}(s)
	}
	wg.Wait()
	select {
	case e := <-done:
		t.Fatalf("receiver woke with %v before its message arrived", e)
	default:
	}
	mb.put(7, 42, envelope{payload: "hit"})
	if e := <-done; e.payload != "hit" {
		t.Fatalf("got %v, want the (7,42) message", e.payload)
	}
	if got := mb.pending(); got != 4*storm {
		t.Fatalf("pending = %d, want %d unrelated messages", got, 4*storm)
	}
	// Drain the storm: FIFO within each (source, tag).
	for s := 0; s < 4; s++ {
		for i := 0; i < storm; i++ {
			if e := mb.take(s, 1); e.payload != i {
				t.Fatalf("source %d: message %d out of order: %v", s, i, e.payload)
			}
		}
	}
	if got := mb.pending(); got != 0 {
		t.Fatalf("pending = %d after drain", got)
	}
}

// BenchmarkMailboxFanIn is the wake-storm regression benchmark: p-1
// senders each deliver msgs messages to one receiver, which takes them
// source by source — the receive pattern of every gather/all-to-all
// collective. With the old machine-wide wake token, every unrelated
// arrival woke the parked receiver into a futile lock round-trip
// (O(p·msgs) spurious wakeups); the per-(source, tag) wait keeps wakes
// exactly one per blocking take.
func BenchmarkMailboxFanIn(b *testing.B) {
	const senders = 16
	const msgs = 64
	mb := newMailbox()
	payload := make([]uint64, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		wg.Add(senders)
		for s := 0; s < senders; s++ {
			go func(s int) {
				defer wg.Done()
				for m := 0; m < msgs; m++ {
					mb.put(s, 5, envelope{payload: payload, words: int64(len(payload))})
				}
			}(s)
		}
		// The receiver drains source by source, like a gather: while it
		// is parked on source s, the other senders' arrivals must not
		// wake it.
		for s := 0; s < senders; s++ {
			for m := 0; m < msgs; m++ {
				mb.take(s, 5)
			}
		}
		wg.Wait()
	}
}
