package native

import (
	"testing"

	"pmsort/internal/comm"
)

// TestRing passes a token around the full ring: point-to-point matching
// and group-relative addressing.
func TestRing(t *testing.T) {
	const p = 5
	m := New(p)
	m.Run(func(c comm.Communicator) {
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() + c.Size() - 1) % c.Size()
		c.Send(next, 1, c.Rank(), 1)
		got, _ := c.Recv(prev, 1)
		if got.(int) != prev {
			t.Errorf("rank %d: got %v from ring, want %d", c.Rank(), got, prev)
		}
	})
	for i := 0; i < p; i++ {
		if n := m.pes[i].mbox.pending(); n != 0 {
			t.Errorf("PE %d: %d undelivered messages after Run", i, n)
		}
	}
}

// TestTagMatching receives messages in the opposite order of their
// arrival: matching is by (source, tag), not arrival order, and FIFO
// within one (source, tag) pair.
func TestTagMatching(t *testing.T) {
	m := New(2)
	m.Run(func(c comm.Communicator) {
		other := 1 - c.Rank()
		c.Send(other, 10, "a1", 1)
		c.Send(other, 10, "a2", 1)
		c.Send(other, 20, "b", 1)
		if got, _ := c.Recv(other, 20); got.(string) != "b" {
			t.Errorf("rank %d: tag 20 got %v", c.Rank(), got)
		}
		if got, _ := c.Recv(other, 10); got.(string) != "a1" {
			t.Errorf("rank %d: tag 10 first got %v", c.Rank(), got)
		}
		if got, _ := c.Recv(other, 10); got.(string) != "a2" {
			t.Errorf("rank %d: tag 10 second got %v", c.Rank(), got)
		}
	})
}

// TestSplitGeometry mirrors the simulator's split semantics: the two
// backends must agree on group shapes or algorithms diverge.
func TestSplitGeometry(t *testing.T) {
	m := New(10)
	m.Run(func(c comm.Communicator) {
		sub, g := c.SplitEqual(3)
		wantSizes := []int{4, 3, 3}
		if sub.Size() != wantSizes[g] {
			t.Errorf("rank %d: group %d size %d, want %d", c.Rank(), g, sub.Size(), wantSizes[g])
		}
		if sub.GlobalRank(sub.Rank()) != c.Rank() {
			t.Errorf("rank %d: wrong self mapping", c.Rank())
		}
		col, cg := c.SplitModulo(3)
		if cg != c.Rank()%3 {
			t.Errorf("rank %d: modulo group %d", c.Rank(), cg)
		}
		for i := 1; i < col.Size(); i++ {
			if col.GlobalRank(i)-col.GlobalRank(i-1) != 3 {
				t.Errorf("rank %d: column stride broken", c.Rank())
			}
		}
		if c.Rank() >= 3 {
			ss := c.Subset(3, 10)
			if ss.Size() != 7 || ss.GlobalRank(0) != 3 {
				t.Errorf("Subset wrong: size=%d first=%d", ss.Size(), ss.GlobalRank(0))
			}
		}
	})
}

// TestCostHook: annotations are free, the clock is the wall clock, and
// BarrierSync passes entry through.
func TestCostHook(t *testing.T) {
	m := New(1)
	m.Run(func(c comm.Communicator) {
		h := c.Cost()
		t0 := h.Now()
		h.Ops(1 << 40) // must not take 1<<40 ns
		h.SortOps(1 << 40)
		h.Scan(1 << 40)
		h.PartitionOps(1 << 40)
		if h.BarrierSync(12345) != 12345 {
			t.Error("BarrierSync must return entry unchanged")
		}
		if h.Now() < t0 {
			t.Error("wall clock went backwards")
		}
	})
}

// TestRunPanicPropagates: a panicking PE surfaces on the caller.
func TestRunPanicPropagates(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic to propagate from Run")
		}
	}()
	m.Run(func(c comm.Communicator) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
}
