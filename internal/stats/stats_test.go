package stats

import (
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{[]int64{5}, 5},
		{[]int64{3, 1}, 1},
		{[]int64{3, 1, 2}, 2},
		{[]int64{9, 1, 8, 2}, 2},
		{[]int64{5, 4, 3, 2, 1}, 3},
	}
	for _, tc := range cases {
		if got := Median(tc.in); got != tc.want {
			t.Errorf("Median(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []int64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int64{7, 1, 5, 3, 9})
	if s.Min != 1 || s.Median != 5 || s.Max != 9 || s.Q1 != 3 || s.Q3 != 7 {
		t.Errorf("Summarize = %+v", s)
	}
	one := Summarize([]int64{4})
	if one.Min != 4 || one.Max != 4 || one.Median != 4 {
		t.Errorf("single-element summary = %+v", one)
	}
}

func TestSummaryOrderingProperty(t *testing.T) {
	if err := quick.Check(func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianF(t *testing.T) {
	if got := MedianF([]float64{2.5, 1.5, 3.5}); got != 2.5 {
		t.Errorf("MedianF = %f", got)
	}
}

func TestMaxI64(t *testing.T) {
	if got := MaxI64([]int64{3, 9, 1}); got != 9 {
		t.Errorf("MaxI64 = %d", got)
	}
}

func TestMedianPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Median(nil)
}
