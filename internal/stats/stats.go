// Package stats provides the small summary statistics used by the
// experiment harness (medians over repetitions, five-number summaries
// for the Figure 12 distributions).
package stats

import "sort"

// Median returns the median of xs (the lower-middle element for even
// lengths, matching "median of five measurements" in §7.2). Panics on
// empty input.
func Median(xs []int64) int64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// Summary is a five-number summary of a sample.
type Summary struct {
	Min, Q1, Median, Q3, Max int64
}

// Summarize computes the five-number summary (nearest-rank quartiles).
func Summarize(xs []int64) Summary {
	if len(xs) == 0 {
		panic("stats: summary of empty slice")
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	return Summary{
		Min:    s[0],
		Q1:     s[(n-1)/4],
		Median: s[(n-1)/2],
		Q3:     s[(n-1)*3/4],
		Max:    s[n-1],
	}
}

// MedianF returns the median of float64s.
func MedianF(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

// MaxI64 returns the maximum.
func MaxI64(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
