package delivery

import (
	"sync"
	"testing"
	"time"

	"pmsort/internal/comm"
	"pmsort/internal/native"
	"pmsort/internal/netcomm"
)

// degenerateCases are the Deliver inputs most likely to break piece
// bookkeeping: nothing to move at all, empty pieces interleaved with
// large ones (quota boundaries collapse to zero-width spans), and
// single-PE groups (every group's balanced share is the whole group
// total).
var degenerateCases = []struct {
	name string
	p, r int
	size func(s, j int) int
}{
	{"all-empty", 6, 4, func(s, j int) int { return 0 }},
	{"zero-mixed-with-large", 6, 3, func(s, j int) int {
		if (s+j)%3 == 0 {
			return 200
		}
		return 0
	}},
	{"single-pe-groups", 5, 5, func(s, j int) int { return (s*7 + j) % 9 }},
	{"one-group", 4, 1, func(s, j int) int { return 25 * (s % 2) }},
	{"one-pe-one-group", 1, 1, func(s, j int) int { return 13 }},
}

// TestDeliverDegenerateAllBackends drives every degenerate input
// through every strategy on all three backends — simulated, native
// shared-memory, and a real TCP loopback cluster — and checks the full
// conservation/balance contract each time. The backends must not
// merely survive: their group geometry and quotas must agree exactly.
func TestDeliverDegenerateAllBackends(t *testing.T) {
	for _, tc := range degenerateCases {
		pieces := makePieces(tc.p, tc.r, tc.size)
		for _, strat := range allStrategies {
			opt := Options{Strategy: strat, Seed: 7}
			t.Run(tc.name+"/"+strat.String()+"/sim", func(t *testing.T) {
				recv, _ := runDeliver(t, tc.p, pieces, opt)
				checkDelivery(t, tc.p, tc.r, pieces, recv)
			})
			t.Run(tc.name+"/"+strat.String()+"/native", func(t *testing.T) {
				recv := make([][][]elem, tc.p)
				native.New(tc.p).Run(func(c comm.Communicator) {
					recv[c.Rank()] = Deliver(c, pieces[c.Rank()], opt)
				})
				checkDelivery(t, tc.p, tc.r, pieces, recv)
			})
		}
		// TCP: one loopback cluster per case, reused across strategies
		// (rendezvous dominates; Run composes collectively).
		t.Run(tc.name+"/tcp", func(t *testing.T) {
			recv := make([][][]elem, tc.p)
			var mu sync.Mutex
			err := netcomm.LocalCluster(tc.p, 20*time.Second, func(m *netcomm.Machine, rank int) error {
				for _, strat := range allStrategies {
					opt := Options{Strategy: strat, Seed: 7}
					if _, err := m.Run(func(c comm.Communicator) {
						out := Deliver(c, pieces[rank], opt)
						mu.Lock()
						recv[rank] = out
						mu.Unlock()
					}); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// The last strategy's result is still a full delivery; check it.
			checkDelivery(t, tc.p, tc.r, pieces, recv)
		})
	}
}

// TestDeliverDegenerateBackendAgreement pins byte-level agreement on
// chunk *contents* between backends for the zero-mixed case: the TCP
// backend decodes copies, and those copies must carry exactly the
// elements the in-process backends pass by reference.
func TestDeliverDegenerateBackendAgreement(t *testing.T) {
	tc := degenerateCases[1] // zero-mixed-with-large
	pieces := makePieces(tc.p, tc.r, tc.size)
	opt := Options{Strategy: Deterministic, Seed: 3}

	natTotals := make([]map[elem]int, tc.p)
	native.New(tc.p).Run(func(c comm.Communicator) {
		natTotals[c.Rank()] = countElems(Deliver(c, pieces[c.Rank()], opt))
	})
	tcpTotals := make([]map[elem]int, tc.p)
	var mu sync.Mutex
	err := netcomm.LocalCluster(tc.p, 20*time.Second, func(m *netcomm.Machine, rank int) error {
		_, err := m.Run(func(c comm.Communicator) {
			got := countElems(Deliver(c, pieces[rank], opt))
			mu.Lock()
			tcpTotals[rank] = got
			mu.Unlock()
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < tc.p; rank++ {
		if len(natTotals[rank]) != len(tcpTotals[rank]) {
			t.Fatalf("rank %d: native holds %d distinct elements, tcp %d",
				rank, len(natTotals[rank]), len(tcpTotals[rank]))
		}
		for e, n := range natTotals[rank] {
			if tcpTotals[rank][e] != n {
				t.Fatalf("rank %d: element %+v count native %d, tcp %d", rank, e, n, tcpTotals[rank][e])
			}
		}
	}
}

func countElems(chunks [][]elem) map[elem]int {
	out := make(map[elem]int)
	for _, ch := range chunks {
		for _, e := range ch {
			out[e]++
		}
	}
	return out
}
