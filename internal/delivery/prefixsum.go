package delivery

import (
	"pmsort/internal/coll"
	"pmsort/internal/comm"
	"pmsort/internal/prng"
)

const tagPermScan = 0x6d0002

// permutedScanTotal computes the vector-valued exclusive prefix sum over
// the members enumerated in the order of a pseudorandom permutation π of
// the PE numbering (§4.3 stage 1) together with the totals. perm == nil
// degenerates to rank order. The dissemination schedule runs on virtual
// ranks v = π(rank); neighbours are translated back through π⁻¹, so the
// cost stays O((α + r·β) log p).
func permutedScanTotal(c comm.Communicator, vec []int64, perm *prng.Permutation) (prefix, total []int64) {
	p := c.Size()
	r := len(vec)
	if p == 1 {
		return make([]int64, r), append([]int64(nil), vec...)
	}
	v := c.Rank()
	rankOf := func(virtual int) int { return virtual }
	if perm != nil {
		v = int(perm.Apply(uint64(c.Rank())))
		rankOf = func(virtual int) int { return int(perm.Invert(uint64(virtual))) }
	}
	incl := vec
	prefix = make([]int64, r)
	for d := 1; d < p; d <<= 1 {
		if v+d < p {
			c.Send(rankOf(v+d), tagPermScan, incl, int64(r))
		}
		if v-d >= 0 {
			pl, _ := c.Recv(rankOf(v-d), tagPermScan)
			t := pl.([]int64)
			prefix = addVec(t, prefix)
			incl = addVec(t, incl)
		}
	}
	// The PE with the highest virtual rank holds the totals.
	total = coll.Bcast(c, rankOf(p-1), incl, int64(r))
	return prefix, total
}

// senderPerm returns the permutation of the PE numbering used for the
// prefix-sum enumeration, or nil for the Simple strategy.
func senderPerm(c comm.Communicator, opt Options) *prng.Permutation {
	if opt.Strategy == Simple || c.Size() == 1 {
		return nil
	}
	return prng.NewPermutation(uint64(c.Size()), opt.Seed^0x5eed5eed)
}

// planPrefixSum builds the outboxes for the Simple and Randomized
// strategies: a vector-valued prefix sum over the piece sizes labels each
// piece with a position range inside its group, and positions map to the
// group's PEs by balanced quota; each piece is cut at quota boundaries —
// at most two targets per piece when pieces are no larger than the
// per-PE quota. Randomized enumerates the senders in pseudorandom order,
// which breaks up runs of consecutively numbered PEs contributing tiny
// pieces (the §4.3/Fig. 3 worst case).
func planPrefixSum[E any](c comm.Communicator, pieces [][]E, opt Options) [][]chunk[E] {
	r := len(pieces)
	p := c.Size()
	gg := geometry(p, r)

	sizes := make([]int64, r)
	for j, piece := range pieces {
		sizes[j] = int64(len(piece))
	}
	prefix, total := permutedScanTotal(c, sizes, senderPerm(c, opt))

	out := make([][]chunk[E], p)
	for j, piece := range pieces {
		if len(piece) == 0 {
			continue
		}
		g := gg.size(j)
		base := prefix[j]
		splitRange(base, base+sizes[j], total[j], g, func(slot int, from, to int64) {
			target := gg.start(j) + slot
			out[target] = append(out[target], chunk[E]{data: piece[from-base : to-base]})
		})
	}
	c.Cost().Scan(int64(r))
	return out
}
