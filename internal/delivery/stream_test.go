package delivery

import (
	"fmt"
	"reflect"
	"testing"

	"pmsort/internal/comm"
	"pmsort/internal/native"
	"pmsort/internal/prng"
	"pmsort/internal/sim"
)

// TestDeliverStreamMatchesDeliver pins the streaming delivery contract
// on both in-process backends, for every strategy and exchange: emit
// fires exactly once per source, and re-ordering the emitted chunk
// lists by source and concatenating reproduces Deliver's result
// exactly — including the coalescing of adjacent spans, which only the
// zero-copy backends produce.
func TestDeliverStreamMatchesDeliver(t *testing.T) {
	const p = 6
	for _, strat := range []Strategy{Simple, Randomized, RandomizedAdvanced, Deterministic} {
		for _, exch := range []Exchange{OneFactor, Direct} {
			for _, backend := range []string{"sim", "native"} {
				t.Run(fmt.Sprintf("%v/%v/%s", strat, exch, backend), func(t *testing.T) {
					opt := Options{Strategy: strat, Exchange: exch, Seed: 0xd15c}
					r := 3
					locals := make([][]uint64, p)
					rng := prng.New(42)
					for rank := range locals {
						n := int(rng.Next()%64) + 1
						loc := make([]uint64, n)
						for i := range loc {
							loc[i] = rng.Next()
						}
						locals[rank] = loc
					}
					cut := func(data []uint64) [][]uint64 {
						pieces := make([][]uint64, r)
						prev := 0
						for j := 0; j < r-1; j++ {
							next := prev + (len(data)-prev)/(r-j)
							pieces[j] = data[prev:next]
							prev = next
						}
						pieces[r-1] = data[prev:]
						return pieces
					}

					batch := make([][][]uint64, p)
					streamed := make([][][]uint64, p)
					run := func(c comm.Communicator, rank int) {
						// Two collective deliveries back to back: the batch
						// reference, then the streamed one, collected in
						// rank order like the sorters do.
						batch[rank] = Deliver(c, cut(locals[rank]), opt)
						bySrc := make([][][]uint64, p)
						seen := make([]int, p)
						DeliverStream(c, cut(locals[rank]), opt, func(src int, chunks [][]uint64) {
							seen[src]++
							bySrc[src] = chunks
						})
						for src, n := range seen {
							if n != 1 {
								t.Errorf("rank %d: source %d emitted %d times", rank, src, n)
							}
						}
						var got [][]uint64
						for _, chs := range bySrc {
							got = append(got, chs...)
						}
						streamed[rank] = got
					}
					switch backend {
					case "sim":
						sim.NewDefault(p).Run(func(pe *sim.PE) { run(sim.World(pe), pe.Rank()) })
					case "native":
						native.New(p).Run(func(c comm.Communicator) { run(c, c.Rank()) })
					}
					for rank := 0; rank < p; rank++ {
						if !reflect.DeepEqual(batch[rank], streamed[rank]) {
							t.Errorf("rank %d: batch %v != streamed %v", rank, batch[rank], streamed[rank])
						}
					}
				})
			}
		}
	}
}
