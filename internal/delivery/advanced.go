package delivery

import (
	"math"

	"pmsort/internal/coll"
	"pmsort/internal/comm"
	"pmsort/internal/prng"
)

// delegDesc describes one delegated size-s sub-piece (Appendix A).
type delegDesc struct {
	group int
	size  int64
}

// delegReply returns the group position assigned to a delegated
// sub-piece. Replies travel in the same per-(origin,delegate) order as
// the descriptors, so no ids are needed.
type delegReply struct {
	pos int64
}

// planAdvanced builds outboxes with the advanced randomized algorithm of
// Appendix A:
//
//  1. Pieces larger than s = a·n/(rp) are broken into ⌊x/s⌋ sub-pieces of
//     size s plus a remainder; the remainder and originally-small pieces
//     stay local ("the random permutation of the PE numbers takes care of
//     their random placement").
//  2. The size-s sub-pieces are enumerated globally with a prefix sum and
//     delegated: sub-piece i is announced to PE π(i) mod p for a shared
//     pseudorandom permutation π — only the descriptor moves, not the data.
//  3. Every PE randomly interleaves its local slots and delegated slots
//     per group, a vector-valued prefix sum enumerates the group
//     positions, and delegates reply the assigned positions to the
//     origins.
//  4. Origins then send the actual data to the PEs owning those position
//     ranges, through the permuted PE numbering of the first stage.
func planAdvanced[E any](c comm.Communicator, pieces [][]E, opt Options) [][]chunk[E] {
	r := len(pieces)
	p := c.Size()
	gg := geometry(p, r)
	cost := c.Cost()

	sizes := make([]int64, r)
	for j, piece := range pieces {
		sizes[j] = int64(len(piece))
	}
	_, totals, _ := coll.ScanTotal(c, sizes, int64(r), addVec)
	var n int64
	for _, m := range totals {
		n += m
	}

	// Chunk limit s = a·n/(rp), with the Lemma 6 tuning a ≈
	// (√(1 + r/ln(rp)) − 1)/2 when not overridden.
	a := opt.SplitFactorA
	if a <= 0 {
		a = 0.5 * (math.Sqrt(1+float64(r)/math.Log(float64(r)*float64(p)+2)) - 1)
		if a < 0.5 {
			a = 0.5
		}
	}
	s := int64(a * float64(n) / (float64(r) * float64(p)))
	if s < 1 {
		s = 1
	}

	// Local slots: small pieces and remainders (size, group, offset).
	type slot struct {
		group     int
		size      int64
		local     bool  // true: my own data at pieces[group][off:off+size]
		off       int64 // local: offset into my piece
		delegFrom int   // delegated: origin comm rank
		delegIdx  int   // delegated: index within the (origin,me) stream
	}
	var slots []slot
	// Delegated sub-pieces I am sending out, in global enumeration order.
	type subpiece struct {
		group int
		off   int64
		size  int64
	}
	var mySubs []subpiece
	for j := 0; j < r; j++ {
		x := sizes[j]
		if x == 0 {
			continue
		}
		full := x / s
		rem := x % s
		if full == 0 {
			slots = append(slots, slot{group: j, size: x, local: true, off: 0})
			continue
		}
		for q := int64(0); q < full; q++ {
			mySubs = append(mySubs, subpiece{group: j, off: q * s, size: s})
		}
		if rem > 0 {
			slots = append(slots, slot{group: j, size: rem, local: true, off: full * s})
		}
	}

	// Global enumeration of delegated sub-pieces.
	kLocal := int64(len(mySubs))
	kPrefix, kTotal, ok := coll.ScanTotal(c, kLocal, 1, func(x, y int64) int64 { return x + y })
	if !ok {
		kPrefix = 0
	}
	var perm *prng.Permutation
	if kTotal > 0 {
		perm = prng.NewPermutation(uint64(kTotal), opt.Seed^0xa5a5a5a5)
	}
	delegateOf := func(globalIdx int64) int {
		return int(perm.Apply(uint64(globalIdx)) % uint64(p))
	}

	// Announce sub-pieces to their delegates.
	descOut := make([][]delegDesc, p)
	subDelegate := make([]int, len(mySubs))
	subStreamIdx := make([]int, len(mySubs)) // order within the (me,delegate) stream
	for q, sub := range mySubs {
		d := delegateOf(kPrefix + int64(q))
		subDelegate[q] = d
		subStreamIdx[q] = len(descOut[d])
		descOut[d] = append(descOut[d], delegDesc{group: sub.group, size: sub.size})
	}
	descIn := coll.Alltoallv1FactorFunc(c, descOut, func(delegDesc) int64 { return 2 })

	// Delegated slots join my local ones.
	for origin, ds := range descIn {
		for i, d := range ds {
			slots = append(slots, slot{group: d.group, size: d.size, delegFrom: origin, delegIdx: i})
		}
	}

	// Random interleaving per PE (Appendix A: "a PE reorders its small
	// pieces and delegated large pieces randomly").
	rng := prng.New(opt.Seed).Fork(uint64(c.Rank()) + 0x51ed)
	for i := len(slots) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		slots[i], slots[j] = slots[j], slots[i]
	}
	cost.Scan(int64(len(slots)))

	// Enumerate group positions of my slots with one vector prefix sum in
	// permuted PE order (stage 1 randomization).
	slotTotals := make([]int64, r)
	for _, sl := range slots {
		slotTotals[sl.group] += sl.size
	}
	base, _ := permutedScanTotal(c, slotTotals, senderPerm(c, opt))
	cursor := append([]int64(nil), base...)
	slotPos := make([]int64, len(slots))
	for i, sl := range slots {
		slotPos[i] = cursor[sl.group]
		cursor[sl.group] += sl.size
	}

	// Reply assigned positions to the origins, preserving per-origin
	// descriptor order.
	replyOut := make([][]delegReply, p)
	for origin := range replyOut {
		replyOut[origin] = make([]delegReply, len(descIn[origin]))
	}
	for i, sl := range slots {
		if !sl.local {
			replyOut[sl.delegFrom][sl.delegIdx] = delegReply{pos: slotPos[i]}
		}
	}
	replyIn := coll.Alltoallv1FactorFunc(c, replyOut, func(delegReply) int64 { return 1 })

	// Assemble outboxes: local slots use locally known positions,
	// delegated sub-pieces use the replied ones.
	out := make([][]chunk[E], p)
	emit := func(j int, piece []E, off, size, pos int64) {
		g := gg.size(j)
		splitRange(pos, pos+size, totals[j], g, func(t int, from, to int64) {
			target := gg.start(j) + t
			lo := off + (from - pos)
			out[target] = append(out[target], chunk[E]{data: piece[lo : lo+(to-from)]})
		})
	}
	for i, sl := range slots {
		if sl.local {
			emit(sl.group, pieces[sl.group], sl.off, sl.size, slotPos[i])
		}
	}
	for q, sub := range mySubs {
		pos := replyIn[subDelegate[q]][subStreamIdx[q]].pos
		emit(sub.group, pieces[sub.group], sub.off, sub.size, pos)
	}
	return out
}
