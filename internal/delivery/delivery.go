// Package delivery implements the data redistribution step of the
// multi-level sorters (paper §4.3): each PE has partitioned its local
// data into r pieces; piece j must move to PE group j (r balanced
// contiguous groups of the communicator), and every PE of a group must
// receive an (almost) equal share of the group's data.
//
// Four strategies are provided:
//
//   - Simple: plain vector-valued prefix sum over piece sizes; piece
//     positions map to group PEs by quota. Sends ≤ 2r messages per PE but
//     can force Ω(p) tiny receives on adversarial inputs (§4.3, Fig. 3).
//   - Randomized: the simple algorithm, but positions map to the group's
//     PEs through a pseudorandom permutation of the PE numbering
//     (the first randomization stage of §4.3).
//   - RandomizedAdvanced: additionally breaks pieces larger than
//     s = a·n/(rp) into chunks of size s, delegates their placement to
//     pseudorandomly chosen PEs, and randomly interleaves delegated
//     pieces with local ones (Appendix A) — O(r) receives w.h.p.
//   - Deterministic: the two-phase small/large algorithm of §4.3.1 —
//     O(r) receives guaranteed.
//
// All strategies preserve perfect balance: a PE of a group holding m
// elements in total receives ⌊m/g⌋ or ⌈m/g⌉ of them.
package delivery

import (
	"fmt"

	"pmsort/internal/coll"
	"pmsort/internal/comm"
	"pmsort/internal/obs"
	"pmsort/internal/wire"
)

// RegisterWire registers the payload types a delivery of E elements can
// put on a serializing backend: the outbox chunks of the bulk exchange
// plus the collective shapes of E. The element-independent descriptor
// and reply types are registered once at init. Idempotent.
func RegisterWire[E any]() {
	wire.Register[chunk[E]]()
	wire.Register[[]chunk[E]]()
	coll.RegisterWire[E]()
}

func init() {
	coll.RegisterWire[desc]()       // deterministic: descriptors gather per group
	coll.RegisterWire[delegDesc]()  // advanced: delegated sub-piece announcements
	coll.RegisterWire[delegReply]() // advanced: assigned positions
	wire.Register[reply]()          // deterministic: manager -> origin spans
}

// Strategy selects the redistribution algorithm.
type Strategy int

const (
	// Simple is the naive prefix-sum algorithm (the paper's experiments
	// use it for random inputs, §7.1).
	Simple Strategy = iota
	// Randomized permutes the PE numbering used by the prefix sum.
	Randomized
	// RandomizedAdvanced additionally splits and delegates large pieces
	// (Appendix A).
	RandomizedAdvanced
	// Deterministic is the small/large two-phase algorithm of §4.3.1.
	Deterministic
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Simple:
		return "simple"
	case Randomized:
		return "randomized"
	case RandomizedAdvanced:
		return "randomized-advanced"
	case Deterministic:
		return "deterministic"
	}
	return "invalid"
}

// Exchange selects the all-to-all implementation for the bulk exchange.
type Exchange int

const (
	// OneFactor uses the 1-factor algorithm [31] and omits empty messages.
	OneFactor Exchange = iota
	// Direct sends one message to every PE, mpich-alltoallv style.
	Direct
)

// Options configures a delivery.
type Options struct {
	Strategy Strategy
	Exchange Exchange
	// Seed drives every pseudorandom choice; deliveries with equal seeds
	// and inputs are bit-identical.
	Seed uint64
	// SplitFactorA is the a in the Appendix A chunk limit s = a·n/(rp);
	// 0 picks the Lemma 6 value a ≈ (√(1+r/ln(rp)) - 1)/2.
	SplitFactorA float64
	// Batch disables the receive-driven streaming exchange: the sorters
	// fall back to the original materialize-then-process bulk exchange
	// (Deliver + post-barrier concatenation/merge) instead of consuming
	// DeliverStream. Streamed and batch deliveries are byte-identical —
	// the torture harness randomizes this knob and asserts it — so Batch
	// exists as the conformance reference and an A/B lever, not as a
	// semantic switch.
	Batch bool
}

// chunk is a contiguous part of one sender's piece travelling through the
// bulk exchange.
type chunk[E any] struct {
	data []E
}

func chunkWords[E any](ch chunk[E]) int64 { return int64(len(ch.data)) + 1 }

// Deliver redistributes pieces[j] (j = 0..r-1) to group j. It must be
// called collectively by all members of c with the same options. The
// result is the list of chunks received by this PE in sender-rank
// order, each a contiguous slice of some sender's (sorted, if the
// sender sorted it) piece. Deliver materializes the full result after
// the exchange; DeliverStream hands out the same chunks as they
// arrive.
func Deliver[E any](c comm.Communicator, pieces [][]E, opt Options) [][]E {
	bySrc := make([][][]E, c.Size())
	DeliverStream(c, pieces, opt, func(src int, chunks [][]E) { bySrc[src] = chunks })
	var recv [][]E
	for _, chunks := range bySrc {
		recv = append(recv, chunks...)
	}
	return recv
}

// DeliverStream is the receive-driven variant of Deliver: same plans,
// same exchange schedule, same coalescing rule, but the received chunk
// lists are handed to emit per sender as that sender's message arrives
// (own chunks first, then the exchange's deterministic receive order),
// so the consumer's per-sender work — copying chunks into place,
// staging merge runs — overlaps the remaining bulk exchange instead of
// waiting behind it. emit is called exactly once per member of c, on
// the calling goroutine, with a possibly empty chunk list; re-ordering
// the emitted lists by src and concatenating reproduces Deliver's
// result exactly (the torture harness asserts byte identity).
//
// Coalescing (shared with Deliver): when a plan cuts one sender's piece
// into several spans that all land here, the zero-copy backends deliver
// sub-slices of one backing array back to back, and re-joining them
// keeps the loser-tree k of the merging sorters at the number of
// *senders*, not the number of plan spans (adversarial plans otherwise
// inflate the merge with tiny runs). Only adjacent entries of one
// sender's chunk list are joined, so merged-run order is unchanged — a
// stable multiway merge of the coalesced list produces byte-identical
// output to the uncoalesced one, which keeps serializing backends
// (whose decoded chunks are never memory-contiguous and thus never
// coalesce) in exact agreement with the zero-copy ones. Empty chunks
// are dropped.
func DeliverStream[E any](c comm.Communicator, pieces [][]E, opt Options, emit func(src int, chunks [][]E)) {
	RegisterWire[E]()
	r := len(pieces)
	if r == 0 || r > c.Size() {
		panic(fmt.Sprintf("delivery: %d pieces for %d PEs", r, c.Size()))
	}
	sp := obs.From(c).Start(obs.SpanDeliver)
	defer sp.End()
	var out [][]chunk[E]
	switch opt.Strategy {
	case Simple, Randomized:
		out = planPrefixSum(c, pieces, opt)
	case RandomizedAdvanced:
		out = planAdvanced(c, pieces, opt)
	case Deterministic:
		out = planDeterministic(c, pieces, opt)
	default:
		panic("delivery: unknown strategy")
	}
	h := func(src int, msg []chunk[E]) { emit(src, coalesce(msg)) }
	if opt.Exchange == Direct {
		coll.AlltoallvDirectStreamFunc(c, out, chunkWords[E], h)
	} else {
		coll.Alltoallv1FactorStreamFunc(c, out, chunkWords[E], h)
	}
}

// coalesce drops empty chunks from one sender's list and re-joins
// memory-adjacent spans (see DeliverStream). Coalescing only within one
// sender's list matters: this PE receives exactly one piece index from
// every sender, so memory adjacency there means consecutive spans of
// that one piece. Across senders adjacency can be coincidental (callers
// may cut all ranks' locals out of one shared array), and joining those
// would fuse unrelated runs.
func coalesce[E any](msg []chunk[E]) [][]E {
	var out [][]E
	for _, ch := range msg {
		d := ch.data
		if len(d) == 0 {
			continue
		}
		if n := len(out); n > 0 && contiguous(out[n-1], d) {
			out[n-1] = out[n-1][:len(out[n-1])+len(d)]
		} else {
			out = append(out, d)
		}
	}
	return out
}

// contiguous reports whether b starts exactly where a ends in the same
// backing array, so a[:len(a)+len(b)] is their concatenation. The
// capacity guard keeps the probe re-slice in bounds and rules out
// distinct allocations (a slice's capacity never extends past its own
// array).
func contiguous[E any](a, b []E) bool {
	return len(a) > 0 && len(b) > 0 &&
		cap(a) >= len(a)+len(b) && &a[:len(a)+1][len(a)] == &b[0]
}

// groupGeometry captures the r balanced contiguous PE groups of c.
type groupGeometry struct {
	r      int
	starts []int // starts[g] = first member rank of group g; len r+1
}

func geometry(p, r int) groupGeometry {
	sizes := comm.GroupSizes(p, r)
	starts := make([]int, r+1)
	for g := 0; g < r; g++ {
		starts[g+1] = starts[g] + sizes[g]
	}
	return groupGeometry{r: r, starts: starts}
}

func (gg groupGeometry) size(g int) int  { return gg.starts[g+1] - gg.starts[g] }
func (gg groupGeometry) start(g int) int { return gg.starts[g] }

// quotaStart returns the first element position owned by slot t when m
// elements are split over g balanced slots (larger slots first).
func quotaStart(t int, m int64, g int) int64 {
	base, rem := m/int64(g), m%int64(g)
	tt := int64(t)
	s := tt * base
	if tt < rem {
		s += tt
	} else {
		s += rem
	}
	return s
}

// slotOf returns the slot owning element position pos under the balanced
// split of m elements over g slots.
func slotOf(pos, m int64, g int) int {
	base, rem := m/int64(g), m%int64(g)
	if base == 0 {
		return int(pos)
	}
	cut := rem * (base + 1)
	if pos < cut {
		return int(pos / (base + 1))
	}
	return int(rem + (pos-cut)/base)
}

// splitRange decomposes positions [lo, hi) into per-slot intervals.
func splitRange(lo, hi, m int64, g int, emit func(slot int, from, to int64)) {
	pos := lo
	for pos < hi {
		t := slotOf(pos, m, g)
		end := quotaStart(t+1, m, g)
		if end > hi {
			end = hi
		}
		emit(t, pos, end)
		pos = end
	}
}

// addVec is the element-wise int64 vector sum (pure).
func addVec(a, b []int64) []int64 {
	out := make([]int64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}
