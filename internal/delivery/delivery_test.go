package delivery

import (
	"math/rand"
	"testing"

	"pmsort/internal/prng"
	"pmsort/internal/sim"
)

// elem tags every element with its origin so conservation is checkable.
type elem struct{ sender, group, idx int }

func makePieces(p, r int, sizeOf func(sender, group int) int) [][][]elem {
	all := make([][][]elem, p)
	for s := 0; s < p; s++ {
		pieces := make([][]elem, r)
		for j := 0; j < r; j++ {
			n := sizeOf(s, j)
			piece := make([]elem, n)
			for i := range piece {
				piece[i] = elem{sender: s, group: j, idx: i}
			}
			pieces[j] = piece
		}
		all[s] = pieces
	}
	return all
}

// runDeliver executes Deliver on p PEs and returns the received chunks
// per PE plus the per-PE received-message counts for the whole delivery.
func runDeliver(t *testing.T, p int, pieces [][][]elem, opt Options) ([][][]elem, []int64) {
	t.Helper()
	m := sim.NewDefault(p)
	recv := make([][][]elem, p)
	msgs := make([]int64, p)
	m.Run(func(pe *sim.PE) {
		pe.ResetCounters()
		c := sim.World(pe)
		recv[pe.Rank()] = Deliver(c, pieces[pe.Rank()], opt)
		msgs[pe.Rank()] = pe.MsgsRecv
	})
	return recv, msgs
}

// checkDelivery verifies conservation (every group's PEs jointly hold
// exactly the elements sent to that group) and balance (each PE holds its
// balanced quota of the group total).
func checkDelivery(t *testing.T, p, r int, pieces [][][]elem, recv [][][]elem) {
	t.Helper()
	gg := geometry(p, r)
	// Group totals and expected multiset per group.
	want := make([]map[elem]bool, r)
	totals := make([]int64, r)
	for j := 0; j < r; j++ {
		want[j] = make(map[elem]bool)
	}
	for s := 0; s < p; s++ {
		for j, piece := range pieces[s] {
			totals[j] += int64(len(piece))
			for _, e := range piece {
				if want[j][e] {
					t.Fatalf("test bug: duplicate element %+v", e)
				}
				want[j][e] = true
			}
		}
	}
	for rank := 0; rank < p; rank++ {
		// Which group does this rank belong to?
		g := 0
		for gg.starts[g+1] <= rank {
			g++
		}
		var got int64
		for _, chunk := range recv[rank] {
			for _, e := range chunk {
				if e.group != g {
					t.Fatalf("PE %d (group %d) received element %+v of group %d", rank, g, e, e.group)
				}
				if !want[g][e] {
					t.Fatalf("PE %d received duplicate/foreign element %+v", rank, e)
				}
				delete(want[g], e)
				got++
			}
		}
		slot := rank - gg.start(g)
		quota := quotaStart(slot+1, totals[g], gg.size(g)) - quotaStart(slot, totals[g], gg.size(g))
		if got != quota {
			t.Fatalf("PE %d (group %d slot %d) received %d elements, quota %d", rank, g, slot, got, quota)
		}
	}
	for j := 0; j < r; j++ {
		if len(want[j]) != 0 {
			t.Fatalf("group %d is missing %d elements", j, len(want[j]))
		}
	}
}

var allStrategies = []Strategy{Simple, Randomized, RandomizedAdvanced, Deterministic}

func TestDeliverRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, p := range []int{2, 4, 8, 12, 16} {
		for _, r := range []int{1, 2, 4, p} {
			if r > p {
				continue
			}
			pieces := makePieces(p, r, func(s, j int) int { return rng.Intn(20) })
			for _, strat := range allStrategies {
				recv, _ := runDeliver(t, p, pieces, Options{Strategy: strat, Seed: 99})
				checkDelivery(t, p, r, pieces, recv)
			}
		}
	}
}

func TestDeliverDirectExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p, r := 8, 4
	pieces := makePieces(p, r, func(s, j int) int { return rng.Intn(15) })
	recv, _ := runDeliver(t, p, pieces, Options{Strategy: Simple, Exchange: Direct, Seed: 1})
	checkDelivery(t, p, r, pieces, recv)
}

func TestDeliverEmptyAndSkewed(t *testing.T) {
	// All data goes to one group; several senders contribute nothing.
	p, r := 12, 3
	pieces := makePieces(p, r, func(s, j int) int {
		if j != 1 || s%3 == 0 {
			return 0
		}
		return 7
	})
	for _, strat := range allStrategies {
		recv, _ := runDeliver(t, p, pieces, Options{Strategy: strat, Seed: 5})
		checkDelivery(t, p, r, pieces, recv)
	}
}

func TestDeliverAllEmpty(t *testing.T) {
	p, r := 6, 2
	pieces := makePieces(p, r, func(s, j int) int { return 0 })
	for _, strat := range allStrategies {
		recv, _ := runDeliver(t, p, pieces, Options{Strategy: strat, Seed: 6})
		checkDelivery(t, p, r, pieces, recv)
	}
}

func TestDeliverSingleGroup(t *testing.T) {
	// r=1: plain balanced redistribution of everything.
	p := 5
	pieces := makePieces(p, 1, func(s, j int) int { return s * 3 })
	for _, strat := range allStrategies {
		recv, _ := runDeliver(t, p, pieces, Options{Strategy: strat, Seed: 7})
		checkDelivery(t, p, 1, pieces, recv)
	}
}

// adversarialPieces builds the §4.3/Figure 3 worst case: for the last
// group, many consecutively numbered PEs contribute tiny pieces while the
// last PE contributes a huge piece, so the naive prefix sum maps all tiny
// pieces to the first PE(s) of the group. The scale factor keeps the
// Appendix A chunk limit s = a·n/(rp) meaningfully above one element.
func adversarialPieces(p, r, scale int) [][][]elem {
	gg := geometry(p, r)
	g := gg.size(r - 1)
	huge := (g - 1) * (p - 1) * scale
	return makePieces(p, r, func(s, j int) int {
		if j != r-1 {
			return 0
		}
		if s == p-1 {
			return huge
		}
		return scale
	})
}

// maxSources returns the largest number of distinct chunk origins on one
// PE — a proxy for message startups in the bulk exchange, since chunks
// from one sender to one target travel in a single message.
func maxSources(recv [][][]elem) int {
	m := 0
	for _, chunks := range recv {
		seen := make(map[int]bool)
		for _, ch := range chunks {
			for _, e := range ch {
				seen[e.sender] = true
				break // one element identifies the chunk's sender
			}
		}
		if len(seen) > m {
			m = len(seen)
		}
	}
	return m
}

// tinyRunPieces is the Figure 3 worst case proper: the first half of the
// PEs (consecutively numbered) contribute tiny pieces, the second half
// large ones, so the rank-order prefix sum maps the whole tiny run onto
// the first PE(s) of the group. Stage-1 randomization fixes this case.
func tinyRunPieces(p, r int) [][][]elem {
	return makePieces(p, r, func(s, j int) int {
		if j != r-1 {
			return 0
		}
		if s < p/2 {
			return 4
		}
		return 256
	})
}

// TestDeliveryWorstCases pins down the §4.3/Appendix A behaviour matrix
// on two adversarial inputs (measured by distinct chunk origins on the
// worst PE, a proxy for receive startups in the bulk exchange):
//
//   - "tiny run + larges" (Fig. 3): Simple concentrates Ω(p) receives;
//     Randomized (permuted enumeration) and Deterministic fix it.
//   - "all but one tiny + one huge" (the Lemma 6 scenario): Randomized
//     only dampens it — the paper notes a logarithmic factor remains —
//     while RandomizedAdvanced (piece splitting + delegation) and
//     Deterministic keep O(r).
func TestDeliveryWorstCases(t *testing.T) {
	const p, r = 64, 4
	tinyHuge := adversarialPieces(p, r, 64)
	tinyRun := tinyRunPieces(p, r)

	measure := func(pieces [][][]elem, strat Strategy) int {
		recv, _ := runDeliver(t, p, pieces, Options{Strategy: strat, Seed: 3})
		checkDelivery(t, p, r, pieces, recv)
		return maxSources(recv)
	}

	// Input A: tinies + one huge piece.
	aSimple := measure(tinyHuge, Simple)
	aRand := measure(tinyHuge, Randomized)
	aAdv := measure(tinyHuge, RandomizedAdvanced)
	aDet := measure(tinyHuge, Deterministic)
	if aSimple < p-2 {
		t.Errorf("input A: Simple should concentrate ≥%d sources, got %d", p-2, aSimple)
	}
	if aRand >= aSimple {
		t.Errorf("input A: Randomized (%d) not better than Simple (%d)", aRand, aSimple)
	}
	if aAdv > 2*r+4 {
		t.Errorf("input A: RandomizedAdvanced has %d sources, want ≤ %d", aAdv, 2*r+4)
	}
	if aDet > 4*r+4 {
		t.Errorf("input A: Deterministic has %d sources, want ≤ %d", aDet, 4*r+4)
	}

	// Input B: consecutive tiny run + large pieces.
	bSimple := measure(tinyRun, Simple)
	bRand := measure(tinyRun, Randomized)
	bDet := measure(tinyRun, Deterministic)
	if bSimple < p/3 {
		t.Errorf("input B: Simple should concentrate ≥%d sources, got %d", p/3, bSimple)
	}
	if bRand > bSimple/2 {
		t.Errorf("input B: Randomized (%d) should clearly beat Simple (%d)", bRand, bSimple)
	}
	if bDet > 4*r+4 {
		t.Errorf("input B: Deterministic has %d sources, want ≤ %d", bDet, 4*r+4)
	}
}

func TestDeliveryDeterministicMessageBound(t *testing.T) {
	// Across several shapes, the deterministic strategy keeps per-PE
	// received messages O(r + log p) including control traffic.
	rng := rand.New(rand.NewSource(44))
	for _, pr := range []struct{ p, r int }{{16, 4}, {32, 4}, {32, 8}, {64, 8}} {
		pieces := makePieces(pr.p, pr.r, func(s, j int) int { return rng.Intn(9) })
		_, msgs := runDeliver(t, pr.p, pieces, Options{Strategy: Deterministic, Seed: 8})
		logp := 0
		for v := 1; v < pr.p; v <<= 1 {
			logp++
		}
		bound := int64(8*pr.r + 8*logp + 8)
		for rank, m := range msgs {
			if m > bound {
				t.Errorf("p=%d r=%d: PE %d received %d messages, bound %d", pr.p, pr.r, rank, m, bound)
			}
		}
	}
}

func TestDeliverDeterministicReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	p, r := 12, 4
	pieces := makePieces(p, r, func(s, j int) int { return rng.Intn(12) })
	for _, strat := range allStrategies {
		run := func() ([][][]elem, int64) {
			m := sim.NewDefault(p)
			recv := make([][][]elem, p)
			res := m.Run(func(pe *sim.PE) {
				recv[pe.Rank()] = Deliver(sim.World(pe), pieces[pe.Rank()], Options{Strategy: strat, Seed: 77})
			})
			return recv, res.MaxTime
		}
		r1, t1 := run()
		r2, t2 := run()
		if t1 != t2 {
			t.Errorf("%v: virtual times differ: %d vs %d", strat, t1, t2)
		}
		for rank := range r1 {
			if len(r1[rank]) != len(r2[rank]) {
				t.Fatalf("%v: chunk counts differ on PE %d", strat, rank)
			}
			for i := range r1[rank] {
				if len(r1[rank][i]) != len(r2[rank][i]) {
					t.Fatalf("%v: chunk %d sizes differ on PE %d", strat, i, rank)
				}
				for k := range r1[rank][i] {
					if r1[rank][i][k] != r2[rank][i][k] {
						t.Fatalf("%v: chunk contents differ on PE %d", strat, rank)
					}
				}
			}
		}
	}
}

func TestPermutedScanTotal(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 16} {
		vals := make([][]int64, p)
		for i := range vals {
			vals[i] = []int64{int64(i + 1), int64(2 * i)}
		}
		perm := prng.NewPermutation(uint64(p), 123)
		m := sim.NewDefault(p)
		m.Run(func(pe *sim.PE) {
			c := sim.World(pe)
			var pm *prng.Permutation
			if p > 1 {
				pm = perm
			}
			prefix, total := permutedScanTotal(c, vals[pe.Rank()], pm)
			// Totals are order-independent.
			wantTot := []int64{int64(p * (p + 1) / 2), int64(p * (p - 1))}
			if total[0] != wantTot[0] || total[1] != wantTot[1] {
				t.Errorf("p=%d rank=%d: total=%v want %v", p, pe.Rank(), total, wantTot)
			}
			// Prefix = sum over PEs with smaller virtual rank.
			var want0, want1 int64
			if pm != nil {
				myV := pm.Apply(uint64(pe.Rank()))
				for i := 0; i < p; i++ {
					if pm.Apply(uint64(i)) < myV {
						want0 += vals[i][0]
						want1 += vals[i][1]
					}
				}
			}
			if prefix[0] != want0 || prefix[1] != want1 {
				t.Errorf("p=%d rank=%d: prefix=%v want [%d %d]", p, pe.Rank(), prefix, want0, want1)
			}
		})
	}
}

// TestDeliverNoCrossSenderCoalescing: when every sender's pieces are
// cut out of ONE shared backing array (a legal zero-copy usage on the
// native backend), the tail of sender s's data can be memory-adjacent
// to the head of sender s+1's. Coalescing must never join chunks of
// different senders — each returned chunk must be a span of a single
// sender's piece, or the merging sorters would treat a fused
// cross-sender sequence as one sorted run.
func TestDeliverNoCrossSenderCoalescing(t *testing.T) {
	// r=1 makes every PE a receiver of the single group, so a
	// receiver's balanced quota interval straddles sender boundaries —
	// the tail span of sender s's piece ends exactly where sender
	// s+1's piece begins in the shared array.
	const p, r = 4, 1
	perSender := []int{3, 1, 2, 5}
	// One shared array (preallocated so appends never reallocate);
	// sender s's piece is a sub-slice of its segment.
	backing := make([]elem, 0, 3+1+2+5)
	segs := make([][]elem, p)
	for s := 0; s < p; s++ {
		start := len(backing)
		for i := 0; i < perSender[s]; i++ {
			backing = append(backing, elem{sender: s, group: 0, idx: i})
		}
		segs[s] = backing[start:] // two-index: spare capacity into later senders
	}
	pieces := make([][][]elem, p)
	for s := 0; s < p; s++ {
		pieces[s] = [][]elem{segs[s][:perSender[s]]}
	}
	for _, strat := range allStrategies {
		recv := make([][][]elem, p)
		m := sim.NewDefault(p)
		m.Run(func(pe *sim.PE) {
			recv[pe.Rank()] = Deliver(sim.World(pe), pieces[pe.Rank()], Options{Strategy: strat, Seed: 12})
		})
		checkDelivery(t, p, r, pieces, recv)
		for rank, chunks := range recv {
			for _, ch := range chunks {
				for i := 1; i < len(ch); i++ {
					if ch[i].sender != ch[0].sender {
						t.Fatalf("%v: PE %d chunk mixes senders %d and %d", strat, rank, ch[0].sender, ch[i].sender)
					}
				}
			}
		}
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{Simple: "simple", Randomized: "randomized",
		RandomizedAdvanced: "randomized-advanced", Deterministic: "deterministic"}
	for s, w := range names {
		if s.String() != w {
			t.Errorf("Strategy(%d).String() = %q want %q", s, s.String(), w)
		}
	}
}
