package delivery

import (
	"sort"

	"pmsort/internal/coll"
	"pmsort/internal/comm"
	"pmsort/internal/seq"
)

// desc describes one piece to the group-local assignment computation.
type desc struct {
	sender int   // comm rank of the piece's owner
	group  int   // destination group
	size   int64 // piece size in elements
}

// span is one target interval of a large piece's assignment.
type span struct {
	member int   // PE offset within the group
	count  int64 // number of elements
}

// reply carries a large piece's assignment back to its origin.
type reply struct {
	group int
	spans []span
}

const (
	tagDetReply = 0x6d0001
)

// planDeterministic builds outboxes with the deterministic two-phase
// algorithm of §4.3.1:
//
//  1. Small pieces (≤ the group's m/(2·g·r)) are enumerated with a
//     vector-valued prefix sum; small piece i of group j goes — whole —
//     to group member ⌊i/r⌋, so nobody gets more than ≈r of them and at
//     most half its final load.
//  2. Large pieces are assigned into the members' residual capacities:
//     descriptors travel to per-group manager PEs, each group gathers its
//     descriptors and computes the (identical) assignment locally by
//     merging the prefix sums of residual capacities and large-piece
//     sizes, and managers send every origin its piece's target spans.
//
// Deviation from the paper (documented in DESIGN.md): the group-local
// assignment uses an allgather of the O(p) descriptor words per group
// instead of the EREW-style distributed Batcher merge; the computed
// assignment is identical and the O(r) receive bound of Theorem 1 is
// unchanged (and asserted by tests).
func planDeterministic[E any](c comm.Communicator, pieces [][]E, opt Options) [][]chunk[E] {
	r := len(pieces)
	p := c.Size()
	me := c.Rank()
	gg := geometry(p, r)

	sizes := make([]int64, r)
	for j, piece := range pieces {
		sizes[j] = int64(len(piece))
	}
	_, totals, _ := coll.ScanTotal(c, sizes, int64(r), addVec)

	// Group-local small limit m/(2·g·r); floors to 0 for tiny groups,
	// which safely declares everything large.
	smallLimit := make([]int64, r)
	for j := 0; j < r; j++ {
		smallLimit[j] = totals[j] / (2 * int64(gg.size(j)) * int64(r))
	}
	isSmall := func(j int, size int64) bool { return size > 0 && size <= smallLimit[j] }

	// --- Phase 1: enumerate and place small pieces. ---
	smallFlags := make([]int64, r)
	for j := 0; j < r; j++ {
		if isSmall(j, sizes[j]) {
			smallFlags[j] = 1
		}
	}
	smallPrefix, ok := coll.ExScan(c, smallFlags, int64(r), addVec)
	if !ok {
		smallPrefix = make([]int64, r)
	}

	out := make([][]chunk[E], p)
	for j, piece := range pieces {
		if !isSmall(j, sizes[j]) {
			continue
		}
		g := gg.size(j)
		t := int(smallPrefix[j] / int64(r))
		if t >= g {
			t = g - 1
		}
		target := gg.start(j) + t
		out[target] = append(out[target], chunk[E]{data: piece})
	}

	// --- Phase 2: large pieces via group managers. ---
	// Descriptors of every piece go to the responsible manager so the
	// group can reconstruct small loads and large sizes.
	descOut := make([][]desc, p)
	for j := 0; j < r; j++ {
		if sizes[j] == 0 {
			continue
		}
		g := gg.size(j)
		mgr := gg.start(j) + managerOf(me, g, p)
		descOut[mgr] = append(descOut[mgr], desc{sender: me, group: j, size: sizes[j]})
	}
	descWords := func(d desc) int64 { return 3 }
	descIn := coll.Alltoallv1FactorFunc(c, descOut, descWords)

	groupComm, myGroup := c.SplitStarts(gg.starts)
	var myDescs []desc
	for _, ds := range descIn {
		myDescs = append(myDescs, ds...)
	}
	allDescs := flatten(coll.Allgatherv(groupComm, myDescs))
	seq.Sort(allDescs, func(a, b desc) bool { return a.sender < b.sender })
	c.Cost().Scan(int64(len(allDescs)) * 3)

	// Identical group-local assignment computation on every member.
	g := gg.size(myGroup)
	m := totals[myGroup]
	smallLoad := make([]int64, g)
	smallSeen := int64(0)
	var larges []desc
	for _, d := range allDescs {
		if isSmall(myGroup, d.size) {
			t := int(smallSeen / int64(r))
			if t >= g {
				t = g - 1
			}
			smallLoad[t] += d.size
			smallSeen++
		} else if d.size > 0 {
			larges = append(larges, d)
		}
	}
	// Residual capacities and their prefix sums (the sequence X of the
	// paper); larges in sender order form the sequence Y.
	resStart := make([]int64, g+1)
	for t := 0; t < g; t++ {
		quota := quotaStart(t+1, m, g) - quotaStart(t, m, g)
		res := quota - smallLoad[t]
		if res < 0 {
			res = 0 // see deviation note: clamped spill keeps everyone ≤ quota+slack
		}
		resStart[t+1] = resStart[t] + res
	}
	// Walk large pieces through residual space, remembering the spans of
	// the pieces whose origins this PE manages.
	type assignment struct {
		sender int
		group  int
		spans  []span
	}
	var assignments []assignment
	var off int64
	for _, d := range larges {
		spans := splitByPrefix(off, off+d.size, resStart)
		off += d.size
		mgr := managerOf(d.sender, g, p)
		if mgr == groupComm.Rank() {
			assignments = append(assignments, assignment{d.sender, d.group, spans})
		}
	}
	c.Cost().Scan(int64(len(larges)))

	// Managers reply the spans to the origins; an origin expects exactly
	// one reply per large piece, from the (known) manager of that group.
	// larges is sorted by sender, so the send order is deterministic.
	for _, a := range assignments {
		c.Send(a.sender, tagDetReply, reply{group: a.group, spans: a.spans}, int64(2*len(a.spans))+1)
	}
	for j := 0; j < r; j++ {
		if sizes[j] == 0 || isSmall(j, sizes[j]) {
			continue
		}
		gj := gg.size(j)
		mgrRank := gg.start(j) + managerOf(me, gj, p)
		pl, _ := c.Recv(mgrRank, tagDetReply)
		rep := pl.(reply)
		if rep.group != j {
			panic("delivery: deterministic reply for wrong group")
		}
		// Emit the chunks of piece j following the spans.
		piece := pieces[j]
		var pos int64
		for _, sp := range rep.spans {
			target := gg.start(j) + sp.member
			out[target] = append(out[target], chunk[E]{data: piece[pos : pos+sp.count]})
			pos += sp.count
		}
	}
	return out
}

// managerOf returns the group-member offset managing sender i's
// descriptors when p senders map onto g members in balanced blocks.
func managerOf(i, g, p int) int {
	return i * g / p
}

// splitByPrefix decomposes the interval [lo, hi) of a space whose slot t
// covers [starts[t], starts[t+1]) into per-slot spans. Zero-capacity
// slots are skipped.
func splitByPrefix(lo, hi int64, starts []int64) []span {
	var spans []span
	g := len(starts) - 1
	// Binary search for the first slot with starts[t+1] > lo.
	t := sort.Search(g, func(t int) bool { return starts[t+1] > lo })
	pos := lo
	for pos < hi && t < g {
		end := starts[t+1]
		if end > hi {
			end = hi
		}
		if end > pos {
			spans = append(spans, span{member: t, count: end - pos})
			pos = end
		}
		t++
	}
	if pos < hi {
		// Residual space exhausted (only possible with clamped spills);
		// put the remainder on the last slot.
		spans = append(spans, span{member: g - 1, count: hi - pos})
	}
	return spans
}

func flatten[T any](lists [][]T) []T {
	var out []T
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}
