package fwis

import (
	"math/rand"
	"sort"
	"testing"

	"pmsort/internal/sim"
)

// sample is a key tagged with (pe, idx) for a strict total order, the way
// AMS-sort tags its splitter samples (§2).
type sample struct{ key, pe, idx int }

func sampleLess(a, b sample) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.pe != b.pe {
		return a.pe < b.pe
	}
	return a.idx < b.idx
}

func TestGridDims(t *testing.T) {
	cases := []struct{ p, a, b int }{
		{1, 1, 1}, {2, 1, 2}, {3, 1, 3}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4},
		{9, 3, 3}, {12, 3, 4}, {13, 1, 13}, {16, 4, 4}, {32, 4, 8}, {64, 8, 8},
		{512, 16, 32}, {2048, 32, 64},
	}
	for _, tc := range cases {
		a, b := GridDims(tc.p)
		if a != tc.a || b != tc.b {
			t.Errorf("GridDims(%d) = %d×%d, want %d×%d", tc.p, a, b, tc.a, tc.b)
		}
		if a*b != tc.p {
			t.Errorf("GridDims(%d): %d×%d != p", tc.p, a, b)
		}
	}
}

func makeLocals(rng *rand.Rand, p, maxLen, keyRange int) ([][]sample, []sample) {
	locals := make([][]sample, p)
	var all []sample
	for pe := range locals {
		n := rng.Intn(maxLen + 1)
		loc := make([]sample, n)
		for i := range loc {
			loc[i] = sample{key: rng.Intn(keyRange), pe: pe, idx: i}
		}
		locals[pe] = loc
		all = append(all, loc...)
	}
	sort.Slice(all, func(i, j int) bool { return sampleLess(all[i], all[j]) })
	return locals, all
}

func TestSelectRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, p := range []int{1, 2, 3, 4, 6, 8, 9, 12, 13, 16} {
		for trial := 0; trial < 5; trial++ {
			locals, all := makeLocals(rng, p, 12, 40)
			if len(all) == 0 {
				continue
			}
			targets := []int64{0, int64(len(all)) / 3, int64(len(all)) - 1}
			m := sim.NewDefault(p)
			m.Run(func(pe *sim.PE) {
				c := sim.World(pe)
				s := New(c, locals[pe.Rank()], sampleLess)
				if s.Total() != int64(len(all)) {
					t.Errorf("p=%d: Total=%d want %d", p, s.Total(), len(all))
				}
				got := s.SelectRanks(targets)
				for i, k := range targets {
					if got[i] != all[k] {
						t.Errorf("p=%d rank %d: got %+v want %+v", p, k, got[i], all[k])
					}
				}
			})
		}
	}
}

func TestRankOf(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, p := range []int{1, 4, 6, 9} {
		locals, all := makeLocals(rng, p, 10, 25)
		pos := make(map[sample]int64, len(all))
		for i, e := range all {
			pos[e] = int64(i)
		}
		m := sim.NewDefault(p)
		m.Run(func(pe *sim.PE) {
			c := sim.World(pe)
			// New sorts local in place; remember originals first.
			mine := append([]sample(nil), locals[pe.Rank()]...)
			s := New(c, locals[pe.Rank()], sampleLess)
			for _, e := range mine {
				if got := s.RankOf(e); got != pos[e] {
					t.Errorf("p=%d: RankOf(%+v) = %d want %d", p, e, got, pos[e])
				}
			}
		})
	}
}

// TestFigureOneExample replays the 3×4 example of Figure 1: elements
// a..g spread over a 3×4 grid of PEs get ranks 0..6 (paper counts from
// the same order).
func TestFigureOneExample(t *testing.T) {
	// Grid from Figure 1 (rows × columns), '.' = no element:
	//   [c]  [ ]  [ ]  [f]
	//   [ ]  [a]  [e]  [ ]
	//   [ ]  [g]  [ ]  [b d]
	const p = 12
	letters := map[int][]int{ // rank -> element keys ('a'=0 ...)
		0:  {'c'},
		3:  {'f'},
		5:  {'a'},
		6:  {'e'},
		9:  {'g'},
		11: {'b', 'd'},
	}
	wantRank := map[int]int64{'a': 0, 'b': 1, 'c': 2, 'd': 3, 'e': 4, 'f': 5, 'g': 6}
	m := sim.NewDefault(p)
	m.Run(func(pe *sim.PE) {
		c := sim.World(pe)
		var local []sample
		for i, k := range letters[pe.Rank()] {
			local = append(local, sample{key: k, pe: pe.Rank(), idx: i})
		}
		mine := append([]sample(nil), local...)
		s := New(c, local, sampleLess)
		if s.Total() != 7 {
			t.Errorf("total = %d, want 7", s.Total())
		}
		for _, e := range mine {
			if got := s.RankOf(e); got != wantRank[e.key] {
				t.Errorf("rank of %c = %d, want %d", rune(e.key), got, wantRank[e.key])
			}
		}
	})
}

func TestSelectRanksDuplicateKeysWithTags(t *testing.T) {
	// All keys equal; tags must still give unique, extractable ranks.
	const p = 4
	m := sim.NewDefault(p)
	m.Run(func(pe *sim.PE) {
		c := sim.World(pe)
		local := []sample{{key: 7, pe: pe.Rank(), idx: 0}, {key: 7, pe: pe.Rank(), idx: 1}}
		s := New(c, local, sampleLess)
		targets := []int64{0, 3, 7}
		got := s.SelectRanks(targets)
		// Order is (7,0,0) (7,0,1) (7,1,0) (7,1,1) (7,2,0) ...
		want := []sample{{7, 0, 0}, {7, 1, 1}, {7, 3, 1}}
		for i := range targets {
			if got[i] != want[i] {
				t.Errorf("rank %d: got %+v want %+v", targets[i], got[i], want[i])
			}
		}
	})
}

func TestSelectRanksPanicsOutOfRange(t *testing.T) {
	m := sim.NewDefault(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range rank")
		}
	}()
	m.Run(func(pe *sim.PE) {
		c := sim.World(pe)
		local := []sample{{key: pe.Rank(), pe: pe.Rank()}}
		s := New(c, local, sampleLess)
		s.SelectRanks([]int64{2})
	})
}

// TestTimeSublinear checks the α log p + β n/√p shape: doubling the grid
// from 16 to 64 PEs with the same per-PE load must not double the
// virtual time (a single-PE gather would).
func TestTimeSublinear(t *testing.T) {
	run := func(p int) int64 {
		m := sim.New(p, sim.FlatTopology(), sim.DefaultCost())
		rng := rand.New(rand.NewSource(33))
		locals := make([][]sample, p)
		for pe := range locals {
			loc := make([]sample, 64)
			for i := range loc {
				loc[i] = sample{key: rng.Intn(1 << 20), pe: pe, idx: i}
			}
			locals[pe] = loc
		}
		res := m.Run(func(pe *sim.PE) {
			New(sim.World(pe), locals[pe.Rank()], sampleLess)
		})
		return res.MaxTime
	}
	t16, t64 := run(16), run(64)
	// n grows 4×, √p grows 2× -> β-term grows 2×; α-term grows log-ly.
	if t64 > 3*t16 {
		t.Errorf("p=16: %d ns, p=64: %d ns — scaling worse than O(n/√p)", t16, t64)
	}
}
