// Package fwis implements the fast work-inefficient sorting algorithm of
// paper §4.2 (generalizing [18]): the p PEs are arranged as an a×b grid
// with a, b = O(√p); the locally sorted inputs are gossiped (allGather
// with merging) along both rows and columns; each PE ranks the elements
// received from its column against the elements received from its row;
// and summing these partial ranks along the column yields every
// element's global rank in time O(α log p + β·n/√p + n/p·log(n/p)).
//
// The sorter is used for sorting splitter samples, where speed matters
// more than efficiency. Rank extraction requires a strict total order
// (no duplicate keys) — callers tag sample elements with their origin to
// break ties, as in §2.
package fwis

import (
	"fmt"

	"pmsort/internal/coll"
	"pmsort/internal/comm"
	"pmsort/internal/seq"
	"pmsort/internal/wire"
)

// selSlot carries a rank-selected element through the pick-one
// all-reduce of SelectRanks.
type selSlot[E any] struct {
	val E
	ok  bool
}

// RegisterWire registers the payload types a grid sort of E elements can
// put on a serializing backend. Idempotent.
func RegisterWire[E any]() {
	wire.Register[selSlot[E]]()
	wire.Register[[]selSlot[E]]()
	coll.RegisterWire[E]()
}

// GridDims factors p into a×b with a ≤ b and a the largest divisor of p
// not exceeding √p. For powers of two this reproduces the paper's
// 2^⌊P/2⌋ × 2^⌈P/2⌉ grid; for primes it degenerates to 1×p, which stays
// correct (one row holding everything).
func GridDims(p int) (a, b int) {
	d := 1
	for d*d <= p {
		d++
	}
	for d--; d >= 1; d-- {
		if p%d == 0 {
			return d, p / d
		}
	}
	return 1, p
}

// Sorter runs the grid sort once and retains the ranked column data so
// that callers can both extract elements by rank and query ranks of
// local elements.
type Sorter[E any] struct {
	comm    comm.Communicator
	less    func(a, b E) bool
	colData []E     // sorted union of this PE's column inputs
	ranks   []int64 // global rank of each colData element
	total   int64   // total number of elements across all PEs
}

// New sorts the union of the members' local slices. All members must
// call it collectively. The local slice need not be sorted; it is sorted
// in place.
func New[E any](c comm.Communicator, local []E, less func(a, b E) bool) *Sorter[E] {
	RegisterWire[E]()
	cost := c.Cost()
	p := c.Size()
	a, b := GridDims(p)

	seq.Sort(local, less)
	cost.SortOps(int64(len(local)))

	rowComm, _ := c.SplitEqual(a)  // row = groups of b consecutive ranks
	colComm, _ := c.SplitModulo(b) // column = ranks with equal rank mod b
	_ = a                          // rows: a groups of size b

	rowData := coll.AllgatherMerge(rowComm, local, less)
	colData := coll.AllgatherMerge(colComm, local, less)

	// Rank every column element against the row data by a two-pointer
	// scan over the two sorted sequences.
	localRanks := make([]int64, len(colData))
	j := 0
	for i, x := range colData {
		for j < len(rowData) && less(rowData[j], x) {
			j++
		}
		localRanks[i] = int64(j)
	}
	cost.Ops(int64(len(colData) + len(rowData)))

	// Summing the partial ranks over the column (i.e. over all rows)
	// yields global ranks, because the row unions partition the input.
	addVec := func(x, y []int64) []int64 {
		out := make([]int64, len(x))
		for i := range x {
			out[i] = x[i] + y[i]
		}
		return out
	}
	granks := coll.Allreduce(colComm, localRanks, int64(len(localRanks)), addVec)

	total := coll.Allreduce(c, int64(len(local)), 1, func(x, y int64) int64 { return x + y })

	return &Sorter[E]{comm: c, less: less, colData: colData, ranks: granks, total: total}
}

// Total returns the number of elements across all PEs.
func (s *Sorter[E]) Total() int64 { return s.total }

// SelectRanks returns, on every PE, the elements whose global ranks are
// the given targets (0-based, each in 0..Total()-1). One vector-valued
// all-reduce distributes the matches.
func (s *Sorter[E]) SelectRanks(targets []int64) []E {
	slots := make([]selSlot[E], len(targets))
	for t, k := range targets {
		if k < 0 || k >= s.total {
			panic(fmt.Sprintf("fwis: rank %d out of range 0..%d", k, s.total-1))
		}
		// ranks is strictly increasing (strict total order), so binary
		// search locates the target if this column holds it.
		lo, hi := 0, len(s.ranks)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if s.ranks[mid] < k {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(s.ranks) && s.ranks[lo] == k {
			slots[t] = selSlot[E]{val: s.colData[lo], ok: true}
		}
	}
	pick := func(x, y []selSlot[E]) []selSlot[E] {
		out := make([]selSlot[E], len(x))
		for i := range x {
			if x[i].ok {
				out[i] = x[i]
			} else {
				out[i] = y[i]
			}
		}
		return out
	}
	res := coll.Allreduce(s.comm, slots, int64(len(slots)), pick)
	out := make([]E, len(targets))
	for t := range res {
		if !res[t].ok {
			panic(fmt.Sprintf("fwis: no element with rank %d found (duplicate keys?)", targets[t]))
		}
		out[t] = res[t].val
	}
	return out
}

// RankOf returns the global rank of x, which must be one of this PE's
// column elements (in particular, any of its own local input elements).
func (s *Sorter[E]) RankOf(x E) int64 {
	lo, hi := 0, len(s.colData)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.less(s.colData[mid], x) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(s.colData) || s.less(x, s.colData[lo]) {
		panic("fwis: RankOf element not present in column data")
	}
	return s.ranks[lo]
}
