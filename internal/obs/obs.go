// Package obs is the backend-neutral observability layer: a per-rank
// tracer and metrics registry the sorting stack reports into, with
// near-zero cost when disabled.
//
// One Recorder per rank collects three kinds of evidence:
//
//   - Spans: nestable named intervals timestamped by the backend's own
//     clock (comm.Cost.Now) — virtual nanoseconds on the simulated
//     backend, wall-clock nanoseconds since the run epoch on the native
//     and TCP backends — so the identical instrumentation in core/coll/
//     delivery produces meaningful traces on every backend. Spans carry
//     optional annotations: a recursion level, an element count, and an
//     imbalance factor.
//   - Counters and gauges: named atomic int64 cells (Counter.Add for
//     counters, Counter.Max for high-watermark gauges), safe to bump
//     from auxiliary goroutines (the TCP backend's reader and writer
//     loops report frame counts and queue depths from off the PE
//     goroutine).
//   - Per-peer traffic: messages and words sent to / received from each
//     global rank, recorded by the bulk-exchange collectives.
//
// The disabled fast path: every method is safe on a nil *Recorder (and
// a nil *Counter) and returns immediately — instrumented code holds a
// possibly-nil recorder obtained once via From and pays one predictable
// branch per call site, no allocations, no atomics. A benchmark and an
// allocation test pin this (obs_test.go), and the acceptance criterion
// is that BenchmarkNativeAMS is unchanged with tracing off.
//
// Recorders reach the algorithms through the communicator: backends
// with tracing enabled implement the Source interface, and From(c)
// type-asserts it — no change to comm.Communicator, and communicators
// split from a traced world stay traced (each backend's split
// communicators share the PE's machine state). See DESIGN.md §12.
package obs

import (
	"sync"
	"sync/atomic"
)

// Span names emitted by the sorting stack (the span taxonomy of
// DESIGN.md §12). Per-level spans repeat once per recursion level with
// Level set; the phase spans nest inside their level span, finer spans
// nest inside their phase span.
const (
	// SpanAMS / SpanRLM wrap one whole sort call (barrier to barrier).
	SpanAMS = "ams-sort"
	SpanRLM = "rlm-sort"
	// SpanLevel wraps one recursion level, including everything below it.
	SpanLevel = "level"
	// SpanSplitterSel is the splitter-selection phase: sampling + sample
	// sort + selection (AMS) or multisequence selection (RLM).
	SpanSplitterSel = "splitter-selection"
	// SpanSample is the local sampling step inside splitter selection.
	SpanSample = "sample"
	// SpanSplitterSort is the fast work-inefficient sample sort plus the
	// splitter rank selection inside splitter selection.
	SpanSplitterSort = "splitter-sort"
	// SpanClassify is the bucket-processing phase's classification and
	// in-place partition (AMS); annotated with the level's imbalance.
	SpanClassify = "classify"
	// SpanPieceSort is the plain comparator path's pre-exchange piece
	// sort at the last level.
	SpanPieceSort = "piece-sort"
	// SpanExchange is the data-delivery phase: the bulk exchange plus
	// whatever work the streaming consumers overlap into it.
	SpanExchange = "exchange"
	// SpanMerge is the multiway merge of received runs (RLM levels, the
	// plain comparator last AMS level).
	SpanMerge = "merge"
	// SpanLocalSort is a local sort kernel run: the base case, the RLM
	// initial sort, or the keyed/prefix last-level radix.
	SpanLocalSort = "local-sort"
	// SpanDeliver wraps one delivery.DeliverStream call (plan + bulk
	// exchange), nested inside SpanExchange.
	SpanDeliver = "deliver"
)

// Counter and gauge names reported by the communication layers.
const (
	// CtrEmitNS accumulates nanoseconds spent inside the streaming
	// exchange's emit callbacks — the consumer work overlapped into the
	// bulk exchange (coll.AlltoallvDirectStreamFunc and friends).
	CtrEmitNS = "exchange.emit.ns"
	// CtrNetFramesOut / CtrNetFramesIn count wire frames written to /
	// decoded from peer connections (TCP backend).
	CtrNetFramesOut = "net.frames.out"
	CtrNetFramesIn  = "net.frames.in"
	// CtrNetWritevCalls / CtrNetWritevBytes count vectored writes
	// (net.Buffers) and the bytes they carried; CtrNetBufWrites counts
	// the small frames that batched through bufio instead.
	CtrNetWritevCalls = "net.writev.calls"
	CtrNetWritevBytes = "net.writev.bytes"
	CtrNetBufWrites   = "net.bufio.writes"
	// CtrMboxDepthMax is the high-watermark of undelivered messages in
	// the process mailbox (gauge, via Counter.Max).
	CtrMboxDepthMax = "mbox.depth.max"
	// CtrMboxWaitNS accumulates nanoseconds the PE spent parked in a
	// blocked receive waiting for a message to arrive.
	CtrMboxWaitNS = "mbox.wait.ns"
)

// Source is the optional interface a communicator implements when its
// backend has tracing enabled. From type-asserts it; backends without
// tracing (or with it disabled) simply do not implement it or return
// nil.
type Source interface {
	ObsRecorder() *Recorder
}

// From extracts the recorder behind a communicator (or any other
// value). It returns nil — the disabled recorder — when the value does
// not implement Source or tracing is off. Call it once per algorithm
// entry and keep the result; the nil check at each use is the whole
// disabled-path cost.
func From(c any) *Recorder {
	if s, ok := c.(Source); ok {
		return s.ObsRecorder()
	}
	return nil
}

// Counter is a named atomic cell: Add accumulates, Max keeps a
// high-watermark (gauge). All methods are safe on a nil *Counter (the
// disabled path) and safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add accumulates n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Max raises the cell to n if n is larger (high-watermark gauge).
func (c *Counter) Max(n int64) {
	if c == nil {
		return
	}
	for {
		cur := c.v.Load()
		if n <= cur || c.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// SpanRec is one recorded span. Start/End are clock timestamps of the
// recording rank (virtual or wall nanoseconds); Level is the recursion
// level or -1; N is an element-count annotation or -1; Imb is an
// imbalance annotation or 0.
type SpanRec struct {
	Name  string
	Level int32
	Depth int32
	Start int64
	End   int64
	N     int64
	Imb   float64
}

// peerCells is the number of atomic cells kept per peer: messages and
// words sent, messages and words received.
const peerCells = 4

// Recorder is one rank's trace and metrics sink. Spans must be started
// and ended on the goroutine running the rank's PE program; counters
// and peer traffic may be bumped from any goroutine. A nil *Recorder is
// the disabled recorder: every method no-ops.
type Recorder struct {
	rank  int
	p     int
	clock func() int64

	// Span storage; PE-goroutine only.
	spans []SpanRec
	stack []int32

	// Counter registry. The mutex guards registration; the cells
	// themselves are atomic.
	mu     sync.Mutex
	byName map[string]*Counter
	names  []string
	cells  []*Counter

	// Per-peer traffic, peerCells cells per global rank.
	peers []atomic.Int64
}

// NewRecorder creates a recorder for the given global rank of a p-rank
// machine. clock supplies timestamps in nanoseconds — the backend's
// run-relative wall clock, or the PE's virtual clock on the simulator.
func NewRecorder(rank, p int, clock func() int64) *Recorder {
	return &Recorder{
		rank:   rank,
		p:      p,
		clock:  clock,
		byName: make(map[string]*Counter),
		peers:  make([]atomic.Int64, peerCells*p),
	}
}

// Rank returns the recording rank (-1 on nil).
func (r *Recorder) Rank() int {
	if r == nil {
		return -1
	}
	return r.rank
}

// Now returns the recorder's clock in nanoseconds (0 on nil). Use it to
// time work whose duration feeds a counter instead of a span.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return r.clock()
}

// Span is a handle to an open span. The zero Span (from a nil recorder)
// ignores all operations.
type Span struct {
	r   *Recorder
	idx int32
}

// Start opens a span with no recursion level. Spans nest: a span opened
// while another is open becomes its child (depth + containment in the
// exported trace).
func (r *Recorder) Start(name string) Span { return r.StartLevel(name, -1) }

// StartLevel opens a span annotated with a recursion level.
func (r *Recorder) StartLevel(name string, level int) Span {
	if r == nil {
		return Span{}
	}
	idx := int32(len(r.spans))
	r.spans = append(r.spans, SpanRec{
		Name:  name,
		Level: int32(level),
		Depth: int32(len(r.stack)),
		Start: r.clock(),
		End:   -1,
		N:     -1,
	})
	r.stack = append(r.stack, idx)
	return Span{r: r, idx: idx}
}

// N annotates the span with an element count and returns it (chainable).
func (s Span) N(n int64) Span {
	if s.r != nil {
		s.r.spans[s.idx].N = n
	}
	return s
}

// Imb annotates the span with an imbalance factor and returns it.
func (s Span) Imb(x float64) Span {
	if s.r != nil {
		s.r.spans[s.idx].Imb = x
	}
	return s
}

// End closes the span. Spans should be ended in LIFO order; ending a
// non-top span closes it anyway and removes it from the open stack, so
// a missed inner End skews depths but cannot corrupt the recorder.
func (s Span) End() {
	r := s.r
	if r == nil {
		return
	}
	r.spans[s.idx].End = r.clock()
	for i := len(r.stack) - 1; i >= 0; i-- {
		if r.stack[i] == s.idx {
			r.stack = append(r.stack[:i], r.stack[i+1:]...)
			break
		}
	}
}

// Counter returns the named counter cell, creating it on first use.
// Call sites that run hot should look the cell up once and keep the
// pointer. Returns nil on a nil recorder — and every Counter method is
// nil-safe, so the cached pointer needs no guard.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.byName[name]; c != nil {
		return c
	}
	c := &Counter{}
	r.byName[name] = c
	r.names = append(r.names, name)
	r.cells = append(r.cells, c)
	return c
}

// PeerSend records msgs messages of words total words sent to the given
// global rank.
func (r *Recorder) PeerSend(peer int, msgs, words int64) {
	if r == nil || peer < 0 || peer >= r.p {
		return
	}
	r.peers[peerCells*peer+0].Add(msgs)
	r.peers[peerCells*peer+1].Add(words)
}

// PeerRecv records msgs messages of words total words received from the
// given global rank.
func (r *Recorder) PeerRecv(peer int, msgs, words int64) {
	if r == nil || peer < 0 || peer >= r.p {
		return
	}
	r.peers[peerCells*peer+2].Add(msgs)
	r.peers[peerCells*peer+3].Add(words)
}

// CounterRec is one exported counter value.
type CounterRec struct {
	Name  string
	Value int64
}

// PeerRec is one exported per-peer traffic row.
type PeerRec struct {
	Peer      int32
	SentMsgs  int64
	SentWords int64
	RecvMsgs  int64
	RecvWords int64
}

// Snapshot is the serializable export of one rank's recorder — what
// the gather step moves to rank 0. ClockOffsetNS is the shift that was
// applied to the span timestamps during clock alignment (0 before
// alignment).
type Snapshot struct {
	Rank          int32
	P             int32
	ClockOffsetNS int64
	Spans         []SpanRec
	Counters      []CounterRec
	Peers         []PeerRec
}

// Snapshot exports the recorder's current state. Open spans are
// exported with End == -1. Safe to call from the PE goroutine while
// auxiliary goroutines are still bumping counters (their cells are
// atomic; the values are a consistent-enough post-run read).
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{Rank: -1}
	}
	snap := Snapshot{
		Rank:  int32(r.rank),
		P:     int32(r.p),
		Spans: append([]SpanRec(nil), r.spans...),
	}
	r.mu.Lock()
	for i, name := range r.names {
		snap.Counters = append(snap.Counters, CounterRec{Name: name, Value: r.cells[i].Value()})
	}
	r.mu.Unlock()
	for peer := 0; peer < r.p; peer++ {
		base := peerCells * peer
		rec := PeerRec{
			Peer:      int32(peer),
			SentMsgs:  r.peers[base+0].Load(),
			SentWords: r.peers[base+1].Load(),
			RecvMsgs:  r.peers[base+2].Load(),
			RecvWords: r.peers[base+3].Load(),
		}
		if rec.SentMsgs != 0 || rec.RecvMsgs != 0 || rec.SentWords != 0 || rec.RecvWords != 0 {
			snap.Peers = append(snap.Peers, rec)
		}
	}
	return snap
}

// Reset drops all recorded spans, counters, and peer traffic, keeping
// the registry's counter identities (cached *Counter pointers stay
// valid and are zeroed).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.spans = r.spans[:0]
	r.stack = r.stack[:0]
	r.mu.Lock()
	for _, c := range r.cells {
		c.v.Store(0)
	}
	r.mu.Unlock()
	for i := range r.peers {
		r.peers[i].Store(0)
	}
}
