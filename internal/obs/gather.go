package obs

import (
	"pmsort/internal/comm"
	"pmsort/internal/wire"
)

// Tag space for the trace gather: the 0x6a block. Before pmsortvet's
// tagrange check assigned one block per package, these tags were
// 0x7d0001/0x7d0002 — colliding with delivery's tagDetReply and
// tagPermScan, and sitting inside the 0x7a0000–0x7fffff range now
// reserved for internal/svc control traffic (DESIGN.md §14).
const (
	tagObsSync   = 0x6a0001
	tagObsGather = 0x6a0002
)

func init() {
	wire.Register[Snapshot]()
	wire.Register[int64]()
}

// Gather merges the members' recorders into one clock-aligned Trace at
// rank 0 (other ranks get nil). It must be called collectively on c —
// normally the world communicator after the sort finishes.
//
// Clock alignment: the per-rank clocks already share an epoch on the
// in-process backends (the sim's virtual time is global; the native
// machine's wall clock has one epoch), but the TCP backend's ranks are
// separate processes whose run epochs differ by the scatter of the
// startup barrier. Before collecting each peer's snapshot, rank 0 runs
// one rendezvous round: it sends its clock t0, the peer replies with
// its clock tr, rank 0 receives the reply at t1 and estimates the
// peer's clock offset as tr − (t0+t1)/2 — the NTP midpoint estimate,
// exact when the two message delays are symmetric. The peer's span
// timestamps are shifted onto rank 0's timeline by subtracting the
// offset. On the in-process backends the estimate degenerates to ≈0
// (exactly 0 on the simulator, whose barriered virtual clocks agree),
// so the same code is backend-neutral. See DESIGN.md §12.
func Gather(c comm.Communicator, r *Recorder) *Trace {
	p := c.Size()
	if c.Rank() != 0 {
		pl, _ := c.Recv(0, tagObsSync)
		_ = pl // rank 0's t0; only the reply timestamp matters to the estimate
		c.Send(0, tagObsSync, r.Now(), 1)
		snap := r.Snapshot()
		c.Send(0, tagObsGather, snap, int64(len(snap.Spans))*8+int64(len(snap.Counters))*2)
		return nil
	}
	t := &Trace{Snaps: make([]Snapshot, 0, p)}
	self := r.Snapshot()
	if self.Rank < 0 {
		// Disabled recorder at the root: synthesize an empty snapshot so
		// the merged trace still carries every rank (peers may be enabled).
		self = Snapshot{Rank: 0, P: int32(p)}
	}
	t.Snaps = append(t.Snaps, self)
	for peer := 1; peer < p; peer++ {
		t0 := r.Now()
		c.Send(peer, tagObsSync, t0, 1)
		pl, _ := c.Recv(peer, tagObsSync)
		t1 := r.Now()
		tr := pl.(int64)
		offset := tr - (t0+t1)/2
		pl, _ = c.Recv(peer, tagObsGather)
		snap := pl.(Snapshot)
		if snap.Rank < 0 {
			snap = Snapshot{Rank: int32(peer), P: int32(p)}
		}
		for i := range snap.Spans {
			snap.Spans[i].Start -= offset
			if snap.Spans[i].End >= 0 {
				snap.Spans[i].End -= offset
			}
		}
		snap.ClockOffsetNS = -offset
		t.Snaps = append(t.Snaps, snap)
	}
	return t
}
