package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// tick returns a deterministic clock advancing by step per call.
func tick(step int64) func() int64 {
	var t int64
	return func() int64 {
		t += step
		return t
	}
}

func TestSpanNestingAndBalance(t *testing.T) {
	r := NewRecorder(0, 1, tick(10))
	root := r.Start(SpanAMS).N(100)
	lvl := r.StartLevel(SpanLevel, 0).N(100)
	cls := r.StartLevel(SpanClassify, 0).N(100).Imb(1.25)
	cls.End()
	ex := r.StartLevel(SpanExchange, 0)
	ex.End()
	ex.N(90) // annotating after End must still land on the record
	lvl.End()
	root.End()

	if got := len(r.stack); got != 0 {
		t.Fatalf("open-span stack not drained: %d entries", got)
	}
	snap := r.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("want 4 spans, got %d", len(snap.Spans))
	}
	wantDepth := []int32{0, 1, 2, 2}
	wantLevel := []int32{-1, 0, 0, 0}
	for i, sp := range snap.Spans {
		if sp.Depth != wantDepth[i] || sp.Level != wantLevel[i] {
			t.Errorf("span %d %q: depth=%d level=%d, want %d/%d",
				i, sp.Name, sp.Depth, sp.Level, wantDepth[i], wantLevel[i])
		}
		if sp.End < sp.Start {
			t.Errorf("span %d %q not closed: [%d,%d]", i, sp.Name, sp.Start, sp.End)
		}
	}
	if snap.Spans[2].Imb != 1.25 {
		t.Errorf("classify imbalance lost: %v", snap.Spans[2].Imb)
	}
	if snap.Spans[3].N != 90 {
		t.Errorf("post-End annotation lost: N=%d", snap.Spans[3].N)
	}
	// Containment: children inside their parent's interval.
	if snap.Spans[1].Start < snap.Spans[0].Start || snap.Spans[1].End > snap.Spans[0].End {
		t.Error("level span escapes its root span")
	}
	if err := (&Trace{Snaps: []Snapshot{snap}}).Validate(); err != nil {
		t.Fatalf("single-rank trace invalid: %v", err)
	}
}

func TestSpanNonLIFOEndTolerated(t *testing.T) {
	r := NewRecorder(0, 1, tick(1))
	a := r.Start("a")
	b := r.Start("b")
	a.End() // out of order
	b.End()
	if len(r.stack) != 0 {
		t.Fatalf("stack not drained after non-LIFO ends: %d", len(r.stack))
	}
	for _, sp := range r.Snapshot().Spans {
		if sp.End < sp.Start {
			t.Errorf("span %q left open", sp.Name)
		}
	}
}

func TestCountersAndReset(t *testing.T) {
	r := NewRecorder(2, 4, tick(1))
	c := r.Counter("x")
	c.Add(3)
	c.Add(4)
	if c.Value() != 7 {
		t.Fatalf("Add: got %d", c.Value())
	}
	if again := r.Counter("x"); again != c {
		t.Fatal("Counter must return a stable cell per name")
	}
	g := r.Counter("g")
	g.Max(5)
	g.Max(2)
	g.Max(9)
	if g.Value() != 9 {
		t.Fatalf("Max: got %d", g.Value())
	}
	r.PeerSend(1, 2, 100)
	r.PeerRecv(3, 1, 50)
	r.PeerSend(-1, 1, 1) // out of range: ignored
	r.PeerRecv(4, 1, 1)
	snap := r.Snapshot()
	if len(snap.Counters) != 2 || len(snap.Peers) != 2 {
		t.Fatalf("snapshot: %d counters, %d peer rows", len(snap.Counters), len(snap.Peers))
	}
	if snap.Peers[0].Peer != 1 || snap.Peers[0].SentWords != 100 ||
		snap.Peers[1].Peer != 3 || snap.Peers[1].RecvWords != 50 {
		t.Fatalf("peer rows wrong: %+v", snap.Peers)
	}

	r.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("Reset must zero cached counter cells")
	}
	after := r.Snapshot()
	if len(after.Spans) != 0 || len(after.Peers) != 0 {
		t.Error("Reset must drop spans and peer traffic")
	}
}

var anyVal any = struct{}{}

func TestNilRecorderSafeAndFrom(t *testing.T) {
	var r *Recorder
	sp := r.Start("x").N(1).Imb(2)
	sp.End()
	r.Counter("y").Add(1)
	r.Counter("y").Max(1)
	r.PeerSend(0, 1, 1)
	r.PeerRecv(0, 1, 1)
	if r.Now() != 0 || r.Rank() != -1 {
		t.Error("nil recorder Now/Rank")
	}
	if s := r.Snapshot(); s.Rank != -1 {
		t.Errorf("nil recorder snapshot rank %d", s.Rank)
	}
	r.Reset()
	if From(anyVal) != nil {
		t.Error("From of a non-Source must be nil")
	}
}

// The disabled path is the acceptance-critical one: recording calls on
// a nil recorder must not allocate.
func TestNilRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	var c *Counter
	allocs := testing.AllocsPerRun(200, func() {
		sp := r.Start(SpanClassify).N(100).Imb(1.5)
		sp.End()
		r.StartLevel(SpanLevel, 3).End()
		c.Add(1)
		c.Max(2)
		r.PeerSend(1, 1, 10)
		r.PeerRecv(1, 1, 10)
		_ = r.Now()
		_ = From(anyVal)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates: %.1f allocs/op", allocs)
	}
}

// buildTrace makes a deterministic two-rank trace.
func buildTrace() *Trace {
	var snaps []Snapshot
	for rank := 0; rank < 2; rank++ {
		r := NewRecorder(rank, 2, tick(int64(rank+1)*5))
		root := r.Start(SpanAMS).N(1000)
		lvl := r.StartLevel(SpanLevel, 0).N(1000)
		r.StartLevel(SpanClassify, 0).N(1000).Imb(1.1).End()
		lvl.End()
		root.End()
		r.Counter(CtrEmitNS).Add(1234)
		r.PeerSend(1-rank, 1, 500)
		snaps = append(snaps, r.Snapshot())
	}
	return &Trace{Snaps: snaps}
}

func TestChromeExportValidJSON(t *testing.T) {
	tr := buildTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int32          `json:"pid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	meta, complete, counters := 0, 0, 0
	lastTs := map[int32]float64{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("event %q: negative ts/dur %v/%v", ev.Name, ev.Ts, ev.Dur)
			}
			if ev.Ts < lastTs[ev.Pid] {
				t.Errorf("pid %d: timestamps not monotone (%v after %v)", ev.Pid, ev.Ts, lastTs[ev.Pid])
			}
			lastTs[ev.Pid] = ev.Ts
		case "C":
			counters++
		default:
			t.Errorf("unknown event phase %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 6 || counters == 0 {
		t.Fatalf("event mix: %d meta, %d complete, %d counter", meta, complete, counters)
	}
}

func TestReportMentionsEverything(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{SpanAMS, SpanClassify, CtrEmitNS, "rank 0/2", "rank 1/2", "peer"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	base := func() *Trace { return buildTrace() }

	tr := base()
	tr.Snaps = tr.Snaps[:1] // rank 1 missing
	if err := tr.Validate(); err == nil {
		t.Error("missing rank must fail validation")
	}

	tr = base()
	tr.Snaps[1].Rank = 0 // duplicate rank
	if err := tr.Validate(); err == nil {
		t.Error("duplicate rank must fail validation")
	}

	tr = base()
	tr.Snaps[0].Spans[2].End = -1 // unclosed span
	if err := tr.Validate(); err == nil {
		t.Error("unclosed span must fail validation")
	}

	tr = base()
	tr.Snaps[0].Spans[2].Start = tr.Snaps[0].Spans[1].Start - 1 // out of order
	if err := tr.Validate(); err == nil {
		t.Error("non-monotone starts must fail validation")
	}

	tr = base()
	tr.Snaps[0].Spans[2].End = tr.Snaps[0].Spans[1].End + 1000 // escapes parent
	if err := tr.Validate(); err == nil {
		t.Error("child escaping its parent must fail validation")
	}
}

// BenchmarkObsSpanDisabled pins the disabled fast path: a full
// start/annotate/end cycle against a nil recorder. This must stay
// allocation-free and in the very-low ns/op range — it is the only cost
// the instrumented sorters pay when tracing is off.
func BenchmarkObsSpanDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartLevel(SpanClassify, 1).N(int64(i)).Imb(1.0)
		sp.End()
	}
}

func BenchmarkObsSpanEnabled(b *testing.B) {
	var now int64
	r := NewRecorder(0, 1, func() int64 { now++; return now })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartLevel(SpanClassify, 1).N(int64(i)).Imb(1.0)
		sp.End()
		if len(r.spans) >= 1<<16 {
			b.StopTimer()
			r.Reset()
			b.StartTimer()
		}
	}
}

func BenchmarkObsCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsCounterEnabled(b *testing.B) {
	r := NewRecorder(0, 1, tick(1))
	c := r.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsPeerSendDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.PeerSend(0, 1, 64)
	}
}

func BenchmarkObsPeerSendEnabled(b *testing.B) {
	r := NewRecorder(0, 4, tick(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.PeerSend(i&3, 1, 64)
	}
}
