package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Trace is a merged run trace: one Snapshot per rank, clock-aligned to
// rank 0's timeline. It is what Gather returns on rank 0 and what the
// exporters consume.
type Trace struct {
	Snaps []Snapshot
}

// chromeEvent is one Chrome trace-event object ("X" complete events for
// spans, "M" metadata events for process names, "C" counter events for
// the per-rank counters). Timestamps and durations are microseconds, as
// the format requires; Perfetto and chrome://tracing both load the
// resulting JSON directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the trace as Chrome trace-event JSON: one process
// per rank (pid = rank), spans as complete events with their element
// count, imbalance, and level in args, counters as a trailing counter
// event per rank. Timestamps are shifted so the earliest span in the
// trace lands at t=0 — Chrome's UI dislikes negative timestamps, which
// clock alignment can otherwise produce.
func (t *Trace) WriteChrome(w io.Writer) error {
	shift := int64(0)
	first := true
	for _, s := range t.Snaps {
		for _, sp := range s.Spans {
			if first || sp.Start < shift {
				shift = sp.Start
				first = false
			}
		}
	}
	var events []chromeEvent
	for _, s := range t.Snaps {
		events = append(events, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  s.Rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", s.Rank)},
		})
		for _, sp := range s.Spans {
			end := sp.End
			if end < sp.Start {
				end = sp.Start // open span: zero-duration marker
			}
			args := map[string]any{}
			if sp.Level >= 0 {
				args["level"] = sp.Level
			}
			if sp.N >= 0 {
				args["n"] = sp.N
			}
			if sp.Imb != 0 {
				args["imb"] = sp.Imb
			}
			if len(args) == 0 {
				args = nil
			}
			events = append(events, chromeEvent{
				Name: sp.Name,
				Ph:   "X",
				Pid:  s.Rank,
				Tid:  0,
				Ts:   float64(sp.Start-shift) / 1e3,
				Dur:  float64(end-sp.Start) / 1e3,
				Args: args,
			})
		}
		for _, c := range s.Counters {
			events = append(events, chromeEvent{
				Name: c.Name,
				Ph:   "C",
				Pid:  s.Rank,
				Ts:   0,
				Args: map[string]any{"value": c.Value},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// WriteReport writes a plain-text run report: per rank, the span tree
// rolled up by (level, name) with total durations and element counts,
// then counters and per-peer traffic.
func (t *Trace) WriteReport(w io.Writer) error {
	for _, s := range t.Snaps {
		if _, err := fmt.Fprintf(w, "== rank %d/%d", s.Rank, s.P); err != nil {
			return err
		}
		if s.ClockOffsetNS != 0 {
			fmt.Fprintf(w, "  (clock offset %+d ns)", s.ClockOffsetNS)
		}
		fmt.Fprintln(w)
		type key struct {
			level int32
			depth int32
			name  string
		}
		agg := map[key]*struct {
			ns    int64
			n     int64
			count int64
			imb   float64
		}{}
		var order []key
		for _, sp := range s.Spans {
			k := key{sp.Level, sp.Depth, sp.Name}
			a := agg[k]
			if a == nil {
				a = &struct {
					ns    int64
					n     int64
					count int64
					imb   float64
				}{}
				agg[k] = a
				order = append(order, k)
			}
			if sp.End >= sp.Start {
				a.ns += sp.End - sp.Start
			}
			if sp.N >= 0 {
				a.n += sp.N
			}
			if sp.Imb > a.imb {
				a.imb = sp.Imb
			}
			a.count++
		}
		sort.SliceStable(order, func(i, j int) bool {
			if order[i].level != order[j].level {
				return order[i].level < order[j].level
			}
			return order[i].depth < order[j].depth
		})
		for _, k := range order {
			a := agg[k]
			indent := ""
			for i := int32(0); i < k.depth; i++ {
				indent += "  "
			}
			lvl := "     "
			if k.level >= 0 {
				lvl = fmt.Sprintf("L%-4d", k.level)
			}
			fmt.Fprintf(w, "  %s %s%-20s %12.3f ms", lvl, indent, k.name, float64(a.ns)/1e6)
			if a.n > 0 {
				fmt.Fprintf(w, "  n=%d", a.n)
			}
			if a.imb > 0 {
				fmt.Fprintf(w, "  imb=%.3f", a.imb)
			}
			if a.count > 1 {
				fmt.Fprintf(w, "  (x%d)", a.count)
			}
			fmt.Fprintln(w)
		}
		for _, c := range s.Counters {
			fmt.Fprintf(w, "  ctr   %-24s %d\n", c.Name, c.Value)
		}
		for _, p := range s.Peers {
			fmt.Fprintf(w, "  peer  %-4d sent %d msgs / %d words, recv %d msgs / %d words\n",
				p.Peer, p.SentMsgs, p.SentWords, p.RecvMsgs, p.RecvWords)
		}
	}
	return nil
}

// Validate checks the merged trace's structural invariants: every rank
// 0..P-1 present exactly once, every span closed with End ≥ Start, span
// starts monotone non-decreasing per rank (spans are recorded in start
// order), and nesting consistent (a span's interval lies within its
// nearest open ancestor's). Returns the first violation found.
func (t *Trace) Validate() error {
	if len(t.Snaps) == 0 {
		return fmt.Errorf("obs: empty trace")
	}
	p := int(t.Snaps[0].P)
	if len(t.Snaps) != p {
		return fmt.Errorf("obs: trace has %d snapshots for p=%d", len(t.Snaps), p)
	}
	seen := make([]bool, p)
	for _, s := range t.Snaps {
		if s.Rank < 0 || int(s.Rank) >= p {
			return fmt.Errorf("obs: snapshot rank %d out of range [0,%d)", s.Rank, p)
		}
		if seen[s.Rank] {
			return fmt.Errorf("obs: rank %d appears twice", s.Rank)
		}
		seen[s.Rank] = true
		if int(s.P) != p {
			return fmt.Errorf("obs: rank %d reports p=%d, want %d", s.Rank, s.P, p)
		}
		var open []SpanRec // stack of enclosing spans
		prevStart := int64(0)
		for i, sp := range s.Spans {
			if sp.End < sp.Start {
				return fmt.Errorf("obs: rank %d span %d (%s) not closed (start=%d end=%d)", s.Rank, i, sp.Name, sp.Start, sp.End)
			}
			if i > 0 && sp.Start < prevStart {
				return fmt.Errorf("obs: rank %d span %d (%s) starts at %d before previous start %d", s.Rank, i, sp.Name, sp.Start, prevStart)
			}
			prevStart = sp.Start
			// Pop ancestors this span no longer nests under.
			for len(open) > int(sp.Depth) {
				open = open[:len(open)-1]
			}
			if int(sp.Depth) != len(open) {
				return fmt.Errorf("obs: rank %d span %d (%s) has depth %d with %d open ancestors", s.Rank, i, sp.Name, sp.Depth, len(open))
			}
			if len(open) > 0 {
				parent := open[len(open)-1]
				if sp.Start < parent.Start || sp.End > parent.End {
					return fmt.Errorf("obs: rank %d span %d (%s [%d,%d]) escapes parent %s [%d,%d]",
						s.Rank, i, sp.Name, sp.Start, sp.End, parent.Name, parent.Start, parent.End)
				}
			}
			open = append(open, sp)
		}
	}
	for r, ok := range seen {
		if !ok {
			return fmt.Errorf("obs: rank %d missing from trace", r)
		}
	}
	return nil
}
