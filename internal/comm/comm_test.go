package comm

import (
	"testing"
	"time"
)

func TestGroupSizes(t *testing.T) {
	for size := 1; size <= 40; size++ {
		for groups := 1; groups <= size; groups++ {
			sizes := GroupSizes(size, groups)
			if len(sizes) != groups {
				t.Fatalf("GroupSizes(%d,%d): %d groups", size, groups, len(sizes))
			}
			sum, minSz, maxSz := 0, size, 0
			for g, s := range sizes {
				sum += s
				if s < minSz {
					minSz = s
				}
				if s > maxSz {
					maxSz = s
				}
				// Larger groups first.
				if g > 0 && s > sizes[g-1] {
					t.Fatalf("GroupSizes(%d,%d): not non-increasing: %v", size, groups, sizes)
				}
			}
			if sum != size || maxSz-minSz > 1 {
				t.Fatalf("GroupSizes(%d,%d) = %v", size, groups, sizes)
			}
		}
	}
}

// TestEqualStartsGeometry pins EqualStarts over the full small-size
// grid, including the degenerate corners: size 1, groups == size, and
// invalid group counts. The starts must be the prefix sums of
// GroupSizes exactly — every backend's SplitEqual relies on it.
func TestEqualStartsGeometry(t *testing.T) {
	for size := 1; size <= 24; size++ {
		for groups := 1; groups <= size; groups++ {
			starts, ok := EqualStarts(size, groups)
			if !ok {
				t.Fatalf("EqualStarts(%d,%d) rejected a valid split", size, groups)
			}
			if len(starts) != groups+1 || starts[0] != 0 || starts[groups] != size {
				t.Fatalf("EqualStarts(%d,%d) = %v", size, groups, starts)
			}
			sizes := GroupSizes(size, groups)
			for g := 0; g < groups; g++ {
				if starts[g+1]-starts[g] != sizes[g] {
					t.Fatalf("EqualStarts(%d,%d) = %v disagrees with GroupSizes %v",
						size, groups, starts, sizes)
				}
			}
		}
		// Invalid group counts must be rejected, not mis-partitioned.
		for _, groups := range []int{0, -1, size + 1} {
			if _, ok := EqualStarts(size, groups); ok {
				t.Errorf("EqualStarts(%d,%d) accepted an invalid group count", size, groups)
			}
		}
	}
	if starts, ok := EqualStarts(1, 1); !ok || len(starts) != 2 || starts[0] != 0 || starts[1] != 1 {
		t.Errorf("EqualStarts(1,1) = %v, %v", starts, ok)
	}
}

// TestSplitBoundsEdges drives SplitBounds through the degenerate and
// malformed inputs: size-1 communicators, singleton groups, empty
// groups, bounds that do not start at 0 / end at size / cover the
// member, and too-short starts vectors.
func TestSplitBoundsEdges(t *testing.T) {
	// Size 1: the only member must land in the only group.
	if lo, hi, g, ok := SplitBounds([]int{0, 1}, 1, 0); !ok || lo != 0 || hi != 1 || g != 0 {
		t.Errorf("SplitBounds([0,1],1,0) = %d,%d,%d,%v", lo, hi, g, ok)
	}
	// groups == size: every member is its own group.
	starts := []int{0, 1, 2, 3}
	for me := 0; me < 3; me++ {
		lo, hi, g, ok := SplitBounds(starts, 3, me)
		if !ok || lo != me || hi != me+1 || g != me {
			t.Errorf("singleton SplitBounds(me=%d) = %d,%d,%d,%v", me, lo, hi, g, ok)
		}
	}
	// Empty middle group: members around it still resolve correctly.
	starts = []int{0, 2, 2, 4}
	if _, _, g, ok := SplitBounds(starts, 4, 1); !ok || g != 0 {
		t.Errorf("empty-group SplitBounds(me=1): g=%d ok=%v", g, ok)
	}
	if _, _, g, ok := SplitBounds(starts, 4, 2); !ok || g != 2 {
		t.Errorf("empty-group SplitBounds(me=2): g=%d ok=%v", g, ok)
	}
	// Malformed bounds must all be rejected.
	bad := [][]int{
		nil,          // no bounds at all
		{0},          // too short
		{1, 4},       // does not start at 0
		{0, 3},       // does not end at size
		{0, 5},       // overshoots size
		{0, 3, 2, 4}, // non-monotone: me=3 not covered by any window
	}
	for _, starts := range bad {
		if _, _, _, ok := SplitBounds(starts, 4, 3); ok {
			t.Errorf("SplitBounds(%v, 4, 3) accepted malformed bounds", starts)
		}
	}
}

// TestModuloRanksEdges covers ModuloRanks at the corners: m == 1
// (identity group), m == size (singleton groups), size 1, and invalid
// m; plus the stride/membership properties on a small grid.
func TestModuloRanksEdges(t *testing.T) {
	ranks := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = 100 + i // distinct from indices: catches index/rank mixups
		}
		return out
	}
	// Size 1.
	if sub, me, g, ok := ModuloRanks(ranks(1), 0, 1); !ok || me != 0 || g != 0 || len(sub) != 1 || sub[0] != 100 {
		t.Errorf("ModuloRanks(size 1) = %v,%d,%d,%v", sub, me, g, ok)
	}
	// Invalid m.
	for _, m := range []int{0, -2, 5} {
		if _, _, _, ok := ModuloRanks(ranks(4), 1, m); ok {
			t.Errorf("ModuloRanks(m=%d) accepted an invalid modulus", m)
		}
	}
	for size := 1; size <= 12; size++ {
		rs := ranks(size)
		for m := 1; m <= size; m++ {
			// Union of all groups must be a permutation of the members,
			// each group strided by m.
			seen := make(map[int]bool)
			for me := 0; me < size; me++ {
				sub, newMe, g, ok := ModuloRanks(rs, me, m)
				if !ok {
					t.Fatalf("ModuloRanks(size=%d, me=%d, m=%d) rejected", size, me, m)
				}
				if g != me%m || newMe != me/m {
					t.Fatalf("ModuloRanks(size=%d, me=%d, m=%d): g=%d newMe=%d", size, me, m, g, newMe)
				}
				if sub[newMe] != rs[me] {
					t.Fatalf("ModuloRanks(size=%d, me=%d, m=%d): sub[%d]=%d, want %d",
						size, me, m, newMe, sub[newMe], rs[me])
				}
				for i, r := range sub {
					if r != rs[g+i*m] {
						t.Fatalf("ModuloRanks(size=%d, me=%d, m=%d): stride broken at %d", size, me, m, i)
					}
				}
				if !seen[me] {
					seen[me] = true
				}
			}
			if len(seen) != size {
				t.Fatalf("ModuloRanks(size=%d, m=%d): groups cover %d of %d members", size, m, len(seen), size)
			}
		}
	}
}

// TestGroupSizesProperties extends the base grid with the formal
// properties delivery and grouping rely on: the sizes vector sums to
// the communicator size, is non-increasing (larger groups first), and
// is stable under recomputation.
func TestGroupSizesProperties(t *testing.T) {
	for size := 1; size <= 64; size++ {
		for groups := 1; groups <= size; groups++ {
			a, b := GroupSizes(size, groups), GroupSizes(size, groups)
			sum := 0
			for g := range a {
				if a[g] != b[g] {
					t.Fatalf("GroupSizes(%d,%d) not deterministic", size, groups)
				}
				sum += a[g]
				if g > 0 && a[g] > a[g-1] {
					t.Fatalf("GroupSizes(%d,%d) = %v not non-increasing", size, groups, a)
				}
			}
			if sum != size {
				t.Fatalf("GroupSizes(%d,%d) sums to %d", size, groups, sum)
			}
			if a[0]-a[groups-1] > 1 {
				t.Fatalf("GroupSizes(%d,%d) = %v spreads more than 1", size, groups, a)
			}
		}
	}
}

func TestWallClock(t *testing.T) {
	w := WallClock{Epoch: time.Now()}
	t0 := w.Now()
	// Annotations are free: a petaop must not advance anything by much.
	w.Ops(1 << 50)
	w.PartitionOps(1 << 50)
	w.Scan(1 << 50)
	w.SortOps(1 << 50)
	if got := w.BarrierSync(987); got != 987 {
		t.Errorf("BarrierSync(987) = %d", got)
	}
	if w.Now() < t0 {
		t.Error("wall clock went backwards")
	}
}
