package comm

import (
	"testing"
	"time"
)

func TestGroupSizes(t *testing.T) {
	for size := 1; size <= 40; size++ {
		for groups := 1; groups <= size; groups++ {
			sizes := GroupSizes(size, groups)
			if len(sizes) != groups {
				t.Fatalf("GroupSizes(%d,%d): %d groups", size, groups, len(sizes))
			}
			sum, minSz, maxSz := 0, size, 0
			for g, s := range sizes {
				sum += s
				if s < minSz {
					minSz = s
				}
				if s > maxSz {
					maxSz = s
				}
				// Larger groups first.
				if g > 0 && s > sizes[g-1] {
					t.Fatalf("GroupSizes(%d,%d): not non-increasing: %v", size, groups, sizes)
				}
			}
			if sum != size || maxSz-minSz > 1 {
				t.Fatalf("GroupSizes(%d,%d) = %v", size, groups, sizes)
			}
		}
	}
}

func TestWallClock(t *testing.T) {
	w := WallClock{Epoch: time.Now()}
	t0 := w.Now()
	// Annotations are free: a petaop must not advance anything by much.
	w.Ops(1 << 50)
	w.PartitionOps(1 << 50)
	w.Scan(1 << 50)
	w.SortOps(1 << 50)
	if got := w.BarrierSync(987); got != 987 {
		t.Errorf("BarrierSync(987) = %d", got)
	}
	if w.Now() < t0 {
		t.Error("wall clock went backwards")
	}
}
