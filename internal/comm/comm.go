// Package comm defines the backend-neutral communication interface the
// sorting algorithms are written against. A Communicator is an ordered
// group of processing elements with point-to-point messaging and cheap,
// purely local group splitting — the subset of MPI the paper's
// algorithms need. Two backends implement it:
//
//   - internal/sim: the deterministic virtual-time simulator with the
//     paper's single-ported α-β cost model. Cost annotations advance the
//     virtual clock; nothing runs at hardware speed.
//   - internal/native: p goroutines of one process exchanging data
//     through channels, with no virtual-time bookkeeping. Cost
//     annotations are no-ops; Now reads the wall clock, so the same
//     phase-timing code reports real elapsed time.
//   - internal/netcomm: p single-PE processes meshed over TCP, with
//     payloads crossing process boundaries through the typed codec of
//     internal/wire. Wall-clock costs like native.
//
// Everything above point-to-point — the collectives in internal/coll,
// data delivery, multisequence selection, AMS-sort, RLM-sort, and all
// baselines — is generic over this interface, so an algorithm written
// once runs simulated (for model experiments at 10k+ PEs), native (for
// real multicore sorting), and distributed over TCP without change.
// See DESIGN.md §6 and §7.
//
// Payload contract: ownership of a sent payload transfers to the
// receiver, and since backend 3 the boundary may also be a
// serialization boundary — a payload must be of a wire-registered type
// (the algorithm entry points register everything they send via the
// RegisterWire helpers), and senders must never mutate a payload after
// Send even though the in-process backends pass it by reference.
// Payloads delivered to multiple PEs are shared and read-only; on the
// TCP backend every receiver instead gets its own decoded copy, which
// satisfies the same conventions trivially.
package comm

import "time"

// Communicator is an ordered group of PEs (members) with this PE's
// position in it. Group-relative ranks 0..Size()-1 address members.
// A Communicator value is bound to the goroutine running its PE; its
// methods must not be called from other goroutines. Splitting is a
// purely local operation — no communication happens (the paper excludes
// MPI communicator construction from its timings for the same reason).
type Communicator interface {
	// Size returns the number of members.
	Size() int
	// Rank returns this PE's group-relative rank.
	Rank() int
	// GlobalRank translates a group-relative rank to a backend-global
	// rank (the PE numbering of the machine the group was split from).
	GlobalRank(r int) int

	// Send transmits a message to the member with group-relative rank
	// `to`. Sends are eager and buffered: they never block on the
	// receiver. Payload ownership transfers to the receiver. words is
	// the modeled message size in machine words (8 bytes ≙ one element);
	// backends without a cost model ignore it.
	Send(to, tag int, payload any, words int64)
	// Recv blocks until the message with the given tag from the member
	// with group-relative rank `from` arrives and returns its payload
	// and declared size in words. Messages between one (sender, tag)
	// pair are delivered FIFO.
	Recv(from, tag int) (payload any, words int64)

	// SplitEqual partitions the members into `groups` balanced
	// contiguous groups (sizes differing by at most one, larger groups
	// first) and returns the communicator of this PE's group together
	// with the group index.
	SplitEqual(groups int) (Communicator, int)
	// SplitStarts partitions the members into contiguous groups given by
	// starts: group g consists of member indices starts[g]..starts[g+1]-1,
	// with starts[0] == 0 and starts[len-1] == Size(). Returns this PE's
	// group communicator and group index.
	SplitStarts(starts []int) (Communicator, int)
	// SplitModulo partitions the members into m groups by rank modulo m
	// (group g holds the members with rank ≡ g mod m — "column" groups
	// of a row-major grid). Returns this PE's group communicator and
	// group index.
	SplitModulo(m int) (Communicator, int)
	// Subset returns the communicator of members [lo, hi). This PE must
	// be a member of the subset.
	Subset(lo, hi int) Communicator

	// Cost returns this PE's cost-annotation hook. The simulator charges
	// annotations against the virtual clock; other backends ignore them.
	Cost() Cost
}

// Cost is the cost-annotation hook of a Communicator. Algorithms
// annotate their local work through it; the simulated backend turns the
// annotations into virtual time under its calibrated cost model, while
// real backends implement them as no-ops (real work costs real time all
// by itself). Now and BarrierSync double as the clock the phase
// statistics are measured on — virtual in the simulator, wall in the
// native backend — so Stats code is backend-neutral too.
type Cost interface {
	// Ops annotates n compare-and-move operations (sorting, merging).
	Ops(n int64)
	// PartitionOps annotates n branchless partition steps
	// (element × splitter-tree level).
	PartitionOps(n int64)
	// Scan annotates n sequential scan/copy steps.
	Scan(n int64)
	// SortOps annotates comparison-sorting n elements
	// (n · ⌈log₂ n⌉ compare-and-move operations).
	SortOps(n int64)
	// Now returns this PE's clock in nanoseconds (virtual time in the
	// simulator, wall time since the run started in real backends).
	Now() int64
	// BarrierSync finalizes a timed barrier whose members agreed on the
	// common entry time `entry` (the maximum of their clocks) and
	// returns the barrier's exit time. The simulator replaces the
	// barrier's internal message costs with a modeled, globally
	// identical exit time; real backends return entry unchanged.
	BarrierSync(entry int64) int64
}

// WallClock is the Cost implementation for backends that run at real
// hardware speed: all annotations are no-ops and Now reads the wall
// clock relative to Epoch, so the backend-neutral phase statistics
// report real elapsed nanoseconds.
type WallClock struct {
	Epoch time.Time
}

// Ops is a no-op: real compare-and-moves cost real time by themselves.
func (WallClock) Ops(int64) {}

// PartitionOps is a no-op.
func (WallClock) PartitionOps(int64) {}

// Scan is a no-op.
func (WallClock) Scan(int64) {}

// SortOps is a no-op.
func (WallClock) SortOps(int64) {}

// Now returns the wall-clock nanoseconds elapsed since Epoch.
func (w WallClock) Now() int64 { return time.Since(w.Epoch).Nanoseconds() }

// BarrierSync returns entry unchanged: the collective that computed it
// already synchronized the members for real.
func (WallClock) BarrierSync(entry int64) int64 { return entry }

// GroupSizes returns the sizes of `groups` balanced contiguous groups
// of a communicator of the given size: sizes differ by at most one,
// larger groups first. It is the sizing rule behind every backend's
// SplitEqual and is exported so that algorithms (data delivery) can
// compute group geometry without communication.
func GroupSizes(size, groups int) []int {
	base, rem := size/groups, size%groups
	out := make([]int, groups)
	for g := range out {
		out[g] = base
		if g < rem {
			out[g]++
		}
	}
	return out
}

// The split geometry below is shared by all backends: the conformance
// contract (byte-identical output across backends) requires them to
// agree on group shapes exactly, so the rank-window computations live
// here once and the backends only wrap the resulting windows in their
// own communicator types.

// EqualStarts returns the member-index boundaries of `groups` balanced
// contiguous groups of a communicator of the given size (the starts
// vector SplitEqual feeds to SplitStarts). ok is false for an invalid
// group count.
func EqualStarts(size, groups int) (starts []int, ok bool) {
	if groups <= 0 || groups > size {
		return nil, false
	}
	sizes := GroupSizes(size, groups)
	starts = make([]int, groups+1)
	for g := 0; g < groups; g++ {
		starts[g+1] = starts[g] + sizes[g]
	}
	return starts, true
}

// SplitBounds locates member me in the contiguous partition given by
// starts over a communicator of the given size: it returns the member
// window [lo, hi) and group index g of me's group. ok is false when the
// bounds are malformed or do not cover me.
func SplitBounds(starts []int, size, me int) (lo, hi, g int, ok bool) {
	if len(starts) < 2 || starts[0] != 0 || starts[len(starts)-1] != size {
		return 0, 0, 0, false
	}
	// Locate my group by scanning; group counts are small (O(r)). The
	// scan also validates monotonicity: decreasing bounds would assign
	// some members to several groups, and PEs would silently disagree on
	// the group geometry.
	found, flo, fhi, fg := false, 0, 0, 0
	for g := 0; g+1 < len(starts); g++ {
		lo, hi := starts[g], starts[g+1]
		if lo > hi {
			return 0, 0, 0, false
		}
		if !found && me >= lo && me < hi {
			found, flo, fhi, fg = true, lo, hi, g
		}
	}
	return flo, fhi, fg, found
}

// ModuloRanks strides the member rank list into the modulo-m group of
// member me: it returns the global ranks of me's group, me's rank
// within it, and the group index. ok is false for an invalid m.
func ModuloRanks(ranks []int, me, m int) (sub []int, newMe, g int, ok bool) {
	if m <= 0 || m > len(ranks) {
		return nil, 0, 0, false
	}
	g = me % m
	sub = make([]int, 0, (len(ranks)-g+m-1)/m)
	for i := g; i < len(ranks); i += m {
		sub = append(sub, ranks[i])
	}
	return sub, me / m, g, true
}
