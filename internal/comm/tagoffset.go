package comm

// WithTagOffset returns a view of c that relabels every message tag by a
// fixed offset: Send(to, tag, ...) becomes Send(to, tag+off, ...) on the
// underlying communicator, and likewise for Recv. Communicators split
// from the view stay offset.
//
// The offset view is how one mesh runs many collective jobs at once: give
// each job a disjoint tag block (an "epoch" — see internal/svc) and the
// jobs' messages cannot be confused even though they cross the same
// connections, because every backend matches messages by (sender, tag)
// with FIFO order per pair. The algorithms' own tags all sit below
// 1<<24, so offsets that are multiples of 1<<24 yield fully disjoint
// namespaces.
//
// The view deliberately does not forward the observability Source hook
// (obs.From on a view returns nil): span recording is bound to the
// single goroutine running a rank's PE program, while offset views exist
// precisely so several goroutines can run collectives on one rank
// concurrently. Machine-level counters (transport frames, mailbox depth)
// are recorded below the communicator and stay live.
func WithTagOffset(c Communicator, off int) Communicator {
	if off == 0 {
		return c
	}
	if t, ok := c.(*tagOffsetComm); ok {
		return &tagOffsetComm{inner: t.inner, off: t.off + off}
	}
	return &tagOffsetComm{inner: c, off: off}
}

// TagOffsetOf returns the accumulated tag offset of a WithTagOffset view
// (0 for any other communicator).
func TagOffsetOf(c Communicator) int {
	if t, ok := c.(*tagOffsetComm); ok {
		return t.off
	}
	return 0
}

// tagOffsetComm relabels tags by a constant offset and delegates
// everything else.
type tagOffsetComm struct {
	inner Communicator
	off   int
}

var _ Communicator = (*tagOffsetComm)(nil)

func (t *tagOffsetComm) Size() int            { return t.inner.Size() }
func (t *tagOffsetComm) Rank() int            { return t.inner.Rank() }
func (t *tagOffsetComm) GlobalRank(r int) int { return t.inner.GlobalRank(r) }

func (t *tagOffsetComm) Send(to, tag int, payload any, words int64) {
	t.inner.Send(to, tag+t.off, payload, words)
}

func (t *tagOffsetComm) Recv(from, tag int) (any, int64) {
	return t.inner.Recv(from, tag+t.off)
}

func (t *tagOffsetComm) SplitEqual(groups int) (Communicator, int) {
	c, g := t.inner.SplitEqual(groups)
	return &tagOffsetComm{inner: c, off: t.off}, g
}

func (t *tagOffsetComm) SplitStarts(starts []int) (Communicator, int) {
	c, g := t.inner.SplitStarts(starts)
	return &tagOffsetComm{inner: c, off: t.off}, g
}

func (t *tagOffsetComm) SplitModulo(m int) (Communicator, int) {
	c, g := t.inner.SplitModulo(m)
	return &tagOffsetComm{inner: c, off: t.off}, g
}

func (t *tagOffsetComm) Subset(lo, hi int) Communicator {
	return &tagOffsetComm{inner: t.inner.Subset(lo, hi), off: t.off}
}

func (t *tagOffsetComm) Cost() Cost { return t.inner.Cost() }
