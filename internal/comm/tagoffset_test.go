package comm

import "testing"

// recComm records the tags Send/Recv were invoked with and supports
// enough of the split surface to test that views stay offset.
type recComm struct {
	size, rank int
	sendTags   []int
	recvTags   []int
}

func (r *recComm) Size() int            { return r.size }
func (r *recComm) Rank() int            { return r.rank }
func (r *recComm) GlobalRank(x int) int { return x }

func (r *recComm) Send(to, tag int, payload any, words int64) {
	r.sendTags = append(r.sendTags, tag)
}

func (r *recComm) Recv(from, tag int) (any, int64) {
	r.recvTags = append(r.recvTags, tag)
	return nil, 0
}

func (r *recComm) SplitEqual(groups int) (Communicator, int) { return r, 0 }
func (r *recComm) SplitStarts(starts []int) (Communicator, int) {
	return r, 0
}
func (r *recComm) SplitModulo(m int) (Communicator, int) { return r, 0 }
func (r *recComm) Subset(lo, hi int) Communicator        { return r }
func (r *recComm) Cost() Cost                            { return WallClock{} }

func TestTagOffsetRelabels(t *testing.T) {
	base := &recComm{size: 4, rank: 1}
	const off = 7 << 24
	v := WithTagOffset(base, off)
	if v.Size() != 4 || v.Rank() != 1 || v.GlobalRank(3) != 3 {
		t.Fatalf("geometry not delegated")
	}
	v.Send(0, 0x7c0001, nil, 1)
	v.Recv(2, 0x7d0002)
	if got := base.sendTags[0]; got != 0x7c0001+off {
		t.Fatalf("send tag %#x, want %#x", got, 0x7c0001+off)
	}
	if got := base.recvTags[0]; got != 0x7d0002+off {
		t.Fatalf("recv tag %#x, want %#x", got, 0x7d0002+off)
	}
	if TagOffsetOf(v) != off {
		t.Fatalf("TagOffsetOf = %d, want %d", TagOffsetOf(v), off)
	}
	if TagOffsetOf(base) != 0 {
		t.Fatalf("TagOffsetOf(base) = %d, want 0", TagOffsetOf(base))
	}
}

func TestTagOffsetZeroIsIdentity(t *testing.T) {
	base := &recComm{size: 2}
	if got := WithTagOffset(base, 0); got != Communicator(base) {
		t.Fatalf("zero offset should return the communicator unchanged")
	}
}

func TestTagOffsetComposesAndSurvivesSplits(t *testing.T) {
	base := &recComm{size: 8, rank: 2}
	v := WithTagOffset(WithTagOffset(base, 1<<24), 2<<24)
	if TagOffsetOf(v) != 3<<24 {
		t.Fatalf("stacked offsets should sum: got %#x", TagOffsetOf(v))
	}
	sub, _ := v.SplitEqual(2)
	sub.Send(0, 5, nil, 1)
	if got := base.sendTags[0]; got != 5+3<<24 {
		t.Fatalf("split view send tag %#x, want %#x", got, 5+3<<24)
	}
	sub2, _ := v.SplitModulo(2)
	sub2.Recv(0, 9)
	sub3, _ := v.SplitStarts([]int{0, 8})
	sub3.Recv(0, 11)
	v.Subset(0, 8).Recv(0, 13)
	for i, want := range []int{9 + 3<<24, 11 + 3<<24, 13 + 3<<24} {
		if base.recvTags[i] != want {
			t.Fatalf("recv tag %d: %#x, want %#x", i, base.recvTags[i], want)
		}
	}
}
