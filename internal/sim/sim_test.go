package sim

import (
	"testing"
	"testing/quick"
)

func TestTopologyLinkClasses(t *testing.T) {
	topo := Topology{CoresPerNode: 4, NodesPerIsland: 2}
	cases := []struct {
		a, b int
		want LinkClass
	}{
		{0, 0, LinkSelf},
		{0, 3, LinkNode},   // same node 0
		{0, 4, LinkIsland}, // node 0 vs node 1, island 0
		{3, 7, LinkIsland},
		{0, 8, LinkCross}, // island 0 vs island 1
		{7, 8, LinkCross},
		{15, 8, LinkCross}, // island 1 vs island 1? node 3 vs node 2 -> island 1 both
	}
	// fix the last case: ranks 8..15 are nodes 2,3 -> island 1.
	cases[len(cases)-1].want = LinkIsland
	for _, tc := range cases {
		if got := topo.Link(tc.a, tc.b); got != tc.want {
			t.Errorf("Link(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := topo.Link(tc.b, tc.a); got != tc.want {
			t.Errorf("Link(%d,%d) = %v, want %v (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestTopologyNodeIsland(t *testing.T) {
	topo := DefaultTopology()
	if topo.Node(0) != 0 || topo.Node(15) != 0 || topo.Node(16) != 1 {
		t.Fatalf("Node mapping wrong: %d %d %d", topo.Node(0), topo.Node(15), topo.Node(16))
	}
	if topo.PEsPerIsland() != 512 {
		t.Fatalf("PEsPerIsland = %d, want 512", topo.PEsPerIsland())
	}
	if topo.Island(511) != 0 || topo.Island(512) != 1 {
		t.Fatalf("Island mapping wrong: %d %d", topo.Island(511), topo.Island(512))
	}
}

func TestLinkClassString(t *testing.T) {
	want := map[LinkClass]string{LinkSelf: "self", LinkNode: "node", LinkIsland: "island", LinkCross: "cross"}
	for lc, s := range want {
		if lc.String() != s {
			t.Errorf("String(%d) = %q, want %q", lc, lc.String(), s)
		}
	}
}

// TestSendRecvCost verifies the exact α+ℓβ accounting on both endpoints.
func TestSendRecvCost(t *testing.T) {
	cost := DefaultCost()
	m := New(2, FlatTopology(), cost)
	const words = 1000
	res := m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Send(1, 7, "hi", words)
		} else {
			payload, w := pe.Recv(0, 7)
			if payload.(string) != "hi" || w != words {
				t.Errorf("bad payload %v words %d", payload, w)
			}
		}
	})
	// Flat topology: one island, one PE per node -> island links.
	want := cost.MsgNS(LinkIsland, words)
	if res.Times[0] != want {
		t.Errorf("sender clock = %d, want %d", res.Times[0], want)
	}
	// Receiver starts at max(0, sendStart=0) and pays the same cost.
	if res.Times[1] != want {
		t.Errorf("receiver clock = %d, want %d", res.Times[1], want)
	}
}

// TestReceiverWaitsForSender checks that a receive cannot complete before
// the send began.
func TestReceiverWaitsForSender(t *testing.T) {
	m := NewDefault(2)
	const delay = 1_000_000
	res := m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Charge(delay) // sender is busy first
			pe.Send(1, 1, nil, 10)
		} else {
			pe.Recv(0, 1)
		}
	})
	lc := DefaultTopology().Link(0, 1)
	want := delay + DefaultCost().MsgNS(lc, 10)
	if res.Times[1] != want {
		t.Errorf("receiver clock = %d, want %d", res.Times[1], want)
	}
}

// TestFIFOPerPair checks messages between one pair with one tag arrive in
// send order.
func TestFIFOPerPair(t *testing.T) {
	m := NewDefault(2)
	const n = 100
	m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			for i := 0; i < n; i++ {
				pe.Send(1, 3, i, 1)
			}
		} else {
			for i := 0; i < n; i++ {
				got, _ := pe.Recv(0, 3)
				if got.(int) != i {
					t.Errorf("message %d arrived out of order: got %d", i, got)
					return
				}
			}
		}
	})
}

// TestTagsIndependent checks that messages with different tags do not
// block each other even when received out of send order.
func TestTagsIndependent(t *testing.T) {
	m := NewDefault(2)
	m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Send(1, 1, "first", 1)
			pe.Send(1, 2, "second", 1)
		} else {
			p2, _ := pe.Recv(0, 2)
			p1, _ := pe.Recv(0, 1)
			if p1.(string) != "first" || p2.(string) != "second" {
				t.Errorf("tag matching broken: %v %v", p1, p2)
			}
		}
	})
}

// TestDeterministicClocks runs a communication-heavy program twice and
// demands identical virtual clocks (scheduling independence).
func TestDeterministicClocks(t *testing.T) {
	prog := func(pe *PE) {
		p := pe.P()
		// Ring shifts with varying sizes plus local work.
		for round := 0; round < 5; round++ {
			next := (pe.Rank() + 1) % p
			prev := (pe.Rank() + p - 1) % p
			pe.Send(next, 9, pe.Rank(), int64(1+round*pe.Rank()))
			pe.Recv(prev, 9)
			pe.ChargeOps(int64(pe.Rank() * 100))
		}
	}
	run := func() []int64 {
		m := NewDefault(33)
		return m.Run(prog).Times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clock of PE %d differs across runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestMachineReset(t *testing.T) {
	m := NewDefault(4)
	m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Send(1, 1, nil, 5)
		}
		if pe.Rank() == 1 {
			pe.Recv(0, 1)
		}
		pe.Charge(100)
	})
	m.Reset()
	res := m.Run(func(pe *PE) {})
	if res.MaxTime != 0 {
		t.Errorf("clocks not reset: max=%d", res.MaxTime)
	}
}

func TestResetDetectsLeakedMessages(t *testing.T) {
	m := NewDefault(2)
	m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Send(1, 1, nil, 1) // never received
		}
	})
	defer func() {
		if recover() == nil {
			t.Errorf("Reset did not panic on leaked message")
		}
	}()
	m.Reset()
}

func TestRunPropagatesPanic(t *testing.T) {
	m := NewDefault(3)
	defer func() {
		if recover() == nil {
			t.Errorf("Run did not propagate PE panic")
		}
	}()
	m.Run(func(pe *PE) {
		if pe.Rank() == 1 {
			panic("boom")
		}
	})
}

func TestGroupSizes(t *testing.T) {
	if err := quick.Check(func(size, groups uint8) bool {
		s := int(size%200) + 1
		g := int(groups)%s + 1
		sizes := GroupSizes(s, g)
		sum, minSz, maxSz := 0, s+1, -1
		for _, x := range sizes {
			sum += x
			if x < minSz {
				minSz = x
			}
			if x > maxSz {
				maxSz = x
			}
		}
		return sum == s && maxSz-minSz <= 1 && len(sizes) == g
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitEqual(t *testing.T) {
	m := NewDefault(10)
	m.Run(func(pe *PE) {
		world := World(pe)
		sub, g := world.SplitEqual(3)
		// Sizes must be 4,3,3; group of rank r is deterministic.
		wantSizes := []int{4, 3, 3}
		if sub.Size() != wantSizes[g] {
			t.Errorf("rank %d: group %d size %d, want %d", pe.Rank(), g, sub.Size(), wantSizes[g])
		}
		// Global ranks must be contiguous and contain this PE.
		if sub.GlobalRank(sub.Rank()) != pe.Rank() {
			t.Errorf("rank %d: wrong self mapping", pe.Rank())
		}
		for i := 1; i < sub.Size(); i++ {
			if sub.GlobalRank(i) != sub.GlobalRank(i-1)+1 {
				t.Errorf("rank %d: group not contiguous", pe.Rank())
			}
		}
	})
}

func TestSubgroupCommunication(t *testing.T) {
	m := NewDefault(8)
	m.Run(func(pe *PE) {
		world := World(pe)
		sub, g := world.SplitEqual(2)
		// Ring within the subgroup; group-relative addressing.
		next := (sub.Rank() + 1) % sub.Size()
		prev := (sub.Rank() + sub.Size() - 1) % sub.Size()
		sub.Send(next, 4, g*100+sub.Rank(), 1)
		got, _ := sub.Recv(prev, 4)
		if got.(int) != g*100+prev {
			t.Errorf("rank %d: got %v from subgroup ring", pe.Rank(), got)
		}
	})
}

func TestSubsetAndSplitStarts(t *testing.T) {
	m := NewDefault(9)
	m.Run(func(pe *PE) {
		world := World(pe)
		sub, g := world.SplitStarts([]int{0, 2, 3, 9})
		sizes := []int{2, 1, 6}
		if sub.Size() != sizes[g] {
			t.Errorf("rank %d: group %d size %d want %d", pe.Rank(), g, sub.Size(), sizes[g])
		}
		if pe.Rank() >= 3 {
			ss := world.Subset(3, 9)
			if ss.Size() != 6 || ss.GlobalRank(0) != 3 {
				t.Errorf("Subset wrong: size=%d first=%d", ss.Size(), ss.GlobalRank(0))
			}
		}
	})
}

func TestChargeHelpers(t *testing.T) {
	m := NewDefault(1)
	res := m.Run(func(pe *PE) {
		pe.ChargeSortOps(8) // 8 * log2(8)=3 -> 24 ops * 1.5ns = 36
	})
	if res.MaxTime != 36 {
		t.Errorf("ChargeSortOps(8) charged %d ns, want 36", res.MaxTime)
	}
	if log2Ceil(1) != 0 || log2Ceil(2) != 1 || log2Ceil(3) != 2 || log2Ceil(1024) != 10 || log2Ceil(1025) != 11 {
		t.Errorf("log2Ceil wrong: %d %d %d %d %d", log2Ceil(1), log2Ceil(2), log2Ceil(3), log2Ceil(1024), log2Ceil(1025))
	}
}

func TestTrafficCounters(t *testing.T) {
	m := NewDefault(2)
	m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Send(1, 1, nil, 42)
			pe.Send(1, 1, nil, 8)
		} else {
			pe.Recv(0, 1)
			pe.Recv(0, 1)
		}
	})
	if s := m.PE(0); s.MsgsSent != 2 || s.WordsSent != 50 {
		t.Errorf("sender counters: msgs=%d words=%d", s.MsgsSent, s.WordsSent)
	}
	if r := m.PE(1); r.MsgsRecv != 2 || r.WordsRecv != 50 {
		t.Errorf("receiver counters: msgs=%d words=%d", r.MsgsRecv, r.WordsRecv)
	}
}
