package sim

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceCollectsEvents(t *testing.T) {
	m := NewDefault(2)
	m.EnableTracing()
	m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Mark("before send")
			pe.Send(1, 7, "x", 3)
		} else {
			pe.Recv(0, 7)
			pe.Mark("after recv")
		}
	})
	evs := m.Trace()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(evs), evs)
	}
	// Sorted by time: mark(t=0), send, recv, mark.
	if evs[0].Kind != EvMark || evs[0].Rank != 0 || evs[0].Label != "before send" {
		t.Errorf("first event wrong: %+v", evs[0])
	}
	var sawSend, sawRecv bool
	for _, ev := range evs {
		switch ev.Kind {
		case EvSend:
			sawSend = true
			if ev.Rank != 0 || ev.Peer != 1 || ev.Tag != 7 || ev.Words != 3 {
				t.Errorf("send event wrong: %+v", ev)
			}
		case EvRecv:
			sawRecv = true
			if ev.Rank != 1 || ev.Peer != 0 || ev.Words != 3 {
				t.Errorf("recv event wrong: %+v", ev)
			}
		}
	}
	if !sawSend || !sawRecv {
		t.Errorf("missing send/recv events")
	}
	// Events are time-ordered.
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Errorf("trace not time-sorted at %d", i)
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := NewDefault(2)
	m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Send(1, 1, nil, 1)
		} else {
			pe.Recv(0, 1)
		}
	})
	if evs := m.Trace(); len(evs) != 0 {
		t.Errorf("tracing collected %d events while disabled", len(evs))
	}
}

func TestTraceDisableAndClear(t *testing.T) {
	m := NewDefault(2)
	m.EnableTracing()
	m.Run(func(pe *PE) { pe.Mark("a") })
	m.DisableTracing()
	m.Run(func(pe *PE) { pe.Mark("b") })
	evs := m.Trace()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (only while enabled)", len(evs))
	}
	m.ClearTrace()
	if len(m.Trace()) != 0 {
		t.Errorf("ClearTrace left events behind")
	}
}

func TestWriteTrace(t *testing.T) {
	m := NewDefault(2)
	m.EnableTracing()
	m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Mark("phase start")
			pe.Send(1, 0x42, nil, 5)
		} else {
			pe.Recv(0, 0x42)
		}
	})
	var buf bytes.Buffer
	if err := m.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"phase start", "send", "recv", "tag=0x42", "words=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace dump missing %q:\n%s", want, out)
		}
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{EvSend: "send", EvRecv: "recv", EvMark: "mark"} {
		if k.String() != want {
			t.Errorf("EventKind(%d) = %q want %q", k, k.String(), want)
		}
	}
}
