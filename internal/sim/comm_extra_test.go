package sim

import "testing"

func TestSplitModulo(t *testing.T) {
	m := NewDefault(10)
	m.Run(func(pe *PE) {
		world := World(pe)
		col, g := world.SplitModulo(3)
		if g != pe.Rank()%3 {
			t.Errorf("rank %d: group %d want %d", pe.Rank(), g, pe.Rank()%3)
		}
		wantSize := []int{4, 3, 3}[g] // ranks ≡0: 0,3,6,9; ≡1: 1,4,7; ≡2: 2,5,8
		if col.Size() != wantSize {
			t.Errorf("rank %d: column size %d want %d", pe.Rank(), col.Size(), wantSize)
		}
		if col.GlobalRank(col.Rank()) != pe.Rank() {
			t.Errorf("rank %d: wrong self mapping", pe.Rank())
		}
		for i := 1; i < col.Size(); i++ {
			if col.GlobalRank(i)-col.GlobalRank(i-1) != 3 {
				t.Errorf("rank %d: column stride broken", pe.Rank())
			}
		}
	})
}

func TestSplitModuloCommunication(t *testing.T) {
	m := NewDefault(12)
	m.Run(func(pe *PE) {
		world := World(pe)
		col, _ := world.SplitModulo(4)
		// Ring within the column.
		next := (col.Rank() + 1) % col.Size()
		prev := (col.Rank() + col.Size() - 1) % col.Size()
		col.Send(next, 8, pe.Rank(), 1)
		got, _ := col.Recv(prev, 8)
		if got.(int) != col.GlobalRank(prev) {
			t.Errorf("rank %d: got %v from column ring, want %d", pe.Rank(), got, col.GlobalRank(prev))
		}
	})
}

func TestSpan(t *testing.T) {
	topo := Topology{CoresPerNode: 4, NodesPerIsland: 2}
	m := New(16, topo, DefaultCost())
	m.Run(func(pe *PE) {
		world := World(pe)
		if got := world.Span(); got != LinkCross {
			t.Errorf("world span = %v, want cross (2 islands)", got)
		}
		if pe.Rank() < 4 {
			node := world.subset(0, 4)
			if got := node.Span(); got != LinkNode {
				t.Errorf("node span = %v", got)
			}
		}
		if pe.Rank() < 8 {
			island := world.subset(0, 8)
			if got := island.Span(); got != LinkIsland {
				t.Errorf("island span = %v", got)
			}
		}
	})
}

func TestNestedSplits(t *testing.T) {
	m := NewDefault(16)
	m.Run(func(pe *PE) {
		world := World(pe)
		half, hg := world.SplitEqual(2)
		quarter, qg := half.SplitEqual(2)
		if quarter.Size() != 4 {
			t.Errorf("nested split size %d", quarter.Size())
		}
		wantFirst := hg*8 + qg*4
		if quarter.GlobalRank(0) != wantFirst {
			t.Errorf("rank %d: nested group starts at %d want %d", pe.Rank(), quarter.GlobalRank(0), wantFirst)
		}
	})
}

func TestSendInvalidRankPanics(t *testing.T) {
	m := NewDefault(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid destination")
		}
	}()
	m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Send(5, 1, nil, 1)
		}
	})
}

func TestSplitEqualInvalidPanics(t *testing.T) {
	m := NewDefault(4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for groups > size")
		}
	}()
	m.Run(func(pe *PE) {
		World(pe).SplitEqual(9)
	})
}

func TestSendRecvHelper(t *testing.T) {
	m := NewDefault(2)
	m.Run(func(pe *PE) {
		other := 1 - pe.Rank()
		got, w := pe.SendRecv(other, pe.Rank()*11, 3, other, 5)
		if got.(int) != other*11 || w != 3 {
			t.Errorf("SendRecv got %v/%d", got, w)
		}
	})
}

// TestMachineRunReusesClocks: Run without Reset continues the clocks —
// the contract the phase-timing code relies on.
func TestMachineRunReusesClocks(t *testing.T) {
	m := NewDefault(2)
	m.Run(func(pe *PE) { pe.Charge(50) })
	res := m.Run(func(pe *PE) { pe.Charge(7) })
	if res.MaxTime != 57 {
		t.Errorf("clocks did not accumulate across runs: %d", res.MaxTime)
	}
}
