// Package sim implements the machine model of Axtmann et al., "Practical
// Massively Parallel Sorting" (SPAA 2015), §2.1: a distributed-memory
// machine of p processing elements (PEs) that communicate through
// (symmetric) single-ported message passing, where sending a message of
// size ℓ machine words costs time α + ℓ·β on both endpoints.
//
// Every PE runs as a goroutine with its own virtual clock. Messages are
// delivered through per-PE mailboxes; both endpoints are charged the
// single-ported α-β cost, with α and β depending on where sender and
// receiver sit in a SuperMUC-like hierarchy (same PE, same node, same
// island, or across islands over a 4:1 pruned tree). Local computation is
// charged through calibrated per-operation costs (CostModel).
//
// The simulation is deterministic: all receives are addressed by
// (source, tag), message queues are FIFO per (source, tag) pair, and
// virtual time is computed with max() over sender/receiver clocks, so the
// resulting clocks do not depend on goroutine scheduling. Algorithms run
// for real on real data — only time is virtual.
package sim
