package sim

import "fmt"

// Comm is a communicator: an ordered group of PEs (identified by global
// ranks) with this PE's position in it. Group-relative ranks 0..Size()-1
// address members. Communicators are cheap, purely local values — no
// communication is needed to split them (the paper excludes MPI
// communicator construction from its timings for the same reason).
type Comm struct {
	pe    *PE
	ranks []int // global ranks of the members, ascending
	me    int   // index of pe in ranks
}

// World returns the communicator containing all PEs of pe's machine.
func World(pe *PE) *Comm {
	ranks := pe.m.worldRanks()
	return &Comm{pe: pe, ranks: ranks, me: pe.rank}
}

// worldRanks returns the shared 0..p-1 rank slice, built lazily once.
func (m *Machine) worldRanks() []int {
	m.worldOnce.Do(func() {
		m.world = make([]int, m.p)
		for i := range m.world {
			m.world[i] = i
		}
	})
	return m.world
}

// PE returns the PE this communicator view belongs to.
func (c *Comm) PE() *PE { return c.pe }

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.ranks) }

// Rank returns this PE's group-relative rank.
func (c *Comm) Rank() int { return c.me }

// GlobalRank translates a group-relative rank to a machine rank.
func (c *Comm) GlobalRank(r int) int { return c.ranks[r] }

// Send sends to the member with group-relative rank `to`.
func (c *Comm) Send(to, tag int, payload any, words int64) {
	c.pe.Send(c.ranks[to], tag, payload, words)
}

// Recv receives from the member with group-relative rank `from`.
func (c *Comm) Recv(from, tag int) (any, int64) {
	return c.pe.Recv(c.ranks[from], tag)
}

// GroupSizes returns the sizes of `groups` balanced contiguous groups of
// a communicator of the given size: sizes differ by at most one, larger
// groups first.
func GroupSizes(size, groups int) []int {
	base, rem := size/groups, size%groups
	out := make([]int, groups)
	for g := range out {
		out[g] = base
		if g < rem {
			out[g]++
		}
	}
	return out
}

// SplitEqual partitions the members into `groups` balanced contiguous
// groups (sizes differing by at most one) and returns the communicator of
// this PE's group together with the group index.
func (c *Comm) SplitEqual(groups int) (*Comm, int) {
	if groups <= 0 || groups > len(c.ranks) {
		panic(fmt.Sprintf("sim: SplitEqual(%d) on communicator of size %d", groups, len(c.ranks)))
	}
	starts := make([]int, groups+1)
	sizes := GroupSizes(len(c.ranks), groups)
	for g := 0; g < groups; g++ {
		starts[g+1] = starts[g] + sizes[g]
	}
	return c.SplitStarts(starts)
}

// SplitStarts partitions the members into contiguous groups given by
// starts: group g consists of member indices starts[g]..starts[g+1]-1,
// with starts[0] == 0 and starts[len-1] == Size(). Empty groups are
// allowed for groups this PE is not part of. Returns this PE's group
// communicator and group index.
func (c *Comm) SplitStarts(starts []int) (*Comm, int) {
	if len(starts) < 2 || starts[0] != 0 || starts[len(starts)-1] != len(c.ranks) {
		panic(fmt.Sprintf("sim: SplitStarts with invalid bounds %v for size %d", starts, len(c.ranks)))
	}
	// Locate my group by scanning; group counts are small (O(r)).
	for g := 0; g+1 < len(starts); g++ {
		lo, hi := starts[g], starts[g+1]
		if c.me >= lo && c.me < hi {
			return &Comm{pe: c.pe, ranks: c.ranks[lo:hi], me: c.me - lo}, g
		}
	}
	panic("sim: SplitStarts: rank not covered by bounds")
}

// SplitModulo partitions the members into m groups by rank modulo m
// (group g holds the members with rank ≡ g mod m — "column" groups of a
// row-major grid). Returns this PE's group communicator and group index.
func (c *Comm) SplitModulo(m int) (*Comm, int) {
	if m <= 0 || m > len(c.ranks) {
		panic(fmt.Sprintf("sim: SplitModulo(%d) on communicator of size %d", m, len(c.ranks)))
	}
	g := c.me % m
	ranks := make([]int, 0, (len(c.ranks)-g+m-1)/m)
	for i := g; i < len(c.ranks); i += m {
		ranks = append(ranks, c.ranks[i])
	}
	return &Comm{pe: c.pe, ranks: ranks, me: c.me / m}, g
}

// Subset returns the communicator of members [lo, hi). This PE must be a
// member of the subset.
func (c *Comm) Subset(lo, hi int) *Comm {
	if c.me < lo || c.me >= hi {
		panic(fmt.Sprintf("sim: Subset(%d,%d) does not contain rank %d", lo, hi, c.me))
	}
	return &Comm{pe: c.pe, ranks: c.ranks[lo:hi], me: c.me - lo}
}

// Link classifies the network link between this PE and member `to`.
func (c *Comm) Link(to int) LinkClass {
	return c.pe.m.topo.Link(c.pe.rank, c.ranks[to])
}

// Span returns the widest link class occurring inside the group. For the
// contiguous rank ranges used throughout the library this is the link
// between the first and the last member.
func (c *Comm) Span() LinkClass {
	return c.pe.m.topo.Link(c.ranks[0], c.ranks[len(c.ranks)-1])
}
