package sim

import (
	"fmt"

	"pmsort/internal/comm"
	"pmsort/internal/obs"
)

// Comm is a communicator: an ordered group of PEs (identified by global
// ranks) with this PE's position in it. Group-relative ranks 0..Size()-1
// address members. Communicators are cheap, purely local values — no
// communication is needed to split them (the paper excludes MPI
// communicator construction from its timings for the same reason).
//
// Comm is the simulated backend of comm.Communicator: messages cost
// virtual α + ℓ·β time by link class, and the cost hook charges local
// work against the virtual clock.
type Comm struct {
	pe    *PE
	ranks []int // global ranks of the members, ascending
	me    int   // index of pe in ranks
}

var _ comm.Communicator = (*Comm)(nil)

// World returns the communicator containing all PEs of pe's machine.
func World(pe *PE) *Comm {
	ranks := pe.m.worldRanks()
	return &Comm{pe: pe, ranks: ranks, me: pe.rank}
}

// worldRanks returns the shared 0..p-1 rank slice, built lazily once.
func (m *Machine) worldRanks() []int {
	m.worldOnce.Do(func() {
		m.world = make([]int, m.p)
		for i := range m.world {
			m.world[i] = i
		}
	})
	return m.world
}

// PE returns the PE this communicator view belongs to.
func (c *Comm) PE() *PE { return c.pe }

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.ranks) }

// Rank returns this PE's group-relative rank.
func (c *Comm) Rank() int { return c.me }

// GlobalRank translates a group-relative rank to a machine rank.
func (c *Comm) GlobalRank(r int) int { return c.ranks[r] }

// Send sends to the member with group-relative rank `to`.
func (c *Comm) Send(to, tag int, payload any, words int64) {
	c.pe.Send(c.ranks[to], tag, payload, words)
}

// Recv receives from the member with group-relative rank `from`.
func (c *Comm) Recv(from, tag int) (any, int64) {
	return c.pe.Recv(c.ranks[from], tag)
}

// GroupSizes returns the sizes of `groups` balanced contiguous groups of
// a communicator of the given size: sizes differ by at most one, larger
// groups first.
func GroupSizes(size, groups int) []int {
	return comm.GroupSizes(size, groups)
}

// SplitEqual partitions the members into `groups` balanced contiguous
// groups (sizes differing by at most one) and returns the communicator of
// this PE's group together with the group index.
func (c *Comm) SplitEqual(groups int) (comm.Communicator, int) {
	starts, ok := comm.EqualStarts(len(c.ranks), groups)
	if !ok {
		panic(fmt.Sprintf("sim: SplitEqual(%d) on communicator of size %d", groups, len(c.ranks)))
	}
	return c.SplitStarts(starts)
}

// SplitStarts partitions the members into contiguous groups given by
// starts: group g consists of member indices starts[g]..starts[g+1]-1,
// with starts[0] == 0 and starts[len-1] == Size(). Empty groups are
// allowed for groups this PE is not part of. Returns this PE's group
// communicator and group index.
func (c *Comm) SplitStarts(starts []int) (comm.Communicator, int) {
	lo, hi, g, ok := comm.SplitBounds(starts, len(c.ranks), c.me)
	if !ok {
		panic(fmt.Sprintf("sim: SplitStarts with invalid bounds %v for size %d rank %d", starts, len(c.ranks), c.me))
	}
	return &Comm{pe: c.pe, ranks: c.ranks[lo:hi], me: c.me - lo}, g
}

// SplitModulo partitions the members into m groups by rank modulo m
// (group g holds the members with rank ≡ g mod m — "column" groups of a
// row-major grid). Returns this PE's group communicator and group index.
func (c *Comm) SplitModulo(m int) (comm.Communicator, int) {
	ranks, me, g, ok := comm.ModuloRanks(c.ranks, c.me, m)
	if !ok {
		panic(fmt.Sprintf("sim: SplitModulo(%d) on communicator of size %d", m, len(c.ranks)))
	}
	return &Comm{pe: c.pe, ranks: ranks, me: me}, g
}

// Subset returns the communicator of members [lo, hi). This PE must be a
// member of the subset.
func (c *Comm) Subset(lo, hi int) comm.Communicator {
	return c.subset(lo, hi)
}

// subset is Subset with the concrete return type (for sim-internal use).
func (c *Comm) subset(lo, hi int) *Comm {
	if c.me < lo || c.me >= hi {
		panic(fmt.Sprintf("sim: Subset(%d,%d) does not contain rank %d", lo, hi, c.me))
	}
	return &Comm{pe: c.pe, ranks: c.ranks[lo:hi], me: c.me - lo}
}

// Cost returns the hook charging cost annotations against this PE's
// virtual clock under the machine's cost model.
func (c *Comm) Cost() comm.Cost { return costHook{c} }

// ObsRecorder returns this PE's obs recorder (nil unless the machine's
// EnableObs was called) — the obs.Source hook; split communicators
// share the PE and so stay traced.
func (c *Comm) ObsRecorder() *obs.Recorder { return c.pe.m.ObsRecorder(c.pe.rank) }

// Link classifies the network link between this PE and member `to`.
func (c *Comm) Link(to int) LinkClass {
	return c.pe.m.topo.Link(c.pe.rank, c.ranks[to])
}

// Span returns the widest link class occurring inside the group. For the
// contiguous rank ranges used throughout the library this is the link
// between the first and the last member.
func (c *Comm) Span() LinkClass {
	return c.pe.m.topo.Link(c.ranks[0], c.ranks[len(c.ranks)-1])
}

// costHook implements comm.Cost by charging the virtual clock.
type costHook struct{ c *Comm }

func (h costHook) Ops(n int64)          { h.c.pe.ChargeOps(n) }
func (h costHook) PartitionOps(n int64) { h.c.pe.ChargePartitionOps(n) }
func (h costHook) Scan(n int64)         { h.c.pe.ChargeScan(n) }
func (h costHook) SortOps(n int64)      { h.c.pe.ChargeSortOps(n) }
func (h costHook) Now() int64           { return h.c.pe.Now() }

// BarrierSync replaces a timed barrier's internal message costs with the
// modeled exit time entry + 2·⌈log₂ p⌉·α over the group's widest link,
// setting all members' clocks to the identical value (§7.1: phases are
// delimited by MPI_Barrier calls in the paper's measurements).
func (h costHook) BarrierSync(entry int64) int64 {
	rounds := int64(0)
	for d := 1; d < h.c.Size(); d <<= 1 {
		rounds++
	}
	exit := entry + 2*rounds*h.c.pe.Cost().Alpha[h.c.Span()]
	h.c.pe.SyncTo(exit)
	return exit
}
