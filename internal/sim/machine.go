package sim

import (
	"fmt"
	"sync"

	"pmsort/internal/obs"
)

// Machine is a simulated distributed-memory machine of p PEs.
type Machine struct {
	p    int
	topo Topology
	cost CostModel
	pes  []*PE

	worldOnce sync.Once
	world     []int

	// trace collects Send/Recv/Mark events when enabled (trace.go).
	trace *tracer

	// rec holds the per-PE obs recorders when EnableObs was called
	// (nil otherwise — the disabled fast path).
	rec []*obs.Recorder
}

// New creates a machine with p PEs, the given topology and cost model.
func New(p int, topo Topology, cost CostModel) *Machine {
	if p <= 0 {
		panic(fmt.Sprintf("sim: invalid machine size p=%d", p))
	}
	m := &Machine{p: p, topo: topo, cost: cost}
	m.pes = make([]*PE, p)
	for i := range m.pes {
		m.pes[i] = &PE{rank: i, m: m, mbox: newMailbox()}
	}
	return m
}

// NewDefault creates a machine with p PEs using DefaultTopology and
// DefaultCost.
func NewDefault(p int) *Machine {
	return New(p, DefaultTopology(), DefaultCost())
}

// P returns the number of PEs.
func (m *Machine) P() int { return m.p }

// Topology returns the machine's topology.
func (m *Machine) Topology() Topology { return m.topo }

// PE returns the PE with the given rank. Exposed for counter inspection
// between runs; PE methods remain bound to the goroutine running it.
func (m *Machine) PE(rank int) *PE { return m.pes[rank] }

// EnableObs attaches one obs recorder per PE, timestamped by the PE's
// virtual clock — spans recorded by the backend-neutral instrumentation
// land in virtual time, consistent with the Stats phase timings.
func (m *Machine) EnableObs() {
	if m.rec != nil {
		return
	}
	m.rec = make([]*obs.Recorder, m.p)
	for i, pe := range m.pes {
		pe := pe
		m.rec[i] = obs.NewRecorder(i, m.p, pe.Now)
	}
}

// ObsRecorder returns the given PE's obs recorder (nil when EnableObs
// was not called).
func (m *Machine) ObsRecorder(rank int) *obs.Recorder {
	if m.rec == nil {
		return nil
	}
	return m.rec[rank]
}

// RunResult summarizes a bulk-synchronous program execution.
type RunResult struct {
	// Times[i] is PE i's virtual clock at the end of the program, in ns.
	Times []int64
	// MaxTime is the maximum over Times — the program's makespan.
	MaxTime int64
}

// Run executes fn once per PE (each on its own goroutine), waits for all
// of them, and returns the final virtual clocks. Clocks are *not* reset
// between runs; use Reset for that. If any PE panics, Run re-panics on
// the calling goroutine with the first panic observed.
func (m *Machine) Run(fn func(pe *PE)) RunResult {
	var wg sync.WaitGroup
	wg.Add(m.p)
	panics := make([]any, m.p)
	for i := 0; i < m.p; i++ {
		go func(pe *PE) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[pe.rank] = fmt.Sprintf("PE %d: %v", pe.rank, r)
				}
			}()
			fn(pe)
		}(m.pes[i])
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	res := RunResult{Times: make([]int64, m.p)}
	for i, pe := range m.pes {
		res.Times[i] = pe.now
		if pe.now > res.MaxTime {
			res.MaxTime = pe.now
		}
	}
	return res
}

// Reset zeroes all virtual clocks and traffic counters. It panics if any
// mailbox still holds undelivered messages (a protocol bug in the
// previous program).
func (m *Machine) Reset() {
	for _, pe := range m.pes {
		if n := pe.mbox.pending(); n != 0 {
			panic(fmt.Sprintf("sim: PE %d has %d undelivered messages at Reset", pe.rank, n))
		}
		pe.now = 0
		pe.ResetCounters()
	}
	for _, r := range m.rec {
		r.Reset()
	}
}
