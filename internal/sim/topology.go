package sim

// LinkClass classifies the network distance between two PEs. The classes
// mirror the SuperMUC hierarchy from the paper's §7: PEs (MPI processes)
// on one node share memory, nodes within an island are connected by a
// non-blocking tree, and islands are connected by a pruned tree with a
// 4:1 bandwidth ratio.
type LinkClass int

const (
	// LinkSelf is a message from a PE to itself (a memcpy).
	LinkSelf LinkClass = iota
	// LinkNode connects two PEs on the same node.
	LinkNode
	// LinkIsland connects two nodes within one island.
	LinkIsland
	// LinkCross connects two islands (pruned tree, 4:1 bandwidth ratio).
	LinkCross
	numLinkClasses
)

// String returns a short human-readable name for the link class.
func (lc LinkClass) String() string {
	switch lc {
	case LinkSelf:
		return "self"
	case LinkNode:
		return "node"
	case LinkIsland:
		return "island"
	case LinkCross:
		return "cross"
	}
	return "invalid"
}

// Topology describes the PE placement hierarchy. Ranks are mapped to
// nodes and islands contiguously: rank r lives on node r/CoresPerNode and
// on island node/NodesPerIsland.
type Topology struct {
	// CoresPerNode is the number of PEs per node (SuperMUC: 16).
	CoresPerNode int
	// NodesPerIsland is the number of nodes per island (SuperMUC: 512;
	// scaled down by default so that the largest simulated machines still
	// span several islands).
	NodesPerIsland int
}

// DefaultTopology returns the SuperMUC-like hierarchy used by the
// experiments: 16 PEs per node and 32 nodes (512 PEs) per island.
func DefaultTopology() Topology {
	return Topology{CoresPerNode: 16, NodesPerIsland: 32}
}

// FlatTopology returns a topology in which all PEs are equidistant
// (one huge island, one PE per node). Useful for model experiments that
// do not want hierarchy effects.
func FlatTopology() Topology {
	return Topology{CoresPerNode: 1, NodesPerIsland: 1 << 30}
}

// Node returns the node index hosting the given rank.
func (t Topology) Node(rank int) int {
	if t.CoresPerNode <= 0 {
		return rank
	}
	return rank / t.CoresPerNode
}

// Island returns the island index hosting the given rank.
func (t Topology) Island(rank int) int {
	if t.NodesPerIsland <= 0 {
		return 0
	}
	return t.Node(rank) / t.NodesPerIsland
}

// PEsPerIsland returns the number of PEs in one island.
func (t Topology) PEsPerIsland() int {
	return t.CoresPerNode * t.NodesPerIsland
}

// Link classifies the connection between two ranks.
func (t Topology) Link(a, b int) LinkClass {
	if a == b {
		return LinkSelf
	}
	na, nb := t.Node(a), t.Node(b)
	if na == nb {
		return LinkNode
	}
	if na/t.NodesPerIsland == nb/t.NodesPerIsland {
		return LinkIsland
	}
	return LinkCross
}
