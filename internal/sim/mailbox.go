package sim

import "sync"

// message is an in-flight point-to-point message.
type message struct {
	payload any
	words   int64
	// sentAt is the sender's virtual clock at the moment the send began.
	// The receiver cannot complete the matching receive earlier than this.
	sentAt int64
}

// mboxKey identifies a (source rank, tag) message queue.
type mboxKey struct {
	from, tag int
}

// mailbox is a PE's incoming message store. Messages are matched by
// (source, tag) and are FIFO within each such pair, which is what makes
// virtual time deterministic.
type mailbox struct {
	mu     sync.Mutex
	cond   sync.Cond
	queues map[mboxKey][]message
}

func newMailbox() *mailbox {
	mb := &mailbox{queues: make(map[mboxKey][]message)}
	mb.cond.L = &mb.mu
	return mb
}

// put enqueues a message from the given source rank under the given tag.
func (mb *mailbox) put(from, tag int, m message) {
	k := mboxKey{from, tag}
	mb.mu.Lock()
	mb.queues[k] = append(mb.queues[k], m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take blocks until a message from the given source with the given tag is
// available and dequeues it.
func (mb *mailbox) take(from, tag int) message {
	k := mboxKey{from, tag}
	mb.mu.Lock()
	for len(mb.queues[k]) == 0 {
		mb.cond.Wait()
	}
	q := mb.queues[k]
	m := q[0]
	if len(q) == 1 {
		delete(mb.queues, k)
	} else {
		// Shift instead of re-slicing so the backing array does not pin
		// already-consumed payloads.
		copy(q, q[1:])
		q[len(q)-1] = message{}
		mb.queues[k] = q[:len(q)-1]
	}
	mb.mu.Unlock()
	return m
}

// pending reports the number of undelivered messages (for leak tests).
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := 0
	for _, q := range mb.queues {
		n += len(q)
	}
	return n
}
