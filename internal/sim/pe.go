package sim

import "fmt"

// PE is one processing element of the simulated machine. A PE is bound to
// the goroutine executing it; its methods must not be called from other
// goroutines.
type PE struct {
	rank int
	m    *Machine
	now  int64 // virtual clock, ns
	mbox *mailbox

	// Traffic counters, maintained since the last ResetCounters call.
	// They count application messages (collectives built on Send/Recv
	// contribute their constituent point-to-point messages).
	MsgsSent  int64
	MsgsRecv  int64
	WordsSent int64
	WordsRecv int64
}

// Rank returns this PE's global rank in 0..P()-1.
func (pe *PE) Rank() int { return pe.rank }

// P returns the total number of PEs of the machine.
func (pe *PE) P() int { return pe.m.p }

// Machine returns the machine this PE belongs to.
func (pe *PE) Machine() *Machine { return pe.m }

// Cost returns the machine's cost model.
func (pe *PE) Cost() *CostModel { return &pe.m.cost }

// Now returns the PE's virtual clock in nanoseconds.
func (pe *PE) Now() int64 { return pe.now }

// AdvanceTo moves the virtual clock forward to t; it never moves it back.
func (pe *PE) AdvanceTo(t int64) {
	if t > pe.now {
		pe.now = t
	}
}

// SyncTo sets the virtual clock to exactly t, possibly moving it
// backwards. It exists solely for collective barriers that replace their
// internal message costs with a modeled, globally identical exit time;
// algorithms must not use it directly.
func (pe *PE) SyncTo(t int64) { pe.now = t }

// Charge advances the virtual clock by ns nanoseconds of local work.
func (pe *PE) Charge(ns int64) {
	if ns > 0 {
		pe.now += ns
	}
}

// ChargeOps charges n compare-and-move operations (sorting, merging).
func (pe *PE) ChargeOps(n int64) {
	pe.Charge(int64(pe.m.cost.OpNS * float64(n)))
}

// ChargePartitionOps charges n branchless partition steps
// (element × splitter-tree level).
func (pe *PE) ChargePartitionOps(n int64) {
	pe.Charge(int64(pe.m.cost.PartitionOpNS * float64(n)))
}

// ChargeScan charges n sequential scan/copy steps.
func (pe *PE) ChargeScan(n int64) {
	pe.Charge(int64(pe.m.cost.ScanOpNS * float64(n)))
}

// ChargeSortOps charges the cost of comparison-sorting n elements
// (n · ⌈log₂ n⌉ compare-and-move operations).
func (pe *PE) ChargeSortOps(n int64) {
	pe.ChargeOps(n * log2Ceil(n))
}

// log2Ceil returns ⌈log₂ n⌉ for n ≥ 1 (and 0 for n ≤ 1).
func log2Ceil(n int64) int64 {
	var l int64
	for v := int64(1); v < n; v <<= 1 {
		l++
	}
	return l
}

// Send transmits a message of the given payload and size (in words) to
// the PE with the given global rank. The sender is charged the
// single-ported cost α + ℓ·β for the link between the two PEs; the
// receiver is charged the same cost upon the matching Recv and cannot
// complete the receive before the send began.
func (pe *PE) Send(to, tag int, payload any, words int64) {
	if to < 0 || to >= pe.m.p {
		panic(fmt.Sprintf("sim: send from PE %d to invalid rank %d (p=%d)", pe.rank, to, pe.m.p))
	}
	lc := pe.m.topo.Link(pe.rank, to)
	start := pe.now
	pe.now += pe.m.cost.MsgNS(lc, words)
	pe.MsgsSent++
	pe.WordsSent += words
	pe.record(EvSend, to, tag, words, "")
	pe.m.pes[to].mbox.put(pe.rank, tag, message{payload: payload, words: words, sentAt: start})
}

// Recv blocks until the message with the given tag from the given global
// rank arrives and returns its payload and size in words. The receiver's
// clock is advanced to at least the send start time plus the α + ℓ·β cost.
func (pe *PE) Recv(from, tag int) (any, int64) {
	if from < 0 || from >= pe.m.p {
		panic(fmt.Sprintf("sim: recv on PE %d from invalid rank %d (p=%d)", pe.rank, from, pe.m.p))
	}
	m := pe.mbox.take(from, tag)
	lc := pe.m.topo.Link(from, pe.rank)
	start := pe.now
	if m.sentAt > start {
		start = m.sentAt
	}
	pe.now = start + pe.m.cost.MsgNS(lc, m.words)
	pe.MsgsRecv++
	pe.WordsRecv += m.words
	pe.record(EvRecv, from, tag, m.words, "")
	return m.payload, m.words
}

// SendRecv sends to `to` and then receives from `from` with the same tag.
// It returns the received payload and its size. (With eager buffered
// sends there is no deadlock in the simulator, so a plain send-then-recv
// sequence is safe; this helper exists for symmetry with MPI_Sendrecv.)
func (pe *PE) SendRecv(to int, outPayload any, outWords int64, from, tag int) (any, int64) {
	pe.Send(to, tag, outPayload, outWords)
	return pe.Recv(from, tag)
}

// ResetCounters zeroes the traffic counters.
func (pe *PE) ResetCounters() {
	pe.MsgsSent, pe.MsgsRecv, pe.WordsSent, pe.WordsRecv = 0, 0, 0, 0
}
