package sim

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// EventKind classifies a trace event.
type EventKind int

const (
	// EvSend is the start of a message transmission.
	EvSend EventKind = iota
	// EvRecv is the completion of a message reception.
	EvRecv
	// EvMark is an application-defined annotation (PE.Mark).
	EvMark
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvMark:
		return "mark"
	}
	return "invalid"
}

// Event is one entry of a machine trace.
type Event struct {
	// Time is the PE's virtual clock when the event completed, ns.
	Time int64
	// Rank is the PE the event happened on.
	Rank int
	// Kind classifies the event.
	Kind EventKind
	// Peer is the other endpoint (sends/receives) or -1.
	Peer int
	// Tag is the message tag (sends/receives).
	Tag int
	// Words is the message size in words.
	Words int64
	// Label is the annotation text (marks).
	Label string
}

// tracer collects events from all PEs. Collection is per-PE and
// lock-free on the hot path; merging happens at Snapshot time.
type tracer struct {
	mu     sync.Mutex
	perPE  [][]Event
	active bool
}

// EnableTracing turns on event collection for subsequent runs. Tracing
// costs real (host) time and memory, never virtual time.
func (m *Machine) EnableTracing() {
	if m.trace == nil {
		m.trace = &tracer{perPE: make([][]Event, m.p)}
	}
	m.trace.active = true
}

// DisableTracing stops collection (existing events are kept).
func (m *Machine) DisableTracing() {
	if m.trace != nil {
		m.trace.active = false
	}
}

// ClearTrace drops all collected events.
func (m *Machine) ClearTrace() {
	if m.trace != nil {
		for i := range m.trace.perPE {
			m.trace.perPE[i] = nil
		}
	}
}

// Trace returns all collected events sorted by (time, rank). It must not
// be called while a Run is in progress.
func (m *Machine) Trace() []Event {
	if m.trace == nil {
		return nil
	}
	var all []Event
	for _, evs := range m.trace.perPE {
		all = append(all, evs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Time != all[j].Time {
			return all[i].Time < all[j].Time
		}
		return all[i].Rank < all[j].Rank
	})
	return all
}

// WriteTrace dumps the trace in a compact one-line-per-event text format.
func (m *Machine) WriteTrace(w io.Writer) error {
	for _, ev := range m.Trace() {
		var err error
		switch ev.Kind {
		case EvMark:
			_, err = fmt.Fprintf(w, "%12d PE%-5d %-4s %s\n", ev.Time, ev.Rank, ev.Kind, ev.Label)
		default:
			_, err = fmt.Fprintf(w, "%12d PE%-5d %-4s peer=%-5d tag=%#x words=%d\n",
				ev.Time, ev.Rank, ev.Kind, ev.Peer, ev.Tag, ev.Words)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// record appends an event to the PE's buffer if tracing is active.
func (pe *PE) record(kind EventKind, peer, tag int, words int64, label string) {
	tr := pe.m.trace
	if tr == nil || !tr.active {
		return
	}
	tr.perPE[pe.rank] = append(tr.perPE[pe.rank], Event{
		Time: pe.now, Rank: pe.rank, Kind: kind, Peer: peer, Tag: tag, Words: words, Label: label,
	})
}

// Mark records an application annotation in the trace (no virtual cost).
func (pe *PE) Mark(label string) {
	pe.record(EvMark, -1, 0, 0, label)
}
