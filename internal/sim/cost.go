package sim

// CostModel holds the calibrated constants of the α-β machine model.
// All times are in nanoseconds of virtual time; communication volume is
// measured in machine words, which the paper equates with the size of one
// data element (we use 8-byte words throughout).
type CostModel struct {
	// Alpha is the per-message startup overhead (ns) by link class.
	Alpha [numLinkClasses]int64
	// Beta is the per-word transfer time (ns/word) by link class.
	Beta [numLinkClasses]float64

	// OpNS is the cost of one compare-and-move step in sorting or
	// multiway merging (ns per element per comparison level).
	OpNS float64
	// PartitionOpNS is the cost of one level of branchless splitter-tree
	// descent in super scalar sample sort partitioning (ns per element
	// per tree level); cheaper than OpNS because it causes no branch
	// mispredictions (paper §2.2, [32]).
	PartitionOpNS float64
	// ScanOpNS is the cost of a sequential scan/copy step (ns per element).
	ScanOpNS float64
}

// DefaultCost returns constants calibrated to a SuperMUC-like machine:
// 2.3 GHz Sandy Bridge cores, FDR10 InfiniBand (≈5 GB/s per port) inside
// an island, and a pruned inter-island tree with a 4:1 bandwidth ratio
// (paper §7). Words are 8 bytes.
func DefaultCost() CostModel {
	var c CostModel
	c.Alpha[LinkSelf] = 100
	c.Alpha[LinkNode] = 500     // shared-memory MPI latency ≈ 0.5 µs
	c.Alpha[LinkIsland] = 5_000 // InfiniBand MPI latency ≈ 5 µs
	c.Alpha[LinkCross] = 7_500  // extra hops through the pruned tree
	c.Beta[LinkSelf] = 0.10     // memcpy, ≈80 GB/s
	c.Beta[LinkNode] = 0.15     // ≈53 GB/s
	c.Beta[LinkIsland] = 1.6    // ≈5 GB/s (FDR10)
	c.Beta[LinkCross] = 6.4     // 4:1 pruned tree
	c.OpNS = 1.5
	c.PartitionOpNS = 0.9
	c.ScanOpNS = 0.4
	return c
}

// MsgNS returns the single-ported cost α + ℓ·β of a message of the given
// number of words over the given link class. Both endpoints are charged
// this amount.
func (c CostModel) MsgNS(lc LinkClass, words int64) int64 {
	return c.Alpha[lc] + int64(c.Beta[lc]*float64(words))
}
