// Package tagrange enforces the message-tag namespace invariants of
// the job/epoch multiplexing scheme (DESIGN.md §13, §14):
//
//   - Every tag constant and every constant tag passed to
//     comm.Communicator.Send/Recv must stay below 1<<24. The sort
//     service isolates concurrent jobs by running each through
//     comm.WithTagOffset(world, (epoch+1)<<24); a tag at or above
//     1<<24 bleeds into another job's namespace and its messages can
//     be consumed by the wrong job's receiver.
//   - The block 0x7a0000–0x7fffff is reserved for internal/svc control
//     traffic, which runs un-offset on the world communicator. Any
//     other package minting tags there can collide with live service
//     control messages (or, as the pre-pmsortvet tree demonstrated
//     with delivery and obs both picking 0x7d0001, with each other).
//
// Runtime detection is nearly impossible here: a collision needs two
// subsystems to use the same (sender, tag) pair concurrently on one
// mesh, which depends on job timing — exactly the class of bug that
// passes every deterministic test and fires in production.
package tagrange

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"

	"pmsort/internal/analysis"
)

const (
	maxTag      = 1 << 24
	reservedLo  = 0x7a0000
	reservedHi  = 0x7fffff
	reservedPkg = "svc"
)

// Analyzer is the tagrange analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "tagrange",
	Doc: "flag message tags ≥ 1<<24 (they collide with WithTagOffset job namespaces) " +
		"and tags in the 0x7a0000–0x7fffff block reserved for internal/svc control traffic",
	Run: run,
}

func run(pass *analysis.Pass) error {
	inSvc := analysis.PkgBasename(pass.Pkg.Path()) == reservedPkg
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GenDecl:
				if n.Tok != token.CONST {
					return true
				}
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if !strings.HasPrefix(name.Name, "tag") && !strings.HasPrefix(name.Name, "Tag") {
							continue
						}
						obj := pass.TypesInfo.Defs[name]
						if obj == nil {
							continue
						}
						c, ok := obj.(interface{ Val() constant.Value })
						if !ok {
							continue
						}
						checkTagValue(pass, name.Pos(), "tag constant "+name.Name, c.Val(), inSvc)
					}
				}
				return true
			case *ast.CallExpr:
				var tagExpr ast.Expr
				if e, ok := analysis.CommSendTag(pass.TypesInfo, n); ok {
					tagExpr = e
				} else if e, ok := analysis.CommRecvTag(pass.TypesInfo, n); ok {
					tagExpr = e
				}
				if tagExpr != nil {
					if tv, ok := pass.TypesInfo.Types[tagExpr]; ok && tv.Value != nil {
						checkTagValue(pass, tagExpr.Pos(), "message tag", tv.Value, inSvc)
					}
				}
				return true
			}
			return true
		})
	}
	return nil
}

func checkTagValue(pass *analysis.Pass, pos token.Pos, what string, v constant.Value, inSvc bool) {
	val, ok := constant.Int64Val(constant.ToInt(v))
	if !ok {
		return
	}
	switch {
	case val >= maxTag:
		pass.Reportf(pos, "%s 0x%x is ≥ 1<<24: it escapes the per-job tag namespace of comm.WithTagOffset and can collide with another job's messages", what, val)
	case val >= reservedLo && val <= reservedHi && !inSvc:
		pass.Reportf(pos, "%s 0x%x lies in the 0x7a0000–0x7fffff block reserved for internal/svc control traffic; pick a block below 0x7a0000", what, val)
	}
}
