// Package svc owns the reserved control block: tags inside
// 0x7a0000–0x7fffff are allowed here and only here.
package svc

import "comm"

const tagCtl = 0x7a0001

func use(c comm.Communicator) {
	c.Send(1, tagCtl, int64(0), 1)
}
