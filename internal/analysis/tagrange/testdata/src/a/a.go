package a

import "comm"

const (
	tagSmall = 0x6c0001
	tagHuge  = 1 << 24  // want `escapes the per-job tag namespace`
	tagRes   = 0x7b0002 // want `reserved for internal/svc control traffic`

	// bufSize is large but not a tag: the analyzer keys on the
	// tag/Tag name prefix for constants.
	bufSize = 1 << 26
)

func use(c comm.Communicator) {
	c.Send(1, tagSmall, int64(0), 1)
	c.Send(1, 0x7fff00, int64(0), 1) // want `reserved for internal/svc control traffic`
	pl, _ := c.Recv(1, 1<<25)        // want `escapes the per-job tag namespace`
	_ = pl
	_ = bufSize
}
