package tagrange_test

import (
	"testing"

	"pmsort/internal/analysis/analysistest"
	"pmsort/internal/analysis/tagrange"
)

func TestTagrange(t *testing.T) {
	analysistest.Run(t, "testdata", tagrange.Analyzer, "a", "svc")
}
