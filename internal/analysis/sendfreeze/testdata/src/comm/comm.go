// Package comm is a fixture stub exposing the Send/Recv method shapes
// the analyzers match structurally (see internal/analysis/shapes.go).
package comm

// Communicator mirrors pmsort/internal/comm.Communicator's endpoint
// surface.
type Communicator interface {
	Send(to int, tag int, payload any, words int64)
	Recv(from int, tag int) (payload any, words int64)
}
