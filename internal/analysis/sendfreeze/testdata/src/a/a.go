package a

import (
	"coll"
	"comm"
)

type header struct {
	seq int64
	n   int32
}

// compareSplitKeepLow reproduces the PR 3 bitonic compare-split bug:
// the merge result is copied back into the buffer that was just sent,
// while the partner may still be reading it through the in-process
// backends' by-reference delivery.
func compareSplitKeepLow(c comm.Communicator, cur, tmp []int64, partner int) []int64 {
	c.Send(partner, 5, cur, int64(len(cur)))
	pl, _ := c.Recv(partner, 5)
	other := pl.([]int64)
	i, j := 0, 0
	for k := range tmp {
		if i < len(cur) && (j >= len(other) || cur[i] <= other[j]) {
			tmp[k] = cur[i]
			i++
		} else {
			tmp[k] = other[j]
			j++
		}
	}
	copy(cur, tmp) // want `copy into cur after it was passed as a Send/collective payload`
	return cur
}

func badElementWrite(c comm.Communicator, buf []int64) {
	c.Send(1, 7, buf, int64(len(buf)))
	buf[0] = 42 // want `element write into buf after it was passed`
}

func badDeepFieldWrite(c comm.Communicator) {
	var h header
	c.Send(1, 9, &h, 1)
	h.seq++ // want `field write into h.seq after it was passed`
}

func badCollectivePayload(c comm.Communicator, data []int64) {
	coll.Bcast(c, 0, data, int64(len(data)))
	data[0] = 1 // want `element write into data after it was passed`
}

// compareSplitRebind is the fixed shape shipped in PR 3: the merge goes
// into a fresh buffer and the variable is re-pointed at it, so the sent
// storage is never touched again.
func compareSplitRebind(c comm.Communicator, cur []int64, partner int) []int64 {
	c.Send(partner, 5, cur, int64(len(cur)))
	pl, _ := c.Recv(partner, 5)
	other := pl.([]int64)
	merged := make([]int64, 0, len(cur)+len(other))
	merged = append(merged, other...)
	cur = merged[:len(cur):len(cur)]
	cur[0] = 0 // fresh storage: not a violation
	return cur
}

// disjointHalves is the Rabenseifner halving pattern: the sent half and
// the mutated half share a variable but not storage, thanks to the
// capacity-bounded reslice.
func disjointHalves(c comm.Communicator, x []int64, partner int) {
	h := len(x) / 2
	lo := x[:h:h]
	c.Send(partner, 3, lo, int64(h))
	pl, _ := c.Recv(partner, 3)
	in := pl.([]int64)
	for i, v := range in {
		x[h+i] += v
	}
}

// valuePayload: boxing a reference-free struct into the any parameter
// copies it, so later writes are harmless.
func valuePayload(c comm.Communicator, partner int) {
	h := header{seq: 1}
	c.Send(partner, 9, h, 1)
	h.seq = 2
}

// streamConcat mirrors core's receive-driven concatenation: buf only
// accumulates received chunks and is never a payload itself.
func streamConcat(c comm.Communicator, senders int) []int64 {
	var buf []int64
	for s := 0; s < senders; s++ {
		pl, _ := c.Recv(s, 11)
		ch := pl.([]int64)
		buf = append(buf, ch...)
	}
	return buf
}
