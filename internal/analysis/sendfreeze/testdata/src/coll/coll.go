// Package coll is a fixture stub: the analyzers recognise collectives
// by package basename and function name.
package coll

import "comm"

// Bcast mirrors the real collective's payload position (argument 2).
func Bcast(c comm.Communicator, root int, data []int64, words int64) []int64 {
	return data
}
