// Package sendfreeze enforces the payload-ownership half of the
// Communicator contract (DESIGN.md §6, §10, §14): ownership of a sent
// payload transfers to the receiver, and since the in-process backends
// pass payloads by reference, a sender that writes to a payload after
// Send silently corrupts data another PE may already be reading. The
// same transfer happens at the coll/delivery collectives for the
// argument they forward.
//
// The chaos middleware detects this class at runtime by checksumming
// every payload at Send and re-encoding at delivery — but only on runs
// whose seed actually interleaves the mutation with the read (the PR 3
// bitonic compare-split bug survived two PRs of CI that way). This
// analyzer flags the pattern on every build instead.
//
// Scope and approximations, chosen to keep false positives at zero on
// the documented zero-copy paths (streamConcat staging, arena reuse,
// halves-disjoint reduce-scatter):
//
//   - Analysis is per-function and path-forked across if/switch
//     branches; loop bodies are simulated once (a write that reaches a
//     Send only across iterations is the runtime detectors' job).
//   - A payload freezes the variable it names (and its selector path);
//     plain rebinding (x = freshValue()) thaws it, re-slicing the same
//     backing array (x = x[:n]) does not.
//   - Writes THROUGH a bounded re-slice alias (y := x[a:b]) are not
//     tracked: sending one half of a buffer and writing the other is
//     the legitimate Rabenseifner reduce-scatter shape.
//   - x = append(x, …) is not a violation (append writes at indices ≥
//     the sent length, which the receiver never reads) but x stays
//     frozen, so a later x[i] = … is still caught.
//
// Suppress a deliberate violation with //nolint:sendfreeze and a
// justification; there are currently none in the tree.
package sendfreeze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pmsort/internal/analysis"
)

// Analyzer is the sendfreeze analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "sendfreeze",
	Doc: "flag writes to a variable previously passed as the payload of comm.Communicator.Send " +
		"or a coll/delivery collective: payload ownership transfers at the call",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		var funcs []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					funcs = append(funcs, n)
				}
			case *ast.FuncLit:
				funcs = append(funcs, n)
			}
			return true
		})
		for _, fn := range funcs {
			var body *ast.BlockStmt
			switch fn := fn.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			sim := &simulator{pass: pass, state: state{}}
			sim.block(body)
		}
	}
	return nil
}

// A ref names a storage location: a variable plus a selector/index
// path ("" for the variable itself, ".Field", "[]", ".Field[]", …).
type ref struct {
	obj  *types.Var
	path string
}

// A freeze records that ref's storage was handed off at pos. deep
// means the payload was &obj (every write under obj is a violation,
// not just element writes).
type freeze struct {
	deep bool
	pos  token.Pos
}

type state map[ref]freeze

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s state) union(others ...state) {
	for _, o := range others {
		for k, v := range o {
			if _, ok := s[k]; !ok {
				s[k] = v
			}
		}
	}
}

type simulator struct {
	pass  *analysis.Pass
	state state
}

func (sim *simulator) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, st := range b.List {
		sim.stmt(st)
	}
}

func (sim *simulator) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case nil:
	case *ast.BlockStmt:
		sim.block(st)
	case *ast.IfStmt:
		sim.stmt(st.Init)
		sim.expr(st.Cond)
		then := sim.fork(st.Body)
		var alt state
		if st.Else != nil {
			alt = sim.forkStmt(st.Else)
		} else {
			alt = sim.state.clone()
		}
		then.union(alt)
		sim.state = then
	case *ast.ForStmt:
		sim.stmt(st.Init)
		sim.expr(st.Cond)
		entry := sim.state.clone()
		sim.block(st.Body)
		sim.stmt(st.Post)
		sim.state.union(entry)
	case *ast.RangeStmt:
		sim.expr(st.X)
		entry := sim.state.clone()
		sim.block(st.Body)
		sim.state.union(entry)
	case *ast.SwitchStmt:
		sim.stmt(st.Init)
		sim.expr(st.Tag)
		sim.forkCases(st.Body)
	case *ast.TypeSwitchStmt:
		sim.stmt(st.Init)
		sim.forkCases(st.Body)
	case *ast.SelectStmt:
		sim.forkCases(st.Body)
	case *ast.AssignStmt:
		sim.assign(st)
	case *ast.IncDecStmt:
		sim.write(st.X, st.Pos(), false)
	case *ast.ExprStmt:
		sim.expr(st.X)
	case *ast.GoStmt:
		sim.expr(st.Call)
	case *ast.DeferStmt:
		sim.expr(st.Call)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			sim.expr(e)
		}
	case *ast.SendStmt:
		sim.expr(st.Chan)
		sim.expr(st.Value)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						var rhs ast.Expr
						if i < len(vs.Values) {
							rhs = vs.Values[i]
							sim.expr(rhs)
						}
						sim.bind(name, rhs)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		sim.stmt(st.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		// Unknown statement: visit expressions conservatively.
		ast.Inspect(st, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				sim.call(call)
			}
			_, isLit := n.(*ast.FuncLit)
			return !isLit
		})
	}
}

func (sim *simulator) fork(b *ast.BlockStmt) state {
	saved := sim.state
	sim.state = saved.clone()
	sim.block(b)
	forked := sim.state
	sim.state = saved
	return forked
}

func (sim *simulator) forkStmt(st ast.Stmt) state {
	saved := sim.state
	sim.state = saved.clone()
	sim.stmt(st)
	forked := sim.state
	sim.state = saved
	return forked
}

// forkCases runs each case clause of a switch/select body on its own
// copy of the state and unions the outcomes (plus the no-case-taken
// path).
func (sim *simulator) forkCases(body *ast.BlockStmt) {
	result := sim.state.clone()
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				sim.expr(e)
			}
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
		}
		saved := sim.state
		sim.state = saved.clone()
		for _, st := range stmts {
			sim.stmt(st)
		}
		result.union(sim.state)
		sim.state = saved
	}
	sim.state = result
}

// expr walks an expression in evaluation context: calls may freeze
// payloads (Send/collectives) or violate a freeze (copy into frozen).
// Function literals are separate functions and are skipped here.
func (sim *simulator) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			sim.call(call)
		}
		_, isLit := n.(*ast.FuncLit)
		return !isLit
	})
}

func (sim *simulator) call(call *ast.CallExpr) {
	info := sim.pass.TypesInfo
	if payload, ok := analysis.CommSend(info, call); ok {
		sim.freezePayload(payload, call.Pos())
		return
	}
	if payload, ok := analysis.CollectivePayload(info, call); ok {
		sim.freezePayload(payload, call.Pos())
		return
	}
	// copy(dst, src) with a frozen dst mutates the sent storage.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "copy" && len(call.Args) == 2 {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if r, _, ok := sim.resolve(call.Args[0]); ok {
				sim.reportIfFrozen(r, call.Pos(), "copy into", false)
			}
		}
	}
}

// freezePayload records the handoff of a payload expression.
func (sim *simulator) freezePayload(payload ast.Expr, pos token.Pos) {
	payload = ast.Unparen(payload)
	deep := false
	if u, ok := payload.(*ast.UnaryExpr); ok && u.Op == token.AND {
		payload = u.X
		deep = true
	}
	r, _, ok := sim.resolve(payload)
	if !ok {
		return
	}
	// A payload whose type carries no references (plain struct/scalar)
	// is copied when boxed into the `any` parameter: later writes to
	// the variable are harmless.
	if t := sim.pass.TypesInfo.TypeOf(payload); t == nil || (!deep && !carriesReference(t, nil)) {
		return
	}
	if _, exists := sim.state[r]; !exists {
		sim.state[r] = freeze{deep: deep, pos: pos}
	}
}

// assign processes writes and (re)bindings.
func (sim *simulator) assign(st *ast.AssignStmt) {
	for _, rhs := range st.Rhs {
		sim.expr(rhs)
	}
	oneToOne := len(st.Lhs) == len(st.Rhs)
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		if oneToOne {
			rhs = st.Rhs[i]
		}
		lhs = ast.Unparen(lhs)
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			if st.Tok == token.DEFINE {
				sim.bind(l, rhs)
			} else if st.Tok == token.ASSIGN {
				sim.rebind(l, rhs)
			} else {
				// Compound assignment (+=, …): a read-modify-write of
				// the variable itself only matters through a deref.
				sim.write(l, st.Pos(), false)
			}
		default:
			sim.write(lhs, st.Pos(), st.Tok != token.ASSIGN)
		}
	}
}

// bind handles `y := rhs`: y inherits a freeze when rhs aliases frozen
// storage without explicit bounds.
func (sim *simulator) bind(name *ast.Ident, rhs ast.Expr) {
	if name.Name == "_" || rhs == nil {
		return
	}
	obj, ok := sim.pass.TypesInfo.Defs[name].(*types.Var)
	if !ok {
		// `x, err := …` re-binding an existing x: an assignment.
		sim.rebind(name, rhs)
		return
	}
	delete(sim.state, ref{obj: obj})
	if fr, ok := sim.aliasOf(rhs); ok {
		sim.state[ref{obj: obj}] = fr
	}
}

// rebind handles `x = rhs` for a plain variable: re-slicing or
// appending to itself keeps the freeze; anything else thaws x (the
// variable now names other storage) — unless rhs aliases another
// frozen variable, in which case the freeze transfers.
func (sim *simulator) rebind(name *ast.Ident, rhs ast.Expr) {
	obj, ok := sim.pass.TypesInfo.Uses[name].(*types.Var)
	if !ok {
		return
	}
	self := ref{obj: obj}
	if rhs != nil {
		if r, _, ok := sim.resolveThroughAppend(rhs); ok && r == self {
			return // x = x[:n], x = append(x, …): same backing array
		}
	}
	// Thaw every path under x.
	for k := range sim.state {
		if k.obj == obj {
			delete(sim.state, k)
		}
	}
	if rhs != nil {
		if fr, ok := sim.aliasOf(rhs); ok {
			sim.state[self] = fr
		}
	}
}

// aliasOf reports whether rhs aliases currently-frozen storage without
// explicit slice bounds (bounded re-slices are the documented disjoint
// halves pattern and are not tracked).
func (sim *simulator) aliasOf(rhs ast.Expr) (freeze, bool) {
	r, bounded, ok := sim.resolve(rhs)
	if !ok || bounded {
		return freeze{}, false
	}
	for k, fr := range sim.state {
		if k.obj == r.obj && (pathPrefix(k.path, r.path) || pathPrefix(r.path, k.path)) {
			return fr, true
		}
	}
	return freeze{}, false
}

// write flags a write through lhs if it mutates frozen storage.
func (sim *simulator) write(lhs ast.Expr, pos token.Pos, compound bool) {
	lhs = ast.Unparen(lhs)
	switch l := lhs.(type) {
	case *ast.IndexExpr:
		// x[i] = v rebinds the element but mutates the array of x: a
		// violation when x (or a shorter path of it) was sent.
		if base, _, ok := sim.resolve(l.X); ok {
			sim.reportIfFrozen(base, pos, "element write into", false)
		}
	case *ast.StarExpr:
		if base, _, ok := sim.resolve(l.X); ok {
			sim.reportIfFrozen(base, pos, "write through pointer", false)
		}
	case *ast.SelectorExpr:
		if r, _, ok := sim.resolve(l); ok {
			// Replacing a field corrupts the receiver when the payload
			// was &x (the receiver shares the struct itself) or when
			// the path reaches the field through an index/deref (the
			// write lands in shared backing storage). A plain field
			// set on a by-value payload only touches the sender's
			// copy.
			sim.reportIfFrozen(r, pos, "field write into", true)
			if !sim.frozenDeep(r) {
				for k := range sim.state {
					if k.obj == r.obj && pathPrefix(r.path, k.path) && k.path != "" {
						delete(sim.state, k)
					}
				}
			}
		}
	case *ast.Ident:
		// Plain writes to the variable itself are rebinds handled in
		// assign; compound ops on idents don't touch sent storage.
		_ = compound
	}
}

// reportIfFrozen reports a violation if r (or a covering path of it)
// is frozen. fieldSet marks a plain field replacement, which is only a
// violation for &x payloads or when the path dereferences shared
// storage ("[]"/"*" between the frozen path and the write).
func (sim *simulator) reportIfFrozen(r ref, pos token.Pos, action string, fieldSet bool) {
	for k, fr := range sim.state {
		if k.obj != r.obj || !pathPrefix(k.path, r.path) {
			continue
		}
		rel := r.path[len(k.path):]
		if fieldSet && !fr.deep && !strings.Contains(rel, "[]") && !strings.Contains(rel, "*") {
			continue
		}
		sim.pass.Reportf(pos, "%s %s after it was passed as a Send/collective payload at %s: payload ownership transfers at the call and the in-process backends pass it by reference (DESIGN.md §6); build the next message in a fresh buffer",
			action, nameOf(r), sim.pass.Fset.Position(fr.pos))
		return
	}
}

func (sim *simulator) frozenDeep(r ref) bool {
	for k, fr := range sim.state {
		if k.obj == r.obj && pathPrefix(k.path, r.path) && fr.deep {
			return true
		}
	}
	return false
}

// resolve maps an expression to the variable+path it denotes. bounded
// reports whether the chain passes through a slice expression with
// explicit bounds.
func (sim *simulator) resolve(e ast.Expr) (r ref, bounded bool, ok bool) {
	info := sim.pass.TypesInfo
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.Ident:
			obj, isVar := info.Uses[x].(*types.Var)
			if !isVar {
				if obj, isVar = info.Defs[x].(*types.Var); !isVar {
					return ref{}, false, false
				}
			}
			return ref{obj: obj, path: r.path}, bounded, true
		case *ast.SelectorExpr:
			if sel := info.Selections[x]; sel != nil {
				if sel.Kind() != types.FieldVal {
					return ref{}, false, false
				}
				r.path = "." + x.Sel.Name + r.path
				e = x.X
				continue
			}
			// Package-qualified variable.
			if obj, isVar := info.Uses[x.Sel].(*types.Var); isVar {
				return ref{obj: obj, path: r.path}, bounded, true
			}
			return ref{}, false, false
		case *ast.SliceExpr:
			if x.Low != nil || x.High != nil {
				bounded = true
			}
			e = x.X
		case *ast.IndexExpr:
			// Distinguish indexing from generic instantiation.
			if tv, isType := info.Types[x.Index]; isType && tv.IsType() {
				return ref{}, false, false
			}
			r.path = "[]" + r.path
			e = x.X
		case *ast.StarExpr:
			r.path = "*" + r.path
			e = x.X
		default:
			return ref{}, false, false
		}
	}
}

// resolveThroughAppend resolves rhs, looking through append(x, …) to
// x (append never writes below the sent length).
func (sim *simulator) resolveThroughAppend(rhs ast.Expr) (ref, bool, bool) {
	rhs = ast.Unparen(rhs)
	if call, isCall := rhs.(*ast.CallExpr); isCall {
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "append" && len(call.Args) > 0 {
			if _, isBuiltin := sim.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return sim.resolve(call.Args[0])
			}
		}
	}
	return sim.resolve(rhs)
}

func pathPrefix(prefix, path string) bool {
	return strings.HasPrefix(path, prefix)
}

func nameOf(r ref) string {
	return r.obj.Name() + r.path
}

// carriesReference reports whether t contains a slice, pointer, map,
// or channel anywhere — i.e. whether boxing the value into `any`
// still shares storage with the sender.
func carriesReference(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Array:
		return carriesReference(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesReference(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
