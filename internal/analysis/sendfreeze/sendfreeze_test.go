package sendfreeze_test

import (
	"testing"

	"pmsort/internal/analysis/analysistest"
	"pmsort/internal/analysis/sendfreeze"
)

func TestSendfreeze(t *testing.T) {
	analysistest.Run(t, "testdata", sendfreeze.Analyzer, "a")
}
