// Package vetsuite assembles the pmsortvet multichecker: the four
// invariant analyzers (sendfreeze, wirereg, tagrange, obscost) plus
// the standard-discipline checks (fieldalign, lockcopy), and the
// command-line driver shared by cmd/pmsortvet and tools/pmsortvet.
package vetsuite

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"pmsort/internal/analysis"
	"pmsort/internal/analysis/fieldalign"
	"pmsort/internal/analysis/lockcopy"
	"pmsort/internal/analysis/obscost"
	"pmsort/internal/analysis/sendfreeze"
	"pmsort/internal/analysis/tagrange"
	"pmsort/internal/analysis/wirereg"
)

// Suite is the full pmsortvet analyzer set, in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		sendfreeze.Analyzer,
		wirereg.Analyzer,
		tagrange.Analyzer,
		obscost.Analyzer,
		fieldalign.Analyzer,
		lockcopy.Analyzer,
	}
}

// Main runs the multichecker with the given command line (excluding
// the program name) and returns the process exit code: 0 clean, 1
// findings, 2 usage or load error.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pmsortvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("dir", ".", "directory inside the module to analyze")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: pmsortvet [flags] [packages]\n\n"+
			"Packages are module-root-relative patterns: ./... (default), ./internal/..., ./internal/coll.\n"+
			"Suppress a finding with //nolint:<analyzer> and a justification comment.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(stderr, "pmsortvet: unknown analyzer %q\n", n)
			return 2
		}
		suite = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "pmsortvet: %v\n", err)
		return 2
	}
	root, _, err := analysis.FindModule(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "pmsortvet: %v\n", err)
		return 2
	}
	findings := prog.Run(suite, prog.Match(root, patterns))
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "pmsortvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
