package vetsuite_test

import (
	"testing"

	"pmsort/internal/analysis/analysistest"
	"pmsort/internal/analysis/vetsuite"
)

// TestRepoClean runs the whole suite over the repository. HEAD must
// stay finding-free: a new invariant violation fails this test (and
// the CI static-analysis job, which runs the same suite standalone).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module; skipped in -short runs")
	}
	findings, out, err := analysistest.RunFindings(".", vetsuite.Suite(), "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(findings) > 0 {
		t.Errorf("pmsortvet found %d issue(s) at HEAD:\n%s", len(findings), out)
	}
}
