package analysis

import (
	"go/ast"
	"go/types"
)

// This file recognizes the call shapes the pmsortvet analyzers share:
// comm.Communicator.Send/Recv, the coll/delivery collectives, and the
// obs recorder methods. Matching is structural (method name plus
// signature, or package-basename plus function name), so the analyzers
// work unchanged on the real packages and on the small fixture stubs
// under each analyzer's testdata/src.

// isEmptyIface reports whether t is interface{} / any.
func isEmptyIface(t types.Type) bool {
	i, ok := t.Underlying().(*types.Interface)
	return ok && i.Empty()
}

func isBasicKind(t types.Type, k types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == k
}

// isSendSig matches func(to, tag int, payload any, words int64).
func isSendSig(sig *types.Signature) bool {
	p := sig.Params()
	return p.Len() == 4 && sig.Results().Len() == 0 &&
		isBasicKind(p.At(0).Type(), types.Int) &&
		isBasicKind(p.At(1).Type(), types.Int) &&
		isEmptyIface(p.At(2).Type()) &&
		isBasicKind(p.At(3).Type(), types.Int64)
}

// isRecvSig matches func(from, tag int) (any, int64).
func isRecvSig(sig *types.Signature) bool {
	p, r := sig.Params(), sig.Results()
	return p.Len() == 2 && r.Len() == 2 &&
		isBasicKind(p.At(0).Type(), types.Int) &&
		isBasicKind(p.At(1).Type(), types.Int) &&
		isEmptyIface(r.At(0).Type()) &&
		isBasicKind(r.At(1).Type(), types.Int64)
}

// calleeMethod returns the method object a call invokes through a
// selector, or nil.
func calleeMethod(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s := info.Selections[sel]; s != nil {
		if f, ok := s.Obj().(*types.Func); ok {
			return f
		}
		return nil
	}
	// Package-qualified function (pkg.F): not a method.
	return nil
}

// CommSend matches a comm.Communicator.Send-shaped method call and
// returns its payload argument.
func CommSend(info *types.Info, call *ast.CallExpr) (payload ast.Expr, ok bool) {
	f := calleeMethod(info, call)
	if f == nil || f.Name() != "Send" || len(call.Args) != 4 {
		return nil, false
	}
	if !isSendSig(f.Type().(*types.Signature)) {
		return nil, false
	}
	return call.Args[2], true
}

// CommSendTag matches Send and returns its tag argument.
func CommSendTag(info *types.Info, call *ast.CallExpr) (tag ast.Expr, ok bool) {
	if _, ok := CommSend(info, call); !ok {
		return nil, false
	}
	return call.Args[1], true
}

// CommRecvTag matches a comm.Communicator.Recv-shaped method call and
// returns its tag argument.
func CommRecvTag(info *types.Info, call *ast.CallExpr) (tag ast.Expr, ok bool) {
	f := calleeMethod(info, call)
	if f == nil || f.Name() != "Recv" || len(call.Args) != 2 {
		return nil, false
	}
	if !isRecvSig(f.Type().(*types.Signature)) {
		return nil, false
	}
	return call.Args[1], true
}

// collPayloadArg maps collective function name → index of the argument
// whose ownership transfers to the communication layer (the payload a
// caller must not mutate after the call; DESIGN.md §6). Matched only
// for functions in a package whose basename is "coll" or "delivery".
var collPayloadArg = map[string]int{
	"Bcast":                      2,
	"BcastPipelined":             2,
	"Reduce":                     2,
	"Allreduce":                  1,
	"ExScan":                     1,
	"ScanTotal":                  1,
	"Gatherv":                    2,
	"Allgatherv":                 1,
	"AllgatherMerge":             1,
	"AlltoallI64":                1,
	"AllreduceSumI64":            1,
	"AlltoallvDirect":            1,
	"AlltoallvDirectFunc":        1,
	"AlltoallvDirectStream":      1,
	"AlltoallvDirectStreamFunc":  1,
	"Alltoallv1Factor":           1,
	"Alltoallv1FactorFunc":       1,
	"Alltoallv1FactorStream":     1,
	"Alltoallv1FactorStreamFunc": 1,
	"Deliver":                    1,
	"DeliverStream":              1,
}

// CollectivePayload matches a coll/delivery collective call and returns
// the payload argument whose ownership transfers at the call.
func CollectivePayload(info *types.Info, call *ast.CallExpr) (payload ast.Expr, ok bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if info.Selections[fun] != nil {
			return nil, false // method, not package-level func
		}
		obj = info.Uses[fun.Sel]
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.IndexExpr: // explicit instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			obj = info.Uses[id]
		} else if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			obj = info.Uses[sel.Sel]
		}
	default:
		return nil, false
	}
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return nil, false
	}
	base := pkgBasename(f.Pkg().Path())
	if base != "coll" && base != "delivery" {
		return nil, false
	}
	idx, ok := collPayloadArg[f.Name()]
	if !ok || idx >= len(call.Args) {
		return nil, false
	}
	return call.Args[idx], true
}

// PkgBasename returns the final element of an import path.
func PkgBasename(path string) string { return pkgBasename(path) }

func pkgBasename(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// ObsCall matches a call to an obs recorder/span method whose
// arguments must be allocation-free (the nil-recorder zero-cost
// contract, DESIGN.md §12) and returns the argument list to audit.
func ObsCall(info *types.Info, call *ast.CallExpr) (args []ast.Expr, ok bool) {
	f := calleeMethod(info, call)
	if f == nil || f.Pkg() == nil || pkgBasename(f.Pkg().Path()) != "obs" {
		return nil, false
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil, false
	}
	rt := recv.Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return nil, false
	}
	switch named.Obj().Name() {
	case "Recorder":
		switch f.Name() {
		case "Start", "StartLevel", "Counter", "Gauge", "PeerSend", "PeerRecv":
			return call.Args, true
		}
	case "Span", "Counter", "Gauge":
		return call.Args, true
	}
	return nil, false
}
