package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load discovers, parses, and type-checks every package of the module
// rooted at (or above) dir, resolving standard-library imports from
// GOROOT source. Nested modules (a subdirectory with its own go.mod,
// like tools/) and testdata trees are skipped; _test.go files are not
// loaded. The returned Program holds every module package — use
// Match/Run to restrict analysis to a pattern subset.
func Load(dir string) (*Program, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}

	type rawPkg struct {
		path string
		dir  string
		bp   *build.Package
	}
	var raw []rawPkg
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		bp, err := build.ImportDir(path, 0)
		if err != nil {
			if _, noGo := err.(*build.NoGoError); noGo {
				return nil
			}
			return fmt.Errorf("%s: %w", path, err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		raw = append(raw, rawPkg{path: imp, dir: path, bp: bp})
		return nil
	})
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	parsed := make(map[string]*rawParsed, len(raw))
	for i := range raw {
		rp := &raw[i]
		var files []*ast.File
		for _, name := range rp.bp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(rp.dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		var deps []string
		for _, imp := range rp.bp.Imports {
			if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
				deps = append(deps, imp)
			}
		}
		parsed[rp.path] = &rawParsed{dir: rp.dir, files: files, deps: deps}
	}

	order, err := topoSort(parsed)
	if err != nil {
		return nil, err
	}

	prog := &Program{
		Fset:   fset,
		Sizes:  types.SizesFor("gc", build.Default.GOARCH),
		byPath: make(map[string]*Package),
	}
	std := importer.ForCompiler(fset, "source", nil)
	for _, path := range order {
		rp := parsed[path]
		pkg, err := typeCheck(prog, std, path, rp.dir, rp.files)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[path] = pkg
	}
	return prog, nil
}

// LoadFixture loads an analysistest-style fixture tree: every
// directory under srcRoot holding .go files is a package whose import
// path is its slash-relative directory name. Imports resolve to sibling
// fixture packages first, then to the standard library.
func LoadFixture(srcRoot string) (*Program, error) {
	parsed := make(map[string]*rawParsed)
	fset := token.NewFileSet()
	err := filepath.WalkDir(srcRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		var files []*ast.File
		var deps []string
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(path, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			files = append(files, f)
			for _, spec := range f.Imports {
				imp := strings.Trim(spec.Path.Value, `"`)
				if st, err := os.Stat(filepath.Join(srcRoot, filepath.FromSlash(imp))); err == nil && st.IsDir() {
					deps = append(deps, imp)
				}
			}
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(srcRoot, path)
		if err != nil {
			return err
		}
		parsed[filepath.ToSlash(rel)] = &rawParsed{dir: path, files: files, deps: deps}
		return nil
	})
	if err != nil {
		return nil, err
	}

	order, err := topoSort(parsed)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:   fset,
		Sizes:  types.SizesFor("gc", build.Default.GOARCH),
		byPath: make(map[string]*Package),
	}
	std := importer.ForCompiler(fset, "source", nil)
	for _, path := range order {
		rp := parsed[path]
		pkg, err := typeCheck(prog, std, path, rp.dir, rp.files)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[path] = pkg
	}
	return prog, nil
}

type rawParsed struct {
	dir   string
	files []*ast.File
	deps  []string
}

// progImporter resolves imports against already-checked program
// packages first, then the standard library.
type progImporter struct {
	prog *Program
	std  types.Importer
}

func (pi *progImporter) Import(path string) (*types.Package, error) {
	if pkg := pi.prog.Lookup(path); pkg != nil {
		return pkg.Types, nil
	}
	return pi.std.Import(path)
}

func typeCheck(prog *Program, std types.Importer, path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: &progImporter{prog: prog, std: std},
		Sizes:    prog.Sizes,
	}
	tpkg, err := conf.Check(path, prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{PkgPath: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// topoSort orders package paths so every package follows its in-module
// dependencies.
func topoSort(pkgs map[string]*rawParsed) ([]string, error) {
	var order []string
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		rp := pkgs[p]
		deps := append([]string(nil), rp.deps...)
		sort.Strings(deps)
		for _, d := range deps {
			if _, ok := pkgs[d]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	var roots []string
	for p := range pkgs {
		roots = append(roots, p)
	}
	sort.Strings(roots)
	for _, p := range roots {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modPath string, err error) { return findModule(dir) }

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found at or above %s", abs)
		}
	}
}

// Match returns a package filter for command-line patterns relative to
// the module root: "./..." (everything), "./sub/..." (a subtree), or
// "./sub" (one package). An empty pattern list matches everything.
func (prog *Program) Match(modRoot string, patterns []string) func(*Package) bool {
	if len(patterns) == 0 {
		return nil
	}
	type rule struct {
		dir     string
		subtree bool
	}
	var rules []rule
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		subtree := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			subtree = true
			pat = rest
			if pat == "." || pat == "" {
				return func(*Package) bool { return true }
			}
		}
		pat = strings.TrimPrefix(pat, "./")
		rules = append(rules, rule{dir: filepath.Join(modRoot, filepath.FromSlash(pat)), subtree: subtree})
	}
	return func(pkg *Package) bool {
		for _, r := range rules {
			if pkg.Dir == r.dir {
				return true
			}
			if r.subtree && strings.HasPrefix(pkg.Dir, r.dir+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}
}
