// Package analysis is a stdlib-only stand-in for the
// golang.org/x/tools/go/analysis framework, carrying the pmsortvet
// analyzers (DESIGN.md §14). The container this repo grows in has no
// module proxy access, so the x/tools dependency is gated behind this
// package: Analyzer/Pass/Diagnostic mirror the upstream API shape
// closely enough that swapping to the real framework is a mechanical
// import change confined to this directory and the tools module.
//
// Deviations from upstream, all deliberate:
//
//   - Pass.Prog exposes the whole type-checked program. Upstream
//     spreads cross-package state through Facts; the wirereg analyzer
//     instead scans the program for RegisterWire call sites directly,
//     which is simpler and exact for a single-module repo.
//   - Suppression is a //nolint:analyzername comment on the flagged
//     line (or alone on the line above), golangci-lint style, applied
//     by the runner rather than per-analyzer. Every suppression should
//     carry a justification after the directive.
//   - Packages are loaded from source by the loader in this package
//     (see loader.go); there is no go/packages. Test files are not
//     analyzed — the invariants guarded here protect production data
//     paths, and the dynamic detectors (chaos, torture) cover tests.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. It mirrors the upstream
// analysis.Analyzer struct minus dependency plumbing (Requires,
// ResultType, Facts), which the pmsortvet suite does not need.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nolint:name suppression comments.
	Name string
	// Doc is the one-paragraph contract shown by pmsortvet -list.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run over one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the whole loaded program (all module packages), for
	// whole-program invariants like wire registration coverage.
	Prog *Program

	report func(Diagnostic)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Package is one type-checked package of the loaded program.
type Package struct {
	// PkgPath is the import path ("pmsort/internal/coll"; fixture
	// packages use their directory name, e.g. "coll").
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// A Program is a set of type-checked packages sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	// Sizes is the layout oracle used during type checking (gc
	// alignment for the host architecture).
	Sizes types.Sizes

	byPath map[string]*Package
}

// Lookup returns the loaded package with the given import path.
func (prog *Program) Lookup(path string) *Package { return prog.byPath[path] }

// A Finding is a diagnostic attributed to its analyzer and resolved to
// a concrete position, after //nolint suppression.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Run applies the analyzers to every package accepted by target
// (target == nil means all) and returns the surviving findings sorted
// by position. Analyzer errors are reported as findings at the
// package's first file so a broken analyzer fails the run loudly.
func (prog *Program) Run(analyzers []*Analyzer, target func(*Package) bool) []Finding {
	var out []Finding
	for _, pkg := range prog.Packages {
		if target != nil && !target(pkg) {
			continue
		}
		sup := newSuppressions(prog.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Prog:      prog,
			}
			pass.report = func(d Diagnostic) {
				pos := prog.Fset.Position(d.Pos)
				if sup.suppressed(a.Name, pos) {
					return
				}
				out = append(out, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				pos := token.Position{Filename: pkg.PkgPath}
				if len(pkg.Files) > 0 {
					pos = prog.Fset.Position(pkg.Files[0].Pos())
				}
				out = append(out, Finding{Pos: pos, Analyzer: a.Name, Message: "analyzer error: " + err.Error()})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// suppressions maps file → line → suppressed analyzer names, built
// from //nolint comments. A directive suppresses findings on its own
// line and on the line directly below it (so it works both inline and
// as a standalone comment above the flagged statement).
type suppressions struct {
	fset  *token.FileSet
	lines map[string]map[int][]string // filename → line → names ("" = all)
}

func newSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{fset: fset, lines: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//nolint")
				if !ok {
					continue
				}
				var names []string
				if rest, ok := strings.CutPrefix(text, ":"); ok {
					// Cut a trailing justification ("//nolint:x // why").
					if i := strings.Index(rest, "//"); i >= 0 {
						rest = rest[:i]
					}
					if i := strings.Index(rest, " "); i >= 0 {
						rest = rest[:i]
					}
					for _, n := range strings.Split(rest, ",") {
						if n = strings.TrimSpace(n); n != "" {
							names = append(names, n)
						}
					}
				} else {
					names = []string{""} // bare //nolint: everything
				}
				pos := fset.Position(c.Pos())
				m := s.lines[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					s.lines[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], names...)
				m[pos.Line+1] = append(m[pos.Line+1], names...)
			}
		}
	}
	return s
}

func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	m := s.lines[pos.Filename]
	if m == nil {
		return false
	}
	for _, n := range m[pos.Line] {
		if n == "" || n == analyzer {
			return true
		}
	}
	return false
}
