// Package lockcopy extends vet's copylocks discipline over the repo:
// it flags values of lock-carrying types (sync.Mutex and friends, or
// anything with a pointer-receiver Lock/Unlock pair — the netcomm
// mailbox, the obs recorder's counters) that are copied by value
// through parameters, receivers, results, plain assignments, or range
// clauses. A copied lock is a fork of the lock state: both copies
// "work" under light load and deadlock or race under contention, which
// is why the check belongs in the PR gate next to the ownership
// analyzers rather than in a torture sweep.
package lockcopy

import (
	"go/ast"
	"go/types"

	"pmsort/internal/analysis"
)

// Analyzer is the lockcopy analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockcopy",
	Doc: "flag by-value copies of lock-carrying types through parameters, receivers, " +
		"results, assignments, and range clauses",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(pass, n.Recv, "receiver")
				if n.Type.Params != nil {
					checkFieldList(pass, n.Type.Params, "parameter")
				}
				if n.Type.Results != nil {
					checkFieldList(pass, n.Type.Results, "result")
				}
			case *ast.FuncLit:
				if n.Type.Params != nil {
					checkFieldList(pass, n.Type.Params, "parameter")
				}
				if n.Type.Results != nil {
					checkFieldList(pass, n.Type.Results, "result")
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if !copiesValue(rhs) {
						continue
					}
					t := pass.TypesInfo.TypeOf(rhs)
					if path, bad := lockPath(t, nil); bad {
						pos := rhs.Pos()
						if i < len(n.Lhs) {
							pos = n.Lhs[i].Pos()
						}
						pass.Reportf(pos, "assignment copies lock value: %s %s", typeName(t), path)
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					t := pass.TypesInfo.TypeOf(n.Value)
					if path, bad := lockPath(t, nil); bad {
						pass.Reportf(n.Value.Pos(), "range clause copies lock value: %s %s", typeName(t), path)
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkFieldList(pass *analysis.Pass, fl *ast.FieldList, what string) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if path, bad := lockPath(t, nil); bad {
			pass.Reportf(f.Type.Pos(), "%s passes lock by value: %s %s; use a pointer", what, typeName(t), path)
		}
	}
}

// copiesValue reports whether evaluating rhs produces a copy of an
// existing value (as opposed to a fresh composite literal or a call
// result, which vet also permits).
func copiesValue(rhs ast.Expr) bool {
	switch ast.Unparen(rhs).(type) {
	case *ast.CompositeLit, *ast.CallExpr, *ast.FuncLit:
		return false
	}
	return true
}

func typeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// lockPath reports whether t contains a lock by value, and where.
// Following vet, a "lock" is any type with a pointer-receiver Lock or
// Unlock method (sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once,
// sync.Cond, …) reached without crossing a pointer.
func lockPath(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if isLock(t) {
		return "contains " + typeName(t), true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if path, bad := lockPath(u.Field(i).Type(), seen); bad {
				return "field " + u.Field(i).Name() + ": " + path, true
			}
		}
	case *types.Array:
		return lockPath(u.Elem(), seen)
	}
	return "", false
}

// isLock reports whether t itself is a lock type: it (or *t) has a
// Lock or Unlock method.
func isLock(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface:
		// Copying a pointer or an interface value shares the lock
		// rather than forking it.
		return false
	}
	for _, name := range [...]string{"Lock", "Unlock"} {
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), false, nil, name)
		if f, ok := obj.(*types.Func); ok {
			sig := f.Type().(*types.Signature)
			if sig.Params().Len() == 0 && sig.Results().Len() == 0 {
				return true
			}
		}
	}
	return false
}
