package a

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValue(g guarded) int { // want `passes lock by value`
	return g.n
}

func byPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func assign(g *guarded) {
	cp := *g // want `assignment copies lock value`
	cp.n++
}

func ranges(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range clause copies lock value`
		total += g.n
	}
	return total
}

func rangePointers(gs []*guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}
