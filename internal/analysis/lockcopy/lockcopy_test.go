package lockcopy_test

import (
	"testing"

	"pmsort/internal/analysis/analysistest"
	"pmsort/internal/analysis/lockcopy"
)

func TestLockcopy(t *testing.T) {
	analysistest.Run(t, "testdata", lockcopy.Analyzer, "a")
}
