// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring the
// upstream golang.org/x/tools/go/analysis/analysistest contract on the
// stdlib-only stand-in framework (see internal/analysis).
//
// Fixtures live under <testdata>/src/<pkg>/: each directory is one
// package whose import path is its directory name, so a fixture can
// import a sibling stub package ("comm", "obs", …). A line expecting a
// diagnostic carries a comment of the form
//
//	code() // want `regexp` `another regexp`
//
// with one backquoted regexp per expected diagnostic on that line.
// Run fails the test on any unmatched expectation and any unexpected
// diagnostic, so fixtures double as true-negative tests: every line
// without a want comment asserts the analyzer stays silent there.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"pmsort/internal/analysis"
)

// Run loads the fixture packages named pkgs from testdata/src and
// applies the analyzer, checking diagnostics against want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	prog, err := analysis.LoadFixture(testdata + "/src")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	target := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		if prog.Lookup(p) == nil {
			t.Fatalf("fixture package %q not found under %s/src", p, testdata)
		}
		target[p] = true
	}
	findings := prog.Run([]*analysis.Analyzer{a}, func(pkg *analysis.Package) bool {
		return target[pkg.PkgPath]
	})

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*expectation)
	for _, p := range pkgs {
		pkg := prog.Lookup(p)
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, exp := range parseWants(t, prog.Fset, c) {
						k := key{exp.pos.Filename, exp.pos.Line}
						wants[k] = append(wants[k], exp)
					}
				}
			}
		}
	}

	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		matched := false
		for _, exp := range wants[k] {
			if !exp.matched && exp.re.MatchString(f.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for _, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", exp.pos.Filename, exp.pos.Line, exp.re)
			}
		}
	}
}

type expectation struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`")

func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	text, ok := strings.CutPrefix(c.Text, "// want ")
	if !ok {
		text, ok = strings.CutPrefix(c.Text, "//want ")
	}
	if !ok {
		return nil
	}
	ms := wantRE.FindAllStringSubmatch(text, -1)
	if len(ms) == 0 {
		t.Fatalf("%s: malformed want comment (no backquoted regexp): %s", fset.Position(c.Pos()), c.Text)
	}
	var out []*expectation
	for _, m := range ms {
		re, err := regexp.Compile(m[1])
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), m[1], err)
		}
		out = append(out, &expectation{pos: fset.Position(c.Pos()), re: re})
	}
	return out
}

// RunFindings is a convenience for driver-level tests: it loads the
// real module containing dir and returns the findings of the analyzers
// over the packages matching patterns.
func RunFindings(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]analysis.Finding, string, error) {
	prog, err := analysis.Load(dir)
	if err != nil {
		return nil, "", err
	}
	root, _, err := analysis.FindModule(dir)
	if err != nil {
		return nil, "", err
	}
	fs := prog.Run(analyzers, prog.Match(root, patterns))
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "%s\n", f)
	}
	return fs, b.String(), nil
}
