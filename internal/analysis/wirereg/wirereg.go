// Package wirereg enforces the wire-registration contract of the TCP
// backend (DESIGN.md §7, §14): every payload that can cross a
// serializing Communicator must be of a type registered with the wire
// codec under a stable name before the first Send. The algorithm entry
// points register their generic payload shapes via the per-package
// RegisterWire helpers; what this analyzer guards is the concrete
// payloads — a package-scope struct sent by a coordinator, a new raw
// scatter message — where "moved the struct to package scope and
// registered it" has been folklore since PR 2.
//
// Three findings:
//
//   - a payload whose type is declared inside a function: the codec
//     derives the stable wire name from the package-qualified type
//     name, which a function-local type does not have;
//   - a payload of anonymous struct type, same reason;
//   - a payload of a concrete module-defined (or basic) type with no
//     Register/RegisterWire call anywhere in the program naming it.
//
// Type-parameterized payloads ([]E inside the generic sorters) are out
// of scope — their registration happens per-instantiation at the entry
// points and is audited at runtime by the chaos middleware's
// unregistered-type detector. This analyzer exists because that
// detector only fires on runs that actually cross a serializing
// boundary with the offending payload; the static check fires on every
// PR for every call site.
package wirereg

import (
	"go/ast"
	"go/types"
	"sync"

	"pmsort/internal/analysis"
)

// Analyzer is the wirereg analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "wirereg",
	Doc: "flag Send payloads of function-local or anonymous struct types, and concrete " +
		"module-defined payload types never passed to a wire Register/RegisterWire call",
	Run: run,
}

func run(pass *analysis.Pass) error {
	reg := registryOf(pass.Prog)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			payload, ok := analysis.CommSend(pass.TypesInfo, call)
			if !ok {
				return true
			}
			checkPayload(pass, reg, payload)
			return true
		})
	}
	return nil
}

func checkPayload(pass *analysis.Pass, reg *registry, payload ast.Expr) {
	tv, ok := pass.TypesInfo.Types[payload]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if hasTypeParam(t, nil) {
		return // generic path: registered per-instantiation at entry points
	}
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		}
		break
	}
	switch u := t.(type) {
	case *types.Interface:
		_ = u
		return // dynamic forward (payload any passed through)
	case *types.Basic:
		if u.Info()&(types.IsNumeric|types.IsString|types.IsBoolean) == 0 {
			return
		}
		if !reg.basics[u.Kind()] {
			pass.Reportf(payload.Pos(), "payload of basic type %s is sent but no RegisterWire/Register call in the program registers it; the TCP codec will reject it at runtime", u)
		}
	case *types.Struct:
		pass.Reportf(payload.Pos(), "payload has anonymous struct type %s: the wire codec needs a package-scope named type to derive a stable wire name (move it to package scope and register it)", types.TypeString(t, types.RelativeTo(pass.Pkg)))
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() == nil {
			return // error, comparable, …
		}
		if obj.Parent() != obj.Pkg().Scope() {
			pass.Reportf(payload.Pos(), "payload type %s is declared inside a function: the wire codec needs a package-scope type for a stable wire name", obj.Name())
			return
		}
		if pass.Prog.Lookup(obj.Pkg().Path()) == nil {
			return // outside the module (std): codec registration is the importer's concern
		}
		if !reg.named[origin(u)] {
			pass.Reportf(payload.Pos(), "payload type %s is sent but no RegisterWire/Register call in the program registers it; a serializing backend will reject the Send at runtime", obj.Name())
		}
	}
}

// registry is the program-wide set of types named by Register* calls.
type registry struct {
	named  map[*types.TypeName]bool
	basics map[types.BasicKind]bool
}

// registryOf scans every package for calls to functions whose name
// starts with "Register" (wire.Register[T], the per-package
// RegisterWire[T] helpers, RegisterEncoder[T]) and records the named
// and basic types appearing in their type arguments, unwrapped through
// slices/arrays/pointers. Generic instantiations register their origin
// type: Register[gchunk[uint64]] marks gchunk as registered — matching
// per-instantiation would need whole-program monomorphization, and the
// chaos middleware already audits that dynamically.
var (
	regCacheMu sync.Mutex
	regCache   = map[*analysis.Program]*registry{}
)

func registryOf(prog *analysis.Program) *registry {
	regCacheMu.Lock()
	defer regCacheMu.Unlock()
	if reg, ok := regCache[prog]; ok {
		return reg
	}
	reg := &registry{named: map[*types.TypeName]bool{}, basics: map[types.BasicKind]bool{}}
	regCache[prog] = reg
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id := calleeIdent(call)
				if id == nil || len(id.Name) < 8 || id.Name[:8] != "Register" {
					return true
				}
				inst, ok := pkg.Info.Instances[id]
				if !ok {
					return true
				}
				for i := 0; i < inst.TypeArgs.Len(); i++ {
					reg.add(inst.TypeArgs.At(i))
				}
				return true
			})
		}
	}
	return reg
}

func (reg *registry) add(t types.Type) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		}
		break
	}
	switch u := t.(type) {
	case *types.Basic:
		reg.basics[u.Kind()] = true
	case *types.Named:
		reg.named[origin(u)] = true
		// A registered instantiation also vouches for its own type
		// arguments (Register[gchunk[pair]] covers pair).
		if ta := u.TypeArgs(); ta != nil {
			for i := 0; i < ta.Len(); i++ {
				if !hasTypeParam(ta.At(i), nil) {
					reg.add(ta.At(i))
				}
			}
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			reg.add(u.Field(i).Type())
		}
	}
}

func origin(n *types.Named) *types.TypeName { return n.Origin().Obj() }

func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	case *ast.IndexExpr:
		return calleeIdentOf(fun.X)
	case *ast.IndexListExpr:
		return calleeIdentOf(fun.X)
	}
	return nil
}

func calleeIdentOf(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// hasTypeParam reports whether t mentions a type parameter anywhere.
func hasTypeParam(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.TypeParam:
		return true
	case *types.Pointer:
		return hasTypeParam(u.Elem(), seen)
	case *types.Slice:
		return hasTypeParam(u.Elem(), seen)
	case *types.Array:
		return hasTypeParam(u.Elem(), seen)
	case *types.Map:
		return hasTypeParam(u.Key(), seen) || hasTypeParam(u.Elem(), seen)
	case *types.Chan:
		return hasTypeParam(u.Elem(), seen)
	case *types.Named:
		if ta := u.TypeArgs(); ta != nil {
			for i := 0; i < ta.Len(); i++ {
				if hasTypeParam(ta.At(i), seen) {
					return true
				}
			}
		}
		return false
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasTypeParam(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Signature:
		return hasTypeParam(u.Params(), seen) || hasTypeParam(u.Results(), seen)
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if hasTypeParam(u.At(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
