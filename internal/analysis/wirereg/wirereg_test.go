package wirereg_test

import (
	"testing"

	"pmsort/internal/analysis/analysistest"
	"pmsort/internal/analysis/wirereg"
)

func TestWirereg(t *testing.T) {
	analysistest.Run(t, "testdata", wirereg.Analyzer, "a")
}
