// Package wire is a fixture stub: the analyzer's registry scan picks
// up type arguments of any call whose callee name starts with
// "Register".
package wire

func Register[T any]() {}
