package a

import (
	"comm"
	"wire"
)

type Point struct{ X, Y int64 }

type Unregistered struct{ A int64 }

func init() {
	wire.Register[Point]()
	wire.Register[int64]()
}

func sends(c comm.Communicator, p Point, u Unregistered, f float64) {
	c.Send(1, 1, p, 1)
	c.Send(1, 2, []Point{p}, 1)
	c.Send(1, 3, int64(7), 1)
	c.Send(1, 4, u, 1)                    // want `payload type Unregistered is sent but no RegisterWire/Register call`
	c.Send(1, 5, f, 1)                    // want `payload of basic type float64`
	c.Send(1, 6, struct{ N int64 }{1}, 1) // want `anonymous struct`
	type local struct{ N int64 }
	c.Send(1, 7, local{N: 1}, 1) // want `declared inside a function`
}
