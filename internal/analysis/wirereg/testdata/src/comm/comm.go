// Package comm is a fixture stub exposing the Send/Recv method shapes
// the analyzers match structurally.
package comm

type Communicator interface {
	Send(to int, tag int, payload any, words int64)
	Recv(from int, tag int) (payload any, words int64)
}
