package a

import (
	"fmt"
	"obs"
)

const ctrBytes = "send.bytes"

func suffix(level int) string { return "x" }

func good(r *obs.Recorder, n int64) {
	r.Counter(ctrBytes, n)
	r.Counter("recv.bytes", n)
	sp := r.StartLevel("phase.partition", 2)
	sp.Note("cap", n)
	sp.End()
}

func bad(r *obs.Recorder, level int, n int64, raw []byte) {
	r.Counter(fmt.Sprintf("send.bytes.%d", level), n) // want `fmt.Sprintf allocates at an obs call site`
	r.Start("phase." + suffix(level))                 // want `non-constant string concatenation allocates`
	r.Gauge(string(raw), n)                           // want `conversion string\(\.\.\.\) allocates`
	r.Counter(ctrBytes, sum([]int64{n, 1}))           // want `composite literal allocates`
}

func sum(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}
