// Package obs is a fixture stub: the analyzer recognises recorder and
// span call sites by receiver type name within a package named obs.
package obs

type Recorder struct{}

func (r *Recorder) Start(name string) *Span               { return nil }
func (r *Recorder) StartLevel(name string, lvl int) *Span { return nil }
func (r *Recorder) Counter(name string, delta int64)      {}
func (r *Recorder) Gauge(name string, v int64)            {}

type Span struct{}

func (s *Span) End()                      {}
func (s *Span) Note(name string, v int64) {}
