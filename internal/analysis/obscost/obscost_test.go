package obscost_test

import (
	"testing"

	"pmsort/internal/analysis/analysistest"
	"pmsort/internal/analysis/obscost"
)

func TestObscost(t *testing.T) {
	analysistest.Run(t, "testdata", obscost.Analyzer, "a")
}
