// Package obscost enforces the zero-cost-when-disabled contract of the
// obs tracing layer (DESIGN.md §12, §14): a nil *obs.Recorder makes
// every Start/StartLevel/Counter/Peer* call a no-op, but Go still
// evaluates the arguments at the call site. An argument built with
// fmt.Sprintf, string concatenation, a composite literal, or an
// allocating conversion therefore allocates on every call even with
// tracing off — in the classify/merge inner loops that is a per-level
// heap allocation the alloc benchmarks exist to forbid. The repo pins
// a handful of such sites with testing.AllocsPerRun; this analyzer
// covers all of them, including ones no alloc test watches.
//
// The fix is a package-level constant span/counter name (the
// obs.Span*/obs.Ctr* convention) or hoisting the formatting behind an
// explicit recorder-enabled check.
package obscost

import (
	"go/ast"
	"go/types"

	"pmsort/internal/analysis"
)

// Analyzer is the obscost analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "obscost",
	Doc: "flag obs recorder/span call sites whose arguments allocate eagerly " +
		"(fmt.Sprintf, non-constant string concatenation, composite literals, allocating conversions); " +
		"obs call sites must be free when tracing is off",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			args, ok := analysis.ObsCall(pass.TypesInfo, call)
			if !ok {
				return true
			}
			for _, arg := range args {
				checkArg(pass, arg)
			}
			return true
		})
	}
	return nil
}

// checkArg reports eager allocations inside one obs call argument.
func checkArg(pass *analysis.Pass, arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false // evaluated lazily by the callee, if ever
		case *ast.CompositeLit:
			pass.Reportf(e.Pos(), "composite literal allocates at an obs call site even when tracing is off; hoist it behind a recorder check")
			return false
		case *ast.BinaryExpr:
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value == nil && isString(tv.Type) {
				pass.Reportf(e.Pos(), "non-constant string concatenation allocates at an obs call site even when tracing is off; use a constant name (obs.Span*/obs.Ctr* convention)")
				return false
			}
		case *ast.CallExpr:
			if name, ok := allocCallee(pass.TypesInfo, e); ok {
				pass.Reportf(e.Pos(), "%s allocates at an obs call site even when tracing is off; use a constant name or hoist it behind a recorder check", name)
				return false
			}
			if name, ok := allocConversion(pass.TypesInfo, e); ok {
				pass.Reportf(e.Pos(), "conversion %s allocates at an obs call site even when tracing is off", name)
				return false
			}
		}
		return true
	})
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// allocPkgs lists functions whose results are always freshly allocated
// strings/buffers.
var allocPkgs = map[string]map[string]bool{
	"fmt":     {"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true, "Appendf": true},
	"strconv": {"Itoa": true, "FormatInt": true, "FormatUint": true, "FormatFloat": true, "Quote": true, "AppendInt": true, "AppendUint": true},
	"strings": {"Join": true, "Repeat": true, "ToUpper": true, "ToLower": true, "Replace": true, "ReplaceAll": true},
}

func allocCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || info.Selections[sel] != nil {
		return "", false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil {
		return "", false
	}
	pkg := analysis.PkgBasename(f.Pkg().Path())
	if fns, ok := allocPkgs[pkg]; ok && fns[f.Name()] {
		return pkg + "." + f.Name(), true
	}
	return "", false
}

// allocConversion matches string([]byte) / []byte(string) style
// conversions with a non-constant operand.
func allocConversion(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) != 1 {
		return "", false
	}
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok || !tv.IsType() {
		return "", false
	}
	if av, ok := info.Types[call.Args[0]]; ok && av.Value != nil {
		return "", false // constant-folded
	}
	dst := tv.Type
	src := info.Types[call.Args[0]].Type
	if src == nil {
		return "", false
	}
	if isString(dst) && isByteOrRuneSlice(src) {
		return "string(...)", true
	}
	if isByteOrRuneSlice(dst) && isString(src) {
		return "[]byte(...)", true
	}
	return "", false
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
