package fieldalign_test

import (
	"testing"

	"pmsort/internal/analysis/analysistest"
	"pmsort/internal/analysis/fieldalign"
)

func TestFieldalign(t *testing.T) {
	analysistest.Run(t, "testdata", fieldalign.Analyzer, "a")
}
