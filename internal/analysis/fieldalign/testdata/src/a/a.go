package a

type Bad struct { // want `struct Bad is 24 bytes; reordering fields .* would make it 16 bytes`
	a bool
	b int64
	c bool
}

type Good struct {
	b int64
	a bool
	c bool
}

// Pair is generic: layout depends on the instantiation, so the
// analyzer skips it.
type Pair[T any] struct {
	a bool
	b T
	c bool
}

// Waived is mis-ordered on purpose; the suppression keeps it quiet.
//
//nolint:fieldalign
type Waived struct {
	a bool
	b int64
	c bool
}
