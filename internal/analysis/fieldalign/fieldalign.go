// Package fieldalign is the suite's port of the standard
// fieldalignment check (golang.org/x/tools/.../fieldalignment) onto
// the stand-in framework: it flags package-level struct types whose
// fields, reordered, would occupy fewer bytes under gc layout rules.
// In this repo the hot structs travel in bulk — wire-registered
// payload types are encoded element-by-element and the seq kernels
// move records by the million — so padding is bandwidth.
//
// Deliberately-ordered structs (wire format stability, cache-line
// grouping of hot fields, field order documenting protocol order) keep
// their layout with a //nolint:fieldalign justification; reordering a
// wire-registered struct is safe for the protocol only because every
// rank runs the same binary, but it does change the frame bytes, so
// torture's cross-backend byte-identity must stay green after any fix.
package fieldalign

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"pmsort/internal/analysis"
)

// Analyzer is the fieldalign analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "fieldalign",
	Doc:  "flag structs whose field order wastes padding bytes under gc layout rules",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	sizes := pass.Prog.Sizes
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			styp, ok := named.Underlying().(*types.Struct)
			if !ok || styp.NumFields() < 2 {
				return true
			}
			if hasTypeParamField(styp) {
				return true // generic: layout depends on instantiation
			}
			cur := sizes.Sizeof(styp)
			best := optimalSize(styp, sizes)
			if best < cur {
				pass.Reportf(st.Pos(), "struct %s is %d bytes; reordering fields (largest-alignment first) would make it %d bytes", ts.Name.Name, cur, best)
			}
			return true
		})
	}
	return nil
}

// optimalSize computes the struct's size with fields sorted by
// descending alignment, then descending size — the gc-layout greedy
// optimum — with zero-sized fields placed first so none lands at the
// end (a trailing zero-size field gets padding to keep its address
// in-bounds).
func optimalSize(st *types.Struct, sizes types.Sizes) int64 {
	n := st.NumFields()
	fields := make([]*types.Var, n)
	for i := 0; i < n; i++ {
		fields[i] = st.Field(i)
	}
	sort.SliceStable(fields, func(i, j int) bool {
		ti, tj := fields[i].Type(), fields[j].Type()
		si, sj := sizes.Sizeof(ti), sizes.Sizeof(tj)
		if (si == 0) != (sj == 0) {
			return si == 0
		}
		ai, aj := sizes.Alignof(ti), sizes.Alignof(tj)
		if ai != aj {
			return ai > aj
		}
		return si > sj
	})
	fresh := make([]*types.Var, n)
	for i, f := range fields {
		fresh[i] = types.NewField(token.NoPos, nil, f.Name(), f.Type(), false)
	}
	return sizes.Sizeof(types.NewStruct(fresh, nil))
}

func hasTypeParamField(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if containsTypeParam(st.Field(i).Type(), nil) {
			return true
		}
	}
	return false
}

func containsTypeParam(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.TypeParam:
		return true
	case *types.Named:
		if ta := u.TypeArgs(); ta != nil {
			for i := 0; i < ta.Len(); i++ {
				if containsTypeParam(ta.At(i), seen) {
					return true
				}
			}
		}
		return containsTypeParam(u.Underlying(), seen)
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return false // pointer-shaped: layout independent of elem
	case *types.Array:
		return containsTypeParam(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsTypeParam(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
