package workload

import (
	"sort"
	"testing"
)

func TestKindsProduceRightSizes(t *testing.T) {
	const p, perPE = 8, 50
	for _, k := range []Kind{Uniform, Skewed, DupHeavy, Sorted, Reverse, AlmostSorted} {
		total := 0
		for rank := 0; rank < p; rank++ {
			loc := Local(k, 42, p, perPE, rank)
			if len(loc) != perPE {
				t.Errorf("%v rank %d: %d elements, want %d", k, rank, len(loc), perPE)
			}
			total += len(loc)
		}
		if total != p*perPE {
			t.Errorf("%v: total %d", k, total)
		}
	}
}

func TestOnePE(t *testing.T) {
	const p, perPE = 4, 10
	for rank := 0; rank < p; rank++ {
		loc := Local(OnePE, 1, p, perPE, rank)
		want := 0
		if rank == 0 {
			want = p * perPE
		}
		if len(loc) != want {
			t.Errorf("rank %d: %d elements, want %d", rank, len(loc), want)
		}
	}
}

func TestDeterministicPerRank(t *testing.T) {
	a := Local(Uniform, 7, 4, 100, 2)
	b := Local(Uniform, 7, 4, 100, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
	c := Local(Uniform, 8, 4, 100, 2)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d times", same)
	}
}

func TestSortedKindsAreSorted(t *testing.T) {
	const p, perPE = 4, 100
	var all []uint64
	for rank := 0; rank < p; rank++ {
		all = append(all, Local(Sorted, 1, p, perPE, rank)...)
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }) {
		t.Error("Sorted workload is not globally sorted")
	}
	var rev []uint64
	for rank := 0; rank < p; rank++ {
		rev = append(rev, Local(Reverse, 1, p, perPE, rank)...)
	}
	for i := 1; i < len(rev); i++ {
		if rev[i] >= rev[i-1] {
			t.Fatalf("Reverse workload not strictly decreasing at %d", i)
		}
	}
}

func TestDupHeavyHasFewKeys(t *testing.T) {
	seen := map[uint64]bool{}
	for rank := 0; rank < 4; rank++ {
		for _, v := range Local(DupHeavy, 3, 4, 200, rank) {
			seen[v] = true
		}
	}
	if len(seen) > 16 {
		t.Errorf("DupHeavy produced %d distinct keys, want ≤ 16", len(seen))
	}
}

func TestSkewedIsSkewed(t *testing.T) {
	loc := Local(Skewed, 5, 1, 10000, 0)
	below := 0
	for _, v := range loc {
		if v < 1<<58 { // u^8 < 1/32 ⇔ u < 0.65
			below++
		}
	}
	if below < len(loc)/2 {
		t.Errorf("Skewed mass not concentrated at small keys: %d/%d below 2^58", below, len(loc))
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Uniform: "uniform", Skewed: "skewed", DupHeavy: "dup-heavy",
		Sorted: "sorted", Reverse: "reverse", AlmostSorted: "almost-sorted", OnePE: "one-pe"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
