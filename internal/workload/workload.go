// Package workload generates the distributed inputs for the experiments:
// the paper's weak-scaling benchmark uses uniformly random 64-bit
// integers (§7); skewed, duplicate-heavy, (almost-)sorted, and
// adversarially unbalanced inputs exercise robustness beyond it.
package workload

import (
	"math"

	"pmsort/internal/prng"
)

// Kind selects an input distribution.
type Kind int

const (
	// Uniform draws independent uniform uint64 keys (the paper's input).
	Uniform Kind = iota
	// Skewed draws keys as (2⁶³)·u⁸ — heavy mass at small keys.
	Skewed
	// DupHeavy draws from only 16 distinct keys.
	DupHeavy
	// Sorted produces globally sorted input (rank-major).
	Sorted
	// Reverse produces globally reverse-sorted input.
	Reverse
	// AlmostSorted is Sorted with 1% random local swaps.
	AlmostSorted
	// OnePE places all n elements on PE 0.
	OnePE
)

// String names the distribution.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Skewed:
		return "skewed"
	case DupHeavy:
		return "dup-heavy"
	case Sorted:
		return "sorted"
	case Reverse:
		return "reverse"
	case AlmostSorted:
		return "almost-sorted"
	case OnePE:
		return "one-pe"
	}
	return "invalid"
}

// Local generates PE `rank`'s slice of a p-PE input with perPE elements
// per PE (except OnePE, which returns p·perPE elements on rank 0).
// Generation is deterministic in (kind, seed, p, perPE, rank) and
// independent across ranks, so each PE can generate its own input.
func Local(kind Kind, seed uint64, p, perPE, rank int) []uint64 {
	rng := prng.New(seed).Fork(uint64(rank) * 0x9e3779b97f4a7c15)
	switch kind {
	case Uniform:
		out := make([]uint64, perPE)
		for i := range out {
			out[i] = rng.Next()
		}
		return out
	case Skewed:
		out := make([]uint64, perPE)
		for i := range out {
			u := rng.Float64()
			out[i] = uint64(math.Pow(u, 8) * float64(1<<63))
		}
		return out
	case DupHeavy:
		out := make([]uint64, perPE)
		for i := range out {
			out[i] = rng.Uint64n(16)
		}
		return out
	case Sorted:
		out := make([]uint64, perPE)
		for i := range out {
			out[i] = uint64(rank)*uint64(perPE) + uint64(i)
		}
		return out
	case Reverse:
		out := make([]uint64, perPE)
		total := uint64(p) * uint64(perPE)
		for i := range out {
			out[i] = total - (uint64(rank)*uint64(perPE) + uint64(i)) - 1
		}
		return out
	case AlmostSorted:
		out := Local(Sorted, seed, p, perPE, rank)
		for s := 0; s < perPE/100; s++ {
			i, j := rng.Intn(perPE), rng.Intn(perPE)
			out[i], out[j] = out[j], out[i]
		}
		return out
	case OnePE:
		if rank != 0 {
			return nil
		}
		out := make([]uint64, p*perPE)
		for i := range out {
			out[i] = rng.Next()
		}
		return out
	}
	panic("workload: unknown kind")
}
