package core

import "math"

// This file derives and validates the comparator path's prefix hooks
// (Config.Prefix; the kernels live in internal/seq/prefix.go). The
// normalization rules are the classic order-preserving bit tricks
// (DESIGN.md §11): unsigned integers are their own prefix, signed
// integers flip the sign bit, floats use the total-order bit flip with
// ±0 collapsed, and strings pack their first 8 bytes big-endian —
// non-injective, but never out of order.

// derivedPrefix returns the automatically derived natural-order prefix
// for element type E, or nil when E is not a supported ordered type.
// The derivation assumes less is E's ascending natural order; a sort
// with any other comparator must supply its own Config.Prefix or set
// NoPrefix — and prefixGuard additionally cross-checks a bounded
// sample at sort entry, dropping a derived hook that contradicts less.
func derivedPrefix[E any]() func(E) uint64 {
	var fn any
	var zero E
	switch any(zero).(type) {
	case uint64:
		fn = func(x uint64) uint64 { return x }
	case uint:
		fn = func(x uint) uint64 { return uint64(x) }
	case uintptr:
		fn = func(x uintptr) uint64 { return uint64(x) }
	case uint32:
		fn = func(x uint32) uint64 { return uint64(x) }
	case uint16:
		fn = func(x uint16) uint64 { return uint64(x) }
	case uint8:
		fn = func(x uint8) uint64 { return uint64(x) }
	case int64:
		fn = func(x int64) uint64 { return signFlip(x) }
	case int:
		fn = func(x int) uint64 { return signFlip(int64(x)) }
	case int32:
		fn = func(x int32) uint64 { return signFlip(int64(x)) }
	case int16:
		fn = func(x int16) uint64 { return signFlip(int64(x)) }
	case int8:
		fn = func(x int8) uint64 { return signFlip(int64(x)) }
	case float64:
		fn = floatPrefix
	case float32:
		// The float32→float64 conversion is exact, so the float64
		// normalization is order-preserving for float32 too.
		fn = func(x float32) uint64 { return floatPrefix(float64(x)) }
	case string:
		fn = stringPrefix
	default:
		return nil
	}
	pf, _ := fn.(func(E) uint64)
	return pf
}

// signFlip maps int64 order onto uint64 order by flipping the sign bit.
func signFlip(x int64) uint64 { return uint64(x) ^ (1 << 63) }

// floatPrefix maps float64 order onto uint64 order: positive floats
// get their sign bit set, negative floats are bit-complemented (which
// reverses their magnitude order back to ascending). ±0 compare equal
// under <, so both map to +0's image — the two-sided prefix contract
// forbids splitting a comparator tie across prefixes. NaNs have no
// consistent order under < at all (the comparator itself is not a
// strict weak order then); they land above +Inf here.
func floatPrefix(x float64) uint64 {
	b := math.Float64bits(x)
	if b == 1<<63 { // -0 → +0
		b = 0
	}
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// stringPrefix packs the first 8 bytes big-endian, zero-padding short
// strings. Padding keeps order: a string precedes every proper
// extension of itself, and 0x00 is the smallest byte — so two strings
// with distinct packed prefixes compare exactly like the prefixes, and
// equal packs only ever join (never reorder) the pair.
func stringPrefix(s string) uint64 {
	var p uint64
	n := len(s)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		p |= uint64(s[i]) << (56 - 8*uint(i))
	}
	return p
}

// splitterPrefixes extracts the sorted splitter keys' prefixes for the
// prefix classification path, or nil when the run has no live prefix
// hook or the prefixes come out decreasing — possible only under a
// hook that violates the contract (the splitter keys are sorted), in
// which case the level falls back to the generic classifier.
func splitterPrefixes[E any](keys []E, st *localScratch[E]) []uint64 {
	if st.prefix == nil {
		return nil
	}
	spfx := make([]uint64, len(keys))
	for i, k := range keys {
		spfx[i] = st.prefix(k)
		if i > 0 && spfx[i] < spfx[i-1] {
			return nil
		}
	}
	return spfx
}

// prefixGuard cross-checks the prefix hook against less on a bounded
// sample of adjacent pairs of the local input. It only ever fails on a
// real contract violation (a strict prefix inequality the comparator
// does not confirm), so it never drops a valid hook — PEs deciding
// differently (each sees only its own data) is therefore harmless:
// under a valid hook every prefix decision is PE-local and
// output-identical either way.
func prefixGuard[E any](data []E, less func(a, b E) bool, pf func(E) uint64) bool {
	n := len(data) - 1
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		a, b := data[i], data[i+1]
		pa, pb := pf(a), pf(b)
		if pa < pb && !less(a, b) {
			return false
		}
		if pb < pa && !less(b, a) {
			return false
		}
	}
	return true
}
