package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pmsort/internal/delivery"
	"pmsort/internal/sim"
)

// TestSortersQuick fuzzes whole-sorter configurations: random machine
// sizes, data sizes, key ranges, level counts, delivery strategies and
// tie-breaking, asserting the output contract every time.
func TestSortersQuick(t *testing.T) {
	type params struct {
		P        uint8
		PerPE    uint8
		KeyBits  uint8
		Levels   uint8
		Strategy uint8
		TieBreak bool
		RLM      bool
		Seed     uint64
	}
	if err := quick.Check(func(pr params) bool {
		p := int(pr.P)%24 + 1
		perPE := int(pr.PerPE) % 64
		keyRange := 1 << (pr.KeyBits%20 + 1)
		levels := int(pr.Levels)%3 + 1
		strat := delivery.Strategy(pr.Strategy % 4)
		rng := rand.New(rand.NewSource(int64(pr.Seed)))
		locals := make([][]int, p)
		var all []int
		for i := range locals {
			loc := make([]int, perPE)
			for j := range loc {
				loc[j] = rng.Intn(keyRange)
			}
			locals[i] = loc
			all = append(all, loc...)
		}
		cfg := Config{
			Levels:   levels,
			Seed:     pr.Seed,
			TieBreak: pr.TieBreak,
			Delivery: delivery.Options{Strategy: strat},
		}
		m := sim.NewDefault(p)
		outs := make([][]int, p)
		m.Run(func(pe *sim.PE) {
			c := sim.World(pe)
			if pr.RLM {
				outs[pe.Rank()], _ = RLMSort(c, locals[pe.Rank()], intLess, cfg)
			} else {
				outs[pe.Rank()], _ = AMSSort(c, locals[pe.Rank()], intLess, cfg)
			}
		})
		// Contract: locally sorted, globally ordered, permutation.
		var got []int
		prevMax, started := 0, false
		for _, out := range outs {
			if !sort.IntsAreSorted(out) {
				return false
			}
			if len(out) > 0 {
				if started && out[0] < prevMax {
					return false
				}
				prevMax = out[len(out)-1]
				started = true
			}
			got = append(got, out...)
		}
		sort.Ints(all)
		sort.Ints(got)
		if len(all) != len(got) {
			return false
		}
		for i := range all {
			if all[i] != got[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestHierarchyMatters: making the inter-island link slower must slow
// down a sort that crosses islands but leave an intra-island sort alone.
func TestHierarchyMatters(t *testing.T) {
	topo := sim.Topology{CoresPerNode: 4, NodesPerIsland: 2} // 8 PEs/island
	slowCost := sim.DefaultCost()
	slowCost.Beta[sim.LinkCross] *= 50

	run := func(p int, cost sim.CostModel) int64 {
		rng := rand.New(rand.NewSource(4))
		locals := make([][]int, p)
		for i := range locals {
			loc := make([]int, 200)
			for j := range loc {
				loc[j] = rng.Intn(1 << 20)
			}
			locals[i] = loc
		}
		m := sim.New(p, topo, cost)
		var total int64
		m.Run(func(pe *sim.PE) {
			_, st := AMSSort(sim.World(pe), locals[pe.Rank()], intLess, Config{Levels: 2, Seed: 5})
			if pe.Rank() == 0 {
				total = st.TotalNS
			}
		})
		return total
	}
	// 16 PEs = 2 islands: slower cross links must hurt.
	if fast, slow := run(16, sim.DefaultCost()), run(16, slowCost); slow <= fast {
		t.Errorf("cross-island slowdown invisible: %d vs %d", fast, slow)
	}
	// 8 PEs = 1 island: cross-link cost must be irrelevant.
	if fast, slow := run(8, sim.DefaultCost()), run(8, slowCost); slow != fast {
		t.Errorf("intra-island sort affected by cross-island cost: %d vs %d", fast, slow)
	}
}

// TestEffectiveBCaps: the bucket-vector memory guard.
func TestEffectiveBCaps(t *testing.T) {
	if b := effectiveB(Config{Overpartition: 16}, 512); b != 16 {
		t.Errorf("b at r=512: %d want 16", b)
	}
	if b := effectiveB(Config{Overpartition: 16}, 8192); b != 4 {
		t.Errorf("b at r=8192: %d want 4 (capped)", b)
	}
	if b := effectiveB(Config{}, 64); b != 16 {
		t.Errorf("default b: %d want 16", b)
	}
	if b := effectiveB(Config{Overpartition: 1}, 1<<16); b != 1 {
		t.Errorf("b floor: %d want 1", b)
	}
}

// TestLevelRClamps: group counts never exceed the communicator size and
// the last level always splits into singletons.
func TestLevelRClamps(t *testing.T) {
	plan := []int{100, 16}
	if r := levelR(Config{}, plan, 0, 12); r != 12 {
		t.Errorf("clamped r = %d want 12", r)
	}
	if r := levelR(Config{}, plan, 1, 7); r != 7 {
		t.Errorf("last level r = %d want comm size 7", r)
	}
	if r := levelR(Config{}, plan, 5, 3); r != 3 {
		t.Errorf("beyond-plan r = %d want comm size 3", r)
	}
}
