package core

import (
	"math"
	"unsafe"

	"pmsort/internal/coll"
	"pmsort/internal/comm"
	"pmsort/internal/delivery"
	"pmsort/internal/fwis"
	"pmsort/internal/grouping"
	"pmsort/internal/obs"
	"pmsort/internal/prng"
	"pmsort/internal/seq"
)

// tagged is a sample or splitter key with its origin stamp, giving the
// strict total order of §2 ((key, PE, position) lexicographically).
type tagged[E any] struct {
	key E
	pe  int32
	idx int32
}

func taggedLess[E any](less func(a, b E) bool) func(a, b tagged[E]) bool {
	return func(a, b tagged[E]) bool {
		if less(a.key, b.key) {
			return true
		}
		if less(b.key, a.key) {
			return false
		}
		if a.pe != b.pe {
			return a.pe < b.pe
		}
		return a.idx < b.idx
	}
}

// localScratch is the per-PE scratch arena one sorting run threads
// through its recursion levels, so the hot path stops re-allocating
// per level (DESIGN.md §9):
//
//   - ids is the partition id scratch of PartitionInPlace;
//   - reuse holds the element buffer that carried this PE's data one
//     level up. Received chunks alias the *current* buffers of their
//     senders, and every PE has copied its received data out of them
//     before the data-delivery barrier — so once that barrier has
//     passed, the previous level's buffer is referenced by no one and
//     the next level may recycle it. Levels therefore ping-pong
//     between two buffers per PE instead of allocating one per level.
//   - pfx is the prefix sidecar / merge-staging arena of the prefix-
//     cached comparator path (nil-prefix runs never touch it); like
//     reuse it is dead between its level's consumers and recycled.
type localScratch[E any] struct {
	key    func(E) uint64
	prefix func(E) uint64
	ids    []uint16
	reuse  []E
	pfx    []uint64
	psc    seq.PrefixScratch[E]

	// rec is the run's obs recorder (nil when tracing is off — every
	// span call no-ops); eb is the element size for the PhaseBytes
	// accounting.
	rec *obs.Recorder
	eb  int64
}

// grab returns a zero-length buffer with capacity ≥ n, recycling the
// retired level buffer when it is big enough.
func (st *localScratch[E]) grab(n int) []E {
	buf := st.reuse
	st.reuse = nil
	if cap(buf) >= n {
		return buf[:0]
	}
	return make([]E, 0, n)
}

// pfxGrab returns the recycled prefix sidecar as a zero-length slice
// with capacity for n prefixes, so the per-chunk extraction appends
// without a realloc chain (the sidecar sibling of grab+recvBound).
func (st *localScratch[E]) pfxGrab(n int) []uint64 {
	if cap(st.pfx) < n {
		st.pfx = make([]uint64, 0, n)
	}
	return st.pfx[:0]
}

// retire records buf for recycling by a later grab, capacity-clamped
// to its length: the consumed-input contract makes buf's *elements*
// fair game, but a caller's slice may have spare capacity backed by
// memory that is still live elsewhere (e.g. all ranks' locals cut from
// one array), and recycling must never write past what was handed in.
func (st *localScratch[E]) retire(buf []E) {
	st.reuse = buf[:len(buf):len(buf)]
}

// sort runs the selected local kernel: in-place MSD radix when the run
// is keyed (Config.Key), prefix-cached LSD radix when a prefix hook is
// live, stable comparator sort otherwise. The comparator kernels at
// merge-feeding sites are stable on purpose: with a stable baseline,
// the prefix path's output is byte-identical to the plain path's even
// on elements the comparator cannot tell apart (the keyed kernel stays
// unstable — under the Key contract equal-key elements are
// order-indistinguishable anyway).
func (st *localScratch[E]) sort(data []E, less func(a, b E) bool) {
	if st.key != nil {
		seq.SortKeyedInPlace(data, st.key)
		return
	}
	if st.prefix != nil {
		st.pfx = seq.ExtractPrefixes(st.pfx[:0], data, st.prefix)
		seq.SortPrefixed(data, st.pfx, less, &st.psc)
		return
	}
	seq.SortStable(data, less)
}

// sortCost charges the selected kernel's modeled cost for n elements:
// the linear radix models when keyed or prefixed, the n·log n
// comparison-sort model otherwise — so the simulated backend's virtual
// time tracks the kernel that actually ran.
func (st *localScratch[E]) sortCost(cost comm.Cost, n int64) {
	if st.key != nil {
		cost.Ops(seq.SortKeyedOps(n))
		return
	}
	if st.prefix != nil {
		cost.Ops(seq.SortPrefixedOps(n))
		return
	}
	cost.SortOps(n)
}

// initScratch builds the run's scratch arena and resolves its kernel:
// Config.Key wins, else a validated prefix hook that survives the
// sampled entry guard arms the prefix-cached comparator kernels.
func initScratch[E any](data []E, less func(a, b E) bool, cfg Config) *localScratch[E] {
	st := &localScratch[E]{key: keyFor[E](cfg), eb: int64(unsafe.Sizeof(*new(E)))}
	// prefixFor also validates an explicit Config.Prefix hook's type, so
	// call it even on keyed runs (where the key kernel supersedes it).
	if pf := prefixFor[E](cfg); st.key == nil && pf != nil && prefixGuard(data, less, pf) {
		st.prefix = pf
	}
	return st
}

// AMSSort sorts the distributed data with adaptive multi-level sample
// sort (§6). It must be called collectively by all members of c with
// identical cfg. It returns this PE's slice of the globally sorted
// permutation — locally sorted, with no element on PE i larger than any
// element on PE i+1 — together with phase statistics. The output may be
// imbalanced by the overpartitioning tolerance (Lemma 2).
//
// The input slice is consumed: the sorter partitions it in place and
// recycles its backing array as level scratch, so its contents after
// the call are unspecified (callers that need the original must copy).
func AMSSort[E any](c comm.Communicator, data []E, less func(a, b E) bool, cfg Config) ([]E, *Stats) {
	cfg = validate(cfg)
	registerWire[E](cfg.Encoder)
	plan := cfg.Rs
	if plan == nil {
		plan = PlanLevels(c.Size(), cfg.Levels)
	}
	stats := &Stats{MaxImbalance: 1}
	st := initScratch(data, less, cfg)
	st.rec = obs.From(c)
	start := coll.TimedBarrier(c)
	root := st.rec.Start(obs.SpanAMS).N(int64(len(data)))
	out := amsLevel(c, data, less, cfg, plan, 0, stats, st)
	if len(out) == 0 {
		// Canonical empty: whether an empty result is nil or a zero-length
		// slice depends on the scratch-arena state of whichever kernel path
		// produced it; byte-identity comparisons must not see that.
		out = nil
	}
	root.End()
	stats.TotalNS = coll.TimedBarrier(c) - start
	return out, stats
}

func amsLevel[E any](c comm.Communicator, data []E, less func(a, b E) bool, cfg Config, plan []int, level int, stats *Stats, st *localScratch[E]) []E {
	cost := c.Cost()
	if c.Size() == 1 {
		// Base case: sort locally (the "local sort" phase).
		t0 := cost.Now()
		sp := st.rec.StartLevel(obs.SpanLocalSort, level).N(int64(len(data)))
		st.sort(data, less)
		st.sortCost(cost, int64(len(data)))
		sp.End()
		stats.addLevel(level, PhaseLocalSort, cost.Now()-t0)
		stats.PhaseBytes[PhaseLocalSort] += int64(len(data)) * st.eb
		stats.Levels = level
		return data
	}
	r := levelR(cfg, plan, level, c.Size())
	b := effectiveB(cfg, r)
	seed := cfg.Seed + uint64(level)*0x9e3779b97f4a7c15
	lvl := st.rec.StartLevel(obs.SpanLevel, level).N(int64(len(data)))
	defer lvl.End() // covers the level's recursion subtree in the trace

	// --- Phase: splitter selection -------------------------------------
	t0 := coll.TimedBarrier(c)
	sel := st.rec.StartLevel(obs.SpanSplitterSel, level)
	n := coll.Allreduce(c, int64(len(data)), 1, addI64)
	if n == 0 {
		// Nothing to sort anywhere; recurse trivially to keep the
		// collective call structure aligned.
		sel.End()
		sub, _ := c.SplitEqual(r)
		return amsLevel(sub, data, less, cfg, plan, level+1, stats, st)
	}
	a := cfg.Oversampling
	if a <= 0 {
		a = 1.6 * math.Log10(float64(n)) // the paper's a = 1.6·log₁₀ n (§7.2)
		if a < 1 {
			a = 1
		}
	}
	sampleTotal := int64(a * float64(b) * float64(r))
	if sampleTotal < int64(r) {
		sampleTotal = int64(r)
	}
	// Per-PE share proportional to this PE's share of the data, so the
	// union approximates a uniform global sample even when the input is
	// unbalanced (all elements on one PE, say): a flat per-PE share
	// under-samples loaded PEs by up to a factor of p, and the splitter
	// variance blows up with it — the torture harness catches this as an
	// output-imbalance violation on the one-pe workload.
	share := int((sampleTotal*int64(len(data)) + n - 1) / n)
	if share > len(data) {
		share = len(data)
	}
	// Sample `share` distinct positions (Floyd's algorithm) and tag each
	// sample with its (PE, data position): distinct positions keep the
	// tagged order strict for fwis, and position tags make the implicit
	// tie-breaking splits uniform over each PE's data.
	rng := prng.New(seed).Fork(uint64(c.Rank()) + 0xabcd)
	smp := st.rec.StartLevel(obs.SpanSample, level).N(int64(share))
	sample := make([]tagged[E], 0, share)
	taken := make(map[int]bool, share)
	for i := len(data) - share; i < len(data); i++ {
		j := rng.Intn(i + 1)
		if taken[j] {
			j = i
		}
		taken[j] = true
		sample = append(sample, tagged[E]{key: data[j], pe: int32(c.Rank()), idx: int32(j)})
	}
	cost.Scan(int64(share))
	smp.End()

	tLess := taggedLess(less)
	sps := st.rec.StartLevel(obs.SpanSplitterSort, level)
	sorter := fwis.New(c, sample, tLess)
	numSplitters := b*r - 1
	if s := sorter.Total(); int64(numSplitters) > s {
		numSplitters = int(s)
	}
	targets := make([]int64, numSplitters)
	for i := range targets {
		targets[i] = (int64(i) + 1) * sorter.Total() / int64(b*r)
	}
	splitters := sorter.SelectRanks(targets)
	sps.N(int64(numSplitters)).End()
	t1 := coll.TimedBarrier(c)
	sel.N(int64(share)).End()
	stats.addLevel(level, PhaseSplitterSelection, t1-t0)
	stats.PhaseBytes[PhaseSplitterSelection] += int64(share) * st.eb

	// --- Phase: bucket processing --------------------------------------
	cls := st.rec.StartLevel(obs.SpanClassify, level).N(int64(len(data)))
	sizes, bounds := amsPartition(c, data, splitters, less, cfg, st)
	// The b·r-long bucket-size vectors are the one long reduction in
	// AMS-sort; use the full-bandwidth algorithm where it applies.
	globalSizes := coll.AllreduceSumI64(c, sizes)
	var starts []int
	var maxLoad int64
	if cfg.ParallelGrouping {
		maxLoad, starts = grouping.OptimalLParallel(c, globalSizes, r)
	} else {
		maxLoad, starts = grouping.OptimalL(globalSizes, r)
		cost.Scan(int64(len(globalSizes)) * 8) // ≈ log(br) scans
	}
	imb := float64(maxLoad) * float64(r) / float64(n)
	if imb > stats.MaxImbalance {
		stats.MaxImbalance = imb
	}
	cls.Imb(imb)
	// Bucket ranges -> r pieces (trailing groups may be empty). The
	// pieces are bucket-contiguous sub-slices of data itself
	// (PartitionInPlace), so delivery stays zero-copy on the in-process
	// backends.
	pieces := make([][]E, r)
	for g := 0; g+1 < len(starts); g++ {
		pieces[g] = data[bounds[starts[g]]:bounds[starts[g+1]]]
	}

	// After this delivery every group is a single PE: finish inline
	// instead of recursing, choosing the cheaper last-level shape per
	// kernel (DESIGN.md §9). On the plain comparator path each outgoing
	// piece is sorted now, so receivers multiway-merge sorted runs
	// instead of re-sorting a concatenation from scratch ("we do not
	// want to ignore the information already available", §5). The keyed
	// and prefix-cached paths skip the piece sort: their stable radix
	// over the received concatenation is linear, so pre-sorting pieces
	// would only add work. The prefix path stays byte-identical to the
	// merge shape — a stable sort of runs concatenated in sender-rank
	// order IS the stable merge of those runs stably pre-sorted.
	last := r == c.Size()
	plainLast := last && st.key == nil && st.prefix == nil
	cls.End()
	var pieceSortNS int64
	if plainLast {
		ts := cost.Now()
		ps := st.rec.StartLevel(obs.SpanPieceSort, level).N(int64(len(data)))
		for _, piece := range pieces {
			seq.SortStable(piece, less)
		}
		cost.SortOps(int64(len(data)))
		ps.End()
		pieceSortNS = cost.Now() - ts
	}
	t2 := coll.TimedBarrier(c)
	stats.addLevel(level, PhaseBucketProcessing, t2-t1-pieceSortNS)
	stats.addLevel(level, PhaseLocalSort, pieceSortNS)
	stats.PhaseBytes[PhaseBucketProcessing] += int64(len(data)) * st.eb
	if plainLast {
		stats.PhaseBytes[PhaseLocalSort] += int64(len(data)) * st.eb
	}

	// --- Phase: data delivery ------------------------------------------
	dopt := cfg.Delivery
	dopt.Seed = seed ^ 0x1f2e3d4c

	if plainLast {
		// The received chunks are sorted runs, staged in rank order as
		// they arrive; merge them into the recycled buffer once the last
		// one is in (a loser tree needs all its runs). Delivery coalesced
		// contiguous same-sender spans, so k is bounded by the number of
		// senders.
		exch := st.rec.StartLevel(obs.SpanExchange, level)
		chunks := delivery.Deliver(c, pieces, dopt)
		var total int
		for _, ch := range chunks {
			total += len(ch)
		}
		tm := cost.Now()
		mg := st.rec.StartLevel(obs.SpanMerge, level).N(int64(total))
		out := seq.MultiwayInto(st.grab(total), chunks, less)
		cost.Ops(seq.MultiwayOps(int64(total), len(chunks)))
		mg.End()
		mergeNS := cost.Now() - tm
		t3 := coll.TimedBarrier(c)
		exch.N(int64(total)).End()
		stats.addLevel(level, PhaseDataDelivery, t3-t2-mergeNS)
		stats.addLevel(level, PhaseBucketProcessing, mergeNS)
		stats.PhaseBytes[PhaseDataDelivery] += int64(total) * st.eb
		stats.PhaseBytes[PhaseBucketProcessing] += int64(total) * st.eb
		stats.Levels = level + 1
		return out
	}

	// Concatenation shape: the received chunks are copied into the next
	// level's buffer in rank order while the exchange is still running
	// (streamConcat); at the keyed last level the copy loop also
	// accumulates the radix histograms, so the final radix's counting
	// pass overlaps the exchange too, and at the prefix-cached last
	// level it extracts the arriving chunks' prefix sidecar the same
	// way. Options.Batch routes through the original
	// materialize-then-concatenate path instead (byte-identical;
	// asserted by the torture harness).
	var hkey, pf func(E) uint64
	var hist *seq.KeyedHist
	if last {
		hkey = st.key
		if hkey != nil {
			hist = &seq.KeyedHist{}
		} else {
			pf = st.prefix
		}
	}
	exch := st.rec.StartLevel(obs.SpanExchange, level)
	var next []E
	if dopt.Batch {
		chunks := delivery.Deliver(c, pieces, dopt)
		var total int
		for _, ch := range chunks {
			total += len(ch)
		}
		next = st.grab(total)
		var pfx []uint64
		if pf != nil {
			pfx = st.pfxGrab(total)
		}
		for _, ch := range chunks {
			if hkey != nil {
				seq.HistKeyed(ch, hkey, hist)
			}
			if pf != nil {
				pfx = seq.ExtractPrefixes(pfx, ch, pf)
			}
			next = append(next, ch...)
		}
		if pf != nil {
			st.pfx = pfx
		}
	} else {
		bound := recvBound(c.Size(), c.Rank(), r, globalSizes, starts)
		var pfx []uint64
		if pf != nil {
			pfx = st.pfxGrab(bound)
		}
		next, pfx = streamConcat(c, pieces, dopt, st.grab(bound), hkey, hist, pf, pfx)
		if pf != nil {
			st.pfx = pfx
		}
	}
	total := len(next)
	// data is dead once the barrier below has passed: every PE holding
	// chunks into it has copied them out. Retire it for recycling.
	st.retire(data)
	cost.Scan(int64(total))
	t3 := coll.TimedBarrier(c)
	exch.N(int64(total)).End()
	stats.addLevel(level, PhaseDataDelivery, t3-t2)
	stats.PhaseBytes[PhaseDataDelivery] += int64(total) * st.eb

	if last {
		// Fast-path last level: a stable radix sort of the concatenation
		// is linear in total — no log k merge term. Keyed runs the LSD
		// radix with its histograms already accumulated during the
		// exchange and the retired level buffer as the ping-pong scratch
		// (no copy-back: whichever buffer holds the result is returned,
		// the other dies with the run); the prefix path runs the stable
		// prefix radix over the sidecar extracted during the exchange,
		// with the comparator deciding only equal-prefix runs.
		t4 := cost.Now()
		ls := st.rec.StartLevel(obs.SpanLocalSort, level).N(int64(total))
		var sorted []E
		if st.key != nil {
			scratch := st.grab(total)
			sorted, _ = seq.SortKeyedHist(next, st.key, scratch[:cap(scratch)], hist)
			cost.Ops(seq.SortKeyedOps(int64(total)))
		} else {
			scratch := st.grab(total)
			st.psc.Donate(scratch[:cap(scratch)])
			seq.SortPrefixed(next, st.pfx, less, &st.psc)
			cost.Ops(seq.SortPrefixedOps(int64(total)))
			sorted = next
		}
		ls.End()
		stats.addLevel(level, PhaseLocalSort, cost.Now()-t4)
		stats.PhaseBytes[PhaseLocalSort] += int64(total) * st.eb
		stats.Levels = level + 1
		return sorted
	}

	sub, _ := c.SplitEqual(r)
	return amsLevel(sub, next, less, cfg, plan, level+1, stats, st)
}

// amsPartition classifies the local data into the b·r buckets (or the
// 2(br-1)+1 buckets with equality buckets under Appendix D tie-breaking,
// folded back to br-1 boundaries by (PE, position) comparison against the
// splitter's tag) and reorders it bucket-contiguously *in place*
// (seq.PartitionInPlace — the id scratch lives in st and is reused
// across levels). It returns the local bucket sizes and boundaries.
func amsPartition[E any](c comm.Communicator, data []E, splitters []tagged[E], less func(a, b E) bool, cfg Config, st *localScratch[E]) ([]int64, []int) {
	cost := c.Cost()
	nb := len(splitters) + 1
	if len(splitters) == 0 {
		// Degenerate: a single bucket.
		return []int64{int64(len(data))}, []int{0, len(data)}
	}
	keys := make([]E, len(splitters))
	for i, s := range splitters {
		keys[i] = s.key
	}
	// tieFix resolves an equality-bucket hit under Appendix-D
	// tie-breaking: a binary search of the element's (PE, position) tag
	// over the run of splitters sharing its key, which spreads duplicate
	// keys across all their buckets. Only elements equal to a splitter
	// pay it; the branchless descent handles everything else.
	me := int32(c.Rank())
	tLess := taggedLess(less)
	tieFix := func(i int, x E, eq int) int {
		k := keys[(eq-1)/2]
		lo := seq.LowerBound(keys, k, less)
		hi := seq.UpperBound(keys, k, less)
		mine := tagged[E]{key: x, pe: me, idx: int32(i)}
		return lo + seq.LowerBound(splitters[lo:hi], mine, tLess)
	}

	var bounds []int
	var levels int
	if st.key != nil && nb <= seq.MaxInPlaceBuckets {
		// Keyed fast path: the descent runs on raw uint64 compares
		// (seq.KeyedClassifier) with the classification loop inlined
		// over the id scratch — the generic path's per-level closure
		// calls are the single hottest cost of keyed AMS-sort. The
		// classifications agree exactly with the generic classifier
		// under the Config.Key contract.
		skeys := make([]uint64, len(keys))
		for i, k := range keys {
			skeys[i] = st.key(k)
		}
		kc := seq.NewKeyedClassifier(skeys)
		levels = kc.Levels()
		if len(st.ids) < len(data) {
			st.ids = make([]uint16, len(data))
		}
		if cfg.TieBreak {
			seq.ClassifyKeyedEq(data, st.key, kc, st.ids, tieFix)
		} else {
			seq.ClassifyKeyed(data, st.key, kc, st.ids)
		}
		bounds = seq.PartitionInPlaceIDs(data, nb, st.ids[:len(data)])
	} else if spfx := splitterPrefixes(keys, st); spfx != nil && nb <= seq.MaxInPlaceBuckets {
		// Prefix fast path: the same branchless uint64 descent as the
		// keyed classifier, over the splitters' prefixes. Only elements
		// whose prefix collides with a splitter's ever touch the
		// comparator: the fallback binary-searches the run of
		// equal-prefix splitters (plus Appendix-D tie-breaking when
		// enabled), reproducing the generic classifier's bucket exactly —
		// for everything else a strict prefix inequality already decides
		// the order under the Config.Prefix contract.
		pc := seq.NewPrefixClassifier(spfx)
		levels = pc.Levels()
		if len(st.ids) < len(data) {
			st.ids = make([]uint16, len(data))
		}
		fallback := func(i, lo, hi int) int {
			x := data[i]
			b := lo + seq.UpperBound(keys[lo:hi], x, less)
			if cfg.TieBreak && b > 0 && !less(keys[b-1], x) {
				return tieFix(i, x, 2*(b-1)+1)
			}
			return b
		}
		seq.ClassifyPrefixed(data, st.prefix, pc, st.ids, fallback)
		bounds = seq.PartitionInPlaceIDs(data, nb, st.ids[:len(data)])
	} else {
		cls := seq.NewClassifier(keys, less)
		levels = cls.Levels()
		var bucketOf func(i int, x E) int
		if cfg.TieBreak {
			bucketOf = func(i int, x E) int {
				eq := cls.BucketEq(x)
				if eq%2 == 0 {
					return eq / 2
				}
				return tieFix(i, x, eq)
			}
		} else {
			bucketOf = func(_ int, x E) int { return cls.Bucket(x) }
		}
		idx := 0
		classify := func(x E) int {
			bkt := bucketOf(idx, x)
			idx++
			return bkt
		}
		if nb <= seq.MaxInPlaceBuckets {
			bounds, st.ids = seq.PartitionInPlace(data, nb, classify, st.ids)
		} else {
			// More buckets than the uint16 id scratch can name (giant-p
			// single-level sims): fall back to the out-of-place partition
			// and copy back, keeping the in-place contract for callers.
			parted, pbounds := seq.Partition(data, nb, classify)
			copy(data, parted)
			bounds = pbounds
		}
	}
	cost.PartitionOps(seq.ClassifyOps(int64(len(data)), levels))
	cost.Scan(2 * int64(len(data)))
	sizes := make([]int64, nb)
	for bkt := 0; bkt < nb; bkt++ {
		sizes[bkt] = int64(bounds[bkt+1] - bounds[bkt])
	}
	return sizes, bounds
}

func addI64(a, b int64) int64 { return a + b }
