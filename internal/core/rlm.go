package core

import (
	"pmsort/internal/coll"
	"pmsort/internal/comm"
	"pmsort/internal/delivery"
	"pmsort/internal/msel"
	"pmsort/internal/obs"
	"pmsort/internal/seq"
)

// RLMSort sorts the distributed data with recurse-last multiway
// mergesort (§5). It must be called collectively by all members of c
// with identical cfg. Every PE first sorts locally; each level then
// splits the p sorted sequences into r parts of exactly equal total size
// by multisequence selection, moves the data, and merges the received
// sorted runs. The output is perfectly balanced: every PE ends up with
// ⌊n/p⌋ or ⌈n/p⌉ elements.
//
// The input slice is consumed: the sorter sorts it in place and
// recycles its backing array as level scratch, so its contents after
// the call are unspecified (callers that need the original must copy).
func RLMSort[E any](c comm.Communicator, data []E, less func(a, b E) bool, cfg Config) ([]E, *Stats) {
	cfg = validate(cfg)
	registerWire[E](cfg.Encoder)
	plan := cfg.Rs
	if plan == nil {
		plan = PlanLevels(c.Size(), cfg.Levels)
	}
	cost := c.Cost()
	stats := &Stats{MaxImbalance: 1}
	st := initScratch(data, less, cfg)
	st.rec = obs.From(c)
	start := coll.TimedBarrier(c)
	root := st.rec.Start(obs.SpanRLM).N(int64(len(data)))

	// Initial local sort (the "local sort" phase of Figure 8), through
	// the selected kernel: keyed radix when Config.Key is set,
	// prefix-cached radix when a prefix hook is live, stable comparator
	// sort otherwise.
	t0 := cost.Now()
	ls := st.rec.StartLevel(obs.SpanLocalSort, 0).N(int64(len(data)))
	st.sort(data, less)
	st.sortCost(cost, int64(len(data)))
	ls.End()
	stats.addLevel(0, PhaseLocalSort, cost.Now()-t0)
	stats.PhaseBytes[PhaseLocalSort] += int64(len(data)) * st.eb

	out := rlmLevel(c, data, less, cfg, plan, 0, stats, st)
	if len(out) == 0 {
		// Canonical empty: whether an empty result is nil or a zero-length
		// slice depends on the scratch-arena state of whichever kernel path
		// produced it; byte-identity comparisons must not see that.
		out = nil
	}
	root.End()
	stats.TotalNS = coll.TimedBarrier(c) - start
	return out, stats
}

func rlmLevel[E any](c comm.Communicator, data []E, less func(a, b E) bool, cfg Config, plan []int, level int, stats *Stats, st *localScratch[E]) []E {
	cost := c.Cost()
	if c.Size() == 1 {
		stats.Levels = level
		return data
	}
	r := levelR(cfg, plan, level, c.Size())
	seed := cfg.Seed + uint64(level)*0x7f4a7c159e3779b9
	lvl := st.rec.StartLevel(obs.SpanLevel, level).N(int64(len(data)))
	defer lvl.End() // covers the level's recursion subtree in the trace

	// --- Phase: splitter selection (multisequence selection) -----------
	t0 := coll.TimedBarrier(c)
	sel := st.rec.StartLevel(obs.SpanSplitterSel, level).N(int64(len(data)))
	n := coll.Allreduce(c, int64(len(data)), 1, addI64)
	targets := make([]int64, r-1)
	for j := 1; j < r; j++ {
		targets[j-1] = int64(j) * n / int64(r)
	}
	pos := msel.Select(c, data, targets, less, seed)
	t1 := coll.TimedBarrier(c)
	sel.End()
	stats.addLevel(level, PhaseSplitterSelection, t1-t0)

	// --- Phase: data delivery ------------------------------------------
	pieces := make([][]E, r)
	prev := 0
	for j := 0; j < r-1; j++ {
		pieces[j] = data[prev:pos[j]]
		prev = pos[j]
	}
	pieces[r-1] = data[prev:]
	dopt := cfg.Delivery
	dopt.Seed = seed ^ 0x2b3c4d5e
	// The received runs are staged in rank order as they arrive
	// (Deliver is the rank-ordered collector over DeliverStream); the
	// loser-tree merge below needs all of them, so it starts at the
	// last arrival — the exchange overlap here is the staging, on the
	// TCP backend the decoding of later messages behind earlier ones
	// (DESIGN.md §10), and on the prefix path the extraction of each
	// chunk's prefix sidecar (streamRuns).
	exch := st.rec.StartLevel(obs.SpanExchange, level)
	var chunks [][]E
	var cpfx [][]uint64
	if st.prefix != nil {
		chunks, cpfx = streamRuns(c, pieces, dopt, st)
	} else {
		chunks = delivery.Deliver(c, pieces, dopt)
	}
	t2 := coll.TimedBarrier(c)
	exch.End()
	stats.addLevel(level, PhaseDataDelivery, t2-t1)

	// --- Phase: bucket processing (multiway merging) --------------------
	// The received chunks are sorted runs; merge instead of re-sorting
	// ("we do not want to ignore the information already available", §5).
	// Delivery coalesced contiguous same-sender spans on receive, so the
	// loser-tree k is bounded by the number of senders even on plans
	// that cut a piece into many spans; the output goes into the buffer
	// retired one level up (see localScratch).
	var total int
	for _, ch := range chunks {
		total += len(ch)
	}
	exch.N(int64(total))
	stats.PhaseBytes[PhaseDataDelivery] += int64(total) * st.eb
	mg := st.rec.StartLevel(obs.SpanMerge, level).N(int64(total))
	var merged []E
	if st.prefix != nil {
		merged = seq.MultiwayPrefixedInto(st.grab(total), chunks, cpfx, less)
	} else {
		merged = seq.MultiwayInto(st.grab(total), chunks, less)
	}
	cost.Ops(seq.MultiwayOps(int64(total), len(chunks)))
	// data is dead once the barrier below has passed: every PE holding
	// chunks into it has merged them out. Retire it for recycling.
	st.retire(data)
	t3 := coll.TimedBarrier(c)
	mg.End()
	stats.addLevel(level, PhaseBucketProcessing, t3-t2)
	stats.PhaseBytes[PhaseBucketProcessing] += int64(total) * st.eb

	sub, _ := c.SplitEqual(r)
	return rlmLevel(sub, merged, less, cfg, plan, level+1, stats, st)
}
