package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"pmsort/internal/sim"
)

// TestPrefixTypeMismatchPanics: a Config.Prefix hook for the wrong
// element type must be rejected at sort entry with a clear error, not
// panic mid-classify.
func TestPrefixTypeMismatchPanics(t *testing.T) {
	bad := func(string) uint64 { return 0 }
	for _, fn := range []sorterFn{AMSSort[int], RLMSort[int]} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("mismatched Prefix hook did not panic")
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "core: Config.Prefix is func(string) uint64, want func(int) uint64") {
					t.Fatalf("unexpected panic: %v", r)
				}
			}()
			m := sim.NewDefault(2)
			m.Run(func(pe *sim.PE) {
				fn(sim.World(pe), []int{3, 1, 2}, intLess, Config{Prefix: bad})
			})
		}()
	}
}

// TestDerivedPrefixContract: every automatically derived hook must
// satisfy the two-sided prefix contract against the type's natural
// order on random pairs (including the float ±0 and sign edge cases).
func TestDerivedPrefixContract(t *testing.T) {
	rng := rand.New(rand.NewSource(3))

	checkPairs := func(t *testing.T, name string, n int, sample func(i int) (uint64, uint64, bool, bool)) {
		t.Helper()
		for i := 0; i < n; i++ {
			pa, pb, abLess, baLess := sample(i)
			if abLess && pa > pb {
				t.Fatalf("%s pair %d: less(a,b) but prefix(a) > prefix(b)", name, i)
			}
			if baLess && pb > pa {
				t.Fatalf("%s pair %d: less(b,a) but prefix(b) > prefix(a)", name, i)
			}
			if pa < pb && !abLess {
				t.Fatalf("%s pair %d: prefix(a) < prefix(b) but !less(a,b)", name, i)
			}
			if pb < pa && !baLess {
				t.Fatalf("%s pair %d: prefix(b) < prefix(a) but !less(b,a)", name, i)
			}
		}
	}

	t.Run("int64", func(t *testing.T) {
		pf := derivedPrefix[int64]()
		checkPairs(t, "int64", 2000, func(int) (uint64, uint64, bool, bool) {
			a, b := rng.Int63()-rng.Int63(), rng.Int63()-rng.Int63()
			return pf(a), pf(b), a < b, b < a
		})
	})
	t.Run("float64", func(t *testing.T) {
		pf := derivedPrefix[float64]()
		vals := []float64{0, -0.0, 1.5, -1.5, 1e-300, -1e-300, 1e300, -1e300}
		for i := 0; i < 2000; i++ {
			vals = append(vals, rng.NormFloat64()*1e6)
		}
		idx := 0
		checkPairs(t, "float64", 4000, func(int) (uint64, uint64, bool, bool) {
			a, b := vals[idx%len(vals)], vals[(idx*7+3)%len(vals)]
			idx++
			return pf(a), pf(b), a < b, b < a
		})
	})
	t.Run("string", func(t *testing.T) {
		pf := derivedPrefix[string]()
		mk := func() string {
			n := rng.Intn(12)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(rng.Intn(4)) // tiny alphabet incl. 0x00 -> shared prefixes
			}
			return string(b)
		}
		checkPairs(t, "string", 4000, func(int) (uint64, uint64, bool, bool) {
			a, b := mk(), mk()
			return pf(a), pf(b), a < b, b < a
		})
	})
	t.Run("unsupported", func(t *testing.T) {
		if derivedPrefix[struct{ X int }]() != nil {
			t.Fatalf("derived a prefix for an unordered struct type")
		}
	})
}

// TestPrefixGuardDropsContradictedHook: a descending comparator
// contradicts the derived natural-order prefix; the guard must drop
// the hook (on data where the contradiction is visible) and the sort
// must still be correct.
func TestPrefixGuardDropsContradictedHook(t *testing.T) {
	greater := func(a, b int) bool { return a > b }
	if !prefixGuard([]int{5, 3, 1}, intLess, derivedPrefix[int]()) {
		t.Fatalf("guard dropped a valid hook")
	}
	if prefixGuard([]int{1, 3, 5}, greater, derivedPrefix[int]()) {
		t.Fatalf("guard kept a hook that contradicts the comparator")
	}

	// End to end: ascending local data makes every PE's guard see the
	// contradiction; the run must fall back to the plain path and sort
	// descending correctly.
	p, perPE := 4, 300
	locals := make([][]int, p)
	for r := range locals {
		loc := make([]int, perPE)
		for i := range loc {
			loc[i] = r*perPE + i
		}
		locals[r] = loc
	}
	for _, fn := range []sorterFn{AMSSort[int], RLMSort[int]} {
		m := sim.NewDefault(p)
		outs := make([][]int, p)
		m.Run(func(pe *sim.PE) {
			data := append([]int(nil), locals[pe.Rank()]...)
			outs[pe.Rank()], _ = fn(sim.World(pe), data, greater, Config{Levels: 1, Seed: 9})
		})
		want := p*perPE - 1
		for r := 0; r < p; r++ {
			for _, v := range outs[r] {
				if v != want {
					t.Fatalf("descending sort broken: got %d, want %d", v, want)
				}
				want--
			}
		}
	}
}

// TestPrefixPathByteIdentity: with a coarse non-injective hook on a
// tie-revealing struct element, the prefix path must reproduce the
// plain comparator path byte for byte — including under Appendix-D
// tie-breaking and across multi-level plans.
func TestPrefixPathByteIdentity(t *testing.T) {
	type kv struct{ K, V int }
	kvLess := func(a, b kv) bool { return a.K < b.K }
	hook := func(e kv) uint64 { return uint64(e.K) >> 2 }

	rng := rand.New(rand.NewSource(4))
	p, perPE := 6, 400
	locals := make([][]kv, p)
	v := 0
	for r := range locals {
		loc := make([]kv, perPE)
		for i := range loc {
			loc[i] = kv{K: rng.Intn(12), V: v} // heavy ties
			v++
		}
		locals[r] = loc
	}

	run := func(fn func(c *sim.PE) ([]kv, *Stats)) [][]kv {
		outs := make([][]kv, p)
		m := sim.NewDefault(p)
		m.Run(func(pe *sim.PE) {
			outs[pe.Rank()], _ = fn(pe)
		})
		return outs
	}

	for _, tieBreak := range []bool{false, true} {
		for _, levels := range []int{1, 2} {
			base := Config{Levels: levels, Seed: 11, TieBreak: tieBreak}
			for name, mk := range map[string]func(c *sim.PE, cfg Config) ([]kv, *Stats){
				"ams": func(pe *sim.PE, cfg Config) ([]kv, *Stats) {
					return AMSSort(sim.World(pe), append([]kv(nil), locals[pe.Rank()]...), kvLess, cfg)
				},
				"rlm": func(pe *sim.PE, cfg Config) ([]kv, *Stats) {
					return RLMSort(sim.World(pe), append([]kv(nil), locals[pe.Rank()]...), kvLess, cfg)
				},
			} {
				off := base
				off.NoPrefix = true
				on := base
				on.Prefix = hook
				plain := run(func(pe *sim.PE) ([]kv, *Stats) { return mk(pe, off) })
				prefixed := run(func(pe *sim.PE) ([]kv, *Stats) { return mk(pe, on) })
				if !reflect.DeepEqual(plain, prefixed) {
					t.Fatalf("%s levels=%d tieBreak=%v: prefix path diverges from plain comparator path", name, levels, tieBreak)
				}
			}
		}
	}
}
