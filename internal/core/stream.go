package core

import (
	"pmsort/internal/comm"
	"pmsort/internal/delivery"
	"pmsort/internal/seq"
)

// This file holds the sorters' receive-driven delivery consumers
// (DESIGN.md §10). delivery.DeliverStream hands out each sender's
// chunks as that sender's message arrives; what a level does with them
// depends on its shape:
//
//   - Concatenation levels (every non-last AMS level, and the keyed
//     and prefix-cached last levels feeding the radix kernels) copy
//     chunks into the next level buffer *during* the exchange — in
//     sender-rank order, so the result is byte-identical to the
//     materialize-then-concatenate batch path — and accumulate the
//     radix histograms (keyed) or extract the prefix sidecar
//     (prefix-cached) on the fly, so the first pass of the final radix
//     has already happened when the last byte arrives.
//   - Merge levels (RLM, the plain-comparator last AMS level) only
//     stage the arriving runs: a loser-tree merge needs all its runs,
//     so the merge itself starts at the last arrival — they use
//     delivery.Deliver, which since the streaming rewrite IS the
//     rank-ordered collector over DeliverStream; what overlaps there
//     is the staging and, on the TCP backend, the decode of later
//     messages behind the processing of earlier ones.
//
// delivery.Options.Batch routes a concatenation level through the
// original materialize-then-process path instead (for merge levels the
// two are the same code); the torture harness randomizes the knob and
// asserts the two are byte-identical.

// streamConcat delivers pieces and concatenates the received chunks in
// sender-rank order into buf (a zero-length slice with capacity from
// the caller's bound). Chunks are copied as they arrive: the in-order
// prefix eagerly — overlapping the memcpy with the remaining exchange —
// and out-of-order arrivals staged (by reference, no copy) until their
// turn. key, when non-nil, additionally folds every copied chunk into
// h, pre-computing the LSD radix histograms of the concatenation; pf,
// when non-nil, appends every copied chunk's prefixes to pfx — the
// sidecar is built in the same rank order as buf, so the two stay
// aligned — pre-computing the prefix extraction of the concatenation
// the same way. At most one of key/pf is set (they feed the two
// different last-level kernels).
func streamConcat[E any](c comm.Communicator, pieces [][]E, opt delivery.Options, buf []E, key func(E) uint64, h *seq.KeyedHist, pf func(E) uint64, pfx []uint64) ([]E, []uint64) {
	p := c.Size()
	pending := make([][][]E, p)
	arrived := make([]bool, p)
	nextSrc := 0
	add := func(chs [][]E) {
		for _, ch := range chs {
			if key != nil {
				seq.HistKeyed(ch, key, h)
			}
			if pf != nil {
				pfx = seq.ExtractPrefixes(pfx, ch, pf)
			}
			buf = append(buf, ch...)
		}
	}
	delivery.DeliverStream(c, pieces, opt, func(src int, chs [][]E) {
		arrived[src] = true
		pending[src] = chs
		for nextSrc < p && arrived[nextSrc] {
			add(pending[nextSrc])
			pending[nextSrc] = nil
			nextSrc++
		}
	})
	return buf, pfx
}

// streamRuns delivers pieces and stages the received chunks in
// sender-rank order — the exact chunk list delivery.Deliver returns —
// while extracting each chunk's prefix sidecar as it arrives, so the
// tie-aware loser tree starts (at the last arrival) with its prefixes
// already cached: the merge-level sibling of streamConcat's
// histogram-during-exchange overlap. The sidecars are carved from one
// arena (st.pfx, recycled across levels; dead between a level's merge
// and the next level's staging); spans are recorded as offsets and
// sliced only after the stream completes, since the growing arena may
// reallocate under earlier sub-slices. Options.Batch extracts after a
// batch Deliver instead — byte-identical, like the concatenation path.
func streamRuns[E any](c comm.Communicator, pieces [][]E, opt delivery.Options, st *localScratch[E]) (chunks [][]E, pfx [][]uint64) {
	type span struct{ off, n int }
	arena := st.pfx[:0]
	extract := func(chs [][]E) []span {
		ss := make([]span, len(chs))
		for i, ch := range chs {
			off := len(arena)
			arena = seq.ExtractPrefixes(arena, ch, st.prefix)
			ss[i] = span{off, len(ch)}
		}
		return ss
	}
	var spans []span
	if opt.Batch {
		chunks = delivery.Deliver(c, pieces, opt)
		spans = extract(chunks)
	} else {
		p := c.Size()
		bySrc := make([][][]E, p)
		spansBySrc := make([][]span, p)
		nchunks := 0
		delivery.DeliverStream(c, pieces, opt, func(src int, chs [][]E) {
			bySrc[src] = chs
			spansBySrc[src] = extract(chs)
			nchunks += len(chs)
		})
		chunks = make([][]E, 0, nchunks)
		spans = make([]span, 0, nchunks)
		for src := 0; src < p; src++ {
			chunks = append(chunks, bySrc[src]...)
			spans = append(spans, spansBySrc[src]...)
		}
	}
	st.pfx = arena
	pfx = make([][]uint64, len(chunks))
	for i, s := range spans {
		pfx[i] = arena[s.off : s.off+s.n]
	}
	return chunks, pfx
}

// recvBound bounds this PE's received element count for a level with r
// groups: its balanced share of its group's bucket load (the Deliver
// balance guarantee: ⌊m/g⌋ or ⌈m/g⌉ of the group's m elements). Used to
// size the next-level buffer before the exchange starts, so the
// streaming concatenation appends without reallocating.
func recvBound(p, rank, r int, globalSizes []int64, starts []int) int {
	pestarts, ok := comm.EqualStarts(p, r)
	if !ok {
		return 0
	}
	g := 0
	for g+1 < len(pestarts) && rank >= pestarts[g+1] {
		g++
	}
	if g+1 >= len(starts) {
		return 1 // trailing group with no buckets
	}
	var load int64
	for b := starts[g]; b < starts[g+1]; b++ {
		load += globalSizes[b]
	}
	gsize := pestarts[g+1] - pestarts[g]
	return int((load+int64(gsize)-1)/int64(gsize)) + 1
}
