package core

import (
	"math/rand"
	"sort"
	"testing"

	"pmsort/internal/comm"
	"pmsort/internal/delivery"
	"pmsort/internal/sim"
)

func intLess(a, b int) bool { return a < b }

type sorterFn func(c comm.Communicator, data []int, less func(a, b int) bool, cfg Config) ([]int, *Stats)

// runSorter executes a distributed sorter and returns the per-PE outputs
// and stats.
func runSorter(p int, locals [][]int, cfg Config, fn sorterFn) ([][]int, []*Stats) {
	m := sim.NewDefault(p)
	outs := make([][]int, p)
	stats := make([]*Stats, p)
	m.Run(func(pe *sim.PE) {
		c := sim.World(pe)
		// The sorters consume their input (reorder in place, recycle
		// the buffer as scratch); hand them a copy so checkSorted can
		// still read the original locals.
		data := append([]int(nil), locals[pe.Rank()]...)
		outs[pe.Rank()], stats[pe.Rank()] = fn(c, data, intLess, cfg)
	})
	return outs, stats
}

// checkSorted verifies the paper's output requirement: a permutation of
// the input, each PE locally sorted, and no element on PE i larger than
// any element on PE i+1.
func checkSorted(t *testing.T, locals, outs [][]int) {
	t.Helper()
	var wantAll, gotAll []int
	for _, l := range locals {
		wantAll = append(wantAll, l...)
	}
	prevMax := 0
	first := true
	for rank, out := range outs {
		if !sort.IntsAreSorted(out) {
			t.Fatalf("PE %d output not locally sorted", rank)
		}
		if len(out) > 0 {
			if !first && out[0] < prevMax {
				t.Fatalf("PE %d starts with %d, smaller than previous PE's max %d", rank, out[0], prevMax)
			}
			prevMax = out[len(out)-1]
			first = false
		}
		gotAll = append(gotAll, out...)
	}
	sort.Ints(wantAll)
	sort.Ints(gotAll)
	if len(wantAll) != len(gotAll) {
		t.Fatalf("output has %d elements, input had %d", len(gotAll), len(wantAll))
	}
	for i := range wantAll {
		if wantAll[i] != gotAll[i] {
			t.Fatalf("output is not a permutation of the input (first diff at %d: %d vs %d)", i, gotAll[i], wantAll[i])
		}
	}
}

func uniformLocals(rng *rand.Rand, p, perPE, keyRange int) [][]int {
	locals := make([][]int, p)
	for i := range locals {
		loc := make([]int, perPE)
		for j := range loc {
			loc[j] = rng.Intn(keyRange)
		}
		locals[i] = loc
	}
	return locals
}

func TestPlanLevels(t *testing.T) {
	cases := []struct {
		p, k int
		want []int
	}{
		{512, 1, []int{512}},
		{512, 2, []int{32, 16}},
		{512, 3, []int{8, 4, 16}},
		{2048, 2, []int{128, 16}},
		{2048, 3, []int{16, 8, 16}},
		{8192, 2, []int{512, 16}},
		{8192, 3, []int{32, 16, 16}},
		{32768, 2, []int{2048, 16}},
		{32768, 3, []int{64, 32, 16}},
		{8, 2, []int{8}}, // too small for two levels
	}
	for _, tc := range cases {
		got := PlanLevels(tc.p, tc.k)
		if len(got) != len(tc.want) {
			t.Errorf("PlanLevels(%d,%d) = %v, want %v", tc.p, tc.k, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("PlanLevels(%d,%d) = %v, want %v", tc.p, tc.k, got, tc.want)
				break
			}
		}
	}
}

func TestAMSSortLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		for _, k := range []int{1, 2, 3} {
			locals := uniformLocals(rng, p, 50, 1<<20)
			outs, stats := runSorter(p, locals, Config{Levels: k, Seed: 7}, AMSSort[int])
			checkSorted(t, locals, outs)
			if stats[0].TotalNS <= 0 && p > 1 {
				t.Errorf("p=%d k=%d: no time elapsed", p, k)
			}
		}
	}
}

func TestRLMSortLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		for _, k := range []int{1, 2, 3} {
			locals := uniformLocals(rng, p, 50, 1<<20)
			outs, _ := runSorter(p, locals, Config{Levels: k, Seed: 8}, RLMSort[int])
			checkSorted(t, locals, outs)
		}
	}
}

// TestRLMPerfectBalance: RLM-sort's output sizes differ by at most one.
func TestRLMPerfectBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, p := range []int{2, 4, 8, 16} {
		locals := uniformLocals(rng, p, 37, 1000) // duplicates likely
		outs, _ := runSorter(p, locals, Config{Levels: 2, Seed: 9}, RLMSort[int])
		minL, maxL := len(outs[0]), len(outs[0])
		for _, o := range outs {
			if len(o) < minL {
				minL = len(o)
			}
			if len(o) > maxL {
				maxL = len(o)
			}
		}
		if maxL-minL > 1 {
			t.Errorf("p=%d: RLM output sizes range %d..%d (want ≤1 spread)", p, minL, maxL)
		}
		checkSorted(t, locals, outs)
	}
}

// TestRLMBalanceWithHeavyDuplicates: perfect splitting must hold even
// when almost all keys collide (the multiselect tie-breaking case).
func TestRLMBalanceWithHeavyDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	p := 8
	locals := uniformLocals(rng, p, 64, 3)
	outs, _ := runSorter(p, locals, Config{Levels: 2, Seed: 10}, RLMSort[int])
	checkSorted(t, locals, outs)
	for rank, o := range outs {
		if len(o) != 64 {
			t.Errorf("PE %d has %d elements, want exactly 64", rank, len(o))
		}
	}
}

// TestAMSTieBreakBalance: with Appendix D tie-breaking, AMS-sort keeps
// its balance guarantee on duplicate-heavy inputs.
func TestAMSTieBreakBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	p := 16
	locals := uniformLocals(rng, p, 100, 2) // keys in {0,1}!
	outs, stats := runSorter(p, locals, Config{Levels: 2, Seed: 11, TieBreak: true}, AMSSort[int])
	checkSorted(t, locals, outs)
	// Without equality splitting one group would get ~half of everything;
	// with it every PE should stay within a reasonable factor of n/p.
	for rank, o := range outs {
		if len(o) > 3*100 {
			t.Errorf("PE %d holds %d elements (n/p=100) — tie-breaking failed", rank, len(o))
		}
	}
	if stats[0].MaxImbalance > 3 {
		t.Errorf("imbalance %f too high with tie-breaking", stats[0].MaxImbalance)
	}
}

func TestAMSImbalanceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	p := 32
	locals := uniformLocals(rng, p, 200, 1<<30)
	for _, b := range []int{4, 16, 64} {
		outs, stats := runSorter(p, locals, Config{Levels: 2, Seed: 12, Overpartition: b, Oversampling: 4}, AMSSort[int])
		checkSorted(t, locals, outs)
		// Lemma 2: larger b (overpartitioning) keeps groups near n/r.
		if stats[0].MaxImbalance > 2.0 {
			t.Errorf("b=%d: level imbalance %f > 2", b, stats[0].MaxImbalance)
		}
	}
}

func TestSortersEdgeCases(t *testing.T) {
	for name, fn := range map[string]sorterFn{"AMS": AMSSort[int], "RLM": RLMSort[int]} {
		// Empty everywhere.
		outs, _ := runSorter(4, [][]int{{}, {}, {}, {}}, Config{Levels: 2, Seed: 1}, fn)
		checkSorted(t, [][]int{{}, {}, {}, {}}, outs)
		// Fewer elements than PEs.
		locals := [][]int{{5}, {}, {3}, {}}
		outs, _ = runSorter(4, locals, Config{Levels: 1, Seed: 2}, fn)
		checkSorted(t, locals, outs)
		// All data on one PE.
		rng := rand.New(rand.NewSource(57))
		locals = [][]int{make([]int, 200), {}, {}, {}, {}, {}, {}, {}}
		for i := range locals[0] {
			locals[0][i] = rng.Intn(1000)
		}
		outs, _ = runSorter(8, locals, Config{Levels: 2, Seed: 3}, fn)
		checkSorted(t, locals, outs)
		// Already sorted / reverse sorted inputs.
		locals = make([][]int, 4)
		for i := range locals {
			loc := make([]int, 30)
			for j := range loc {
				loc[j] = i*1000 + j
			}
			locals[i] = loc
		}
		outs, _ = runSorter(4, locals, Config{Levels: 2, Seed: 4}, fn)
		checkSorted(t, locals, outs)
		_ = name
	}
}

func TestSortersAllDeliveryStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	p := 12
	locals := uniformLocals(rng, p, 40, 1<<16)
	for _, strat := range []delivery.Strategy{delivery.Simple, delivery.Randomized, delivery.RandomizedAdvanced, delivery.Deterministic} {
		cfg := Config{Levels: 2, Seed: 13, Delivery: delivery.Options{Strategy: strat}}
		outs, _ := runSorter(p, locals, cfg, AMSSort[int])
		checkSorted(t, locals, outs)
		outs, _ = runSorter(p, locals, cfg, RLMSort[int])
		checkSorted(t, locals, outs)
	}
}

func TestSortersExplicitRs(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	p := 24
	locals := uniformLocals(rng, p, 25, 1<<16)
	cfg := Config{Levels: 2, Rs: []int{6, 4}, Seed: 14}
	outs, stats := runSorter(p, locals, cfg, AMSSort[int])
	checkSorted(t, locals, outs)
	if stats[0].Levels != 2 {
		t.Errorf("expected 2 levels, got %d", stats[0].Levels)
	}
}

func TestParallelGroupingAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	p := 16
	locals := uniformLocals(rng, p, 60, 1<<16)
	seq, _ := runSorter(p, locals, Config{Levels: 2, Seed: 15}, AMSSort[int])
	par, _ := runSorter(p, locals, Config{Levels: 2, Seed: 15, ParallelGrouping: true}, AMSSort[int])
	for rank := range seq {
		if len(seq[rank]) != len(par[rank]) {
			t.Fatalf("PE %d: sequential and parallel grouping disagree (%d vs %d elements)",
				rank, len(seq[rank]), len(par[rank]))
		}
		for i := range seq[rank] {
			if seq[rank][i] != par[rank][i] {
				t.Fatalf("PE %d: outputs differ at %d", rank, i)
			}
		}
	}
}

// TestSortersSharedBackingArray: all ranks' inputs cut from ONE array
// with two-index slicing, so every rank's slice has spare capacity
// backed by the NEXT rank's live data. The consumed-input contract
// covers a slice's elements, not memory past its length: buffer
// recycling must capacity-clamp on retire or a rank that receives more
// than it sent appends into its neighbour's region (the localScratch
// grab/retire invariant).
func TestSortersSharedBackingArray(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	const p, perPE = 6, 120
	for name, fn := range map[string]sorterFn{"AMS": AMSSort[int], "RLM": RLMSort[int]} {
		backing := make([]int, p*perPE)
		for i := range backing {
			backing[i] = rng.Intn(1 << 16)
		}
		locals := make([][]int, p)
		ref := make([][]int, p)
		for rank := 0; rank < p; rank++ {
			locals[rank] = backing[rank*perPE : (rank+1)*perPE] // spare cap into rank+1
			ref[rank] = append([]int(nil), locals[rank]...)
		}
		m := sim.NewDefault(p)
		outs := make([][]int, p)
		m.Run(func(pe *sim.PE) {
			// Explicit Rs forces two real delivery levels at this small
			// p (PlanLevels would collapse p ≤ 16 to one level), so the
			// level-1 grab actually recycles the retired level-0 input.
			outs[pe.Rank()], _ = fn(sim.World(pe), locals[pe.Rank()], intLess,
				Config{Levels: 2, Rs: []int{2, 3}, Seed: 17})
		})
		checkSorted(t, ref, outs)
		_ = name
	}
}

// TestDeterministicVirtualTime: identical runs give identical clocks.
func TestDeterministicVirtualTime(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	p := 8
	locals := uniformLocals(rng, p, 50, 1000)
	for name, fn := range map[string]sorterFn{"AMS": AMSSort[int], "RLM": RLMSort[int]} {
		run := func() int64 {
			outs, stats := runSorter(p, locals, Config{Levels: 2, Seed: 16}, fn)
			_ = outs
			return stats[0].TotalNS
		}
		if a, b := run(), run(); a != b {
			t.Errorf("%s: virtual time differs across runs: %d vs %d", name, a, b)
		}
	}
}

// TestPhaseTimesAddUp: phases are measured between barriers, so their sum
// must not exceed the total (and must cover most of it).
func TestPhaseTimesAddUp(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	p := 16
	locals := uniformLocals(rng, p, 100, 1<<20)
	for name, fn := range map[string]sorterFn{"AMS": AMSSort[int], "RLM": RLMSort[int]} {
		_, stats := runSorter(p, locals, Config{Levels: 2, Seed: 17}, fn)
		var sum int64
		for _, ns := range stats[0].PhaseNS {
			if ns < 0 {
				t.Errorf("%s: negative phase time", name)
			}
			sum += ns
		}
		if sum > stats[0].TotalNS {
			t.Errorf("%s: phase sum %d exceeds total %d", name, sum, stats[0].TotalNS)
		}
		if sum < stats[0].TotalNS/2 {
			t.Errorf("%s: phases (%d) cover less than half the total (%d)", name, sum, stats[0].TotalNS)
		}
	}
}

// TestMultiLevelFewerStartups is the paper's core claim: with small n/p
// and large p, the 2-level algorithm beats the 1-level algorithm because
// it trades k data passes for O(k·ᵏ√p) startups.
func TestMultiLevelFewerStartups(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	p := 64
	locals := uniformLocals(rng, p, 100, 1<<30)
	_, s1 := runSorter(p, locals, Config{Levels: 1, Seed: 18}, AMSSort[int])
	_, s2 := runSorter(p, locals, Config{Levels: 2, Seed: 18}, AMSSort[int])
	if s2[0].TotalNS >= s1[0].TotalNS {
		t.Errorf("2-level AMS (%d ns) not faster than 1-level (%d ns) at p=%d, n/p=100",
			s2[0].TotalNS, s1[0].TotalNS, p)
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhaseSplitterSelection: "splitter selection",
		PhaseBucketProcessing:  "bucket processing",
		PhaseDataDelivery:      "data delivery",
		PhaseLocalSort:         "local sort",
	}
	for ph, s := range want {
		if ph.String() != s {
			t.Errorf("Phase(%d).String() = %q want %q", ph, ph.String(), s)
		}
	}
}
