// Package core implements the paper's two multi-level sorting
// algorithms: AMS-sort (adaptive multi-level sample sort with
// overpartitioning, §6) and RLM-sort (recurse-last multiway mergesort,
// §5), on top of the building blocks in internal/{msel,fwis,delivery,
// grouping,seq,coll,sim}.
package core

import (
	"fmt"

	"pmsort/internal/coll"
	"pmsort/internal/delivery"
	"pmsort/internal/fwis"
	"pmsort/internal/msel"
	"pmsort/internal/wire"
)

// Phase identifies the four measured algorithm phases of §7.1. A barrier
// precedes every phase; timings accumulate over all recursion levels.
type Phase int

const (
	// PhaseSplitterSelection covers sampling + sample sort + splitter
	// broadcast (AMS) or multisequence selection (RLM).
	PhaseSplitterSelection Phase = iota
	// PhaseBucketProcessing covers local partitioning + bucket grouping
	// (AMS) or multiway merging of received runs (RLM).
	PhaseBucketProcessing
	// PhaseDataDelivery covers the bulk data exchange.
	PhaseDataDelivery
	// PhaseLocalSort covers the base-case local sort (AMS) or the initial
	// local sort (RLM).
	PhaseLocalSort
	// NumPhases is the number of phases.
	NumPhases
)

// String names the phase like the paper's figures.
func (ph Phase) String() string {
	switch ph {
	case PhaseSplitterSelection:
		return "splitter selection"
	case PhaseBucketProcessing:
		return "bucket processing"
	case PhaseDataDelivery:
		return "data delivery"
	case PhaseLocalSort:
		return "local sort"
	}
	return "invalid"
}

// Stats reports one PE's view of a sorting run.
type Stats struct {
	// PhaseNS[ph] is the accumulated virtual time of phase ph over all
	// levels, measured between synchronized barriers.
	PhaseNS [NumPhases]int64
	// LevelPhaseNS[level][ph] breaks PhaseNS down by recursion level:
	// summing a phase's column over all levels reproduces PhaseNS[ph]
	// exactly (both are fed from the same barrier deltas). RLM's initial
	// local sort is charged to level 0; a level's trailing local work
	// (AMS base case, last-level radix) is charged to the level it ran
	// on. Always populated — Stats stays the cheap always-on summary.
	LevelPhaseNS [][NumPhases]int64
	// PhaseBytes[ph] estimates the bytes each phase put through memory
	// or the network on this PE: sample bytes for splitter selection,
	// classified/merged bytes for bucket processing, received bytes for
	// data delivery, sorted bytes for the local sort.
	PhaseBytes [NumPhases]int64
	// TotalNS is the virtual time from start to finish.
	TotalNS int64
	// MaxImbalance is the largest observed max-group-load / avg-group-load
	// ratio over all levels (AMS only; 1.0 means perfectly balanced).
	MaxImbalance float64
	// Levels is the number of recursion levels executed.
	Levels int
}

// addLevel accumulates ns into both the flat and the per-level phase
// breakdown, growing the level table on first touch of a level.
func (s *Stats) addLevel(level int, ph Phase, ns int64) {
	s.PhaseNS[ph] += ns
	for len(s.LevelPhaseNS) <= level {
		s.LevelPhaseNS = append(s.LevelPhaseNS, [NumPhases]int64{})
	}
	s.LevelPhaseNS[level][ph] += ns
}

// Config tunes the sorters. Field order follows the documented
// narrative (shape knobs, then hooks); one padding word per run is not
// worth scrambling it, hence the fieldalign waiver.
//
//nolint:fieldalign
type Config struct {
	// Levels is the number of recursion levels k (≥1). 0 means 1.
	Levels int
	// Rs optionally fixes the number of groups per level (length Levels;
	// the last entry is effectively the remaining group size). nil picks
	// PlanLevels(p, Levels).
	Rs []int
	// Oversampling is the factor a; 0 picks the paper's experimental
	// default a = 1.6·log₁₀(n) (§7.2).
	Oversampling float64
	// Overpartition is the factor b; 0 picks the paper's default 16.
	// The effective b is capped so that b·r stays manageable.
	Overpartition int
	// Delivery configures the data redistribution (§4.3). The zero value
	// is the simple prefix-sum delivery with the 1-factor exchange, the
	// configuration of the paper's experiments.
	Delivery delivery.Options
	// Seed drives sampling and all randomized subroutines.
	Seed uint64
	// TieBreak enables the implicit (PE, position) tie-breaking of
	// Appendix D: equality buckets in the partitioner plus lexicographic
	// comparisons only for elements equal to a splitter. Without it,
	// heavily duplicated keys can defeat AMS-sort's balance guarantee.
	TieBreak bool
	// ParallelGrouping uses the parallelized optimal-L search of
	// Appendix C instead of the sequential one.
	ParallelGrouping bool
	// Encoder optionally supplies a custom wire codec for the element
	// type on serializing backends (the TCP cluster). Elements made of
	// scalars, strings, slices, and plain structs are serialized
	// automatically; types the structural codec cannot handle (pointers
	// into shared state, maps, interfaces) need this hook. Ignored by
	// the simulated and native backends.
	Encoder wire.Encoder
	// Key optionally declares the element order to be the natural order
	// of a uint64 key: set it to a func(E) uint64 (for the sorted
	// element type E) satisfying less(a, b) == (Key(a) < Key(b)) for
	// all a, b. When set, the local-phase kernels switch from generic
	// pdqsort to an in-place MSD radix sort on the key
	// (seq.SortKeyedInPlace) — the cache-efficient fast path that makes
	// native strong scaling beat a one-core comparison sort on
	// integer-keyed data. A hook of any other type (or a mismatched
	// element type) is ignored. The keyed kernel is deterministic but
	// NOT stable on equal keys — the same (lack of) guarantee as the
	// comparator kernel, and under the contract above equal-key
	// elements are order-indistinguishable anyway.
	Key any
	// Prefix optionally supplies an order-preserving uint64 prefix of
	// the element order for the comparator path: a func(E) uint64 with
	//
	//	less(a, b)            ⇒  Prefix(a) ≤ Prefix(b), and
	//	Prefix(a) < Prefix(b) ⇒  less(a, b)
	//
	// (comparing prefixes first and calling less only on prefix ties
	// must decide every pair exactly like less). Unlike Key it need not
	// be injective: pack whatever most-significant order bits fit —
	// sign-flipped integers, totally-ordered float bits, a struct's
	// leading key field, a string's first 8 bytes (DESIGN.md §11) — and
	// the kernels run branch-free on the prefix, falling back to the
	// comparator only inside equal-prefix runs. When unset, Key doubles
	// as the prefix on keyed runs, and for ordered scalar and string
	// element types a natural-order prefix is derived automatically
	// (assuming less is the type's ascending natural order; a sampled
	// entry guard drops a derived hook that contradicts less, and
	// NoPrefix opts out entirely). A hook whose type does not match the
	// element type is rejected at sort entry. The prefix path is
	// byte-identical to the plain comparator path.
	Prefix any
	// NoPrefix disables the comparator path's prefix cache (explicit
	// Prefix hooks, Key reuse, and automatic derivation alike): every
	// local kernel then runs on the comparator only. Output is
	// unchanged either way.
	NoPrefix bool
}

// keyFor extracts the Config.Key hook for element type E (nil when
// unset or set for a different element type).
func keyFor[E any](cfg Config) func(E) uint64 {
	key, _ := cfg.Key.(func(E) uint64)
	return key
}

// prefixFor resolves the comparator path's prefix hook for element
// type E: the explicit Config.Prefix when set — a hook whose type does
// not match the element type is a configuration error and rejected
// here, at sort entry, with the same error shape as the other Config
// checks (instead of panicking mid-classify) — else Config.Key (a full
// order key is the strongest possible prefix), else a derived
// natural-order prefix for ordered element types. NoPrefix disables
// all three.
func prefixFor[E any](cfg Config) func(E) uint64 {
	if cfg.Prefix != nil {
		pf, ok := cfg.Prefix.(func(E) uint64)
		if !ok {
			var zero E
			panic(fmt.Sprintf("core: Config.Prefix is %T, want func(%T) uint64", cfg.Prefix, zero))
		}
		if cfg.NoPrefix {
			return nil
		}
		return pf
	}
	if cfg.NoPrefix {
		return nil
	}
	if key := keyFor[E](cfg); key != nil {
		return key
	}
	return derivedPrefix[E]()
}

// registerWire registers every payload type the multi-level sorters can
// put on a serializing backend for element type E: the elements and
// their tagged sample/splitter wrappers, the collective shapes of both,
// and the building blocks' own payloads. Called at every sort entry
// point — registration is idempotent and costs a few map lookups.
func registerWire[E any](enc wire.Encoder) {
	if enc != nil {
		wire.RegisterEncoder[E](enc)
	}
	coll.RegisterWire[E]()
	coll.RegisterWire[tagged[E]]()
	fwis.RegisterWire[tagged[E]]()
	delivery.RegisterWire[E]()
	msel.RegisterWire[E]()
}

// maxBucketsPerLevel caps b·r (the bucket-size vectors move through
// all-reduces; see DESIGN.md §5).
const maxBucketsPerLevel = 1 << 15

// effectiveB returns the overpartitioning factor actually used for a
// level with r groups.
func effectiveB(cfg Config, r int) int {
	b := cfg.Overpartition
	if b <= 0 {
		b = 16
	}
	if cap := maxBucketsPerLevel / r; b > cap {
		b = cap
	}
	if b < 1 {
		b = 1
	}
	return b
}

// PlanLevels returns per-level group counts for p PEs and k levels,
// following the scheme of Table 1: the second-to-last level forms
// node-sized groups of 16 PEs (so the last level communicates only
// node-internally), and for k=3 the first level splits into
// 2^⌈log₂(p/16)/2⌉ groups. k=1 is the classic single-level algorithm
// with r = p. The plan generalizes to any p and k by splitting the
// remaining log₂(p/16) bits into k-1 near-equal parts, larger first.
func PlanLevels(p, k int) []int {
	if k <= 1 || p <= 16 {
		return []int{p}
	}
	bits := 0
	for v := 1; v < (p+15)/16; v <<= 1 {
		bits++
	}
	parts := k - 1
	rs := make([]int, 0, k)
	rem := bits
	for i := 0; i < parts; i++ {
		share := (rem + (parts - i - 1)) / (parts - i) // ceil of what's left
		rs = append(rs, 1<<share)
		rem -= share
	}
	return append(rs, 16)
}

// levelR returns the group count for the given level of the recursion,
// clamped to the current communicator size; the last level always splits
// into singleton groups.
func levelR(cfg Config, plan []int, level, commSize int) int {
	if level >= len(plan)-1 {
		return commSize
	}
	r := plan[level]
	if r > commSize {
		r = commSize
	}
	if r < 1 {
		r = 1
	}
	return r
}

func validate(cfg Config) Config {
	if cfg.Levels <= 0 {
		cfg.Levels = 1
	}
	if cfg.Rs != nil && len(cfg.Rs) != cfg.Levels {
		panic(fmt.Sprintf("core: Config.Rs has %d entries for %d levels", len(cfg.Rs), cfg.Levels))
	}
	return cfg
}
