// Package chaos is a deterministic, seeded fault-and-contract-checking
// middleware for comm.Communicator: Wrap(c, cfg) composes over any
// backend and returns a communicator that behaves identically at the
// algorithm level while adversarially perturbing and auditing every
// message underneath. It is the test-time counterpart of the robustness
// argument in "Robust Massively Parallel Sorting" (Axtmann & Sanders,
// 2016): instead of hoping that hand-picked configurations expose
// contract violations, the middleware *manufactures* the conditions
// under which they become visible.
//
// Three independent mechanisms, all driven by one seed:
//
//   - Schedule shaking (Config.Shake): seeded pseudo-random delays and
//     runtime.Gosched calls around Send and Recv perturb the goroutine
//     interleavings of the in-process backends, so orderings that would
//     only occur under production load occur in tests. The injected
//     schedule is a pure function of (Seed, PE, operation index) —
//     a failing run replays exactly from its seed.
//
//   - Forced serialization (Config.ForceSerialize): every in-process
//     payload is round-tripped through the internal/wire codec at the
//     Send/Recv boundary, so a missing wire registration or a
//     non-serializable payload — bugs that otherwise stay invisible
//     until the code happens to run on the TCP backend — fail on the
//     simulated and native backends too. The receiver gets the decoded
//     copy, which also surfaces aliasing bugs where an algorithm relies
//     on sharing memory with the sender. Post-Send mutation (forbidden
//     by the Communicator payload contract) is detected by checksumming
//     the encoding at Send and re-encoding the original at delivery:
//     a sender that touched the payload in between changes the second
//     checksum.
//
//   - Words audit: the declared `words` of every serialized message is
//     compared against its encoded byte size. The audit always records
//     the worst declared-vs-encoded ratio; with Config.WordsFactor > 0
//     a message whose encoding exceeds words·8·factor + slack bytes is
//     reported as a violation (under-declared messages corrupt the
//     simulator's cost model silently).
//
// Violations are delivered to Config.OnViolation (default: panic) and
// recorded in the shared Config.Audit, so a torture harness can both
// fail fast interactively and collect everything in one sweep.
//
// Wrapping composes with splitting: communicators returned by
// SplitEqual/SplitStarts/SplitModulo/Subset are wrapped again around
// the inner split result and share the PE's chaos state, so a sort that
// recurses into subgroups stays under chaos all the way down.
package chaos

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"pmsort/internal/comm"
	"pmsort/internal/obs"
	"pmsort/internal/prng"
	"pmsort/internal/wire"
)

// Kind classifies a detected contract violation.
type Kind int

const (
	// Mutation: a payload was mutated between Send and delivery —
	// forbidden by the Communicator ownership contract (checksum at
	// Send differs from checksum of the re-encoding at delivery).
	Mutation Kind = iota
	// Unregistered: a payload's type is not wire-registered, so the
	// message would be unencodable on the TCP backend.
	Unregistered
	// Codec: the payload encoded but did not round-trip (decode error
	// or trailing bytes) — an encoder/decoder asymmetry.
	Codec
	// Words: the declared message size in words under-states the
	// encoded byte size beyond the configured tolerance.
	Words
)

// String names the violation kind.
func (k Kind) String() string {
	switch k {
	case Mutation:
		return "post-send-mutation"
	case Unregistered:
		return "unregistered-type"
	case Codec:
		return "codec-roundtrip"
	case Words:
		return "words-under-declared"
	}
	return "invalid"
}

// Violation is one detected contract violation. It implements error.
type Violation struct {
	Kind Kind
	// PE is the world rank of the PE that detected the violation (the
	// sender for Unregistered/Words, the receiver otherwise).
	PE int
	// Tag is the message tag in flight.
	Tag int
	// Detail is a human-readable diagnosis.
	Detail string
}

// Error formats the violation with its kind and location.
func (v Violation) Error() string {
	return fmt.Sprintf("chaos: %v at PE %d (tag %#x): %s", v.Kind, v.PE, v.Tag, v.Detail)
}

// Audit accumulates what the middleware observed across all PEs of a
// run: violations, message/byte counters, the worst declared-words
// ratio, and a per-PE hash of the injected schedule (for reproducibility
// checks: same seed ⇒ same ScheduleHash). One Audit is shared by all
// wrapped communicators of a run via Config.Audit; all methods are safe
// for concurrent use.
type Audit struct {
	mu         sync.Mutex
	violations []Violation
	msgs       int64
	bytes      int64
	words      int64
	worstRatio float64
	worstMsg   string
	delays     int64
	gosched    int64
	sched      map[int]uint64 // PE -> schedule-draw hash
}

// record appends a violation.
func (a *Audit) record(v Violation) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.violations = append(a.violations, v)
	a.mu.Unlock()
}

// noteMessage folds one serialized message into the counters.
func (a *Audit) noteMessage(encodedBytes int, words int64, detail string) {
	if a == nil {
		return
	}
	ratio := float64(encodedBytes) / float64(8*max(words, 1))
	a.mu.Lock()
	a.msgs++
	a.bytes += int64(encodedBytes)
	a.words += words
	if ratio > a.worstRatio {
		a.worstRatio = ratio
		a.worstMsg = detail
	}
	a.mu.Unlock()
}

// noteSchedule folds one schedule draw of a PE into its schedule hash.
func (a *Audit) noteSchedule(pe int, draw uint64, kind int64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.sched == nil {
		a.sched = make(map[int]uint64)
	}
	h := a.sched[pe]
	h = h*0x100000001b3 ^ draw
	a.sched[pe] = h
	switch kind {
	case 1:
		a.gosched++
	case 2:
		a.delays++
	}
	a.mu.Unlock()
}

// Violations returns a copy of every recorded violation.
func (a *Audit) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.violations...)
}

// Messages returns the number of serialized messages and their total
// encoded bytes and declared words.
func (a *Audit) Messages() (msgs, bytes, words int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.msgs, a.bytes, a.words
}

// WorstWordsRatio returns the largest observed encoded-bytes /
// (8·declared-words) ratio and the message it came from.
func (a *Audit) WorstWordsRatio() (float64, string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.worstRatio, a.worstMsg
}

// Injected returns how many Gosched calls and sleeps were injected.
func (a *Audit) Injected() (gosched, delays int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gosched, a.delays
}

// ScheduleHash returns the per-PE hash of the injected schedule draws.
// Two runs with the same seed and program must return equal maps.
func (a *Audit) ScheduleHash() map[int]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int]uint64, len(a.sched))
	for pe, h := range a.sched {
		out[pe] = h
	}
	return out
}

// Config tunes the middleware. The zero value injects nothing and
// checks nothing; the torture harness enables everything.
type Config struct {
	// Seed drives every pseudo-random choice. Runs with equal seeds
	// inject identical schedules.
	Seed uint64
	// Shake enables seeded delays/Gosched around Send and Recv.
	Shake bool
	// ForceSerialize round-trips every payload through internal/wire
	// at the Send/Recv boundary and enables the mutation checksum and
	// the words audit. Only valid on backends that move payloads by
	// reference (sim, native); the TCP backend already serializes.
	ForceSerialize bool
	// MaxDelay bounds an injected Shake sleep. 0 means 50µs. Keep it
	// small: the point is perturbed interleavings, not slow tests.
	MaxDelay time.Duration
	// WordsFactor > 0 turns the words audit into a hard check: a
	// message whose encoding exceeds words·8·WordsFactor + WordsSlack
	// bytes is a violation. 0 records the worst ratio without failing.
	WordsFactor float64
	// WordsSlack is the constant byte allowance of the words check
	// (headers, varints, tiny control messages). 0 means 64.
	WordsSlack int
	// OnViolation receives every detected violation. nil panics with
	// the Violation, which the backends' Run surfaces (the native
	// machine re-panics on the caller; the TCP machine returns an
	// error).
	OnViolation func(Violation)
	// Audit, when non-nil, accumulates counters and violations across
	// all PEs wrapped with this config.
	Audit *Audit
}

// state is the per-PE chaos state, shared by a wrapped communicator and
// everything split from it (splits stay on the PE's goroutine).
type state struct {
	cfg Config
	pe  int // world rank at Wrap time
	rng *prng.Rng
}

// Comm is a chaos-wrapped communicator.
type Comm struct {
	inner comm.Communicator
	st    *state
}

var _ comm.Communicator = (*Comm)(nil)

// Wrap returns c wrapped in the chaos middleware. Call it once per PE
// on the communicator the PE program starts from (typically the world
// communicator); split communicators derived from the wrapper are
// wrapped automatically. The injected schedule is deterministic in
// (cfg.Seed, world rank, operation order).
func Wrap(c comm.Communicator, cfg Config) *Comm {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 50 * time.Microsecond
	}
	if cfg.WordsSlack <= 0 {
		cfg.WordsSlack = 64
	}
	pe := c.GlobalRank(c.Rank())
	st := &state{
		cfg: cfg,
		pe:  pe,
		rng: prng.New(cfg.Seed).Fork(uint64(pe)*0x9e3779b97f4a7c15 + 0x6d),
	}
	return &Comm{inner: c, st: st}
}

// Inner returns the wrapped communicator.
func (c *Comm) Inner() comm.Communicator { return c.inner }

// violate reports a violation through the configured sinks.
func (s *state) violate(v Violation) {
	s.cfg.Audit.record(v)
	if s.cfg.OnViolation != nil {
		s.cfg.OnViolation(v)
		return
	}
	panic(v)
}

// shake injects one deterministic schedule perturbation: nothing,
// a Gosched, or a bounded sleep, chosen by the PE's seeded stream.
func (s *state) shake() {
	if !s.cfg.Shake {
		return
	}
	draw := s.rng.Next()
	var kind int64
	switch {
	case draw%16 == 0: // 1/16: sleep up to MaxDelay
		kind = 2
		d := time.Duration(draw>>32) % s.cfg.MaxDelay
		time.Sleep(d)
	case draw%4 == 0: // 3/16: yield the processor
		kind = 1
		runtime.Gosched()
	}
	s.cfg.Audit.noteSchedule(s.pe, draw, kind)
}

// envelope carries a force-serialized payload through an in-process
// backend: the encoded bytes (the receiver decodes its own copy), the
// checksum of the encoding at Send time, and the sender's original
// payload for the delivery-time mutation check. The envelope itself is
// never wire-encoded — it only travels by reference.
type envelope struct {
	bytes []byte
	sum   uint64
	orig  any
	tag   int
	from  int // sender's world rank, for diagnostics
}

// encodePayload runs payload through a fresh wire stream writer (every
// message self-describes; no interning state is shared across messages).
func encodePayload(payload any) ([]byte, error) {
	return wire.NewWriter().AppendPayload(nil, payload)
}

func checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Send perturbs the schedule, serializes the payload when forced
// serialization is on, audits the declared words, and forwards to the
// wrapped communicator. A payload that cannot be encoded is reported
// (Unregistered or Codec) and then forwarded unserialized so that a
// collecting harness can keep running after the diagnosis.
func (c *Comm) Send(to, tag int, payload any, words int64) {
	s := c.st
	s.shake()
	if !s.cfg.ForceSerialize {
		c.inner.Send(to, tag, payload, words)
		return
	}
	enc, err := encodePayload(payload)
	if err != nil {
		s.violate(Violation{Kind: Unregistered, PE: s.pe, Tag: tag,
			Detail: fmt.Sprintf("payload %T cannot be serialized: %v", payload, err)})
		c.inner.Send(to, tag, payload, words)
		return
	}
	s.cfg.Audit.noteMessage(len(enc), words, fmt.Sprintf("%T (tag %#x, %d B, %d words)", payload, tag, len(enc), words))
	if f := s.cfg.WordsFactor; f > 0 {
		if limit := int(float64(8*max(words, 0))*f) + s.cfg.WordsSlack; len(enc) > limit {
			s.violate(Violation{Kind: Words, PE: s.pe, Tag: tag,
				Detail: fmt.Sprintf("payload %T encodes to %d bytes but declares %d words (limit %d bytes at factor %g)",
					payload, len(enc), words, limit, f)})
		}
	}
	//nolint:wirereg // envelope is never wire-encoded: it crosses the in-process backends by reference
	c.inner.Send(to, tag, &envelope{bytes: enc, sum: checksum(enc), orig: payload, tag: tag, from: s.pe}, words)
}

// Recv perturbs the schedule, receives, and — for force-serialized
// envelopes — verifies the sender did not mutate the payload after Send
// and hands the receiver its own decoded copy. A round-trip failure is
// reported and the sender's original payload is delivered instead.
func (c *Comm) Recv(from, tag int) (any, int64) {
	s := c.st
	s.shake()
	payload, words := c.inner.Recv(from, tag)
	env, ok := payload.(*envelope)
	if !ok {
		return payload, words
	}
	// Mutation check: the encoding is deterministic, so re-encoding the
	// sender's original must reproduce the Send-time checksum unless the
	// sender wrote to the payload after Send.
	if re, err := encodePayload(env.orig); err == nil && checksum(re) != env.sum {
		s.violate(Violation{Kind: Mutation, PE: s.pe, Tag: env.tag,
			Detail: fmt.Sprintf("payload %T from PE %d was mutated between Send and delivery", env.orig, env.from)})
	}
	decoded, rest, err := wire.NewReader().DecodePayload(env.bytes)
	if err != nil {
		s.violate(Violation{Kind: Codec, PE: s.pe, Tag: env.tag,
			Detail: fmt.Sprintf("payload %T from PE %d does not decode: %v", env.orig, env.from, err)})
		return env.orig, words
	}
	if len(rest) != 0 {
		s.violate(Violation{Kind: Codec, PE: s.pe, Tag: env.tag,
			Detail: fmt.Sprintf("payload %T from PE %d leaves %d trailing bytes", env.orig, env.from, len(rest))})
		return env.orig, words
	}
	return decoded, words
}

// Size returns the number of members.
func (c *Comm) Size() int { return c.inner.Size() }

// Rank returns this PE's group-relative rank.
func (c *Comm) Rank() int { return c.inner.Rank() }

// GlobalRank translates a group-relative rank to a backend-global rank.
func (c *Comm) GlobalRank(r int) int { return c.inner.GlobalRank(r) }

// SplitEqual splits the wrapped communicator and re-wraps the result.
func (c *Comm) SplitEqual(groups int) (comm.Communicator, int) {
	sub, g := c.inner.SplitEqual(groups)
	return &Comm{inner: sub, st: c.st}, g
}

// SplitStarts splits the wrapped communicator and re-wraps the result.
func (c *Comm) SplitStarts(starts []int) (comm.Communicator, int) {
	sub, g := c.inner.SplitStarts(starts)
	return &Comm{inner: sub, st: c.st}, g
}

// SplitModulo splits the wrapped communicator and re-wraps the result.
func (c *Comm) SplitModulo(m int) (comm.Communicator, int) {
	sub, g := c.inner.SplitModulo(m)
	return &Comm{inner: sub, st: c.st}, g
}

// Subset splits the wrapped communicator and re-wraps the result.
func (c *Comm) Subset(lo, hi int) comm.Communicator {
	return &Comm{inner: c.inner.Subset(lo, hi), st: c.st}
}

// Cost passes through to the wrapped backend: chaos perturbs real
// schedules, never modeled time.
func (c *Comm) Cost() comm.Cost { return c.inner.Cost() }

// ObsRecorder forwards to the wrapped backend's recorder, so tracing
// sees through the middleware.
func (c *Comm) ObsRecorder() *obs.Recorder { return obs.From(c.inner) }
