package chaos

import (
	"reflect"
	"strings"
	"testing"

	"pmsort/internal/comm"
	"pmsort/internal/core"
	"pmsort/internal/native"
	"pmsort/internal/sim"
	"pmsort/internal/workload"
)

// collecting returns a config whose violations accumulate in the
// returned audit instead of panicking.
func collecting(seed uint64, force bool) (Config, *Audit) {
	aud := &Audit{}
	return Config{
		Seed:           seed,
		Shake:          true,
		ForceSerialize: force,
		Audit:          aud,
		OnViolation:    func(Violation) {},
	}, aud
}

// TestPlantedPostSendMutation is the planted-bug self-test of the
// acceptance criteria: a deliberate post-Send payload mutation on the
// native backend must be caught by the checksum-at-Send vs
// checksum-at-delivery comparison. The mutation is sequenced before the
// receive through a second message, so the test is race-free: the bug
// chaos detects here is a contract violation, not a data race.
func TestPlantedPostSendMutation(t *testing.T) {
	cfg, aud := collecting(7, true)
	native.New(2).Run(func(c comm.Communicator) {
		cc := Wrap(c, cfg)
		if cc.Rank() == 0 {
			data := []uint64{1, 2, 3}
			cc.Send(1, 5, data, 3)
			data[0] = 99 // forbidden: the payload was already sent
			cc.Send(1, 6, nil, 1)
		} else {
			cc.Recv(0, 6) // sequence after the mutation
			pl, _ := cc.Recv(0, 5)
			// The receiver must still get the unmutated Send-time bytes.
			if got := pl.([]uint64); got[0] != 1 {
				t.Errorf("receiver saw the mutation: %v", got)
			}
		}
	})
	vs := aud.Violations()
	if len(vs) != 1 || vs[0].Kind != Mutation {
		t.Fatalf("want exactly one Mutation violation, got %v", vs)
	}
	if vs[0].PE != 1 {
		t.Errorf("mutation detected at PE %d, want receiver PE 1", vs[0].PE)
	}
}

// unregisteredPayload is deliberately never wire-registered.
type unregisteredPayload struct {
	X int
}

// TestPlantedUnregisteredType is the second planted-bug self-test: a
// payload type without a wire registration must be caught by forced
// serialization on the native backend — not only when the code first
// runs on TCP.
func TestPlantedUnregisteredType(t *testing.T) {
	cfg, aud := collecting(7, true)
	native.New(2).Run(func(c comm.Communicator) {
		cc := Wrap(c, cfg)
		if cc.Rank() == 0 {
			cc.Send(1, 3, unregisteredPayload{X: 42}, 1)
		} else {
			// The unserializable payload is still delivered (by
			// reference) so collecting harnesses can continue.
			pl, _ := cc.Recv(0, 3)
			if pl.(unregisteredPayload).X != 42 {
				t.Errorf("fallback delivery broken: %v", pl)
			}
		}
	})
	vs := aud.Violations()
	if len(vs) != 1 || vs[0].Kind != Unregistered {
		t.Fatalf("want exactly one Unregistered violation, got %v", vs)
	}
	if !strings.Contains(vs[0].Detail, "unregisteredPayload") {
		t.Errorf("diagnosis does not name the type: %s", vs[0].Detail)
	}
}

// TestPlantedWordsUnderDeclaration: declaring 1 word for a 1000-element
// vector must trip the strict words audit.
func TestPlantedWordsUnderDeclaration(t *testing.T) {
	cfg, aud := collecting(7, true)
	cfg.WordsFactor = 4
	big := make([]uint64, 1000)
	native.New(2).Run(func(c comm.Communicator) {
		cc := Wrap(c, cfg)
		if cc.Rank() == 0 {
			cc.Send(1, 3, big, 1) // lie: 8000 bytes declared as 1 word
			cc.Send(1, 4, big, 1000)
		} else {
			cc.Recv(0, 3)
			cc.Recv(0, 4)
		}
	})
	vs := aud.Violations()
	if len(vs) != 1 || vs[0].Kind != Words {
		t.Fatalf("want exactly one Words violation (honest message must pass), got %v", vs)
	}
	if ratio, _ := aud.WorstWordsRatio(); ratio < 100 {
		t.Errorf("worst ratio %v, want ~1000", ratio)
	}
}

// TestHealthyTrafficIsClean: correct traffic through the full middleware
// (shaking + serialization + strict words audit) must produce zero
// violations and deliver decoded copies, not aliases.
func TestHealthyTrafficIsClean(t *testing.T) {
	cfg, aud := collecting(3, true)
	cfg.WordsFactor = 4
	native.New(3).Run(func(c comm.Communicator) {
		cc := Wrap(c, cfg)
		next, prev := (cc.Rank()+1)%3, (cc.Rank()+2)%3
		sent := []uint64{uint64(cc.Rank()), 17}
		cc.Send(next, 1, sent, 2)
		pl, w := cc.Recv(prev, 1)
		got := pl.([]uint64)
		if w != 2 || got[0] != uint64(prev) || got[1] != 17 {
			t.Errorf("PE %d: got %v (w=%d)", cc.Rank(), got, w)
		}
		// nil payloads round-trip as nil.
		cc.Send(next, 2, nil, 1)
		if pl, _ := cc.Recv(prev, 2); pl != nil {
			t.Errorf("nil payload arrived as %v", pl)
		}
	})
	if vs := aud.Violations(); len(vs) != 0 {
		t.Fatalf("healthy traffic flagged: %v", vs)
	}
	if msgs, bytes, _ := aud.Messages(); msgs != 6 || bytes == 0 {
		t.Errorf("audit counted %d messages, %d bytes; want 6 serialized messages", msgs, bytes)
	}
}

// TestForcedSerializationBreaksAliasing: without chaos the native
// backend passes slices by reference; with ForceSerialize the receiver
// must own an independent copy.
func TestForcedSerializationBreaksAliasing(t *testing.T) {
	cfg, _ := collecting(9, true)
	native.New(2).Run(func(c comm.Communicator) {
		cc := Wrap(c, cfg)
		if cc.Rank() == 0 {
			data := []uint64{10, 20}
			cc.Send(1, 1, data, 2)
			// Wait for the receiver's verdict before touching anything.
			cc.Recv(1, 2)
		} else {
			pl, _ := cc.Recv(0, 1)
			got := pl.([]uint64)
			got[0] = 777 // receiver owns the copy; must not alias the sender
			cc.Send(0, 2, nil, 1)
		}
	})
	// No assertion needed beyond -race cleanliness plus the mutation
	// check not firing: the receiver wrote to its copy only.
}

// runChaosSort runs one chaos-wrapped AMS sort on the given backend and
// returns outputs plus the audit.
func runChaosSort(t *testing.T, backend string, seed uint64) ([][]uint64, *Audit) {
	t.Helper()
	const p, perPE = 4, 200
	cfg, aud := collecting(seed, true)
	cfg.OnViolation = nil // violations are fatal here
	locals := make([][]uint64, p)
	for rank := range locals {
		locals[rank] = workload.Local(workload.DupHeavy, 5, p, perPE, rank)
	}
	outs := make([][]uint64, p)
	run := func(c comm.Communicator) {
		cc := Wrap(c, cfg)
		out, _ := core.AMSSort(cc, append([]uint64(nil), locals[c.Rank()]...),
			func(a, b uint64) bool { return a < b },
			core.Config{Levels: 2, Seed: 11, TieBreak: true})
		outs[c.Rank()] = out
	}
	switch backend {
	case "native":
		native.New(p).Run(run)
	case "sim":
		sim.NewDefault(p).Run(func(pe *sim.PE) { run(sim.World(pe)) })
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	return outs, aud
}

// TestChaosSortTransparent: a full multi-level AMS sort under the
// complete middleware must produce the exact output of an unwrapped run
// on both in-process backends — chaos perturbs schedules, never results.
func TestChaosSortTransparent(t *testing.T) {
	const p, perPE = 4, 200
	locals := make([][]uint64, p)
	for rank := range locals {
		locals[rank] = workload.Local(workload.DupHeavy, 5, p, perPE, rank)
	}
	plain := make([][]uint64, p)
	native.New(p).Run(func(c comm.Communicator) {
		out, _ := core.AMSSort(c, append([]uint64(nil), locals[c.Rank()]...),
			func(a, b uint64) bool { return a < b },
			core.Config{Levels: 2, Seed: 11, TieBreak: true})
		plain[c.Rank()] = out
	})
	for _, backend := range []string{"native", "sim"} {
		outs, aud := runChaosSort(t, backend, 21)
		if !reflect.DeepEqual(outs, plain) {
			t.Errorf("%s: chaos-wrapped output differs from plain run", backend)
		}
		if msgs, _, _ := aud.Messages(); msgs == 0 {
			t.Errorf("%s: no messages serialized — middleware not engaged", backend)
		}
		if g, d := aud.Injected(); g+d == 0 {
			t.Errorf("%s: no schedule perturbations injected", backend)
		}
	}
}

// TestScheduleReproducible: equal seeds must inject the identical
// schedule (per-PE draw-hash equality) and unequal seeds must not.
func TestScheduleReproducible(t *testing.T) {
	_, audA := runChaosSort(t, "native", 42)
	_, audB := runChaosSort(t, "native", 42)
	if !reflect.DeepEqual(audA.ScheduleHash(), audB.ScheduleHash()) {
		t.Fatal("same seed produced different injected schedules")
	}
	_, audC := runChaosSort(t, "native", 43)
	if reflect.DeepEqual(audA.ScheduleHash(), audC.ScheduleHash()) {
		t.Fatal("different seeds produced the identical injected schedule")
	}
}

// TestWrapComposesWithSplits: split communicators derived from a
// wrapped one must stay wrapped (messages inside subgroups are still
// serialized and audited).
func TestWrapComposesWithSplits(t *testing.T) {
	cfg, aud := collecting(5, true)
	native.New(4).Run(func(c comm.Communicator) {
		cc := Wrap(c, cfg)
		sub, g := cc.SplitEqual(2)
		if _, ok := sub.(*Comm); !ok {
			t.Errorf("SplitEqual unwrapped the middleware: %T", sub)
		}
		partner := 1 - sub.Rank()
		sub.Send(partner, 9, []uint64{uint64(g)}, 1)
		pl, _ := sub.Recv(partner, 9)
		if got := pl.([]uint64); got[0] != uint64(g) {
			t.Errorf("group %d: got %v", g, got)
		}
		mod, _ := cc.SplitModulo(2)
		if _, ok := mod.(*Comm); !ok {
			t.Errorf("SplitModulo unwrapped the middleware: %T", mod)
		}
		if sset := mod.Subset(0, mod.Size()); sset.Size() != mod.Size() {
			t.Errorf("Subset size %d != %d", sset.Size(), mod.Size())
		}
	})
	if vs := aud.Violations(); len(vs) != 0 {
		t.Fatalf("split traffic flagged: %v", vs)
	}
	if msgs, _, _ := aud.Messages(); msgs != 4 {
		t.Errorf("audit counted %d messages, want 4 (subgroup sends serialized)", msgs)
	}
}

// TestDefaultViolationPanics: without OnViolation the violation must
// surface as a panic carrying the diagnosis (the native machine
// re-panics it on the caller).
func TestDefaultViolationPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("planted bug did not panic")
		}
		if !strings.Contains(panicText(r), "unregistered") {
			t.Fatalf("panic does not carry the diagnosis: %v", r)
		}
	}()
	native.New(2).Run(func(c comm.Communicator) {
		cc := Wrap(c, Config{Seed: 1, ForceSerialize: true})
		if cc.Rank() == 0 {
			// The panic fires at Send, before anything is forwarded, so
			// rank 1 must not wait for the message (it would never come).
			cc.Send(1, 3, unregisteredPayload{X: 1}, 1)
		}
	})
}

func panicText(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case error:
		return x.Error()
	}
	return ""
}
