package netfault

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"pmsort/internal/comm"
	"pmsort/internal/netcomm"
	"pmsort/internal/prng"
)

// tcpPair returns two ends of a real loopback TCP connection.
func tcpPair(t *testing.T) (a, b *net.TCPConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		c, err := ln.Accept()
		if err == nil {
			b = c.(*net.TCPConn)
		}
		close(done)
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a = c.(*net.TCPConn)
	<-done
	if b == nil {
		t.Fatal("accept failed")
	}
	return a, b
}

// TestDataIntegrityThroughFaults pins the core property: whatever the
// injector does to fragmentation and timing, the byte stream arrives
// intact and in order.
func TestDataIntegrityThroughFaults(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	defer b.Close()
	in := New(42, Profile{
		Jitter:        20 * time.Microsecond,
		MaxWriteChunk: 16,
	})
	fc := in.Wrap(1, a)

	payload := make([]byte, 1<<14)
	rng := prng.New(7)
	for i := range payload {
		payload[i] = byte(rng.Next())
	}
	go func() {
		if _, err := fc.Write(payload); err != nil {
			t.Errorf("write: %v", err)
		}
		fc.CloseWrite()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("stream corrupted: got %d bytes, want %d", len(got), len(payload))
	}
	if s := in.Stats(); s.ShortWrites == 0 {
		t.Fatalf("injector never tore a write: %+v (profile not engaged)", s)
	}
}

// TestScheduleIsSeedDeterministic pins the repro contract: two
// injectors with the same seed tear identical writes into identical
// fragment sequences; a different seed diverges.
func TestScheduleIsSeedDeterministic(t *testing.T) {
	fragments := func(seed uint64) []int {
		var sizes []int
		rec := &recordConn{}
		fc := New(seed, Profile{MaxWriteChunk: 64}).Wrap(3, rec)
		buf := make([]byte, 4096)
		if _, err := fc.Write(buf); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, rec.sizes...)
		return sizes
	}
	a1, a2, b := fragments(99), fragments(99), fragments(100)
	if len(a1) == 0 || len(a1) != len(a2) {
		t.Fatalf("fragment counts differ for one seed: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("fragment %d differs for one seed: %d vs %d", i, a1[i], a2[i])
		}
	}
	same := len(a1) == len(b)
	if same {
		for i := range a1 {
			if a1[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical fragment schedule")
	}
}

// recordConn is a netcomm.Conn that records write sizes and discards
// the data (for schedule-determinism checks without timing).
type recordConn struct {
	sizes []int
}

func (r *recordConn) Read(p []byte) (int, error) { return 0, io.EOF }
func (r *recordConn) Write(p []byte) (int, error) {
	r.sizes = append(r.sizes, len(p))
	return len(p), nil
}
func (r *recordConn) Close() error                     { return nil }
func (r *recordConn) CloseWrite() error                { return nil }
func (r *recordConn) SetLinger(int) error              { return nil }
func (r *recordConn) SetDeadline(time.Time) error      { return nil }
func (r *recordConn) SetWriteDeadline(time.Time) error { return nil }

// TestHangReadsBlocksUntilRelease pins the manual stall trigger: a hung
// injector freezes reads (connection open, writes unaffected) and
// Release resumes them losslessly.
func TestHangReadsBlocksUntilRelease(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	defer b.Close()
	in := New(1, Profile{})
	fc := in.Wrap(0, a)

	in.HangReads()
	if _, err := b.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	readDone := make(chan string, 1)
	go func() {
		buf := make([]byte, 16)
		n, err := fc.Read(buf)
		if err != nil {
			readDone <- "error: " + err.Error()
			return
		}
		readDone <- string(buf[:n])
	}()
	select {
	case got := <-readDone:
		t.Fatalf("read completed while hung: %q", got)
	case <-time.After(100 * time.Millisecond):
	}
	in.Release()
	select {
	case got := <-readDone:
		if got != "hello" {
			t.Fatalf("read after release: %q, want %q", got, "hello")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read still blocked after Release")
	}
}

// TestInjectedReset pins the mid-stream reset: a connection scheduled
// to reset fails its mover with a netfault error and the peer sees a
// hard failure, not a clean EOF.
func TestInjectedReset(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	defer b.Close()
	in := New(5, Profile{ResetChance: 1.0, ResetAfterBytes: 1024})
	fc := in.Wrap(2, a)

	go io.Copy(io.Discard, b) // keep the peer draining until the reset
	buf := make([]byte, 256)
	var werr error
	for i := 0; i < 64 && werr == nil; i++ {
		_, werr = fc.Write(buf)
	}
	if werr == nil {
		t.Fatal("write never failed despite a certain scheduled reset")
	}
	if s := in.Stats(); s.Resets != 1 {
		t.Fatalf("resets fired = %d, want 1", s.Resets)
	}
}

// TestMeshSurvivesMildFaultProfile runs a real 3-rank netcomm exchange
// under latency, jitter, and torn writes: every frame must reassemble
// exactly (the transport never sees fragment boundaries).
func TestMeshSurvivesMildFaultProfile(t *testing.T) {
	const p = 3
	err := netcomm.LocalClusterOpts(p, 30*time.Second,
		func(rank int) netcomm.Options {
			// Tearing only, no sleeps: per-fragment latency on frames
			// this size would dominate the test's wall clock.
			inj := New(777+uint64(rank), Profile{MaxWriteChunk: 173})
			return netcomm.Options{WrapConn: inj.Wrap}
		},
		func(m *netcomm.Machine, rank int) error {
			_, err := m.Run(func(c comm.Communicator) {
				// Ring exchange with growing payloads: exercises both
				// the bufio and the vectored write paths under tearing.
				for round := 0; round < 8; round++ {
					n := 1 << (8 + round)
					buf := make([]uint64, n)
					for i := range buf {
						buf[i] = uint64(rank<<24 | round<<16 | i)
					}
					c.Send((c.Rank()+1)%p, 100+round, buf, int64(n))
					pl, _ := c.Recv((c.Rank()+p-1)%p, 100+round)
					got := pl.([]uint64)
					from := (rank + p - 1) % p
					if len(got) != n {
						panic("short payload")
					}
					for i, v := range got {
						if v != uint64(from<<24|round<<16|i) {
							panic("corrupted payload")
						}
					}
				}
			})
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
}
