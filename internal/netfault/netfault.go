// Package netfault is the transport-level sibling of internal/chaos: a
// seeded, deterministic fault injector that wraps the real TCP
// connections of a netcomm mesh (via netcomm.Options.WrapConn) and
// perturbs the byte streams the way a bad network would — added latency
// and jitter, bandwidth caps, short and torn writes, one-way read
// stalls, and mid-stream connection resets.
//
// Where chaos perturbs the *algorithm* (message order, exchange
// batching) above a correct transport, netfault perturbs the *wire*
// below a correct algorithm: frames arrive fragmented across arbitrary
// boundaries, late, slowly, or never. The sorters must still produce
// byte-identical output (torture's netfault dimension pins this), and
// the liveness layer of netcomm must detect what netfault breaks for
// real (the service-layer fault tests pin that).
//
// Determinism and the repro contract: every fault decision — fragment
// sizes, stall offsets, which connections reset and when — is drawn
// from a prng stream derived from (seed, peer rank, direction) and the
// byte offsets of the connection, never from the wall clock. A failing
// run reports its seed, and `netfault.New(seed, prof)` rebuilds the
// exact schedule, the same one-line contract as chaos and torture.
// (Timing-dependent interleavings of the mesh are, of course, still the
// scheduler's — determinism here means the fault schedule, not the full
// execution.)
package netfault

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pmsort/internal/netcomm"
	"pmsort/internal/prng"
)

// Profile selects which faults the injector schedules and how hard.
// The zero value injects nothing (a transparent wrapper).
type Profile struct {
	// Latency is added to every read and write call; Jitter adds a
	// seeded uniform extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBps, when positive, paces both directions to roughly
	// that many bytes per second per connection.
	BandwidthBps int64
	// MaxWriteChunk, when positive, tears every larger write into
	// seeded fragments of at most that many bytes, written back to
	// back — the receiver sees frames split at arbitrary boundaries.
	MaxWriteChunk int
	// StallEveryBytes, when positive, schedules one-way read stalls: on
	// average every that-many inbound bytes, the reader freezes for
	// StallDuration while the connection stays open — the fault the
	// heartbeat/stall-window machinery exists to detect (keep the
	// duration under the stall window when the run must survive).
	StallEveryBytes int64
	StallDuration   time.Duration
	// ResetChance is the per-connection probability of scheduling a
	// mid-stream reset: after roughly ResetAfterBytes total bytes, the
	// connection is closed with linger 0 (RST). Peers observe a hard
	// transport failure, exactly like a process dying mid-run.
	ResetChance     float64
	ResetAfterBytes int64
}

// Stats counts the faults an injector actually fired (atomics; read
// with Stats()). Drills assert engagement — a fault run whose injector
// never fired proves nothing.
type Stats struct {
	Delays      int64 `json:"delays"`
	ShortWrites int64 `json:"short_writes"`
	Stalls      int64 `json:"stalls"`
	Resets      int64 `json:"resets"`
}

// Injector builds fault-injecting connection wrappers from one seed.
// One injector serves one machine (all its peer connections); Wrap is
// the netcomm.Options.WrapConn hook.
type Injector struct {
	prof Profile
	seed uint64

	mu   sync.Mutex
	gate chan struct{} // non-nil while reads are manually hung

	delays      atomic.Int64
	shortWrites atomic.Int64
	stalls      atomic.Int64
	resets      atomic.Int64
}

// New returns an injector whose entire fault schedule is a pure
// function of seed and prof.
func New(seed uint64, prof Profile) *Injector {
	return &Injector{prof: prof, seed: seed}
}

// String is the one-line repro recipe.
func (in *Injector) String() string {
	return fmt.Sprintf("netfault.New(%#x, %+v)", in.seed, in.prof)
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Delays:      in.delays.Load(),
		ShortWrites: in.shortWrites.Load(),
		Stalls:      in.stalls.Load(),
		Resets:      in.resets.Load(),
	}
}

// HangReads freezes every wrapped connection's reads (one-way: writes
// keep flowing) until Release — the deterministic "peer stops reading /
// this rank stops making progress" trigger the liveness tests use.
// Idempotent.
func (in *Injector) HangReads() {
	in.mu.Lock()
	if in.gate == nil {
		in.gate = make(chan struct{})
	}
	in.mu.Unlock()
}

// Release lifts HangReads. Idempotent.
func (in *Injector) Release() {
	in.mu.Lock()
	if in.gate != nil {
		close(in.gate)
		in.gate = nil
	}
	in.mu.Unlock()
}

func (in *Injector) readGate() chan struct{} {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.gate
}

// Wrap interposes the fault schedule on one peer connection — the
// netcomm.Options.WrapConn hook. The connection's schedule is derived
// from (seed, peer), so a mesh rebuilt with the same seed replays the
// same faults regardless of goroutine interleaving.
func (in *Injector) Wrap(peerRank int, conn netcomm.Conn) netcomm.Conn {
	fc := &faultConn{
		inner:  conn,
		in:     in,
		rrng:   prng.New(in.seed).Fork(uint64(peerRank)*0x9e3779b97f4a7c15 + 0x11),
		wrng:   prng.New(in.seed).Fork(uint64(peerRank)*0x9e3779b97f4a7c15 + 0x22),
		closed: make(chan struct{}),
	}
	if p := in.prof; p.StallEveryBytes > 0 && p.StallDuration > 0 {
		fc.nextStall = fc.stallGap()
	} else {
		fc.nextStall = -1
	}
	if p := in.prof; p.ResetChance > 0 && p.ResetAfterBytes > 0 &&
		fc.wrng.Float64() < p.ResetChance {
		// Scheduled reset: after ResetAfterBytes ± 50%, seeded.
		fc.resetAt.Store(p.ResetAfterBytes/2 + int64(fc.wrng.Uint64n(uint64(p.ResetAfterBytes))))
	} else {
		fc.resetAt.Store(-1)
	}
	return fc
}

// faultConn is one wrapped connection. netcomm drives reads from one
// goroutine and writes from another, so the read-side state (rrng,
// nextStall) and write-side state (wrng) are single-owner; the byte
// totals are atomics because the reset check sums both directions.
type faultConn struct {
	inner netcomm.Conn
	in    *Injector
	rrng  *prng.Rng
	wrng  *prng.Rng

	rbytes    atomic.Int64
	wbytes    atomic.Int64
	resetAt   atomic.Int64 // total byte offset of the scheduled reset (-1: none); checked from both sides
	nextStall int64        // inbound byte offset of the next scheduled stall (-1: none); read side only

	closed    chan struct{}
	closeOnce sync.Once
}

// stallGap draws the inbound-byte distance to the next stall: mean
// StallEveryBytes, seeded uniform in [½·mean, 1½·mean).
func (fc *faultConn) stallGap() int64 {
	mean := fc.in.prof.StallEveryBytes
	return mean/2 + int64(fc.rrng.Uint64n(uint64(mean)))
}

// delay sleeps the profile's latency plus seeded jitter drawn from rng.
func (fc *faultConn) delay(rng *prng.Rng) {
	p := fc.in.prof
	d := p.Latency
	if p.Jitter > 0 {
		d += time.Duration(rng.Uint64n(uint64(p.Jitter)))
	}
	if d > 0 {
		fc.in.delays.Add(1)
		time.Sleep(d)
	}
}

// pace sleeps long enough that n bytes respect the bandwidth cap.
func (fc *faultConn) pace(n int) {
	if bw := fc.in.prof.BandwidthBps; bw > 0 && n > 0 {
		time.Sleep(time.Duration(int64(n) * int64(time.Second) / bw))
	}
}

// checkReset fires the scheduled mid-stream reset once the connection
// has moved enough total bytes: linger-0 close, so the peer sees a hard
// failure, not a graceful EOF.
func (fc *faultConn) checkReset() error {
	at := fc.resetAt.Load()
	if at < 0 || fc.rbytes.Load()+fc.wbytes.Load() < at {
		return nil
	}
	if !fc.resetAt.CompareAndSwap(at, -1) {
		return nil // the other direction fired it first
	}
	fc.in.resets.Add(1)
	_ = fc.inner.SetLinger(0)
	_ = fc.inner.Close()
	return fmt.Errorf("netfault: injected mid-stream reset (%s)", fc.in)
}

func (fc *faultConn) Read(p []byte) (int, error) {
	if g := fc.in.readGate(); g != nil {
		// Manually hung: block until Release or Close. The connection
		// stays open — from the peers' side this rank simply stops
		// making progress.
		select {
		case <-g:
		case <-fc.closed:
		}
	}
	fc.delay(fc.rrng)
	if fc.nextStall >= 0 && fc.rbytes.Load() >= fc.nextStall {
		fc.in.stalls.Add(1)
		time.Sleep(fc.in.prof.StallDuration)
		fc.nextStall = fc.rbytes.Load() + fc.stallGap()
	}
	n, err := fc.inner.Read(p)
	fc.rbytes.Add(int64(n))
	fc.pace(n)
	if err == nil {
		if rerr := fc.checkReset(); rerr != nil {
			return n, rerr
		}
	}
	return n, err
}

func (fc *faultConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		fc.delay(fc.wrng)
		chunk := len(p)
		if max := fc.in.prof.MaxWriteChunk; max > 0 && chunk > max {
			// Torn write: a seeded fragment, never the whole buffer —
			// the peer's reader must reassemble frames across arbitrary
			// boundaries.
			chunk = 1 + fc.wrng.Intn(max)
			fc.in.shortWrites.Add(1)
		}
		n, err := fc.inner.Write(p[:chunk])
		total += n
		fc.wbytes.Add(int64(n))
		fc.pace(n)
		if err != nil {
			return total, err
		}
		if rerr := fc.checkReset(); rerr != nil {
			return total, rerr
		}
		p = p[chunk:]
	}
	return total, nil
}

func (fc *faultConn) Close() error {
	fc.closeOnce.Do(func() { close(fc.closed) })
	return fc.inner.Close()
}

func (fc *faultConn) CloseWrite() error                  { return fc.inner.CloseWrite() }
func (fc *faultConn) SetLinger(sec int) error            { return fc.inner.SetLinger(sec) }
func (fc *faultConn) SetDeadline(t time.Time) error      { return fc.inner.SetDeadline(t) }
func (fc *faultConn) SetWriteDeadline(t time.Time) error { return fc.inner.SetWriteDeadline(t) }
