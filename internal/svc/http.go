package svc

import (
	"encoding/json"
	"fmt"
	"net/http"

	"pmsort/internal/core"
)

// JobRequest is the POST /jobs body. Either a workload spec (kind + n)
// or raw keys; when Keys is non-empty it wins and kind/n are ignored.
// Wait=true makes the request block until the job completes and return
// its final status (including the sorted keys for gathered jobs).
type JobRequest struct {
	Algo     string `json:"algo,omitempty"`     // ams (default), rlm, gv, mp, bitonic, hist, hcq
	Kind     string `json:"kind,omitempty"`     // uniform (default), skewed, dup-heavy, …
	N        int64  `json:"n,omitempty"`        // total elements across ranks
	Seed     uint64 `json:"seed,omitempty"`     // workload generator seed
	Levels   int    `json:"levels,omitempty"`   // recursion levels (default 1)
	TieBreak *bool  `json:"tiebreak,omitempty"` // default true
	Keyed    *bool  `json:"keyed,omitempty"`    // radix fast path, default true

	Keys []uint64 `json:"keys,omitempty"` // raw input; returned sorted
	Wait bool     `json:"wait,omitempty"`

	// TimeoutMS is the job's deadline in milliseconds, measured from
	// dispatch (0 = none). An expired job is aborted mesh-wide, fails
	// with error_kind "deadline", and releases its admission budget
	// immediately.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// JobStatus is the job representation returned by POST /jobs and
// GET /jobs/{id}.
type JobStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"` // queued | running | done | failed
	Error  string `json:"error,omitempty"`

	// ErrorKind classifies a failure: a transport error kind
	// ("stalled", "reset", "hangup", "retired", "aborted") or
	// "deadline"; empty for validation and sort errors. ErrorRank is
	// the rank the failure is attributed to (omitted when none), and
	// Attempts counts dispatches (>1 means the job was retried).
	ErrorKind string `json:"error_kind,omitempty"`
	ErrorRank int64  `json:"error_rank,omitempty"`
	Attempts  int    `json:"attempts,omitempty"`

	Algo string `json:"algo"`
	Kind string `json:"kind,omitempty"`
	N    int64  `json:"n"`

	Count      int64            `json:"count,omitempty"`
	First      uint64           `json:"first,omitempty"`
	Last       uint64           `json:"last,omitempty"`
	Sum        uint64           `json:"sum,omitempty"` // order-independent multiset hash
	Keys       []uint64         `json:"keys,omitempty"`
	PhaseNS    map[string]int64 `json:"phase_ns,omitempty"`
	TotalNS    int64            `json:"total_ns,omitempty"`
	WallNS     int64            `json:"wall_ns,omitempty"`
	BytesMoved int64            `json:"bytes_moved,omitempty"`
}

// maxBody bounds a POST /jobs body: 128 Mi keys of ~20 JSON characters
// would blow the memory budget long before this does, but it keeps a
// stray client from buffering unbounded garbage.
const maxBody = 1 << 30

func (co *coordinator) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", co.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", co.handleGet)
	mux.HandleFunc("GET /jobs", co.handleList)
	mux.HandleFunc("GET /metrics", co.handleMetrics)
	mux.HandleFunc("POST /shutdown", co.handleShutdown)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (co *coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad job request: %v", err)
		return
	}
	j, code, msg := co.submit(req)
	if code != 0 {
		httpError(w, code, "%s", msg)
		return
	}
	if req.Wait {
		select {
		case <-j.done:
		case <-r.Context().Done():
			// Client gave up; the job keeps running — report its current
			// state and let them poll GET /jobs/{id}.
		}
		writeJSON(w, http.StatusOK, co.statusOf(j))
		return
	}
	writeJSON(w, http.StatusAccepted, co.statusOf(j))
}

func (co *coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	co.mu.Lock()
	j := co.jobs[r.PathValue("id")]
	co.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, co.statusOf(j))
}

func (co *coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	ids := co.sortedJobIDs()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		co.mu.Lock()
		j := co.jobs[id]
		co.mu.Unlock()
		st := co.statusOf(j)
		st.Keys = nil // the listing stays light even with gathered jobs
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (co *coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, co.snapshotMetrics())
}

func (co *coordinator) handleShutdown(w http.ResponseWriter, r *http.Request) {
	co.requestStop()
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "draining"})
}

// statusOf renders a job's current state.
func (co *coordinator) statusOf(j *job) JobStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	st := JobStatus{
		ID:       j.id,
		Status:   j.state,
		Error:    j.errMsg,
		Algo:     j.desc.Algo,
		N:        j.desc.NTotal,
		WallNS:   j.wallNS,
		Attempts: j.attempts,
	}
	if j.errKind != "" {
		st.ErrorKind = j.errKind
		if j.errPeer >= 0 {
			st.ErrorRank = j.errPeer
		}
	}
	if !j.desc.Raw {
		st.Kind = j.desc.Kind
	}
	if j.res != nil {
		st.Count = j.res.Count
		st.First = j.res.First
		st.Last = j.res.Last
		st.Sum = j.res.Sum
		st.Keys = j.res.Keys
		st.TotalNS = j.res.TotalNS
		st.BytesMoved = j.res.BytesMoved
		st.PhaseNS = make(map[string]int64, core.NumPhases)
		for ph := core.Phase(0); ph < core.NumPhases; ph++ {
			st.PhaseNS[ph.String()] = j.res.PhaseNS[ph]
		}
	}
	return st
}
