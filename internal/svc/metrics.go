package svc

import (
	"time"

	"pmsort/internal/core"
)

// metrics is the coordinator's service-level accounting, guarded by
// co.mu. Job counts, sorted elements, exchanged bytes, and per-phase
// time come from completed jobs; the transport counters under "net"
// come from the machine's obs recorder (atomic, read without the lock).
type metrics struct {
	submitted int64
	completed int64
	failed    int64
	rejected  int64
	retried   int64 // transport-failed attempts parked for a retry
	aborted   int64 // mesh-wide job aborts (deadline or failure unwind)
	expired   int64 // jobs that hit their deadline

	elements   int64
	bytesMoved int64
	totalNS    int64
	phaseNS    [core.NumPhases]int64

	wallCount int64
	wallSumNS int64
	wallMinNS int64
	wallMaxNS int64
}

func (m *metrics) observeWall(ns int64) {
	if m.wallCount == 0 || ns < m.wallMinNS {
		m.wallMinNS = ns
	}
	if ns > m.wallMaxNS {
		m.wallMaxNS = ns
	}
	m.wallCount++
	m.wallSumNS += ns
}

// JobCounts is the jobs section of a metrics snapshot.
type JobCounts struct {
	Submitted int64 `json:"submitted"`
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	Retried   int64 `json:"retried"`
	Aborted   int64 `json:"aborted"`
	Expired   int64 `json:"expired"`
}

// PeerMetrics is one peer's liveness snapshot (netcomm meshes with
// heartbeats only).
type PeerMetrics struct {
	Rank        int   `json:"rank"`
	RTTNS       int64 `json:"rtt_ns"`        // last heartbeat round-trip
	SincePongNS int64 `json:"since_pong_ns"` // age of the last pong (-1: heartbeats off)
	Stalled     bool  `json:"stalled"`
}

// WallStats summarizes completed-job wall time.
type WallStats struct {
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	MinNS int64 `json:"min_ns"`
	MaxNS int64 `json:"max_ns"`
}

// Metrics is the GET /metrics response.
type Metrics struct {
	P        int   `json:"p"`
	UptimeNS int64 `json:"uptime_ns"`

	// State is the coordinator's explicit state machine: "serving",
	// "degraded" (mesh trouble; new submissions 503), or "draining"
	// (shutdown in progress). Degraded carries the cause and
	// DegradedKind its transport kind — "stalled" clears on recovery.
	State        string `json:"state"`
	Degraded     string `json:"degraded,omitempty"`
	DegradedKind string `json:"degraded_kind,omitempty"`

	Jobs JobCounts `json:"jobs"`

	// Peers is the per-peer heartbeat view (netcomm meshes only).
	Peers []PeerMetrics `json:"peers,omitempty"`

	ElementsSorted int64            `json:"elements_sorted"`
	BytesMoved     int64            `json:"bytes_moved"`
	SortNS         int64            `json:"sort_ns"`
	PhaseNS        map[string]int64 `json:"phase_ns"`
	JobWallNS      WallStats        `json:"job_wall_ns"`

	// Net is rank 0's transport counter snapshot (frames, writev calls,
	// mailbox depth/wait); present only when the machine runs with
	// tracing enabled.
	Net map[string]int64 `json:"net,omitempty"`
}

func (co *coordinator) snapshotMetrics() Metrics {
	co.mu.Lock()
	out := Metrics{
		P:        co.world.Size(),
		UptimeNS: time.Since(co.start).Nanoseconds(),
		Jobs: JobCounts{
			Submitted: co.met.submitted,
			Queued:    int64(len(co.queue) + co.retryPending),
			Running:   int64(co.running),
			Completed: co.met.completed,
			Failed:    co.met.failed,
			Rejected:  co.met.rejected,
			Retried:   co.met.retried,
			Aborted:   co.met.aborted,
			Expired:   co.met.expired,
		},
		ElementsSorted: co.met.elements,
		BytesMoved:     co.met.bytesMoved,
		SortNS:         co.met.totalNS,
		PhaseNS:        make(map[string]int64, core.NumPhases),
		JobWallNS: WallStats{
			Count: co.met.wallCount,
			SumNS: co.met.wallSumNS,
			MinNS: co.met.wallMinNS,
			MaxNS: co.met.wallMaxNS,
		},
	}
	for ph := core.Phase(0); ph < core.NumPhases; ph++ {
		out.PhaseNS[ph.String()] = co.met.phaseNS[ph]
	}
	switch {
	case co.draining:
		out.State = "draining"
	case co.degraded != nil:
		out.State = "degraded"
	default:
		out.State = "serving"
	}
	if co.degraded != nil {
		out.Degraded = co.degraded.Error()
		out.DegradedKind = co.degradedKind
	}
	co.mu.Unlock()

	if co.mesh != nil {
		h := co.mesh.Health()
		out.Peers = make([]PeerMetrics, 0, len(h.Peers))
		for _, ph := range h.Peers {
			out.Peers = append(out.Peers, PeerMetrics{
				Rank:        ph.Rank,
				RTTNS:       ph.RTTNS,
				SincePongNS: ph.SincePongNS,
				Stalled:     ph.Stalled,
			})
		}
	}

	// Counter cells are atomic; reading them off the HTTP goroutine while
	// jobs run is safe (and jobs never record spans — their tag-offset
	// views hide the recorder).
	if co.rec != nil {
		snap := co.rec.Snapshot()
		if len(snap.Counters) > 0 {
			out.Net = make(map[string]int64, len(snap.Counters))
			for _, c := range snap.Counters {
				out.Net[c.Name] = c.Value
			}
		}
	}
	return out
}
