package svc

import (
	"time"

	"pmsort/internal/core"
)

// metrics is the coordinator's service-level accounting, guarded by
// co.mu. Job counts, sorted elements, exchanged bytes, and per-phase
// time come from completed jobs; the transport counters under "net"
// come from the machine's obs recorder (atomic, read without the lock).
type metrics struct {
	submitted int64
	completed int64
	failed    int64
	rejected  int64

	elements   int64
	bytesMoved int64
	totalNS    int64
	phaseNS    [core.NumPhases]int64

	wallCount int64
	wallSumNS int64
	wallMinNS int64
	wallMaxNS int64
}

func (m *metrics) observeWall(ns int64) {
	if m.wallCount == 0 || ns < m.wallMinNS {
		m.wallMinNS = ns
	}
	if ns > m.wallMaxNS {
		m.wallMaxNS = ns
	}
	m.wallCount++
	m.wallSumNS += ns
}

// JobCounts is the jobs section of a metrics snapshot.
type JobCounts struct {
	Submitted int64 `json:"submitted"`
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
}

// WallStats summarizes completed-job wall time.
type WallStats struct {
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	MinNS int64 `json:"min_ns"`
	MaxNS int64 `json:"max_ns"`
}

// Metrics is the GET /metrics response.
type Metrics struct {
	P        int    `json:"p"`
	UptimeNS int64  `json:"uptime_ns"`
	Degraded string `json:"degraded,omitempty"`

	Jobs JobCounts `json:"jobs"`

	ElementsSorted int64            `json:"elements_sorted"`
	BytesMoved     int64            `json:"bytes_moved"`
	SortNS         int64            `json:"sort_ns"`
	PhaseNS        map[string]int64 `json:"phase_ns"`
	JobWallNS      WallStats        `json:"job_wall_ns"`

	// Net is rank 0's transport counter snapshot (frames, writev calls,
	// mailbox depth/wait); present only when the machine runs with
	// tracing enabled.
	Net map[string]int64 `json:"net,omitempty"`
}

func (co *coordinator) snapshotMetrics() Metrics {
	co.mu.Lock()
	out := Metrics{
		P:        co.world.Size(),
		UptimeNS: time.Since(co.start).Nanoseconds(),
		Jobs: JobCounts{
			Submitted: co.met.submitted,
			Queued:    int64(len(co.queue)),
			Running:   int64(co.running),
			Completed: co.met.completed,
			Failed:    co.met.failed,
			Rejected:  co.met.rejected,
		},
		ElementsSorted: co.met.elements,
		BytesMoved:     co.met.bytesMoved,
		SortNS:         co.met.totalNS,
		PhaseNS:        make(map[string]int64, core.NumPhases),
		JobWallNS: WallStats{
			Count: co.met.wallCount,
			SumNS: co.met.wallSumNS,
			MinNS: co.met.wallMinNS,
			MaxNS: co.met.wallMaxNS,
		},
	}
	for ph := core.Phase(0); ph < core.NumPhases; ph++ {
		out.PhaseNS[ph.String()] = co.met.phaseNS[ph]
	}
	if co.degraded != nil {
		out.Degraded = co.degraded.Error()
	}
	co.mu.Unlock()

	// Counter cells are atomic; reading them off the HTTP goroutine while
	// jobs run is safe (and jobs never record spans — their tag-offset
	// views hide the recorder).
	if co.rec != nil {
		snap := co.rec.Snapshot()
		if len(snap.Counters) > 0 {
			out.Net = make(map[string]int64, len(snap.Counters))
			for _, c := range snap.Counters {
				out.Net[c.Name] = c.Value
			}
		}
	}
	return out
}
