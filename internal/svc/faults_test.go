package svc

import (
	"context"
	"net/http"
	"runtime"
	"testing"
	"time"

	"pmsort/internal/comm"
	"pmsort/internal/netcomm"
	"pmsort/internal/netfault"
)

// faultSeed parameterizes the fault scenarios below; the whole scenario
// is replayable from it (the injector logs its one-line repro).
const faultSeed = 0xf001

// startLocalOpts is startLocal with per-rank transport options — the
// bring-up for liveness scenarios, where ranks need heartbeats, stall
// windows, and netfault wrappers configured before the mesh connects.
func startLocalOpts(t *testing.T, p int, opt Options, optFor func(rank int) netcomm.Options) (string, func() error) {
	t.Helper()
	urlCh := make(chan string, 1)
	opt.Ready = func(u string) { urlCh <- u }
	errCh := make(chan error, 1)
	go func() {
		errCh <- netcomm.LocalClusterOpts(p, 0, optFor, func(m *netcomm.Machine, rank int) error {
			var serveErr error
			_, runErr := m.Run(func(c comm.Communicator) {
				serveErr = Serve(context.Background(), c, opt)
			})
			if runErr != nil {
				return runErr
			}
			return serveErr
		})
	}()
	select {
	case u := <-urlCh:
		return u, func() error { return <-errCh }
	case err := <-errCh:
		t.Fatalf("cluster died before the service came up: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatalf("service did not come up")
	}
	return "", nil
}

// pollJob polls GET /jobs/{id} until pred holds or the deadline
// passes, returning the last status seen.
func pollJob(t *testing.T, url, id string, timeout time.Duration, pred func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getJob(t, url, id)
		if pred(st) || time.Now().After(deadline) {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// pollMetricsState polls GET /metrics until the coordinator reports
// the wanted state.
func pollMetricsState(t *testing.T, url, want string, timeout time.Duration) Metrics {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		met := getMetrics(t, url)
		if met.State == want || time.Now().After(deadline) {
			return met
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStalledPeerFailsJobTypedAndRecovers is the issue's acceptance
// scenario end to end: one rank stops reading (connection open), the
// in-flight job fails typed with kind "stalled" attributed to that
// rank within the stall window, its admission budget is reclaimed, the
// coordinator keeps serving (degraded, 503 for new work), and when the
// peer recovers the service clears the degradation and sorts again —
// leaking no goroutines.
func TestStalledPeerFailsJobTypedAndRecovers(t *testing.T) {
	const (
		p        = 3
		interval = 20 * time.Millisecond
		window   = 250 * time.Millisecond
	)
	inj := netfault.New(faultSeed, netfault.Profile{})
	t.Logf("repro: %s, HangReads on rank %d", inj, p-1)

	baseline := runtime.NumGoroutine()
	url, wait := startLocalOpts(t, p,
		Options{MaxConcurrent: 2, RetryBudget: -1}, // no retries: the typed failure must surface
		func(rank int) netcomm.Options {
			opt := netcomm.Options{HeartbeatInterval: interval, StallWindow: window}
			if rank == p-1 {
				opt.WrapConn = inj.Wrap
			}
			return opt
		})

	// Warm the mesh: a healthy job must succeed first.
	code, st, body := postJob(t, url, JobRequest{N: 1 << 12, Wait: true})
	if code != http.StatusOK || st.Status != StatusDone {
		t.Fatalf("warm-up job: code %d, status %+v (%s)", code, st, body)
	}

	inj.HangReads()
	start := time.Now()
	code, st, body = postJob(t, url, JobRequest{N: 1 << 12})
	if code != http.StatusAccepted {
		t.Fatalf("submit during (undetected) stall: code %d (%s)", code, body)
	}
	st = pollJob(t, url, st.ID, 15*time.Second, func(s JobStatus) bool { return s.Status == StatusFailed })
	elapsed := time.Since(start)
	if st.Status != StatusFailed {
		t.Fatalf("job on the stalled mesh ended as %q, want failed", st.Status)
	}
	if st.ErrorKind != "stalled" {
		t.Fatalf("job failed with kind %q (%s), want stalled", st.ErrorKind, st.Error)
	}
	if st.ErrorRank != int64(p-1) {
		t.Fatalf("failure attributed to rank %d, want %d", st.ErrorRank, p-1)
	}
	if elapsed > window+10*time.Second {
		t.Fatalf("stall took %v to surface (window %v)", elapsed, window)
	}

	// Degraded but alive: metrics must say so explicitly, name the
	// stalled peer, show the budget reclaimed, and new work must 503.
	met := pollMetricsState(t, url, "degraded", 5*time.Second)
	if met.State != "degraded" || met.DegradedKind != "stalled" {
		t.Fatalf("metrics state %q kind %q, want degraded/stalled", met.State, met.DegradedKind)
	}
	if met.Jobs.Running != 0 {
		t.Fatalf("%d jobs still hold budget after the typed failure", met.Jobs.Running)
	}
	found := false
	for _, pm := range met.Peers {
		if pm.Rank == p-1 && pm.Stalled {
			found = true
		}
	}
	if !found {
		t.Fatalf("metrics peers do not flag rank %d as stalled: %+v", p-1, met.Peers)
	}
	if code, _, _ := postJob(t, url, JobRequest{N: 1 << 10}); code != http.StatusServiceUnavailable {
		t.Fatalf("submission on a degraded mesh returned %d, want 503", code)
	}

	// Recovery: the peer resumes reading, the degradation clears, and
	// the service sorts again.
	inj.Release()
	met = pollMetricsState(t, url, "serving", 15*time.Second)
	if met.State != "serving" {
		t.Fatalf("service never recovered after the stall lifted: state %q", met.State)
	}
	code, st, body = postJob(t, url, JobRequest{N: 1 << 12, Wait: true})
	if code != http.StatusOK || st.Status != StatusDone {
		t.Fatalf("post-recovery job: code %d, status %+v (%s)", code, st, body)
	}

	shutdown(t, url, wait)

	// No goroutine leak: everything the cluster and the failed job
	// spawned must be gone (HTTP client idle conns released first).
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d baseline\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestJobDeadlineAbortsMeshWide pins the deadline path: a job wedged
// behind an unresponsive rank (liveness off, so nothing else would
// unwind it) expires, is aborted mesh-wide via tag retirement, reports
// kind "deadline", releases its budget — and the service stays healthy
// for the next job.
func TestJobDeadlineAbortsMeshWide(t *testing.T) {
	const p = 3
	inj := netfault.New(faultSeed+1, netfault.Profile{})
	url, wait := startLocalOpts(t, p, Options{RetryBudget: -1},
		func(rank int) netcomm.Options {
			if rank == p-1 {
				return netcomm.Options{WrapConn: inj.Wrap}
			}
			return netcomm.Options{}
		})

	code, st, body := postJob(t, url, JobRequest{N: 1 << 12, Wait: true})
	if code != http.StatusOK || st.Status != StatusDone {
		t.Fatalf("warm-up job: code %d (%s)", code, body)
	}

	inj.HangReads()
	code, st, _ = postJob(t, url, JobRequest{N: 1 << 12, TimeoutMS: 200})
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	st = pollJob(t, url, st.ID, 15*time.Second, func(s JobStatus) bool { return s.Status == StatusFailed })
	if st.Status != StatusFailed || st.ErrorKind != "deadline" {
		t.Fatalf("expired job: status %q kind %q (%s), want failed/deadline", st.Status, st.ErrorKind, st.Error)
	}

	met := getMetrics(t, url)
	if met.Jobs.Expired != 1 || met.Jobs.Aborted != 1 {
		t.Fatalf("expired=%d aborted=%d, want 1/1", met.Jobs.Expired, met.Jobs.Aborted)
	}
	if met.Jobs.Running != 0 {
		t.Fatalf("expired job still holds budget: running=%d", met.Jobs.Running)
	}
	if met.State != "serving" {
		t.Fatalf("a deadline must not degrade the service: state %q (%s)", met.State, met.Degraded)
	}

	// The wedged rank comes back, drains its stale descriptors (the
	// retired epoch's runner unwinds via the opAbort), and the mesh
	// serves the next job.
	inj.Release()
	code, st, body = postJob(t, url, JobRequest{N: 1 << 12, Wait: true})
	if code != http.StatusOK || st.Status != StatusDone {
		t.Fatalf("post-expiry job: code %d, status %+v (%s)", code, st, body)
	}
	shutdown(t, url, wait)
}

// TestStallRetrySucceedsAfterRecovery pins the retry/backoff loop: a
// job whose first attempt dies on a stalled peer is parked, the
// scheduler holds dispatch while the mesh is degraded, and when the
// peer recovers the retry runs and the job completes — the client
// sees one job that simply took longer, with attempts > 1.
func TestStallRetrySucceedsAfterRecovery(t *testing.T) {
	const (
		p        = 3
		interval = 20 * time.Millisecond
		window   = 200 * time.Millisecond
	)
	inj := netfault.New(faultSeed+2, netfault.Profile{})
	url, wait := startLocalOpts(t, p,
		Options{RetryBudget: 3, RetryBackoff: 50 * time.Millisecond},
		func(rank int) netcomm.Options {
			opt := netcomm.Options{HeartbeatInterval: interval, StallWindow: window}
			if rank == p-1 {
				opt.WrapConn = inj.Wrap
			}
			return opt
		})

	code, st, body := postJob(t, url, JobRequest{N: 1 << 12, Wait: true})
	if code != http.StatusOK || st.Status != StatusDone {
		t.Fatalf("warm-up job: code %d (%s)", code, body)
	}

	inj.HangReads()
	code, st, _ = postJob(t, url, JobRequest{N: 1 << 12})
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	// First attempt must fail and park the job as queued again.
	st = pollJob(t, url, st.ID, 15*time.Second, func(s JobStatus) bool {
		return s.Status == StatusQueued && s.Attempts >= 1
	})
	if st.Status != StatusQueued {
		t.Fatalf("job not parked for retry: %+v", st)
	}

	inj.Release()
	st = pollJob(t, url, st.ID, 20*time.Second, func(s JobStatus) bool {
		return s.Status == StatusDone || s.Status == StatusFailed
	})
	if st.Status != StatusDone {
		t.Fatalf("retried job ended %q (kind %q: %s)", st.Status, st.ErrorKind, st.Error)
	}
	if st.Attempts < 2 {
		t.Fatalf("job completed with %d attempts, want a retry", st.Attempts)
	}
	if met := getMetrics(t, url); met.Jobs.Retried < 1 {
		t.Fatalf("metrics retried=%d, want >= 1", met.Jobs.Retried)
	}
	shutdown(t, url, wait)
}
