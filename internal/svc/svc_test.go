package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"pmsort/internal/comm"
	"pmsort/internal/netcomm"
)

// startLocal brings up a p-rank loopback service in-process and returns
// its base URL plus a wait func that blocks until every rank's Serve has
// returned and reports the first error. hook, when non-nil, sees each
// rank's machine before serving starts (failure-injection handle).
func startLocal(t *testing.T, p int, opt Options, hook func(m *netcomm.Machine, rank int)) (string, func() error) {
	t.Helper()
	urlCh := make(chan string, 1)
	opt.Ready = func(u string) { urlCh <- u }
	errCh := make(chan error, 1)
	go func() {
		errCh <- netcomm.LocalCluster(p, 0, func(m *netcomm.Machine, rank int) error {
			if hook != nil {
				hook(m, rank)
			}
			var serveErr error
			_, runErr := m.Run(func(c comm.Communicator) {
				serveErr = Serve(context.Background(), c, opt)
			})
			if runErr != nil {
				return runErr
			}
			return serveErr
		})
	}()
	select {
	case u := <-urlCh:
		return u, func() error { return <-errCh }
	case err := <-errCh:
		t.Fatalf("cluster died before the service came up: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatalf("service did not come up")
	}
	return "", nil
}

func postJob(t *testing.T, url string, req JobRequest) (int, JobStatus, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decoding job status: %v (%s)", err, raw)
		}
	}
	return resp.StatusCode, st, strings.TrimSpace(string(raw))
}

func getJob(t *testing.T, url, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding job %s: %v", id, err)
	}
	return st
}

func getMetrics(t *testing.T, url string) Metrics {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var met Metrics
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	return met
}

func shutdown(t *testing.T, url string, wait func() error) {
	t.Helper()
	resp, err := http.Post(url+"/shutdown", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /shutdown: %v", err)
	}
	resp.Body.Close()
	if err := wait(); err != nil {
		t.Fatalf("service exited with: %v", err)
	}
}

// TestConcurrentJobsByteIdenticalToSequential pins the tag/epoch
// namespace contract: N jobs racing on one 4-rank mesh return output
// byte-identical to the same jobs run one at a time.
func TestConcurrentJobsByteIdenticalToSequential(t *testing.T) {
	url, wait := startLocal(t, 4, Options{MaxConcurrent: 8}, nil)

	kinds := []string{"uniform", "dup-heavy", "sorted"}
	algos := []string{"ams", "rlm", "gv"}
	const jobs = 12
	req := func(i int) JobRequest {
		return JobRequest{
			Algo: algos[i%len(algos)],
			Kind: kinds[i%len(kinds)],
			N:    2048,
			Seed: 100 + uint64(i),
			Wait: true,
		}
	}

	concurrent := make([][]uint64, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, st, body := postJob(t, url, req(i))
			if code != http.StatusOK || st.Status != StatusDone {
				t.Errorf("concurrent job %d: HTTP %d %q (%s)", i, code, st.Status, body)
				return
			}
			concurrent[i] = st.Keys
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i := 0; i < jobs; i++ {
		code, st, body := postJob(t, url, req(i))
		if code != http.StatusOK || st.Status != StatusDone {
			t.Fatalf("sequential job %d: HTTP %d %q (%s)", i, code, st.Status, body)
		}
		if !slices.Equal(concurrent[i], st.Keys) {
			t.Fatalf("job %d: concurrent output differs from sequential (%d vs %d keys)",
				i, len(concurrent[i]), len(st.Keys))
		}
		if len(st.Keys) == 0 || !slices.IsSorted(st.Keys) {
			t.Fatalf("job %d: output missing or unsorted", i)
		}
	}

	met := getMetrics(t, url)
	if met.Jobs.Completed != 2*jobs || met.Jobs.Failed != 0 {
		t.Fatalf("metrics: completed=%d failed=%d, want %d/0", met.Jobs.Completed, met.Jobs.Failed, 2*jobs)
	}
	shutdown(t, url, wait)
}

// TestRawKeysRoundTrip submits explicit keys and expects exactly the
// sorted multiset back.
func TestRawKeysRoundTrip(t *testing.T) {
	url, wait := startLocal(t, 4, Options{}, nil)
	keys := []uint64{9, 3, 3, 18446744073709551615, 0, 7, 5, 5, 5, 1 << 53}
	code, st, body := postJob(t, url, JobRequest{Keys: keys, Wait: true})
	if code != http.StatusOK || st.Status != StatusDone {
		t.Fatalf("raw job: HTTP %d %q (%s)", code, st.Status, body)
	}
	want := slices.Clone(keys)
	slices.Sort(want)
	if !slices.Equal(st.Keys, want) {
		t.Fatalf("raw job returned %v, want %v", st.Keys, want)
	}
	shutdown(t, url, wait)
}

// TestAdmissionControl pins the admission behavior: a job beyond the
// memory budget is rejected outright (413), a burst beyond the
// concurrency limit plus queue depth gets 429s, and every accepted job
// still completes correctly — admission pressure never corrupts output.
func TestAdmissionControl(t *testing.T) {
	url, wait := startLocal(t, 4, Options{
		MaxConcurrent: 1,
		MaxQueue:      2,
		MemBudget:     16 << 20, // fits one 2^19-element job (est ≈ 3 MiB), not a 40M one
	}, nil)

	// est(40M elements on 4 ranks) = 24·(10M+1) ≈ 240 MB >> 16 MiB.
	code, _, body := postJob(t, url, JobRequest{N: 40_000_000})
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget job: HTTP %d (%s), want 413", code, body)
	}

	// Fire a burst; with one slot and two queue places, the rest must
	// bounce with 429 — never hang, never corrupt.
	const burst = 8
	type outcome struct {
		code int
		id   string
	}
	outcomes := make([]outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, st, _ := postJob(t, url, JobRequest{N: 1 << 19, Seed: uint64(i)})
			outcomes[i] = outcome{code, st.ID}
		}(i)
	}
	wg.Wait()

	accepted, rejected := 0, 0
	for i, o := range outcomes {
		switch o.code {
		case http.StatusAccepted:
			accepted++
			deadline := time.Now().Add(60 * time.Second)
			for {
				st := getJob(t, url, o.id)
				if st.Status == StatusDone {
					if st.Count != st.N || st.Count != 1<<19 {
						t.Fatalf("job %s: count %d, want %d", o.id, st.Count, 1<<19)
					}
					break
				}
				if st.Status == StatusFailed {
					t.Fatalf("admitted job %s failed: %s", o.id, st.Error)
				}
				if time.Now().After(deadline) {
					t.Fatalf("job %s stuck in %q", o.id, st.Status)
				}
				time.Sleep(10 * time.Millisecond)
			}
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("burst job %d: unexpected HTTP %d", i, o.code)
		}
	}
	if rejected == 0 {
		t.Fatalf("burst of %d against 1 slot + 2 queue places produced no 429", burst)
	}
	met := getMetrics(t, url)
	if met.Jobs.Completed != int64(accepted) {
		t.Fatalf("metrics completed=%d, want %d", met.Jobs.Completed, accepted)
	}
	if met.Jobs.Rejected != int64(rejected)+1 { // +1 for the 413
		t.Fatalf("metrics rejected=%d, want %d", met.Jobs.Rejected, rejected+1)
	}
	shutdown(t, url, wait)
}

// TestDeadPeerFailsJobsNotServer kills one rank mid-flight and expects
// in-flight jobs to fail with an error while the coordinator keeps
// serving status, metrics, and (503) admission answers.
func TestDeadPeerFailsJobsNotServer(t *testing.T) {
	var mu sync.Mutex
	machines := make(map[int]*netcomm.Machine)
	url, wait := startLocal(t, 4, Options{MaxConcurrent: 8}, func(m *netcomm.Machine, rank int) {
		mu.Lock()
		machines[rank] = m
		mu.Unlock()
	})

	// Slow jobs so the kill lands mid-flight.
	var ids []string
	for i := 0; i < 4; i++ {
		code, st, body := postJob(t, url, JobRequest{N: 1 << 21, Seed: uint64(i)})
		if code != http.StatusAccepted {
			t.Fatalf("job %d: HTTP %d (%s)", i, code, body)
		}
		ids = append(ids, st.ID)
	}

	mu.Lock()
	machines[3].Abort()
	mu.Unlock()

	// Every in-flight job must resolve — done if it beat the abort,
	// failed otherwise — and the coordinator must stay responsive.
	deadline := time.Now().Add(60 * time.Second)
	failed := 0
	for _, id := range ids {
		for {
			st := getJob(t, url, id)
			if st.Status == StatusDone {
				break
			}
			if st.Status == StatusFailed {
				failed++
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still %q after the peer died", id, st.Status)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if failed == 0 {
		t.Fatalf("no job observed the dead peer (all %d completed before the abort)", len(ids))
	}

	// The mesh is degraded: metrics still answer and say so, and new
	// submissions bounce with 503 instead of wedging.
	met := getMetrics(t, url)
	if met.Degraded == "" {
		t.Fatalf("metrics do not report the degraded mesh")
	}
	if met.Jobs.Failed != int64(failed) {
		t.Fatalf("metrics failed=%d, want %d", met.Jobs.Failed, failed)
	}
	code, _, body := postJob(t, url, JobRequest{N: 1024})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-failure submission: HTTP %d (%s), want 503", code, body)
	}

	// Shutdown still works; the cluster as a whole reports the transport
	// failure (the aborted rank and the poisoned workers), not a hang.
	resp, err := http.Post(url+"/shutdown", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /shutdown: %v", err)
	}
	resp.Body.Close()
	if err := wait(); err == nil {
		t.Fatalf("cluster exited clean despite an aborted rank")
	}
}

// TestEstJobBytes pins the admission estimate to the recvBound-derived
// formula.
func TestEstJobBytes(t *testing.T) {
	if got := estJobBytes(4096, 4); got != 3*8*(1024+1) {
		t.Fatalf("estJobBytes(4096, 4) = %d", got)
	}
	if got := estJobBytes(1, 4); got != 3*8*2 {
		t.Fatalf("estJobBytes(1, 4) = %d", got)
	}
}

// TestBadRequests pins the 400 family.
func TestBadRequests(t *testing.T) {
	url, wait := startLocal(t, 4, Options{}, nil)
	for _, req := range []JobRequest{
		{Algo: "nope", N: 1024},
		{Kind: "nope", N: 1024},
		{N: 0},
	} {
		code, _, body := postJob(t, url, req)
		if code != http.StatusBadRequest {
			t.Fatalf("req %+v: HTTP %d (%s), want 400", req, code, body)
		}
	}
	resp, err := http.Get(url + "/jobs/j999")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
	shutdown(t, url, wait)
}
