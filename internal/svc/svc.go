// Package svc is the sort service: a long-lived TCP cluster that
// accepts sort jobs over HTTP and runs many of them concurrently on one
// mesh — the layer that turns the benchmark harness into a system with
// traffic (ROADMAP open item 1).
//
// Topology: every rank of a netcomm cluster calls Serve collectively.
// Rank 0 is the coordinator — it listens for HTTP job submissions
// (POST /jobs with a workload spec or raw keys), admits them against a
// concurrency limit and a per-job memory budget, and dispatches each
// admitted job to all ranks over a reserved control tag. Every other
// rank runs a worker loop: it receives job descriptors in FIFO order
// and runs each job on its own goroutine.
//
// Concurrency contract — the tag/epoch namespace: each job is assigned
// a monotonically increasing epoch e and all of its collectives run
// through comm.WithTagOffset(world, (e+1)<<24). Every tag the sorting
// stack uses sits below 1<<24, so concurrent jobs occupy disjoint tag
// namespaces on the shared mesh and their messages cannot be confused:
// backends match messages by (sender, tag), and per (sender, tag) pair
// each job has exactly one receiving goroutine per rank. The un-offset
// control tags (0x7a…) are below 1<<24 and therefore collide with no
// job namespace. Concurrent jobs produce output byte-identical to the
// same jobs run sequentially (pinned by svc_test.go).
//
// Failure: a peer process dying poisons the mesh's mailbox, which fails
// every in-flight and future job with a *netcomm.TransportError — the
// job errors, the coordinator marks itself degraded (503 for new
// submissions) and keeps serving status and metrics. The server never
// panics because of a dead peer.
//
// Fault tolerance (DESIGN.md §15): when the communicator is a netcomm
// mesh with liveness enabled, the coordinator additionally watches
// peer health. A peer that merely stalls (stops reading, connection
// open) degrades the service recoverably: in-flight jobs on the
// stalled path fail typed with kind "stalled", dispatch is held, and
// when the peer's heartbeats resume the coordinator clears the
// degradation and serves again. Jobs failed by transport trouble are
// retried with exponential backoff up to Options.RetryBudget. Each job
// may carry a deadline (JobRequest.TimeoutMS); an expired job is
// aborted mesh-wide — an opAbort control message plus retirement of
// the job's tag namespace unwind every rank's goroutines — and its
// admission budget is reclaimed immediately.
package svc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"pmsort/internal/comm"
	"pmsort/internal/core"
	"pmsort/internal/expt"
	"pmsort/internal/netcomm"
	"pmsort/internal/obs"
	"pmsort/internal/prng"
	"pmsort/internal/wire"
	"pmsort/internal/workload"
)

// Reserved service tags. The control tag is used un-offset on the world
// communicator; the job tags are used through each job's offset view,
// so their effective values are (epoch+1)<<24 + tag — disjoint across
// jobs and from everything below.
const (
	tagCtl       = 0x7a0001 // job descriptors and shutdown, rank 0 → workers
	tagJobData   = 0x7a0002 // raw-key scatter, rank 0 → workers (offset)
	tagJobResult = 0x7a0003 // per-rank results, every rank → rank 0 (offset)

	// epochStride is the per-job tag namespace step (not itself a
	// message tag). Every tag the sorting stack and the service use
	// sits below 1<<24 — pmsortvet's tagrange analyzer enforces the
	// ceiling, one 0x6?0000 block per package, and this package's
	// exclusive claim on 0x7a0000–0x7fffff — so stride 1<<24 makes job
	// namespaces fully disjoint.
	epochStride = 1 << 24
)

// jobOffset returns the tag offset of the job with the given epoch.
func jobOffset(epoch int64) int { return int(epoch+1) * epochStride }

// Control opcodes.
const (
	opJob      = 1
	opShutdown = 2
	opAbort    = 3 // retire one job's tag namespace mesh-wide
)

// meshComm is the optional transport surface the fault-tolerance layer
// rides on, implemented by *netcomm.Comm. In-process backends don't
// have it; on them health watching, job abort, and deadlines degrade
// to no-ops (jobs still run, they just cannot be unwound mid-flight).
type meshComm interface {
	Health() netcomm.MeshHealth
	RetireTagRange(lo, hi int)
}

// ctlMsg is the coordinator→worker control message: a job descriptor
// (opJob) or the shutdown notice (opShutdown). Wire-registered.
type ctlMsg struct {
	Op       int64
	ID       string
	Epoch    int64
	Algo     string
	Kind     string
	PerPE    int64 // workload jobs: elements generated per rank
	NTotal   int64 // total elements across ranks (raw: len(keys))
	Seed     uint64
	Levels   int64
	TieBreak bool
	Keyed    bool
	Raw      bool // input arrives via tagJobData instead of the generator
	Gather   bool // ship the sorted local output back to rank 0
}

// rankResult is one rank's outcome of one job, sent to rank 0 over the
// job's tagJobResult. Wire-registered.
type rankResult struct {
	Err     string
	ErrKind string // transport error kind ("" for non-transport errors)
	ErrPeer int64  // rank the transport failure is attributed to (-1: none)
	Count   int64
	First   uint64 // smallest output element (Count > 0)
	Last    uint64 // largest output element (Count > 0)
	Sum     uint64 // order-independent multiset hash: Σ mix64(key)
	Keys    []uint64
	PhaseNS [core.NumPhases]int64
	TotalNS int64
	Bytes   int64 // delivery-phase bytes through the exchange
}

func registerSvcWire() {
	wire.Register[ctlMsg]()
	wire.Register[rankResult]()
}

// Options tunes the service. The zero value serves on a random loopback
// port with the documented defaults.
type Options struct {
	// Addr is rank 0's HTTP listen address; "" means 127.0.0.1:0.
	Addr string
	// MaxConcurrent bounds the jobs running on the mesh at once
	// (default 8). Admitted jobs beyond it queue.
	MaxConcurrent int
	// MaxQueue bounds the admission queue (default 64); submissions
	// beyond it are rejected with 429.
	MaxQueue int
	// MemBudget is the per-rank memory budget in bytes shared by all
	// running jobs (default 256 MiB). A job's cost is estimated from the
	// delivery balance guarantee the sorters size their buffers with
	// (core's recvBound: each rank receives at most ⌈n/p⌉+1 elements per
	// level): 3 buffers — input, received run, scratch — of 8 bytes each,
	// so est(n) = 24·(⌈n/p⌉+1). A single job estimated above the whole
	// budget is rejected with 413; otherwise jobs queue until the sum of
	// running estimates fits.
	MemBudget int64
	// ResultLimit is the largest job (total elements) whose sorted
	// output is gathered to rank 0 and returned inline (default 65536).
	// Raw-key jobs are always gathered — callers submitted the data to
	// get it back sorted.
	ResultLimit int64
	// Ready, when set, is called once on rank 0 with the service's base
	// URL as soon as the HTTP listener is up.
	Ready func(url string)
	// RetryBudget is how many times a job failed by transport trouble
	// (a stalled or reset peer — not its own deadline, not a validation
	// error) is re-dispatched before it fails for good. 0 means the
	// default (2); negative disables retries.
	RetryBudget int
	// RetryBackoff is the delay before the first retry; each further
	// attempt doubles it (default 200ms).
	RetryBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 8
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.MemBudget <= 0 {
		o.MemBudget = 256 << 20
	}
	if o.ResultLimit <= 0 {
		o.ResultLimit = 1 << 16
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 2
	} else if o.RetryBudget < 0 {
		o.RetryBudget = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 200 * time.Millisecond
	}
	return o
}

// estJobBytes is the admission-control memory estimate for a job of n
// total elements on a p-rank mesh (see Options.MemBudget).
func estJobBytes(n int64, p int) int64 {
	perPE := (n + int64(p) - 1) / int64(p)
	return 3 * 8 * (perPE + 1)
}

var algoByName = map[string]expt.Algo{
	"ams":     expt.AMS,
	"rlm":     expt.RLM,
	"gv":      expt.GV,
	"mp":      expt.MP,
	"bitonic": expt.Bitonic,
	"hist":    expt.Hist,
	"hcq":     expt.HCQ,
}

var kindByName = map[string]workload.Kind{
	"uniform":       workload.Uniform,
	"skewed":        workload.Skewed,
	"dup-heavy":     workload.DupHeavy,
	"sorted":        workload.Sorted,
	"reverse":       workload.Reverse,
	"almost-sorted": workload.AlmostSorted,
	"one-pe":        workload.OnePE,
}

// Serve runs the sort service on this rank until shutdown. Collective:
// every rank of the communicator must call Serve; rank 0 additionally
// serves HTTP on opt.Addr. Rank 0 returns when ctx is cancelled or a
// POST /shutdown arrives, after draining queued and running jobs and
// notifying the workers; workers return when the shutdown notice
// arrives and their in-flight jobs have finished. A broken mesh
// (*netcomm.TransportError) fails the jobs riding on it, not the
// coordinator: rank 0 keeps serving status and metrics in a degraded
// state, while a worker whose control stream died returns the error.
func Serve(ctx context.Context, world comm.Communicator, opt Options) error {
	registerSvcWire()
	if world.Rank() == 0 {
		return serveCoordinator(ctx, world, opt.withDefaults())
	}
	return serveWorker(world)
}

// job is the coordinator's record of one submitted job. The mutable
// fields are guarded by co.mu.
type job struct {
	id    string
	desc  ctlMsg
	raw   []uint64 // raw-key input, scattered at dispatch
	est   int64    // admission-control memory estimate
	state string   // StatusQueued … StatusFailed

	errMsg  string
	errKind string // transport error kind ("stalled", "reset", …) or "deadline"
	errPeer int64  // rank the failure is attributed to (-1: none)
	res     *Result

	timeout  time.Duration // job deadline; 0 = none
	timer    *time.Timer   // armed at dispatch when timeout > 0
	attempts int           // completed dispatch attempts (retries = attempts-1)

	submitted time.Time
	wallNS    int64

	done chan struct{} // closed on completion (done or failed)

	// abortReason is why the current dispatch was aborted ("" = it
	// wasn't): "deadline" (the job's own timeout fired) or "stalled"
	// (the mesh degraded under it and the coordinator unwound it).
	// abortPeer is the rank blamed for a stall abort (-1 otherwise).
	abortReason string
	abortPeer   int64
	abortSent   bool // opAbort broadcast for the current epoch
}

// Job states reported over HTTP.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Result is the assembled outcome of a completed job.
type Result struct {
	Count      int64
	First      uint64
	Last       uint64
	Sum        uint64   // order-independent multiset hash of the output
	Keys       []uint64 // globally sorted output (gathered jobs only)
	PhaseNS    [core.NumPhases]int64
	TotalNS    int64
	BytesMoved int64
}

// coordinator is rank 0's state.
type coordinator struct {
	world comm.Communicator
	mesh  meshComm // world's fault-tolerance surface (nil off netcomm)
	opt   Options
	rec   *obs.Recorder // transport counters for /metrics (may be nil)

	mu           sync.Mutex
	cond         *sync.Cond
	jobs         map[string]*job
	queue        []*job
	running      int
	retryPending int // jobs parked in a retry-backoff timer
	memUse       int64
	nextID       int64
	nextEpoch    int64
	draining     bool
	degraded     error  // current transport degradation (sticky unless recoverable)
	degradedKind string // its kind; "stalled" clears when the peer recovers

	met metrics

	start        time.Time
	schedDone    chan struct{}
	stopOnce     sync.Once
	stopChanOnce sync.Once
	stopCh       chan struct{}
}

func serveCoordinator(ctx context.Context, world comm.Communicator, opt Options) error {
	co := &coordinator{
		world:     world,
		opt:       opt,
		rec:       obs.From(world),
		jobs:      make(map[string]*job),
		start:     time.Now(),
		schedDone: make(chan struct{}),
		stopCh:    make(chan struct{}),
	}
	co.mesh, _ = world.(meshComm)
	co.cond = sync.NewCond(&co.mu)

	ln, err := net.Listen("tcp", opt.Addr)
	if err != nil {
		// The mesh is up and the workers are parked in their control
		// receive: tell them to exit before failing, or they hang.
		co.broadcastShutdown()
		return fmt.Errorf("svc: rank 0 cannot listen on %s: %w", opt.Addr, err)
	}
	srv := &http.Server{Handler: co.handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.Serve(ln) }()
	if opt.Ready != nil {
		opt.Ready("http://" + ln.Addr().String())
	}

	go co.schedule()
	if co.mesh != nil {
		go co.healthWatch()
	}

	select {
	case <-ctx.Done():
	case <-co.stopCh:
	case err := <-httpErr: // listener died out from under us
		co.beginDrain()
		<-co.schedDone
		return fmt.Errorf("svc: http server: %w", err)
	}
	co.beginDrain()
	<-co.schedDone
	_ = srv.Close()
	return nil
}

// beginDrain stops admissions; the scheduler finishes the queue, waits
// for running jobs, and notifies the workers.
func (co *coordinator) beginDrain() {
	co.stopOnce.Do(func() {
		co.mu.Lock()
		co.draining = true
		co.cond.Broadcast()
		co.mu.Unlock()
	})
}

// requestStop triggers the same drain from an HTTP handler.
func (co *coordinator) requestStop() {
	co.beginDrain()
	co.stopChanOnce.Do(func() { close(co.stopCh) })
}

// broadcastShutdown tells every worker to exit its serve loop.
func (co *coordinator) broadcastShutdown() {
	for w := 1; w < co.world.Size(); w++ {
		co.sendCtl(w, ctlMsg{Op: opShutdown})
	}
}

// sendCtl delivers one control message, swallowing the panic of a
// torn-down mesh: the failure already surfaces typed on the job paths,
// and a dead peer must not take the scheduler goroutine with it.
func (co *coordinator) sendCtl(w int, msg ctlMsg) {
	defer func() { _ = recover() }()
	co.world.Send(w, tagCtl, msg, 1)
}

// submit validates and admits one job. It returns the job record, or an
// HTTP status and message for rejected submissions.
func (co *coordinator) submit(req JobRequest) (*job, int, string) {
	desc, raw, status, msg := co.buildDesc(req)
	if status != 0 {
		return nil, status, msg
	}
	est := estJobBytes(desc.NTotal, co.world.Size())

	co.mu.Lock()
	defer co.mu.Unlock()
	if co.draining {
		return nil, http.StatusServiceUnavailable, "service is shutting down"
	}
	if co.degraded != nil {
		return nil, http.StatusServiceUnavailable,
			fmt.Sprintf("mesh degraded by a peer failure: %v", co.degraded)
	}
	if est > co.opt.MemBudget {
		co.met.rejected++
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("job needs an estimated %d B per rank, budget is %d B", est, co.opt.MemBudget)
	}
	if len(co.queue) >= co.opt.MaxQueue {
		co.met.rejected++
		return nil, http.StatusTooManyRequests,
			fmt.Sprintf("admission queue full (%d jobs)", co.opt.MaxQueue)
	}
	co.nextID++
	j := &job{
		id:        fmt.Sprintf("j%d", co.nextID),
		desc:      desc,
		raw:       raw,
		est:       est,
		state:     StatusQueued,
		timeout:   time.Duration(req.TimeoutMS) * time.Millisecond,
		errPeer:   -1,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	j.desc.ID = j.id
	co.jobs[j.id] = j
	co.queue = append(co.queue, j)
	co.met.submitted++
	co.cond.Signal()
	return j, 0, ""
}

// buildDesc translates an HTTP job request into a control descriptor.
func (co *coordinator) buildDesc(req JobRequest) (ctlMsg, []uint64, int, string) {
	var desc ctlMsg
	p := co.world.Size()
	desc.Op = opJob
	desc.Algo = req.Algo
	if desc.Algo == "" {
		desc.Algo = "ams"
	}
	algo, ok := algoByName[desc.Algo]
	if !ok {
		return desc, nil, http.StatusBadRequest, fmt.Sprintf("unknown algo %q", desc.Algo)
	}
	if (algo == expt.Bitonic || algo == expt.HCQ) && p&(p-1) != 0 {
		return desc, nil, http.StatusBadRequest,
			fmt.Sprintf("algo %q needs a power-of-two cluster, p=%d", desc.Algo, p)
	}
	desc.Levels = int64(req.Levels)
	if desc.Levels <= 0 {
		desc.Levels = 1
	}
	desc.Seed = req.Seed
	desc.TieBreak = req.TieBreak == nil || *req.TieBreak
	desc.Keyed = req.Keyed == nil || *req.Keyed
	if req.TimeoutMS < 0 {
		return desc, nil, http.StatusBadRequest, "timeout_ms must be non-negative"
	}

	if len(req.Keys) > 0 {
		desc.Raw = true
		desc.Gather = true
		desc.NTotal = int64(len(req.Keys))
		return desc, req.Keys, 0, ""
	}
	desc.Kind = req.Kind
	if desc.Kind == "" {
		desc.Kind = "uniform"
	}
	if _, ok := kindByName[desc.Kind]; !ok {
		return desc, nil, http.StatusBadRequest, fmt.Sprintf("unknown kind %q", desc.Kind)
	}
	if req.N <= 0 {
		return desc, nil, http.StatusBadRequest, "n must be positive (or supply keys)"
	}
	desc.PerPE = (req.N + int64(p) - 1) / int64(p)
	desc.NTotal = desc.PerPE * int64(p)
	desc.Gather = desc.NTotal <= co.opt.ResultLimit
	return desc, nil, 0, ""
}

// schedule is the admission loop: it pops queued jobs in FIFO order and
// dispatches each as soon as a concurrency slot and the memory budget
// allow. Dispatch is held while the mesh is recoverably degraded (a
// stalled peer: jobs would only fail into their retry budget) unless a
// drain is in progress. On drain it finishes the queue — including
// jobs parked in retry backoff — waits for the running jobs, and sends
// the workers their shutdown notice.
func (co *coordinator) schedule() {
	defer close(co.schedDone)
	for {
		co.mu.Lock()
		for !co.dispatchableLocked() {
			if co.drainedLocked() {
				co.mu.Unlock()
				co.broadcastShutdown()
				return
			}
			co.cond.Wait()
		}
		j := co.queue[0]
		co.queue = co.queue[1:]
		co.running++
		co.memUse += j.est
		j.state = StatusRunning
		j.attempts++
		j.abortReason, j.abortPeer = "", -1
		j.abortSent = false
		j.desc.Epoch = co.nextEpoch
		co.nextEpoch++
		if j.timeout > 0 {
			j.timer = time.AfterFunc(j.timeout, func() { co.expireJob(j) })
		}
		co.mu.Unlock()

		// Dispatch before running rank 0's own share: control messages
		// are FIFO per (sender, tag), so every worker sees jobs in epoch
		// order and spawns a runner per job.
		for w := 1; w < co.world.Size(); w++ {
			co.sendCtl(w, j.desc)
		}
		go co.runJob(j)
	}
}

// dispatchableLocked reports whether the head of the queue can be
// dispatched right now.
func (co *coordinator) dispatchableLocked() bool {
	if len(co.queue) == 0 || co.running >= co.opt.MaxConcurrent ||
		co.memUse+co.queue[0].est > co.opt.MemBudget {
		return false
	}
	if co.degradedKind == netcomm.KindStalled.String() && !co.draining {
		// A stalled peer may recover; dispatching into the stall would
		// only burn retry budget. During a drain we dispatch anyway so
		// shutdown terminates (the jobs fail fast and typed).
		return false
	}
	return true
}

// drainedLocked reports whether the drain is complete: nothing queued,
// nothing running, nothing parked in a retry timer.
func (co *coordinator) drainedLocked() bool {
	return co.draining && len(co.queue) == 0 && co.running == 0 && co.retryPending == 0
}

// jobOutcome is what one dispatch attempt of a job produced, handed to
// completeJob for the retry/failure/success decision.
type jobOutcome struct {
	res       *Result
	transport error  // rank 0's own transport failure (gather/scatter), nil otherwise
	errMsg    string // non-empty = this attempt failed
	errKind   string // transport kind ("stalled", "reset", …); "" = not transport
	wallNS    int64
	errPeer   int64 // rank the failure is attributed to (-1: none)
}

// runJob executes rank 0's share of the job and gathers the per-rank
// results. Runs on its own goroutine; any number of runJobs are in
// flight at once, kept apart by the job tag namespaces.
func (co *coordinator) runJob(j *job) {
	start := time.Now()
	p := co.world.Size()
	jc := comm.WithTagOffset(co.world, jobOffset(j.desc.Epoch))

	results := make([]rankResult, p)
	runErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = recoveredError(r)
			}
		}()
		var chunk0 []uint64
		if j.desc.Raw {
			counts := comm.GroupSizes(len(j.raw), p)
			off := counts[0]
			for w := 1; w < p; w++ {
				chunk := j.raw[off : off+counts[w]]
				off += counts[w]
				jc.Send(w, tagJobData, chunk, int64(len(chunk)))
			}
			chunk0 = j.raw[:counts[0]:counts[0]]
		}
		results[0] = runLocal(co.world, j.desc, chunk0)
		for w := 1; w < p; w++ {
			pl, _ := jc.Recv(w, tagJobResult)
			results[w] = pl.(rankResult)
		}
		return nil
	}()

	wall := time.Since(start).Nanoseconds()
	if runErr != nil {
		// Rank 0's own view of the job died (typically the gather hit a
		// stalled / reset peer, or the namespace was retired by an
		// abort). Unwind the other ranks before completing.
		co.abortJob(j)
		out := jobOutcome{
			transport: runErr,
			errMsg:    fmt.Sprintf("gathering results: %v", runErr),
			wallNS:    wall,
			errPeer:   -1,
		}
		var te *netcomm.TransportError
		if errors.As(runErr, &te) {
			out.errKind = te.Kind.String()
			out.errPeer = int64(te.Peer)
		}
		co.completeJob(j, out)
		return
	}
	res := &Result{}
	var firstErr, firstKind string
	firstPeer := int64(-1)
	for rank, r := range results {
		if r.Err != "" && firstErr == "" {
			firstErr = fmt.Sprintf("rank %d: %s", rank, r.Err)
			firstKind = r.ErrKind
			firstPeer = r.ErrPeer
		}
		res.Count += r.Count
		res.Sum += r.Sum
		res.BytesMoved += r.Bytes
		if r.TotalNS > res.TotalNS {
			res.TotalNS = r.TotalNS
		}
		for ph := range r.PhaseNS {
			if r.PhaseNS[ph] > res.PhaseNS[ph] {
				res.PhaseNS[ph] = r.PhaseNS[ph]
			}
		}
	}
	if firstErr != "" {
		if firstKind != "" {
			// A remote rank hit transport trouble mid-job; its peers in
			// the same epoch may still be parked in collectives.
			co.abortJob(j)
		}
		co.completeJob(j, jobOutcome{errMsg: firstErr, errKind: firstKind, wallNS: wall, errPeer: firstPeer})
		return
	}
	// Output is globally ordered by rank (validated collectively inside
	// the job), so the gathered result is the rank-order concatenation.
	seen := false
	for _, r := range results {
		if r.Count == 0 {
			continue
		}
		if !seen {
			res.First = r.First
			seen = true
		}
		res.Last = r.Last
	}
	if j.desc.Gather {
		res.Keys = make([]uint64, 0, res.Count)
		for _, r := range results {
			res.Keys = append(res.Keys, r.Keys...)
		}
	}
	co.completeJob(j, jobOutcome{res: res, wallNS: wall, errPeer: -1})
}

// completeJob settles one dispatch attempt: release the admission
// slot, then either finalize the job (done, failed, expired) or park
// it for a retry. Idempotent per attempt — a second call for the same
// dispatch is a no-op.
func (co *coordinator) completeJob(j *job, out jobOutcome) {
	co.mu.Lock()
	if j.state != StatusRunning {
		co.mu.Unlock()
		return
	}
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	co.running--
	co.memUse -= j.est
	j.wallNS = out.wallNS

	switch j.abortReason {
	case "deadline":
		// The deadline fired and aborted the job; the underlying error
		// is the retirement unwinding, but the cause is the deadline.
		out.errMsg = fmt.Sprintf("deadline exceeded (%v)", j.timeout)
		out.errKind = "deadline"
		out.errPeer = -1
		co.met.expired++
	case netcomm.KindStalled.String():
		// The coordinator unwound the job because a peer stalled under
		// it; blame the stall, not the retirement that delivered it.
		out.errMsg = fmt.Sprintf("aborted: rank %d stopped responding to heartbeats mid-job", j.abortPeer)
		out.errKind = netcomm.KindStalled.String()
		out.errPeer = j.abortPeer
	}

	// Degrade on real transport trouble — not on our own abort
	// retiring the namespace, and not on a deadline.
	if out.errKind != "" && out.errKind != netcomm.KindRetired.String() &&
		out.errKind != "deadline" && co.degraded == nil {
		co.degraded = transportCause(out)
		co.degradedKind = out.errKind
	}

	if out.errMsg != "" && j.abortReason != "deadline" &&
		out.errKind != "" && out.errKind != netcomm.KindRetired.String() &&
		j.attempts <= co.opt.RetryBudget && !co.draining {
		// Transport-failed with budget left: park for a backoff, then
		// requeue. The job stays visible as queued; done stays open.
		j.state = StatusQueued
		j.errMsg = out.errMsg
		j.errKind = out.errKind
		j.errPeer = out.errPeer
		co.met.retried++
		co.retryPending++
		backoff := co.opt.RetryBackoff << (j.attempts - 1)
		time.AfterFunc(backoff, func() { co.requeue(j) })
		co.cond.Broadcast()
		co.mu.Unlock()
		return
	}

	if out.errMsg == "" {
		j.state = StatusDone
		j.res = out.res
		j.errMsg, j.errKind, j.errPeer = "", "", -1
		co.met.completed++
		co.met.elements += out.res.Count
		co.met.bytesMoved += out.res.BytesMoved
		co.met.totalNS += out.res.TotalNS
		for ph := range out.res.PhaseNS {
			co.met.phaseNS[ph] += out.res.PhaseNS[ph]
		}
		co.met.observeWall(out.wallNS)
	} else {
		j.state = StatusFailed
		j.errMsg = out.errMsg
		j.errKind = out.errKind
		j.errPeer = out.errPeer
		co.met.failed++
	}
	co.cond.Broadcast()
	co.mu.Unlock()
	close(j.done)
}

// transportCause shapes a jobOutcome's failure into the coordinator's
// degradation error, preferring the real error object when rank 0 saw
// it first-hand.
func transportCause(out jobOutcome) error {
	if out.transport != nil {
		return out.transport
	}
	return fmt.Errorf("rank %d reported a %s transport failure", out.errPeer, out.errKind)
}

// requeue returns a retry-parked job to the admission queue once its
// backoff elapses.
func (co *coordinator) requeue(j *job) {
	co.mu.Lock()
	co.retryPending--
	if j.state == StatusQueued {
		co.queue = append(co.queue, j)
	}
	co.cond.Broadcast()
	co.mu.Unlock()
}

// expireJob is the deadline timer's callback: abort the job mesh-wide
// if it is still running. The retirement unwinds every rank's
// goroutines; the completion flows through runJob → completeJob, which
// sees the abort reason and reports the deadline, not the retirement.
func (co *coordinator) expireJob(j *job) {
	co.mu.Lock()
	if j.state != StatusRunning || j.abortReason != "" {
		co.mu.Unlock()
		return
	}
	j.abortReason, j.abortPeer = "deadline", -1
	co.mu.Unlock()
	co.abortJob(j)
}

// abortJob unwinds one job's current dispatch mesh-wide: every worker
// is told (opAbort) to retire the job's tag namespace, and rank 0
// retires its own. Queued and future messages in the namespace are
// dropped, parked receives fail with KindRetired, and the job's
// goroutines on every rank unwind typed. Idempotent per dispatch.
func (co *coordinator) abortJob(j *job) {
	co.mu.Lock()
	if j.abortSent {
		co.mu.Unlock()
		return
	}
	j.abortSent = true
	co.met.aborted++
	epoch := j.desc.Epoch
	co.mu.Unlock()
	for w := 1; w < co.world.Size(); w++ {
		co.sendCtl(w, ctlMsg{Op: opAbort, ID: j.id, Epoch: epoch})
	}
	if co.mesh != nil {
		co.mesh.RetireTagRange(jobOffset(epoch), jobOffset(epoch)+epochStride)
	}
}

// healthWatch polls the mesh's liveness state and maintains the
// coordinator's degradation: a fatal transport failure degrades
// permanently, a stalled peer degrades recoverably — when its
// heartbeats resume, the degradation clears and dispatch resumes.
func (co *coordinator) healthWatch() {
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-co.schedDone:
			return
		case <-t.C:
		}
		h := co.mesh.Health()
		var stalled []int
		for _, ph := range h.Peers {
			if ph.Stalled {
				stalled = append(stalled, ph.Rank)
			}
		}
		co.mu.Lock()
		var victims []*job
		switch {
		case h.Failed != nil:
			if co.degraded == nil || co.degradedKind == netcomm.KindStalled.String() {
				co.degraded = h.Failed
				co.degradedKind = failureKind(h.Failed)
			}
		case len(stalled) > 0:
			if co.degraded == nil {
				co.degraded = fmt.Errorf("peer(s) %v stopped responding to heartbeats", stalled)
				co.degradedKind = netcomm.KindStalled.String()
			}
			// Unwind the in-flight jobs: they are collectives over every
			// rank, so a stalled peer wedges them even when their next
			// receive is from a healthy one. Aborting them typed frees
			// their budget now and routes them into the retry loop.
			for _, j := range co.jobs {
				if j.state == StatusRunning && j.abortReason == "" && !j.abortSent {
					j.abortReason = netcomm.KindStalled.String()
					j.abortPeer = int64(stalled[0])
					victims = append(victims, j)
				}
			}
		default:
			if co.degradedKind == netcomm.KindStalled.String() {
				// The stall lifted; serve again.
				co.degraded, co.degradedKind = nil, ""
			}
		}
		co.cond.Broadcast()
		co.mu.Unlock()
		for _, j := range victims {
			co.abortJob(j)
		}
	}
}

// failureKind extracts the transport error kind from an error chain
// ("unknown" when it carries no *netcomm.TransportError).
func failureKind(err error) string {
	var te *netcomm.TransportError
	if errors.As(err, &te) {
		return te.Kind.String()
	}
	return netcomm.KindUnknown.String()
}

// serveWorker is every non-coordinator rank's loop: receive control
// messages in FIFO order, run each job on its own goroutine, exit on
// the shutdown notice after the in-flight jobs drain. An opAbort
// retires the named job's tag namespace, unwinding its local runner.
// A stall on the control stream (the coordinator stopped responding
// to heartbeats but may come back) is waited out; a hard transport
// failure (the coordinator died) is returned as an error after the
// jobs have failed over the same poisoned mailbox.
func serveWorker(world comm.Communicator) error {
	mc, _ := world.(meshComm)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		msg, err := recvCtl(world)
		if err != nil {
			var te *netcomm.TransportError
			if errors.As(err, &te) && te.Kind == netcomm.KindStalled {
				// Recoverable: the liveness layer will either lift the
				// stall (heartbeats resume) or escalate it to a fatal
				// failure (write deadline), which ends this loop.
				time.Sleep(20 * time.Millisecond)
				continue
			}
			return err
		}
		switch msg.Op {
		case opShutdown:
			return nil
		case opAbort:
			if mc != nil {
				mc.RetireTagRange(jobOffset(msg.Epoch), jobOffset(msg.Epoch)+epochStride)
			}
			continue
		}
		wg.Add(1)
		go func(d ctlMsg) {
			defer wg.Done()
			res := runLocal(world, d, nil)
			jc := comm.WithTagOffset(world, jobOffset(d.Epoch))
			defer func() { recover() }() // sending on a torn-down mesh must not kill the rank
			jc.Send(0, tagJobResult, res, int64(len(res.Keys))+4)
		}(msg)
	}
}

// recvCtl receives one control message, converting a transport panic
// into an error.
func recvCtl(world comm.Communicator) (msg ctlMsg, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recoveredError(r)
		}
	}()
	pl, _ := world.Recv(0, tagCtl)
	return pl.(ctlMsg), nil
}

// runLocal runs this rank's share of one job: obtain the input
// (generate it, or take the scattered raw chunk), sort it collectively
// through the job's tag-offset view, validate, and report. Any panic —
// a transport failure, a validation failure — becomes an error result,
// not a process crash.
func runLocal(world comm.Communicator, d ctlMsg, chunk0 []uint64) (res rankResult) {
	defer func() {
		if r := recover(); r != nil {
			err := recoveredError(r)
			res = rankResult{Err: err.Error(), ErrPeer: -1}
			var te *netcomm.TransportError
			if errors.As(err, &te) {
				res.ErrKind = te.Kind.String()
				res.ErrPeer = int64(te.Peer)
			}
		}
	}()
	rank, p := world.Rank(), world.Size()
	jc := comm.WithTagOffset(world, jobOffset(d.Epoch))

	var data []uint64
	switch {
	case d.Raw && rank == 0:
		data = chunk0
	case d.Raw:
		pl, _ := jc.Recv(0, tagJobData)
		data, _ = pl.([]uint64)
	default:
		data = workload.Local(kindByName[d.Kind], d.Seed, p, int(d.PerPE), rank)
	}

	spec := expt.Spec{
		Algo:     algoByName[d.Algo],
		P:        p,
		PerPE:    int(d.PerPE),
		Levels:   int(d.Levels),
		Kind:     kindByName[d.Kind],
		Seed:     d.Seed,
		TieBreak: d.TieBreak,
		Keyed:    d.Keyed,
	}
	out, st := expt.RunData(jc, spec, data)

	res.Count = int64(len(out))
	if len(out) > 0 {
		res.First, res.Last = out[0], out[len(out)-1]
	}
	for _, k := range out {
		res.Sum += prng.Mix64(k)
	}
	res.PhaseNS = st.PhaseNS
	res.TotalNS = st.TotalNS
	res.Bytes = st.PhaseBytes[core.PhaseDataDelivery]
	if d.Gather {
		res.Keys = out
	}
	return res
}

// recoveredError shapes a recovered panic value into an error,
// preserving *netcomm.TransportError for errors.As.
func recoveredError(r any) error {
	switch v := r.(type) {
	case *netcomm.TransportError:
		return v
	case error:
		return v
	default:
		return fmt.Errorf("%v", v)
	}
}

// sortedJobIDs returns the job IDs in submission order (for /jobs).
func (co *coordinator) sortedJobIDs() []string {
	co.mu.Lock()
	defer co.mu.Unlock()
	ids := make([]string, 0, len(co.jobs))
	for id := range co.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		if len(ids[a]) != len(ids[b]) {
			return len(ids[a]) < len(ids[b])
		}
		return ids[a] < ids[b]
	})
	return ids
}
