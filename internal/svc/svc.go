// Package svc is the sort service: a long-lived TCP cluster that
// accepts sort jobs over HTTP and runs many of them concurrently on one
// mesh — the layer that turns the benchmark harness into a system with
// traffic (ROADMAP open item 1).
//
// Topology: every rank of a netcomm cluster calls Serve collectively.
// Rank 0 is the coordinator — it listens for HTTP job submissions
// (POST /jobs with a workload spec or raw keys), admits them against a
// concurrency limit and a per-job memory budget, and dispatches each
// admitted job to all ranks over a reserved control tag. Every other
// rank runs a worker loop: it receives job descriptors in FIFO order
// and runs each job on its own goroutine.
//
// Concurrency contract — the tag/epoch namespace: each job is assigned
// a monotonically increasing epoch e and all of its collectives run
// through comm.WithTagOffset(world, (e+1)<<24). Every tag the sorting
// stack uses sits below 1<<24, so concurrent jobs occupy disjoint tag
// namespaces on the shared mesh and their messages cannot be confused:
// backends match messages by (sender, tag), and per (sender, tag) pair
// each job has exactly one receiving goroutine per rank. The un-offset
// control tags (0x7a…) are below 1<<24 and therefore collide with no
// job namespace. Concurrent jobs produce output byte-identical to the
// same jobs run sequentially (pinned by svc_test.go).
//
// Failure: a peer process dying poisons the mesh's mailbox, which fails
// every in-flight and future job with a *netcomm.TransportError — the
// job errors, the coordinator marks itself degraded (503 for new
// submissions) and keeps serving status and metrics. The server never
// panics because of a dead peer.
package svc

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"pmsort/internal/comm"
	"pmsort/internal/core"
	"pmsort/internal/expt"
	"pmsort/internal/netcomm"
	"pmsort/internal/obs"
	"pmsort/internal/prng"
	"pmsort/internal/wire"
	"pmsort/internal/workload"
)

// Reserved service tags. The control tag is used un-offset on the world
// communicator; the job tags are used through each job's offset view,
// so their effective values are (epoch+1)<<24 + tag — disjoint across
// jobs and from everything below.
const (
	tagCtl       = 0x7a0001 // job descriptors and shutdown, rank 0 → workers
	tagJobData   = 0x7a0002 // raw-key scatter, rank 0 → workers (offset)
	tagJobResult = 0x7a0003 // per-rank results, every rank → rank 0 (offset)

	// epochStride is the per-job tag namespace step (not itself a
	// message tag). Every tag the sorting stack and the service use
	// sits below 1<<24 — pmsortvet's tagrange analyzer enforces the
	// ceiling, one 0x6?0000 block per package, and this package's
	// exclusive claim on 0x7a0000–0x7fffff — so stride 1<<24 makes job
	// namespaces fully disjoint.
	epochStride = 1 << 24
)

// jobOffset returns the tag offset of the job with the given epoch.
func jobOffset(epoch int64) int { return int(epoch+1) * epochStride }

// Control opcodes.
const (
	opJob      = 1
	opShutdown = 2
)

// ctlMsg is the coordinator→worker control message: a job descriptor
// (opJob) or the shutdown notice (opShutdown). Wire-registered.
type ctlMsg struct {
	Op       int64
	ID       string
	Epoch    int64
	Algo     string
	Kind     string
	PerPE    int64 // workload jobs: elements generated per rank
	NTotal   int64 // total elements across ranks (raw: len(keys))
	Seed     uint64
	Levels   int64
	TieBreak bool
	Keyed    bool
	Raw      bool // input arrives via tagJobData instead of the generator
	Gather   bool // ship the sorted local output back to rank 0
}

// rankResult is one rank's outcome of one job, sent to rank 0 over the
// job's tagJobResult. Wire-registered.
type rankResult struct {
	Err     string
	Count   int64
	First   uint64 // smallest output element (Count > 0)
	Last    uint64 // largest output element (Count > 0)
	Sum     uint64 // order-independent multiset hash: Σ mix64(key)
	Keys    []uint64
	PhaseNS [core.NumPhases]int64
	TotalNS int64
	Bytes   int64 // delivery-phase bytes through the exchange
}

func registerSvcWire() {
	wire.Register[ctlMsg]()
	wire.Register[rankResult]()
}

// Options tunes the service. The zero value serves on a random loopback
// port with the documented defaults.
type Options struct {
	// Addr is rank 0's HTTP listen address; "" means 127.0.0.1:0.
	Addr string
	// MaxConcurrent bounds the jobs running on the mesh at once
	// (default 8). Admitted jobs beyond it queue.
	MaxConcurrent int
	// MaxQueue bounds the admission queue (default 64); submissions
	// beyond it are rejected with 429.
	MaxQueue int
	// MemBudget is the per-rank memory budget in bytes shared by all
	// running jobs (default 256 MiB). A job's cost is estimated from the
	// delivery balance guarantee the sorters size their buffers with
	// (core's recvBound: each rank receives at most ⌈n/p⌉+1 elements per
	// level): 3 buffers — input, received run, scratch — of 8 bytes each,
	// so est(n) = 24·(⌈n/p⌉+1). A single job estimated above the whole
	// budget is rejected with 413; otherwise jobs queue until the sum of
	// running estimates fits.
	MemBudget int64
	// ResultLimit is the largest job (total elements) whose sorted
	// output is gathered to rank 0 and returned inline (default 65536).
	// Raw-key jobs are always gathered — callers submitted the data to
	// get it back sorted.
	ResultLimit int64
	// Ready, when set, is called once on rank 0 with the service's base
	// URL as soon as the HTTP listener is up.
	Ready func(url string)
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 8
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.MemBudget <= 0 {
		o.MemBudget = 256 << 20
	}
	if o.ResultLimit <= 0 {
		o.ResultLimit = 1 << 16
	}
	return o
}

// estJobBytes is the admission-control memory estimate for a job of n
// total elements on a p-rank mesh (see Options.MemBudget).
func estJobBytes(n int64, p int) int64 {
	perPE := (n + int64(p) - 1) / int64(p)
	return 3 * 8 * (perPE + 1)
}

var algoByName = map[string]expt.Algo{
	"ams":     expt.AMS,
	"rlm":     expt.RLM,
	"gv":      expt.GV,
	"mp":      expt.MP,
	"bitonic": expt.Bitonic,
	"hist":    expt.Hist,
	"hcq":     expt.HCQ,
}

var kindByName = map[string]workload.Kind{
	"uniform":       workload.Uniform,
	"skewed":        workload.Skewed,
	"dup-heavy":     workload.DupHeavy,
	"sorted":        workload.Sorted,
	"reverse":       workload.Reverse,
	"almost-sorted": workload.AlmostSorted,
	"one-pe":        workload.OnePE,
}

// Serve runs the sort service on this rank until shutdown. Collective:
// every rank of the communicator must call Serve; rank 0 additionally
// serves HTTP on opt.Addr. Rank 0 returns when ctx is cancelled or a
// POST /shutdown arrives, after draining queued and running jobs and
// notifying the workers; workers return when the shutdown notice
// arrives and their in-flight jobs have finished. A broken mesh
// (*netcomm.TransportError) fails the jobs riding on it, not the
// coordinator: rank 0 keeps serving status and metrics in a degraded
// state, while a worker whose control stream died returns the error.
func Serve(ctx context.Context, world comm.Communicator, opt Options) error {
	registerSvcWire()
	if world.Rank() == 0 {
		return serveCoordinator(ctx, world, opt.withDefaults())
	}
	return serveWorker(world)
}

// job is the coordinator's record of one submitted job.
type job struct {
	id    string
	desc  ctlMsg
	raw   []uint64 // raw-key input, scattered at dispatch
	est   int64    // admission-control memory estimate
	state string   // StatusQueued … StatusFailed, guarded by co.mu

	errMsg string
	res    *Result

	submitted time.Time
	wallNS    int64

	done chan struct{} // closed on completion (done or failed)
}

// Job states reported over HTTP.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Result is the assembled outcome of a completed job.
type Result struct {
	Count      int64
	First      uint64
	Last       uint64
	Sum        uint64   // order-independent multiset hash of the output
	Keys       []uint64 // globally sorted output (gathered jobs only)
	PhaseNS    [core.NumPhases]int64
	TotalNS    int64
	BytesMoved int64
}

// coordinator is rank 0's state.
type coordinator struct {
	world comm.Communicator
	opt   Options
	rec   *obs.Recorder // transport counters for /metrics (may be nil)

	mu        sync.Mutex
	cond      *sync.Cond
	jobs      map[string]*job
	queue     []*job
	running   int
	memUse    int64
	nextID    int64
	nextEpoch int64
	draining  bool
	degraded  error // first transport failure, sticky

	met metrics

	start        time.Time
	schedDone    chan struct{}
	stopOnce     sync.Once
	stopChanOnce sync.Once
	stopCh       chan struct{}
}

func serveCoordinator(ctx context.Context, world comm.Communicator, opt Options) error {
	co := &coordinator{
		world:     world,
		opt:       opt,
		rec:       obs.From(world),
		jobs:      make(map[string]*job),
		start:     time.Now(),
		schedDone: make(chan struct{}),
		stopCh:    make(chan struct{}),
	}
	co.cond = sync.NewCond(&co.mu)

	ln, err := net.Listen("tcp", opt.Addr)
	if err != nil {
		// The mesh is up and the workers are parked in their control
		// receive: tell them to exit before failing, or they hang.
		co.broadcastShutdown()
		return fmt.Errorf("svc: rank 0 cannot listen on %s: %w", opt.Addr, err)
	}
	srv := &http.Server{Handler: co.handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.Serve(ln) }()
	if opt.Ready != nil {
		opt.Ready("http://" + ln.Addr().String())
	}

	go co.schedule()

	select {
	case <-ctx.Done():
	case <-co.stopCh:
	case err := <-httpErr: // listener died out from under us
		co.beginDrain()
		<-co.schedDone
		return fmt.Errorf("svc: http server: %w", err)
	}
	co.beginDrain()
	<-co.schedDone
	_ = srv.Close()
	return nil
}

// beginDrain stops admissions; the scheduler finishes the queue, waits
// for running jobs, and notifies the workers.
func (co *coordinator) beginDrain() {
	co.stopOnce.Do(func() {
		co.mu.Lock()
		co.draining = true
		co.cond.Broadcast()
		co.mu.Unlock()
	})
}

// requestStop triggers the same drain from an HTTP handler.
func (co *coordinator) requestStop() {
	co.beginDrain()
	co.stopChanOnce.Do(func() { close(co.stopCh) })
}

// broadcastShutdown tells every worker to exit its serve loop.
func (co *coordinator) broadcastShutdown() {
	for w := 1; w < co.world.Size(); w++ {
		co.world.Send(w, tagCtl, ctlMsg{Op: opShutdown}, 1)
	}
}

// submit validates and admits one job. It returns the job record, or an
// HTTP status and message for rejected submissions.
func (co *coordinator) submit(req JobRequest) (*job, int, string) {
	desc, raw, status, msg := co.buildDesc(req)
	if status != 0 {
		return nil, status, msg
	}
	est := estJobBytes(desc.NTotal, co.world.Size())

	co.mu.Lock()
	defer co.mu.Unlock()
	if co.draining {
		return nil, http.StatusServiceUnavailable, "service is shutting down"
	}
	if co.degraded != nil {
		return nil, http.StatusServiceUnavailable,
			fmt.Sprintf("mesh degraded by a peer failure: %v", co.degraded)
	}
	if est > co.opt.MemBudget {
		co.met.rejected++
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("job needs an estimated %d B per rank, budget is %d B", est, co.opt.MemBudget)
	}
	if len(co.queue) >= co.opt.MaxQueue {
		co.met.rejected++
		return nil, http.StatusTooManyRequests,
			fmt.Sprintf("admission queue full (%d jobs)", co.opt.MaxQueue)
	}
	co.nextID++
	j := &job{
		id:        fmt.Sprintf("j%d", co.nextID),
		desc:      desc,
		raw:       raw,
		est:       est,
		state:     StatusQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	j.desc.ID = j.id
	co.jobs[j.id] = j
	co.queue = append(co.queue, j)
	co.met.submitted++
	co.cond.Signal()
	return j, 0, ""
}

// buildDesc translates an HTTP job request into a control descriptor.
func (co *coordinator) buildDesc(req JobRequest) (ctlMsg, []uint64, int, string) {
	var desc ctlMsg
	p := co.world.Size()
	desc.Op = opJob
	desc.Algo = req.Algo
	if desc.Algo == "" {
		desc.Algo = "ams"
	}
	algo, ok := algoByName[desc.Algo]
	if !ok {
		return desc, nil, http.StatusBadRequest, fmt.Sprintf("unknown algo %q", desc.Algo)
	}
	if (algo == expt.Bitonic || algo == expt.HCQ) && p&(p-1) != 0 {
		return desc, nil, http.StatusBadRequest,
			fmt.Sprintf("algo %q needs a power-of-two cluster, p=%d", desc.Algo, p)
	}
	desc.Levels = int64(req.Levels)
	if desc.Levels <= 0 {
		desc.Levels = 1
	}
	desc.Seed = req.Seed
	desc.TieBreak = req.TieBreak == nil || *req.TieBreak
	desc.Keyed = req.Keyed == nil || *req.Keyed

	if len(req.Keys) > 0 {
		desc.Raw = true
		desc.Gather = true
		desc.NTotal = int64(len(req.Keys))
		return desc, req.Keys, 0, ""
	}
	desc.Kind = req.Kind
	if desc.Kind == "" {
		desc.Kind = "uniform"
	}
	if _, ok := kindByName[desc.Kind]; !ok {
		return desc, nil, http.StatusBadRequest, fmt.Sprintf("unknown kind %q", desc.Kind)
	}
	if req.N <= 0 {
		return desc, nil, http.StatusBadRequest, "n must be positive (or supply keys)"
	}
	desc.PerPE = (req.N + int64(p) - 1) / int64(p)
	desc.NTotal = desc.PerPE * int64(p)
	desc.Gather = desc.NTotal <= co.opt.ResultLimit
	return desc, nil, 0, ""
}

// schedule is the admission loop: it pops queued jobs in FIFO order and
// dispatches each as soon as a concurrency slot and the memory budget
// allow. On drain it finishes the queue, waits for the running jobs,
// and sends the workers their shutdown notice.
func (co *coordinator) schedule() {
	defer close(co.schedDone)
	for {
		co.mu.Lock()
		for len(co.queue) == 0 || co.running >= co.opt.MaxConcurrent ||
			co.memUse+co.queue[0].est > co.opt.MemBudget {
			if co.draining && len(co.queue) == 0 {
				for co.running > 0 {
					co.cond.Wait()
				}
				co.mu.Unlock()
				co.broadcastShutdown()
				return
			}
			co.cond.Wait()
		}
		j := co.queue[0]
		co.queue = co.queue[1:]
		co.running++
		co.memUse += j.est
		j.state = StatusRunning
		j.desc.Epoch = co.nextEpoch
		co.nextEpoch++
		co.mu.Unlock()

		// Dispatch before running rank 0's own share: control messages
		// are FIFO per (sender, tag), so every worker sees jobs in epoch
		// order and spawns a runner per job.
		for w := 1; w < co.world.Size(); w++ {
			co.world.Send(w, tagCtl, j.desc, 1)
		}
		go co.runJob(j)
	}
}

// runJob executes rank 0's share of the job and gathers the per-rank
// results. Runs on its own goroutine; any number of runJobs are in
// flight at once, kept apart by the job tag namespaces.
func (co *coordinator) runJob(j *job) {
	start := time.Now()
	p := co.world.Size()
	jc := comm.WithTagOffset(co.world, jobOffset(j.desc.Epoch))

	var chunk0 []uint64
	if j.desc.Raw {
		counts := comm.GroupSizes(len(j.raw), p)
		off := counts[0]
		for w := 1; w < p; w++ {
			chunk := j.raw[off : off+counts[w]]
			off += counts[w]
			jc.Send(w, tagJobData, chunk, int64(len(chunk)))
		}
		chunk0 = j.raw[:counts[0]:counts[0]]
	}

	results := make([]rankResult, p)
	results[0] = runLocal(co.world, j.desc, chunk0)
	gatherErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = recoveredError(r)
			}
		}()
		for w := 1; w < p; w++ {
			pl, _ := jc.Recv(w, tagJobResult)
			results[w] = pl.(rankResult)
		}
		return nil
	}()

	wall := time.Since(start).Nanoseconds()
	if gatherErr != nil {
		co.completeJob(j, nil, fmt.Sprintf("gathering results: %v", gatherErr), wall, gatherErr)
		return
	}
	res := &Result{}
	var firstErr string
	for rank, r := range results {
		if r.Err != "" && firstErr == "" {
			firstErr = fmt.Sprintf("rank %d: %s", rank, r.Err)
		}
		res.Count += r.Count
		res.Sum += r.Sum
		res.BytesMoved += r.Bytes
		if r.TotalNS > res.TotalNS {
			res.TotalNS = r.TotalNS
		}
		for ph := range r.PhaseNS {
			if r.PhaseNS[ph] > res.PhaseNS[ph] {
				res.PhaseNS[ph] = r.PhaseNS[ph]
			}
		}
	}
	if firstErr != "" {
		co.completeJob(j, nil, firstErr, wall, nil)
		return
	}
	// Output is globally ordered by rank (validated collectively inside
	// the job), so the gathered result is the rank-order concatenation.
	seen := false
	for _, r := range results {
		if r.Count == 0 {
			continue
		}
		if !seen {
			res.First = r.First
			seen = true
		}
		res.Last = r.Last
	}
	if j.desc.Gather {
		res.Keys = make([]uint64, 0, res.Count)
		for _, r := range results {
			res.Keys = append(res.Keys, r.Keys...)
		}
	}
	co.completeJob(j, res, "", wall, nil)
}

// completeJob finalizes the job record, releases its admission slot,
// and folds its outcome into the metrics.
func (co *coordinator) completeJob(j *job, res *Result, errMsg string, wallNS int64, transport error) {
	co.mu.Lock()
	co.running--
	co.memUse -= j.est
	j.wallNS = wallNS
	if errMsg == "" {
		j.state = StatusDone
		j.res = res
		co.met.completed++
		co.met.elements += res.Count
		co.met.bytesMoved += res.BytesMoved
		co.met.totalNS += res.TotalNS
		for ph := range res.PhaseNS {
			co.met.phaseNS[ph] += res.PhaseNS[ph]
		}
		co.met.observeWall(wallNS)
	} else {
		j.state = StatusFailed
		j.errMsg = errMsg
		co.met.failed++
	}
	if transport != nil && co.degraded == nil {
		co.degraded = transport
	}
	co.cond.Broadcast()
	co.mu.Unlock()
	close(j.done)
}

// serveWorker is every non-coordinator rank's loop: receive control
// messages in FIFO order, run each job on its own goroutine, exit on
// the shutdown notice after the in-flight jobs drain. A transport
// failure on the control stream (the coordinator died) is returned as
// an error after the jobs have failed over the same poisoned mailbox.
func serveWorker(world comm.Communicator) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		msg, err := recvCtl(world)
		if err != nil {
			return err
		}
		if msg.Op == opShutdown {
			return nil
		}
		wg.Add(1)
		go func(d ctlMsg) {
			defer wg.Done()
			res := runLocal(world, d, nil)
			jc := comm.WithTagOffset(world, jobOffset(d.Epoch))
			defer func() { recover() }() // sending on a torn-down mesh must not kill the rank
			jc.Send(0, tagJobResult, res, int64(len(res.Keys))+4)
		}(msg)
	}
}

// recvCtl receives one control message, converting a transport panic
// into an error.
func recvCtl(world comm.Communicator) (msg ctlMsg, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recoveredError(r)
		}
	}()
	pl, _ := world.Recv(0, tagCtl)
	return pl.(ctlMsg), nil
}

// runLocal runs this rank's share of one job: obtain the input
// (generate it, or take the scattered raw chunk), sort it collectively
// through the job's tag-offset view, validate, and report. Any panic —
// a transport failure, a validation failure — becomes an error result,
// not a process crash.
func runLocal(world comm.Communicator, d ctlMsg, chunk0 []uint64) (res rankResult) {
	defer func() {
		if r := recover(); r != nil {
			res = rankResult{Err: recoveredError(r).Error()}
		}
	}()
	rank, p := world.Rank(), world.Size()
	jc := comm.WithTagOffset(world, jobOffset(d.Epoch))

	var data []uint64
	switch {
	case d.Raw && rank == 0:
		data = chunk0
	case d.Raw:
		pl, _ := jc.Recv(0, tagJobData)
		data, _ = pl.([]uint64)
	default:
		data = workload.Local(kindByName[d.Kind], d.Seed, p, int(d.PerPE), rank)
	}

	spec := expt.Spec{
		Algo:     algoByName[d.Algo],
		P:        p,
		PerPE:    int(d.PerPE),
		Levels:   int(d.Levels),
		Kind:     kindByName[d.Kind],
		Seed:     d.Seed,
		TieBreak: d.TieBreak,
		Keyed:    d.Keyed,
	}
	out, st := expt.RunData(jc, spec, data)

	res.Count = int64(len(out))
	if len(out) > 0 {
		res.First, res.Last = out[0], out[len(out)-1]
	}
	for _, k := range out {
		res.Sum += prng.Mix64(k)
	}
	res.PhaseNS = st.PhaseNS
	res.TotalNS = st.TotalNS
	res.Bytes = st.PhaseBytes[core.PhaseDataDelivery]
	if d.Gather {
		res.Keys = out
	}
	return res
}

// recoveredError shapes a recovered panic value into an error,
// preserving *netcomm.TransportError for errors.As.
func recoveredError(r any) error {
	switch v := r.(type) {
	case *netcomm.TransportError:
		return v
	case error:
		return v
	default:
		return fmt.Errorf("%v", v)
	}
}

// sortedJobIDs returns the job IDs in submission order (for /jobs).
func (co *coordinator) sortedJobIDs() []string {
	co.mu.Lock()
	defer co.mu.Unlock()
	ids := make([]string, 0, len(co.jobs))
	for id := range co.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		if len(ids[a]) != len(ids[b]) {
			return len(ids[a]) < len(ids[b])
		}
		return ids[a] < ids[b]
	})
	return ids
}
