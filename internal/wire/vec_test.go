package wire

import (
	"bytes"
	"reflect"
	"testing"
	"unsafe"
)

// vecChunk mirrors delivery's chunk shape (unexported slice field) for
// the vectored/aligned paths.
type vecChunk struct {
	data []uint64
}

// vecPair is a memmove-safe struct: all-8-byte fields, so []vecPair
// moves as one raw block.
type vecPair struct {
	K, T uint64
}

// vecMixed is NOT memmove-safe (int32 field is varint-encoded).
type vecMixed struct {
	K uint64
	P int32
}

func init() {
	Register[[]vecChunk]()
	Register[[]vecPair]()
	Register[[]vecMixed]()
	Register[[][]int64]()
}

// encodeFrameStyle encodes payload the way the transport does: a dst
// prefix of `base` bytes (the length prefix) already present, aligned
// bulk, vectored spans of at least minSpan bytes. Returns the
// concatenated stream after the prefix.
func encodeFrameStyle(t *testing.T, payload any, base, minSpan int) []byte {
	t.Helper()
	dst := make([]byte, base)
	segs, err := NewWriter().AppendPayloadVec(dst, payload, VecOptions{Aligned: true, AlignBase: base, MinSpan: minSpan})
	if err != nil {
		t.Fatalf("encode %T: %v", payload, err)
	}
	var all []byte
	for _, s := range segs {
		all = append(all, s...)
	}
	return all[base:]
}

func TestVecSegmentsMatchSingleBuffer(t *testing.T) {
	payloads := []any{
		[]uint64{1, 2, 3, 4, 5, 6, 7, 8},
		[]vecChunk{{data: []uint64{9, 8, 7}}, {data: nil}, {data: []uint64{}}, {data: []uint64{1}}},
		[]vecPair{{1, 2}, {3, 4}},
		[][]int64{{-1, 5}, nil, {}},
	}
	for _, p := range payloads {
		// minSpan 1: every non-empty bulk block becomes its own segment.
		vec := encodeFrameStyle(t, p, 4, 1)
		// Huge minSpan: no segments, one contiguous buffer — same bytes.
		flat := encodeFrameStyle(t, p, 4, 1<<30)
		if !bytes.Equal(vec, flat) {
			t.Errorf("%T: vectored bytes differ from single-buffer bytes\nvec:  %x\nflat: %x", p, vec, flat)
		}
	}
}

func TestAlignedRoundtripAliases(t *testing.T) {
	payload := []vecChunk{{data: []uint64{10, 20, 30}}, {data: []uint64{40, 50}}}
	stream := encodeFrameStyle(t, payload, 4, 1)
	// The transport copies the stream into an allocated frame buffer
	// whose base is 8-aligned; reproduce that.
	body := append(make([]byte, 0, len(stream)+8), stream...)

	got, rest, aliased, err := NewReader().DecodePayloadOpt(body, DecodeOptions{Aligned: true, Alias: true})
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (rest %d)", err, len(rest))
	}
	chunks := got.([]vecChunk)
	want := []vecChunk{{data: []uint64{10, 20, 30}}, {data: []uint64{40, 50}}}
	if !reflect.DeepEqual(chunks, want) {
		t.Fatalf("decoded %v, want %v", chunks, want)
	}
	if !aliased {
		t.Fatal("aligned+alias decode of bulk chunks did not alias the frame buffer")
	}
	// The chunks are views of body — the one-allocation-per-frame
	// contract: clobbering body must show through.
	for i := range body {
		body[i] = 0xff
	}
	if chunks[0].data[0] == 10 {
		t.Fatal("decoded chunk does not alias the frame buffer despite aliased=true")
	}
}

func TestNoAliasWithoutOptIn(t *testing.T) {
	// The regression pin for the handoff rule: without Alias, decoded
	// payloads must never reference the source buffer (transports reuse
	// it; chaos re-reads it).
	for _, aligned := range []bool{true, false} {
		var stream []byte
		payload := []vecChunk{{data: []uint64{11, 22, 33, 44}}}
		if aligned {
			stream = encodeFrameStyle(t, payload, 0, 1<<30)
		} else {
			var err error
			stream, err = NewWriter().AppendPayload(nil, payload)
			if err != nil {
				t.Fatal(err)
			}
		}
		got, rest, aliased, err := NewReader().DecodePayloadOpt(stream, DecodeOptions{Aligned: aligned})
		if err != nil || len(rest) != 0 {
			t.Fatalf("aligned=%v decode: %v (rest %d)", aligned, err, len(rest))
		}
		if aliased {
			t.Fatalf("aligned=%v: decode reported aliasing without opt-in", aligned)
		}
		for i := range stream {
			stream[i] = 0xee
		}
		if d := got.([]vecChunk)[0].data; !reflect.DeepEqual(d, []uint64{11, 22, 33, 44}) {
			t.Fatalf("aligned=%v: decoded chunk aliases the source buffer: %v", aligned, d)
		}
	}
}

func TestMemmovableStructSlices(t *testing.T) {
	// All-8-byte structs take the raw-block path; mixed structs must
	// not (their wire format is not their memory layout).
	if got := memmoveSize(reflect.TypeOf(vecPair{})); got != 16 {
		t.Fatalf("memmoveSize(vecPair) = %d, want 16", got)
	}
	if got := memmoveSize(reflect.TypeOf(vecMixed{})); got != 0 {
		t.Fatalf("memmoveSize(vecMixed) = %d, want 0", got)
	}
	pairs := []vecPair{{1, 1 << 60}, {2, 3}, {0xffffffffffffffff, 0}}
	if got := roundtrip(t, pairs); !reflect.DeepEqual(got, pairs) {
		t.Fatalf("pair roundtrip: %v", got)
	}
	mixed := []vecMixed{{K: 7, P: -9}, {K: 8, P: 1 << 20}}
	if got := roundtrip(t, mixed); !reflect.DeepEqual(got, mixed) {
		t.Fatalf("mixed roundtrip: %v", got)
	}
	// Named slice types stay typed through the raw-block path.
	type keyList []uint64
	Register[keyList]()
	kl := keyList{3, 1, 4}
	if got := roundtrip(t, kl); !reflect.DeepEqual(got, kl) {
		t.Fatalf("named slice roundtrip: %T %v", got, got)
	}

	// Aligned+alias frame roundtrip for the memmovable struct slice.
	stream := encodeFrameStyle(t, pairs, 4, 1)
	got, _, aliased, err := NewReader().DecodePayloadOpt(stream, DecodeOptions{Aligned: true, Alias: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pairs) {
		t.Fatalf("aligned pair roundtrip: %v", got)
	}
	_ = aliased // alignment of the test buffer is not guaranteed; value equality is what matters
}

func TestEmptyAggregatedFrame(t *testing.T) {
	// An aggregated chunk message whose chunks are all empty — the
	// degenerate frame the delivery plans can produce — must roundtrip
	// through the aligned frame path without pads, views, or errors.
	payload := []vecChunk{{data: []uint64{}}, {data: nil}, {data: []uint64{}}}
	stream := encodeFrameStyle(t, payload, 4, 1)
	got, rest, aliased, err := NewReader().DecodePayloadOpt(stream, DecodeOptions{Aligned: true, Alias: true})
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (rest %d)", err, len(rest))
	}
	if aliased {
		t.Fatal("empty chunks must not alias the frame buffer")
	}
	if !reflect.DeepEqual(got, payload) {
		t.Fatalf("empty aggregate: %#v", got)
	}
	// Nil payload: the smallest frame of all.
	segs, err := NewWriter().AppendPayloadVec(nil, nil, VecOptions{Aligned: true, MinSpan: 1})
	if err != nil || len(segs) != 1 {
		t.Fatalf("nil payload: %v (%d segs)", err, len(segs))
	}
	gotNil, _, _, err := NewReader().DecodePayloadOpt(segs[0], DecodeOptions{Aligned: true, Alias: true})
	if err != nil || gotNil != nil {
		t.Fatalf("nil payload decoded to %v (%v)", gotNil, err)
	}
}

func TestReaderGrowOneAllocationPerFrame(t *testing.T) {
	// Copy-mode decodes carve from the arena: after Grow(frame size),
	// every chunk of the frame must come out of one block — adjacent
	// carves, no per-chunk allocations.
	payload := []vecChunk{{data: []uint64{1, 2, 3}}, {data: []uint64{4, 5}}, {data: []uint64{6}}}
	stream, err := NewWriter().AppendPayload(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader()
	r.Grow(len(stream))
	base := uintptr(unsafe.Pointer(&r.arena[0]))
	limit := base + uintptr(len(r.arena))
	got, _, _, err := r.DecodePayloadOpt(stream, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chunks := got.([]vecChunk)
	if !reflect.DeepEqual(chunks, payload) {
		t.Fatalf("roundtrip: %v", chunks)
	}
	// All three chunks must live inside the pre-grown block.
	for i, ch := range chunks {
		p := uintptr(unsafe.Pointer(&ch.data[0]))
		if p < base || p >= limit {
			t.Fatalf("chunk %d was not carved from the pre-grown arena block", i)
		}
	}
}
