package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// testTagged mirrors the shape of core's tagged sample wrapper:
// a struct with unexported fields, one generic.
type testTagged struct {
	key uint64
	pe  int32
	idx int32
}

// testChunk mirrors delivery's chunk: an unexported slice field.
type testChunk struct {
	data []uint64
}

// testNested exercises every supported kind at once.
type testNested struct {
	b    bool
	i    int
	i64  int64
	u32  uint32
	f    float64
	s    string
	tags []testTagged
	grid [][]int64
	arr  [3]uint64
	ptr  *testChunk
}

func roundtrip(t *testing.T, payload any) any {
	t.Helper()
	w, r := NewWriter(), NewReader()
	buf, err := w.AppendPayload(nil, payload)
	if err != nil {
		t.Fatalf("encode %T: %v", payload, err)
	}
	got, rest, err := r.DecodePayload(buf)
	if err != nil {
		t.Fatalf("decode %T: %v", payload, err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode %T left %d trailing bytes", payload, len(rest))
	}
	return got
}

func TestRoundtripBasics(t *testing.T) {
	cases := []any{
		true, false,
		int(-123456), int8(-5), int16(300), int32(-70000), int64(math.MinInt64),
		uint(77), uint8(255), uint16(65535), uint32(1 << 30), uint64(math.MaxUint64),
		float32(3.5), float64(-2.25), math.NaN(),
		"", "splitter",
		[]uint64{}, []uint64{1, 2, 3}, []uint64(nil),
		[]int64{-1, 0, 1}, []int64(nil),
		[]int{5, -5}, []byte{0xde, 0xad}, []string{"a", ""},
	}
	for _, c := range cases {
		got := roundtrip(t, c)
		if f, ok := c.(float64); ok && math.IsNaN(f) {
			if !math.IsNaN(got.(float64)) {
				t.Errorf("NaN did not survive: %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, c) {
			t.Errorf("roundtrip(%T %v) = %T %v", c, c, got, got)
		}
	}
}

func TestRoundtripNil(t *testing.T) {
	if got := roundtrip(t, nil); got != nil {
		t.Fatalf("nil payload decoded to %T %v", got, got)
	}
	// Typed nil slices stay typed and nil (some collectives branch on
	// nil-ness of what they receive).
	got := roundtrip(t, []uint64(nil))
	s, ok := got.([]uint64)
	if !ok || s != nil {
		t.Fatalf("typed nil slice decoded to %T %v", got, got)
	}
}

func TestRoundtripStructs(t *testing.T) {
	Register[testTagged]()
	Register[[]testTagged]()
	Register[testChunk]()
	Register[[]testChunk]()
	Register[testNested]()

	tag := testTagged{key: 42, pe: 3, idx: -9}
	if got := roundtrip(t, tag); got != tag {
		t.Fatalf("tagged: %v != %v", got, tag)
	}
	tags := []testTagged{{1, 2, 3}, {4, 5, 6}}
	if got := roundtrip(t, tags); !reflect.DeepEqual(got, tags) {
		t.Fatalf("tagged slice: %v != %v", got, tags)
	}
	chunks := []testChunk{{data: []uint64{9, 8}}, {data: nil}, {data: []uint64{}}}
	got := roundtrip(t, chunks).([]testChunk)
	if !reflect.DeepEqual(got, chunks) {
		t.Fatalf("chunks: %v != %v", got, chunks)
	}
	if got[1].data != nil || got[2].data == nil {
		t.Fatalf("chunk nil-ness not preserved: %#v", got)
	}

	n := testNested{
		b: true, i: -7, i64: 1 << 40, u32: 9, f: 0.5, s: "x",
		tags: tags,
		grid: [][]int64{{1}, nil, {}},
		arr:  [3]uint64{7, 8, 9},
		ptr:  &testChunk{data: []uint64{1}},
	}
	gotN := roundtrip(t, n).(testNested)
	if !reflect.DeepEqual(gotN, n) {
		t.Fatalf("nested: %+v != %+v", gotN, n)
	}
	n.ptr = nil
	gotN = roundtrip(t, n).(testNested)
	if gotN.ptr != nil {
		t.Fatalf("nil pointer not preserved")
	}
}

func TestUnregisteredTypeErrors(t *testing.T) {
	type unregistered struct{ x int }
	w := NewWriter()
	if _, err := w.AppendPayload(nil, unregistered{1}); err == nil {
		t.Fatal("encoding an unregistered type must error")
	}
}

func TestUnknownNameErrors(t *testing.T) {
	var buf []byte
	buf = binary.AppendUvarint(buf, refInline)
	name := "nosuch.type"
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	if _, _, err := NewReader().DecodePayload(buf); err == nil {
		t.Fatal("decoding an unknown wire name must error")
	}
}

func TestInterning(t *testing.T) {
	w, r := NewWriter(), NewReader()
	first, err := w.AppendPayload(nil, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	second, err := w.AppendPayload(nil, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(second) >= len(first) {
		t.Fatalf("second message (%d bytes) should be smaller than the first (%d): the name must be interned", len(second), len(first))
	}
	for i, msg := range [][]byte{first, second} {
		got, rest, err := r.DecodePayload(msg)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decode message %d: %v (rest %d)", i, err, len(rest))
		}
		if !reflect.DeepEqual(got, []uint64{1}) {
			t.Fatalf("message %d: %v", i, got)
		}
	}
}

func TestFastPathMatchesStructuralCodec(t *testing.T) {
	// The Writer's type-switch fast paths must produce the same bytes
	// as the reflection codec, or streams would diverge between paths.
	for _, payload := range []any{[]uint64{3, 1 << 50}, []int64{-2, 5}, uint64(7), int64(-7), int(99)} {
		w := NewWriter()
		fast, err := w.AppendPayload(nil, payload)
		if err != nil {
			t.Fatal(err)
		}
		e := lookupType(reflect.TypeOf(payload))
		enc, _, err := e.codec()
		if err != nil {
			t.Fatal(err)
		}
		pv := reflect.New(e.t).Elem()
		pv.Set(reflect.ValueOf(payload))
		// Rebuild the type-reference prefix, then the structural value
		// bytes, and compare against the fast path's full message.
		var ref []byte
		ref = binary.AppendUvarint(ref, refInline)
		ref = binary.AppendUvarint(ref, uint64(len(e.name)))
		ref = append(ref, e.name...)
		ref = enc(&encEnv{}, ref, pv)
		if !bytes.Equal(fast, ref) {
			t.Errorf("%T: fast path bytes %x != structural %x", payload, fast, ref)
		}
	}
}

type doubleEncoder struct{}

func (doubleEncoder) Append(dst []byte, elem any) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(elem.(customKey))*2)
}

func (doubleEncoder) Decode(src []byte) (any, []byte, error) {
	if len(src) < 8 {
		return nil, nil, fmt.Errorf("short")
	}
	return customKey(binary.LittleEndian.Uint64(src) / 2), src[8:], nil
}

type customKey uint64

type customWrapper struct {
	key customKey
	pe  int32
}

func TestCustomEncoderHook(t *testing.T) {
	RegisterEncoder[customKey](doubleEncoder{})
	Register[[]customKey]()
	Register[customWrapper]()

	got := roundtrip(t, []customKey{1, 2, 3})
	if !reflect.DeepEqual(got, []customKey{1, 2, 3}) {
		t.Fatalf("custom slice: %v", got)
	}
	// The hook must also apply nested inside registered structs.
	wrap := customWrapper{key: 21, pe: 4}
	if got := roundtrip(t, wrap); got != wrap {
		t.Fatalf("custom nested: %v != %v", got, wrap)
	}
	// ... and for a bare element as the top-level payload (validation
	// chains send single elements), with the hook's own byte format.
	if got := roundtrip(t, customKey(5)); got != customKey(5) {
		t.Fatalf("custom top-level: %v", got)
	}
	w := NewWriter()
	buf, err := w.AppendPayload(nil, customKey(5))
	if err != nil {
		t.Fatal(err)
	}
	if want := binary.LittleEndian.AppendUint64(nil, 10); !bytes.HasSuffix(buf, want) {
		t.Fatalf("top-level custom payload did not go through the hook: %x", buf)
	}
}

func TestNameCollisionPanics(t *testing.T) {
	// Two distinct types under one wire name is a deployment error
	// (mismatched binaries); it must fail loudly, not corrupt streams.
	// Real types cannot collide within one build, so inject a fake
	// entry under int's name and restore it afterwards.
	t.Cleanup(func() {
		registry.mu.Lock()
		registry.byName["int"] = registry.byType[reflect.TypeOf(0)]
		registry.mu.Unlock()
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on name collision")
		}
	}()
	fake := reflect.StructOf([]reflect.StructField{{Name: "X", Type: reflect.TypeOf(0)}})
	registry.mu.Lock()
	registry.byName["int"] = &entry{t: fake, name: "int"}
	registry.mu.Unlock()
	RegisterType(reflect.TypeOf(0))
}

type lateKey uint64

type lateHookEncoder struct{}

func (lateHookEncoder) Append(dst []byte, elem any) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(elem.(lateKey)))
}

func (lateHookEncoder) Decode(src []byte) (any, []byte, error) {
	return lateKey(binary.LittleEndian.Uint64(src)), src[8:], nil
}

// TestLateEncoderHookPanics: installing a hook after the structural
// format was already compiled into use (even only nested inside another
// type) would silently desynchronize peers, so it must panic instead.
func TestLateEncoderHookPanics(t *testing.T) {
	type lateWrapper struct {
		k lateKey
	}
	Register[lateWrapper]()
	if got := roundtrip(t, lateWrapper{k: 7}); got != (lateWrapper{k: 7}) {
		t.Fatalf("structural roundtrip: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering a hook after structural use")
		}
	}()
	RegisterEncoder[lateKey](lateHookEncoder{})
}
