// Package wire is the typed binary codec of the TCP backend
// (internal/netcomm): it turns the payload values the sorting algorithms
// hand to Communicator.Send — element slices, tagged sample slices,
// splitter vectors, count/prefix arrays, delivery descriptors — into
// self-describing, length-prefixed bytes and back.
//
// Every concrete payload type is registered once (Register / the
// RegisterWire helpers of the algorithm packages); registration records
// the type under a stable wire name (its Go type string) and compiles an
// encoder/decoder pair for it by walking its structure with reflection —
// scalars, strings, slices, arrays, pointers, and structs (including
// unexported fields) are supported. Element types the structural codec
// cannot handle (or that need a custom layout) plug in through the
// Encoder hook, which user code reaches via Config.Encoder.
//
// Bulk data: slices whose element type is "memmove-safe" — uint64,
// int64, float64, and arrays/padding-free structs composed of those,
// i.e. types whose little-endian wire encoding coincides with their
// in-memory layout — move as single raw blocks instead of per-element
// walks. On top of that, the transport-facing entry points support a
// zero-copy discipline (DESIGN.md §10):
//
//   - AppendPayloadVec emits the encoding as a segment list in which
//     large bulk blocks are *views of the payload itself* (no staging
//     copy; the transport writes them with vectored I/O), and — in
//     aligned mode — pads each bulk block so its bytes land 8-aligned
//     relative to the frame body.
//   - DecodePayloadOpt, in aliasing mode, decodes aligned bulk blocks
//     as sub-slices of the input buffer (no copy, no allocation) and
//     reports that the payload now aliases src so the transport can
//     hand the buffer off instead of reusing it. Non-aliased bulk
//     decodes carve exactly-sized copies out of a per-Reader bump
//     arena (blocks are abandoned, never recycled, so payloads stay
//     safe to retain indefinitely).
//
// Messages are self-describing: the first time a type crosses a stream
// its wire name is sent inline and both ends intern it under a small
// dense id; subsequent messages carry only the id. A Writer/Reader pair
// therefore needs no out-of-band schema negotiation beyond both
// processes having registered the same types — which they have, because
// every process runs the same algorithm and registration happens at the
// algorithm entry points before any message is sent.
//
// The format uses little-endian fixed 8-byte encodings for int64/uint64
// (the bulk data) and varints for lengths, tags, and small integers.
// It is not self-delimiting at the value level; framing (length
// prefixes) is the transport's job.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
	"unsafe"
)

// Encoder is the custom element-codec hook: a fallback for user element
// types the structural codec cannot handle (types containing pointers
// into shared state, maps, interfaces, or platform-dependent layout).
// Register it for the element type with RegisterEncoder, or let the
// sorters do it from Config.Encoder. Append and Decode must be inverses
// and deterministic: conformance across backends requires identical
// bytes for identical values.
type Encoder interface {
	// Append serializes elem (always of the registered type) onto dst.
	Append(dst []byte, elem any) []byte
	// Decode parses one element off src and returns it together with
	// the remaining bytes. The returned element must NOT retain src —
	// transports reuse the frame buffer, so an aliasing sub-slice would
	// silently mutate after delivery; copy any bytes the element keeps.
	// (The built-in structural codec only returns views of src in the
	// transport's explicit aliasing mode, never through a hook.)
	Decode(src []byte) (elem any, rest []byte, err error)
}

// encEnv is the per-call state threaded through the compiled encoders:
// segment collection for vectored output, and the running stream offset
// for bulk alignment. The zero value is plain single-buffer mode.
type encEnv struct {
	// segs collects completed segments in vectored mode (nil otherwise).
	// Bulk blocks >= minSpan are appended as views of the payload.
	segs    [][]byte
	minSpan int
	// off is the stream offset of the current working segment's first
	// byte, relative to the alignment origin (may be negative when the
	// caller's dst prefix precedes the origin).
	off int
	vec bool
	// aligned inserts a pad before every non-empty bulk block so its
	// bytes start 8-aligned relative to the alignment origin.
	aligned bool
}

// bulk appends one raw block, applying alignment padding and the
// vectored-span policy. Returns the new working segment.
func (e *encEnv) bulk(dst []byte, raw []byte) []byte {
	if e.aligned && len(raw) > 0 {
		// One pad-count byte, then 0..7 zeros, so raw lands 8-aligned.
		off := e.off + len(dst) + 1
		pad := ((-off)%8 + 8) % 8
		dst = append(dst, byte(pad))
		for i := 0; i < pad; i++ {
			dst = append(dst, 0)
		}
	}
	if e.vec && len(raw) >= e.minSpan {
		e.off += len(dst) + len(raw)
		e.segs = append(e.segs, dst, raw)
		return nil // fresh working segment
	}
	return append(dst, raw...)
}

// decEnv is the per-call state threaded through the compiled decoders.
// The zero value (with a nil reader) is plain copying mode.
type decEnv struct {
	// aligned: bulk blocks carry the pad emitted by an aligned encoder.
	aligned bool
	// alias: bulk decodes may return views of src instead of copies.
	alias bool
	// aliased reports that at least one view of src was returned.
	aliased bool
	// r supplies the bump arena for copied bulk decodes (nil: exact
	// allocations).
	r *Reader
}

// carve returns n bytes of 8-aligned, never-recycled memory: from the
// reader's bump arena when available, an exact allocation otherwise.
func (e *decEnv) carve(n int) []byte {
	if e.r != nil {
		return e.r.carve(n)
	}
	return make([]byte, n)
}

// encFunc appends v's encoding to the working segment. v is addressable
// and writable (unexported fields are laundered by the struct walker).
type encFunc func(e *encEnv, dst []byte, v reflect.Value) []byte

// decFunc decodes one value off src into the addressable, settable v.
type decFunc func(e *decEnv, src []byte, v reflect.Value) ([]byte, error)

// entry is one registered payload type. Entries are created once and
// then only mutated (never replaced in the registry): Readers intern
// *entry pointers per stream, so replacement would desynchronize a
// stream's decoder from the sender's encoder.
type entry struct {
	t    reflect.Type
	name string

	mu       sync.Mutex
	custom   Encoder // non-nil: the type encodes through the hook
	compiled bool    // a codec embedding this type's format exists

	once sync.Once
	enc  encFunc
	dec  decFunc
	err  error
}

// codec compiles the entry's encoder/decoder pair on first use. Lazy
// compilation keeps registration infallible: a type that can never be
// serialized only errors if a serializing backend actually sends it.
func (e *entry) codec() (encFunc, decFunc, error) {
	e.once.Do(func() {
		e.mu.Lock()
		e.compiled = true
		custom := e.custom
		e.mu.Unlock()
		if custom != nil {
			// Hooked types use their hook at the top level too, so a
			// bare element payload and a nested one share one format.
			e.enc, e.dec, e.err = buildCustom(custom)
			return
		}
		e.enc, e.dec, e.err = build(e.t)
	})
	return e.enc, e.dec, e.err
}

// markCompiled records that a compiled codec (this type's own, or one
// of a type embedding it) has fixed this type's wire format, and
// returns the hook in force. After this point the format must never
// change.
func (e *entry) markCompiled() Encoder {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.compiled = true
	return e.custom
}

// setCustom installs the hook codec. The first hook wins; installing
// one after the structural format was already compiled into use would
// silently desynchronize peers, so it panics instead.
func (e *entry) setCustom(enc Encoder) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.custom != nil {
		return // keep the first hook: codecs may already embed it
	}
	if e.compiled {
		panic(fmt.Sprintf("wire: Encoder for %v registered after its structural codec was already used — set Config.Encoder before the first serialized sort of this element type", e.t))
	}
	e.custom = enc
}

// hooked reports whether a custom Encoder is installed for the type.
func (e *entry) hooked() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.custom != nil
}

var registry struct {
	mu     sync.RWMutex
	byType map[reflect.Type]*entry
	byName map[string]*entry
}

func init() {
	registry.byType = make(map[reflect.Type]*entry)
	registry.byName = make(map[string]*entry)

	registerBasics[bool]()
	registerBasics[int]()
	registerBasics[int8]()
	registerBasics[int16]()
	registerBasics[int32]()
	registerBasics[int64]()
	registerBasics[uint]()
	registerBasics[uint8]()
	registerBasics[uint16]()
	registerBasics[uint32]()
	registerBasics[uint64]()
	registerBasics[float32]()
	registerBasics[float64]()
	registerBasics[string]()
}

func registerBasics[T any]() {
	Register[T]()
	Register[[]T]()
}

// Register makes T usable as a top-level payload on serializing
// backends, keyed by its wire name (the Go type string). Registration is
// idempotent and cheap (no codec is compiled until first use), so
// algorithm entry points call it unconditionally on every invocation.
func Register[T any]() {
	RegisterType(reflect.TypeOf((*T)(nil)).Elem())
}

// RegisterType is Register for a reflect.Type.
func RegisterType(t reflect.Type) {
	registerInternal(t, nil)
}

// RegisterEncoder registers T with a custom element codec. The hook
// replaces the structural codec for T everywhere — as a top-level
// payload and nested inside slices and structs (tagged samples, delivery
// chunks) alike.
func RegisterEncoder[T any](enc Encoder) {
	if enc == nil {
		panic("wire: RegisterEncoder with nil Encoder")
	}
	registerInternal(reflect.TypeOf((*T)(nil)).Elem(), enc)
}

func registerInternal(t reflect.Type, custom Encoder) {
	name := t.String()
	registry.mu.RLock()
	e := registry.byName[name]
	registry.mu.RUnlock()
	if e == nil {
		registry.mu.Lock()
		if e = registry.byName[name]; e == nil {
			e = &entry{t: t, name: name}
			registry.byType[t] = e
			registry.byName[name] = e
		}
		registry.mu.Unlock()
	}
	if e.t != t {
		panic(fmt.Sprintf("wire: name collision: %q maps to both %v and %v", name, e.t, t))
	}
	if custom != nil {
		e.setCustom(custom)
	}
}

func lookupType(t reflect.Type) *entry {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return registry.byType[t]
}

func lookupName(name string) *entry {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return registry.byName[name]
}

// ---------------------------------------------------------------------
// Codec compilation.

// launder returns a fully usable view of a struct field value:
// unexported fields come out of reflect read-only, so re-derive the
// value from its address. The parent is always addressable here.
func launder(fv reflect.Value) reflect.Value {
	if fv.CanSet() {
		return fv
	}
	return reflect.NewAt(fv.Type(), unsafe.Pointer(fv.UnsafeAddr())).Elem()
}

// build compiles the encoder/decoder pair for t.
func build(t reflect.Type) (encFunc, decFunc, error) {
	return buildRec(t, make(map[reflect.Type]bool), true)
}

// buildRec walks t's structure. top marks the registered root: nested
// occurrences of registered hook types defer to their hook, so user
// element types embedded in tagged/chunk wrappers round-trip through the
// same custom codec as top-level ones.
func buildRec(t reflect.Type, inProgress map[reflect.Type]bool, top bool) (encFunc, decFunc, error) {
	if !top {
		// A nested type contributes its format to this codec: register
		// it if needed and pin it (hook or structural), so a later hook
		// registration for it fails loudly instead of desynchronizing
		// peers whose composite codecs already embedded the structural
		// format.
		e := lookupType(t)
		if e == nil {
			registerInternal(t, nil)
			e = lookupType(t)
		}
		if hook := e.markCompiled(); hook != nil {
			return buildCustom(hook)
		}
	}
	if inProgress[t] {
		return nil, nil, fmt.Errorf("wire: recursive type %v is not supported", t)
	}
	inProgress[t] = true
	defer delete(inProgress, t)

	switch t.Kind() {
	case reflect.Bool:
		enc := func(_ *encEnv, dst []byte, v reflect.Value) []byte {
			if v.Bool() {
				return append(dst, 1)
			}
			return append(dst, 0)
		}
		dec := func(_ *decEnv, src []byte, v reflect.Value) ([]byte, error) {
			if len(src) < 1 {
				return nil, errTruncated(t)
			}
			v.SetBool(src[0] != 0)
			return src[1:], nil
		}
		return enc, dec, nil

	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32:
		enc := func(_ *encEnv, dst []byte, v reflect.Value) []byte {
			return appendZigzag(dst, v.Int())
		}
		dec := func(_ *decEnv, src []byte, v reflect.Value) ([]byte, error) {
			x, rest, err := readZigzag(src, t)
			if err != nil {
				return nil, err
			}
			v.SetInt(x)
			return rest, nil
		}
		return enc, dec, nil

	case reflect.Int64:
		enc := func(_ *encEnv, dst []byte, v reflect.Value) []byte {
			return binary.LittleEndian.AppendUint64(dst, uint64(v.Int()))
		}
		dec := func(_ *decEnv, src []byte, v reflect.Value) ([]byte, error) {
			if len(src) < 8 {
				return nil, errTruncated(t)
			}
			v.SetInt(int64(binary.LittleEndian.Uint64(src)))
			return src[8:], nil
		}
		return enc, dec, nil

	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32:
		enc := func(_ *encEnv, dst []byte, v reflect.Value) []byte {
			return binary.AppendUvarint(dst, v.Uint())
		}
		dec := func(_ *decEnv, src []byte, v reflect.Value) ([]byte, error) {
			x, rest, err := readUvarint(src, t)
			if err != nil {
				return nil, err
			}
			v.SetUint(x)
			return rest, nil
		}
		return enc, dec, nil

	case reflect.Uint64:
		enc := func(_ *encEnv, dst []byte, v reflect.Value) []byte {
			return binary.LittleEndian.AppendUint64(dst, v.Uint())
		}
		dec := func(_ *decEnv, src []byte, v reflect.Value) ([]byte, error) {
			if len(src) < 8 {
				return nil, errTruncated(t)
			}
			v.SetUint(binary.LittleEndian.Uint64(src))
			return src[8:], nil
		}
		return enc, dec, nil

	case reflect.Float32:
		enc := func(_ *encEnv, dst []byte, v reflect.Value) []byte {
			return binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v.Float())))
		}
		dec := func(_ *decEnv, src []byte, v reflect.Value) ([]byte, error) {
			if len(src) < 4 {
				return nil, errTruncated(t)
			}
			v.SetFloat(float64(math.Float32frombits(binary.LittleEndian.Uint32(src))))
			return src[4:], nil
		}
		return enc, dec, nil

	case reflect.Float64:
		enc := func(_ *encEnv, dst []byte, v reflect.Value) []byte {
			return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float()))
		}
		dec := func(_ *decEnv, src []byte, v reflect.Value) ([]byte, error) {
			if len(src) < 8 {
				return nil, errTruncated(t)
			}
			v.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(src)))
			return src[8:], nil
		}
		return enc, dec, nil

	case reflect.String:
		enc := func(_ *encEnv, dst []byte, v reflect.Value) []byte {
			s := v.String()
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			return append(dst, s...)
		}
		dec := func(_ *decEnv, src []byte, v reflect.Value) ([]byte, error) {
			n, rest, err := readUvarint(src, t)
			if err != nil {
				return nil, err
			}
			if uint64(len(rest)) < n {
				return nil, errTruncated(t)
			}
			v.SetString(string(rest[:n]))
			return rest[n:], nil
		}
		return enc, dec, nil

	case reflect.Slice:
		return buildSlice(t, inProgress)

	case reflect.Array:
		elemEnc, elemDec, err := buildRec(t.Elem(), inProgress, false)
		if err != nil {
			return nil, nil, err
		}
		n := t.Len()
		enc := func(e *encEnv, dst []byte, v reflect.Value) []byte {
			for i := 0; i < n; i++ {
				dst = elemEnc(e, dst, v.Index(i))
			}
			return dst
		}
		dec := func(e *decEnv, src []byte, v reflect.Value) ([]byte, error) {
			var err error
			for i := 0; i < n; i++ {
				if src, err = elemDec(e, src, v.Index(i)); err != nil {
					return nil, err
				}
			}
			return src, nil
		}
		return enc, dec, nil

	case reflect.Pointer:
		elemEnc, elemDec, err := buildRec(t.Elem(), inProgress, false)
		if err != nil {
			return nil, nil, err
		}
		elemT := t.Elem()
		enc := func(e *encEnv, dst []byte, v reflect.Value) []byte {
			if v.IsNil() {
				return append(dst, 0)
			}
			return elemEnc(e, append(dst, 1), v.Elem())
		}
		dec := func(e *decEnv, src []byte, v reflect.Value) ([]byte, error) {
			if len(src) < 1 {
				return nil, errTruncated(t)
			}
			tag := src[0]
			src = src[1:]
			if tag == 0 {
				v.SetZero()
				return src, nil
			}
			p := reflect.New(elemT)
			src, err := elemDec(e, src, p.Elem())
			if err != nil {
				return nil, err
			}
			v.Set(p)
			return src, nil
		}
		return enc, dec, nil

	case reflect.Struct:
		type field struct {
			idx int
			enc encFunc
			dec decFunc
		}
		fields := make([]field, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			fe, fd, err := buildRec(t.Field(i).Type, inProgress, false)
			if err != nil {
				return nil, nil, fmt.Errorf("%v field %s: %w", t, t.Field(i).Name, err)
			}
			fields = append(fields, field{idx: i, enc: fe, dec: fd})
		}
		enc := func(e *encEnv, dst []byte, v reflect.Value) []byte {
			for _, f := range fields {
				dst = f.enc(e, dst, launder(v.Field(f.idx)))
			}
			return dst
		}
		dec := func(e *decEnv, src []byte, v reflect.Value) ([]byte, error) {
			var err error
			for _, f := range fields {
				if src, err = f.dec(e, src, launder(v.Field(f.idx))); err != nil {
					return nil, err
				}
			}
			return src, nil
		}
		return enc, dec, nil
	}
	return nil, nil, fmt.Errorf("wire: type %v (kind %v) is not serializable — register a wire.Encoder for the element type (Config.Encoder)", t, t.Kind())
}

// memmoveSize returns the element size of a memmove-safe type: one
// whose structural wire encoding (little-endian, fields in order, no
// length prefixes) is byte-identical to its in-memory layout on a
// little-endian host. Those are the 8-byte word scalars and any
// arrays/structs composed exclusively of them — all fields 8-byte, so
// the compiler inserts no padding. Returns 0 for everything else.
func memmoveSize(t reflect.Type) int {
	switch t.Kind() {
	case reflect.Uint64, reflect.Int64, reflect.Float64:
		return 8
	case reflect.Array:
		if s := memmoveSize(t.Elem()); s > 0 {
			return s * t.Len()
		}
	case reflect.Struct:
		sum := 0
		for i := 0; i < t.NumField(); i++ {
			s := memmoveSize(t.Field(i).Type)
			if s == 0 {
				return 0
			}
			sum += s
		}
		// Paranoia: the bulk move is only valid if the in-memory size
		// matches the wire size exactly (no padding, no reordering —
		// both guaranteed for all-8-byte fields, but cheap to assert).
		if sum > 0 && int(t.Size()) == sum {
			return sum
		}
	}
	return 0
}

// hookedDeep reports whether t or any of its components has a custom
// Encoder installed — in which case the raw bulk move would bypass the
// hook's format. Components were pinned (markCompiled) by the caller's
// buildRec walk, so a later hook registration panics instead of
// silently diverging from this decision.
func hookedDeep(t reflect.Type) bool {
	if e := lookupType(t); e != nil && e.hooked() {
		return true
	}
	switch t.Kind() {
	case reflect.Array:
		return hookedDeep(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hookedDeep(t.Field(i).Type) {
				return true
			}
		}
	}
	return false
}

// buildSlice compiles a slice codec: uvarint(0) for nil, uvarint(len+1)
// then the elements otherwise (nil-ness is preserved exactly — some
// collectives distinguish nil from empty). Slices of memmove-safe
// elements ([]uint64, []int64, delivery chunk data, pair structs …)
// move as single raw blocks with optional alignment pads and zero-copy
// views; []byte keeps its dedicated raw-block format.
func buildSlice(t reflect.Type, inProgress map[reflect.Type]bool) (encFunc, decFunc, error) {
	if t == typByteSlice {
		enc := func(_ *encEnv, dst []byte, v reflect.Value) []byte {
			s := *(*[]byte)(addrOf(v))
			if s == nil {
				return binary.AppendUvarint(dst, 0)
			}
			dst = binary.AppendUvarint(dst, uint64(len(s))+1)
			return append(dst, s...)
		}
		dec := func(_ *decEnv, src []byte, v reflect.Value) ([]byte, error) {
			n, rest, err := sliceLen(src, t)
			if err != nil || n < 0 {
				v.SetZero()
				return rest, err
			}
			if len(rest) < n {
				return nil, errTruncated(t)
			}
			out := make([]byte, n)
			copy(out, rest)
			v.Set(reflect.ValueOf(out))
			return rest[n:], nil
		}
		return enc, dec, nil
	}

	elemEnc, elemDec, err := buildRec(t.Elem(), inProgress, false)
	if err != nil {
		return nil, nil, err
	}
	if size := memmoveSize(t.Elem()); size > 0 && !hookedDeep(t.Elem()) {
		enc, dec := bulkSliceCodec(t, size, elemDec)
		return enc, dec, nil
	}

	enc := func(e *encEnv, dst []byte, v reflect.Value) []byte {
		if v.IsNil() {
			return binary.AppendUvarint(dst, 0)
		}
		n := v.Len()
		dst = binary.AppendUvarint(dst, uint64(n)+1)
		for i := 0; i < n; i++ {
			dst = elemEnc(e, dst, v.Index(i))
		}
		return dst
	}
	dec := func(e *decEnv, src []byte, v reflect.Value) ([]byte, error) {
		n, rest, err := sliceLen(src, t)
		if err != nil || n < 0 {
			v.SetZero()
			return rest, err
		}
		// Cap the up-front allocation: a corrupt length must not OOM.
		capHint := n
		if capHint > 1<<16 {
			capHint = 1 << 16
		}
		out := reflect.MakeSlice(t, 0, capHint)
		elem := reflect.New(t.Elem()).Elem()
		for i := 0; i < n; i++ {
			elem.SetZero()
			if rest, err = elemDec(e, rest, elem); err != nil {
				return nil, err
			}
			out = reflect.Append(out, elem)
		}
		v.Set(out)
		return rest, nil
	}
	return enc, dec, nil
}

// bulkSliceCodec returns the raw-block codec for a slice of memmove-safe
// elements. Wire format: uvarint(len+1), then — in aligned mode and for
// non-empty slices — one pad-count byte and 0..7 zeros so the block
// starts 8-aligned relative to the frame body, then len·size raw
// little-endian bytes. elemDec is the per-element structural decoder,
// used as the fallback on big-endian hosts (where raw bytes must be
// byte-shuffled, not memmoved).
func bulkSliceCodec(t reflect.Type, size int, elemDec decFunc) (encFunc, decFunc) {
	elemT := t.Elem()
	enc := func(e *encEnv, dst []byte, v reflect.Value) []byte {
		if v.IsNil() {
			return binary.AppendUvarint(dst, 0)
		}
		n := v.Len()
		dst = binary.AppendUvarint(dst, uint64(n)+1)
		if n == 0 {
			return dst
		}
		if hostLE {
			return e.bulk(dst, rawView(v, n*size))
		}
		// Big-endian host: per-element encode produces the same bytes.
		// The pad discipline must match the LE decoder's expectations,
		// but aligned mode is only requested on LE hosts (the transport
		// checks HostLittleEndian), so no pad is emitted here.
		for i := 0; i < n; i++ {
			dst = appendBE(dst, v.Index(i))
		}
		return dst
	}
	dec := func(e *decEnv, src []byte, v reflect.Value) ([]byte, error) {
		n, rest, err := sliceLen(src, t)
		if err != nil || n < 0 {
			v.SetZero()
			return rest, err
		}
		if n == 0 {
			v.Set(reflect.MakeSlice(t, 0, 0)) // non-nil: nil-ness is encoded separately
			return rest, nil
		}
		if e.aligned {
			if len(rest) < 1 {
				return nil, errTruncated(t)
			}
			pad := int(rest[0])
			if pad > 7 || len(rest) < 1+pad {
				return nil, fmt.Errorf("wire: corrupt bulk pad decoding %v", t)
			}
			rest = rest[1+pad:]
		}
		need := n * size
		if n > maxSliceLen/size || len(rest) < need {
			return nil, errTruncated(t)
		}
		raw := rest[:need]
		// setView writes a raw-memory view into v, converting for named
		// slice types (SliceAt yields the unnamed []elem type).
		setView := func(p unsafe.Pointer) {
			s := reflect.SliceAt(elemT, p, n)
			if s.Type() != t {
				s = s.Convert(t)
			}
			v.Set(s)
		}
		switch {
		case hostLE && e.alias && uintptr(unsafe.Pointer(&raw[0]))%8 == 0:
			// Zero-copy: the decoded slice is a view of src. The caller
			// must hand the buffer off (Reader reports it via aliased).
			setView(unsafe.Pointer(&raw[0]))
			e.aliased = true
		case hostLE:
			buf := e.carve(need)
			copy(buf, raw)
			setView(unsafe.Pointer(&buf[0]))
		default:
			out := reflect.MakeSlice(t, n, n)
			s := raw
			var err error
			for i := 0; i < n; i++ {
				if s, err = elemDec(e, s, out.Index(i)); err != nil {
					return nil, err
				}
			}
			v.Set(out)
		}
		return rest[need:], nil
	}
	return enc, dec
}

// appendBE encodes one memmove-safe value field-by-field (the big-endian
// fallback of the bulk path; bytes match the LE raw block exactly).
func appendBE(dst []byte, v reflect.Value) []byte {
	switch v.Kind() {
	case reflect.Uint64:
		return binary.LittleEndian.AppendUint64(dst, v.Uint())
	case reflect.Int64:
		return binary.LittleEndian.AppendUint64(dst, uint64(v.Int()))
	case reflect.Float64:
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float()))
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			dst = appendBE(dst, v.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			dst = appendBE(dst, launder(v.Field(i)))
		}
	}
	return dst
}

// rawView returns the first n bytes of v's backing array as a []byte
// (v is an addressable non-empty slice of pointer-free elements).
func rawView(v reflect.Value, n int) []byte {
	return unsafe.Slice((*byte)(v.UnsafePointer()), n)
}

func buildCustom(hook Encoder) (encFunc, decFunc, error) {
	enc := func(_ *encEnv, dst []byte, v reflect.Value) []byte {
		return hook.Append(dst, v.Interface())
	}
	dec := func(_ *decEnv, src []byte, v reflect.Value) ([]byte, error) {
		elem, rest, err := hook.Decode(src)
		if err != nil {
			return nil, err
		}
		v.Set(reflect.ValueOf(elem))
		return rest, nil
	}
	return enc, dec, nil
}

// addrOf returns the address of the (addressable) value's data.
func addrOf(v reflect.Value) unsafe.Pointer {
	return v.Addr().UnsafePointer()
}

// maxSliceLen bounds decoded slice lengths: no legitimate payload can
// carry more elements than a frame has bytes (the transport caps frames
// at 1 GiB), so anything larger is corruption and must error instead of
// attempting a huge allocation or overflowing length arithmetic.
const maxSliceLen = 1 << 31

// sliceLen reads a slice length prefix: -1 means nil.
func sliceLen(src []byte, t reflect.Type) (int, []byte, error) {
	n, rest, err := readUvarint(src, t)
	if err != nil {
		return 0, nil, err
	}
	if n == 0 {
		return -1, rest, nil
	}
	if n-1 > maxSliceLen {
		return 0, nil, fmt.Errorf("wire: corrupt length %d decoding %v", n-1, t)
	}
	return int(n - 1), rest, nil
}

func appendZigzag(dst []byte, x int64) []byte {
	return binary.AppendUvarint(dst, uint64(x<<1)^uint64(x>>63))
}

func readZigzag(src []byte, t reflect.Type) (int64, []byte, error) {
	u, rest, err := readUvarint(src, t)
	if err != nil {
		return 0, nil, err
	}
	return int64(u>>1) ^ -int64(u&1), rest, nil
}

func readUvarint(src []byte, t reflect.Type) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, errTruncated(t)
	}
	return v, src[n:], nil
}

func errTruncated(t reflect.Type) error {
	return fmt.Errorf("wire: truncated input decoding %v", t)
}

// ---------------------------------------------------------------------
// Bulk helpers (the []uint64/[]int64 fast-path building blocks, exported
// for the micro-benchmarks and kept as the canonical format reference).

// hostLE reports whether this machine is little-endian — the wire byte
// order — in which case the bulk blocks move with single memmoves (or
// zero-copy views) instead of per-word byte shuffles.
var hostLE = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// HostLittleEndian reports whether this host's memory layout matches
// the wire byte order. Transports use it to decide whether to request
// aligned (zero-copy capable) frame encodings.
func HostLittleEndian() bool { return hostLE }

// wordBytes views a word slice as its raw bytes (for the memmove fast
// paths; only valid on little-endian hosts).
func wordBytes[W uint64 | int64](s []W) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
}

// AppendU64s appends the plain-mode slice codec encoding of s.
func AppendU64s(dst []byte, s []uint64) []byte {
	if s == nil {
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s))+1)
	if hostLE {
		return append(dst, wordBytes(s)...)
	}
	off := len(dst)
	dst = append(dst, make([]byte, 8*len(s))...)
	for i, x := range s {
		binary.LittleEndian.PutUint64(dst[off+8*i:], x)
	}
	return dst
}

// DecodeU64s decodes a plain-mode slice codec encoding of []uint64.
// The output never aliases src.
func DecodeU64s(src []byte) ([]uint64, []byte, error) {
	n, rest, err := sliceLen(src, typU64Slice)
	if err != nil || n < 0 {
		return nil, rest, err
	}
	if n > len(rest)/8 {
		return nil, nil, errTruncated(typU64Slice)
	}
	out := make([]uint64, n)
	if hostLE {
		copy(wordBytes(out), rest[:8*n])
	} else {
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(rest[8*i:])
		}
	}
	return out, rest[8*n:], nil
}

// AppendI64s appends the plain-mode slice codec encoding of s.
func AppendI64s(dst []byte, s []int64) []byte {
	if s == nil {
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s))+1)
	if hostLE {
		return append(dst, wordBytes(s)...)
	}
	off := len(dst)
	dst = append(dst, make([]byte, 8*len(s))...)
	for i, x := range s {
		binary.LittleEndian.PutUint64(dst[off+8*i:], uint64(x))
	}
	return dst
}

// DecodeI64s decodes a plain-mode slice codec encoding of []int64.
// The output never aliases src.
func DecodeI64s(src []byte) ([]int64, []byte, error) {
	n, rest, err := sliceLen(src, typI64Slice)
	if err != nil || n < 0 {
		return nil, rest, err
	}
	if n > len(rest)/8 {
		return nil, nil, errTruncated(typI64Slice)
	}
	out := make([]int64, n)
	if hostLE {
		copy(wordBytes(out), rest[:8*n])
	} else {
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(rest[8*i:]))
		}
	}
	return out, rest[8*n:], nil
}

var (
	typU64Slice  = reflect.TypeOf([]uint64(nil))
	typI64Slice  = reflect.TypeOf([]int64(nil))
	typByteSlice = reflect.TypeOf([]byte(nil))
)

// ---------------------------------------------------------------------
// Stream codec: per-stream type-name interning.

// Payload type references on the wire. Ids are assigned in first-use
// order per stream, identically on both ends.
const (
	refNil    = 0 // nil payload, no value bytes
	refInline = 1 // wire name string follows; id = next free id
	refBase   = 2 // first interned id
)

// Writer is the encoding half of one stream. Not safe for concurrent
// use; the transport owns one per connection.
type Writer struct {
	ids  map[reflect.Type]uint64
	next uint64
}

// NewWriter returns a Writer with an empty interning table.
func NewWriter() *Writer {
	return &Writer{ids: make(map[reflect.Type]uint64), next: refBase}
}

// appendRef appends the payload's type reference and returns its entry.
func (w *Writer) appendRef(dst []byte, t reflect.Type) ([]byte, *entry, error) {
	if id, ok := w.ids[t]; ok {
		return binary.AppendUvarint(dst, id), lookupType(t), nil
	}
	e := lookupType(t)
	if e == nil {
		return nil, nil, fmt.Errorf("wire: unregistered payload type %v — register it with wire.Register (or Config.Encoder for custom elements)", t)
	}
	w.ids[t] = w.next
	w.next++
	dst = binary.AppendUvarint(dst, refInline)
	dst = binary.AppendUvarint(dst, uint64(len(e.name)))
	dst = append(dst, e.name...)
	return dst, e, nil
}

// AppendPayload appends the self-describing plain-mode encoding of
// payload: one contiguous buffer, no alignment pads, no views.
func (w *Writer) AppendPayload(dst []byte, payload any) ([]byte, error) {
	if payload == nil {
		return binary.AppendUvarint(dst, refNil), nil
	}
	t := reflect.TypeOf(payload)
	dst, e, err := w.appendRef(dst, t)
	if err != nil {
		return nil, err
	}

	// Fast paths for the hottest payloads, bypassing reflection; the
	// bytes are identical to the structural codec's plain mode.
	switch p := payload.(type) {
	case []uint64:
		return AppendU64s(dst, p), nil
	case []int64:
		return AppendI64s(dst, p), nil
	case uint64:
		return binary.LittleEndian.AppendUint64(dst, p), nil
	case int64:
		return binary.LittleEndian.AppendUint64(dst, uint64(p)), nil
	case int:
		return appendZigzag(dst, int64(p)), nil
	}

	enc, _, err := e.codec()
	if err != nil {
		return nil, err
	}
	rv := reflect.ValueOf(payload)
	// Top-level values from an interface are not addressable; the codec
	// needs addressability (unexported-field laundering), so copy the
	// header into a fresh addressable value.
	pv := reflect.New(t).Elem()
	pv.Set(rv)
	var env encEnv
	return enc(&env, dst, pv), nil
}

// VecOptions tunes AppendPayloadVec.
type VecOptions struct {
	// Aligned inserts pads so bulk blocks start 8-aligned relative to
	// the alignment origin (the frame body). Request it only on
	// little-endian hosts (HostLittleEndian) and record it in the frame
	// so the receiver parses the pads.
	Aligned bool
	// AlignBase is the length of the dst prefix that precedes the
	// alignment origin (the transport's frame length prefix).
	AlignBase int
	// MinSpan is the smallest bulk block emitted as a zero-copy view of
	// the payload; smaller blocks are copied into the working segment.
	// 0 disables vectored output entirely.
	MinSpan int
}

// AppendPayloadVec appends the self-describing encoding of payload as a
// segment list: segs[0] starts with dst's existing bytes, and bulk
// blocks of at least opt.MinSpan bytes appear as views of the payload
// itself — no staging copy; the transport writes the segments with
// vectored I/O. The payload must stay immutable until the write
// completes (the Communicator post-Send contract). The concatenation of
// the segments is byte-identical to what a single-buffer encode with
// the same alignment mode would produce.
func (w *Writer) AppendPayloadVec(dst []byte, payload any, opt VecOptions) ([][]byte, error) {
	if payload == nil {
		return [][]byte{binary.AppendUvarint(dst, refNil)}, nil
	}
	t := reflect.TypeOf(payload)
	dst, e, err := w.appendRef(dst, t)
	if err != nil {
		return nil, err
	}
	enc, _, err := e.codec()
	if err != nil {
		return nil, err
	}
	pv := reflect.New(t).Elem()
	pv.Set(reflect.ValueOf(payload))
	env := encEnv{
		vec:     opt.MinSpan > 0,
		minSpan: opt.MinSpan,
		aligned: opt.Aligned,
		off:     -opt.AlignBase,
	}
	last := enc(&env, dst, pv)
	if len(env.segs) == 0 {
		return [][]byte{last}, nil
	}
	if len(last) > 0 {
		return append(env.segs, last), nil
	}
	return env.segs, nil
}

// Reader is the decoding half of one stream. Not safe for concurrent
// use; the transport owns one per connection.
type Reader struct {
	entries []*entry
	// arena is the bump allocator for copied bulk decodes: carved
	// blocks are exactly sized, 8-aligned, and never reused — a
	// retained payload merely pins its block. Grow pre-sizes the arena
	// from the frame length so one frame's bulk decodes share one
	// allocation.
	arena []byte
}

// NewReader returns a Reader with an empty interning table.
func NewReader() *Reader {
	return &Reader{}
}

// arenaBlock is the minimum bump-arena block size (64 KiB), so streams
// of small payloads amortize allocations across many frames.
const arenaBlock = 1 << 16

// Grow ensures the arena can serve n more bytes from one contiguous
// block. Transports call it with the frame length before decoding a
// frame whose bulk data will be copied (not aliased), making the whole
// frame's chunk decodes carve from a single allocation.
func (r *Reader) Grow(n int) {
	if len(r.arena) < n {
		r.arena = make([]byte, max(n, arenaBlock))
	}
}

// carve returns n bytes of never-recycled memory, 8-aligned.
func (r *Reader) carve(n int) []byte {
	rounded := (n + 7) &^ 7
	if len(r.arena) < rounded {
		r.arena = make([]byte, max(rounded, arenaBlock))
	}
	out := r.arena[:n:n]
	r.arena = r.arena[rounded:]
	return out
}

// DecodeOptions tunes DecodePayloadOpt.
type DecodeOptions struct {
	// Aligned: the sender encoded with VecOptions.Aligned (bulk blocks
	// carry pads). Recorded per frame by the transport.
	Aligned bool
	// Alias permits bulk decodes to return views of src. The caller
	// must then treat src as owned by the decoded payload whenever
	// aliased comes back true (hand the buffer off, never reuse it).
	Alias bool
}

// DecodePayloadOpt decodes one self-describing payload off src and
// returns it with the remaining bytes. aliased reports whether any part
// of the payload is a view of src.
func (r *Reader) DecodePayloadOpt(src []byte, opt DecodeOptions) (payload any, rest []byte, aliased bool, err error) {
	ref, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, nil, false, fmt.Errorf("wire: truncated payload type reference")
	}
	src = src[n:]
	var e *entry
	switch {
	case ref == refNil:
		return nil, src, false, nil
	case ref == refInline:
		ln, n := binary.Uvarint(src)
		if n <= 0 || uint64(len(src)-n) < ln {
			return nil, nil, false, fmt.Errorf("wire: truncated payload type name")
		}
		name := string(src[n : n+int(ln)])
		src = src[n+int(ln):]
		e = lookupName(name)
		if e == nil {
			return nil, nil, false, fmt.Errorf("wire: received unregistered type %q — the processes must register the same payload types", name)
		}
		r.entries = append(r.entries, e)
	default:
		idx := ref - refBase
		if idx >= uint64(len(r.entries)) {
			return nil, nil, false, fmt.Errorf("wire: payload references unknown interned type id %d", ref)
		}
		e = r.entries[idx]
	}

	_, dec, err := e.codec()
	if err != nil {
		return nil, nil, false, err
	}
	env := decEnv{aligned: opt.Aligned, alias: opt.Alias, r: r}
	pv := reflect.New(e.t).Elem()
	rest, err = dec(&env, src, pv)
	if err != nil {
		return nil, nil, false, err
	}
	return pv.Interface(), rest, env.aliased, nil
}

// DecodePayload decodes one self-describing plain-mode payload off src
// and returns it with the remaining bytes. The payload never aliases
// src (the mode chaos and the tests use; transports use
// DecodePayloadOpt with an explicit buffer-handoff discipline).
func (r *Reader) DecodePayload(src []byte) (any, []byte, error) {
	payload, rest, _, err := r.DecodePayloadOpt(src, DecodeOptions{})
	return payload, rest, err
}
