// Package wire is the typed binary codec of the TCP backend
// (internal/netcomm): it turns the payload values the sorting algorithms
// hand to Communicator.Send — element slices, tagged sample slices,
// splitter vectors, count/prefix arrays, delivery descriptors — into
// self-describing, length-prefixed bytes and back.
//
// Every concrete payload type is registered once (Register / the
// RegisterWire helpers of the algorithm packages); registration records
// the type under a stable wire name (its Go type string) and compiles an
// encoder/decoder pair for it by walking its structure with reflection —
// scalars, strings, slices, arrays, pointers, and structs (including
// unexported fields) are supported, with bulk fast paths for []uint64,
// []int64, and []byte. Element types the structural codec cannot handle
// (or that need a custom layout) plug in through the Encoder hook, which
// user code reaches via Config.Encoder.
//
// Messages are self-describing: the first time a type crosses a stream
// its wire name is sent inline and both ends intern it under a small
// dense id; subsequent messages carry only the id. A Writer/Reader pair
// therefore needs no out-of-band schema negotiation beyond both
// processes having registered the same types — which they have, because
// every process runs the same algorithm and registration happens at the
// algorithm entry points before any message is sent.
//
// The format uses little-endian fixed 8-byte encodings for int64/uint64
// (the bulk data) and varints for lengths, tags, and small integers.
// It is not self-delimiting at the value level; framing (length
// prefixes) is the transport's job.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
	"unsafe"
)

// Encoder is the custom element-codec hook: a fallback for user element
// types the structural codec cannot handle (types containing pointers
// into shared state, maps, interfaces, or platform-dependent layout).
// Register it for the element type with RegisterEncoder, or let the
// sorters do it from Config.Encoder. Append and Decode must be inverses
// and deterministic: conformance across backends requires identical
// bytes for identical values.
type Encoder interface {
	// Append serializes elem (always of the registered type) onto dst.
	Append(dst []byte, elem any) []byte
	// Decode parses one element off src and returns it together with
	// the remaining bytes. The returned element must NOT retain src —
	// transports reuse the frame buffer, so an aliasing sub-slice would
	// silently mutate after delivery; copy any bytes the element keeps.
	// (The built-in structural codec always copies.)
	Decode(src []byte) (elem any, rest []byte, err error)
}

// encFunc appends v's encoding to dst. v is addressable and writable
// (unexported fields are laundered by the struct walker).
type encFunc func(dst []byte, v reflect.Value) []byte

// decFunc decodes one value off src into the addressable, settable v.
type decFunc func(src []byte, v reflect.Value) ([]byte, error)

// entry is one registered payload type. Entries are created once and
// then only mutated (never replaced in the registry): Readers intern
// *entry pointers per stream, so replacement would desynchronize a
// stream's decoder from the sender's encoder.
type entry struct {
	t    reflect.Type
	name string

	mu       sync.Mutex
	custom   Encoder // non-nil: the type encodes through the hook
	compiled bool    // a codec embedding this type's format exists

	once sync.Once
	enc  encFunc
	dec  decFunc
	err  error
}

// codec compiles the entry's encoder/decoder pair on first use. Lazy
// compilation keeps registration infallible: a type that can never be
// serialized only errors if a serializing backend actually sends it.
func (e *entry) codec() (encFunc, decFunc, error) {
	e.once.Do(func() {
		e.mu.Lock()
		e.compiled = true
		custom := e.custom
		e.mu.Unlock()
		if custom != nil {
			// Hooked types use their hook at the top level too, so a
			// bare element payload and a nested one share one format.
			e.enc, e.dec, e.err = buildCustom(custom)
			return
		}
		e.enc, e.dec, e.err = build(e.t)
	})
	return e.enc, e.dec, e.err
}

// markCompiled records that a compiled codec (this type's own, or one
// of a type embedding it) has fixed this type's wire format, and
// returns the hook in force. After this point the format must never
// change.
func (e *entry) markCompiled() Encoder {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.compiled = true
	return e.custom
}

// setCustom installs the hook codec. The first hook wins; installing
// one after the structural format was already compiled into use would
// silently desynchronize peers, so it panics instead.
func (e *entry) setCustom(enc Encoder) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.custom != nil {
		return // keep the first hook: codecs may already embed it
	}
	if e.compiled {
		panic(fmt.Sprintf("wire: Encoder for %v registered after its structural codec was already used — set Config.Encoder before the first serialized sort of this element type", e.t))
	}
	e.custom = enc
}

var registry struct {
	mu     sync.RWMutex
	byType map[reflect.Type]*entry
	byName map[string]*entry
}

func init() {
	registry.byType = make(map[reflect.Type]*entry)
	registry.byName = make(map[string]*entry)

	registerBasics[bool]()
	registerBasics[int]()
	registerBasics[int8]()
	registerBasics[int16]()
	registerBasics[int32]()
	registerBasics[int64]()
	registerBasics[uint]()
	registerBasics[uint8]()
	registerBasics[uint16]()
	registerBasics[uint32]()
	registerBasics[uint64]()
	registerBasics[float32]()
	registerBasics[float64]()
	registerBasics[string]()
}

func registerBasics[T any]() {
	Register[T]()
	Register[[]T]()
}

// Register makes T usable as a top-level payload on serializing
// backends, keyed by its wire name (the Go type string). Registration is
// idempotent and cheap (no codec is compiled until first use), so
// algorithm entry points call it unconditionally on every invocation.
func Register[T any]() {
	RegisterType(reflect.TypeOf((*T)(nil)).Elem())
}

// RegisterType is Register for a reflect.Type.
func RegisterType(t reflect.Type) {
	registerInternal(t, nil)
}

// RegisterEncoder registers T with a custom element codec. The hook
// replaces the structural codec for T everywhere — as a top-level
// payload and nested inside slices and structs (tagged samples, delivery
// chunks) alike.
func RegisterEncoder[T any](enc Encoder) {
	if enc == nil {
		panic("wire: RegisterEncoder with nil Encoder")
	}
	registerInternal(reflect.TypeOf((*T)(nil)).Elem(), enc)
}

func registerInternal(t reflect.Type, custom Encoder) {
	name := t.String()
	registry.mu.RLock()
	e := registry.byName[name]
	registry.mu.RUnlock()
	if e == nil {
		registry.mu.Lock()
		if e = registry.byName[name]; e == nil {
			e = &entry{t: t, name: name}
			registry.byType[t] = e
			registry.byName[name] = e
		}
		registry.mu.Unlock()
	}
	if e.t != t {
		panic(fmt.Sprintf("wire: name collision: %q maps to both %v and %v", name, e.t, t))
	}
	if custom != nil {
		e.setCustom(custom)
	}
}

func lookupType(t reflect.Type) *entry {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return registry.byType[t]
}

func lookupName(name string) *entry {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return registry.byName[name]
}

// ---------------------------------------------------------------------
// Codec compilation.

// launder returns a fully usable view of a struct field value:
// unexported fields come out of reflect read-only, so re-derive the
// value from its address. The parent is always addressable here.
func launder(fv reflect.Value) reflect.Value {
	if fv.CanSet() {
		return fv
	}
	return reflect.NewAt(fv.Type(), unsafe.Pointer(fv.UnsafeAddr())).Elem()
}

var (
	typU64Slice  = reflect.TypeOf([]uint64(nil))
	typI64Slice  = reflect.TypeOf([]int64(nil))
	typByteSlice = reflect.TypeOf([]byte(nil))
)

// build compiles the encoder/decoder pair for t.
func build(t reflect.Type) (encFunc, decFunc, error) {
	return buildRec(t, make(map[reflect.Type]bool), true)
}

// buildRec walks t's structure. top marks the registered root: nested
// occurrences of registered hook types defer to their hook, so user
// element types embedded in tagged/chunk wrappers round-trip through the
// same custom codec as top-level ones.
func buildRec(t reflect.Type, inProgress map[reflect.Type]bool, top bool) (encFunc, decFunc, error) {
	if !top {
		// A nested type contributes its format to this codec: register
		// it if needed and pin it (hook or structural), so a later hook
		// registration for it fails loudly instead of desynchronizing
		// peers whose composite codecs already embedded the structural
		// format.
		e := lookupType(t)
		if e == nil {
			registerInternal(t, nil)
			e = lookupType(t)
		}
		if hook := e.markCompiled(); hook != nil {
			return buildCustom(hook)
		}
	}
	if inProgress[t] {
		return nil, nil, fmt.Errorf("wire: recursive type %v is not supported", t)
	}
	inProgress[t] = true
	defer delete(inProgress, t)

	switch t.Kind() {
	case reflect.Bool:
		enc := func(dst []byte, v reflect.Value) []byte {
			if v.Bool() {
				return append(dst, 1)
			}
			return append(dst, 0)
		}
		dec := func(src []byte, v reflect.Value) ([]byte, error) {
			if len(src) < 1 {
				return nil, errTruncated(t)
			}
			v.SetBool(src[0] != 0)
			return src[1:], nil
		}
		return enc, dec, nil

	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32:
		enc := func(dst []byte, v reflect.Value) []byte {
			return appendZigzag(dst, v.Int())
		}
		dec := func(src []byte, v reflect.Value) ([]byte, error) {
			x, rest, err := readZigzag(src, t)
			if err != nil {
				return nil, err
			}
			v.SetInt(x)
			return rest, nil
		}
		return enc, dec, nil

	case reflect.Int64:
		enc := func(dst []byte, v reflect.Value) []byte {
			return binary.LittleEndian.AppendUint64(dst, uint64(v.Int()))
		}
		dec := func(src []byte, v reflect.Value) ([]byte, error) {
			if len(src) < 8 {
				return nil, errTruncated(t)
			}
			v.SetInt(int64(binary.LittleEndian.Uint64(src)))
			return src[8:], nil
		}
		return enc, dec, nil

	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32:
		enc := func(dst []byte, v reflect.Value) []byte {
			return binary.AppendUvarint(dst, v.Uint())
		}
		dec := func(src []byte, v reflect.Value) ([]byte, error) {
			x, rest, err := readUvarint(src, t)
			if err != nil {
				return nil, err
			}
			v.SetUint(x)
			return rest, nil
		}
		return enc, dec, nil

	case reflect.Uint64:
		enc := func(dst []byte, v reflect.Value) []byte {
			return binary.LittleEndian.AppendUint64(dst, v.Uint())
		}
		dec := func(src []byte, v reflect.Value) ([]byte, error) {
			if len(src) < 8 {
				return nil, errTruncated(t)
			}
			v.SetUint(binary.LittleEndian.Uint64(src))
			return src[8:], nil
		}
		return enc, dec, nil

	case reflect.Float32:
		enc := func(dst []byte, v reflect.Value) []byte {
			return binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v.Float())))
		}
		dec := func(src []byte, v reflect.Value) ([]byte, error) {
			if len(src) < 4 {
				return nil, errTruncated(t)
			}
			v.SetFloat(float64(math.Float32frombits(binary.LittleEndian.Uint32(src))))
			return src[4:], nil
		}
		return enc, dec, nil

	case reflect.Float64:
		enc := func(dst []byte, v reflect.Value) []byte {
			return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float()))
		}
		dec := func(src []byte, v reflect.Value) ([]byte, error) {
			if len(src) < 8 {
				return nil, errTruncated(t)
			}
			v.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(src)))
			return src[8:], nil
		}
		return enc, dec, nil

	case reflect.String:
		enc := func(dst []byte, v reflect.Value) []byte {
			s := v.String()
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			return append(dst, s...)
		}
		dec := func(src []byte, v reflect.Value) ([]byte, error) {
			n, rest, err := readUvarint(src, t)
			if err != nil {
				return nil, err
			}
			if uint64(len(rest)) < n {
				return nil, errTruncated(t)
			}
			v.SetString(string(rest[:n]))
			return rest[n:], nil
		}
		return enc, dec, nil

	case reflect.Slice:
		return buildSlice(t, inProgress)

	case reflect.Array:
		elemEnc, elemDec, err := buildRec(t.Elem(), inProgress, false)
		if err != nil {
			return nil, nil, err
		}
		n := t.Len()
		enc := func(dst []byte, v reflect.Value) []byte {
			for i := 0; i < n; i++ {
				dst = elemEnc(dst, v.Index(i))
			}
			return dst
		}
		dec := func(src []byte, v reflect.Value) ([]byte, error) {
			var err error
			for i := 0; i < n; i++ {
				if src, err = elemDec(src, v.Index(i)); err != nil {
					return nil, err
				}
			}
			return src, nil
		}
		return enc, dec, nil

	case reflect.Pointer:
		elemEnc, elemDec, err := buildRec(t.Elem(), inProgress, false)
		if err != nil {
			return nil, nil, err
		}
		elemT := t.Elem()
		enc := func(dst []byte, v reflect.Value) []byte {
			if v.IsNil() {
				return append(dst, 0)
			}
			return elemEnc(append(dst, 1), v.Elem())
		}
		dec := func(src []byte, v reflect.Value) ([]byte, error) {
			if len(src) < 1 {
				return nil, errTruncated(t)
			}
			tag := src[0]
			src = src[1:]
			if tag == 0 {
				v.SetZero()
				return src, nil
			}
			p := reflect.New(elemT)
			src, err := elemDec(src, p.Elem())
			if err != nil {
				return nil, err
			}
			v.Set(p)
			return src, nil
		}
		return enc, dec, nil

	case reflect.Struct:
		type field struct {
			idx int
			enc encFunc
			dec decFunc
		}
		fields := make([]field, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			fe, fd, err := buildRec(t.Field(i).Type, inProgress, false)
			if err != nil {
				return nil, nil, fmt.Errorf("%v field %s: %w", t, t.Field(i).Name, err)
			}
			fields = append(fields, field{idx: i, enc: fe, dec: fd})
		}
		enc := func(dst []byte, v reflect.Value) []byte {
			for _, f := range fields {
				dst = f.enc(dst, launder(v.Field(f.idx)))
			}
			return dst
		}
		dec := func(src []byte, v reflect.Value) ([]byte, error) {
			var err error
			for _, f := range fields {
				if src, err = f.dec(src, launder(v.Field(f.idx))); err != nil {
					return nil, err
				}
			}
			return src, nil
		}
		return enc, dec, nil
	}
	return nil, nil, fmt.Errorf("wire: type %v (kind %v) is not serializable — register a wire.Encoder for the element type (Config.Encoder)", t, t.Kind())
}

// buildSlice compiles a slice codec: uvarint(0) for nil, uvarint(len+1)
// then the elements otherwise (nil-ness is preserved exactly — some
// collectives distinguish nil from empty). []uint64, []int64, and
// []byte move as bulk little-endian blocks.
func buildSlice(t reflect.Type, inProgress map[reflect.Type]bool) (encFunc, decFunc, error) {
	switch t {
	case typU64Slice:
		enc := func(dst []byte, v reflect.Value) []byte {
			return AppendU64s(dst, *(*[]uint64)(addrOf(v)))
		}
		dec := func(src []byte, v reflect.Value) ([]byte, error) {
			s, rest, err := DecodeU64s(src)
			if err != nil {
				return nil, err
			}
			v.Set(reflect.ValueOf(s))
			return rest, nil
		}
		return enc, dec, nil
	case typI64Slice:
		enc := func(dst []byte, v reflect.Value) []byte {
			return AppendI64s(dst, *(*[]int64)(addrOf(v)))
		}
		dec := func(src []byte, v reflect.Value) ([]byte, error) {
			s, rest, err := DecodeI64s(src)
			if err != nil {
				return nil, err
			}
			v.Set(reflect.ValueOf(s))
			return rest, nil
		}
		return enc, dec, nil
	case typByteSlice:
		enc := func(dst []byte, v reflect.Value) []byte {
			s := *(*[]byte)(addrOf(v))
			if s == nil {
				return binary.AppendUvarint(dst, 0)
			}
			dst = binary.AppendUvarint(dst, uint64(len(s))+1)
			return append(dst, s...)
		}
		dec := func(src []byte, v reflect.Value) ([]byte, error) {
			n, rest, err := sliceLen(src, t)
			if err != nil || n < 0 {
				v.SetZero()
				return rest, err
			}
			if len(rest) < n {
				return nil, errTruncated(t)
			}
			out := make([]byte, n)
			copy(out, rest)
			v.Set(reflect.ValueOf(out))
			return rest[n:], nil
		}
		return enc, dec, nil
	}

	elemEnc, elemDec, err := buildRec(t.Elem(), inProgress, false)
	if err != nil {
		return nil, nil, err
	}
	enc := func(dst []byte, v reflect.Value) []byte {
		if v.IsNil() {
			return binary.AppendUvarint(dst, 0)
		}
		n := v.Len()
		dst = binary.AppendUvarint(dst, uint64(n)+1)
		for i := 0; i < n; i++ {
			dst = elemEnc(dst, v.Index(i))
		}
		return dst
	}
	dec := func(src []byte, v reflect.Value) ([]byte, error) {
		n, rest, err := sliceLen(src, t)
		if err != nil || n < 0 {
			v.SetZero()
			return rest, err
		}
		// Cap the up-front allocation: a corrupt length must not OOM.
		capHint := n
		if capHint > 1<<16 {
			capHint = 1 << 16
		}
		out := reflect.MakeSlice(t, 0, capHint)
		elem := reflect.New(t.Elem()).Elem()
		for i := 0; i < n; i++ {
			elem.SetZero()
			if rest, err = elemDec(rest, elem); err != nil {
				return nil, err
			}
			out = reflect.Append(out, elem)
		}
		v.Set(out)
		return rest, nil
	}
	return enc, dec, nil
}

func buildCustom(hook Encoder) (encFunc, decFunc, error) {
	enc := func(dst []byte, v reflect.Value) []byte {
		return hook.Append(dst, v.Interface())
	}
	dec := func(src []byte, v reflect.Value) ([]byte, error) {
		elem, rest, err := hook.Decode(src)
		if err != nil {
			return nil, err
		}
		v.Set(reflect.ValueOf(elem))
		return rest, nil
	}
	return enc, dec, nil
}

// addrOf returns the address of the (addressable) value's data.
func addrOf(v reflect.Value) unsafe.Pointer {
	return v.Addr().UnsafePointer()
}

// maxSliceLen bounds decoded slice lengths: no legitimate payload can
// carry more elements than a frame has bytes (the transport caps frames
// at 1 GiB), so anything larger is corruption and must error instead of
// attempting a huge allocation or overflowing length arithmetic.
const maxSliceLen = 1 << 31

// sliceLen reads a slice length prefix: -1 means nil.
func sliceLen(src []byte, t reflect.Type) (int, []byte, error) {
	n, rest, err := readUvarint(src, t)
	if err != nil {
		return 0, nil, err
	}
	if n == 0 {
		return -1, rest, nil
	}
	if n-1 > maxSliceLen {
		return 0, nil, fmt.Errorf("wire: corrupt length %d decoding %v", n-1, t)
	}
	return int(n - 1), rest, nil
}

func appendZigzag(dst []byte, x int64) []byte {
	return binary.AppendUvarint(dst, uint64(x<<1)^uint64(x>>63))
}

func readZigzag(src []byte, t reflect.Type) (int64, []byte, error) {
	u, rest, err := readUvarint(src, t)
	if err != nil {
		return 0, nil, err
	}
	return int64(u>>1) ^ -int64(u&1), rest, nil
}

func readUvarint(src []byte, t reflect.Type) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, errTruncated(t)
	}
	return v, src[n:], nil
}

func errTruncated(t reflect.Type) error {
	return fmt.Errorf("wire: truncated input decoding %v", t)
}

// ---------------------------------------------------------------------
// Bulk helpers (also the fast paths of the []uint64/[]int64 payloads —
// exported for the transport and the micro-benchmarks).

// hostLE reports whether this machine is little-endian — the wire byte
// order — in which case the bulk word blocks move with single memmoves
// instead of per-word byte shuffles.
var hostLE = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// wordBytes views a word slice as its raw bytes (for the memmove fast
// paths; only valid on little-endian hosts).
func wordBytes[W uint64 | int64](s []W) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
}

// AppendU64s appends the slice codec encoding of s.
func AppendU64s(dst []byte, s []uint64) []byte {
	if s == nil {
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s))+1)
	if hostLE {
		return append(dst, wordBytes(s)...)
	}
	off := len(dst)
	dst = append(dst, make([]byte, 8*len(s))...)
	for i, x := range s {
		binary.LittleEndian.PutUint64(dst[off+8*i:], x)
	}
	return dst
}

// DecodeU64s decodes a slice codec encoding of []uint64.
func DecodeU64s(src []byte) ([]uint64, []byte, error) {
	return decodeU64sInto(src, nil)
}

// decodeU64sInto decodes into the provided buffer when it is large
// enough (the Reader's arena), allocating otherwise. The output never
// aliases src — transports reuse the frame buffer.
func decodeU64sInto(src []byte, buf []uint64) ([]uint64, []byte, error) {
	n, rest, err := sliceLen(src, typU64Slice)
	if err != nil || n < 0 {
		return nil, rest, err
	}
	if n > len(rest)/8 {
		return nil, nil, errTruncated(typU64Slice)
	}
	var out []uint64
	switch {
	case n == 0:
		out = make([]uint64, 0) // non-nil: nil-ness is encoded separately
	case n <= len(buf):
		out = buf[:n:n]
	default:
		out = make([]uint64, n)
	}
	if hostLE {
		copy(wordBytes(out), rest[:8*n])
	} else {
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(rest[8*i:])
		}
	}
	return out, rest[8*n:], nil
}

// AppendI64s appends the slice codec encoding of s.
func AppendI64s(dst []byte, s []int64) []byte {
	if s == nil {
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(s))+1)
	if hostLE {
		return append(dst, wordBytes(s)...)
	}
	off := len(dst)
	dst = append(dst, make([]byte, 8*len(s))...)
	for i, x := range s {
		binary.LittleEndian.PutUint64(dst[off+8*i:], uint64(x))
	}
	return dst
}

// DecodeI64s decodes a slice codec encoding of []int64.
func DecodeI64s(src []byte) ([]int64, []byte, error) {
	return decodeI64sInto(src, nil)
}

func decodeI64sInto(src []byte, buf []int64) ([]int64, []byte, error) {
	n, rest, err := sliceLen(src, typI64Slice)
	if err != nil || n < 0 {
		return nil, rest, err
	}
	if n > len(rest)/8 {
		return nil, nil, errTruncated(typI64Slice)
	}
	var out []int64
	switch {
	case n == 0:
		out = make([]int64, 0) // non-nil: nil-ness is encoded separately
	case n <= len(buf):
		out = buf[:n:n]
	default:
		out = make([]int64, n)
	}
	if hostLE {
		copy(wordBytes(out), rest[:8*n])
	} else {
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(rest[8*i:]))
		}
	}
	return out, rest[8*n:], nil
}

// ---------------------------------------------------------------------
// Stream codec: per-stream type-name interning.

// Payload type references on the wire. Ids are assigned in first-use
// order per stream, identically on both ends.
const (
	refNil    = 0 // nil payload, no value bytes
	refInline = 1 // wire name string follows; id = next free id
	refBase   = 2 // first interned id
)

// Writer is the encoding half of one stream. Not safe for concurrent
// use; the transport owns one per connection.
type Writer struct {
	ids  map[reflect.Type]uint64
	next uint64
}

// NewWriter returns a Writer with an empty interning table.
func NewWriter() *Writer {
	return &Writer{ids: make(map[reflect.Type]uint64), next: refBase}
}

// AppendPayload appends the self-describing encoding of payload.
func (w *Writer) AppendPayload(dst []byte, payload any) ([]byte, error) {
	if payload == nil {
		return binary.AppendUvarint(dst, refNil), nil
	}
	t := reflect.TypeOf(payload)
	if id, ok := w.ids[t]; ok {
		dst = binary.AppendUvarint(dst, id)
	} else {
		e := lookupType(t)
		if e == nil {
			return nil, fmt.Errorf("wire: unregistered payload type %v — register it with wire.Register (or Config.Encoder for custom elements)", t)
		}
		w.ids[t] = w.next
		w.next++
		dst = binary.AppendUvarint(dst, refInline)
		dst = binary.AppendUvarint(dst, uint64(len(e.name)))
		dst = append(dst, e.name...)
	}

	// Bulk fast paths bypass reflection for the hot payloads. The bytes
	// are identical to the structural codec's.
	switch p := payload.(type) {
	case []uint64:
		return AppendU64s(dst, p), nil
	case []int64:
		return AppendI64s(dst, p), nil
	case uint64:
		return binary.LittleEndian.AppendUint64(dst, p), nil
	case int64:
		return binary.LittleEndian.AppendUint64(dst, uint64(p)), nil
	case int:
		return appendZigzag(dst, int64(p)), nil
	}

	e := lookupType(t)
	enc, _, err := e.codec()
	if err != nil {
		return nil, err
	}
	rv := reflect.ValueOf(payload)
	// Top-level values from an interface are not addressable; the codec
	// needs addressability (unexported-field laundering), so copy the
	// header into a fresh addressable value.
	pv := reflect.New(t).Elem()
	pv.Set(rv)
	return enc(dst, pv), nil
}

// Reader is the decoding half of one stream. Not safe for concurrent
// use; the transport owns one per connection.
type Reader struct {
	entries []*entry
	// u64buf/i64buf are bump arenas for the bulk word payloads: small
	// decodes carve their (exactly-sized, never-reused) output out of a
	// shared block instead of paying a make-and-zero each, which is
	// where the small-payload decode throughput went (BENCH_native:
	// 0.7 GB/s decode vs 4.7 GB/s encode at 1 KiB). Payloads stay safe
	// to retain indefinitely — blocks are abandoned, never recycled;
	// a retained payload merely pins at most one block.
	u64buf []uint64
	i64buf []int64
}

// NewReader returns a Reader with an empty interning table.
func NewReader() *Reader {
	return &Reader{}
}

// arenaBlock is the bump-arena block size in words (64 KiB). Payloads
// at least this large bypass the arena and get exact allocations.
const arenaBlock = 8192

// grabU64 returns arena capacity for a payload of up to n words, or nil
// to make the decoder allocate exactly.
func (r *Reader) grabU64(n int) []uint64 {
	if n >= arenaBlock {
		return nil
	}
	if len(r.u64buf) < n {
		r.u64buf = make([]uint64, arenaBlock)
	}
	return r.u64buf
}

func (r *Reader) grabI64(n int) []int64 {
	if n >= arenaBlock {
		return nil
	}
	if len(r.i64buf) < n {
		r.i64buf = make([]int64, arenaBlock)
	}
	return r.i64buf
}

// DecodePayload decodes one self-describing payload off src and returns
// it with the remaining bytes.
func (r *Reader) DecodePayload(src []byte) (any, []byte, error) {
	ref, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, nil, fmt.Errorf("wire: truncated payload type reference")
	}
	src = src[n:]
	var e *entry
	switch {
	case ref == refNil:
		return nil, src, nil
	case ref == refInline:
		ln, n := binary.Uvarint(src)
		if n <= 0 || uint64(len(src)-n) < ln {
			return nil, nil, fmt.Errorf("wire: truncated payload type name")
		}
		name := string(src[n : n+int(ln)])
		src = src[n+int(ln):]
		e = lookupName(name)
		if e == nil {
			return nil, nil, fmt.Errorf("wire: received unregistered type %q — the processes must register the same payload types", name)
		}
		r.entries = append(r.entries, e)
	default:
		idx := ref - refBase
		if idx >= uint64(len(r.entries)) {
			return nil, nil, fmt.Errorf("wire: payload references unknown interned type id %d", ref)
		}
		e = r.entries[idx]
	}

	switch e.t {
	case typU64Slice:
		n, _, err := sliceLen(src, typU64Slice)
		if err != nil {
			return nil, nil, err
		}
		buf := r.grabU64(n)
		s, rest, err := decodeU64sInto(src, buf)
		if err == nil && n > 0 && n <= len(buf) {
			r.u64buf = r.u64buf[n:] // s was carved out of the arena
		}
		return s, rest, err
	case typI64Slice:
		n, _, err := sliceLen(src, typI64Slice)
		if err != nil {
			return nil, nil, err
		}
		buf := r.grabI64(n)
		s, rest, err := decodeI64sInto(src, buf)
		if err == nil && n > 0 && n <= len(buf) {
			r.i64buf = r.i64buf[n:]
		}
		return s, rest, err
	}

	_, dec, err := e.codec()
	if err != nil {
		return nil, nil, err
	}
	pv := reflect.New(e.t).Elem()
	rest, err := dec(src, pv)
	if err != nil {
		return nil, nil, err
	}
	return pv.Interface(), rest, nil
}
