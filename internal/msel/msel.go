// Package msel implements distributed multisequence selection (paper
// §4.1): given one locally sorted sequence per PE and r target global
// ranks, it finds for every target a split position in each local
// sequence such that the positions sum to the target rank and all
// elements left of the splits precede all elements right of them.
//
// The algorithm is the vectorized quickselect adaptation from Figure 2:
// every round picks (for each unresolved target) a random pivot among the
// still-active elements — the same pivot on every PE, located through a
// prefix sum over active-interval sizes — and bisects the active
// intervals with local binary searches plus one vector-valued
// all-reduce. Duplicate keys are handled exactly: elements equal to the
// final pivot are split between left and right parts in (PE, position)
// order, which makes the selection consistent with the lexicographic
// (key, PE, position) tie-breaking of §2.
package msel

import (
	"pmsort/internal/coll"
	"pmsort/internal/comm"
	"pmsort/internal/prng"
	"pmsort/internal/seq"
	"pmsort/internal/wire"
)

// pivotSlot carries a pivot candidate through the pick-one all-reduce.
type pivotSlot[E any] struct {
	val E
	ok  bool
}

// RegisterWire registers the payload types a selection over E elements
// can put on a serializing backend. Idempotent.
func RegisterWire[E any]() {
	wire.Register[pivotSlot[E]]()
	wire.Register[[]pivotSlot[E]]()
	coll.RegisterWire[E]()
}

// Select returns, for each target rank k in targets (0 ≤ k ≤ N where N is
// the total number of elements over all PEs), a local split position
// pos[t] with Σ_PEs pos[t] = targets[t]. The collective must be called by
// all members of c with identical targets and seed; local must be sorted
// under less.
func Select[E any](c comm.Communicator, local []E, targets []int64, less func(a, b E) bool, seed uint64) []int {
	RegisterWire[E]()
	r := len(targets)
	pos := make([]int, r)
	if r == 0 {
		return pos
	}
	cost := c.Cost()
	rng := prng.New(seed) // identical stream on every PE

	lo := make([]int, r)
	hi := make([]int, r)
	k := make([]int64, r)
	done := make([]bool, r)
	for t := range targets {
		hi[t] = len(local)
		k[t] = targets[t]
	}

	addVec := func(a, b []int64) []int64 {
		out := make([]int64, len(a))
		for i := range a {
			out[i] = a[i] + b[i]
		}
		return out
	}
	pickVec := func(a, b []pivotSlot[E]) []pivotSlot[E] {
		out := make([]pivotSlot[E], len(a))
		for i := range a {
			if a[i].ok {
				out[i] = a[i]
			} else {
				out[i] = b[i]
			}
		}
		return out
	}

	remaining := r
	for remaining > 0 {
		// Active sizes and their prefix sums / totals.
		sz := make([]int64, r)
		for t := range sz {
			if !done[t] {
				sz[t] = int64(hi[t] - lo[t])
			}
		}
		prefix, total, hasPrefix := coll.ScanTotal(c, sz, int64(r), addVec)
		if !hasPrefix {
			prefix = make([]int64, r)
		}

		// Resolve degenerate targets and pick pivot positions for the rest.
		pivotPos := make([]int64, r) // global active offset of the pivot
		anyPivot := false
		for t := 0; t < r; t++ {
			if done[t] {
				continue
			}
			switch {
			case k[t] == 0:
				pos[t] = lo[t]
				done[t] = true
				remaining--
			case k[t] == total[t]:
				pos[t] = hi[t]
				done[t] = true
				remaining--
			default:
				// The same random draw happens on every PE.
				pivotPos[t] = int64(rng.Uint64n(uint64(total[t])))
				anyPivot = true
			}
		}
		if !anyPivot {
			continue
		}

		// Owner of each pivot contributes its value; all-reduce picks it.
		slots := make([]pivotSlot[E], r)
		for t := 0; t < r; t++ {
			if done[t] {
				continue
			}
			off := pivotPos[t] - prefix[t]
			if off >= 0 && off < sz[t] {
				slots[t] = pivotSlot[E]{val: local[lo[t]+int(off)], ok: true}
			}
		}
		pivots := coll.Allreduce(c, slots, int64(r), pickVec)

		// Local bisection: counts of active elements < pivot and ≤ pivot.
		counts := make([]int64, 2*r) // [less..., lessEq...]
		lb := make([]int, r)
		ub := make([]int, r)
		for t := 0; t < r; t++ {
			if done[t] {
				continue
			}
			act := local[lo[t]:hi[t]]
			lb[t] = lo[t] + seq.LowerBound(act, pivots[t].val, less)
			ub[t] = lo[t] + seq.UpperBound(act, pivots[t].val, less)
			counts[t] = int64(lb[t] - lo[t])
			counts[r+t] = int64(ub[t] - lo[t])
			cost.Ops(2 * int64(1+bitsLen(len(act))))
		}
		sums := coll.Allreduce(c, counts, int64(2*r), addVec)

		// Equality prefix sums for the targets that resolve this round.
		eq := make([]int64, r)
		resolving := make([]bool, r)
		for t := 0; t < r; t++ {
			if done[t] {
				continue
			}
			cntLess, cntLessEq := sums[t], sums[r+t]
			if k[t] > cntLess && k[t] <= cntLessEq {
				resolving[t] = true
				eq[t] = int64(ub[t] - lb[t])
			}
		}
		eqPrefix, hasEq := coll.ExScan(c, eq, int64(r), addVec)
		if !hasEq {
			eqPrefix = make([]int64, r)
		}

		for t := 0; t < r; t++ {
			if done[t] {
				continue
			}
			cntLess, cntLessEq := sums[t], sums[r+t]
			switch {
			case k[t] <= cntLess:
				hi[t] = lb[t]
			case k[t] > cntLessEq:
				lo[t] = ub[t]
				k[t] -= cntLessEq
			default:
				// The target rank falls inside the pivot's equality class:
				// hand out the k-cntLess equal elements in PE order.
				take := k[t] - cntLess - eqPrefix[t]
				if take < 0 {
					take = 0
				}
				if take > eq[t] {
					take = eq[t]
				}
				pos[t] = lb[t] + int(take)
				done[t] = true
				remaining--
			}
		}
	}
	return pos
}

// bitsLen returns the bit length of v (≈ log₂ for charging searches).
func bitsLen(v int) int64 {
	var l int64
	for v > 0 {
		v >>= 1
		l++
	}
	return l
}
