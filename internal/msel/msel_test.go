package msel

import (
	"math/rand"
	"sort"
	"testing"

	"pmsort/internal/sim"
)

func intLess(a, b int) bool { return a < b }

type tagged struct{ val, pe, idx int }

// checkSelection verifies that the selected positions are exactly the
// per-PE prefix lengths of the k smallest elements under lexicographic
// (value, PE, position) order — the paper's §2 tie-breaking scheme.
func checkSelection(t *testing.T, locals [][]int, targets []int64, allPos [][]int) {
	t.Helper()
	var all []tagged
	for pe, loc := range locals {
		for i, v := range loc {
			all = append(all, tagged{v, pe, i})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		x, y := all[a], all[b]
		if x.val != y.val {
			return x.val < y.val
		}
		if x.pe != y.pe {
			return x.pe < y.pe
		}
		return x.idx < y.idx
	})
	for ti, k := range targets {
		var sum int64
		for pe := range locals {
			sum += int64(allPos[pe][ti])
		}
		if sum != k {
			t.Fatalf("target %d: positions sum to %d", k, sum)
		}
		// Count per PE how many of its elements are among the k smallest.
		wantPrefix := make([]int, len(locals))
		for _, e := range all[:k] {
			wantPrefix[e.pe]++
		}
		for pe := range locals {
			if allPos[pe][ti] != wantPrefix[pe] {
				t.Fatalf("target %d PE %d: pos=%d want %d (locals=%v)",
					k, pe, allPos[pe][ti], wantPrefix[pe], locals)
			}
		}
	}
}

func runSelect(p int, locals [][]int, targets []int64, seed uint64) [][]int {
	m := sim.NewDefault(p)
	allPos := make([][]int, p)
	m.Run(func(pe *sim.PE) {
		c := sim.World(pe)
		allPos[pe.Rank()] = Select(c, locals[pe.Rank()], targets, intLess, seed)
	})
	return allPos
}

func TestSelectRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
		for trial := 0; trial < 8; trial++ {
			locals := make([][]int, p)
			var n int64
			for i := range locals {
				sz := rng.Intn(30)
				loc := make([]int, sz)
				for j := range loc {
					loc[j] = rng.Intn(1000)
				}
				sort.Ints(loc)
				locals[i] = loc
				n += int64(sz)
			}
			numTargets := 1 + rng.Intn(5)
			targets := make([]int64, numTargets)
			for i := range targets {
				targets[i] = rng.Int63n(n + 1)
			}
			allPos := runSelect(p, locals, targets, uint64(trial))
			checkSelection(t, locals, targets, allPos)
		}
	}
}

// TestSelectHeavyDuplicates is the hard case: tiny key space, so the
// equality-class splitting must be exact.
func TestSelectHeavyDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, p := range []int{2, 4, 8} {
		for trial := 0; trial < 10; trial++ {
			locals := make([][]int, p)
			var n int64
			for i := range locals {
				sz := rng.Intn(40)
				loc := make([]int, sz)
				for j := range loc {
					loc[j] = rng.Intn(3) // keys in {0,1,2}
				}
				sort.Ints(loc)
				locals[i] = loc
				n += int64(sz)
			}
			if n == 0 {
				continue
			}
			targets := []int64{0, n / 4, n / 2, 3 * n / 4, n}
			allPos := runSelect(p, locals, targets, uint64(trial)*7)
			checkSelection(t, locals, targets, allPos)
		}
	}
}

func TestSelectAllEqual(t *testing.T) {
	const p = 4
	locals := make([][]int, p)
	for i := range locals {
		locals[i] = []int{5, 5, 5, 5, 5}
	}
	targets := []int64{0, 1, 7, 13, 20}
	allPos := runSelect(p, locals, targets, 3)
	checkSelection(t, locals, targets, allPos)
}

func TestSelectEmptyPEs(t *testing.T) {
	locals := [][]int{{}, {1, 2, 3}, {}, {4, 5}, {}}
	targets := []int64{0, 2, 5}
	allPos := runSelect(5, locals, targets, 4)
	checkSelection(t, locals, targets, allPos)
}

func TestSelectAllEmpty(t *testing.T) {
	locals := [][]int{{}, {}, {}}
	targets := []int64{0}
	allPos := runSelect(3, locals, targets, 5)
	checkSelection(t, locals, targets, allPos)
}

func TestSelectNoTargets(t *testing.T) {
	locals := [][]int{{1}, {2}}
	allPos := runSelect(2, locals, nil, 6)
	for _, pos := range allPos {
		if len(pos) != 0 {
			t.Fatalf("expected empty positions, got %v", pos)
		}
	}
}

// TestSelectManyTargets exercises the vectorized path with r much larger
// than the usual handful (simultaneous selections share pivot rounds).
func TestSelectManyTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const p = 8
	locals := make([][]int, p)
	var n int64
	for i := range locals {
		loc := make([]int, 100)
		for j := range loc {
			loc[j] = rng.Intn(500)
		}
		sort.Ints(loc)
		locals[i] = loc
		n += 100
	}
	targets := make([]int64, 32)
	for i := range targets {
		targets[i] = n * int64(i) / 32
	}
	allPos := runSelect(p, locals, targets, 9)
	checkSelection(t, locals, targets, allPos)
}

// TestSelectDeterministic: same inputs and seed give identical results
// (and identical virtual time) across executions.
func TestSelectDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	const p = 6
	locals := make([][]int, p)
	for i := range locals {
		loc := make([]int, 50)
		for j := range loc {
			loc[j] = rng.Intn(100)
		}
		sort.Ints(loc)
		locals[i] = loc
	}
	targets := []int64{10, 150, 299}
	run := func() ([][]int, int64) {
		m := sim.NewDefault(p)
		allPos := make([][]int, p)
		res := m.Run(func(pe *sim.PE) {
			allPos[pe.Rank()] = Select(sim.World(pe), locals[pe.Rank()], targets, intLess, 42)
		})
		return allPos, res.MaxTime
	}
	pos1, t1 := run()
	pos2, t2 := run()
	if t1 != t2 {
		t.Fatalf("virtual times differ: %d vs %d", t1, t2)
	}
	for pe := range pos1 {
		for i := range pos1[pe] {
			if pos1[pe][i] != pos2[pe][i] {
				t.Fatalf("positions differ at PE %d target %d", pe, i)
			}
		}
	}
}
