package grouping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmsort/internal/sim"
)

// bruteOptimal computes the minimal bottleneck over all partitions of
// sizes into at most r consecutive ranges by dynamic programming.
func bruteOptimal(sizes []int64, r int) int64 {
	n := len(sizes)
	prefix := make([]int64, n+1)
	for i, s := range sizes {
		prefix[i+1] = prefix[i] + s
	}
	const inf = int64(1) << 62
	// dp[g][i] = min bottleneck for the first i buckets in ≤ g groups.
	dp := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		dp[i] = prefix[i] // one group
	}
	for g := 2; g <= r; g++ {
		ndp := make([]int64, n+1)
		for i := 1; i <= n; i++ {
			best := inf
			for j := 0; j < i; j++ {
				cost := dp[j]
				if last := prefix[i] - prefix[j]; last > cost {
					cost = last
				}
				if cost < best {
					best = cost
				}
			}
			ndp[i] = best
		}
		dp = ndp
	}
	return dp[n]
}

func randSizes(rng *rand.Rand, n int, maxSize int64) []int64 {
	sizes := make([]int64, n)
	for i := range sizes {
		sizes[i] = rng.Int63n(maxSize) + 1
	}
	return sizes
}

func TestScanBasic(t *testing.T) {
	sizes := []int64{3, 1, 4, 1, 5}
	starts, maxG, _, ok := Scan(sizes, 3, 6)
	if !ok {
		t.Fatal("scan with L=6 should succeed")
	}
	// Greedy: [3,1] (next 4 overflows), [4,1] (next 5 overflows), [5].
	want := []int{0, 2, 4, 5}
	if len(starts) != len(want) {
		t.Fatalf("starts = %v, want %v", starts, want)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("starts = %v, want %v", starts, want)
		}
	}
	if maxG != 5 {
		t.Fatalf("maxGroup = %d, want 5", maxG)
	}
	if _, _, _, ok := Scan(sizes, 2, 6); ok {
		t.Fatal("scan with r=2, L=6 should fail (needs 14/2=7)")
	}
	if _, _, _, ok := Scan(sizes, 3, 4); ok {
		t.Fatal("scan with L=4 should fail (bucket of size 5)")
	}
}

func TestScanEdge(t *testing.T) {
	// Empty bucket list: one empty group.
	starts, maxG, _, ok := Scan(nil, 2, 10)
	if !ok || maxG != 0 || len(starts) != 2 {
		t.Fatalf("empty scan: starts=%v maxG=%d ok=%v", starts, maxG, ok)
	}
	// Zero-size buckets pack into anything.
	starts, _, _, ok = Scan([]int64{0, 0, 0}, 1, 0)
	if !ok || starts[len(starts)-1] != 3 {
		t.Fatalf("zero buckets: %v %v", starts, ok)
	}
}

// TestOptimalLMatchesBruteForce is the Lemma 1 check: the scanning
// algorithm + binary search finds the true optimum.
func TestOptimalLMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(24)
		r := 1 + rng.Intn(8)
		sizes := randSizes(rng, n, 50)
		want := bruteOptimal(sizes, r)
		got, starts := OptimalL(sizes, r)
		if got != want {
			t.Fatalf("sizes=%v r=%d: OptimalL=%d, brute=%d", sizes, r, got, want)
		}
		// The returned boundaries must realize the bound.
		if len(starts) > r+1 {
			t.Fatalf("too many groups: %v", starts)
		}
		var cur int64
		gi := 1
		for i, s := range sizes {
			if gi < len(starts)-1 && i == starts[gi] {
				if cur > got {
					t.Fatalf("group exceeds L: %d > %d", cur, got)
				}
				cur = 0
				gi++
			}
			cur += s
		}
		if cur > got {
			t.Fatalf("last group exceeds L: %d > %d", cur, got)
		}
	}
}

func TestOptimalLQuick(t *testing.T) {
	if err := quick.Check(func(raw []uint16, rr uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		sizes := make([]int64, len(raw))
		for i, v := range raw {
			sizes[i] = int64(v%400) + 1
		}
		r := int(rr%6) + 1
		got, _ := OptimalL(sizes, r)
		return got == bruteOptimal(sizes, r)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOptimalLParallelAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, p := range []int{1, 2, 3, 5, 8, 16} {
		for trial := 0; trial < 10; trial++ {
			n := 1 + rng.Intn(40)
			r := 1 + rng.Intn(10)
			sizes := randSizes(rng, n, 100)
			want, _ := OptimalL(sizes, r)
			m := sim.NewDefault(p)
			m.Run(func(pe *sim.PE) {
				c := sim.World(pe)
				got, starts := OptimalLParallel(c, sizes, r)
				if got != want {
					t.Errorf("p=%d sizes=%v r=%d: parallel L=%d, want %d", p, sizes, r, got, want)
				}
				if starts[len(starts)-1] != len(sizes) {
					t.Errorf("parallel starts do not cover all buckets: %v", starts)
				}
			})
		}
	}
}

func TestOptimalLSingleGroup(t *testing.T) {
	sizes := []int64{5, 5, 5}
	got, starts := OptimalL(sizes, 1)
	if got != 15 || len(starts) != 2 {
		t.Fatalf("r=1: L=%d starts=%v", got, starts)
	}
}

func TestOptimalLManyGroups(t *testing.T) {
	// More groups than buckets: L* = max bucket.
	sizes := []int64{7, 3, 9, 2}
	got, _ := OptimalL(sizes, 10)
	if got != 9 {
		t.Fatalf("L=%d, want 9", got)
	}
}
