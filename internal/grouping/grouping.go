// Package grouping implements the bucket-grouping step of AMS-sort
// (paper §6, Lemma 1, Appendix C): given the global sizes of the br
// overpartitioned buckets, assign consecutive ranges of buckets to the r
// PE groups such that the maximum group load L is minimal. The scanning
// algorithm packs greedily; a binary search over L — accelerated with the
// bound-tightening observations of Appendix C — finds the optimal L.
package grouping

import (
	"pmsort/internal/coll"
	"pmsort/internal/comm"
	"pmsort/internal/wire"
)

// bounds is the probe outcome travelling through the bound-tightening
// all-reduce of OptimalLParallel: the tightest feasible value seen
// (succ) and the tightest known-infeasible bound (fail).
type bounds struct{ fail, succ int64 }

func init() { wire.Register[bounds]() }

// Scan greedily packs the buckets into consecutive groups of total size
// at most L, opening a new group whenever the next bucket would overflow
// the current one. It returns
//
//   - starts: bucket-index boundaries of the groups formed (group g is
//     buckets starts[g]..starts[g+1]-1), only valid when ok;
//   - maxGroup: the largest group size actually formed;
//   - minZ: the smallest "overflow witness" x+y observed when a group of
//     size x was closed because the next bucket of size y did not fit
//     (Appendix C: any L' < minZ reproduces the same failed packing);
//   - ok: whether at most r groups sufficed.
//
// A bucket larger than L makes the packing infeasible (ok=false).
func Scan(sizes []int64, r int, L int64) (starts []int, maxGroup, minZ int64, ok bool) {
	minZ = int64(1) << 62
	starts = make([]int, 1, r+1)
	var cur int64
	for i, s := range sizes {
		if s > L {
			return nil, 0, minZ, false
		}
		if cur+s > L {
			if z := cur + s; z < minZ {
				minZ = z
			}
			if len(starts) == r {
				// Out of groups; report the witness for the bound update.
				return nil, 0, minZ, false
			}
			if cur > maxGroup {
				maxGroup = cur
			}
			starts = append(starts, i)
			cur = 0
		}
		cur += s
	}
	if cur > maxGroup {
		maxGroup = cur
	}
	starts = append(starts, len(sizes))
	return starts, maxGroup, minZ, true
}

// OptimalL returns the minimal L for which Scan succeeds, together with
// the corresponding group boundaries. It binary-searches over L with the
// two Appendix C refinements: a failed scan raises the lower bound to the
// smallest overflow witness, and a successful scan lowers the upper bound
// to the largest group actually formed (both are sizes of real bucket
// ranges, so the search converges in O(log(br)) scans instead of
// O(log n)). By Lemma 1 the greedy scan is optimal, so this L is the
// optimal bottleneck over all partitions into ≤ r consecutive ranges.
func OptimalL(sizes []int64, r int) (L int64, starts []int) {
	if r <= 0 {
		panic("grouping: OptimalL with r <= 0")
	}
	var total, maxBucket int64
	for _, s := range sizes {
		total += s
		if s > maxBucket {
			maxBucket = s
		}
	}
	lo := maxI64(maxBucket, ceilDiv(total, int64(r))) // ≤ L*
	hi := total                                       // feasible
	for lo < hi {
		mid := lo + (hi-lo)/2
		_, maxG, minZ, ok := Scan(sizes, r, mid)
		if ok {
			hi = maxG // feasible and ≤ mid (Appendix C tightening)
		} else {
			lo = minZ // > mid: no smaller L can succeed
		}
	}
	st, _, _, ok := Scan(sizes, r, lo)
	if !ok {
		// Unreachable if the invariants hold; guard against bugs loudly.
		panic("grouping: optimal L infeasible")
	}
	return lo, st
}

// OptimalLParallel distributes the binary search over the members of c
// (Appendix C): each iteration splits the remaining [lo, hi] range into
// Size()+1 subranges, every PE probes one endpoint, and a combined
// all-reduce tightens the bounds to actually-occurring group sizes. All
// members return the same optimal L and boundaries. The bucket-size
// vector must be identical on all members (it comes from an all-reduce).
func OptimalLParallel(c comm.Communicator, sizes []int64, r int) (L int64, starts []int) {
	var total, maxBucket int64
	for _, s := range sizes {
		total += s
		if s > maxBucket {
			maxBucket = s
		}
	}
	lo := maxI64(maxBucket, ceilDiv(total, int64(r)))
	hi := total
	p := int64(c.Size())
	combine := func(a, b bounds) bounds {
		if b.fail > a.fail {
			a.fail = b.fail
		}
		if b.succ < a.succ {
			a.succ = b.succ
		}
		return a
	}
	den := p - 1
	if den == 0 {
		den = 1
	}
	for lo < hi {
		// Probe Size() points spread over [lo, hi]; rank 0 probes lo, so
		// the loop makes progress even when lo+1 == hi.
		probe := lo + (hi-lo)*int64(c.Rank())/den
		if probe > hi {
			probe = hi
		}
		my := bounds{fail: lo - 1, succ: hi}
		if _, maxG, minZ, ok := Scan(sizes, r, probe); ok {
			my.succ = maxG
		} else {
			my.fail = minZ - 1 // all L ≤ minZ-1 infeasible
		}
		c.Cost().Scan(int64(len(sizes)))
		res := coll.Allreduce(c, my, 2, combine)
		lo, hi = res.fail+1, res.succ
		if lo > hi {
			lo = hi
		}
	}
	st, _, _, ok := Scan(sizes, r, lo)
	if !ok {
		panic("grouping: parallel optimal L infeasible")
	}
	return lo, st
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}
