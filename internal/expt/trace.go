package expt

import (
	"fmt"
	"io"
	"os"

	"pmsort/internal/comm"
	"pmsort/internal/native"
	"pmsort/internal/obs"
	"pmsort/internal/sim"
)

// TraceBackends names the backends a traced run can target.
var TraceBackends = []string{"sim", "native", "tcp"}

// writeTraceFiles validates the merged trace and writes the Chrome
// trace-event JSON and/or the plain-text report (empty paths skipped).
func writeTraceFiles(trace *obs.Trace, tracePath, reportPath string) error {
	if err := trace.Validate(); err != nil {
		return fmt.Errorf("trace: invalid merged trace: %w", err)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if reportPath != "" {
		if reportPath == "-" {
			return trace.WriteReport(os.Stdout)
		}
		f, err := os.Create(reportPath)
		if err != nil {
			return err
		}
		if err := trace.WriteReport(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// TraceRun executes one fully traced, validated sort on the chosen
// backend ("sim", "native", or "tcp") and writes the merged multi-rank
// trace: Chrome trace-event JSON (chrome://tracing / Perfetto) to
// tracePath and/or the plain-text span/counter report to reportPath
// ("-" for stdout; empty paths are skipped). The merged trace is
// schema-validated (every rank present exactly once, spans closed,
// nested, and per-rank monotone) before anything is written.
//
// The tcp backend launches spec.P rank processes of this executable on
// loopback (the caller must invoke MaybeRunTCPChild at startup); rank
// 0 gathers the per-rank snapshots with clock-offset alignment and
// writes the files itself.
func TraceRun(spec Spec, backend, tracePath, reportPath string, progress io.Writer) error {
	if tracePath == "" && reportPath == "" {
		return fmt.Errorf("trace: need a -trace and/or -report output path")
	}
	if progress != nil {
		fmt.Fprintf(progress, "# trace backend=%s algo=%v p=%d n/p=%d k=%d\n",
			backend, spec.Algo, spec.P, spec.PerPE, spec.Levels)
	}
	var trace *obs.Trace
	switch backend {
	case "sim":
		m := sim.NewDefault(spec.P)
		m.EnableObs()
		m.Run(func(pe *sim.PE) {
			c := sim.World(pe)
			RunOn(c, spec)
			if t := obs.Gather(c, m.ObsRecorder(pe.Rank())); t != nil {
				trace = t
			}
		})
	case "native":
		m := native.New(spec.P)
		m.EnableObs()
		m.Run(func(c comm.Communicator) {
			RunOn(c, spec)
			if t := obs.Gather(c, m.ObsRecorder(c.Rank())); t != nil {
				trace = t
			}
		})
	case "tcp":
		_, err := RunTCPTraced(spec, tracePath, reportPath)
		return err // rank 0 validated and wrote the files
	default:
		return fmt.Errorf("trace: unknown backend %q (want sim, native, or tcp)", backend)
	}
	return writeTraceFiles(trace, tracePath, reportPath)
}
