// Package expt runs the paper's evaluation (§7, Appendix E): weak
// scaling for Table 2 / Figures 7, 8, 12, the overpartitioning sweeps of
// Figures 10 and 11, the §7.3 comparison against single-level sorters,
// the delivery/all-to-all ablations, and the sim-vs-native backend
// comparison. Every run validates its output (locally sorted, globally
// ordered across PEs, permutation preserved) before reporting times.
package expt

import (
	"fmt"
	"io"

	"pmsort/internal/coll"
	"pmsort/internal/comm"
	"pmsort/internal/core"
	"pmsort/internal/delivery"
	"pmsort/internal/native"
	"pmsort/internal/seq"
	"pmsort/internal/sim"
	"pmsort/internal/workload"
)

// Algo selects a sorting algorithm.
type Algo int

const (
	// AMS is adaptive multi-level sample sort (§6).
	AMS Algo = iota
	// RLM is recurse-last multiway mergesort (§5).
	RLM
	// MP is the MP-sort style single-level baseline (§7.3).
	MP
	// GV is single-level sample sort with centralized splitters.
	GV
	// Bitonic is Batcher's bitonic sort over the PEs.
	Bitonic
	// Hist is the Solomonik-Kale style histogram sort (§3).
	Hist
	// HCQ is hypercube parallel quicksort (§6's r=O(1) extreme).
	HCQ
)

// String names the algorithm.
func (a Algo) String() string {
	switch a {
	case AMS:
		return "AMS-sort"
	case RLM:
		return "RLM-sort"
	case MP:
		return "MP-sort"
	case GV:
		return "GV-sample-sort"
	case Bitonic:
		return "bitonic"
	case Hist:
		return "histogram-sort"
	case HCQ:
		return "hc-quicksort"
	}
	return "invalid"
}

// Spec describes one run.
type Spec struct {
	Algo          Algo
	P             int
	PerPE         int
	Levels        int
	Kind          workload.Kind
	Seed          uint64
	Oversampling  float64
	Overpartition int
	Delivery      delivery.Options
	TieBreak      bool
	// Keyed enables the ordered-key kernel fast path (Config.Key): the
	// local sort phases run an in-place uint64 MSD radix sort instead
	// of generic pdqsort. The harness supplies the identity key for its
	// uint64 workloads (and the order key for the torture harness's
	// struct elements).
	Keyed bool
	// PrefixMode selects the comparator path's prefix cache (ignored by
	// keyed runs, which use the radix kernel regardless).
	PrefixMode PrefixMode
}

// PrefixMode selects how a comparator-path run uses the prefix cache.
type PrefixMode int

const (
	// PrefixAuto (the zero value) leaves the cache to core's automatic
	// derivation (plus Config.Key reuse on keyed runs).
	PrefixAuto PrefixMode = iota
	// PrefixOff disables the cache (core.Config.NoPrefix): every local
	// kernel runs on the comparator only.
	PrefixOff
	// PrefixCoarse installs a deliberately non-injective Config.Prefix
	// hook (the harness supplies it per element type), exercising the
	// equal-prefix fallbacks of every kernel.
	PrefixCoarse
)

// String names the mode for logs.
func (m PrefixMode) String() string {
	switch m {
	case PrefixAuto:
		return "auto"
	case PrefixOff:
		return "off"
	case PrefixCoarse:
		return "coarse"
	}
	return "invalid"
}

func (spec Spec) config() core.Config {
	return core.Config{
		Levels:        spec.Levels,
		Oversampling:  spec.Oversampling,
		Overpartition: spec.Overpartition,
		Seed:          spec.Seed,
		TieBreak:      spec.TieBreak,
		Delivery:      spec.Delivery,
		NoPrefix:      spec.PrefixMode == PrefixOff,
	}
}

// Result reports one validated run.
type Result struct {
	// TotalNS is the makespan (max over PEs) in virtual ns.
	TotalNS int64
	// PhaseNS is the per-phase maximum over PEs, accumulated over levels.
	PhaseNS [core.NumPhases]int64
	// LevelPhaseNS is the per-level per-phase maximum over PEs (rows as
	// in Stats.LevelPhaseNS; ragged rank vectors are max-merged row-wise).
	LevelPhaseNS [][core.NumPhases]int64
	// OutImbalance is max_PE |out|·p/n (1 = perfectly balanced output).
	OutImbalance float64
	// LevelImbalance is the largest per-level group imbalance (AMS).
	LevelImbalance float64
	// MaxMsgsRecv is the largest per-PE received-message count.
	MaxMsgsRecv int64
}

const tagValidate = 0x6f0001

// runAlgo dispatches the spec's algorithm on any backend.
func runAlgo(c comm.Communicator, spec Spec, data []uint64) ([]uint64, *core.Stats) {
	less := func(a, b uint64) bool { return a < b }
	var key func(uint64) uint64
	if spec.Keyed {
		key = func(x uint64) uint64 { return x }
	}
	// The coarse hook drops the low byte: order-preserving, heavily
	// non-injective on the small-range workloads.
	return runAlgoE(c, spec, data, less, key, func(x uint64) uint64 { return x >> 8 })
}

// validate panics unless out is this PE's slice of a globally sorted
// permutation of the input. Collective; backend-neutral.
func validate(c comm.Communicator, inCount int64, out []uint64) {
	less := func(a, b uint64) bool { return a < b }
	if !seq.IsSorted(out, less) {
		panic(fmt.Sprintf("expt: PE %d output not locally sorted", c.Rank()))
	}
	// Count preservation.
	totalIn := coll.Allreduce(c, inCount, 1, func(a, b int64) int64 { return a + b })
	totalOut := coll.Allreduce(c, int64(len(out)), 1, func(a, b int64) int64 { return a + b })
	if totalIn != totalOut {
		panic(fmt.Sprintf("expt: element count changed %d -> %d", totalIn, totalOut))
	}
	// Boundary order: my max must not exceed the next PE's min.
	var myMax uint64
	if len(out) > 0 {
		myMax = out[len(out)-1]
	}
	// Propagate the running maximum left-to-right so empty PEs pass
	// their predecessor's max along.
	if c.Rank() > 0 {
		pl, _ := c.Recv(c.Rank()-1, tagValidate)
		prevMax := pl.(uint64)
		if len(out) > 0 && out[0] < prevMax {
			panic(fmt.Sprintf("expt: PE %d starts below PE %d's max", c.Rank(), c.Rank()-1))
		}
		if len(out) == 0 || myMax < prevMax {
			myMax = prevMax
		}
	}
	if c.Rank() < c.Size()-1 {
		c.Send(c.Rank()+1, tagValidate, myMax, 1)
	}
}

// RunOn generates this PE's workload slice, sorts it with the spec's
// algorithm on the given communicator, and validates the result —
// backend-neutral, so rank processes of a TCP cluster (cmd/sortnode,
// the backends experiment) share the exact code path of the in-process
// backends. Collective call.
func RunOn(c comm.Communicator, spec Spec) ([]uint64, *core.Stats) {
	data := workload.Local(spec.Kind, spec.Seed, spec.P, spec.PerPE, c.Rank())
	return RunData(c, spec, data)
}

// RunData sorts caller-supplied per-PE data with the spec's algorithm
// and validates the result (locally sorted, globally ordered, count
// preserved) before returning it — the entry point for callers that
// bring their own input, like the sort service's raw-key jobs
// (internal/svc). The input slice is consumed. Collective call; spec's
// workload fields (Kind, Seed, PerPE) are ignored.
func RunData(c comm.Communicator, spec Spec, data []uint64) ([]uint64, *core.Stats) {
	inCount := int64(len(data))
	out, st := runAlgo(c, spec, data)
	validate(c, inCount, out)
	return out, st
}

// Run executes and validates one run on the simulated backend. It panics
// if the output is not a globally sorted permutation of the input.
func Run(spec Spec) Result {
	m := sim.NewDefault(spec.P)
	var res Result
	outLens := make([]int64, spec.P)
	allStats := make([]*core.Stats, spec.P)
	msgs := make([]int64, spec.P)
	m.Run(func(pe *sim.PE) {
		pe.ResetCounters()
		c := sim.World(pe)
		data := workload.Local(spec.Kind, spec.Seed, spec.P, spec.PerPE, pe.Rank())
		inCount := int64(len(data))
		out, st := runAlgo(c, spec, data)
		allStats[pe.Rank()] = st
		outLens[pe.Rank()] = int64(len(out))
		msgs[pe.Rank()] = pe.MsgsRecv

		// Validation (outside the timed region — stats are captured).
		validate(c, inCount, out)
	})

	n := int64(spec.P) * int64(spec.PerPE)
	for rank := 0; rank < spec.P; rank++ {
		st := allStats[rank]
		if st.TotalNS > res.TotalNS {
			res.TotalNS = st.TotalNS
		}
		for ph := 0; ph < int(core.NumPhases); ph++ {
			if st.PhaseNS[ph] > res.PhaseNS[ph] {
				res.PhaseNS[ph] = st.PhaseNS[ph]
			}
		}
		res.LevelPhaseNS = maxLevels(res.LevelPhaseNS, st.LevelPhaseNS)
		if st.MaxImbalance > res.LevelImbalance {
			res.LevelImbalance = st.MaxImbalance
		}
		if n > 0 {
			imb := float64(outLens[rank]) * float64(spec.P) / float64(n)
			if imb > res.OutImbalance {
				res.OutImbalance = imb
			}
		}
		if msgs[rank] > res.MaxMsgsRecv {
			res.MaxMsgsRecv = msgs[rank]
		}
	}
	return res
}

// NativeResult reports one validated run on the native shared-memory
// backend. All times are wall-clock nanoseconds.
type NativeResult struct {
	// WallNS is the wall-clock makespan of the whole Run (including
	// input generation and validation overheads outside the sort).
	WallNS int64
	// SortNS is the largest per-PE Stats.TotalNS — the wall-clock time
	// of the sort proper, barrier to barrier.
	SortNS int64
	// PhaseNS is the per-phase maximum over PEs.
	PhaseNS [core.NumPhases]int64
	// LevelPhaseNS is the per-level per-phase maximum over PEs.
	LevelPhaseNS [][core.NumPhases]int64
	// OutImbalance is max_PE |out|·p/n.
	OutImbalance float64
}

// maxLevels max-merges one rank's per-level phase vector into the
// aggregate, growing the aggregate to the deeper of the two.
func maxLevels(agg, st [][core.NumPhases]int64) [][core.NumPhases]int64 {
	for len(agg) < len(st) {
		agg = append(agg, [core.NumPhases]int64{})
	}
	for lv := range st {
		for ph := 0; ph < int(core.NumPhases); ph++ {
			if st[lv][ph] > agg[lv][ph] {
				agg[lv][ph] = st[lv][ph]
			}
		}
	}
	return agg
}

// RunNative executes and validates one run on the native backend (p
// goroutines, real data movement, no virtual time). It panics if the
// output is not a globally sorted permutation of the input.
func RunNative(spec Spec) NativeResult {
	m := native.New(spec.P)
	var res NativeResult
	outLens := make([]int64, spec.P)
	allStats := make([]*core.Stats, spec.P)
	// Generate inputs up front so the measured region is dominated by
	// sorting, not by the workload generator.
	locals := make([][]uint64, spec.P)
	for rank := range locals {
		locals[rank] = workload.Local(spec.Kind, spec.Seed, spec.P, spec.PerPE, rank)
	}
	dur := m.Run(func(c comm.Communicator) {
		data := locals[c.Rank()]
		inCount := int64(len(data))
		out, st := runAlgo(c, spec, data)
		allStats[c.Rank()] = st
		outLens[c.Rank()] = int64(len(out))
		validate(c, inCount, out)
	})
	res.WallNS = dur.Nanoseconds()

	for rank := 0; rank < spec.P; rank++ {
		res.absorb(allStats[rank], outLens[rank], spec)
	}
	return res
}

// absorb folds one rank's run outcome into the aggregate: per-phase and
// total maxima over ranks, and the output imbalance max_PE |out|·p/n.
func (res *NativeResult) absorb(st *core.Stats, outLen int64, spec Spec) {
	if st.TotalNS > res.SortNS {
		res.SortNS = st.TotalNS
	}
	for ph := 0; ph < int(core.NumPhases); ph++ {
		if st.PhaseNS[ph] > res.PhaseNS[ph] {
			res.PhaseNS[ph] = st.PhaseNS[ph]
		}
	}
	res.LevelPhaseNS = maxLevels(res.LevelPhaseNS, st.LevelPhaseNS)
	if n := int64(spec.P) * int64(spec.PerPE); n > 0 {
		imb := float64(outLen) * float64(spec.P) / float64(n)
		if imb > res.OutImbalance {
			res.OutImbalance = imb
		}
	}
}

// RunReps runs the spec `reps` times with varied seeds.
func RunReps(spec Spec, reps int, progress io.Writer) []Result {
	out := make([]Result, reps)
	for i := 0; i < reps; i++ {
		s := spec
		s.Seed = spec.Seed + uint64(i)*0x1000003
		if progress != nil {
			fmt.Fprintf(progress, "# %-9v p=%-6d n/p=%-7d k=%d rep %d/%d\n",
				spec.Algo, spec.P, spec.PerPE, spec.Levels, i+1, reps)
		}
		out[i] = Run(s)
	}
	return out
}
