// Package expt runs the paper's evaluation (§7, Appendix E): weak
// scaling for Table 2 / Figures 7, 8, 12, the overpartitioning sweeps of
// Figures 10 and 11, the §7.3 comparison against single-level sorters,
// and the delivery/all-to-all ablations. Every run validates its output
// (locally sorted, globally ordered across PEs, permutation preserved)
// before reporting times.
package expt

import (
	"fmt"
	"io"

	"pmsort/internal/baseline"
	"pmsort/internal/coll"
	"pmsort/internal/core"
	"pmsort/internal/delivery"
	"pmsort/internal/seq"
	"pmsort/internal/sim"
	"pmsort/internal/workload"
)

// Algo selects a sorting algorithm.
type Algo int

const (
	// AMS is adaptive multi-level sample sort (§6).
	AMS Algo = iota
	// RLM is recurse-last multiway mergesort (§5).
	RLM
	// MP is the MP-sort style single-level baseline (§7.3).
	MP
	// GV is single-level sample sort with centralized splitters.
	GV
	// Bitonic is Batcher's bitonic sort over the PEs.
	Bitonic
	// Hist is the Solomonik-Kale style histogram sort (§3).
	Hist
	// HCQ is hypercube parallel quicksort (§6's r=O(1) extreme).
	HCQ
)

// String names the algorithm.
func (a Algo) String() string {
	switch a {
	case AMS:
		return "AMS-sort"
	case RLM:
		return "RLM-sort"
	case MP:
		return "MP-sort"
	case GV:
		return "GV-sample-sort"
	case Bitonic:
		return "bitonic"
	case Hist:
		return "histogram-sort"
	case HCQ:
		return "hc-quicksort"
	}
	return "invalid"
}

// Spec describes one run.
type Spec struct {
	Algo          Algo
	P             int
	PerPE         int
	Levels        int
	Kind          workload.Kind
	Seed          uint64
	Oversampling  float64
	Overpartition int
	TieBreak      bool
	Delivery      delivery.Options
}

// Result reports one validated run.
type Result struct {
	// TotalNS is the makespan (max over PEs) in virtual ns.
	TotalNS int64
	// PhaseNS is the per-phase maximum over PEs, accumulated over levels.
	PhaseNS [core.NumPhases]int64
	// OutImbalance is max_PE |out|·p/n (1 = perfectly balanced output).
	OutImbalance float64
	// LevelImbalance is the largest per-level group imbalance (AMS).
	LevelImbalance float64
	// MaxMsgsRecv is the largest per-PE received-message count.
	MaxMsgsRecv int64
}

const tagValidate = 0x7f0001

// Run executes and validates one run. It panics if the output is not a
// globally sorted permutation of the input.
func Run(spec Spec) Result {
	m := sim.NewDefault(spec.P)
	less := func(a, b uint64) bool { return a < b }
	cfg := core.Config{
		Levels:        spec.Levels,
		Oversampling:  spec.Oversampling,
		Overpartition: spec.Overpartition,
		Seed:          spec.Seed,
		TieBreak:      spec.TieBreak,
		Delivery:      spec.Delivery,
	}
	var res Result
	outLens := make([]int64, spec.P)
	allStats := make([]*core.Stats, spec.P)
	msgs := make([]int64, spec.P)
	m.Run(func(pe *sim.PE) {
		pe.ResetCounters()
		c := sim.World(pe)
		data := workload.Local(spec.Kind, spec.Seed, spec.P, spec.PerPE, pe.Rank())
		inCount := int64(len(data))
		var out []uint64
		var st *core.Stats
		switch spec.Algo {
		case AMS:
			out, st = core.AMSSort(c, data, less, cfg)
		case RLM:
			out, st = core.RLMSort(c, data, less, cfg)
		case MP:
			out, st = baseline.MPSort(c, data, less, spec.Seed)
		case GV:
			out, st = baseline.GVSampleSort(c, data, less, spec.Seed)
		case Bitonic:
			out, st = baseline.BitonicSort(c, data, less, spec.Seed)
		case Hist:
			out, st = baseline.HistogramSort(c, data, less, 0.05, spec.Seed)
		case HCQ:
			out, st = baseline.HCQuicksort(c, data, less, spec.Seed)
		default:
			panic("expt: unknown algorithm")
		}
		allStats[pe.Rank()] = st
		outLens[pe.Rank()] = int64(len(out))
		msgs[pe.Rank()] = pe.MsgsRecv

		// Validation (outside the timed region — stats are captured).
		if !seq.IsSorted(out, less) {
			panic(fmt.Sprintf("expt: PE %d output not locally sorted", pe.Rank()))
		}
		// Count preservation.
		totalIn := coll.Allreduce(c, inCount, 1, func(a, b int64) int64 { return a + b })
		totalOut := coll.Allreduce(c, int64(len(out)), 1, func(a, b int64) int64 { return a + b })
		if totalIn != totalOut {
			panic(fmt.Sprintf("expt: element count changed %d -> %d", totalIn, totalOut))
		}
		// Boundary order: my max must not exceed the next PE's min.
		var myMax uint64
		if len(out) > 0 {
			myMax = out[len(out)-1]
		} else {
			myMax = 0
		}
		// Propagate the running maximum left-to-right so empty PEs pass
		// their predecessor's max along.
		if pe.Rank() > 0 {
			pl, _ := c.Recv(pe.Rank()-1, tagValidate)
			prevMax := pl.(uint64)
			if len(out) > 0 && out[0] < prevMax {
				panic(fmt.Sprintf("expt: PE %d starts below PE %d's max", pe.Rank(), pe.Rank()-1))
			}
			if len(out) == 0 || myMax < prevMax {
				myMax = prevMax
			}
		}
		if pe.Rank() < spec.P-1 {
			c.Send(pe.Rank()+1, tagValidate, myMax, 1)
		}
	})

	n := int64(spec.P) * int64(spec.PerPE)
	for rank := 0; rank < spec.P; rank++ {
		st := allStats[rank]
		if st.TotalNS > res.TotalNS {
			res.TotalNS = st.TotalNS
		}
		for ph := 0; ph < int(core.NumPhases); ph++ {
			if st.PhaseNS[ph] > res.PhaseNS[ph] {
				res.PhaseNS[ph] = st.PhaseNS[ph]
			}
		}
		if st.MaxImbalance > res.LevelImbalance {
			res.LevelImbalance = st.MaxImbalance
		}
		if n > 0 {
			imb := float64(outLens[rank]) * float64(spec.P) / float64(n)
			if imb > res.OutImbalance {
				res.OutImbalance = imb
			}
		}
		if msgs[rank] > res.MaxMsgsRecv {
			res.MaxMsgsRecv = msgs[rank]
		}
	}
	return res
}

// RunReps runs the spec `reps` times with varied seeds.
func RunReps(spec Spec, reps int, progress io.Writer) []Result {
	out := make([]Result, reps)
	for i := 0; i < reps; i++ {
		s := spec
		s.Seed = spec.Seed + uint64(i)*0x1000003
		if progress != nil {
			fmt.Fprintf(progress, "# %-9v p=%-6d n/p=%-7d k=%d rep %d/%d\n",
				spec.Algo, spec.P, spec.PerPE, spec.Levels, i+1, reps)
		}
		out[i] = Run(s)
	}
	return out
}
