package expt

import (
	"fmt"
	"io"

	"pmsort/internal/core"
	"pmsort/internal/delivery"
	"pmsort/internal/stats"
	"pmsort/internal/workload"
)

// SuiteOptions configures the experiment grids. The defaults mirror the
// paper's weak-scaling setup scaled to one machine (see DESIGN.md §1):
// p ∈ {512, 2048, 8192} (the paper's ×4 progression, capped one step
// early) and n/p ∈ {10³, 10⁴, 10⁵} (the paper's {10⁵..10⁷} divided by
// 100).
type SuiteOptions struct {
	Ps       []int
	PerPEs   []int
	Levels   []int
	Reps     int
	Seed     uint64
	Kind     workload.Kind
	Progress io.Writer
	// MaxElems skips grid cells with p·perPE above it (memory guard); the
	// paper's own Table 2 also has an unmeasurable cell.
	MaxElems int64
	// MaxSingleLevelP skips 1-level runs above this p (p² messages).
	MaxSingleLevelP int
}

// Defaults fills in unset fields.
func (o SuiteOptions) Defaults() SuiteOptions {
	if o.Ps == nil {
		o.Ps = []int{512, 2048, 8192}
	}
	if o.PerPEs == nil {
		o.PerPEs = []int{1_000, 10_000, 100_000}
	}
	if o.Levels == nil {
		o.Levels = []int{1, 2, 3}
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	if o.MaxElems == 0 {
		o.MaxElems = 1 << 28
	}
	if o.MaxSingleLevelP == 0 {
		o.MaxSingleLevelP = 2048
	}
	return o
}

func (o SuiteOptions) skip(p, perPE, levels int) bool {
	if int64(p)*int64(perPE) > o.MaxElems {
		return true
	}
	if levels == 1 && p > o.MaxSingleLevelP {
		return true
	}
	return false
}

// Table1 prints the per-level group counts of the weak-scaling
// configurations (paper Table 1). The extracted paper text renders the
// k=1 row ambiguously; we print r = p (the classic single-level
// configuration, see DESIGN.md §3).
func Table1(w io.Writer, ps []int) {
	if ps == nil {
		ps = []int{512, 2048, 8192, 32768}
	}
	fmt.Fprintf(w, "Table 1: selection of r for weak scaling experiments\n")
	fmt.Fprintf(w, "%-3s %-6s", "k", "level")
	for _, p := range ps {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("p=%d", p))
	}
	fmt.Fprintln(w)
	for k := 1; k <= 3; k++ {
		for lvl := 0; lvl < k; lvl++ {
			if lvl == 0 {
				fmt.Fprintf(w, "%-3d %-6d", k, lvl+1)
			} else {
				fmt.Fprintf(w, "%-3s %-6d", "", lvl+1)
			}
			for _, p := range ps {
				plan := core.PlanLevels(p, k)
				if lvl < len(plan) {
					fmt.Fprintf(w, " %8d", plan[lvl])
				} else {
					fmt.Fprintf(w, " %8s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// cellKey identifies one weak-scaling grid cell.
type cellKey struct {
	algo   Algo
	p      int
	perPE  int
	levels int
}

// WeakData holds the raw weak-scaling runs for Table 2 and Figures 7, 8
// and 12.
type WeakData struct {
	Opt   SuiteOptions
	Cells map[cellKey][]Result
}

// RunWeakScaling executes the weak-scaling grid for the given algorithms
// once and caches all repetitions.
func RunWeakScaling(opt SuiteOptions, algos []Algo) *WeakData {
	opt = opt.Defaults()
	d := &WeakData{Opt: opt, Cells: map[cellKey][]Result{}}
	for _, algo := range algos {
		for _, p := range opt.Ps {
			for _, perPE := range opt.PerPEs {
				for _, k := range opt.Levels {
					if opt.skip(p, perPE, k) {
						continue
					}
					spec := Spec{Algo: algo, P: p, PerPE: perPE, Levels: k, Kind: opt.Kind, Seed: opt.Seed}
					d.Cells[cellKey{algo, p, perPE, k}] = RunReps(spec, opt.Reps, opt.Progress)
				}
			}
		}
	}
	return d
}

// bestMedian returns the best (smallest) median total over the level
// choices, the winning level, and whether any cell was run.
func (d *WeakData) bestMedian(algo Algo, p, perPE int) (int64, int, bool) {
	best, bestK, found := int64(0), 0, false
	for _, k := range d.Opt.Levels {
		rs, ok := d.Cells[cellKey{algo, p, perPE, k}]
		if !ok {
			continue
		}
		tot := make([]int64, len(rs))
		for i, r := range rs {
			tot[i] = r.TotalNS
		}
		med := stats.Median(tot)
		if !found || med < best {
			best, bestK, found = med, k, true
		}
	}
	return best, bestK, found
}

// Table2 prints the AMS-sort median wall-times with the best level
// choice per cell (paper Table 2, in milliseconds of virtual time).
func (d *WeakData) Table2(w io.Writer) {
	fmt.Fprintf(w, "Table 2: AMS-sort median wall-times of weak scaling experiments [ms, simulated]\n")
	fmt.Fprintf(w, "(best level choice per cell in parentheses)\n")
	fmt.Fprintf(w, "%-9s", "n/p")
	for _, p := range d.Opt.Ps {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("p=%d", p))
	}
	fmt.Fprintln(w)
	for _, perPE := range d.Opt.PerPEs {
		fmt.Fprintf(w, "%-9d", perPE)
		for _, p := range d.Opt.Ps {
			if med, k, ok := d.bestMedian(AMS, p, perPE); ok {
				fmt.Fprintf(w, " %10.3f (%d)", float64(med)/1e6, k)
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// Fig7 prints the slowdown of RLM-sort relative to AMS-sort, both at
// their best level choice (paper Figure 7).
func (d *WeakData) Fig7(w io.Writer) {
	fmt.Fprintf(w, "Figure 7: slowdown of RLM-sort compared to AMS-sort (best level choice each)\n")
	fmt.Fprintf(w, "%-9s", "n/p")
	for _, p := range d.Opt.Ps {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("p=%d", p))
	}
	fmt.Fprintln(w)
	for _, perPE := range d.Opt.PerPEs {
		fmt.Fprintf(w, "%-9d", perPE)
		for _, p := range d.Opt.Ps {
			ams, _, ok1 := d.bestMedian(AMS, p, perPE)
			rlm, _, ok2 := d.bestMedian(RLM, p, perPE)
			if ok1 && ok2 {
				fmt.Fprintf(w, " %9.2f", float64(rlm)/float64(ams))
			} else {
				fmt.Fprintf(w, " %9s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// Fig8 prints the weak-scaling phase breakdown of AMS-sort per level
// count (paper Figure 8): for every (n/p, p, k) the median total and the
// phase shares.
func (d *WeakData) Fig8(w io.Writer) {
	fmt.Fprintf(w, "Figure 8: AMS-sort weak scaling phase breakdown [ms, simulated]\n")
	fmt.Fprintf(w, "%-9s %-7s %-2s %10s %10s %10s %10s %10s\n",
		"n/p", "p", "k", "total", "delivery", "buckets", "splitters", "localsort")
	for _, perPE := range d.Opt.PerPEs {
		for _, p := range d.Opt.Ps {
			for _, k := range d.Opt.Levels {
				rs, ok := d.Cells[cellKey{AMS, p, perPE, k}]
				if !ok {
					continue
				}
				tot := make([]int64, len(rs))
				var ph [core.NumPhases][]int64
				for i, r := range rs {
					tot[i] = r.TotalNS
					for j := 0; j < int(core.NumPhases); j++ {
						ph[j] = append(ph[j], r.PhaseNS[j])
					}
				}
				ms := func(v int64) float64 { return float64(v) / 1e6 }
				fmt.Fprintf(w, "%-9d %-7d %-2d %10.3f %10.3f %10.3f %10.3f %10.3f\n",
					perPE, p, k, ms(stats.Median(tot)),
					ms(stats.Median(ph[core.PhaseDataDelivery])),
					ms(stats.Median(ph[core.PhaseBucketProcessing])),
					ms(stats.Median(ph[core.PhaseSplitterSelection])),
					ms(stats.Median(ph[core.PhaseLocalSort])))
			}
		}
	}
}

// Fig12 prints the distribution (five-number summary) of AMS-sort
// wall-times per (p, n/p) at the best level choice (paper Figure 12).
func (d *WeakData) Fig12(w io.Writer) {
	fmt.Fprintf(w, "Figure 12: distribution of AMS-sort wall-times [ms, simulated]\n")
	fmt.Fprintf(w, "%-9s %-7s %-2s %10s %10s %10s %10s %10s\n",
		"n/p", "p", "k", "min", "q1", "median", "q3", "max")
	for _, perPE := range d.Opt.PerPEs {
		for _, p := range d.Opt.Ps {
			_, bestK, ok := d.bestMedian(AMS, p, perPE)
			if !ok {
				continue
			}
			rs := d.Cells[cellKey{AMS, p, perPE, bestK}]
			tot := make([]int64, len(rs))
			for i, r := range rs {
				tot[i] = r.TotalNS
			}
			s := stats.Summarize(tot)
			ms := func(v int64) float64 { return float64(v) / 1e6 }
			fmt.Fprintf(w, "%-9d %-7d %-2d %10.3f %10.3f %10.3f %10.3f %10.3f\n",
				perPE, p, bestK, ms(s.Min), ms(s.Q1), ms(s.Median), ms(s.Q3), ms(s.Max))
		}
	}
}

// Fig10 prints the maximum output imbalance against samples per PE a·b
// for overpartitioning factors b ∈ {1, 8, 16} (paper Figure 10,
// Appendix E), at single-level AMS-sort.
func Fig10(w io.Writer, p, perPE, reps int, seed uint64, progress io.Writer) {
	fmt.Fprintf(w, "Figure 10: maximum imbalance among groups vs samples per PE (p=%d, n/p=%d)\n", p, perPE)
	fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "a*b", "b=1", "b=8", "b=16")
	for ab := 4; ab <= 2048; ab *= 2 {
		fmt.Fprintf(w, "%-8d", ab)
		for _, b := range []int{1, 8, 16} {
			if ab < b {
				fmt.Fprintf(w, " %12s", "-")
				continue
			}
			spec := Spec{Algo: AMS, P: p, PerPE: perPE, Levels: 1, Seed: seed,
				Oversampling: float64(ab) / float64(b), Overpartition: b}
			rs := RunReps(spec, reps, progress)
			imb := make([]float64, len(rs))
			for i, r := range rs {
				imb[i] = r.OutImbalance - 1
			}
			fmt.Fprintf(w, " %12.4f", stats.MedianF(imb))
		}
		fmt.Fprintln(w)
	}
}

// Fig11 prints the total wall-time and the sampling (splitter selection)
// time against samples per PE a·b for oversampling factors a ∈ {1, 8,
// 16} (paper Figure 11), at single-level AMS-sort.
func Fig11(w io.Writer, p, perPE, reps int, seed uint64, progress io.Writer) {
	fmt.Fprintf(w, "Figure 11: AMS-sort wall-time vs samples per PE (p=%d, n/p=%d) [ms, simulated]\n", p, perPE)
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s %10s %10s\n",
		"a*b", "tot a=1", "tot a=8", "tot a=16", "smp a=1", "smp a=8", "smp a=16")
	for ab := 4; ab <= 2048; ab *= 2 {
		totals := make([]string, 3)
		samples := make([]string, 3)
		for i, a := range []int{1, 8, 16} {
			if ab < a || ab/a < 1 {
				totals[i], samples[i] = "-", "-"
				continue
			}
			spec := Spec{Algo: AMS, P: p, PerPE: perPE, Levels: 1, Seed: seed,
				Oversampling: float64(a), Overpartition: ab / a}
			rs := RunReps(spec, reps, progress)
			tot := make([]int64, len(rs))
			smp := make([]int64, len(rs))
			for j, r := range rs {
				tot[j] = r.TotalNS
				smp[j] = r.PhaseNS[core.PhaseSplitterSelection]
			}
			totals[i] = fmt.Sprintf("%.3f", float64(stats.Median(tot))/1e6)
			samples[i] = fmt.Sprintf("%.3f", float64(stats.Median(smp))/1e6)
		}
		fmt.Fprintf(w, "%-8d %10s %10s %10s %10s %10s %10s\n",
			ab, totals[0], totals[1], totals[2], samples[0], samples[1], samples[2])
	}
}

// Compare prints the §7.3 comparison: AMS-sort (best level) against the
// single-level and log-p-passes baselines across the (p, n/p) grid. The
// paper's claim is two-sided: single-level algorithms (MP-sort, GV) do
// not scale for small inputs, while algorithms that move the data
// Θ(log p) times (bitonic, quicksort) only survive at very small n/p.
func Compare(w io.Writer, opt SuiteOptions) {
	opt = opt.Defaults()
	fmt.Fprintf(w, "§7.3 comparison [ms, simulated; slowdown vs AMS in parentheses]\n")
	fmt.Fprintf(w, "%-9s %-7s %14s %16s %16s %16s %16s %16s\n",
		"n/p", "p", "AMS (best k)", "MP-sort", "GV-sample-sort", "bitonic", "histogram", "hc-quicksort")
	for _, perPE := range opt.PerPEs {
		for _, p := range opt.Ps {
			if opt.skip(p, perPE, 1) {
				// Single-level baselines need the p² message budget.
				fmt.Fprintf(w, "%-9d %-7d %14s (single-level baselines skipped)\n", perPE, p, "-")
				continue
			}
			var amsBest int64
			var bestK int
			for _, k := range opt.Levels {
				spec := Spec{Algo: AMS, P: p, PerPE: perPE, Levels: k, Seed: opt.Seed, Kind: opt.Kind}
				rs := RunReps(spec, opt.Reps, opt.Progress)
				tot := make([]int64, len(rs))
				for i, r := range rs {
					tot[i] = r.TotalNS
				}
				if med := stats.Median(tot); amsBest == 0 || med < amsBest {
					amsBest, bestK = med, k
				}
			}
			fmt.Fprintf(w, "%-9d %-7d %10.3f (%d)", perPE, p, float64(amsBest)/1e6, bestK)
			for _, algo := range []Algo{MP, GV, Bitonic, Hist, HCQ} {
				spec := Spec{Algo: algo, P: p, PerPE: perPE, Levels: 1, Seed: opt.Seed, Kind: opt.Kind}
				rs := RunReps(spec, opt.Reps, opt.Progress)
				tot := make([]int64, len(rs))
				for i, r := range rs {
					tot[i] = r.TotalNS
				}
				med := stats.Median(tot)
				fmt.Fprintf(w, " %9.3f (%4.1fx)", float64(med)/1e6, float64(med)/float64(amsBest))
			}
			fmt.Fprintln(w)
		}
	}
}

// DeliveryAblation prints time and worst-PE receive counts for each
// delivery strategy (§4.3 ablation) under 2-level AMS-sort.
func DeliveryAblation(w io.Writer, p, perPE, reps int, seed uint64, progress io.Writer) {
	fmt.Fprintf(w, "Delivery ablation: 2-level AMS-sort, p=%d, n/p=%d\n", p, perPE)
	fmt.Fprintf(w, "%-22s %-14s %12s %14s\n", "strategy", "input", "total [ms]", "max msgs recv")
	for _, kind := range []workload.Kind{workload.Uniform, workload.Skewed} {
		for _, strat := range []delivery.Strategy{delivery.Simple, delivery.Randomized,
			delivery.RandomizedAdvanced, delivery.Deterministic} {
			spec := Spec{Algo: AMS, P: p, PerPE: perPE, Levels: 2, Seed: seed, Kind: kind,
				Delivery: delivery.Options{Strategy: strat}}
			rs := RunReps(spec, reps, progress)
			tot := make([]int64, len(rs))
			msgs := make([]int64, len(rs))
			for i, r := range rs {
				tot[i] = r.TotalNS
				msgs[i] = r.MaxMsgsRecv
			}
			fmt.Fprintf(w, "%-22v %-14v %12.3f %14d\n",
				strat, kind, float64(stats.Median(tot))/1e6, stats.Median(msgs))
		}
	}
}

// AlltoallAblation prints the 1-factor vs direct exchange comparison
// (§7.1) under single-level AMS-sort, where the exchange dominates.
func AlltoallAblation(w io.Writer, ps []int, perPE, reps int, seed uint64, progress io.Writer) {
	if ps == nil {
		ps = []int{128, 512, 2048}
	}
	fmt.Fprintf(w, "All-to-all ablation: 1-level AMS-sort, n/p=%d [ms, simulated]\n", perPE)
	fmt.Fprintf(w, "%-7s %12s %12s\n", "p", "1-factor", "direct")
	for _, p := range ps {
		var meds [2]float64
		for i, exch := range []delivery.Exchange{delivery.OneFactor, delivery.Direct} {
			spec := Spec{Algo: AMS, P: p, PerPE: perPE, Levels: 1, Seed: seed,
				Delivery: delivery.Options{Exchange: exch}}
			rs := RunReps(spec, reps, progress)
			tot := make([]int64, len(rs))
			for j, r := range rs {
				tot[j] = r.TotalNS
			}
			meds[i] = float64(stats.Median(tot)) / 1e6
		}
		fmt.Fprintf(w, "%-7d %12.3f %12.3f\n", p, meds[0], meds[1])
	}
}
