// Torture harness: property-based conformance testing of every sorter
// on every backend under the chaos middleware (internal/chaos). One
// uint64 seed derives a complete randomized scenario — sorter, PE
// count, per-PE input size, input distribution, level/oversampling/
// overpartitioning/delivery configuration, and element type — and the
// harness executes it on the simulated and native backends (plus, for a
// fraction of cases, a real in-process TCP loopback cluster) with
// schedule shaking and forced serialization, asserting the paper's
// invariants:
//
//   - the output is globally sorted;
//   - the output is a permutation of the input (order-independent
//     multiset hash and element count);
//   - the partition imbalance stays within the sorter's bound (AMS:
//     configured ε-style bound; RLM: perfect balance);
//   - backends agree byte-for-byte;
//   - the chaos audit is clean (no contract violations, and the
//     middleware demonstrably engaged).
//
// A failure reproduces from its seed alone:
//
//	sortbench -experiment torture -seed N
package expt

import (
	"fmt"
	"io"
	"reflect"
	"sync"
	"time"

	"pmsort/internal/baseline"
	"pmsort/internal/chaos"
	"pmsort/internal/comm"
	"pmsort/internal/core"
	"pmsort/internal/delivery"
	"pmsort/internal/native"
	"pmsort/internal/netcomm"
	"pmsort/internal/netfault"
	"pmsort/internal/prng"
	"pmsort/internal/sim"
	"pmsort/internal/workload"
)

// TortureCase is one fully derived torture scenario.
type TortureCase struct {
	Seed uint64
	Spec Spec
	// Pair selects the two-field struct element type (sorted by a
	// tie-heavy key, carrying a payload field) instead of bare uint64 —
	// this drives the structural wire codec through every message.
	Pair bool
	// TCP adds a real in-process TCP loopback cluster as a third
	// backend for this case (small p only; rendezvous dominates).
	TCP bool
	// NetFault runs the TCP leg under a mild seeded netfault profile —
	// latency, jitter, torn writes, and sub-window read stalls, with
	// heartbeats on — so conformance is continuously checked on a mesh
	// that delays, fragments, and hiccups but must still sort
	// correctly. The fault schedule derives from Seed (per-rank).
	NetFault bool
	// Chaos is the middleware seed (distinct from Spec.Seed so the
	// injected schedule varies independently of the data).
	Chaos uint64
}

// String renders the case compactly for logs and failure messages.
func (tc TortureCase) String() string {
	elem := "u64"
	if tc.Pair {
		elem = "pair"
	}
	backends := "sim+native"
	if tc.TCP {
		backends += "+tcp"
	}
	if tc.NetFault {
		backends += "/fault"
	}
	if tc.Spec.Keyed {
		elem += "/keyed"
	}
	exch := "stream"
	if tc.Spec.Delivery.Batch {
		exch = "batch"
	}
	return fmt.Sprintf("seed=%d %v p=%d n/p=%d kind=%v k=%d a=%g b=%d dlv=%v/%d/%s elem=%s pfx=%v %s",
		tc.Seed, tc.Spec.Algo, tc.Spec.P, tc.Spec.PerPE, tc.Spec.Kind, tc.Spec.Levels,
		tc.Spec.Oversampling, tc.Spec.Overpartition, tc.Spec.Delivery.Strategy,
		tc.Spec.Delivery.Exchange, exch, elem, tc.Spec.PrefixMode, backends)
}

// tortureAlgos is the sweep's sorter population. Power-of-two-only
// sorters are marked so the PE count can respect their requirement.
var tortureAlgos = []struct {
	algo Algo
	pow2 bool
}{
	{AMS, false}, {AMS, false}, {AMS, false}, // weighted: AMS is the paper's centerpiece
	{RLM, false}, {RLM, false},
	{GV, false}, {MP, false}, {Hist, false},
	{Bitonic, true}, {HCQ, true},
}

// DeriveTorture expands one seed into a torture case. The derivation is
// pure: equal seeds give equal cases on every machine, which is what
// makes `sortbench -experiment torture -seed N` a one-line repro.
func DeriveTorture(seed uint64) TortureCase {
	rng := prng.New(seed ^ 0x7027_15ee_76c4_a1b3)
	pick := tortureAlgos[rng.Intn(len(tortureAlgos))]
	var p int
	if pick.pow2 {
		p = 1 << rng.Intn(4) // 1, 2, 4, 8
	} else {
		p = 1 + rng.Intn(10) // 1..10
	}
	perPEs := []int{1, 3, 17, 64, 150, 300}
	kinds := []workload.Kind{
		workload.Uniform, workload.Skewed, workload.DupHeavy,
		workload.Sorted, workload.Reverse, workload.AlmostSorted,
		workload.OnePE,
	}
	oversampling := []float64{0, 0, 1.5, 3}
	overpartition := []int{0, 0, 1, 4, 32}
	tc := TortureCase{
		Seed: seed,
		Spec: Spec{
			Algo:          pick.algo,
			P:             p,
			PerPE:         perPEs[rng.Intn(len(perPEs))],
			Levels:        1 + rng.Intn(3),
			Kind:          kinds[rng.Intn(len(kinds))],
			Seed:          rng.Next(),
			Oversampling:  oversampling[rng.Intn(len(oversampling))],
			Overpartition: overpartition[rng.Intn(len(overpartition))],
			// TieBreak is always on: the sweep includes duplicate-heavy
			// inputs, where AMS's balance bound requires it (App. D).
			TieBreak: true,
			Delivery: delivery.Options{
				Strategy: delivery.Strategy(rng.Intn(4)),
				Exchange: delivery.Exchange(rng.Intn(2)),
				Seed:     rng.Next(),
			},
		},
		Pair:  rng.Intn(3) == 0,
		Chaos: rng.Next(),
	}
	// The keyed-kernel dimension: a third of the cases run the radix
	// fast path (Config.Key) instead of the comparator kernels, so the
	// sweep continuously cross-checks the two local-sort paths against
	// each other through the byte-identity and multiset invariants.
	tc.Spec.Keyed = rng.Intn(3) == 0
	// A TCP loopback cluster per case is expensive (rendezvous, real
	// sockets); run it on a sixth of the small-p cases.
	tc.TCP = p <= 4 && rng.Intn(6) == 0
	// The exchange-consumption dimension: half the cases route the
	// sorters through the original materialize-then-process delivery
	// (Batch) instead of the streaming consumers, so the cross-backend
	// byte-identity invariant continuously cross-checks the two data
	// paths against each other — on top of the direct batch-vs-stream
	// delivery check every case runs (tortureDeliveryCheck).
	tc.Spec.Delivery.Batch = rng.Intn(2) == 0
	// The prefix-cache dimension (comparator path only; keyed cases run
	// the radix kernel regardless): a third of the cases disable the
	// cache, a third run the auto-derived hook, a third a deliberately
	// coarse hook with heavy prefix collisions. Every non-keyed case
	// additionally re-runs natively with the cache toggled and demands
	// byte-identical output (tortureRun).
	tc.Spec.PrefixMode = PrefixMode(rng.Intn(3))
	// The network-fault dimension: half the TCP legs run under the mild
	// netfault profile (tortureTCP). The draw happens unconditionally —
	// and this dimension sits last — so every earlier field of every
	// seed's case is unchanged by its introduction.
	tc.NetFault = rng.Intn(2) == 0 && tc.TCP
	return tc
}

// Pair is the torture harness's struct element type: ordered by a
// tie-heavy key K, carrying an unordered payload T. Sorting Pairs under
// forced serialization drives the structural wire codec (not just the
// []uint64 bulk fast path) through every message of every sorter.
type Pair struct {
	K, T uint64
}

func pairLess(a, b Pair) bool { return a.K < b.K }

// tortureBackends names the backend legs a case runs.
func tortureBackends(tc TortureCase) []string {
	bs := []string{"sim", "native"}
	if tc.TCP {
		bs = append(bs, "tcp")
	}
	return bs
}

// RunTorture executes one derived case and returns a one-line summary.
// Any invariant breach comes back as an error naming the seed.
func RunTorture(tc TortureCase) (string, error) {
	var err error
	if tc.Pair {
		err = tortureRun(tc, func(k uint64) Pair {
			// K compresses the key space 4:1 so every distribution gains
			// extra ties while keeping its shape; T keeps the original
			// key so the multiset hash still sees full entropy.
			return Pair{K: k / 4, T: k}
		}, pairLess, func(e Pair) uint64 {
			return prng.Mix64(prng.Mix64(e.K)*0x9e3779b97f4a7c15 ^ e.T)
		}, func(e Pair) uint64 { return e.K },
			// Coarse prefix: collapses another 2 key bits, so distinct K
			// values collide and every equal-prefix fallback fires.
			func(e Pair) uint64 { return e.K >> 2 })
	} else {
		err = tortureRun(tc, func(k uint64) uint64 { return k },
			func(a, b uint64) bool { return a < b }, prng.Mix64,
			func(e uint64) uint64 { return e },
			func(e uint64) uint64 { return e >> 8 })
	}
	if err != nil {
		return "", fmt.Errorf("%w\nrepro: sortbench -experiment torture -seed %d", err, tc.Seed)
	}
	return tc.String(), nil
}

// runAlgoE dispatches the spec's sorter for any element type. key is
// the Config.Key hook installed when spec.Keyed is set (nil disables
// the keyed kernel regardless of spec.Keyed; only AMS/RLM consume it).
// coarse is the non-injective Config.Prefix hook installed under
// PrefixCoarse (nil falls back to automatic derivation).
func runAlgoE[E any](c comm.Communicator, spec Spec, data []E, less func(a, b E) bool, key func(E) uint64, coarse func(E) uint64) ([]E, *core.Stats) {
	cfg := spec.config()
	if spec.Keyed && key != nil {
		cfg.Key = key
	}
	if spec.PrefixMode == PrefixCoarse && coarse != nil {
		cfg.Prefix = coarse
	}
	switch spec.Algo {
	case AMS:
		return core.AMSSort(c, data, less, cfg)
	case RLM:
		return core.RLMSort(c, data, less, cfg)
	case MP:
		return baseline.MPSort(c, data, less, spec.Seed)
	case GV:
		return baseline.GVSampleSort(c, data, less, spec.Seed)
	case Bitonic:
		return baseline.BitonicSort(c, data, less, spec.Seed)
	case Hist:
		return baseline.HistogramSort(c, data, less, 0.05, spec.Seed)
	case HCQ:
		return baseline.HCQuicksort(c, data, less, spec.Seed)
	default:
		panic("expt: unknown algorithm")
	}
}

// tortureRun executes tc for one element type and checks every
// invariant. mk maps a workload key to an element, hash is the
// order-independent per-element hash of the multiset check, key is the
// Config.Key hook used when the case runs the keyed kernel, and coarse
// is the non-injective Config.Prefix hook of PrefixCoarse cases.
func tortureRun[E any](tc TortureCase, mk func(k uint64) E, less func(a, b E) bool, hash func(E) uint64, key func(E) uint64, coarse func(E) uint64) error {
	spec := tc.Spec
	locals := make([][]E, spec.P)
	var n int64
	var inHash uint64
	for rank := range locals {
		keys := workload.Local(spec.Kind, spec.Seed, spec.P, spec.PerPE, rank)
		if keys == nil {
			continue // OnePE: ranks >0 start with nil input
		}
		loc := make([]E, len(keys))
		for i, k := range keys {
			loc[i] = mk(k)
			inHash += hash(loc[i])
		}
		locals[rank] = loc
		n += int64(len(loc))
	}

	outs := make(map[string][][]E)
	for _, backend := range tortureBackends(tc) {
		out, aud, err := tortureBackendRun(tc, backend, locals, less, key, coarse)
		if err != nil {
			return fmt.Errorf("torture %s: backend %s: %w", tc, backend, err)
		}
		if vs := aud.Violations(); len(vs) > 0 {
			return fmt.Errorf("torture %s: backend %s: %d chaos violations, first: %v", tc, backend, len(vs), vs[0])
		}
		// The middleware must demonstrably have engaged: in-process
		// backends serialize every non-self message, and any backend
		// with communication draws schedule perturbations.
		if msgs, _, _ := aud.Messages(); msgs == 0 && spec.P > 1 && backend != "tcp" {
			return fmt.Errorf("torture %s: backend %s: forced serialization saw no messages", tc, backend)
		}
		if err := tortureCheck(tc, out, n, inHash, less, hash); err != nil {
			return fmt.Errorf("torture %s: backend %s: %w", tc, backend, err)
		}
		outs[backend] = out
	}

	// Cross-backend byte identity: every backend must place every
	// element identically.
	for _, backend := range tortureBackends(tc)[1:] {
		if !reflect.DeepEqual(outs[backend], outs["sim"]) {
			return fmt.Errorf("torture %s: %s output differs from sim", tc, backend)
		}
	}

	// The prefix-cache byte-identity invariant: re-run the case natively
	// with the cache toggled (off ↔ on) and demand identical output —
	// the prefix kernels must be invisible in the bytes, tie-heavy
	// element types included. Keyed cases skip it (the radix kernel
	// ignores the cache), as do the baselines (only AMS/RLM consume
	// it). TCP identity for the flipped mode follows by transitivity
	// from the cross-backend check above.
	if !spec.Keyed && (spec.Algo == AMS || spec.Algo == RLM) {
		alt := tc
		if alt.Spec.PrefixMode == PrefixOff {
			alt.Spec.PrefixMode = PrefixAuto
		} else {
			alt.Spec.PrefixMode = PrefixOff
		}
		out, _, err := tortureBackendRun(alt, "native", locals, less, key, coarse)
		if err != nil {
			return fmt.Errorf("torture %s: prefix-toggled leg (pfx=%v): %w", tc, alt.Spec.PrefixMode, err)
		}
		if !reflect.DeepEqual(out, outs["sim"]) {
			return fmt.Errorf("torture %s: prefix-toggled output (pfx=%v) differs — prefix path is not byte-identical", tc, alt.Spec.PrefixMode)
		}
	}

	// The exchange dimension, checked directly: batch and streamed
	// deliveries of one seeded piece cut must be byte-identical on every
	// backend leg, and all legs must agree on the delivered bytes.
	if err := tortureDeliveryCheck(tc, locals); err != nil {
		return fmt.Errorf("torture %s: %w", tc, err)
	}
	return nil
}

// tortureDeliveryCheck runs delivery.Deliver (the batch reference) and
// delivery.DeliverStream (collected in rank order) back to back over
// the case's locals, cut into a seeded number of pieces per PE, on
// every backend leg of the case — sim, native, and (for TCP cases) a
// real loopback cluster. It asserts that the two paths deliver
// identical chunk lists on each backend, and that the delivered
// concatenations agree across backends (chunk boundaries legitimately
// differ: zero-copy backends coalesce adjacent spans, serializing ones
// cannot).
func tortureDeliveryCheck[E any](tc TortureCase, locals [][]E) error {
	spec := tc.Spec
	p := spec.P
	rng := prng.New(tc.Seed ^ 0x5eed_0dd5)
	r := 1 + int(rng.Next()%uint64(p))
	opt := spec.Delivery
	opt.Seed = rng.Next()

	// Deterministic per-rank piece cut (balanced boundaries).
	cut := func(rank int) [][]E {
		data := locals[rank]
		pieces := make([][]E, r)
		prev := 0
		for j := 0; j < r-1; j++ {
			next := prev + (len(data)-prev)/(r-j)
			pieces[j] = data[prev:next]
			prev = next
		}
		pieces[r-1] = data[prev:]
		return pieces
	}

	type rankResult struct {
		batch, stream [][]E
	}
	runLeg := func(backend string) ([]rankResult, error) {
		res := make([]rankResult, p)
		var mu sync.Mutex
		run := func(c comm.Communicator, rank int) {
			batch := delivery.Deliver(c, cut(rank), opt)
			sopt := opt
			sopt.Batch = false
			bySrc := make([][][]E, p)
			delivery.DeliverStream(c, cut(rank), sopt, func(src int, chunks [][]E) { bySrc[src] = chunks })
			var stream [][]E
			for _, chs := range bySrc {
				stream = append(stream, chs...)
			}
			mu.Lock()
			res[rank] = rankResult{batch: batch, stream: stream}
			mu.Unlock()
		}
		var err error
		switch backend {
		case "sim":
			sim.NewDefault(p).Run(func(pe *sim.PE) { run(sim.World(pe), pe.Rank()) })
		case "native":
			native.New(p).Run(func(c comm.Communicator) { run(c, c.Rank()) })
		case "tcp":
			err = tortureTCP(tc, p, run)
		}
		return res, err
	}

	flatten := func(chunks [][]E) []E {
		var out []E
		for _, ch := range chunks {
			out = append(out, ch...)
		}
		return out
	}

	var simFlat [][]E
	for _, backend := range tortureBackends(tc) {
		res, err := runLeg(backend)
		if err != nil {
			return fmt.Errorf("delivery check (%s): %w", backend, err)
		}
		for rank, rr := range res {
			if !reflect.DeepEqual(rr.batch, rr.stream) {
				return fmt.Errorf("delivery check (%s): rank %d streamed chunks differ from batch (r=%d, %v)", backend, rank, r, opt.Strategy)
			}
		}
		if backend == "sim" {
			simFlat = make([][]E, p)
			for rank, rr := range res {
				simFlat[rank] = flatten(rr.batch)
			}
			continue
		}
		for rank, rr := range res {
			if !reflect.DeepEqual(flatten(rr.batch), simFlat[rank]) {
				return fmt.Errorf("delivery check (%s): rank %d delivered bytes differ from sim", backend, rank)
			}
		}
	}
	return nil
}

// tortureBackendRun sorts the locals on one backend under chaos.
func tortureBackendRun[E any](tc TortureCase, backend string, locals [][]E, less func(a, b E) bool, key func(E) uint64, coarse func(E) uint64) ([][]E, *chaos.Audit, error) {
	spec := tc.Spec
	aud := &chaos.Audit{}
	ccfg := chaos.Config{
		Seed:  tc.Chaos,
		Shake: true,
		// Serialization is forced only where payloads otherwise move by
		// reference; the TCP backend serializes for real already.
		ForceSerialize: backend != "tcp",
		Audit:          aud,
		OnViolation:    func(chaos.Violation) {}, // collect, don't panic
	}
	outs := make([][]E, spec.P)
	var mu sync.Mutex // guards outs writes from rank goroutines (tcp)
	run := func(c comm.Communicator, rank int) {
		cc := chaos.Wrap(c, ccfg)
		out, _ := runAlgoE(cc, spec, append([]E(nil), locals[rank]...), less, key, coarse)
		mu.Lock()
		outs[rank] = out
		mu.Unlock()
	}

	// Watchdog: a sorter that panics on SOME PEs while others block in
	// Recv would wedge the in-process backends' Run (they join every PE
	// goroutine before re-panicking), turning a failing case into a
	// hang. Cases are tiny and deterministic — normal runs finish in
	// milliseconds — so a generous deadline converts the wedge into the
	// promised seed-naming error.
	done := make(chan error, 1)
	go func() {
		var err error
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v", r)
			}
			done <- err
		}()
		switch backend {
		case "sim":
			sim.NewDefault(spec.P).Run(func(pe *sim.PE) { run(sim.World(pe), pe.Rank()) })
		case "native":
			native.New(spec.P).Run(func(c comm.Communicator) { run(c, c.Rank()) })
		case "tcp":
			err = tortureTCP(tc, spec.P, run)
		default:
			err = fmt.Errorf("unknown backend %q", backend)
		}
	}()
	select {
	case err := <-done:
		if err != nil {
			return nil, nil, err
		}
	case <-time.After(tortureDeadline):
		// The wedged PE goroutines are leaked deliberately: the harness
		// is about to fail the whole run with the repro seed anyway.
		return nil, nil, fmt.Errorf("deadlocked (no progress for %v) — some PEs likely died while others wait on them", tortureDeadline)
	}
	return outs, aud, nil
}

// tortureDeadline bounds one backend leg of one case. Cases are small
// (p ≤ 10, n ≤ a few thousand) and finish in well under a second; the
// slack covers race-instrumented CI and TCP rendezvous.
const tortureDeadline = 2 * time.Minute

// tortureTCP runs fn on an in-process TCP loopback cluster: one
// netcomm.Machine per rank, real sockets in between. NetFault cases
// wrap every rank's connections in a seeded injector with a mild
// profile — every fault it fires must be survivable (stalls stay well
// under the stall window, no resets), so the sort invariants still
// hold; the heartbeat machinery runs alongside to prove liveness
// monitoring does not perturb results.
func tortureTCP(tc TortureCase, p int, fn func(c comm.Communicator, rank int)) error {
	if !tc.NetFault {
		return netcomm.LocalCluster(p, 30*time.Second, func(m *netcomm.Machine, rank int) error {
			_, err := m.Run(func(c comm.Communicator) { fn(c, rank) })
			return err
		})
	}
	prof := netfault.Profile{
		Latency:         50 * time.Microsecond,
		Jitter:          200 * time.Microsecond,
		MaxWriteChunk:   512,
		StallEveryBytes: 16 << 10,
		StallDuration:   2 * time.Millisecond,
	}
	injs := make([]*netfault.Injector, p)
	for rank := range injs {
		// One injector per machine; forking the case seed per rank keeps
		// the whole scenario a pure function of tc.Seed.
		injs[rank] = netfault.New(tc.Seed^(uint64(rank+1)<<48), prof)
	}
	err := netcomm.LocalClusterOpts(p, 30*time.Second, func(rank int) netcomm.Options {
		return netcomm.Options{
			HeartbeatInterval: 50 * time.Millisecond,
			StallWindow:       20 * time.Second, // generous: injected stalls are 2ms
			WrapConn:          injs[rank].Wrap,
		}
	}, func(m *netcomm.Machine, rank int) error {
		_, err := m.Run(func(c comm.Communicator) { fn(c, rank) })
		return err
	})
	if err != nil {
		return err
	}
	// Engagement check, like chaos's: a fault leg whose injector never
	// fired proves nothing.
	if p > 1 {
		var fired int64
		for _, in := range injs {
			s := in.Stats()
			fired += s.Delays + s.ShortWrites + s.Stalls
		}
		if fired == 0 {
			return fmt.Errorf("netfault leg: injector never fired (%v)", injs[0])
		}
	}
	return nil
}

// tortureCheck asserts the single-backend invariants: global order,
// multiset preservation, and the sorter's balance bound.
func tortureCheck[E any](tc TortureCase, outs [][]E, n int64, inHash uint64, less func(a, b E) bool, hash func(E) uint64) error {
	var total, maxOut, minOut int64
	minOut = 1<<63 - 1
	var outHash uint64
	var prev E
	havePrev := false
	for rank, out := range outs {
		for i, e := range out {
			if havePrev && less(e, prev) {
				return fmt.Errorf("global order violated at PE %d index %d", rank, i)
			}
			prev, havePrev = e, true
			outHash += hash(e)
		}
		l := int64(len(out))
		total += l
		if l > maxOut {
			maxOut = l
		}
		if l < minOut {
			minOut = l
		}
	}
	if total != n {
		return fmt.Errorf("element count changed: %d in, %d out", n, total)
	}
	if outHash != inHash {
		return fmt.Errorf("multiset hash changed: input %#x, output %#x", inHash, outHash)
	}

	p := int64(tc.Spec.P)
	switch tc.Spec.Algo {
	case AMS:
		// ε-style bound: with tie-breaking on, AMS keeps the largest
		// output within a constant factor of n/p plus quantization slack
		// (small n is dominated by per-level rounding).
		if bound := (n/p)*5/2 + 64; maxOut > bound {
			return fmt.Errorf("AMS imbalance: max |out| = %d exceeds bound %d (n/p = %d)", maxOut, bound, n/p)
		}
	case RLM:
		// RLM's multisequence selection hits exact global ranks: the
		// output is perfectly balanced (sizes differ by at most one).
		if maxOut-minOut > 1 {
			return fmt.Errorf("RLM balance: outputs range %d..%d, want spread ≤ 1", minOut, maxOut)
		}
	}
	return nil
}

// Torture runs `count` torture cases derived from consecutive seeds
// starting at `seed`, writing one line per case. It returns the first
// failure (the line already names the repro seed).
func Torture(w io.Writer, seed uint64, count int, progress io.Writer) error {
	if count < 1 {
		count = 1
	}
	for i := 0; i < count; i++ {
		tc := DeriveTorture(seed + uint64(i))
		if progress != nil {
			fmt.Fprintf(progress, "# torture %s\n", tc)
		}
		line, err := RunTorture(tc)
		if err != nil {
			fmt.Fprintf(w, "FAIL %v\n", err)
			return err
		}
		fmt.Fprintf(w, "ok   %s\n", line)
	}
	return nil
}
