package expt

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"pmsort/internal/comm"
	"pmsort/internal/core"
	"pmsort/internal/netcomm"
	"pmsort/internal/obs"
)

// Child-process environment protocol: a tool that wants to host TCP
// cluster ranks calls MaybeRunTCPChild first thing in main; RunTCP then
// re-executes the tool once per rank with these variables set.
const (
	envTCPRole   = "PMSORT_TCP_ROLE" // "child" marks a rank process
	envTCPRank   = "PMSORT_TCP_RANK"
	envTCPPeers  = "PMSORT_TCP_PEERS"  // comma-separated host:port list
	envTCPSpec   = "PMSORT_TCP_SPEC"   // JSON-encoded Spec
	envTCPResult = "PMSORT_TCP_RESULT" // path for the gob-encoded tcpChildResult
	// envTCPTrace/envTCPReport enable observability tracing on every
	// rank; rank 0 gathers the per-rank snapshots (clock-aligned) and
	// writes the merged Chrome trace / text report to these paths.
	envTCPTrace  = "PMSORT_TCP_TRACE"
	envTCPReport = "PMSORT_TCP_REPORT"
)

// tcpChildResult is what one rank process reports back to the parent.
// Only aggregates travel: the cross-rank output validation (global
// order, permutation preservation) already ran collectively inside the
// cluster via RunOn, and the byte-level conformance checks have their
// own dump path (sortnode -out, tcp_conformance_test.go).
type tcpChildResult struct {
	Stats  core.Stats
	OutLen int64
}

// MaybeRunTCPChild turns this process into one rank of a TCP cluster if
// the child environment is set (it never returns in that case). Tools
// that pass themselves as the executable to RunTCP must call it before
// flag parsing.
func MaybeRunTCPChild() {
	if os.Getenv(envTCPRole) != "child" {
		return
	}
	os.Exit(runTCPChild())
}

func runTCPChild() int {
	var rank int
	if _, err := fmt.Sscanf(os.Getenv(envTCPRank), "%d", &rank); err != nil {
		fmt.Fprintf(os.Stderr, "tcp child: bad rank %q: %v\n", os.Getenv(envTCPRank), err)
		return 2
	}
	peers := splitAddrs(os.Getenv(envTCPPeers))
	var spec Spec
	if err := json.Unmarshal([]byte(os.Getenv(envTCPSpec)), &spec); err != nil {
		fmt.Fprintf(os.Stderr, "tcp child %d: bad spec: %v\n", rank, err)
		return 2
	}

	tracePath := os.Getenv(envTCPTrace)
	reportPath := os.Getenv(envTCPReport)
	m, err := netcomm.New(rank, peers, netcomm.Options{Obs: tracePath != "" || reportPath != ""})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcp child %d: %v\n", rank, err)
		return 1
	}
	defer m.Close()

	var res tcpChildResult
	var trace *obs.Trace
	_, err = m.Run(func(c comm.Communicator) {
		out, st := RunOn(c, spec)
		res.Stats = *st
		res.OutLen = int64(len(out))
		if tracePath != "" || reportPath != "" {
			trace = obs.Gather(c, m.Recorder()) // non-nil on rank 0 only
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcp child %d: %v\n", rank, err)
		return 1
	}
	if trace != nil {
		if err := writeTraceFiles(trace, tracePath, reportPath); err != nil {
			fmt.Fprintf(os.Stderr, "tcp child %d: %v\n", rank, err)
			return 1
		}
	}
	if path := os.Getenv(envTCPResult); path != "" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcp child %d: %v\n", rank, err)
			return 1
		}
		if err := gob.NewEncoder(f).Encode(&res); err != nil {
			fmt.Fprintf(os.Stderr, "tcp child %d: %v\n", rank, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tcp child %d: %v\n", rank, err)
			return 1
		}
	}
	return 0
}

func splitAddrs(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// ReserveLoopbackAddrs picks p currently free loopback addresses; see
// netcomm.ReserveLoopbackAddrs (kept here as an alias for the tools
// that import only expt).
func ReserveLoopbackAddrs(p int) ([]string, error) {
	return netcomm.ReserveLoopbackAddrs(p)
}

// RunTCP executes and validates one run on a real multi-process TCP
// cluster on loopback: spec.P rank processes of this executable (which
// must call MaybeRunTCPChild at startup) are launched, meshed, and torn
// down. All times are wall-clock nanoseconds. The returned NativeResult
// aggregates the ranks exactly like RunNative does for goroutine-PEs.
func RunTCP(spec Spec) (NativeResult, error) {
	return runTCP(spec, "", "")
}

// RunTCPTraced is RunTCP with observability tracing on every rank:
// after the sort, rank 0 gathers the per-rank trace snapshots with
// clock-offset alignment and writes the merged Chrome trace JSON to
// tracePath and/or the plain-text report to reportPath (empty paths are
// skipped; at least one must be set for tracing to engage).
func RunTCPTraced(spec Spec, tracePath, reportPath string) (NativeResult, error) {
	return runTCP(spec, tracePath, reportPath)
}

func runTCP(spec Spec, tracePath, reportPath string) (NativeResult, error) {
	var res NativeResult
	exe, err := os.Executable()
	if err != nil {
		return res, fmt.Errorf("tcp: cannot locate own executable: %w", err)
	}
	addrs, err := ReserveLoopbackAddrs(spec.P)
	if err != nil {
		return res, fmt.Errorf("tcp: reserving ports: %w", err)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return res, fmt.Errorf("tcp: encoding spec: %w", err)
	}
	dir, err := os.MkdirTemp("", "pmsort-tcp-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	peerList := ""
	for i, a := range addrs {
		if i > 0 {
			peerList += ","
		}
		peerList += a
	}

	start := time.Now()
	cmds := make([]*exec.Cmd, spec.P)
	for rank := 0; rank < spec.P; rank++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			envTCPRole+"=child",
			fmt.Sprintf("%s=%d", envTCPRank, rank),
			envTCPPeers+"="+peerList,
			envTCPSpec+"="+string(specJSON),
			envTCPResult+"="+filepath.Join(dir, fmt.Sprintf("rank%d.gob", rank)),
			envTCPTrace+"="+tracePath,
			envTCPReport+"="+reportPath,
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds {
				if c != nil {
					_ = c.Process.Kill()
				}
			}
			return res, fmt.Errorf("tcp: starting rank %d: %w", rank, err)
		}
		cmds[rank] = cmd
	}
	var firstErr error
	for rank, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("tcp: rank %d: %w", rank, err)
		}
	}
	if firstErr != nil {
		return res, firstErr
	}
	res.WallNS = time.Since(start).Nanoseconds()

	for rank := 0; rank < spec.P; rank++ {
		var cres tcpChildResult
		f, err := os.Open(filepath.Join(dir, fmt.Sprintf("rank%d.gob", rank)))
		if err != nil {
			return res, fmt.Errorf("tcp: rank %d result: %w", rank, err)
		}
		err = gob.NewDecoder(f).Decode(&cres)
		f.Close()
		if err != nil {
			return res, fmt.Errorf("tcp: rank %d result: %w", rank, err)
		}
		res.absorb(&cres.Stats, cres.OutLen, spec)
	}
	return res, nil
}
