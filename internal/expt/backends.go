package expt

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"pmsort/internal/core"
	"pmsort/internal/workload"
)

// BackendKernels names the local-kernel variants the backends
// experiment can compare: the ordered-key radix fast path (Config.Key),
// the plain comparator path (prefix cache off), and the prefix-cached
// comparator path.
var BackendKernels = []string{"keyed", "cmp", "cmp+prefix"}

// writeLevelPhases prints one indented row per recursion level with the
// four phase times in ms (max over PEs; see Stats.LevelPhaseNS). A nil
// breakdown (tcp off / failed) prints nothing.
func writeLevelPhases(w io.Writer, backend string, levels [][core.NumPhases]int64) {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	for lv, row := range levels {
		fmt.Fprintf(w, "       %-7s L%-2d sel=%9.3f  bucket=%9.3f  exch=%9.3f  sort=%9.3f\n",
			backend, lv,
			ms(row[core.PhaseSplitterSelection]),
			ms(row[core.PhaseBucketProcessing]),
			ms(row[core.PhaseDataDelivery]),
			ms(row[core.PhaseLocalSort]))
	}
}

// kernelSpec applies one kernel variant to a spec.
func kernelSpec(spec Spec, kernel string) (Spec, error) {
	switch kernel {
	case "keyed":
		spec.Keyed = true
	case "cmp":
		spec.PrefixMode = PrefixOff
	case "cmp+prefix":
		spec.PrefixMode = PrefixAuto
	default:
		return spec, fmt.Errorf("expt: unknown backends kernel %q (want keyed, cmp, or cmp+prefix)", kernel)
	}
	return spec, nil
}

// Backends compares the communication backends on AMS-sort under
// strong scaling: one fixed input of n elements is split over p PEs and
// sorted on the simulated backend (reporting virtual α-β time), on the
// native shared-memory backend (wall-clock time), and — when tcp is set
// — on a real p-process TCP cluster on loopback (wall-clock time of the
// sort proper, excluding process launch and rendezvous), next to a
// single sort.Slice over the whole input on one core — the sequential
// reference every native number is a speedup against. Wall-clock
// numbers take the minimum over reps runs (the TCP cluster, whose
// cold-start dominates, runs once); virtual time is deterministic and
// measured once. Real speedup saturates around p = GOMAXPROCS; beyond
// that the goroutine-PEs (and rank processes) time-share cores.
//
// Each p is measured once per requested kernel (see BackendKernels), so
// the keyed / plain-comparator / prefix-cached gap is visible side by
// side in one run. The one-core reference stays sort.Slice for every
// kernel — it is the fixed sequential baseline every recorded speedup
// in the README's trajectory is measured against.
//
// tcp requires the calling binary to invoke MaybeRunTCPChild at
// startup: each rank is a re-execution of this executable.
func Backends(w io.Writer, ps []int, n, reps int, seed uint64, tcp bool, kernels []string, progress io.Writer) error {
	if reps < 1 {
		reps = 1
	}
	if len(kernels) == 0 {
		kernels = BackendKernels
	}
	for _, kernel := range kernels {
		if _, err := kernelSpec(Spec{}, kernel); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "Backends: AMS-sort simulated vs native shared-memory vs TCP cluster, n=%d total, GOMAXPROCS=%d (wall: min of %d)\n",
		n, runtime.GOMAXPROCS(0), reps)
	fmt.Fprintf(w, "kernel: keyed = Config.Key radix; cmp = plain comparator (NoPrefix); cmp+prefix = comparator with the derived prefix cache.\n")
	fmt.Fprintf(w, "Per-level phase rows (ms, max over PEs): sel = splitter selection, bucket = bucket processing (classify + merge),\n")
	fmt.Fprintf(w, "exch = data delivery (the bulk exchange, incl. work overlapped into it), sort = local sort. RLM-style level 0 holds the initial sort.\n")
	fmt.Fprintf(w, "%-6s %-10s %-2s %-8s %13s %16s %13s %15s %8s\n",
		"p", "kernel", "k", "n/p", "sim-virt(ms)", "native-wall(ms)", "tcp-wall(ms)", "1core-wall(ms)", "speedup")

	// Sequential reference: one core sorting the whole input.
	var seqNS int64 = 1<<63 - 1
	for rep := 0; rep < reps; rep++ {
		all := workload.Local(workload.Uniform, seed, 1, n, 0)
		t0 := time.Now()
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		if ns := time.Since(t0).Nanoseconds(); ns < seqNS {
			seqNS = ns
		}
	}

	for _, p := range ps {
		perPE := n / p
		if perPE == 0 {
			continue
		}
		k := 1
		if p > 16 {
			k = 2
		}
		for _, kernel := range kernels {
			spec, err := kernelSpec(Spec{Algo: AMS, P: p, PerPE: perPE, Levels: k, Seed: seed}, kernel)
			if err != nil {
				return err
			}
			if progress != nil {
				fmt.Fprintf(progress, "# backends p=%d kernel=%s sim\n", p, kernel)
			}
			simRes := Run(spec)

			var nativeNS int64 = 1<<63 - 1
			var nativeBest NativeResult
			for rep := 0; rep < reps; rep++ {
				if progress != nil {
					fmt.Fprintf(progress, "# backends p=%d kernel=%s native rep %d/%d\n", p, kernel, rep+1, reps)
				}
				if res := RunNative(spec); res.SortNS < nativeNS {
					nativeNS = res.SortNS
					nativeBest = res
				}
			}

			tcpCol := "-"
			var tcpLevels [][core.NumPhases]int64
			if tcp {
				if progress != nil {
					fmt.Fprintf(progress, "# backends p=%d kernel=%s tcp (one process per rank)\n", p, kernel)
				}
				if tcpRes, err := RunTCP(spec); err != nil {
					tcpCol = "error"
					if progress != nil {
						fmt.Fprintf(progress, "# backends p=%d tcp failed: %v\n", p, err)
					}
				} else {
					tcpCol = fmt.Sprintf("%.3f", float64(tcpRes.SortNS)/1e6)
					tcpLevels = tcpRes.LevelPhaseNS
				}
			}

			fmt.Fprintf(w, "%-6d %-10s %-2d %-8d %13.3f %16.3f %13s %15.3f %8.2f\n",
				p, kernel, k, perPE,
				float64(simRes.TotalNS)/1e6,
				float64(nativeNS)/1e6,
				tcpCol,
				float64(seqNS)/1e6,
				float64(seqNS)/float64(nativeNS))
			writeLevelPhases(w, "sim", simRes.LevelPhaseNS)
			writeLevelPhases(w, "native", nativeBest.LevelPhaseNS)
			writeLevelPhases(w, "tcp", tcpLevels)
		}
	}
	return nil
}
